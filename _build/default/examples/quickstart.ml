(* Quickstart: compile the paper's Figure 1 program for 4 processors,
   print the generated SPMD node program, simulate it on the machine
   model, and verify the result against sequential execution.

     dune exec examples/quickstart.exe
*)

let () =
  let source = Fd_workloads.Figures.fig1 ~n:100 ~shift:5 () in
  Fmt.pr "--- Fortran D source ---%s@." source;

  (* Compile with the full interprocedural strategy. *)
  let opts = { Fd_core.Options.default with nprocs = 4 } in
  let compiled = Fd_core.Driver.compile_source ~opts source in
  Fmt.pr "--- generated SPMD node program ---@.%a@."
    Fd_machine.Node.pp_program compiled.Fd_core.Codegen.program;

  (* Simulate on the iPSC/860-like machine model and verify. *)
  let result = Fd_core.Driver.run_source ~opts source in
  Fmt.pr "--- simulated execution ---@.%a@." Fd_machine.Stats.pp
    result.Fd_core.Driver.stats;
  List.iter (Fmt.pr "program output: %s@.")
    (Fd_machine.Stats.outputs result.Fd_core.Driver.stats);
  if Fd_core.Driver.verified result then
    Fmt.pr "verified against sequential execution: OK@."
  else begin
    Fmt.pr "VERIFICATION FAILED@.";
    exit 1
  end
