(* The paper's Section 9 case study: LINPACK dgefa (LU factorization with
   partial pivoting) with its BLAS-1 call structure, column-cyclic
   distribution.  Compiles under all three strategies, verifies the
   factorization against a native OCaml LU, and reports the communication
   behaviour that makes interprocedural compilation essential.

     dune exec examples/dgefa_demo.exe
*)

let () =
  let n = 32 in
  let source = Fd_workloads.Dgefa.source ~n () in
  Fmt.pr "dgefa, n = %d, P = 4, column-cyclic distribution@.@." n;
  List.iter
    (fun strategy ->
      let opts = { Fd_core.Options.default with nprocs = 4; strategy } in
      let r = Fd_core.Driver.run_source ~opts source in
      let s = r.Fd_core.Driver.stats in
      Fmt.pr "%-20s messages %6d  broadcasts %5d  elapsed %9.3f ms  %s@."
        (Fd_core.Options.strategy_name strategy)
        s.Fd_machine.Stats.messages s.Fd_machine.Stats.bcasts
        (Fd_machine.Stats.elapsed s *. 1e3)
        (if Fd_core.Driver.verified r then "verified" else "MISMATCH"))
    [ Fd_core.Options.Interproc; Fd_core.Options.Immediate;
      Fd_core.Options.Runtime_resolution ];

  (* independent check against a native LU over the same matrix *)
  let opts = { Fd_core.Options.default with nprocs = 4 } in
  let r = Fd_core.Driver.run_source ~opts source in
  let reference, _ipvt = Fd_workloads.Dgefa.reference_lu n in
  let seq = r.Fd_core.Driver.seq in
  let a_seq = List.assoc "a" seq.Fd_machine.Seq_interp.arrays in
  let max_err = ref 0.0 in
  for i = 1 to n do
    for j = 1 to n do
      let v = Fd_machine.Storage.read ~strict:false a_seq [| i; j |] in
      let err = Float.abs (Fd_machine.Value.to_float v -. reference.(i - 1).(j - 1)) in
      if err > !max_err then max_err := err
    done
  done;
  Fmt.pr "@.max |simulated - native LU| = %g@." !max_err;
  if !max_err > 1e-6 then exit 1
