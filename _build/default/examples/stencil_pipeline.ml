(* Jacobi relaxation through procedure boundaries: the sweep procedure
   inherits the block distribution interprocedurally, and its neighbor
   communication is exported to (and instantiated in) the caller.

   Compares the three compilation strategies on 1-D and 2-D stencils.

     dune exec examples/stencil_pipeline.exe
*)

let run name source strategy =
  let opts = { Fd_core.Options.default with nprocs = 4; strategy } in
  let r = Fd_core.Driver.run_source ~opts source in
  let s = r.Fd_core.Driver.stats in
  Fmt.pr "%-10s %-20s  messages %5d  broadcasts %3d  elapsed %8.3f ms  %s@." name
    (Fd_core.Options.strategy_name strategy)
    s.Fd_machine.Stats.messages s.Fd_machine.Stats.bcasts
    (Fd_machine.Stats.elapsed s *. 1e3)
    (if Fd_core.Driver.verified r then "verified" else "MISMATCH")

let () =
  let j1 = Fd_workloads.Stencil.jacobi1d ~n:256 ~t:10 () in
  let j2 = Fd_workloads.Stencil.jacobi2d ~n:32 ~t:4 () in
  let rb = Fd_workloads.Stencil.redblack ~n:256 ~t:8 () in
  List.iter
    (fun strategy ->
      run "jacobi1d" j1 strategy;
      run "jacobi2d" j2 strategy;
      run "redblack" rb strategy)
    [ Fd_core.Options.Interproc; Fd_core.Options.Immediate;
      Fd_core.Options.Runtime_resolution ]
