examples/quickstart.mli:
