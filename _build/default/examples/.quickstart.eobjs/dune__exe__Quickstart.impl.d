examples/quickstart.ml: Fd_core Fd_machine Fd_workloads Fmt List
