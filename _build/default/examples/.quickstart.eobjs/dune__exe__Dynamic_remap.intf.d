examples/dynamic_remap.mli:
