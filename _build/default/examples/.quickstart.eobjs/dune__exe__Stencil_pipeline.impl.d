examples/stencil_pipeline.ml: Fd_core Fd_machine Fd_workloads Fmt List
