examples/compiler_tour.mli:
