examples/dgefa_demo.mli:
