examples/compiler_tour.ml: Fd_callgraph Fd_core Fd_machine Fd_support Fd_workloads Fmt List String
