examples/dgefa_demo.ml: Array Fd_core Fd_machine Fd_workloads Float Fmt List
