(* A tour of every compiler phase on the paper's Figure 4 program (the
   companion to docs/INTERNALS.md): the augmented call graph, reaching
   decompositions, cloning, per-loop partition decisions, export records,
   the generated SPMD node program, and a traced simulation.

     dune exec examples/compiler_tour.exe
*)

let section title = Fmt.pr "@.===== %s =====@." title

let () =
  let source = Fd_workloads.Figures.fig4 ~n:100 ~shift:5 () in
  let opts = { Fd_core.Options.default with nprocs = 4 } in

  section "source";
  Fmt.pr "%s@." source;

  let cp = Fd_core.Driver.check_source source in

  section "augmented call graph (paper Fig. 5)";
  let acg = Fd_callgraph.Acg.build cp in
  Fmt.pr "%a" Fd_callgraph.Acg.pp acg;
  Fmt.pr "compilation order: %s@."
    (String.concat " -> " (Fd_callgraph.Acg.reverse_topo_order acg));

  section "reaching decompositions before cloning (paper Fig. 7)";
  let rd = Fd_core.Reaching_decomps.compute acg in
  Fmt.pr "Reaching(f1):@.%a" Fd_core.Reaching_decomps.pp_proc_reaching (rd, "f1");

  section "after cloning (paper Fig. 8) - whole-program compile";
  let compiled = Fd_core.Driver.compile ~opts cp in
  Fmt.pr "clones made: %d@." compiled.Fd_core.Codegen.clone_result.Fd_core.Cloning.clones_made;
  List.iter
    (fun np -> Fmt.pr "  node procedure %s@." np.Fd_machine.Node.np_name)
    compiled.Fd_core.Codegen.program.Fd_machine.Node.n_procs;

  section "computation-partition decisions";
  List.iter
    (fun (proc, line) -> Fmt.pr "%-8s %s@." proc line)
    compiled.Fd_core.Codegen.state.Fd_core.Codegen.partition_log;

  section "export records (delayed instantiation)";
  List.iter
    (fun np ->
      let name = np.Fd_machine.Node.np_name in
      Fmt.pr "%a@.@." Fd_core.Exports.pp
        (Fd_core.Codegen.export_of compiled.Fd_core.Codegen.state name))
    compiled.Fd_core.Codegen.program.Fd_machine.Node.n_procs;

  section "generated SPMD node program (paper Fig. 10)";
  Fmt.pr "%a" Fd_machine.Node.pp_program compiled.Fd_core.Codegen.program;

  section "traced simulation";
  let machine = Fd_machine.Config.make ~nprocs:4 ~record_trace:true () in
  let r = Fd_core.Driver.run_source ~opts ~machine source in
  List.iter
    (fun ev -> Fmt.pr "%a@." Fd_machine.Stats.pp_event ev)
    (Fd_support.Listx.take 12 (Fd_machine.Stats.trace r.Fd_core.Driver.stats));
  Fmt.pr "...@.%a@." Fd_machine.Stats.pp r.Fd_core.Driver.stats;
  Fmt.pr "verified: %b@." (Fd_core.Driver.verified r)
