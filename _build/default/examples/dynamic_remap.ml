(* Dynamic data decomposition (paper Figures 15/16): a procedure
   redistributes its argument; the remapping operations are delayed into
   the caller and then optimized.  Shows the Figure 16 ladder:

     none  - remap before and after every call        (4T+2 physical)
     live  - dead remaps removed, identical coalesced (2T+2)
     hoist - loop-invariant remaps hoisted            (4)
     kill  - dead-value remaps become mark-only       (2 + 2 mark-only)

     dune exec examples/dynamic_remap.exe
*)

let () =
  let source = Fd_workloads.Figures.fig15 ~n:1024 ~t:50 () in
  Fmt.pr "%-6s | %-8s | %-9s | %-11s | %-10s@." "level" "physical" "mark-only"
    "bytes moved" "elapsed ms";
  Fmt.pr "-------+----------+-----------+-------------+-----------@.";
  List.iter
    (fun level ->
      let opts = { Fd_core.Options.default with nprocs = 4; remap_level = level } in
      let r = Fd_core.Driver.run_source ~opts source in
      let s = r.Fd_core.Driver.stats in
      assert (Fd_core.Driver.verified r);
      Fmt.pr "%-6s | %8d | %9d | %11d | %10.3f@."
        (Fd_core.Options.remap_level_name level)
        s.Fd_machine.Stats.remaps s.Fd_machine.Stats.remap_marks
        s.Fd_machine.Stats.remap_bytes
        (Fd_machine.Stats.elapsed s *. 1e3))
    [ Fd_core.Options.Remap_none; Fd_core.Options.Remap_live;
      Fd_core.Options.Remap_hoist; Fd_core.Options.Remap_kill ]
