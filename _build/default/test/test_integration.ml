(* End-to-end integration tests: every workload compiles under every
   strategy, simulates deterministically, and produces array contents
   identical to sequential execution.  Also checks the quantitative
   relationships the paper predicts, and a property test over randomized
   stencil programs. *)

open Fd_core
open Fd_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let strategies = [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ]

let run ?(nprocs = 4) ?(strategy = Options.Interproc) src =
  Driver.run_source ~opts:{ Options.default with nprocs; strategy } src

let verified_case name src =
  Alcotest.test_case name `Quick (fun () ->
      List.iter
        (fun strategy ->
          let r = run ~strategy src in
          if not (Driver.verified r) then
            Alcotest.failf "%s under %s: %d mismatches" name
              (Options.strategy_name strategy)
              (List.length r.Driver.mismatches))
        strategies)

let workload_cases =
  [
    verified_case "fig1 all strategies" (Fd_workloads.Figures.fig1 ());
    verified_case "fig4 all strategies" (Fd_workloads.Figures.fig4 ());
    verified_case "fig15 all strategies" (Fd_workloads.Figures.fig15 ~n:32 ~t:4 ());
    verified_case "dgefa all strategies" (Fd_workloads.Dgefa.source ~n:12 ());
    verified_case "jacobi1d all strategies" (Fd_workloads.Stencil.jacobi1d ~n:64 ~t:3 ());
    verified_case "jacobi2d all strategies" (Fd_workloads.Stencil.jacobi2d ~n:16 ~t:2 ());
    verified_case "redblack all strategies" (Fd_workloads.Stencil.redblack ~n:64 ~t:3 ());
    verified_case "shifts all strategies"
      (Fd_workloads.Stencil.shifts ~n:64 ~widths:[ 1; 2; 3 ] ());
  ]

(* --- Quantitative relationships the paper predicts ------------------------- *)

let msgs r = r.Driver.stats.Stats.messages
let bcasts r = r.Driver.stats.Stats.bcasts
let elapsed r = Stats.elapsed r.Driver.stats

let q_fig4_vectorization () =
  (* interprocedural: one vectorized message pair per neighbor;
     immediate: one per loop iteration (the 100x of Figures 10 vs 12) *)
  let ip = run ~strategy:Options.Interproc (Fd_workloads.Figures.fig4 ~n:100 ()) in
  let im = run ~strategy:Options.Immediate (Fd_workloads.Figures.fig4 ~n:100 ()) in
  check_int "interproc: 3 vectorized messages" 3 (msgs ip);
  check_int "immediate: 100x messages" 300 (msgs im);
  check "interproc faster" true (elapsed ip < elapsed im)

let q_runtime_res_orders_of_magnitude () =
  let ip = run ~strategy:Options.Interproc (Fd_workloads.Figures.fig1 ~n:400 ()) in
  let rr = run ~strategy:Options.Runtime_resolution (Fd_workloads.Figures.fig1 ~n:400 ()) in
  (* element messages: one per boundary element instead of one vectorized
     message per boundary *)
  check "element messages" true (msgs rr = 5 * msgs ip);
  check "slower" true (elapsed rr > 2.0 *. elapsed ip)

let q_dgefa_ordering () =
  let src = Fd_workloads.Dgefa.source ~n:16 () in
  let ip = run ~strategy:Options.Interproc src in
  let im = run ~strategy:Options.Immediate src in
  let rr = run ~strategy:Options.Runtime_resolution src in
  check "interproc < immediate" true (elapsed ip < elapsed im);
  check "immediate < runtime-res" true (elapsed im < elapsed rr);
  (* interprocedural: ~3 collectives per elimination step *)
  check "O(n) collectives" true (bcasts ip <= 3 * 16 + 2);
  check "immediate has O(n^2/2) extra broadcasts" true (bcasts im > 2 * bcasts ip)

let q_dgefa_matches_native_lu () =
  let n = 16 in
  let r = run (Fd_workloads.Dgefa.source ~n ()) in
  assert (Driver.verified r);
  let reference, _ = Fd_workloads.Dgefa.reference_lu n in
  let a = List.assoc "a" r.Driver.seq.Seq_interp.arrays in
  for i = 1 to n do
    for j = 1 to n do
      let v = Value.to_float (Storage.read ~strict:false a [| i; j |]) in
      if Float.abs (v -. reference.(i - 1).(j - 1)) > 1e-9 then
        Alcotest.failf "LU mismatch at (%d,%d): %g vs %g" i j v
          reference.(i - 1).(j - 1)
    done
  done

let q_scaling_procs () =
  (* more processors -> shorter simulated time for a large-enough stencil *)
  let src = Fd_workloads.Stencil.jacobi1d ~n:2048 ~t:4 () in
  let t2 = elapsed (run ~nprocs:2 src) in
  let t8 = elapsed (run ~nprocs:8 src) in
  check "scales with processors" true (t8 < t2)

let q_collectives_ablation () =
  (* disabling broadcast recognition turns each bcast into P-1 messages *)
  let src = Fd_workloads.Dgefa.source ~n:12 () in
  let with_coll = run src in
  let without =
    Driver.run_source
      ~opts:{ Options.default with Options.use_collectives = false }
      src
  in
  check "both verified" true (Driver.verified with_coll && Driver.verified without);
  check "no-collectives sends messages instead" true
    (msgs without > msgs with_coll + bcasts with_coll);
  check "tree broadcasts are faster" true (elapsed with_coll <= elapsed without)

let q_nprocs_sweep () =
  List.iter
    (fun p ->
      let r = run ~nprocs:p (Fd_workloads.Figures.fig1 ~n:96 ()) in
      check (Fmt.str "P=%d verified" p) true (Driver.verified r))
    [ 1; 2; 3; 4; 6; 8 ]

let q_uneven_extent () =
  (* extent not divisible by P exercises ragged blocks *)
  List.iter
    (fun n ->
      let r = run ~nprocs:4 (Fd_workloads.Figures.fig1 ~n ~shift:3 ()) in
      check (Fmt.str "n=%d verified" n) true (Driver.verified r))
    [ 97; 101; 103 ]

let q_negative_shift () =
  let src =
    "program p\n  parameter (n = 64)\n  real x(64)\n  integer i\n  distribute x(block)\n  do i = 1, n\n    x(i) = float(i)\n  enddo\n  call f(x)\n  print *, x(n)\nend\nsubroutine f(x)\n  parameter (n = 64)\n  real x(64)\n  integer i\n  do i = 2, n\n    x(i) = x(i-1) + x(i)\n  enddo\nend\n"
  in
  (* backward shift carries a true dependence: compiler must fall back to
     run-time resolution for that statement and stay correct *)
  let r = run src in
  check "carried-dependence fallback verified" true (Driver.verified r)

(* --- Randomized stencil property test --------------------------------------- *)

let gen_program =
  QCheck2.Gen.(
    let* n = int_range 16 48 in
    let* dist = oneofl [ "block"; "cyclic" ] in
    let* shifts = list_size (int_range 1 4) (int_range 0 3) in
    let* in_subroutine = bool in
    return (n, dist, shifts, in_subroutine))

let build_program (n, dist, shifts, in_subroutine) =
  (* alternating sweeps b <- f(a shifted), then swap roles via copy *)
  let ops =
    List.mapi
      (fun idx c ->
        if in_subroutine then Fmt.str "  call op%d(a, b)\n  call cp(b, a)" idx
        else
          Fmt.str
            "  do i = 1, n - %d\n    b(i) = a(i+%d) + 0.5\n  enddo\n  do i = 1, n\n    a(i) = b(i)\n  enddo"
            c c)
      shifts
  in
  let subs =
    if in_subroutine then
      List.mapi
        (fun idx c ->
          Fmt.str
            "subroutine op%d(a, b)\n  parameter (n = %d)\n  real a(%d), b(%d)\n  integer i\n  do i = 1, n - %d\n    b(i) = a(i+%d) + 0.5\n  enddo\nend\n"
            idx n n n c c)
        shifts
      @ [ Fmt.str
            "subroutine cp(b, a)\n  parameter (n = %d)\n  real a(%d), b(%d)\n  integer i\n  do i = 1, n\n    a(i) = b(i)\n  enddo\nend\n"
            n n n ]
    else []
  in
  Fmt.str
    "program r\n  parameter (n = %d)\n  real a(%d), b(%d)\n  integer i\n  distribute a(%s)\n  distribute b(%s)\n  do i = 1, n\n    a(i) = float(mod(i*7, 11))\n    b(i) = 0.0\n  enddo\n%s\n  print *, a(1)\nend\n%s"
    n n n dist dist
    (String.concat "\n" ops)
    (String.concat "" subs)

let prop_random_stencils =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"random stencil programs verify under all strategies"
       gen_program
       (fun params ->
         let src = build_program params in
         List.for_all
           (fun strategy ->
             let r = run ~strategy src in
             Driver.verified r)
           strategies))

let suite =
  workload_cases
  @ [
      Alcotest.test_case "fig4 cross-procedure vectorization" `Quick q_fig4_vectorization;
      Alcotest.test_case "runtime resolution cost" `Quick q_runtime_res_orders_of_magnitude;
      Alcotest.test_case "dgefa strategy ordering" `Quick q_dgefa_ordering;
      Alcotest.test_case "dgefa equals native LU" `Quick q_dgefa_matches_native_lu;
      Alcotest.test_case "processor scaling" `Quick q_scaling_procs;
      Alcotest.test_case "collectives ablation" `Quick q_collectives_ablation;
      Alcotest.test_case "nprocs sweep" `Quick q_nprocs_sweep;
      Alcotest.test_case "uneven extents" `Quick q_uneven_extent;
      Alcotest.test_case "carried dependence fallback" `Quick q_negative_shift;
      prop_random_stencils;
    ]

(* --- ADI: dynamic remapping vs static distribution --------------------------- *)

let adi_both_verify () =
  let dyn = run (Fd_workloads.Adi.dynamic ~n:16 ~t:2 ()) in
  let sta = run (Fd_workloads.Adi.static_ ~n:16 ~t:2 ()) in
  check "dynamic verified" true (Driver.verified dyn);
  check "static verified" true (Driver.verified sta);
  (* the two variants compute the same answer *)
  check "same output" true
    (Stats.outputs dyn.Driver.stats = Stats.outputs sta.Driver.stats);
  (* dynamic uses remaps and no messages; static uses element messages *)
  check "dynamic has remaps" true (dyn.Driver.stats.Stats.remaps > 0);
  check_int "dynamic needs no messages" 0 (msgs dyn);
  check "static pays element messages" true (msgs sta > 0)

let suite =
  suite
  @ [ Alcotest.test_case "adi dynamic vs static" `Quick adi_both_verify ]

(* --- Seeded fuzzing over the Gen workload generator --------------------------- *)

let fuzz_gen () =
  let st = Random.State.make [| 0x5eed |] in
  for _case = 1 to 40 do
    let src = Fd_workloads.Gen.random_source st in
    List.iter
      (fun strategy ->
        match run ~strategy src with
        | r ->
          if not (Driver.verified r) then
            Alcotest.failf "fuzz mismatch under %s for:\n%s"
              (Options.strategy_name strategy) src
        | exception e ->
          Alcotest.failf "fuzz exception (%s) under %s for:\n%s"
            (Printexc.to_string e)
            (Options.strategy_name strategy) src)
      strategies
  done

let fuzz_nprocs () =
  let st = Random.State.make [| 0xfeed |] in
  for _case = 1 to 10 do
    let src = Fd_workloads.Gen.random_source st in
    List.iter
      (fun p ->
        let r = run ~nprocs:p src in
        if not (Driver.verified r) then
          Alcotest.failf "fuzz mismatch at P=%d for:\n%s" p src)
      [ 1; 2; 3; 5; 8 ]
  done

let suite =
  suite
  @ [
      Alcotest.test_case "fuzz: generated programs x strategies" `Slow fuzz_gen;
      Alcotest.test_case "fuzz: generated programs x nprocs" `Slow fuzz_nprocs;
    ]

(* --- Block-cyclic distribution end to end ------------------------------------- *)

let block_cyclic_e2e () =
  let src =
    "program p\n  parameter (n = 24)\n  real x(24)\n  integer i\n  distribute x(block_cyclic(3))\n  do i = 1, n\n    x(i) = float(i)\n  enddo\n  call f(x)\n  print *, x(1)\nend\nsubroutine f(x)\n  parameter (n = 24)\n  real x(24)\n  integer i\n  do i = 1, n - 3\n    x(i) = x(i+3) + 1.0\n  enddo\nend\n"
  in
  List.iter
    (fun strategy ->
      let r = run ~strategy src in
      check (Fmt.str "block_cyclic %s" (Options.strategy_name strategy)) true
        (Driver.verified r))
    strategies

(* --- Golden SPMD output for the paper's Figure 1/2 ----------------------------- *)

let golden_fig1 () =
  let compiled =
    Driver.compile_source
      ~opts:{ Options.default with Options.nprocs = 4 }
      (Fd_workloads.Figures.fig1 ~n:100 ~shift:5 ())
  in
  let text = Node.program_to_string compiled.Codegen.program in
  let expects =
    [ (* reduced loop bounds with the boundary clip (paper's ub$1) *)
      "do i = 25 * my$p + 1, min(25 * my$p + 25, 95)";
      (* vectorized guarded boundary exchange, hoisted into the caller *)
      "send x(25 * my$p + 1:25 * my$p + 5) to my$p - 1";
      "if (my$p >= 1) then";
      "recv from my$p + 1";
      "if (my$p <= 2) then" ]
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "generated SPMD lacks %S:\n%s" needle text)
    expects

let suite =
  suite
  @ [
      Alcotest.test_case "block-cyclic end to end" `Quick block_cyclic_e2e;
      Alcotest.test_case "golden fig1 SPMD output" `Quick golden_fig1;
    ]

(* --- Edge cases: tiny extents, big shifts, empty processors ------------------- *)

let edge_cases () =
  let cases =
    [ ("n=3 P=4 (empty procs)", Fd_workloads.Figures.fig1 ~n:3 ~shift:1 ());
      ("n=7 P=4 (ragged)", Fd_workloads.Figures.fig1 ~n:7 ~shift:1 ());
      ("shift > block", Fd_workloads.Figures.fig1 ~n:16 ~shift:5 ());
      ("shift = n-1", Fd_workloads.Figures.fig1 ~n:8 ~shift:7 ());
      ("both shifts",
       "program p\n  parameter (n = 32)\n  real a(32), b(32)\n  integer i\n  distribute a(block)\n  distribute b(block)\n  do i = 1, n\n    a(i) = float(i)\n    b(i) = 0.0\n  enddo\n  call f(a, b)\n  print *, b(16)\nend\nsubroutine f(a, b)\n  parameter (n = 32)\n  real a(32), b(32)\n  integer i\n  do i = 2, n-1\n    b(i) = a(i-1) + a(i+1)\n  enddo\nend\n");
      ("cyclic tiny",
       "program p\n  real x(3)\n  integer i\n  distribute x(cyclic)\n  do i = 1, 3\n    x(i) = float(i)\n  enddo\n  call f(x)\n  print *, x(1)\nend\nsubroutine f(x)\n  real x(3)\n  integer i\n  do i = 1, 3\n    x(i) = x(i) * 2.0\n  enddo\nend\n");
      ("zero-trip partitioned loop",
       "program p\n  parameter (n = 8)\n  real x(8)\n  integer i\n  distribute x(block)\n  do i = 5, 4\n    x(i) = 1.0\n  enddo\n  do i = 1, n\n    x(i) = float(i)\n  enddo\n  print *, x(8)\nend\n") ]
  in
  List.iter
    (fun (name, src) ->
      let r = run src in
      if not (Driver.verified r) then Alcotest.failf "%s failed verification" name)
    cases;
  (* one processor: everything local, zero messages *)
  let r1 = run ~nprocs:1 (Fd_workloads.Dgefa.source ~n:8 ()) in
  check "P=1 verified" true (Driver.verified r1);
  check_int "P=1 sends nothing" 0 (msgs r1)

let suite = suite @ [ Alcotest.test_case "edge cases" `Quick edge_cases ]

let fuzz_gen_2d () =
  let st = Random.State.make [| 0x2d2d |] in
  for _case = 1 to 25 do
    let src = Fd_workloads.Gen.random_source2d st in
    List.iter
      (fun strategy ->
        match run ~strategy src with
        | r ->
          if not (Driver.verified r) then
            Alcotest.failf "2D fuzz mismatch under %s for:\n%s"
              (Options.strategy_name strategy) src
        | exception e ->
          Alcotest.failf "2D fuzz exception (%s) under %s for:\n%s"
            (Printexc.to_string e)
            (Options.strategy_name strategy) src)
      strategies
  done

let suite =
  suite @ [ Alcotest.test_case "fuzz: 2D generated programs" `Slow fuzz_gen_2d ]

(* --- Message aggregation (paper Fig. 11) --------------------------------------- *)

let aggregation_ablation () =
  let src = Fd_workloads.Stencil.multi_array ~n:64 ~t:2 () in
  let with_agg = run src in
  let without =
    Driver.run_source
      ~opts:{ Options.default with Options.aggregate_messages = false }
      src
  in
  check "both verified" true (Driver.verified with_agg && Driver.verified without);
  (* three same-direction transfers merge into one message per pair *)
  check_int "aggregated" 6 (msgs with_agg);
  check_int "unaggregated" 18 (msgs without);
  check_int "same volume" without.Driver.stats.Stats.message_bytes
    with_agg.Driver.stats.Stats.message_bytes;
  check "aggregation is faster" true (elapsed with_agg < elapsed without)

let aggregation_all_strategies () =
  let src = Fd_workloads.Stencil.multi_array ~n:32 ~t:2 () in
  List.iter
    (fun strategy ->
      let r = run ~strategy src in
      check (Options.strategy_name strategy) true (Driver.verified r))
    strategies

let suite =
  suite
  @ [
      Alcotest.test_case "message aggregation ablation" `Quick aggregation_ablation;
      Alcotest.test_case "multi-array workload strategies" `Quick aggregation_all_strategies;
    ]

(* --- Multi-level call chains ----------------------------------------------------- *)

let chain_src = {|
program p
  parameter (n = 64)
  real a(64), b(64)
  integer i, it
  distribute a(block)
  distribute b(block)
  do i = 1, n
    a(i) = float(i)
    b(i) = 0.0
  enddo
  do it = 1, 3
    call g(a, b)
  enddo
  print *, b(1), b(n-1)
end

subroutine g(a, b)
  parameter (n = 64)
  real a(64), b(64)
  integer i
  call op(a, b)
  do i = 1, n
    a(i) = b(i)
  enddo
end

subroutine op(a, b)
  parameter (n = 64)
  real a(64), b(64)
  integer i
  do i = 1, n-2
    b(i) = a(i+2) * 0.5
  enddo
end
|}

let owner_chain_src = {|
program p
  parameter (n = 32)
  real a(32,32)
  integer k, l
  distribute a(:,cyclic)
  do k = 1, n
    do l = 1, n
      a(l,k) = float(mod(l*3+k, 7))
    enddo
  enddo
  do k = 1, n
    call outer(a, k)
  enddo
  print *, a(1,1)
end

subroutine outer(a, k)
  parameter (n = 32)
  real a(32,32)
  integer k, l
  call finder(a, k, l)
  call scaler(a, k, l)
end

subroutine finder(a, k, l)
  parameter (n = 32)
  real a(32,32)
  integer k, l, i
  l = 1
  do i = 2, n
    if (a(i,k) > a(l,k)) then
      l = i
    endif
  enddo
end

subroutine scaler(a, k, l)
  parameter (n = 32)
  real a(32,32)
  integer k, l, i
  do i = 1, n
    a(i,k) = a(i,k) / (a(l,k) + 1.0)
  enddo
end
|}

let chain_two_level () =
  List.iter
    (fun strategy ->
      let r = run ~strategy chain_src in
      check (Options.strategy_name strategy) true (Driver.verified r))
    strategies

let chain_owner_composes () =
  (* the owner(k) constraint composes through three call levels: the
     whole subtree runs on one processor with no communication at all *)
  let r = run owner_chain_src in
  check "verified" true (Driver.verified r);
  check_int "zero messages" 0 (msgs r);
  check_int "only the print broadcast" 1 (bcasts r);
  (* the composed constraint is exported by outer itself *)
  (match (Codegen.export_of r.Driver.compiled.Codegen.state "outer").Exports.ex_constraint with
  | Exports.C_owner { co_array = "a"; co_dim = 1; _ } -> ()
  | _ -> Alcotest.fail "outer should compose the owner constraint");
  List.iter
    (fun strategy ->
      let r = run ~strategy owner_chain_src in
      check (Options.strategy_name strategy) true (Driver.verified r))
    [ Options.Immediate; Options.Runtime_resolution ]

let suite =
  suite
  @ [
      Alcotest.test_case "two-level call chain" `Quick chain_two_level;
      Alcotest.test_case "owner constraint composes through chain" `Quick
        chain_owner_composes;
    ]
