(* Deeper property-based tests: the dependence tester against brute-force
   iteration enumeration, region algebra against element-wise semantics,
   and closed-form fitting against direct evaluation. *)

open Fd_support
open Fd_frontend
open Fd_analysis

let prop ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- Dependence vs brute force ------------------------------------------ *)

(* One loop, one statement: a(i + cw) = ... a(i + cr) ...  Brute-force the
   flow dependences and check true_dep covers them (it may be
   conservative, never unsound). *)
let dep_case_gen =
  QCheck2.Gen.(
    let* lo = int_range 1 5 in
    let* trip = int_range 1 20 in
    let* cw = int_range 0 6 in
    let* cr = int_range 0 6 in
    return (lo, lo + trip - 1, cw, cr))

let brute_force_flow (lo, hi, cw, cr) =
  (* is there a write iteration i1 and read iteration i2 with i1 < i2 and
     i1 + cw = i2 + cr?  (same-iteration read happens before write here,
     so equality does not create a flow dependence) *)
  let carried = ref false in
  for i1 = lo to hi do
    for i2 = lo to hi do
      if i1 < i2 && i1 + cw = i2 + cr then carried := true
    done
  done;
  !carried

let make_refs (lo, hi, cw, cr) =
  let src =
    Fmt.str
      "program p\n  real a(100)\n  integer i\n  do i = %d, %d\n    a(i+%d) = a(i+%d)\n  enddo\nend\n"
      lo hi cw cr
  in
  let cu = List.hd (Sema.check_source src).Sema.units in
  let refs = Sections.collect cu.Sema.symtab cu.Sema.unit_.Ast.body in
  let w = List.find (fun r -> r.Sections.is_write) refs in
  let r = List.find (fun r -> not r.Sections.is_write) refs in
  (w, r)

let dep_brute_force =
  prop "true_dep covers brute-force flow dependences" dep_case_gen
    (fun ((_, _, _, _) as case) ->
      let w, r = make_refs case in
      let d = Dependence.true_dep w r in
      let actual = brute_force_flow case in
      (* soundness: an actual carried dependence must be reported *)
      (not actual) || d.Dependence.carried <> [])

let dep_exactness =
  (* for strong-SIV single-variable cases the test is exact, not just
     conservative *)
  prop "true_dep is exact on strong SIV" dep_case_gen
    (fun ((_, _, _, _) as case) ->
      let w, r = make_refs case in
      let d = Dependence.true_dep w r in
      brute_force_flow case = (d.Dependence.carried <> []))

(* --- Region algebra vs element-wise semantics ----------------------------- *)

let box_gen =
  QCheck2.Gen.(
    let* lo1 = int_range 0 8 in
    let* len1 = int_range 0 6 in
    let* lo2 = int_range 0 8 in
    let* len2 = int_range 0 6 in
    return [ Triplet.range lo1 (lo1 + len1); Triplet.range lo2 (lo2 + len2) ])

let region_gen =
  QCheck2.Gen.(
    let* boxes = list_size (int_range 0 3) box_gen in
    return (List.fold_left (fun acc b -> Region.union acc (Region.of_triplets b))
              (Region.empty 2) boxes))

let elements r =
  let out = ref [] in
  for x = 0 to 20 do
    for y = 0 to 20 do
      if Region.mem [| x; y |] r then out := (x, y) :: !out
    done
  done;
  List.sort compare !out

let region_props =
  [
    prop ~count:200 "region diff/inter element-wise"
      QCheck2.Gen.(pair region_gen region_gen)
      (fun (a, b) ->
        let ea = elements a and eb = elements b in
        let ed = elements (Region.diff a b) and ei = elements (Region.inter a b) in
        ed = List.filter (fun x -> not (List.mem x eb)) ea
        && ei = List.filter (fun x -> List.mem x eb) ea);
    prop ~count:200 "region union element-wise and count-exact"
      QCheck2.Gen.(pair region_gen region_gen)
      (fun (a, b) ->
        let u = Region.union a b in
        elements u = List.sort_uniq compare (elements a @ elements b)
        && Region.count u = List.length (elements u));
    prop ~count:200 "region simplify preserves semantics"
      region_gen
      (fun a -> elements (Region.simplify a) = elements a);
  ]

(* --- Fit: closed forms evaluate back to the data -------------------------- *)

let eval_expr_at_p (e : Ast.expr) (p : int) : int =
  let rec go e =
    match e with
    | Ast.Int_const n -> n
    | Ast.Var "my$p" -> p
    | Ast.Bin (Ast.Add, a, b) -> go a + go b
    | Ast.Bin (Ast.Sub, a, b) -> go a - go b
    | Ast.Bin (Ast.Mul, a, b) -> go a * go b
    | Ast.Bin (Ast.Div, a, b) -> go a / go b
    | Ast.Funcall ("min", args) -> List.fold_left min max_int (List.map go args)
    | Ast.Funcall ("max", args) -> List.fold_left max min_int (List.map go args)
    | Ast.Funcall ("tab$", sel :: consts) -> go (List.nth consts (go sel))
    | Ast.Un (Ast.Neg, a) -> -go a
    | _ -> failwith "unexpected expr"
  in
  go e

let fit_roundtrip =
  prop ~count:300 "expr_of_values evaluates back to the data"
    QCheck2.Gen.(
      let* n = int_range 1 8 in
      let* values = array_size (return n) (int_range (-40) 40) in
      return values)
    (fun values ->
      let e = Fd_core.Fit.expr_of_values values in
      Array.for_all Fun.id
        (Array.mapi (fun p v -> eval_expr_at_p e p = v) values))

let fit_procset_roundtrip =
  prop ~count:300 "fit_procset reproduces the per-processor sets"
    QCheck2.Gen.(
      let* n = int_range 2 8 in
      let* kind = int_range 0 2 in
      let* extent = int_range 4 60 in
      return (n, kind, extent))
    (fun (nprocs, kind, extent) ->
      let dist =
        match kind with
        | 0 -> Fd_machine.Layout.Block (Fd_machine.Layout.block_size_for ~nprocs (1, extent))
        | 1 -> Fd_machine.Layout.Cyclic
        | _ -> Fd_machine.Layout.Block 2
      in
      let layout =
        { Fd_machine.Layout.bounds = [ (1, extent) ]; dist_dim = Some 0; dist }
      in
      let owned = Fd_machine.Layout.owned layout ~nprocs in
      match Fd_core.Fit.fit_procset_opt owned with
      | None -> true  (* multi-triplet family (e.g. small block size): allowed *)
      | Some { Fd_core.Fit.f_lo; f_hi; f_step; f_guard } ->
        let ok = ref true in
        for p = 0 to nprocs - 1 do
          let participates =
            match f_guard with
            | None -> true
            | Some g -> (
              let rec truth e =
                match e with
                | Ast.Logical_const b -> b
                | Ast.Bin (Ast.Le, a, b) -> eval_expr_at_p a p <= eval_expr_at_p b p
                | Ast.Bin (Ast.Ge, a, b) -> eval_expr_at_p a p >= eval_expr_at_p b p
                | Ast.Bin (Ast.Eq, a, b) -> eval_expr_at_p a p = eval_expr_at_p b p
                | Ast.Bin (Ast.And, a, b) -> truth a && truth b
                | _ -> failwith "unexpected guard"
              in
              truth g)
          in
          let set =
            if not participates then Iset.empty
            else
              let lo = eval_expr_at_p f_lo p
              and hi = eval_expr_at_p f_hi p
              and step = eval_expr_at_p f_step p in
              if hi < lo then Iset.empty
              else Iset.of_triplet (Triplet.make ~lo ~hi ~step)
          in
          if not (Iset.equal set owned.(p)) then ok := false
        done;
        !ok)

let suite =
  [ dep_brute_force; dep_exactness; fit_roundtrip; fit_procset_roundtrip ]
  @ region_props
