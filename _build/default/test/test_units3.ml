(* Third battery: Procset, affine algebra properties, overlap with
   negative offsets, recompilation with structural edits, sema corners,
   and generated-code shape under the Immediate strategy. *)

open Fd_support
open Fd_frontend
open Fd_analysis
open Fd_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Procset -------------------------------------------------------------- *)

let ps_basics () =
  let t = Procset.make 4 (fun p -> Iset.range ((10 * p) + 1) (10 * (p + 1))) in
  check_int "nprocs" 4 (Procset.nprocs t);
  check_int "total" 40 (Procset.total_count t);
  check "owners" true (Procset.owners 15 t = [ 1 ]);
  check "flatten" true (Iset.equal (Procset.flatten t) (Iset.range 1 40));
  let shifted = Procset.shift 5 t in
  check "shift" true (Iset.equal (Procset.get shifted 0) (Iset.range 6 15));
  let d = Procset.diff shifted t in
  check "diff per proc" true (Iset.equal (Procset.get d 0) (Iset.range 11 15));
  check "equal reflexive" true (Procset.equal t t);
  check "uniform replicates" true
    (Procset.equal (Procset.uniform 2 (Iset.range 1 3))
       (Procset.make 2 (fun _ -> Iset.range 1 3)))

(* --- Affine algebra properties ---------------------------------------------- *)

let affine_props =
  let gen =
    QCheck2.Gen.(
      let* ci = int_range (-5) 5 in
      let* cj = int_range (-5) 5 in
      let* k = int_range (-20) 20 in
      return (Affine.add (Affine.add (Affine.var ~coeff:ci "i") (Affine.var ~coeff:cj "j"))
                (Affine.const k)))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"affine add/sub cancel"
         QCheck2.Gen.(pair gen gen)
         (fun (a, b) -> Affine.equal (Affine.sub (Affine.add a b) b) a));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"affine eval is linear"
         QCheck2.Gen.(pair gen gen)
         (fun (a, b) ->
           let env v = if v = "i" then Some 3 else if v = "j" then Some (-2) else None in
           Affine.eval env (Affine.add a b) = Affine.eval env a + Affine.eval env b));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300 ~name:"affine to_expr/of_expr roundtrip" gen
         (fun a ->
           let st = Symtab.create ~unit_name:"t" ~formal_order:[] in
           match Affine.of_expr st (Affine.to_expr a) with
           | Some a' -> Affine.equal a a'
           | None -> false));
  ]

(* --- Overlap with negative offsets -------------------------------------------- *)

let overlap_negative () =
  let src =
    "program p\n  parameter (n = 32)\n  real u(32)\n  integer i\n  distribute u(block)\n  do i = 3, n\n    u(i) = u(i-2)\n  enddo\n  print *, u(n)\nend\n"
  in
  let rows = Overlap.analyze Options.default (Sema.check_source src) in
  let r = List.find (fun r -> r.Overlap.ov_array = "u") rows in
  check_int "neg estimate" 2 r.Overlap.ov_estimated.Overlap.neg;
  check_int "no pos" 0 r.Overlap.ov_estimated.Overlap.pos

(* --- Recompilation: structural edits ------------------------------------------- *)

let recompile_new_procedure () =
  let before = Fd_workloads.Stencil.jacobi1d ~n:32 ~t:2 () in
  (* appending an unused procedure recompiles nothing existing *)
  let after = before ^ "\nsubroutine unused(q)\n  real q(32)\n  integer i\n  do i = 1, 32\n    q(i) = 0.0\n  enddo\nend\n" in
  let procs, _total = Recompile.after_edit ~before ~after () in
  check "only the new procedure" true
    (List.for_all (fun p -> String.equal p "unused") procs)

let recompile_caller_loop_change () =
  (* changing only the caller's loop bound leaves the callees alone *)
  let before = Fd_workloads.Stencil.jacobi1d ~n:32 ~t:2 () in
  let after = Str.global_replace (Str.regexp_string "t = 2") "t = 3" before in
  let procs, _ = Recompile.after_edit ~before ~after () in
  check "only main recompiles" true (procs = [ "jacobi" ])

(* --- Sema corners ----------------------------------------------------------------- *)

let sema_implicit_typing () =
  (* undeclared m is integer (i-n), undeclared q is real *)
  let cp =
    Sema.check_source "program p\n  real x\n  m = 3\n  q = 1.5\n  x = q + float(m)\nend\n"
  in
  ignore cp

let sema_elseif_chain () =
  let cp =
    Sema.check_source
      "program p\n  integer k\n  k = 2\n  if (k == 1) then\n    k = 10\n  elseif (k == 2) then\n    k = 20\n  elseif (k == 3) then\n    k = 30\n  else\n    k = 40\n  endif\n  print *, k\nend\n"
  in
  let r = Fd_machine.Seq_interp.run cp in
  check "elseif chain" true (r.Fd_machine.Seq_interp.outputs = [ "20" ])

let sema_do_negative_step_semantics () =
  let cp =
    Sema.check_source
      "program p\n  integer i, s\n  s = 0\n  do i = 5, 1, -2\n    s = s + i\n  enddo\n  print *, s\nend\n"
  in
  let r = Fd_machine.Seq_interp.run cp in
  check "5+3+1" true (r.Fd_machine.Seq_interp.outputs = [ "9" ])

(* --- Immediate strategy generated-code shape ----------------------------------------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let immediate_self_guard () =
  let compiled =
    Driver.compile_source
      ~opts:{ Options.default with Options.strategy = Options.Immediate }
      (Fd_workloads.Dgefa.source ~n:16 ())
  in
  let text = Fd_machine.Node.program_to_string compiled.Codegen.program in
  (* idamax guards itself on the owner of column k and broadcasts l *)
  check "self guard in callee" true (contains text "if (my$p == mod(k - 1, 4)) then");
  check "scalar broadcast inside callee" true (contains text "broadcast l from mod(k - 1, 4)")

let interproc_caller_guard () =
  let compiled = Driver.compile_source (Fd_workloads.Dgefa.source ~n:16 ()) in
  let text = Fd_machine.Node.program_to_string compiled.Codegen.program in
  (* under interproc the *caller* guards the idamax call *)
  check "caller guards the call" true (contains text "call idamax(a, k, l)");
  check "pivot column broadcast hoisted before the j loop" true
    (contains text "broadcast a(");
  check "cyclic j loop alignment" true (contains text ", 16, 4")

(* --- Runtime-res generated-code shape -------------------------------------------------- *)

let runtime_res_shape () =
  let compiled =
    Driver.compile_source
      ~opts:{ Options.default with Options.strategy = Options.Runtime_resolution }
      (Fd_workloads.Figures.fig1 ~n:16 ~shift:2 ())
  in
  let text = Fd_machine.Node.program_to_string compiled.Codegen.program in
  check "runtime ownership query" true (contains text "owner$(x,");
  check "per-element guarded send" true (contains text "send x(i + 2:i + 2)")

let suite =
  [
    Alcotest.test_case "procset basics" `Quick ps_basics;
    Alcotest.test_case "overlap negative offsets" `Quick overlap_negative;
    Alcotest.test_case "recompile new procedure" `Quick recompile_new_procedure;
    Alcotest.test_case "recompile caller loop change" `Quick recompile_caller_loop_change;
    Alcotest.test_case "sema implicit typing" `Quick sema_implicit_typing;
    Alcotest.test_case "sema elseif chain" `Quick sema_elseif_chain;
    Alcotest.test_case "do negative step" `Quick sema_do_negative_step_semantics;
    Alcotest.test_case "immediate self-guard shape" `Quick immediate_self_guard;
    Alcotest.test_case "interproc caller-guard shape" `Quick interproc_caller_guard;
    Alcotest.test_case "runtime-res shape" `Quick runtime_res_shape;
  ]
  @ affine_props

(* --- Partition log --------------------------------------------------------------- *)

let partition_log () =
  let compiled = Driver.compile_source (Fd_workloads.Dgefa.source ~n:16 ()) in
  let log = compiled.Codegen.state.Codegen.partition_log in
  let for_proc p = List.filter (fun (q, _) -> String.equal q p) log in
  check "every loop logged" true (List.length log >= 7);
  check "swaprow partitioned" true
    (List.exists (fun (_, l) -> contains l "partitioned") (for_proc "swaprow"));
  check "dgefa j loop symbolic" true
    (List.exists (fun (_, l) -> contains l "symbolically") (for_proc "dgefa"));
  check "idamax replicated" true
    (List.for_all (fun (_, l) -> contains l "replicated") (for_proc "idamax"))

let suite = suite @ [ Alcotest.test_case "partition log" `Quick partition_log ]
