(* Analysis library tests: affine forms, regions, CFG shape, dataflow
   fixpoints, reference collection, and dependence classification. *)

open Fd_support
open Fd_frontend
open Fd_analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let unit_of src = List.hd (Sema.check_source src).Sema.units

(* --- Affine -------------------------------------------------------------- *)

let empty_symtab () = Symtab.create ~unit_name:"t" ~formal_order:[]

let a_of_expr () =
  let st = empty_symtab () in
  let e = Ast.Bin (Ast.Add, Ast.Bin (Ast.Mul, Ast.Int_const 3, Ast.Var "i"),
                   Ast.Bin (Ast.Sub, Ast.Var "j", Ast.Int_const 4)) in
  match Affine.of_expr st e with
  | Some a ->
    check_int "coeff i" 3 (Affine.coeff_of "i" a);
    check_int "coeff j" 1 (Affine.coeff_of "j" a);
    check_int "const" (-4) (Affine.constant a)
  | None -> Alcotest.fail "should be affine"

let a_nonaffine () =
  let st = empty_symtab () in
  check "i*j is not affine" true
    (Affine.of_expr st (Ast.Bin (Ast.Mul, Ast.Var "i", Ast.Var "j")) = None)

let a_param_fold () =
  let cu = unit_of "program p\n  parameter (n = 8)\n  integer i\n  i = n\nend\n" in
  match Affine.of_expr cu.Sema.symtab (Ast.Bin (Ast.Mul, Ast.Var "n", Ast.Var "i")) with
  | Some a -> check_int "n*i folds to 8i" 8 (Affine.coeff_of "i" a)
  | None -> Alcotest.fail "n*i should fold"

let a_roundtrip () =
  let st = empty_symtab () in
  let a = Affine.add (Affine.var ~coeff:2 "i") (Affine.const (-3)) in
  match Affine.of_expr st (Affine.to_expr a) with
  | Some a' -> check "to_expr/of_expr roundtrip" true (Affine.equal a a')
  | None -> Alcotest.fail "roundtrip failed"

(* --- Region --------------------------------------------------------------- *)

let box lo1 hi1 lo2 hi2 =
  Region.of_triplets [ Triplet.range lo1 hi1; Triplet.range lo2 hi2 ]

let r_diff_frame () =
  (* removing the interior of a square leaves a frame of 4 slabs *)
  let outer = box 1 10 1 10 and inner = box 3 8 3 8 in
  let frame = Region.diff outer inner in
  check_int "frame count" (100 - 36) (Region.count frame);
  check "disjoint from inner" true (Region.disjoint frame inner);
  check "union restores" true (Region.equal (Region.union frame inner) outer)

let r_subset () =
  check "subset" true (Region.subset (box 2 3 2 3) (box 1 10 1 10));
  check "not subset" false (Region.subset (box 0 3 2 3) (box 1 10 1 10))

let r_simplify_merges () =
  let a = box 1 5 1 10 and b = box 6 12 1 10 in
  let u = Region.simplify (Region.union a b) in
  check_int "merged to one box" 1 (List.length (Region.boxes u));
  check_int "count preserved" 120 (Region.count u)

let r_hull () =
  let r = Region.union (box 1 2 1 2) (box 9 10 9 10) in
  match Region.hull r with
  | Some h ->
    check_str "hull dim1" "[1:10]" (Triplet.to_string h.(0));
    check_str "hull dim2" "[1:10]" (Triplet.to_string h.(1))
  | None -> Alcotest.fail "hull of nonempty"

(* --- CFG ------------------------------------------------------------------- *)

let cfg_of src = Cfg.build (unit_of src).Sema.unit_.Ast.body

let c_loop_backedge () =
  let cfg = cfg_of "program p\n  integer i, s\n  do i = 1, 3\n    s = s + 1\n  enddo\nend\n" in
  (* find the DO header and check it has a back edge from the body *)
  let header = ref (-1) and body = ref (-1) in
  for i = 0 to Cfg.length cfg - 1 do
    match Cfg.node cfg i with
    | Cfg.Stmt s -> (
      match s.Ast.kind with
      | Ast.Do _ -> header := i
      | Ast.Assign _ -> body := i
      | _ -> ())
    | _ -> ()
  done;
  check "header -> body" true (List.mem !body (Cfg.succs cfg !header));
  check "body -> header (back edge)" true (List.mem !header (Cfg.succs cfg !body));
  check "header -> exit (zero trip)" true (List.mem Cfg.exit_ (Cfg.succs cfg !header))

let c_if_join () =
  let cfg =
    cfg_of
      "program p\n  real x\n  if (x > 0.0) then\n    x = 1.0\n  else\n    x = 2.0\n  endif\n  x = 3.0\nend\n"
  in
  (* the join statement must have two predecessors *)
  let join = ref (-1) in
  for i = 0 to Cfg.length cfg - 1 do
    match Cfg.node cfg i with
    | Cfg.Stmt { Ast.kind = Ast.Assign (_, Ast.Real_const 3.0); _ } -> join := i
    | _ -> ()
  done;
  check_int "join preds" 2 (List.length (Cfg.preds cfg !join))

let c_return_to_exit () =
  let cfg = cfg_of "program p\n  real x\n  return\n  x = 1.0\nend\n" in
  let ret = ref (-1) and after = ref (-1) in
  for i = 0 to Cfg.length cfg - 1 do
    match Cfg.node cfg i with
    | Cfg.Stmt { Ast.kind = Ast.Return; _ } -> ret := i
    | Cfg.Stmt { Ast.kind = Ast.Assign _; _ } -> after := i
    | _ -> ()
  done;
  check "return -> exit only" true (Cfg.succs cfg !ret = [ Cfg.exit_ ]);
  check "unreachable stmt has no preds" true (Cfg.preds cfg !after = [])

(* --- Dataflow: classic liveness over the gen/kill engine ------------------- *)

let d_genkill_liveness () =
  (* x = 1; y = x; return: x live between def and use *)
  let cfg =
    cfg_of "program p\n  real x, y\n  x = 1.0\n  y = x\nend\n"
  in
  let module IS = Dataflow.Int_set in
  (* facts: live "variable ids": x = 0, y = 1 *)
  let var_id = function "x" -> 0 | "y" -> 1 | _ -> 2 in
  let spec =
    { Dataflow.Genkill.gen =
        (fun _ node ->
          match node with
          | Cfg.Stmt { Ast.kind = Ast.Assign (_, Ast.Var v); _ } ->
            IS.singleton (var_id v)
          | _ -> IS.empty);
      kill =
        (fun _ node ->
          match node with
          | Cfg.Stmt { Ast.kind = Ast.Assign (Ast.Var v, _); _ } ->
            IS.singleton (var_id v)
          | _ -> IS.empty) }
  in
  let r = Dataflow.Genkill.solve ~direction:Dataflow.Backward ~init:IS.empty spec cfg in
  (* at the def of x (output side, i.e. before it), x is not live; after it, x is live *)
  let def_x = ref (-1) in
  for i = 0 to Cfg.length cfg - 1 do
    match Cfg.node cfg i with
    | Cfg.Stmt { Ast.kind = Ast.Assign (Ast.Var "x", _); _ } -> def_x := i
    | _ -> ()
  done;
  check "x live into its def's input (after stmt in exec order)" true
    (IS.mem 0 r.Dataflow.Genkill.Solver.input.(!def_x));
  check "x not live out of its def (backward output)" false
    (IS.mem 0 r.Dataflow.Genkill.Solver.output.(!def_x))

(* --- Sections --------------------------------------------------------------- *)

let refs_of src =
  let cu = unit_of src in
  Sections.collect cu.Sema.symtab cu.Sema.unit_.Ast.body

let s_collect () =
  let refs =
    refs_of
      "program p\n  real a(10)\n  integer i\n  do i = 2, 9\n    a(i) = a(i-1) + a(i+1)\n  enddo\nend\n"
  in
  let writes = List.filter (fun r -> r.Sections.is_write) refs in
  let reads = List.filter (fun r -> not r.Sections.is_write) refs in
  check_int "one write" 1 (List.length writes);
  check_int "two reads" 2 (List.length reads);
  check_int "loop depth" 1 (List.length (List.hd writes).Sections.loops)

let s_region_of_ref () =
  let refs =
    refs_of
      "program p\n  real a(100)\n  integer i\n  do i = 1, 50\n    a(2*i) = 0.0\n  enddo\nend\n"
  in
  let w = List.find (fun r -> r.Sections.is_write) refs in
  let region = Sections.region_of_ref ~declared:[ (1, 100) ] w in
  check_int "strided region count" 50 (Region.count region);
  check "even elements" true (Region.mem [| 4 |] region);
  check "odd excluded" false (Region.mem [| 5 |] region)

let s_triangular_widening () =
  (* j's bounds depend on k: the region widens to the hull *)
  let refs =
    refs_of
      "program p\n  real a(10,10)\n  integer k, j\n  do k = 1, 9\n    do j = k+1, 10\n      a(k,j) = 0.0\n    enddo\n  enddo\nend\n"
  in
  let w = List.find (fun r -> r.Sections.is_write) refs in
  let region = Sections.region_of_ref ~declared:[ (1, 10); (1, 10) ] w in
  check "covers (1,2)" true (Region.mem [| 1; 2 |] region);
  check "hull includes (9,10)" true (Region.mem [| 9; 10 |] region)

(* --- Dependence --------------------------------------------------------------- *)

let dep_between src =
  let refs = refs_of src in
  let w = List.find (fun r -> r.Sections.is_write) refs in
  let r = List.find (fun r -> not r.Sections.is_write) refs in
  Dependence.true_dep w r

let d_forward_shift_no_dep () =
  (* a(i) = f(a(i+5)): read happens before write of same element -> no flow dep *)
  let d =
    dep_between
      "program p\n  real a(100)\n  integer i\n  do i = 1, 95\n    a(i) = a(i+5)\n  enddo\nend\n"
  in
  check "not carried" true (d.Dependence.carried = []);
  check "not loop independent" false d.Dependence.loop_independent

let d_backward_shift_carried () =
  (* a(i) = a(i-1): flow dep carried at level 1 with distance 1 *)
  let d =
    dep_between
      "program p\n  real a(100)\n  integer i\n  do i = 2, 100\n    a(i) = a(i-1)\n  enddo\nend\n"
  in
  check "carried at level 1" true (d.Dependence.carried = [ 1 ])

let d_2d_inner_carried () =
  (* a(i,j) = a(i,j-1): carried at the inner (level 2) loop only *)
  let d =
    dep_between
      "program p\n  real a(10,10)\n  integer i, j\n  do i = 1, 10\n    do j = 2, 10\n      a(i,j) = a(i,j-1)\n    enddo\n  enddo\nend\n"
  in
  check "carried at level 2" true (d.Dependence.carried = [ 2 ])

let d_ziv_independent () =
  let d =
    dep_between
      "program p\n  real a(100)\n  integer i\n  do i = 1, 100\n    a(1) = a(2)\n  enddo\nend\n"
  in
  check "ZIV disproves" true
    (d.Dependence.carried = [] && not d.Dependence.loop_independent)

let d_loop_independent () =
  (* write a(i) then read a(i) in a later statement: loop-independent *)
  let refs =
    refs_of
      "program p\n  real a(100), b(100)\n  integer i\n  do i = 1, 100\n    a(i) = 1.0\n    b(i) = a(i)\n  enddo\nend\n"
  in
  let w = List.find (fun r -> r.Sections.is_write && r.Sections.array = "a") refs in
  let r =
    List.find (fun r -> (not r.Sections.is_write) && r.Sections.array = "a") refs
  in
  let d = Dependence.true_dep w r in
  check "loop independent" true d.Dependence.loop_independent;
  check "not carried" true (d.Dependence.carried = [])

let d_distance_exceeds_trip () =
  (* distance 50 in a 10-trip loop: no dependence *)
  let d =
    dep_between
      "program p\n  real a(100)\n  integer i\n  do i = 51, 60\n    a(i) = a(i-50)\n  enddo\nend\n"
  in
  check "clipped by trip count" true (d.Dependence.carried = [])

let d_deepest_level () =
  let refs =
    refs_of
      "program p\n  real a(100)\n  integer i\n  do i = 2, 100\n    a(i) = a(i-1)\n  enddo\nend\n"
  in
  let r = List.find (fun r -> not r.Sections.is_write) refs in
  check "deepest = 1" true (Dependence.deepest_true_dep_level refs r = Some 1)

let suite =
  [
    Alcotest.test_case "affine of_expr" `Quick a_of_expr;
    Alcotest.test_case "affine rejects products" `Quick a_nonaffine;
    Alcotest.test_case "affine folds parameters" `Quick a_param_fold;
    Alcotest.test_case "affine expr roundtrip" `Quick a_roundtrip;
    Alcotest.test_case "region diff leaves frame" `Quick r_diff_frame;
    Alcotest.test_case "region subset" `Quick r_subset;
    Alcotest.test_case "region simplify merges" `Quick r_simplify_merges;
    Alcotest.test_case "region hull" `Quick r_hull;
    Alcotest.test_case "cfg loop back edge" `Quick c_loop_backedge;
    Alcotest.test_case "cfg if join" `Quick c_if_join;
    Alcotest.test_case "cfg return to exit" `Quick c_return_to_exit;
    Alcotest.test_case "dataflow liveness" `Quick d_genkill_liveness;
    Alcotest.test_case "sections collect" `Quick s_collect;
    Alcotest.test_case "sections strided region" `Quick s_region_of_ref;
    Alcotest.test_case "sections triangular widening" `Quick s_triangular_widening;
    Alcotest.test_case "dep forward shift vectorizable" `Quick d_forward_shift_no_dep;
    Alcotest.test_case "dep backward shift carried" `Quick d_backward_shift_carried;
    Alcotest.test_case "dep 2d inner carried" `Quick d_2d_inner_carried;
    Alcotest.test_case "dep ziv independent" `Quick d_ziv_independent;
    Alcotest.test_case "dep loop independent" `Quick d_loop_independent;
    Alcotest.test_case "dep clipped by trip count" `Quick d_distance_exceeds_trip;
    Alcotest.test_case "dep deepest level" `Quick d_deepest_level;
  ]
