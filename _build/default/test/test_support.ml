(* Unit and property tests for the support library: triplets and integer
   sets are the scalar kernel under all RSD reasoning, so their algebra is
   tested exhaustively. *)

open Fd_support

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- Triplet unit tests ------------------------------------------------ *)

let t_make () =
  let t = Triplet.make ~lo:1 ~hi:10 ~step:3 in
  check_int "count" 4 (Triplet.count t);
  check_int "normalized hi" 10 (Triplet.hi t);
  let t2 = Triplet.make ~lo:1 ~hi:11 ~step:3 in
  check_int "hi snaps to last member" 10 (Triplet.hi t2);
  check "empty when hi < lo" true (Triplet.is_empty (Triplet.make ~lo:5 ~hi:4 ~step:1))

let t_mem () =
  let t = Triplet.make ~lo:2 ~hi:14 ~step:4 in
  List.iter (fun x -> check (Fmt.str "mem %d" x) true (Triplet.mem x t)) [ 2; 6; 10; 14 ];
  List.iter (fun x -> check (Fmt.str "not mem %d" x) false (Triplet.mem x t))
    [ 1; 3; 4; 15; 18; 0; -2 ]

let t_inter_contig () =
  let a = Triplet.range 1 10 and b = Triplet.range 6 20 in
  let i = Triplet.inter a b in
  check_str "inter" "[6:10]" (Triplet.to_string i)

let t_inter_strided () =
  (* {1,4,7,10,...} with {1,6,11,...}: lcm 15, first common 1 *)
  let a = Triplet.make ~lo:1 ~hi:31 ~step:3 in
  let b = Triplet.make ~lo:1 ~hi:31 ~step:5 in
  let i = Triplet.inter a b in
  check_str "strided inter" "[1:31:15]" (Triplet.to_string i)

let t_inter_empty_phase () =
  (* evens and odds never meet *)
  let a = Triplet.make ~lo:0 ~hi:100 ~step:2 in
  let b = Triplet.make ~lo:1 ~hi:99 ~step:2 in
  check "disjoint phases" true (Triplet.is_empty (Triplet.inter a b))

let t_diff_contig () =
  let a = Triplet.range 1 20 and b = Triplet.range 6 10 in
  let pieces = Triplet.diff a b in
  check_int "two pieces" 2 (List.length pieces);
  check_str "below" "[1:5]" (Triplet.to_string (List.nth pieces 0));
  check_str "above" "[11:20]" (Triplet.to_string (List.nth pieces 1))

let t_diff_strided_minuend () =
  (* {1,4,...,28} minus [10:20] -> {1,4,7} and {22,25,28} *)
  let a = Triplet.make ~lo:1 ~hi:28 ~step:3 in
  let b = Triplet.range 10 20 in
  let pieces = Triplet.diff a b in
  check_int "two pieces" 2 (List.length pieces);
  check_str "below" "[1:7:3]" (Triplet.to_string (List.nth pieces 0));
  check_str "above" "[22:28:3]" (Triplet.to_string (List.nth pieces 1))

let t_shift () =
  let t = Triplet.make ~lo:1 ~hi:25 ~step:1 in
  let s = Triplet.shift 5 t in
  check_str "shift" "[6:30]" (Triplet.to_string s)

let t_of_sorted_list () =
  let ts = Triplet.of_sorted_list [ 1; 2; 3; 7; 9; 11; 20 ] in
  check_str "grouping"
    "[1:3]/[7:11:2]/[20:20]"
    (String.concat "/" (List.map Triplet.to_string ts))

let t_subset () =
  check "strided subset" true
    (Triplet.subset (Triplet.make ~lo:2 ~hi:10 ~step:4) (Triplet.make ~lo:2 ~hi:14 ~step:2));
  check "phase mismatch" false
    (Triplet.subset (Triplet.make ~lo:3 ~hi:11 ~step:4) (Triplet.make ~lo:2 ~hi:14 ~step:2))

(* --- Iset unit tests --------------------------------------------------- *)

let i_union_merges () =
  let a = Iset.range 1 5 and b = Iset.range 6 10 in
  let u = Iset.union a b in
  check_int "canonical single triplet" 1 (List.length (Iset.triplets u));
  check_int "count" 10 (Iset.count u)

let i_diff_exact () =
  let a = Iset.range 1 100 in
  let b = Iset.of_triplet (Triplet.make ~lo:1 ~hi:99 ~step:2) in
  let d = Iset.diff a b in
  check "evens remain" true (Iset.equal d (Iset.of_triplet (Triplet.make ~lo:2 ~hi:100 ~step:2)))

let i_hull () =
  let s = Iset.union (Iset.range 3 5) (Iset.singleton 11) in
  check_str "hull" "[3:11]" (Triplet.to_string (Iset.hull s))

(* --- Property-based tests ---------------------------------------------- *)

let triplet_gen =
  QCheck2.Gen.(
    let* lo = int_range (-30) 30 in
    let* len = int_range 0 40 in
    let* step = int_range 1 7 in
    return (Triplet.make ~lo ~hi:(lo + len) ~step))

let to_set t = List.sort_uniq compare (Triplet.to_list t)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:500 ~name gen f)

let qcheck_tests =
  [
    prop "inter = element-wise intersection"
      QCheck2.Gen.(pair triplet_gen triplet_gen)
      (fun (a, b) ->
        let expected =
          List.filter (fun x -> List.mem x (to_set b)) (to_set a)
        in
        to_set (Triplet.inter a b) = expected);
    prop "diff = element-wise difference (contiguous subtrahend)"
      QCheck2.Gen.(
        pair triplet_gen
          (let* lo = int_range (-30) 30 in
           let* len = int_range 0 40 in
           return (Triplet.make ~lo ~hi:(lo + len) ~step:1)))
      (fun (a, b) ->
        let expected = List.filter (fun x -> not (Triplet.mem x b)) (to_set a) in
        List.concat_map to_set (Triplet.diff a b) |> List.sort_uniq compare
        = expected);
    prop "diff is sound over-approximation (any strides)"
      QCheck2.Gen.(pair triplet_gen triplet_gen)
      (fun (a, b) ->
        let must_keep = List.filter (fun x -> not (Triplet.mem x b)) (to_set a) in
        let kept = List.concat_map to_set (Triplet.diff a b) in
        List.for_all (fun x -> List.mem x kept) must_keep);
    prop "subset agrees with element-wise subset"
      QCheck2.Gen.(pair triplet_gen triplet_gen)
      (fun (a, b) ->
        let elementwise = List.for_all (fun x -> Triplet.mem x b) (to_set a) in
        (* subset may be conservative (false negatives allowed), never a
           false positive *)
        if Triplet.subset a b then elementwise else true);
    prop "Iset union/inter/diff form a boolean algebra on elements"
      QCheck2.Gen.(pair (list_size (int_range 0 4) triplet_gen)
                     (list_size (int_range 0 4) triplet_gen))
      (fun (xs, ys) ->
        let a = Iset.of_triplets xs and b = Iset.of_triplets ys in
        let u = Iset.union a b and i = Iset.inter a b and d = Iset.diff a b in
        Iset.equal (Iset.union d i) a
        && Iset.count u + Iset.count i = Iset.count a + Iset.count b
        && Iset.disjoint d b);
    prop "Iset canonical form has disjoint increasing triplets"
      QCheck2.Gen.(list_size (int_range 0 5) triplet_gen)
      (fun xs ->
        let s = Iset.of_triplets xs in
        let rec ok = function
          | [] | [ _ ] -> true
          | a :: (b :: _ as rest) -> Triplet.hi a < Triplet.lo b && ok rest
        in
        ok (Iset.triplets s));
    prop "Triplet.of_sorted_list round-trips"
      QCheck2.Gen.(list_size (int_range 0 30) (int_range (-50) 50))
      (fun xs ->
        let sorted = List.sort_uniq compare xs in
        List.concat_map Triplet.to_list (Triplet.of_sorted_list sorted) = sorted);
  ]

let suite =
  [
    Alcotest.test_case "triplet make/normalize" `Quick t_make;
    Alcotest.test_case "triplet mem" `Quick t_mem;
    Alcotest.test_case "triplet inter contiguous" `Quick t_inter_contig;
    Alcotest.test_case "triplet inter strided (CRT)" `Quick t_inter_strided;
    Alcotest.test_case "triplet inter phase-disjoint" `Quick t_inter_empty_phase;
    Alcotest.test_case "triplet diff contiguous" `Quick t_diff_contig;
    Alcotest.test_case "triplet diff strided minuend" `Quick t_diff_strided_minuend;
    Alcotest.test_case "triplet shift" `Quick t_shift;
    Alcotest.test_case "of_sorted_list grouping" `Quick t_of_sorted_list;
    Alcotest.test_case "triplet subset" `Quick t_subset;
    Alcotest.test_case "iset union merges" `Quick i_union_merges;
    Alcotest.test_case "iset diff exact" `Quick i_diff_exact;
    Alcotest.test_case "iset hull" `Quick i_hull;
  ]
  @ qcheck_tests
