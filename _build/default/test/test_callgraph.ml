(* Augmented call graph, topological orders, interprocedural side
   effects, and edit-time summaries. *)

open Fd_frontend
open Fd_callgraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let program_fig4 = Fd_workloads.Figures.fig4 ()

let acg_of src = Acg.build (Sema.check_source src)

let a_call_sites () =
  let acg = acg_of program_fig4 in
  let sites = Acg.call_sites_to acg "f1" in
  check_int "two call sites" 2 (List.length sites);
  (* both calls sit under one caller loop each *)
  List.iter
    (fun cs -> check_int "loop nest depth" 1 (List.length cs.Acg.cs_loops))
    sites

let a_loop_annotations () =
  (* the ACG records bounds and index variable of the enclosing loop *)
  let acg = acg_of program_fig4 in
  let cs = List.hd (Acg.call_sites_to acg "f1") in
  let l = List.hd cs.Acg.cs_loops in
  check "loop var" true (l.Fd_analysis.Sections.lvar = "i" || l.Fd_analysis.Sections.lvar = "j");
  check "step 1" true (l.Fd_analysis.Sections.lstep = 1)

let a_topo () =
  let acg = acg_of (Fd_workloads.Dgefa.source ~n:8 ()) in
  let order = Acg.topo_order acg in
  let pos name =
    let rec go i = function
      | [] -> -1
      | x :: _ when String.equal x name -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 order
  in
  check "main first" true (pos "lu" < pos "dgefa");
  check "dgefa before its callees" true
    (pos "dgefa" < pos "idamax" && pos "dgefa" < pos "daxpy");
  let rt = Acg.reverse_topo_order acg in
  check "reverse ends with main" true (Fd_support.Listx.last rt = "lu")

let a_recursion_detected () =
  let src =
    "program p\n  call f()\nend\nsubroutine f()\n  call g()\nend\nsubroutine g()\n  call f()\nend\n"
  in
  check "recursive" true (Acg.is_recursive (acg_of src))

let a_bindings () =
  let acg = acg_of program_fig4 in
  let cs = List.hd (Acg.call_sites_to acg "f1") in
  match Acg.bindings acg cs with
  | [ ("z", Ast.Var _); ("i", Ast.Var _) ] -> ()
  | _ -> Alcotest.fail "unexpected bindings"

let e_side_effects () =
  let acg = acg_of (Fd_workloads.Dgefa.source ~n:8 ()) in
  let eff = Side_effects.compute acg in
  (* idamax modifies l (through the formal) and references a *)
  check "idamax mods l" true (Side_effects.S.mem "l" (Side_effects.gmod eff "idamax"));
  check "idamax refs a" true (Side_effects.S.mem "a" (Side_effects.gref eff "idamax"));
  (* dgefa transitively modifies a (through dscal/daxpy/swaprow) *)
  check "dgefa mods a" true (Side_effects.S.mem "a" (Side_effects.gmod eff "dgefa"));
  (* lu's Appear set includes everything it passes down *)
  check "lu appear a" true (Side_effects.S.mem "a" (Side_effects.appear eff "lu"))

let e_translation_drops_locals () =
  let src =
    "program p\n  real x(4)\n  call f(x)\nend\nsubroutine f(y)\n  real y(4), tmp(4)\n  integer i\n  do i = 1, 4\n    tmp(i) = y(i)\n    y(i) = tmp(i)\n  enddo\nend\n"
  in
  let acg = acg_of src in
  let eff = Side_effects.compute acg in
  check "caller sees x modified" true (Side_effects.S.mem "x" (Side_effects.gmod eff "p"));
  check "callee local does not escape" false
    (Side_effects.S.mem "tmp" (Side_effects.gmod eff "p"))

let s_summary () =
  let cp = Sema.check_source (Fd_workloads.Dgefa.source ~n:8 ()) in
  let cu = Sema.find_unit_exn cp "dgefa" in
  let s = Local_summary.of_unit cu in
  check_int "call sigs" 5 (List.length (Fd_support.Listx.dedup ~equal:(=) s.Local_summary.call_sigs));
  check_int "loop depth" 2 s.Local_summary.loop_depth;
  check "mod includes ipvt" true (Side_effects.S.mem "ipvt" s.Local_summary.local_mod)

let s_summary_digest_stability () =
  let cp1 = Sema.check_source (Fd_workloads.Dgefa.source ~n:8 ()) in
  let cp2 = Sema.check_source (Fd_workloads.Dgefa.source ~n:8 ()) in
  let d cu = (Local_summary.of_unit cu).Local_summary.source_digest in
  List.iter2
    (fun a b -> check "digests stable" true (String.equal (d a) (d b)))
    cp1.Sema.units cp2.Sema.units;
  let cp3 = Sema.check_source (Fd_workloads.Dgefa.source ~n:16 ()) in
  let dg name cp = d (Sema.find_unit_exn cp name) in
  check "digest changes with source" false
    (String.equal (dg "dgefa" cp1) (dg "dgefa" cp3))

let suite =
  [
    Alcotest.test_case "acg call sites" `Quick a_call_sites;
    Alcotest.test_case "acg loop annotations" `Quick a_loop_annotations;
    Alcotest.test_case "acg topological order" `Quick a_topo;
    Alcotest.test_case "acg recursion detection" `Quick a_recursion_detected;
    Alcotest.test_case "acg bindings" `Quick a_bindings;
    Alcotest.test_case "gmod/gref transitive" `Quick e_side_effects;
    Alcotest.test_case "effects translation drops locals" `Quick e_translation_drops_locals;
    Alcotest.test_case "local summary" `Quick s_summary;
    Alcotest.test_case "summary digest stability" `Quick s_summary_digest_stability;
  ]
