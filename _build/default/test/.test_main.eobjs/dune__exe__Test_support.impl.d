test/test_support.ml: Alcotest Fd_support Fmt Iset List QCheck2 QCheck_alcotest String Triplet
