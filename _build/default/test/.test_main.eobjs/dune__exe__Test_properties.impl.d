test/test_properties.ml: Array Ast Dependence Fd_analysis Fd_core Fd_frontend Fd_machine Fd_support Fmt Fun Iset List QCheck2 QCheck_alcotest Region Sections Sema Triplet
