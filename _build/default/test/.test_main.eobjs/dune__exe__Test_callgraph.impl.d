test/test_callgraph.ml: Acg Alcotest Ast Fd_analysis Fd_callgraph Fd_frontend Fd_support Fd_workloads List Local_summary Sema Side_effects String
