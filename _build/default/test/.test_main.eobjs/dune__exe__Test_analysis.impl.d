test/test_analysis.ml: Affine Alcotest Array Ast Cfg Dataflow Dependence Fd_analysis Fd_frontend Fd_support List Region Sections Sema Symtab Triplet
