test/test_units4.ml: Alcotest Array Ast Codegen Comm Driver Exports Fd_core Fd_frontend Fd_machine Fd_support Fd_workloads Fmt Hashtbl Iset Layout List Node Options Stats String Triplet
