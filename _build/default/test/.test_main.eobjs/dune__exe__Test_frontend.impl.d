test/test_frontend.ml: Alcotest Ast Ast_printer Diag Fd_frontend Fd_support Fd_workloads Lexer List Listx Sema String Symtab Token
