test/test_common.ml: Alcotest Ast_printer Codegen Diag Driver Exports Fd_core Fd_frontend Fd_machine Fd_support Fd_workloads List Options Printexc Random Sema Stats String Symtab
