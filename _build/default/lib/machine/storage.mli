(** Per-processor array storage.

    Every processor allocates the full global extent of each array
    (memory is cheap in simulation) but tracks per-element *validity*:
    an element is valid on a processor iff the processor owns it under
    the current layout, has written it, or has received it in a message.
    In strict mode a read of an invalid element aborts the run — this
    catches compiler communication bugs even when stale values agree. *)

open Fd_support
open Fd_frontend

type data = Fdata of float array | Idata of int array | Bdata of bool array

type array_obj = {
  name : string;
  elt : Ast.dtype;
  bounds : (int * int) array;
  strides : int array;
  size : int;
  data : data;
  valid : Bytes.t;
  mutable layout : Layout.t;
  mutable owned : Iset.t;  (** this processor's owned set, dist dim *)
  owner_proc : int;        (** which processor's memory this lives in *)
}

exception Invalid_read of { array : string; index : int array; proc : int }

val alloc :
  proc:int -> nprocs:int -> string -> Ast.dtype -> Layout.t -> array_obj
(** Zero-filled storage; call {!mark_initial_validity} afterwards. *)

val rank : array_obj -> int

val flat_index : array_obj -> int array -> int
(** @raise Fd_support.Diag.Compile_error on rank or bounds violations. *)

val owns : array_obj -> int array -> bool

val mark_initial_validity : array_obj -> unit
(** Owned elements valid, everything else invalid. *)

val get_raw : array_obj -> int -> Value.t
val set_raw : array_obj -> int -> Value.t -> unit

val read : strict:bool -> array_obj -> int array -> Value.t
(** @raise Invalid_read in strict mode on invalid elements. *)

val write : array_obj -> int array -> Value.t -> unit
(** Stores and validates. *)

val receive : array_obj -> int array -> Value.t -> unit
(** Store an incoming message element (validates it). *)

val set_layout : nprocs:int -> array_obj -> Layout.t -> unit
(** Switch layouts; validity resets to ownership under the new layout
    (the scheduler copies data to new owners around this). *)

val iter_elements : array_obj -> (int array -> int -> unit) -> unit
(** Visit every (index vector, flat index) pair. *)
