(* Runtime scalar values with Fortran-style coercions. *)

open Fd_support
open Fd_frontend

type t = Vint of int | Vreal of float | Vbool of bool

let zero_of = function
  | Ast.Real -> Vreal 0.0
  | Ast.Integer -> Vint 0
  | Ast.Logical -> Vbool false

let to_float = function
  | Vreal f -> f
  | Vint i -> float_of_int i
  | Vbool _ -> Diag.error "logical value used as number"

let to_int = function
  | Vint i -> i
  | Vreal f -> int_of_float f
  | Vbool _ -> Diag.error "logical value used as integer"

let to_bool = function
  | Vbool b -> b
  | _ -> Diag.error "numeric value used as logical"

let arith op_int op_float a b =
  match (a, b) with
  | Vint x, Vint y -> Vint (op_int x y)
  | _ -> Vreal (op_float (to_float a) (to_float b))

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )

let div a b =
  match (a, b) with
  | Vint x, Vint y ->
    if y = 0 then Diag.error "integer division by zero" else Vint (x / y)
  | _ -> Vreal (to_float a /. to_float b)

let pow a b =
  match (a, b) with
  | Vint x, Vint y when y >= 0 ->
    let rec go acc n = if n = 0 then acc else go (acc * x) (n - 1) in
    Vint (go 1 y)
  | _ -> Vreal (Float.pow (to_float a) (to_float b))

let compare_num a b =
  match (a, b) with
  | Vint x, Vint y -> compare x y
  | _ -> compare (to_float a) (to_float b)

let equal a b =
  match (a, b) with
  | Vbool x, Vbool y -> x = y
  | Vint x, Vint y -> x = y
  | _ -> Float.equal (to_float a) (to_float b)

let pp ppf = function
  | Vint i -> Fmt.int ppf i
  | Vreal f -> Fmt.pf ppf "%.6g" f
  | Vbool b -> Fmt.string ppf (if b then "T" else "F")

let to_string v = Fmt.str "%a" pp v
