(** Runtime scalar values with Fortran-style coercions. *)

open Fd_frontend

type t = Vint of int | Vreal of float | Vbool of bool

val zero_of : Ast.dtype -> t

val to_float : t -> float
val to_int : t -> int
val to_bool : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val pow : t -> t -> t

val compare_num : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
