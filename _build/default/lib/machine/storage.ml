(* Per-processor array storage.

   Every processor allocates the full global extent of each array (memory
   is cheap in simulation) but tracks per-element *validity*: an element
   is valid on a processor iff the processor owns it under the current
   layout, has written it, or has received it in a message.  In strict
   mode a read of an invalid element aborts the run — this catches
   compiler communication bugs even when stale values happen to agree. *)

open Fd_support
open Fd_frontend

type data =
  | Fdata of float array
  | Idata of int array
  | Bdata of bool array

type array_obj = {
  name : string;
  elt : Ast.dtype;
  bounds : (int * int) array;
  strides : int array;
  size : int;
  data : data;
  valid : Bytes.t;
  mutable layout : Layout.t;
  mutable owned : Iset.t;  (* this processor's owned set in the dist dim *)
  owner_proc : int;        (* which processor's memory this lives in *)
}

exception Invalid_read of { array : string; index : int array; proc : int }

let make_data elt size =
  match elt with
  | Ast.Real -> Fdata (Array.make size 0.0)
  | Ast.Integer -> Idata (Array.make size 0)
  | Ast.Logical -> Bdata (Array.make size false)

let alloc ~proc ~nprocs name elt (layout : Layout.t) : array_obj =
  let bounds = Array.of_list layout.Layout.bounds in
  let rank = Array.length bounds in
  let extents = Array.map (fun (lo, hi) -> max 0 (hi - lo + 1)) bounds in
  let strides = Array.make rank 1 in
  for d = rank - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * extents.(d + 1)
  done;
  let size = if rank = 0 then 1 else strides.(0) * extents.(0) in
  let owned = (Layout.owned layout ~nprocs).(proc) in
  let obj =
    { name; elt; bounds; strides; size;
      data = make_data elt size;
      valid = Bytes.make size '\000';
      layout; owned; owner_proc = proc }
  in
  (* initial validity: owned elements (including all, when replicated) *)
  obj

let rank obj = Array.length obj.bounds

let flat_index obj (idx : int array) : int =
  let r = rank obj in
  if Array.length idx <> r then
    Diag.error "array %s: rank %d referenced with %d subscripts" obj.name r
      (Array.length idx);
  let flat = ref 0 in
  for d = 0 to r - 1 do
    let lo, hi = obj.bounds.(d) in
    let x = idx.(d) in
    if x < lo || x > hi then
      Diag.error "array %s: subscript %d out of bounds %d:%d in dimension %d"
        obj.name x lo hi (d + 1);
    flat := !flat + ((x - lo) * obj.strides.(d))
  done;
  !flat

(* Is [idx] owned by this processor under the current layout? *)
let owns obj (idx : int array) =
  match obj.layout.Layout.dist_dim with
  | None -> true
  | Some d -> Iset.mem idx.(d) obj.owned

let mark_initial_validity obj =
  match obj.layout.Layout.dist_dim with
  | None -> Bytes.fill obj.valid 0 obj.size '\001'
  | Some _ ->
    (* walk all elements; mark owned ones *)
    let r = rank obj in
    let idx = Array.map fst obj.bounds in
    let rec walk d =
      if d = r then begin
        if owns obj idx then Bytes.set obj.valid (flat_index obj idx) '\001'
      end
      else
        let lo, hi = obj.bounds.(d) in
        for x = lo to hi do
          idx.(d) <- x;
          walk (d + 1)
        done
    in
    if obj.size > 0 then walk 0

let get_raw obj flat =
  match obj.data with
  | Fdata a -> Value.Vreal a.(flat)
  | Idata a -> Value.Vint a.(flat)
  | Bdata a -> Value.Vbool a.(flat)

let set_raw obj flat (v : Value.t) =
  match obj.data with
  | Fdata a -> a.(flat) <- Value.to_float v
  | Idata a -> a.(flat) <- Value.to_int v
  | Bdata a -> a.(flat) <- Value.to_bool v

let read ~strict obj idx =
  let flat = flat_index obj idx in
  if Bytes.get obj.valid flat = '\000' then
    if strict then raise (Invalid_read { array = obj.name; index = idx; proc = obj.owner_proc })
    else ();
  get_raw obj flat

let write obj idx v =
  let flat = flat_index obj idx in
  set_raw obj flat v;
  Bytes.set obj.valid flat '\001'

(* Store a received element (validates it). *)
let receive obj idx v = write obj idx v

(* Change layout; validity is reset to ownership under the new layout
   (stale non-owned copies are invalidated; the scheduler copies data to
   new owners before calling this). *)
let set_layout ~nprocs obj (layout : Layout.t) =
  obj.layout <- layout;
  obj.owned <- (Layout.owned layout ~nprocs).(obj.owner_proc);
  Bytes.fill obj.valid 0 obj.size '\000';
  mark_initial_validity obj

let iter_elements obj f =
  let r = rank obj in
  if obj.size > 0 then begin
    let idx = Array.map fst obj.bounds in
    let rec walk d =
      if d = r then f (Array.copy idx) (flat_index obj idx)
      else
        let lo, hi = obj.bounds.(d) in
        for x = lo to hi do
          idx.(d) <- x;
          walk (d + 1)
        done
    in
    walk 0
  end
