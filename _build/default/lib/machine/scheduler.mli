(** Virtual-time scheduler for the processor ensemble.

    Each logical processor runs as a delimited computation (OCaml 5
    effect handlers).  A processor runs until it finishes or blocks on a
    receive / collective; sends are asynchronous (infinite buffering, the
    iPSC model) with arrival time [sender_clock + alpha + beta*bytes]; a
    blocking receive advances the receiver to [max(own, arrival)].
    Collectives synchronize all P processors at a site.  Scheduling is
    deterministic. *)

type error = Deadlock of string | Runtime_error of string

exception Sim_error of error

val error_to_string : error -> string

val run : Config.t -> Node.program -> Stats.t * Interp.frame array
(** Simulate to completion.
    @raise Sim_error on deadlock (including mismatched collective sites)
    or runtime faults (including strict-validity violations). *)
