(** Reassembly of distributed arrays after a simulated run, and
    comparison against the sequential reference execution. *)

type mismatch = {
  m_array : string;
  m_index : int array;
  m_expected : Value.t;
  m_actual : Value.t;
}

val gather_array :
  nprocs:int -> Interp.frame array -> string -> Storage.array_obj option
(** Authoritative (owner's) value of every element, as a replicated
    array. *)

val values_match : tol:float -> Value.t -> Value.t -> bool

val compare_results :
  ?tol:float ->
  nprocs:int ->
  Seq_interp.result ->
  Interp.frame array ->
  mismatch list
(** Empty list = verified. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
