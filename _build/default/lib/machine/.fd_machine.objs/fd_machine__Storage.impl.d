lib/machine/storage.ml: Array Ast Bytes Diag Fd_frontend Fd_support Iset Layout Value
