lib/machine/message.ml: Fmt List String Value
