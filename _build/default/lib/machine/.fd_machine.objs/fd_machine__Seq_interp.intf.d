lib/machine/seq_interp.mli: Config Fd_frontend Sema Storage
