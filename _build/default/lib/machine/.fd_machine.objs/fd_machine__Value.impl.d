lib/machine/value.ml: Ast Diag Fd_frontend Fd_support Float Fmt
