lib/machine/scheduler.mli: Config Interp Node Stats
