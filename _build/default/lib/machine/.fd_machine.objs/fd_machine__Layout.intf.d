lib/machine/layout.mli: Fd_support Format Iset
