lib/machine/seq_interp.ml: Array Ast Config Diag Fd_frontend Fd_support Float Hashtbl Interp Layout List Sema Storage String Symtab Value
