lib/machine/interp.mli: Ast Config Fd_frontend Hashtbl Node Stats Storage Value
