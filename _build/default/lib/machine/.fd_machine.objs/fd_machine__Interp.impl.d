lib/machine/interp.ml: Array Ast Config Diag Eff Fd_frontend Fd_support Float Hashtbl Layout List Message Node Stats Storage String Value
