lib/machine/message.mli: Format Value
