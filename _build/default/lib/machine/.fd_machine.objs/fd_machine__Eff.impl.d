lib/machine/eff.ml: Effect Layout Message Storage Value
