lib/machine/stats.ml: Array Fmt List
