lib/machine/config.ml: Float Fmt
