lib/machine/node.mli: Ast Fd_frontend Format Layout
