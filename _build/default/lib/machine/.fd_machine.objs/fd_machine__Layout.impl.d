lib/machine/layout.ml: Array Fd_support Fmt Iset List Triplet
