lib/machine/scheduler.ml: Array Config Eff Effect Fd_support Float Fmt Hashtbl Interp Iset Layout List Message Node Queue Stats Storage String
