lib/machine/eff.mli: Effect Layout Message Storage Value
