lib/machine/stats.mli: Format
