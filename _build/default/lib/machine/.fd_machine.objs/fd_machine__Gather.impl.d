lib/machine/gather.ml: Array Diag Fd_support Float Fmt Hashtbl Interp Layout List Seq_interp Storage String Value
