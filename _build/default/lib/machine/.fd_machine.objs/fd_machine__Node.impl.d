lib/machine/node.ml: Ast Ast_printer Fd_frontend Fmt Layout List Option String
