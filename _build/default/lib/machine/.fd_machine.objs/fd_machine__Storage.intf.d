lib/machine/storage.mli: Ast Bytes Fd_frontend Fd_support Iset Layout Value
