lib/machine/gather.mli: Format Interp Seq_interp Storage Value
