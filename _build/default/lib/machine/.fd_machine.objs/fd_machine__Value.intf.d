lib/machine/value.mli: Ast Fd_frontend Format
