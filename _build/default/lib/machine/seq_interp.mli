(** Sequential reference interpreter for checked mini-Fortran-D programs.
    ALIGN/DISTRIBUTE are no-ops; arrays are global.  Ground truth for
    verifying compiled SPMD executions, and the one-processor time
    estimate. *)

open Fd_frontend

type result = {
  arrays : (string * Storage.array_obj) list;  (** main-program arrays *)
  outputs : string list;
  flops : int;
  mem_ops : int;
  seq_time : float;  (** estimated sequential execution time *)
}

val run : ?config:Config.t -> Sema.checked_program -> result
