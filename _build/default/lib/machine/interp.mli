(** Interpreter for SPMD node programs, one instance per logical
    processor.  Performs {!Eff} effects for time, messages, collectives,
    and output; the {!Scheduler} coordinates the ensemble. *)

open Fd_frontend

exception Return_signal

type binding = Bscalar of Value.t ref | Barray of Storage.array_obj

type frame = (string, binding) Hashtbl.t

type t

val create : proc:int -> config:Config.t -> stats:Stats.t -> Node.program -> t

val eval : t -> Ast.expr -> Value.t
(** Evaluate in the current frame, accumulating compute cost.
    Intrinsics include [myproc()], [nprocs()], the compile-time table
    select [tab$], and the run-time ownership query [owner$]. *)

val binop : Ast.binop -> Value.t -> Value.t -> Value.t

val exec : t -> Node.nstmt -> unit

val run_main : t -> frame
(** Execute this processor's copy of the main node program; returns the
    main frame so the driver can gather final array contents. *)
