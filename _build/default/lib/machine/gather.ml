(* Reassembly of distributed arrays after a simulated run, and comparison
   against the sequential reference execution. *)

open Fd_support

type mismatch = {
  m_array : string;
  m_index : int array;
  m_expected : Value.t;
  m_actual : Value.t;
}

(* Read the authoritative (owner's) value of every element of [name] from
   the per-processor main frames; returns a replicated array object. *)
let gather_array ~nprocs (frames : Interp.frame array) (name : string) :
    Storage.array_obj option =
  let obj_of p =
    match Hashtbl.find_opt frames.(p) name with
    | Some (Interp.Barray o) -> Some o
    | _ -> None
  in
  match obj_of 0 with
  | None -> None
  | Some obj0 ->
    let layout = obj0.Storage.layout in
    let out =
      Storage.alloc ~proc:0 ~nprocs:1 name obj0.Storage.elt
        (Layout.replicated obj0.Storage.layout.Layout.bounds)
    in
    Storage.mark_initial_validity out;
    Storage.iter_elements obj0 (fun idx _ ->
        let owner =
          match layout.Layout.dist_dim with
          | None -> 0
          | Some d -> Layout.owner_of layout ~nprocs idx.(d)
        in
        match obj_of owner with
        | Some o -> Storage.write out idx (Storage.get_raw o (Storage.flat_index o idx))
        | None -> Diag.error "gather: processor %d lacks array %s" owner name);
    Some out

let values_match ~tol a b =
  match (a, b) with
  | Value.Vreal x, Value.Vreal y ->
    let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
    Float.abs (x -. y) <= tol *. scale
  | _ -> Value.equal a b

(* Compare a simulated run's main-program arrays against the sequential
   result.  Returns the list of mismatches (empty = verified). *)
let compare_results ?(tol = 1e-9) ~nprocs (seq : Seq_interp.result)
    (frames : Interp.frame array) : mismatch list =
  let mismatches = ref [] in
  List.iter
    (fun (name, (seq_obj : Storage.array_obj)) ->
      match gather_array ~nprocs frames name with
      | None ->
        mismatches :=
          { m_array = name; m_index = [||];
            m_expected = Value.Vint 0; m_actual = Value.Vint 0 }
          :: !mismatches
      | Some sim_obj ->
        Storage.iter_elements seq_obj (fun idx flat ->
            let expected = Storage.get_raw seq_obj flat in
            let actual = Storage.get_raw sim_obj (Storage.flat_index sim_obj idx) in
            if not (values_match ~tol expected actual) then
              mismatches :=
                { m_array = name; m_index = idx; m_expected = expected;
                  m_actual = actual }
                :: !mismatches))
    seq.Seq_interp.arrays;
  List.rev !mismatches

let pp_mismatch ppf m =
  Fmt.pf ppf "%s(%s): expected %a, got %a" m.m_array
    (String.concat "," (Array.to_list (Array.map string_of_int m.m_index)))
    Value.pp m.m_expected Value.pp m.m_actual
