(* Typed section messages exchanged by node programs. *)

type t = {
  src : int;
  dest : int;
  tag : int;            (* static communication-site id *)
  elems : (string * int array * Value.t) list;
      (* (array, global index vector, value); one message may aggregate
         sections of several arrays (paper Fig. 11 aggregation) *)
  bytes : int;
}

let nelems m = List.length m.elems

let arrays m =
  List.sort_uniq compare (List.map (fun (a, _, _) -> a) m.elems)

let pp ppf m =
  Fmt.pf ppf "msg %d->%d tag %d %s (%d elems, %d bytes)" m.src m.dest m.tag
    (String.concat "+" (arrays m))
    (nelems m) m.bytes
