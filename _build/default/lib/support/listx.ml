(* Small list utilities shared across the compiler. *)

let rec last = function
  | [] -> invalid_arg "Listx.last: empty list"
  | [ x ] -> x
  | _ :: rest -> last rest

let init_opt n f =
  let rec loop acc i =
    if i >= n then List.rev acc
    else loop (match f i with Some x -> x :: acc | None -> acc) (i + 1)
  in
  loop [] 0

let dedup ~equal xs =
  let rec loop acc = function
    | [] -> List.rev acc
    | x :: rest ->
      if List.exists (equal x) acc then loop acc rest else loop (x :: acc) rest
  in
  loop [] xs

let group_by ~key ~equal_key xs =
  (* Stable grouping: returns (key, members-in-order) in first-seen order. *)
  let rec add groups x =
    let k = key x in
    match groups with
    | [] -> [ (k, [ x ]) ]
    | (k', members) :: rest when equal_key k k' -> (k', x :: members) :: rest
    | g :: rest -> g :: add rest x
  in
  List.fold_left add [] xs |> List.map (fun (k, members) -> (k, List.rev members))

let rec assoc_update ~equal k f = function
  | [] -> [ (k, f None) ]
  | (k', v) :: rest when equal k k' -> (k', f (Some v)) :: rest
  | kv :: rest -> kv :: assoc_update ~equal k f rest

let sum = List.fold_left ( + ) 0

let sum_float = List.fold_left ( +. ) 0.0

let max_by ~compare = function
  | [] -> None
  | x :: rest ->
    Some (List.fold_left (fun best y -> if compare y best > 0 then y else best) x rest)

let take n xs =
  let rec loop acc n = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: rest -> loop (x :: acc) (n - 1) rest
  in
  loop [] n xs
