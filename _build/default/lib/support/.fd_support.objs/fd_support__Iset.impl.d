lib/support/iset.ml: Fmt Int List Set Triplet
