lib/support/listx.mli:
