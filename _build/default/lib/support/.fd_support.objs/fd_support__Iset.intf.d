lib/support/iset.mli: Format Triplet
