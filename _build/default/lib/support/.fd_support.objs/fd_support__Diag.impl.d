lib/support/diag.ml: Fmt Format List Loc
