lib/support/listx.ml: List
