lib/support/triplet.ml: Fmt List
