lib/support/loc.ml: Fmt
