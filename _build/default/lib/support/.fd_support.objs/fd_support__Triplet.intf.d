lib/support/triplet.mli: Format
