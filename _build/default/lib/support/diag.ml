(* Compiler diagnostics.  Errors raise [Error]; warnings accumulate. *)

type severity = Warning | Error

type t = { severity : severity; loc : Loc.t; message : string }

exception Compile_error of t

let make severity loc message = { severity; loc; message }

let error ?(loc = Loc.none) fmt =
  Format.kasprintf
    (fun message -> raise (Compile_error (make Error loc message)))
    fmt

let pp_severity ppf = function
  | Warning -> Fmt.string ppf "warning"
  | Error -> Fmt.string ppf "error"

let pp ppf { severity; loc; message } =
  Fmt.pf ppf "%a: %a: %s" Loc.pp loc pp_severity severity message

let to_string t = Fmt.str "%a" pp t

(* A sink for warnings so analyses can report without plumbing state. *)
let warnings : t list ref = ref []

let warn ?(loc = Loc.none) fmt =
  Format.kasprintf
    (fun message -> warnings := make Warning loc message :: !warnings)
    fmt

let take_warnings () =
  let ws = List.rev !warnings in
  warnings := [];
  ws
