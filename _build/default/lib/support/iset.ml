(* Finite integer sets, canonically represented as a sorted list of
   disjoint maximal triplets.  Sets in this compiler are index and
   iteration sets bounded by array extents, so exact element-level
   canonicalization is affordable and keeps every operation precise. *)

module IS = Set.Make (Int)

type t = Triplet.t list

let empty = []

let is_empty = List.for_all Triplet.is_empty

let to_intset t =
  List.fold_left
    (fun acc tr -> List.fold_left (fun a x -> IS.add x a) acc (Triplet.to_list tr))
    IS.empty t

let of_intset s = Triplet.of_sorted_list (IS.elements s)

let canonicalize t = of_intset (to_intset t)

let of_triplet tr = if Triplet.is_empty tr then [] else [ tr ]

let of_triplets ts =
  match List.filter (fun tr -> not (Triplet.is_empty tr)) ts with
  | [] -> []
  | [ tr ] -> [ tr ]
  | ts -> canonicalize ts

let of_list xs = of_intset (IS.of_list xs)

let singleton x = [ Triplet.singleton x ]

let range lo hi = of_triplet (Triplet.make ~lo ~hi ~step:1)

let mem x t = List.exists (Triplet.mem x) t

let count t = List.fold_left (fun acc tr -> acc + Triplet.count tr) 0 t

let to_list t = List.concat_map Triplet.to_list t

let union a b =
  match (a, b) with
  | [], t | t, [] -> t
  | _ -> of_intset (IS.union (to_intset a) (to_intset b))

let inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | [ x ], [ y ] -> of_triplet (Triplet.inter x y)
  | _ -> of_intset (IS.inter (to_intset a) (to_intset b))

let diff a b =
  match (a, b) with
  | [], _ -> []
  | t, [] -> t
  | [ x ], [ y ] when Triplet.step y = 1 -> of_triplets (Triplet.diff x y)
  | _ -> of_intset (IS.diff (to_intset a) (to_intset b))

let equal a b = IS.equal (to_intset a) (to_intset b)

let subset a b = IS.subset (to_intset a) (to_intset b)

let disjoint a b = is_empty (inter a b)

let shift d t = List.map (Triplet.shift d) t

let triplets t = t

let min_elt t =
  List.fold_left
    (fun acc tr -> if Triplet.is_empty tr then acc
      else match acc with None -> Some (Triplet.lo tr) | Some m -> Some (min m (Triplet.lo tr)))
    None t

let max_elt t =
  List.fold_left
    (fun acc tr -> if Triplet.is_empty tr then acc
      else match acc with None -> Some (Triplet.hi tr) | Some m -> Some (max m (Triplet.hi tr)))
    None t

let hull t =
  match (min_elt t, max_elt t) with
  | Some lo, Some hi -> Triplet.make ~lo ~hi ~step:1
  | _ -> Triplet.empty

let pp ppf t =
  if is_empty t then Fmt.string ppf "{}"
  else Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") Triplet.pp) t

let to_string t = Fmt.str "%a" pp t
