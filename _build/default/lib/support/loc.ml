(* Source locations for the mini-Fortran-D frontend. *)

type t = { file : string; line : int; col : int }

let none = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let pp ppf { file; line; col } = Fmt.pf ppf "%s:%d:%d" file line col

let to_string t = Fmt.str "%a" pp t
