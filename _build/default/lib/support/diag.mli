(** Compiler diagnostics: fatal errors and accumulated warnings. *)

type severity = Warning | Error

type t = { severity : severity; loc : Loc.t; message : string }

exception Compile_error of t

val make : severity -> Loc.t -> string -> t

val error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Compile_error} with a formatted message. *)

val warn : ?loc:Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Record a warning in the global warning sink. *)

val take_warnings : unit -> t list
(** Drain accumulated warnings, oldest first. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
