(** Source locations (file, 1-based line, 1-based column). *)

type t = { file : string; line : int; col : int }

val none : t
(** Placeholder location for synthesized nodes. *)

val make : file:string -> line:int -> col:int -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
