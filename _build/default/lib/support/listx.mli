(** Small list utilities shared across the compiler. *)

val last : 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val init_opt : int -> (int -> 'a option) -> 'a list
(** [init_opt n f] keeps the [Some] results of [f 0 .. f (n-1)], in order. *)

val dedup : equal:('a -> 'a -> bool) -> 'a list -> 'a list
(** Keep the first occurrence of each element, preserving order. *)

val group_by :
  key:('a -> 'k) -> equal_key:('k -> 'k -> bool) -> 'a list -> ('k * 'a list) list
(** Stable grouping in first-seen key order. *)

val assoc_update :
  equal:('k -> 'k -> bool) -> 'k -> ('v option -> 'v) -> ('k * 'v) list -> ('k * 'v) list
(** Update the binding of [k] (passing its current value), appending if absent. *)

val sum : int list -> int
val sum_float : float list -> float

val max_by : compare:('a -> 'a -> int) -> 'a list -> 'a option

val take : int -> 'a list -> 'a list
