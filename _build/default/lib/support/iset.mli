(** Finite integer sets as canonical sorted lists of disjoint triplets.

    All operations are exact; sets are index/iteration sets bounded by
    array extents, so element-level canonicalization is affordable. *)

type t = Triplet.t list

val empty : t
val is_empty : t -> bool
val of_triplet : Triplet.t -> t
val of_triplets : Triplet.t list -> t
val of_list : int list -> t
val singleton : int -> t
val range : int -> int -> t
val mem : int -> t -> bool
val count : t -> int
val to_list : t -> int list
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val disjoint : t -> t -> bool
val shift : int -> t -> t

val triplets : t -> Triplet.t list
(** The canonical triplet decomposition. *)

val min_elt : t -> int option
val max_elt : t -> int option

val hull : t -> Triplet.t
(** Smallest contiguous triplet containing the set ({!Triplet.empty} for
    the empty set). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
