(* Integer triplets [lo:hi:step] in Fortran 90 notation, the scalar kernel
   under regular section descriptors.  Normal form: step >= 1 and hi is the
   last member (hi = lo + k*step for some k >= 0), or the distinguished
   [empty] value. *)

type t = { lo : int; hi : int; step : int }

let empty = { lo = 1; hi = 0; step = 1 }

let is_empty t = t.hi < t.lo

let normalize ~lo ~hi ~step =
  if step < 1 then invalid_arg "Triplet.make: step must be >= 1";
  if hi < lo then empty
  else { lo; hi = lo + ((hi - lo) / step * step); step }

let make ~lo ~hi ~step = normalize ~lo ~hi ~step

let range lo hi = make ~lo ~hi ~step:1

let singleton x = { lo = x; hi = x; step = 1 }

let count t = if is_empty t then 0 else ((t.hi - t.lo) / t.step) + 1

let mem x t =
  (not (is_empty t)) && x >= t.lo && x <= t.hi && (x - t.lo) mod t.step = 0

let lo t = t.lo
let hi t = t.hi
let step t = t.step

let equal a b =
  if is_empty a then is_empty b
  else (not (is_empty b)) && a.lo = b.lo && a.hi = b.hi
       && (a.step = b.step || count a = 1)

let shift d t = if is_empty t then empty else { t with lo = t.lo + d; hi = t.hi + d }

let to_list t =
  if is_empty t then []
  else
    let rec loop acc x = if x < t.lo then acc else loop (x :: acc) (x - t.step) in
    loop [] t.hi

let rec egcd a b = if b = 0 then (a, 1, 0) else
  let g, x, y = egcd b (a mod b) in
  (g, y, x - (a / b) * y)

(* Intersection solves the congruences x = lo1 (mod s1), x = lo2 (mod s2)
   by CRT, clipped to the common extent. *)
let inter a b =
  if is_empty a || is_empty b then empty
  else
    let lo = max a.lo b.lo and hi = min a.hi b.hi in
    if hi < lo then empty
    else
      let g, p, _q = egcd a.step b.step in
      let diff = b.lo - a.lo in
      if diff mod g <> 0 then empty
      else
        let lcm = a.step / g * b.step in
        (* x0 = a.lo + a.step * p * (diff / g) satisfies both congruences. *)
        let x0 = a.lo + (a.step * (p * (diff / g) mod (lcm / a.step))) in
        let x0 = ((x0 - a.lo) mod lcm + lcm) mod lcm + a.lo in
        (* first member >= lo *)
        let first = if x0 >= lo then x0 else x0 + ((lo - x0 + lcm - 1) / lcm * lcm) in
        if first > hi then empty else normalize ~lo:first ~hi ~step:lcm

let disjoint a b = is_empty (inter a b)

let subset a b =
  (* a is a subset of b *)
  if is_empty a then true
  else if is_empty b then false
  else mem a.lo b && mem a.hi b && (count a <= 1 || a.step mod b.step = 0)

(* Subtraction a \ b.  Exact when b is contiguous (step 1) or when the
   result can be expressed with a few triplets; falls back to element
   enumeration for small sets, and to the (sound, over-approximate for the
   "nonlocal = accessed minus local" use) identity otherwise. *)
let max_enumerate = 4096

let of_sorted_list xs =
  (* Group a sorted list of distinct ints into maximal triplets. *)
  let rec take_run lo prev step = function
    | x :: rest when x - prev = step -> take_run lo x step rest
    | rest -> ({ lo; hi = prev; step }, rest)
  in
  let rec loop acc = function
    | [] -> List.rev acc
    | [ x ] -> List.rev (singleton x :: acc)
    | x :: y :: rest ->
      let t, rest' = take_run x y (y - x) rest in
      loop (t :: acc) rest'
  in
  loop [] xs

let ceil_div a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)

let diff a b =
  if is_empty a then []
  else if disjoint a b then [ a ]
  else if b.step = 1 then begin
    (* b contiguous: keep the parts of a strictly below/above b. *)
    let below =
      if a.lo < b.lo then
        let hi' = a.lo + ((b.lo - 1 - a.lo) / a.step * a.step) in
        [ normalize ~lo:a.lo ~hi:hi' ~step:a.step ]
      else []
    and above =
      if a.hi > b.hi then
        let k = max 0 (ceil_div (b.hi + 1 - a.lo) a.step) in
        [ normalize ~lo:(a.lo + (k * a.step)) ~hi:a.hi ~step:a.step ]
      else []
    in
    List.filter (fun t -> not (is_empty t)) (below @ above)
  end
  else if count a <= max_enumerate then
    of_sorted_list (List.filter (fun x -> not (mem x b)) (to_list a))
  else [ a ]

let pp ppf t =
  if is_empty t then Fmt.string ppf "[]"
  else if t.step = 1 then Fmt.pf ppf "[%d:%d]" t.lo t.hi
  else Fmt.pf ppf "[%d:%d:%d]" t.lo t.hi t.step

let to_string t = Fmt.str "%a" pp t
