(** Integer triplets [lo:hi:step] (Fortran 90 section notation).

    Normal form: [step >= 1] and [hi] is the last member, or the
    distinguished {!empty} value.  All operations return normal forms. *)

type t = private { lo : int; hi : int; step : int }

val empty : t
val is_empty : t -> bool

val make : lo:int -> hi:int -> step:int -> t
(** Normalizing constructor.  @raise Invalid_argument if [step < 1]. *)

val range : int -> int -> t
(** [range lo hi] is [make ~lo ~hi ~step:1]. *)

val singleton : int -> t
val count : t -> int
val mem : int -> t -> bool
val lo : t -> int
val hi : t -> int
val step : t -> int
val equal : t -> t -> bool
val shift : int -> t -> t

val inter : t -> t -> t
(** Exact intersection (CRT over the two strides). *)

val disjoint : t -> t -> bool

val subset : t -> t -> bool

val diff : t -> t -> t list
(** [diff a b] is the set difference, exact when [b] is contiguous or the
    operands are small; otherwise a sound over-approximation of [a \ b]
    (it may retain members of [b]). *)

val to_list : t -> int list

val of_sorted_list : int list -> t list
(** Group a strictly increasing list into maximal triplets. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
