(* Compiler options: which compilation strategy and optimization levels
   to apply.  The three strategies are the paper's comparison axes (see
   DESIGN.md section 4). *)

type strategy =
  | Interproc   (* full interprocedural compilation with delayed instantiation *)
  | Immediate   (* intraprocedural: decompositions known, no delaying (Fig. 12) *)
  | Runtime_resolution  (* ownership and communication resolved per element (Fig. 3) *)

type remap_level =
  | Remap_none   (* place all DecompBefore/After remaps naively (Fig. 16a) *)
  | Remap_live   (* + dead-remap elimination and coalescing (Fig. 16b) *)
  | Remap_hoist  (* + loop-invariant decomposition hoisting (Fig. 16c) *)
  | Remap_kill   (* + array kills: remap dead arrays in place (Fig. 16d) *)

type t = {
  nprocs : int;
  strategy : strategy;
  remap_level : remap_level;
  use_collectives : bool;  (* recognize one-owner/all-consumers broadcasts *)
  aggregate_messages : bool;  (* merge same-destination transfers into one message *)
  enable_cloning : bool;
  clone_limit : int;       (* max clones per procedure before falling back *)
}

let default = {
  nprocs = 4;
  strategy = Interproc;
  remap_level = Remap_kill;
  use_collectives = true;
  aggregate_messages = true;
  enable_cloning = true;
  clone_limit = 16;
}

let strategy_name = function
  | Interproc -> "interproc"
  | Immediate -> "immediate"
  | Runtime_resolution -> "runtime-resolution"

let remap_level_name = function
  | Remap_none -> "none"
  | Remap_live -> "live"
  | Remap_hoist -> "hoist"
  | Remap_kill -> "kill"
