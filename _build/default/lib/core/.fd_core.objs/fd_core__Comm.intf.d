lib/core/comm.mli: Ast Fd_frontend Fd_machine Fd_support Iset Layout Node
