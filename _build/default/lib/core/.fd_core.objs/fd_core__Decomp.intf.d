lib/core/decomp.mli: Ast Fd_frontend Fd_machine Format Set
