lib/core/dynamic_decomp.ml: Affine Array Ast Cfg Dataflow Decomp Diag Fd_analysis Fd_frontend Fd_support List Loc Map Option Options Region Sections Set String Symtab Triplet
