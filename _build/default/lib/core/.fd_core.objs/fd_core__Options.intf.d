lib/core/options.mli:
