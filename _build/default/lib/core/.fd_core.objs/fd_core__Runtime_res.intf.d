lib/core/runtime_res.mli: Ast Fd_frontend Fd_machine Node Symtab
