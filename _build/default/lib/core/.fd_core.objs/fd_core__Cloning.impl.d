lib/core/cloning.ml: Acg Ast Ast_printer Decomp Diag Fd_callgraph Fd_frontend Fd_support Fmt List Listx Map Options Reaching_decomps Sema Set Side_effects String Symtab
