lib/core/driver.ml: Codegen Config Fd_frontend Fd_machine Gather Options Scheduler Sema Seq_interp Stats
