lib/core/decomp.ml: Array Ast Diag Fd_frontend Fd_machine Fd_support Fmt List Set Stdlib String
