lib/core/codegen.mli: Acg Cloning Dynamic_decomp Exports Fd_callgraph Fd_frontend Fd_machine Hashtbl Node Options Reaching_decomps Sema Side_effects
