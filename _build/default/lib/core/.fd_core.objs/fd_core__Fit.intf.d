lib/core/fit.mli: Ast Fd_frontend Fd_support Iset
