lib/core/aliasing.mli: Acg Fd_callgraph Fd_support Side_effects
