lib/core/recompile.ml: Acg Cloning Codegen Digest Exports Fd_callgraph Fd_frontend Fmt Hashtbl List Local_summary Map Options Reaching_decomps Sema Set String
