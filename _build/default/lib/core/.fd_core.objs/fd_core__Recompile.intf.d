lib/core/recompile.mli: Fd_frontend Map Options Sema String
