lib/core/exports.ml: Affine Decomp Fd_analysis Fd_support Fmt Iset List Set String
