lib/core/overlap.mli: Fd_frontend Format Map Options Sema String
