lib/core/dynamic_decomp.mli: Ast Decomp Fd_frontend Map Options Set String Symtab
