lib/core/aliasing.ml: Acg Ast Diag Fd_callgraph Fd_frontend Fd_support Hashtbl List Listx Loc Sema Set Side_effects String Symtab
