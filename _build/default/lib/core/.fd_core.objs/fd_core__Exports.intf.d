lib/core/exports.mli: Affine Decomp Fd_analysis Fd_support Format Iset Set
