lib/core/overlap.ml: Acg Affine Ast Decomp Fd_analysis Fd_callgraph Fd_frontend Fmt List Map Option Options Reaching_decomps Sections Sema String
