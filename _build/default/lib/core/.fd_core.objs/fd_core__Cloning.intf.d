lib/core/cloning.mli: Fd_frontend Map Options Sema String
