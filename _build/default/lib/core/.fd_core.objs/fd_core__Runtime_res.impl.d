lib/core/runtime_res.ml: Ast Fd_frontend Fd_machine Fit List Node Symtab
