lib/core/options.ml:
