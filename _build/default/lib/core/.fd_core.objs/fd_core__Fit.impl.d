lib/core/fit.ml: Array Ast Fd_frontend Fd_support Fun Iset List Listx Triplet
