lib/core/reaching_decomps.ml: Acg Array Ast Cfg Dataflow Decomp Diag Fd_analysis Fd_callgraph Fd_frontend Fd_support Fmt Hashtbl List Map Sema String Symtab
