lib/core/comm.ml: Array Ast Diag Fd_frontend Fd_machine Fd_support Fit Iset Layout List Node Triplet
