lib/core/reaching_decomps.mli: Acg Ast Decomp Fd_callgraph Fd_frontend Format Map Sema String
