lib/core/driver.mli: Codegen Config Fd_frontend Fd_machine Gather Options Sema Seq_interp Stats
