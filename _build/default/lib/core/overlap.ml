(* Overlap analysis (paper Section 5.6, Figure 13).

   The local phase records constant subscript offsets per array dimension
   (A(v+c) contributes offset c).  Interprocedural propagation merges
   offsets bottom-up through formal/actual bindings to *estimate* the
   maximal overlap regions.  Code generation then determines the overlap
   *actually* needed: read offsets on the distributed dimension of
   partitioned references.  The paper expects the estimate to be a
   superset of the actual need; the experiment table (E7) reports both. *)

open Fd_frontend
open Fd_analysis
open Fd_callgraph

module SM = Map.Make (String)

type offsets = { neg : int; pos : int }  (* widths below / above the local block *)

let no_offsets = { neg = 0; pos = 0 }

let merge a b = { neg = max a.neg b.neg; pos = max a.pos b.pos }

let add_offset o c = if c >= 0 then { o with pos = max o.pos c } else { o with neg = max o.neg (-c) }

(* (array, dim) -> offsets for one procedure, from local references.
   [reads_only] restricts to read references (the "actual" side);
   [dist_dim_of] restricts to a known distributed dimension when given. *)
let local_offsets ?(reads_only = false) ?(dist_dim_of : (string -> int option) option)
    (cu : Sema.checked_unit) : offsets SM.t =
  let refs = Sections.collect cu.Sema.symtab cu.Sema.unit_.Ast.body in
  List.fold_left
    (fun acc (r : Sections.ref_info) ->
      if reads_only && r.Sections.is_write then acc
      else
        List.fold_left
          (fun acc (dim, sub) ->
            match sub with
            | None -> acc
            | Some a -> (
              let relevant =
                match dist_dim_of with
                | None -> true
                | Some f -> f r.Sections.array = Some dim
              in
              if not relevant then acc
              else
                (* offset relative to an enclosing loop variable *)
                match
                  List.find_opt
                    (fun l -> Affine.coeff_of l.Sections.lvar a = 1)
                    r.Sections.loops
                with
                | Some l ->
                  let rest = Affine.drop_var l.Sections.lvar a in
                  (match Affine.const_value rest with
                  | Some c when c <> 0 ->
                    let key = r.Sections.array ^ "." ^ string_of_int dim in
                    let cur =
                      match SM.find_opt key acc with Some o -> o | None -> no_offsets
                    in
                    SM.add key (add_offset cur c) acc
                  | _ -> acc)
                | None -> acc))
          acc
          (List.mapi (fun i s -> (i, s)) r.Sections.subs))
    SM.empty refs


(* Bottom-up interprocedural propagation: translate each callee's offsets
   on formal arrays into the caller's actual names. *)
let propagate (acg : Acg.t) (local : offsets SM.t SM.t) : offsets SM.t SM.t =
  let table = ref SM.empty in
  List.iter
    (fun pname ->
      let p = Acg.proc acg pname in
      let own =
        match SM.find_opt pname local with Some m -> m | None -> SM.empty
      in
      let merged =
        List.fold_left
          (fun acc (cs : Acg.call_site) ->
            match SM.find_opt cs.Acg.callee !table with
            | None -> acc
            | Some callee_offsets ->
              let callee_formals =
                (Acg.proc acg cs.Acg.callee).Acg.cu.Sema.unit_.Ast.formals
              in
              SM.fold
                (fun key o acc ->
                  match String.rindex_opt key '.' with
                  | None -> acc
                  | Some i -> (
                    let fname = String.sub key 0 i in
                    let dim = String.sub key (i + 1) (String.length key - i - 1) in
                    match
                      List.find_opt (String.equal fname) callee_formals
                    with
                    | None -> acc (* callee-local array *)
                    | Some _ -> (
                      match List.assoc_opt fname (Acg.bindings acg cs) with
                      | Some (Ast.Var actual) ->
                        let key' = actual ^ "." ^ dim in
                        let cur =
                          match SM.find_opt key' acc with
                          | Some o' -> o'
                          | None -> no_offsets
                        in
                        SM.add key' (merge cur o) acc
                      | _ -> acc)))
                callee_offsets acc)
          own p.Acg.calls
      in
      table := SM.add pname merged !table)
    (Acg.reverse_topo_order acg)

  ;
  !table

type row = {
  ov_proc : string;
  ov_array : string;
  ov_dim : int;  (* 1-based for display *)
  ov_estimated : offsets;
  ov_actual : offsets;
}

(* Full overlap report: estimated (all constant offsets, all dims,
   propagated) vs actual (read offsets on the distributed dimension). *)
let analyze (opts : Options.t) (cp : Sema.checked_program) : row list =
  ignore opts;
  let acg = Acg.build cp in
  let rd = Reaching_decomps.compute acg in
  let locals_est =
    List.fold_left
      (fun acc (p : Acg.proc) -> SM.add p.Acg.pname (local_offsets p.Acg.cu) acc)
      SM.empty (Acg.procs acg)
  in
  let dist_dim_of pname name =
    (* distributed dimension from the procedure's inherited/initial view *)
    let fact = Reaching_decomps.reaching_of rd pname in
    match Reaching_decomps.SM.find_opt name fact with
    | Some r -> (
      match Decomp.Set.choose_opt r.Decomp.decomps with
      | Some d -> Option.map fst (Decomp.dist_dim d)
      | None -> None)
    | None -> (
      (* local array: use the local reaching solution at procedure exit *)
      let lr = Reaching_decomps.local_of rd pname in
      let f = Reaching_decomps.fact_at_exit lr in
      match Reaching_decomps.SM.find_opt name f with
      | Some r -> (
        match Decomp.Set.choose_opt r.Decomp.decomps with
        | Some d -> Option.map fst (Decomp.dist_dim d)
        | None -> None)
      | None -> None)
  in
  let locals_act =
    List.fold_left
      (fun acc (p : Acg.proc) ->
        SM.add p.Acg.pname
          (local_offsets ~reads_only:true
             ~dist_dim_of:(dist_dim_of p.Acg.pname) p.Acg.cu)
          acc)
      SM.empty (Acg.procs acg)
  in
  let est = propagate acg locals_est in
  let act = propagate acg locals_act in
  SM.fold
    (fun pname offsets acc ->
      SM.fold
        (fun key o acc ->
          match String.rindex_opt key '.' with
          | None -> acc
          | Some i ->
            let array = String.sub key 0 i in
            let dim = int_of_string (String.sub key (i + 1) (String.length key - i - 1)) in
            let actual =
              match SM.find_opt pname act with
              | Some m -> (
                match SM.find_opt key m with Some o -> o | None -> no_offsets)
              | None -> no_offsets
            in
            { ov_proc = pname; ov_array = array; ov_dim = dim + 1;
              ov_estimated = o; ov_actual = actual }
            :: acc)
        offsets acc)
    est []
  |> List.sort compare

let pp_row ppf r =
  Fmt.pf ppf "%-10s %-6s dim %d   estimated [-%d,+%d]   actual [-%d,+%d]" r.ov_proc
    r.ov_array r.ov_dim r.ov_estimated.neg r.ov_estimated.pos r.ov_actual.neg
    r.ov_actual.pos
