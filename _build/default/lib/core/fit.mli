(** Closed-form reconstruction: turn concrete per-processor integer data
    into node-program expressions over [my$p].

    The compiler computes index/iteration sets exactly per processor
    (DESIGN.md section 6); code generation fits them back into symbolic
    form — [a*my$p + b], optionally min/max-clipped — and falls back to a
    compile-time lookup table [tab$(my$p, c0, c1, ...)] otherwise. *)

open Fd_support
open Fd_frontend

val myp : Ast.expr
(** The [my$p] variable. *)

val linear_expr : int -> int -> Ast.expr
(** [linear_expr a b] is the simplified [a*my$p + b]. *)

val tab_expr : int array -> Ast.expr

val fit_linear : mask:bool array -> int array -> (int * int) option
(** Exact linear fit [v_p = a*p + b] over the masked processors. *)

val expr_of_values : ?mask:bool array -> int array -> Ast.expr
(** Linear fit, then min/max-clipped linear, then table. *)

val guard_of_mask : bool array -> Ast.expr option
(** Expression true exactly on the masked processors; [None] when all
    participate. *)

type fitted_triplet = {
  f_lo : Ast.expr;
  f_hi : Ast.expr;
  f_step : Ast.expr;
  f_guard : Ast.expr option;
}

val fit_procset : Iset.t array -> fitted_triplet option
(** Fit a per-processor family of single-triplet sets; [None] when all
    are empty.
    @raise Not_single_triplet when some set needs several triplets. *)

exception Not_single_triplet

val fit_procset_opt : Iset.t array -> fitted_triplet option
(** Like {!fit_procset} but [None] instead of raising. *)
