(** What a compiled procedure exports to its (not yet compiled) callers.
    Compilation proceeds in reverse topological order, so a caller's
    compilation has every callee's export available — this record is
    where delayed instantiation lives (paper Section 5). *)

open Fd_support
open Fd_analysis

module SS : Set.S with type elt = string

(** A section dimension expressed over the procedure's formal scalars,
    so callers can translate it. *)
type odim =
  | Oc_const of int
  | Oc_formal of Affine.t
  | Oc_range of Affine.t * Affine.t
  | Oc_full of int * int

(** Delayed communication for a nonlocal reference whose instantiation
    moved past the procedure boundary. *)
type pending =
  | P_shift of {
      ps_array : string;          (** formal array *)
      ps_dim : int;               (** distributed dimension *)
      ps_need : Iset.t array;     (** per-processor needed indices *)
      ps_other : odim list;       (** the read's other subscripts *)
      ps_write_other : odim list option;
          (** the partitioned write's other subscripts, for the caller's
              cross-iteration disjointness test *)
    }
  | P_invariant of {
      pi_array : string;
      pi_dim : int;
      pi_index : Affine.t;  (** loop-invariant distributed index *)
      pi_other : odim list;
    }

(** The whole procedure's computation-partition constraint. *)
type constraint_ =
  | C_none
      (** partitions internally or does replicated work: call unguarded *)
  | C_owner of { co_array : string; co_dim : int; co_index : Affine.t }
      (** every distributed access touches one owner: callers guard the
          call and broadcast scalar results *)

type t = {
  ex_proc : string;
  ex_constraint : constraint_;
  ex_comms : pending list;
  ex_before : (string * Decomp.t) list;
      (** DecompBefore: remap these formals before the call *)
  ex_after : (string * Decomp.t) list;
      (** DecompAfter: restore these formals after the call *)
  ex_use : SS.t;
      (** formals referenced under their inherited decomposition *)
  ex_kill : SS.t;  (** formals always redistributed on entry *)
  ex_mod_scalars : SS.t;
      (** formal scalars modified (broadcast after owner-guarded calls) *)
  ex_value_kill : SS.t;
      (** formal arrays fully overwritten before any read *)
}

val empty : string -> t

val pp_odim : Format.formatter -> odim -> unit
val pp_pending : Format.formatter -> pending -> unit
val pp : Format.formatter -> t -> unit
