(** Recompilation analysis (paper Section 8): after an edit, only
    procedures whose interprocedural *inputs* changed are recompiled —
    their own source, the decompositions reaching them, and each callee's
    caller-visible export and interface. *)

open Fd_frontend

module SM : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type artifacts = {
  a_source : string SM.t;      (** proc -> source digest *)
  a_interface : string SM.t;   (** proc -> interface digest *)
  a_reaching : string SM.t;    (** proc -> Reaching(P) digest *)
  a_export : string SM.t;      (** proc -> export-record digest *)
  a_callees : string list SM.t;
}

val artifacts : ?opts:Options.t -> Sema.checked_program -> artifacts
(** Compiles the program and digests every per-procedure input (clones
    fold back into their original procedure). *)

val procs_of : artifacts -> string list

val must_recompile : old_:artifacts -> new_:artifacts -> string list

val after_edit :
  ?opts:Options.t -> before:string -> after:string -> unit ->
  string list * int
(** Procedures to recompile after replacing the program text, plus the
    total procedure count. *)
