(** Data decompositions as they reach references: one distribution kind
    per array dimension.  At most one dimension may be distributed (a 1-D
    logical processor arrangement; covers every example in the paper). *)

open Fd_frontend

type t = { kinds : Ast.dist_kind list }

val replicated : int -> t
(** [replicated rank] *)

val of_kinds : Ast.dist_kind list -> t
val rank : t -> int
val is_replicated : t -> bool

val dist_dim : t -> (int * Ast.dist_kind) option
(** The unique distributed dimension (0-based).
    @raise Fd_support.Diag.Compile_error on multi-dimensional
    distributions. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val layout_of :
  t -> bounds:(int * int) list -> nprocs:int -> Fd_machine.Layout.t

val through_align : array_rank:int -> Ast.align_sub list -> t -> t
(** Distribution an aligned array inherits from its target's
    distribution (permutations supported; offsets only shift block
    boundaries and are ignored with a warning). *)

val kind_name : Ast.dist_kind -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t

(** A reaching-decompositions lattice value: a set of decompositions
    plus the paper's > ("inherited from caller") placeholder. *)
type reaching = { decomps : Set.t; top : bool }

val reaching_bottom : reaching
val reaching_top : reaching
val reaching_single : t -> reaching
val reaching_join : reaching -> reaching -> reaching
val reaching_equal : reaching -> reaching -> bool
val pp_reaching : Format.formatter -> reaching -> unit
