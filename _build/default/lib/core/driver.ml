(* Top-level driver: parse -> check -> interprocedural compile ->
   simulate -> verify against the sequential reference execution. *)

open Fd_frontend
open Fd_machine

type run_result = {
  stats : Stats.t;
  mismatches : Gather.mismatch list;
  outputs_match : bool;  (* captured PRINT lines equal the sequential run's *)
  seq : Seq_interp.result;
  compiled : Codegen.compiled;
}

let check_source ?file src = Sema.check_source ?file src

let compile ?(opts = Options.default) (cp : Sema.checked_program) : Codegen.compiled =
  Codegen.compile opts cp

let compile_source ?opts ?file src = compile ?opts (check_source ?file src)

let machine_config ?(machine : Config.t option) (opts : Options.t) : Config.t =
  match machine with
  | Some m -> { m with Config.nprocs = opts.Options.nprocs }
  | None -> Config.ipsc860 ~nprocs:opts.Options.nprocs ()

(* Compile and simulate; verifies final array contents and captured output
   against the sequential interpreter. *)
let run ?(opts = Options.default) ?machine (cp : Sema.checked_program) : run_result =
  let compiled = compile ~opts cp in
  let config = machine_config ?machine opts in
  let stats, frames = Scheduler.run config compiled.Codegen.program in
  let seq = Seq_interp.run ~config cp in
  let mismatches =
    Gather.compare_results ~nprocs:opts.Options.nprocs seq frames
  in
  let outputs_match = Stats.outputs stats = seq.Seq_interp.outputs in
  { stats; mismatches; outputs_match; seq; compiled }

let run_source ?opts ?machine ?file src =
  run ?opts ?machine (check_source ?file src)

let verified r = r.mismatches = [] && r.outputs_match

(* Parallel-vs-sequential elapsed-time speedup estimate. *)
let speedup r = r.seq.Seq_interp.seq_time /. Stats.elapsed r.stats
