(** Compiler options: strategy and optimization levels (the paper's
    comparison axes; see DESIGN.md section 4). *)

type strategy =
  | Interproc
      (** full interprocedural compilation with delayed instantiation *)
  | Immediate
      (** intraprocedural: decompositions known, nothing delayed across
          procedure boundaries (paper Figure 12) *)
  | Runtime_resolution
      (** ownership and communication resolved per element at run time
          (paper Figure 3) *)

type remap_level =
  | Remap_none   (** naive DecompBefore/After placement (Figure 16a) *)
  | Remap_live   (** + dead-remap elimination and coalescing (16b) *)
  | Remap_hoist  (** + loop-invariant decomposition hoisting (16c) *)
  | Remap_kill   (** + array kills: remap dead arrays in place (16d) *)

type t = {
  nprocs : int;
  strategy : strategy;
  remap_level : remap_level;
  use_collectives : bool;
      (** recognize one-owner/all-consumer reads as broadcasts *)
  aggregate_messages : bool;
      (** merge same-destination transfers of different arrays into one
          message (paper Fig. 11 aggregation) *)
  enable_cloning : bool;
  clone_limit : int;
      (** max clones per procedure before cloning is abandoned *)
}

val default : t

val strategy_name : strategy -> string
val remap_level_name : remap_level -> string
