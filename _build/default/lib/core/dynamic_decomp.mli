(** Dynamic data decomposition (paper Section 6).

    Remapping operations are materialized as [remap$] pseudo-statements
    in procedure bodies (around call sites from the callees' exported
    DecompBefore/DecompAfter sets, and at local DISTRIBUTE statements),
    then optimized:

    - live decompositions: CFG-based dead-remap elimination (Fig. 16b)
      and redundant-remap removal (coalescing);
    - loop-invariant decompositions: hoisting leading/trailing remaps
      out of loops (Fig. 16c);
    - array kills: a physical remap whose array's values are dead (fully
      overwritten before any read) becomes mark-only (Fig. 16d). *)

open Fd_frontend

module SS : Set.S with type elt = string
module DM : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type remap = { rm_array : string; rm_decomp : Decomp.t; rm_move : bool }

val remap_stmt : remap -> Ast.stmt
(** Encode as a [remap$] pseudo-call with a fresh (pseudo-range)
    statement id. *)

val as_remap : Ast.stmt -> remap option
val is_remap_of : string -> Ast.stmt -> bool

val stmt_uses_array :
  call_touches:(string -> Ast.expr list -> SS.t) -> string -> Ast.stmt -> bool
(** Does the statement use the array's current decomposition (reference
    it, or pass it to a procedure that touches it)?  Does not descend
    into compound bodies. *)

val subtree_uses_array :
  call_touches:(string -> Ast.expr list -> SS.t) -> string -> Ast.stmt -> bool

val subtree_remaps_array : string -> Ast.stmt -> bool

val dead_remap_elim :
  call_touches:(string -> Ast.expr list -> SS.t) ->
  Ast.stmt list ->
  Ast.stmt list * int
(** Backward liveness over the CFG; returns the count removed. *)

val redundant_remap_elim :
  initial:Decomp.t DM.t -> Ast.stmt list -> Ast.stmt list * int
(** Forward decomposition tracking; removes remaps to the current
    layout. *)

val hoist_loops :
  call_touches:(string -> Ast.expr list -> SS.t) ->
  Ast.stmt list ->
  Ast.stmt list * int

val fully_overwrites :
  Symtab.t -> (int * int) list -> string -> Ast.stmt -> bool
(** Does the statement subtree overwrite the whole declared region
    without reading it first?  (Exact affine coverage only.) *)

val array_kills :
  symtab:Symtab.t ->
  value_killer:(string -> int -> bool) ->
  Ast.stmt list ->
  Ast.stmt list * int

type opt_stats = {
  dead_removed : int;
  redundant_removed : int;
  hoisted : int;
  kills : int;
}

val optimize :
  Options.remap_level ->
  call_touches:(string -> Ast.expr list -> SS.t) ->
  initial:Decomp.t DM.t ->
  symtab:Symtab.t ->
  value_killer:(string -> int -> bool) ->
  Ast.stmt list ->
  Ast.stmt list * opt_stats
