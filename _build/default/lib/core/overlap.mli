(** Overlap analysis (paper Section 5.6, Figure 13): constant subscript
    offsets per array dimension, propagated bottom-up through
    formal/actual bindings, *estimate* the maximal overlap regions; the
    *actual* need is what communication analysis finds on the
    distributed dimension.  The estimate is a superset of the actual
    (property-tested); experiment E7 reports both. *)

open Fd_frontend

module SM : Map.S with type key = string and type 'a t = 'a Map.Make(String).t

type offsets = { neg : int; pos : int }
(** widths below / above the local block *)

val no_offsets : offsets
val merge : offsets -> offsets -> offsets

val local_offsets :
  ?reads_only:bool ->
  ?dist_dim_of:(string -> int option) ->
  Sema.checked_unit ->
  offsets SM.t
(** Per-procedure constant offsets, keyed ["array.dim"]. *)

type row = {
  ov_proc : string;
  ov_array : string;
  ov_dim : int;  (** 1-based for display *)
  ov_estimated : offsets;
  ov_actual : offsets;
}

val analyze : Options.t -> Sema.checked_program -> row list

val pp_row : Format.formatter -> row -> unit
