(* Closed-form reconstruction: turn concrete per-processor integer data
   into node-program expressions over my$p.

   The compiler computes index/iteration sets exactly, per processor
   (DESIGN.md section 6); code generation fits the per-processor family
   back into symbolic form — a*my$p + b, optionally clipped by min/max —
   and falls back to a compile-time lookup table tab$(my$p, c0, c1, ...)
   when no affine form exists. *)

open Fd_support
open Fd_frontend

let myp = Ast.Var "my$p"

let int_e n = Ast.Int_const n

(* a*my$p + b as an expression, simplified. *)
let linear_expr a b =
  if a = 0 then int_e b
  else
    let t = if a = 1 then myp else Ast.Bin (Ast.Mul, int_e a, myp) in
    if b = 0 then t
    else if b > 0 then Ast.Bin (Ast.Add, t, int_e b)
    else Ast.Bin (Ast.Sub, t, int_e (-b))

let tab_expr values =
  Ast.Funcall ("tab$", myp :: List.map int_e (Array.to_list values))

(* Fit v_p = a*p + b over the processors where mask holds. *)
let fit_linear ~(mask : bool array) (values : int array) : (int * int) option =
  let pts =
    Array.to_list (Array.mapi (fun p v -> (p, v)) values)
    |> List.filter (fun (p, _) -> mask.(p))
  in
  match pts with
  | [] -> Some (0, 0)
  | [ (p0, v0) ] -> Some (0, v0 - (0 * p0))
  | (p0, v0) :: (p1, v1) :: _ ->
    if (v1 - v0) mod (p1 - p0) <> 0 then None
    else
      let a = (v1 - v0) / (p1 - p0) in
      let b = v0 - (a * p0) in
      if List.for_all (fun (p, v) -> (a * p) + b = v) pts then Some (a, b) else None

(* Expression computing [values.(my$p)] for processors in [mask]:
   linear fit, then linear-with-min / linear-with-max clip, then table. *)
let expr_of_values ?(mask : bool array option) (values : int array) : Ast.expr =
  let n = Array.length values in
  let mask = match mask with Some m -> m | None -> Array.make n true in
  match fit_linear ~mask values with
  | Some (a, b) -> linear_expr a b
  | None ->
    (* try min(a*p+b, c): c = max over masked; fit linear on procs below c *)
    let masked = Listx.init_opt n (fun p -> if mask.(p) then Some values.(p) else None) in
    let try_clip pick name =
      match masked with
      | [] -> None
      | v0 :: rest ->
        let c = List.fold_left pick v0 rest in
        let inner_mask = Array.mapi (fun p v -> mask.(p) && v <> c) values in
        (match fit_linear ~mask:inner_mask values with
        | Some (a, b) when a <> 0 ->
          let ok = ref true in
          Array.iteri
            (fun p v ->
              if mask.(p) then begin
                let fitted = (a * p) + b in
                let clipped = if name = "min" then min fitted c else max fitted c in
                if clipped <> v then ok := false
              end)
            values;
          if !ok then Some (Ast.Funcall (name, [ linear_expr a b; int_e c ])) else None
        | _ -> None)
    in
    (match try_clip max "min" with
    | Some e -> e
    | None -> (
      match try_clip min "max" with
      | Some e -> e
      | None -> tab_expr values))

(* Guard expression true exactly on processors where [mask] holds;
   [None] when the mask is all-true. *)
let guard_of_mask (mask : bool array) : Ast.expr option =
  let n = Array.length mask in
  if Array.for_all Fun.id mask then None
  else if Array.for_all not mask then Some (Ast.Logical_const false)
  else begin
    (* contiguous range? *)
    let first = ref (-1) and last = ref (-1) and contiguous = ref true in
    Array.iteri
      (fun p m ->
        if m then begin
          if !first < 0 then first := p;
          if !last >= 0 && p > !last + 1 then contiguous := false;
          last := p
        end)
      mask;
    if !contiguous then begin
      let lo = !first and hi = !last in
      if lo = 0 then Some (Ast.Bin (Ast.Le, myp, int_e hi))
      else if hi = n - 1 then Some (Ast.Bin (Ast.Ge, myp, int_e lo))
      else if lo = hi then Some (Ast.Bin (Ast.Eq, myp, int_e lo))
      else
        Some
          (Ast.Bin
             (Ast.And, Ast.Bin (Ast.Ge, myp, int_e lo), Ast.Bin (Ast.Le, myp, int_e hi)))
    end
    else
      Some
        (Ast.Bin
           ( Ast.Eq,
             tab_expr (Array.map (fun m -> if m then 1 else 0) mask),
             int_e 1 ))
  end

(* Fit a per-processor family of (at most single-triplet) sets into
   (lo, hi, step) expressions plus a guard restricting to processors with
   nonempty sets.  Empty-set processors are excluded via the guard; when
   every processor is empty the result is None. *)
type fitted_triplet = {
  f_lo : Ast.expr;
  f_hi : Ast.expr;
  f_step : Ast.expr;
  f_guard : Ast.expr option;  (* None = all processors participate *)
}

exception Not_single_triplet

let fit_procset (sets : Iset.t array) : fitted_triplet option =
  let n = Array.length sets in
  let mask = Array.map (fun s -> not (Iset.is_empty s)) sets in
  if Array.for_all not mask then None
  else begin
    let los = Array.make n 0 and his = Array.make n 0 and steps = Array.make n 1 in
    Array.iteri
      (fun p s ->
        if mask.(p) then
          match Iset.triplets s with
          | [ t ] ->
            los.(p) <- Triplet.lo t;
            his.(p) <- Triplet.hi t;
            steps.(p) <- Triplet.step t
          | _ -> raise Not_single_triplet)
      sets;
    (* default junk for empty processors so the table stays total: use an
       empty range lo=1, hi=0 *)
    Array.iteri
      (fun p m ->
        if not m then begin
          los.(p) <- 1;
          his.(p) <- 0;
          steps.(p) <- 1
        end)
      mask;
    (* If some processors are empty, making lo > hi there lets us drop the
       guard when lo/hi fit linearly across *all* processors with that
       junk; otherwise keep the mask guard and fit on masked procs. *)
    let fit_with m =
      ( expr_of_values ~mask:m los,
        expr_of_values ~mask:m his,
        expr_of_values ~mask:m steps )
    in
    let all = Array.make n true in
    let lo_e, hi_e, step_e, guard =
      if Array.for_all Fun.id mask then
        let l, h, s = fit_with all in
        (l, h, s, None)
      else
        let l, h, s = fit_with mask in
        (l, h, s, guard_of_mask mask)
    in
    Some { f_lo = lo_e; f_hi = hi_e; f_step = step_e; f_guard = guard }
  end

let fit_procset_opt sets = try fit_procset sets with Not_single_triplet -> None
