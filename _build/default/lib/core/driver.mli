(** Top-level driver: parse -> check -> interprocedural compile ->
    simulate -> verify against the sequential reference execution. *)

open Fd_frontend
open Fd_machine

type run_result = {
  stats : Stats.t;
  mismatches : Gather.mismatch list;
  outputs_match : bool;
      (** captured PRINT lines equal the sequential run's *)
  seq : Seq_interp.result;
  compiled : Codegen.compiled;
}

val check_source : ?file:string -> string -> Sema.checked_program

val compile : ?opts:Options.t -> Sema.checked_program -> Codegen.compiled

val compile_source :
  ?opts:Options.t -> ?file:string -> string -> Codegen.compiled

val machine_config : ?machine:Config.t -> Options.t -> Config.t

val run :
  ?opts:Options.t -> ?machine:Config.t -> Sema.checked_program -> run_result
(** Compile, simulate, and compare final array contents and captured
    output against the sequential interpreter. *)

val run_source :
  ?opts:Options.t -> ?machine:Config.t -> ?file:string -> string -> run_result

val verified : run_result -> bool
(** No array mismatches and identical PRINT output. *)

val speedup : run_result -> float
(** Estimated sequential time divided by simulated parallel makespan. *)
