(* What a compiled procedure exports to its (not yet compiled) callers.
   Compilation proceeds in reverse topological order, so when a caller is
   compiled the exports of all its callees are available (paper Section
   5); delayed instantiation lives here. *)

open Fd_support
open Fd_analysis

module SS = Set.Make (String)

(* A section dimension expressed over the procedure's formal scalars, so
   callers can translate it. *)
type odim =
  | Oc_const of int
  | Oc_formal of Affine.t             (* single index, affine in formal scalars *)
  | Oc_range of Affine.t * Affine.t   (* contiguous range, affine bounds *)
  | Oc_full of int * int              (* whole declared extent *)

(* Delayed communication for a nonlocal reference in this procedure whose
   instantiation moved past the procedure boundary. *)
type pending =
  | P_shift of {
      ps_array : string;          (* formal array *)
      ps_dim : int;               (* distributed dimension *)
      ps_need : Iset.t array;     (* per-processor needed indices (concrete) *)
      ps_other : odim list;       (* the read's non-distributed subscripts *)
      ps_write_other : odim list option;
          (* the partitioned write's non-distributed subscripts, for the
             caller's cross-iteration disjointness test *)
    }
  | P_invariant of {
      pi_array : string;          (* formal array *)
      pi_dim : int;               (* distributed dimension *)
      pi_index : Affine.t;        (* loop-invariant distributed index, over formals *)
      pi_other : odim list;
    }

(* The computation-partition constraint of the whole procedure. *)
type constraint_ =
  | C_none
      (* procedure partitions internally (or does replicated work);
         callers invoke it unguarded on every processor *)
  | C_owner of {
      co_array : string;   (* formal array *)
      co_dim : int;        (* distributed dimension *)
      co_index : Affine.t; (* over formal scalars *)
    }
      (* every distributed access touches this single owner: callers
         guard the call and broadcast scalar results *)

type t = {
  ex_proc : string;
  ex_constraint : constraint_;
  ex_comms : pending list;
  ex_before : (string * Decomp.t) list;  (* remap formal before the call *)
  ex_after : (string * Decomp.t) list;   (* restore formal after the call *)
  ex_use : SS.t;   (* formals referenced under their inherited decomposition *)
  ex_kill : SS.t;  (* formals always redistributed on entry *)
  ex_mod_scalars : SS.t;  (* formal scalars modified (need post-call broadcast
                             when the call is owner-guarded) *)
  ex_value_kill : SS.t;   (* formal arrays fully overwritten before any read *)
}

let empty proc = {
  ex_proc = proc;
  ex_constraint = C_none;
  ex_comms = [];
  ex_before = [];
  ex_after = [];
  ex_use = SS.empty;
  ex_kill = SS.empty;
  ex_mod_scalars = SS.empty;
  ex_value_kill = SS.empty;
}

let pp_odim ppf = function
  | Oc_const c -> Fmt.int ppf c
  | Oc_formal a -> Affine.pp ppf a
  | Oc_range (a, b) -> Fmt.pf ppf "%a:%a" Affine.pp a Affine.pp b
  | Oc_full (lo, hi) -> Fmt.pf ppf "%d:%d(full)" lo hi

let pp_pending ppf = function
  | P_shift { ps_array; ps_dim; ps_other; _ } ->
    Fmt.pf ppf "shift(%s dim %d other [%a])" ps_array (ps_dim + 1)
      Fmt.(list ~sep:(any ";") pp_odim)
      ps_other
  | P_invariant { pi_array; pi_dim; pi_index; _ } ->
    Fmt.pf ppf "invariant(%s dim %d index %a)" pi_array (pi_dim + 1) Affine.pp pi_index

let pp ppf t =
  Fmt.pf ppf "@[<v>export %s:@ constraint: %s@ comms: %a@ before: %s@ after: %s@ use/kill: {%s}/{%s} mod-scalars {%s} value-kill {%s}@]"
    t.ex_proc
    (match t.ex_constraint with
    | C_none -> "none"
    | C_owner { co_array; co_dim; co_index } ->
      Fmt.str "owner(%s dim %d = %a)" co_array (co_dim + 1) Affine.pp co_index)
    Fmt.(list ~sep:(any ", ") pp_pending)
    t.ex_comms
    (String.concat "," (List.map (fun (v, d) -> v ^ Decomp.to_string d) t.ex_before))
    (String.concat "," (List.map (fun (v, d) -> v ^ Decomp.to_string d) t.ex_after))
    (String.concat "," (SS.elements t.ex_use))
    (String.concat "," (SS.elements t.ex_kill))
    (String.concat "," (SS.elements t.ex_mod_scalars))
    (String.concat "," (SS.elements t.ex_value_kill))
