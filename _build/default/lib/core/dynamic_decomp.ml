(* Dynamic data decomposition (paper Section 6).

   Remapping operations are materialized as `remap$` pseudo-statements in
   the procedure body (around call sites, from the callees' exported
   DecompBefore/DecompAfter sets; and at local DISTRIBUTE statements),
   then optimized:

     - live decompositions: CFG-based dead-remap elimination (Fig. 16b)
       and redundant-remap removal (coalescing);
     - loop-invariant decompositions: hoisting leading/trailing remaps out
       of loops (Fig. 16c);
     - array kills: a physical remap whose array's values are dead (fully
       overwritten before any read) becomes a mark-only remap (Fig. 16d).

   The pseudo-statement encoding is
     call remap$(X, dim, kind, blocksize, move)
   with kind 0=replicated 1=block 2=cyclic 3=block_cyclic, dim 0-based
   (-1 = replicated), move 1=physical 0=mark-only. *)

open Fd_support
open Fd_frontend
open Fd_analysis

module SS = Set.Make (String)

let pseudo_sid = ref 1_000_000

let fresh_pseudo_sid () =
  incr pseudo_sid;
  !pseudo_sid

type remap = { rm_array : string; rm_decomp : Decomp.t; rm_move : bool }

let kind_code = function
  | Ast.Star -> (0, 0)
  | Ast.Block -> (1, 0)
  | Ast.Cyclic -> (2, 0)
  | Ast.Block_cyclic k -> (3, k)

let kind_of_code code size =
  match code with
  | 0 -> Ast.Star
  | 1 -> Ast.Block
  | 2 -> Ast.Cyclic
  | 3 -> Ast.Block_cyclic size
  | _ -> Diag.error "bad remap$ kind code %d" code

let remap_stmt (rm : remap) : Ast.stmt =
  let dim, kind, size =
    match Decomp.dist_dim rm.rm_decomp with
    | None -> (-1, 0, 0)
    | Some (d, k) ->
      let c, s = kind_code k in
      (d, c, s)
  in
  { Ast.sid = fresh_pseudo_sid ();
    loc = Loc.none;
    kind =
      Ast.Call
        ( "remap$",
          [ Ast.Var rm.rm_array; Ast.Int_const dim; Ast.Int_const kind;
            Ast.Int_const size; Ast.Int_const (if rm.rm_move then 1 else 0) ] ) }

let as_remap (s : Ast.stmt) : remap option =
  match s.Ast.kind with
  | Ast.Call
      ( "remap$",
        [ Ast.Var array; Ast.Int_const dim; Ast.Int_const kind; Ast.Int_const size;
          Ast.Int_const move ] ) ->
    let rank = 1 + max dim 0 in
    let kinds =
      if dim < 0 then []
      else
        List.init rank (fun i -> if i = dim then kind_of_code kind size else Ast.Star)
    in
    Some
      { rm_array = array;
        rm_decomp = (if dim < 0 then Decomp.replicated 1 else Decomp.of_kinds kinds);
        rm_move = move = 1 }
  | _ -> None

let is_remap_of array s =
  match as_remap s with Some r -> String.equal r.rm_array array | None -> false

(* remap$ preserves the rank opaquely: the code generator resolves the
   actual rank from the symbol table; only dist_dim/kind matter here. *)

(* --- Uses of an array's current decomposition ------------------------ *)

(* Does statement [s] (not descending into compound bodies) use array
   [x]'s decomposition: reference it, or pass it to a procedure that
   references it? *)
let stmt_uses_array ~(call_touches : string -> Ast.expr list -> SS.t) (x : string)
    (s : Ast.stmt) : bool =
  match as_remap s with
  | Some _ -> false
  | None -> (
    let found = ref false in
    let check_expr e =
      Ast.iter_exprs_expr
        (fun e' ->
          match e' with
          | Ast.Ref (a, _) when String.equal a x -> found := true
          | Ast.Var a when String.equal a x -> found := true
          | _ -> ())
        e
    in
    (match s.Ast.kind with
    | Ast.Assign (lhs, rhs) ->
      check_expr lhs;
      check_expr rhs
    | Ast.Do d ->
      check_expr d.lo;
      check_expr d.hi;
      Option.iter check_expr d.step
    | Ast.If i -> check_expr i.cond
    | Ast.Call (callee, args) ->
      if SS.mem x (call_touches callee args) then found := true
    | Ast.Print args -> List.iter check_expr args
    | Ast.Align _ | Ast.Distribute _ | Ast.Return -> ());
    !found)

let rec subtree_uses_array ~call_touches x (s : Ast.stmt) : bool =
  stmt_uses_array ~call_touches x s
  ||
  match s.Ast.kind with
  | Ast.Do d -> List.exists (subtree_uses_array ~call_touches x) d.body
  | Ast.If i ->
    List.exists (subtree_uses_array ~call_touches x) i.then_
    || List.exists (subtree_uses_array ~call_touches x) i.else_
  | _ -> false

let rec subtree_remaps_array x (s : Ast.stmt) : bool =
  is_remap_of x s
  ||
  match s.Ast.kind with
  | Ast.Do d -> List.exists (subtree_remaps_array x) d.body
  | Ast.If i ->
    List.exists (subtree_remaps_array x) i.then_
    || List.exists (subtree_remaps_array x) i.else_
  | _ -> false

(* --- Pass 1: dead-remap elimination (backward liveness on the CFG) --- *)

let dead_remap_elim ~call_touches (body : Ast.stmt list) : Ast.stmt list * int =
  let cfg = Cfg.build body in
  (* facts: set of array names whose current decomposition may still be
     used downstream *)
  let module L = struct
    type t = SS.t

    let bottom = SS.empty
    let join = SS.union
    let equal = SS.equal
  end in
  let module Solver = Dataflow.Make (L) in
  let transfer _ node fact =
    match node with
    | Cfg.Entry | Cfg.Exit -> fact
    | Cfg.Stmt s -> (
      match as_remap s with
      | Some r -> SS.remove r.rm_array fact
      | None ->
        (* add arrays used by this statement *)
        let used = ref fact in
        let check x = if stmt_uses_array ~call_touches x s then used := SS.add x !used in
        (* compute over all arrays mentioned; collect names from the stmt *)
        let names = ref SS.empty in
        Ast.iter_exprs_stmt
          (fun e ->
            Ast.iter_exprs_expr
              (fun e' ->
                match e' with
                | Ast.Ref (a, _) | Ast.Var a -> names := SS.add a !names
                | _ -> ())
              e)
          s;
        (match s.Ast.kind with
        | Ast.Call (callee, args) -> names := SS.union !names (call_touches callee args)
        | _ -> ());
        SS.iter check !names;
        !used)
  in
  let result = Solver.solve ~direction:Dataflow.Backward ~init:SS.empty ~transfer cfg in
  (* live-out of a node in a backward problem is the join of inputs of
     CFG successors = the solver's input at that node minus its own
     transfer...  Simpler: a remap node is dead iff its own array is not
     in the join of its successors' output facts. *)
  let removed = ref 0 in
  let live_after i =
    List.fold_left (fun acc s -> SS.union acc result.Solver.output.(s)) SS.empty
      (Cfg.succs cfg i)
  in
  let dead_sids = ref [] in
  for i = 0 to Cfg.length cfg - 1 do
    match Cfg.node cfg i with
    | Cfg.Stmt s -> (
      match as_remap s with
      | Some r ->
        if not (SS.mem r.rm_array (live_after i)) then begin
          dead_sids := s.Ast.sid :: !dead_sids;
          incr removed
        end
      | None -> ())
    | _ -> ()
  done;
  let rec filter stmts =
    List.filter_map
      (fun (s : Ast.stmt) ->
        if List.mem s.Ast.sid !dead_sids then None
        else
          match s.Ast.kind with
          | Ast.Do d -> Some { s with kind = Ast.Do { d with body = filter d.body } }
          | Ast.If i ->
            Some
              { s with
                kind = Ast.If { i with then_ = filter i.then_; else_ = filter i.else_ } }
          | _ -> Some s)
      stmts
  in
  (filter body, !removed)

(* --- Pass 2: redundant-remap removal (forward decomposition tracking) - *)

module DM = Map.Make (String)

let redundant_remap_elim ~(initial : Decomp.t DM.t) (body : Ast.stmt list) :
    Ast.stmt list * int =
  let cfg = Cfg.build body in
  (* fact: array -> current decomposition; absence = unknown/conflict.
     The lattice join keeps only agreeing entries. *)
  let module L = struct
    type t = Decomp.t DM.t option  (* None = unreachable (bottom) *)

    let bottom = None

    let join a b =
      match (a, b) with
      | None, x | x, None -> x
      | Some m1, Some m2 ->
        Some
          (DM.merge
             (fun _ d1 d2 ->
               match (d1, d2) with
               | Some x, Some y when Decomp.equal x y -> Some x
               | _ -> None)
             m1 m2)

    let equal a b =
      match (a, b) with
      | None, None -> true
      | Some m1, Some m2 -> DM.equal Decomp.equal m1 m2
      | _ -> false
  end in
  let module Solver = Dataflow.Make (L) in
  let transfer _ node fact =
    match (node, fact) with
    | _, None -> (
      match node with
      | Cfg.Entry -> Some initial
      | _ -> None)
    | Cfg.Stmt s, Some m -> (
      match as_remap s with
      | Some r -> Some (DM.add r.rm_array r.rm_decomp m)
      | None -> Some m)
    | (Cfg.Entry | Cfg.Exit), Some m -> Some m
  in
  let result =
    Solver.solve ~direction:Dataflow.Forward ~init:(Some initial) ~transfer cfg
  in
  let redundant = ref [] in
  for i = 0 to Cfg.length cfg - 1 do
    match Cfg.node cfg i with
    | Cfg.Stmt s -> (
      match as_remap s with
      | Some r -> (
        match result.Solver.input.(i) with
        | Some m -> (
          match DM.find_opt r.rm_array m with
          | Some d when Decomp.equal d r.rm_decomp ->
            redundant := s.Ast.sid :: !redundant
          | _ -> ())
        | None -> ())
      | None -> ())
    | _ -> ()
  done;
  let rec filter stmts =
    List.filter_map
      (fun (s : Ast.stmt) ->
        if List.mem s.Ast.sid !redundant then None
        else
          match s.Ast.kind with
          | Ast.Do d -> Some { s with kind = Ast.Do { d with body = filter d.body } }
          | Ast.If i ->
            Some
              { s with
                kind = Ast.If { i with then_ = filter i.then_; else_ = filter i.else_ } }
          | _ -> Some s)
      stmts
  in
  (filter body, List.length !redundant)

(* --- Pass 3: loop-invariant hoisting --------------------------------- *)

(* A remap R of X inside a loop body may move *after* the loop when no
   use of X follows it in the body, and the first X-touching item of the
   body (reached via the back edge) is itself a remap of X (or X is not
   used in the body at all).  A remap at the head of the body that is the
   only remap of X left in the body may then move *before* the loop. *)
let rec hoist_loops ~call_touches (stmts : Ast.stmt list) : Ast.stmt list * int =
  let moved = ref 0 in
  let uses x s = subtree_uses_array ~call_touches x s in
  let result =
    List.concat_map
      (fun (s : Ast.stmt) ->
        match s.Ast.kind with
        | Ast.Do d ->
          let body, m = hoist_loops ~call_touches d.body in
          moved := !moved + m;
          (* collect remaps movable after the loop *)
          let first_touch_is_remap x body =
            let rec scan = function
              | [] -> true  (* X untouched in body *)
              | t :: rest ->
                if is_remap_of x t then true
                else if uses x t || subtree_remaps_array x t then false
                else scan rest
            in
            scan body
          in
          let rec split before = function
            | [] -> (List.rev before, [])
            | t :: rest -> (
              match as_remap t with
              | Some r
                when (not (List.exists (uses r.rm_array) rest))
                     && not (List.exists (subtree_remaps_array r.rm_array) rest) ->
                if first_touch_is_remap r.rm_array (List.rev_append before rest) then begin
                  incr moved;
                  let kept, trailing = split before rest in
                  (kept, t :: trailing)
                end
                else
                  let kept, trailing = split (t :: before) rest in
                  (kept, trailing)
              | _ ->
                let kept, trailing = split (t :: before) rest in
                (kept, trailing))
          in
          let body, trailing = split [] body in
          (* leading remap that is the only remap of its array in the
             body: move before the loop *)
          let leading, body =
            match body with
            | first :: rest when as_remap first <> None ->
              let r = Option.get (as_remap first) in
              if not (List.exists (subtree_remaps_array r.rm_array) rest) then begin
                incr moved;
                (Some first, rest)
              end
              else (None, body)
            | _ -> (None, body)
          in
          Option.to_list leading
          @ [ { s with kind = Ast.Do { d with body } } ]
          @ trailing
        | Ast.If i ->
          let then_, m1 = hoist_loops ~call_touches i.then_ in
          let else_, m2 = hoist_loops ~call_touches i.else_ in
          moved := !moved + m1 + m2;
          [ { s with kind = Ast.If { i with then_; else_ } } ]
        | _ -> [ s ])
      stmts
  in
  (result, !moved)

(* --- Pass 4: array kills (remap in place) ----------------------------- *)

(* Does this statement subtree fully overwrite [x] (declared bounds
   [dims]) without reading it first?  Detected for rectangular loop nests
   with affine stores covering the whole declared region. *)
let fully_overwrites (symtab : Symtab.t) (dims : (int * int) list) (x : string)
    (s : Ast.stmt) : bool =
  let refs = Sections.collect symtab [ s ] in
  let reads = List.filter (fun r -> (not r.Sections.is_write) && String.equal r.Sections.array x) refs in
  if reads <> [] then false
  else begin
    let written = Sections.written_region ~declared:dims ~array:x refs in
    let full =
      Region.of_triplets (List.map (fun (lo, hi) -> Triplet.make ~lo ~hi ~step:1) dims)
    in
    (* written is an over-approximation in general, but for exact affine
       single-loop-var subscripts it is exact; require subscripts to be
       exact before trusting coverage *)
    let writes = List.filter (fun r -> r.Sections.is_write && String.equal r.Sections.array x) refs in
    let exact =
      List.for_all
        (fun (r : Sections.ref_info) ->
          List.for_all
            (fun sub ->
              match sub with
              | Some a -> (
                match Affine.vars a with
                | [] -> true
                | [ _ ] -> true
                | _ -> false)
              | None -> false)
            r.Sections.subs)
        writes
    in
    exact && Region.subset full written
  end

(* [value_killer callee i] says whether the named procedure fully
   overwrites its i-th formal (0-based) before reading it. *)
let array_kills ~(symtab : Symtab.t) ~(value_killer : string -> int -> bool)
    (body : Ast.stmt list) : Ast.stmt list * int =
  let converted = ref 0 in
  let dims_of x =
    match Symtab.array_info symtab x with Some i -> Some i.Symtab.dims | None -> None
  in
  (* scan each block: for a physical remap, look at the following
     statements in the same block; if the first to touch the array kills
     its values, convert the remap to mark-only *)
  let next_touch_kills x rest =
    let rec first_touch = function
      | [] -> None
      | t :: more ->
        if subtree_remaps_array x t then Some (`Remap t)
        else if
          subtree_uses_array
            ~call_touches:(fun _callee args ->
              (* any call mentioning x as an actual touches it *)
              if
                List.exists
                  (function Ast.Var v -> String.equal v x | _ -> false)
                  args
              then SS.singleton x
              else SS.empty)
            x t
        then Some (`Use t)
        else first_touch more
    in
    match first_touch rest with
    | Some (`Use t) -> (
      match t.Ast.kind with
      | Ast.Call (callee, args) -> (
        (* resolve the formal position bound to actual x *)
        match
          List.find_map
            (fun (i, a) ->
              match a with
              | Ast.Var v when String.equal v x -> Some i
              | _ -> None)
            (List.mapi (fun i a -> (i, a)) args)
        with
        | Some idx -> value_killer callee idx
        | None -> false)
      | _ -> (
        match dims_of x with
        | Some dims -> fully_overwrites symtab dims x t
        | None -> false))
    | _ -> false
  in
  let rec scan_block (stmts : Ast.stmt list) : Ast.stmt list =
    match stmts with
    | [] -> []
    | s :: rest -> (
      match as_remap s with
      | Some r when r.rm_move && next_touch_kills r.rm_array rest ->
        incr converted;
        remap_stmt { r with rm_move = false } :: scan_block rest
      | Some _ -> s :: scan_block rest
      | None -> (
        match s.Ast.kind with
        | Ast.Do d ->
          { s with kind = Ast.Do { d with body = scan_block d.body } } :: scan_block rest
        | Ast.If i ->
          { s with
            kind = Ast.If { i with then_ = scan_block i.then_; else_ = scan_block i.else_ } }
          :: scan_block rest
        | _ -> s :: scan_block rest))
  in
  (scan_block body, !converted)

type opt_stats = { dead_removed : int; redundant_removed : int; hoisted : int; kills : int }

(* Run the optimization passes appropriate to the remap level. *)
let optimize (level : Options.remap_level) ~call_touches ~initial ~symtab
    ~value_killer (body : Ast.stmt list) : Ast.stmt list * opt_stats =
  match level with
  | Options.Remap_none ->
    (body, { dead_removed = 0; redundant_removed = 0; hoisted = 0; kills = 0 })
  | Options.Remap_live | Options.Remap_hoist | Options.Remap_kill ->
    let body, dead1 = dead_remap_elim ~call_touches body in
    let body, red1 = redundant_remap_elim ~initial body in
    let body, hoisted, dead2, red2 =
      if level = Options.Remap_live then (body, 0, 0, 0)
      else begin
        let body, h = hoist_loops ~call_touches body in
        let body, d = dead_remap_elim ~call_touches body in
        let body, r = redundant_remap_elim ~initial body in
        (body, h, d, r)
      end
    in
    let body, kills =
      if level = Options.Remap_kill then array_kills ~symtab ~value_killer body
      else (body, 0)
    in
    ( body,
      { dead_removed = dead1 + dead2;
        redundant_removed = red1 + red2;
        hoisted;
        kills } )
