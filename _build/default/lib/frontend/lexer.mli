(** Hand-written lexer for mini-Fortran D.

    Free-form source: case-insensitive keywords and identifiers, [!]
    comments to end of line, [&] at end of line continues the statement,
    [;] acts as a statement separator.  Identifiers may contain [$]
    (compiler-generated names like [my$p] are legal source).  Dotted
    operators ([.eq.], [.and.], [.true.], ...) and symbolic spellings
    ([==], [<=], [/=], [<>]) are both accepted. *)

type t

val make : ?file:string -> string -> t

val next : t -> Fd_support.Loc.t * Token.t
(** Next token; returns [EOF] at end of input.
    @raise Fd_support.Diag.Compile_error on malformed input. *)

val tokenize : ?file:string -> string -> (Fd_support.Loc.t * Token.t) list
(** The whole token stream, ending with [EOF]. *)
