(* Tokens for the mini-Fortran-D lexer. *)

type t =
  | INT of int
  | REAL_LIT of float
  | IDENT of string   (* lower-cased *)
  | KW of string      (* recognized keyword, lower-cased *)
  | PLUS | MINUS | STAR | SLASH | POW
  | EQ                (* = *)
  | EQEQ | NE | LT | LE | GT | GE
  | AND | OR | NOT
  | TRUE | FALSE
  | LPAREN | RPAREN
  | COMMA | COLON
  | NEWLINE
  | EOF

let keywords =
  [ "program"; "subroutine"; "end"; "enddo"; "endif"; "if"; "then"; "else";
    "elseif"; "do"; "call"; "return"; "real"; "integer"; "logical";
    "parameter"; "decomposition"; "align"; "with"; "distribute"; "common"; "block";
    "cyclic"; "block_cyclic"; "print" ]

let is_keyword s = List.mem s keywords

let pp ppf = function
  | INT n -> Fmt.pf ppf "INT(%d)" n
  | REAL_LIT f -> Fmt.pf ppf "REAL(%g)" f
  | IDENT s -> Fmt.pf ppf "IDENT(%s)" s
  | KW s -> Fmt.pf ppf "KW(%s)" s
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | SLASH -> Fmt.string ppf "/"
  | POW -> Fmt.string ppf "**"
  | EQ -> Fmt.string ppf "="
  | EQEQ -> Fmt.string ppf "=="
  | NE -> Fmt.string ppf "/="
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | AND -> Fmt.string ppf ".and."
  | OR -> Fmt.string ppf ".or."
  | NOT -> Fmt.string ppf ".not."
  | TRUE -> Fmt.string ppf ".true."
  | FALSE -> Fmt.string ppf ".false."
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | COMMA -> Fmt.string ppf ","
  | COLON -> Fmt.string ppf ":"
  | NEWLINE -> Fmt.string ppf "<nl>"
  | EOF -> Fmt.string ppf "<eof>"

let to_string t = Fmt.str "%a" pp t
