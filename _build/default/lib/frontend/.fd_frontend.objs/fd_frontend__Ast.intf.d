lib/frontend/ast.mli: Fd_support
