lib/frontend/ast_printer.ml: Ast Fd_support Fmt List Listx String
