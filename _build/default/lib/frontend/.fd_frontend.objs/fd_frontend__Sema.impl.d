lib/frontend/sema.ml: Ast Ast_printer Diag Fd_support Fmt List Listx Loc Option Parser String Symtab
