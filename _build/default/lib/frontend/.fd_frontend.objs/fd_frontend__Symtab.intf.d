lib/frontend/symtab.mli: Ast
