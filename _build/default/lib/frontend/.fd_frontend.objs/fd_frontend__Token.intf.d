lib/frontend/token.mli: Format
