lib/frontend/token.ml: Fmt List
