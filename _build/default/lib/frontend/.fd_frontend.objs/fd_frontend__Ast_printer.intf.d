lib/frontend/ast_printer.mli: Ast Format
