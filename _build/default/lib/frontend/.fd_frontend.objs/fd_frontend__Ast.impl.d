lib/frontend/ast.ml: Fd_support List Loc Option
