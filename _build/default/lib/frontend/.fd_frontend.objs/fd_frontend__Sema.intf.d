lib/frontend/sema.mli: Ast Symtab
