lib/frontend/parser.ml: Array Ast Diag Fd_support Format Lexer List Loc String Token
