lib/frontend/symtab.ml: Ast Diag Fd_support Hashtbl List
