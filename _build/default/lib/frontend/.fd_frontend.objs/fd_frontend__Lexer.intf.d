lib/frontend/lexer.mli: Fd_support Token
