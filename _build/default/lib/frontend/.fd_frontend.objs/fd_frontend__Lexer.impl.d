lib/frontend/lexer.ml: Diag Fd_support List Loc String Token
