(** Abstract syntax for mini-Fortran D.

    The subset covers everything exercised by the paper: program units
    with formal parameters, typed scalar/array declarations, PARAMETER
    constants, the Fortran D placement statements (DECOMPOSITION, and the
    executable ALIGN / DISTRIBUTE), DO loops, block IF, assignments,
    CALL, RETURN, and PRINT. *)

type dtype = Real | Integer | Logical

type binop =
  | Add | Sub | Mul | Div | Pow
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr =
  | Int_const of int
  | Real_const of float
  | Logical_const of bool
  | Var of string
      (** scalar reference, or whole-array actual argument *)
  | Ref of string * expr list
      (** array element reference (also the parse of [f(args)] before
          {!Sema} distinguishes intrinsics) *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Funcall of string * expr list
      (** intrinsic function application (introduced by {!Sema}) *)

type dist_kind =
  | Block
  | Cyclic
  | Block_cyclic of int
  | Star  (** ":" — dimension not distributed *)

(** One target-dimension subscript of [ALIGN A(i,j) WITH D(j,i+1)]:
    either a (0-based) source dimension plus constant offset, or a
    constant. *)
type align_sub = Align_dim of int * int | Align_const of int

type dim = { dlo : expr; dhi : expr }
(** A declared dimension [dlo:dhi]; [dlo] defaults to 1. *)

type decl =
  | Dcl_type of dtype * (string * dim list) list
  | Dcl_param of (string * expr) list
  | Dcl_decomposition of (string * dim list) list
  | Dcl_common of string * string list
      (** [COMMON /block/ names]: storage shared program-wide.  Every
          unit using a block must declare it identically (checked). *)

type stmt = { sid : int; loc : Fd_support.Loc.t; kind : stmt_kind }
(** Statement ids are unique within a parse and increase in textual
    order (outer statements before their bodies). *)

and stmt_kind =
  | Assign of expr * expr
      (** lhs is [Var] (scalar) or [Ref] (array element) *)
  | Do of do_stmt
  | If of if_stmt
  | Call of string * expr list
  | Align of { array : string; target : string; subs : align_sub list }
  | Distribute of { decomp : string; dists : dist_kind list }
      (** [decomp] names a DECOMPOSITION or an array *)
  | Return
  | Print of expr list

and do_stmt = {
  var : string;
  lo : expr;
  hi : expr;
  step : expr option;
  body : stmt list;
}

and if_stmt = { cond : expr; then_ : stmt list; else_ : stmt list }

type unit_kind = Main | Subroutine

type punit = {
  uname : string;
  ukind : unit_kind;
  formals : string list;
  decls : decl list;
  body : stmt list;
  uloc : Fd_support.Loc.t;
}

type program = punit list

val iter_stmts : (stmt -> unit) -> stmt list -> unit
(** Preorder traversal of every statement, descending into DO/IF bodies. *)

val iter_exprs_expr : (expr -> unit) -> expr -> unit
(** Preorder traversal of an expression tree (visits the root too). *)

val iter_exprs_stmt : (expr -> unit) -> stmt -> unit
(** Visit the top-level expressions of one statement (no recursion into
    compound bodies; combine with {!iter_stmts} for a full sweep). *)

val map_stmts : (stmt -> stmt) -> stmt list -> stmt list
(** Rebuild a statement tree; [f] is applied before descending. *)

val binop_is_comparison : binop -> bool
