(* Pretty-printer producing parseable mini-Fortran-D source.  The
   lexer/parser/printer triple round-trips (tested with qcheck). *)

open Fd_support

let dtype_name = function
  | Ast.Real -> "real"
  | Ast.Integer -> "integer"
  | Ast.Logical -> "logical"

let binop_name = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Pow -> "**"
  | Ast.Eq -> "=="
  | Ast.Ne -> "/="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> ".and."
  | Ast.Or -> ".or."

(* Precedence levels for minimal parenthesization. *)
let binop_prec = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 4
  | Ast.Add | Ast.Sub -> 5
  | Ast.Mul | Ast.Div -> 6
  | Ast.Pow -> 8

let rec pp_expr_prec prec ppf e =
  match e with
  | Ast.Int_const n ->
    if n < 0 && prec > 7 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | Ast.Real_const f ->
    let s = Fmt.str "%.17g" f in
    let s = if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s else s ^ ".0" in
    if f < 0.0 && prec > 7 then Fmt.pf ppf "(%s)" s else Fmt.string ppf s
  | Ast.Logical_const true -> Fmt.string ppf ".true."
  | Ast.Logical_const false -> Fmt.string ppf ".false."
  | Ast.Var v -> Fmt.string ppf v
  | Ast.Ref (a, subs) | Ast.Funcall (a, subs) ->
    Fmt.pf ppf "%s(%a)" a Fmt.(list ~sep:(any ", ") pp_expr) subs
  | Ast.Bin (op, a, b) ->
    let p = binop_prec op in
    let la, ra = match op with Ast.Pow -> (p + 1, p) | _ -> (p, p + 1) in
    if p < prec then
      Fmt.pf ppf "(%a %s %a)" (pp_expr_prec la) a (binop_name op) (pp_expr_prec ra) b
    else Fmt.pf ppf "%a %s %a" (pp_expr_prec la) a (binop_name op) (pp_expr_prec ra) b
  | Ast.Un (Ast.Neg, a) ->
    if prec > 7 then Fmt.pf ppf "(-%a)" (pp_expr_prec 7) a
    else Fmt.pf ppf "-%a" (pp_expr_prec 7) a
  | Ast.Un (Ast.Not, a) ->
    if prec > 3 then Fmt.pf ppf "(.not. %a)" (pp_expr_prec 3) a
    else Fmt.pf ppf ".not. %a" (pp_expr_prec 3) a

and pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_dim ppf { Ast.dlo; dhi } =
  match dlo with
  | Ast.Int_const 1 -> pp_expr ppf dhi
  | _ -> Fmt.pf ppf "%a:%a" pp_expr dlo pp_expr dhi

let pp_declarator ppf (name, dims) =
  match dims with
  | [] -> Fmt.string ppf name
  | _ -> Fmt.pf ppf "%s(%a)" name Fmt.(list ~sep:(any ", ") pp_dim) dims

let pp_decl ppf = function
  | Ast.Dcl_type (ty, ds) ->
    Fmt.pf ppf "%s %a" (dtype_name ty) Fmt.(list ~sep:(any ", ") pp_declarator) ds
  | Ast.Dcl_param bindings ->
    let pp_b ppf (n, v) = Fmt.pf ppf "%s = %a" n pp_expr v in
    Fmt.pf ppf "parameter (%a)" Fmt.(list ~sep:(any ", ") pp_b) bindings
  | Ast.Dcl_decomposition ds ->
    Fmt.pf ppf "decomposition %a" Fmt.(list ~sep:(any ", ") pp_declarator) ds
  | Ast.Dcl_common (block, names) ->
    Fmt.pf ppf "common /%s/ %s" block (String.concat ", " names)

let dist_name = function
  | Ast.Block -> "block"
  | Ast.Cyclic -> "cyclic"
  | Ast.Block_cyclic k -> Fmt.str "block_cyclic(%d)" k
  | Ast.Star -> ":"

let align_sub_name placeholders = function
  | Ast.Align_const c -> string_of_int c
  | Ast.Align_dim (i, 0) -> List.nth placeholders i
  | Ast.Align_dim (i, c) when c > 0 -> Fmt.str "%s+%d" (List.nth placeholders i) c
  | Ast.Align_dim (i, c) -> Fmt.str "%s-%d" (List.nth placeholders i) (-c)

let placeholder_names = [ "i"; "j"; "k"; "l"; "m"; "n_" ]

let rec pp_stmt indent ppf (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  match s.kind with
  | Ast.Assign (lhs, rhs) -> Fmt.pf ppf "%s%a = %a@." pad pp_expr lhs pp_expr rhs
  | Ast.Do { var; lo; hi; step; body } ->
    (match step with
    | None -> Fmt.pf ppf "%sdo %s = %a, %a@." pad var pp_expr lo pp_expr hi
    | Some st ->
      Fmt.pf ppf "%sdo %s = %a, %a, %a@." pad var pp_expr lo pp_expr hi pp_expr st);
    List.iter (pp_stmt (indent + 2) ppf) body;
    Fmt.pf ppf "%senddo@." pad
  | Ast.If { cond; then_; else_ } ->
    Fmt.pf ppf "%sif (%a) then@." pad pp_expr cond;
    List.iter (pp_stmt (indent + 2) ppf) then_;
    if else_ <> [] then begin
      Fmt.pf ppf "%selse@." pad;
      List.iter (pp_stmt (indent + 2) ppf) else_
    end;
    Fmt.pf ppf "%sendif@." pad
  | Ast.Call (name, []) -> Fmt.pf ppf "%scall %s()@." pad name
  | Ast.Call (name, args) ->
    Fmt.pf ppf "%scall %s(%a)@." pad name Fmt.(list ~sep:(any ", ") pp_expr) args
  | Ast.Align { array; target; subs } ->
    let nplace =
      1 + List.fold_left (fun acc -> function Ast.Align_dim (i, _) -> max acc i | _ -> acc) (-1) subs
    in
    let nplace = max nplace 1 in
    let ps = Listx.take nplace placeholder_names in
    Fmt.pf ppf "%salign %s(%s) with %s(%s)@." pad array (String.concat ", " ps)
      target
      (String.concat ", " (List.map (align_sub_name ps) subs))
  | Ast.Distribute { decomp; dists } ->
    Fmt.pf ppf "%sdistribute %s(%s)@." pad decomp
      (String.concat ", " (List.map dist_name dists))
  | Ast.Return -> Fmt.pf ppf "%sreturn@." pad
  | Ast.Print [] -> Fmt.pf ppf "%sprint *@." pad
  | Ast.Print args ->
    Fmt.pf ppf "%sprint *, %a@." pad Fmt.(list ~sep:(any ", ") pp_expr) args

let pp_punit ppf (u : Ast.punit) =
  (match u.ukind with
  | Ast.Main -> Fmt.pf ppf "program %s@." u.uname
  | Ast.Subroutine ->
    if u.formals = [] then Fmt.pf ppf "subroutine %s()@." u.uname
    else Fmt.pf ppf "subroutine %s(%s)@." u.uname (String.concat ", " u.formals));
  List.iter (fun d -> Fmt.pf ppf "  %a@." pp_decl d) u.decls;
  List.iter (pp_stmt 2 ppf) u.body;
  Fmt.pf ppf "end@."

let pp_program ppf (p : Ast.program) =
  Fmt.(list ~sep:(any "@.") pp_punit) ppf p

let program_to_string p = Fmt.str "%a" pp_program p
let expr_to_string e = Fmt.str "%a" pp_expr e
let stmt_to_string s = Fmt.str "%a" (pp_stmt 0) s
