(* Abstract syntax for mini-Fortran D.

   The subset covers everything exercised by the paper: program units with
   formal parameters, typed scalar/array declarations, PARAMETER constants,
   the Fortran D placement statements (DECOMPOSITION / ALIGN / DISTRIBUTE,
   the latter two executable), DO loops, block IF, assignments, CALL,
   RETURN, and PRINT (for demos). *)

open Fd_support

type dtype = Real | Integer | Logical

type binop =
  | Add | Sub | Mul | Div | Pow
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type unop = Neg | Not

type expr =
  | Int_const of int
  | Real_const of float
  | Logical_const of bool
  | Var of string
      (* scalar reference, or whole-array actual argument *)
  | Ref of string * expr list
      (* array element reference *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Funcall of string * expr list
      (* intrinsic function application *)

type dist_kind =
  | Block
  | Cyclic
  | Block_cyclic of int
  | Star  (* ":" = dimension not distributed *)

(* ALIGN A(i,j) WITH D(j,i+1): for each target dimension, either a source
   dimension (0-based) plus constant offset, or a constant subscript. *)
type align_sub = Align_dim of int * int | Align_const of int

type dim = { dlo : expr; dhi : expr }

type decl =
  | Dcl_type of dtype * (string * dim list) list
  | Dcl_param of (string * expr) list
  | Dcl_decomposition of (string * dim list) list
  | Dcl_common of string * string list
      (* COMMON /block/ names: storage shared program-wide *)

type stmt = { sid : int; loc : Loc.t; kind : stmt_kind }

and stmt_kind =
  | Assign of expr * expr
      (* lhs is Var (scalar) or Ref (array element) *)
  | Do of do_stmt
  | If of if_stmt
  | Call of string * expr list
  | Align of { array : string; target : string; subs : align_sub list }
  | Distribute of { decomp : string; dists : dist_kind list }
  | Return
  | Print of expr list

and do_stmt = { var : string; lo : expr; hi : expr; step : expr option; body : stmt list }

and if_stmt = { cond : expr; then_ : stmt list; else_ : stmt list }

type unit_kind = Main | Subroutine

type punit = {
  uname : string;
  ukind : unit_kind;
  formals : string list;
  decls : decl list;
  body : stmt list;
  uloc : Loc.t;
}

type program = punit list

(* Traversal helpers *)

let rec iter_stmts f stmts =
  List.iter
    (fun s ->
      f s;
      match s.kind with
      | Do d -> iter_stmts f d.body
      | If i ->
        iter_stmts f i.then_;
        iter_stmts f i.else_
      | Assign _ | Call _ | Align _ | Distribute _ | Return | Print _ -> ())
    stmts

let rec iter_exprs_expr f e =
  f e;
  match e with
  | Int_const _ | Real_const _ | Logical_const _ | Var _ -> ()
  | Ref (_, subs) -> List.iter (iter_exprs_expr f) subs
  | Bin (_, a, b) ->
    iter_exprs_expr f a;
    iter_exprs_expr f b
  | Un (_, a) -> iter_exprs_expr f a
  | Funcall (_, args) -> List.iter (iter_exprs_expr f) args

let iter_exprs_stmt f s =
  match s.kind with
  | Assign (lhs, rhs) ->
    iter_exprs_expr f lhs;
    iter_exprs_expr f rhs
  | Do d ->
    iter_exprs_expr f d.lo;
    iter_exprs_expr f d.hi;
    Option.iter (iter_exprs_expr f) d.step
  | If i -> iter_exprs_expr f i.cond
  | Call (_, args) -> List.iter (iter_exprs_expr f) args
  | Print args -> List.iter (iter_exprs_expr f) args
  | Align _ | Distribute _ | Return -> ()

let rec map_stmts f stmts =
  List.map
    (fun s ->
      let s = f s in
      match s.kind with
      | Do d -> { s with kind = Do { d with body = map_stmts f d.body } }
      | If i ->
        { s with
          kind = If { i with then_ = map_stmts f i.then_; else_ = map_stmts f i.else_ } }
      | Assign _ | Call _ | Align _ | Distribute _ | Return | Print _ -> s)
    stmts

let binop_is_comparison = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | Add | Sub | Mul | Div | Pow | And | Or -> false
