(** Lexical tokens for mini-Fortran D. *)

type t =
  | INT of int
  | REAL_LIT of float
  | IDENT of string  (** identifier, lower-cased *)
  | KW of string     (** recognized keyword, lower-cased *)
  | PLUS | MINUS | STAR | SLASH | POW
  | EQ
  | EQEQ | NE | LT | LE | GT | GE
  | AND | OR | NOT
  | TRUE | FALSE
  | LPAREN | RPAREN
  | COMMA | COLON
  | NEWLINE  (** statement separator; consecutive separators collapse *)
  | EOF

val keywords : string list

val is_keyword : string -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
