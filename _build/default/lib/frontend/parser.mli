(** Recursive-descent parser for mini-Fortran D.

    One statement per logical line; [ident(args)] parses as {!Ast.Ref}
    and {!Sema} later rewrites intrinsic applications to {!Ast.Funcall};
    [elseif] chains desugar to nested IFs.  Statement ids are assigned in
    textual order (outer statements before their bodies). *)

val parse : ?file:string -> string -> Ast.program
(** Parse a whole source file (one or more program units).
    @raise Fd_support.Diag.Compile_error on syntax errors. *)

val parse_unit : ?file:string -> string -> Ast.punit
(** Parse exactly one program unit. *)
