(* Per-procedure symbol table built by {!Sema}. *)

open Fd_support

type array_info = {
  elt : Ast.dtype;
  dims : (int * int) list;  (* declared bounds, resolved to constants *)
}

type entry =
  | Scalar of Ast.dtype
  | Array of array_info
  | Param of int  (* named integer compile-time constant *)
  | Decomposition of (int * int) list

type t = {
  table : (string, entry) Hashtbl.t;
  common_of : (string, string) Hashtbl.t;  (* member name -> block name *)
  formal_order : string list;
  unit_name : string;
}

let create ~unit_name ~formal_order =
  { table = Hashtbl.create 16; common_of = Hashtbl.create 4; formal_order; unit_name }

let add t name entry =
  if Hashtbl.mem t.table name then
    Diag.error "duplicate declaration of %s in %s" name t.unit_name;
  Hashtbl.replace t.table name entry

let find t name = Hashtbl.find_opt t.table name

let find_exn t name =
  match find t name with
  | Some e -> e
  | None -> Diag.error "undeclared identifier %s in %s" name t.unit_name

let is_array t name = match find t name with Some (Array _) -> true | _ -> false

let is_decomposition t name =
  match find t name with Some (Decomposition _) -> true | _ -> false

let array_info t name =
  match find t name with
  | Some (Array info) -> Some info
  | _ -> None

let param_value t name =
  match find t name with Some (Param v) -> Some v | _ -> None

let is_formal t name = List.mem name t.formal_order

let formals t = t.formal_order

let iter t f = Hashtbl.iter f t.table

let fold t f init = Hashtbl.fold f t.table init

let arrays t =
  fold t (fun name entry acc ->
      match entry with Array info -> (name, info) :: acc | _ -> acc) []
  |> List.sort compare

let set_common t name block =
  if Hashtbl.mem t.common_of name then
    Diag.error "%s appears in two COMMON blocks in %s" name t.unit_name;
  Hashtbl.replace t.common_of name block

let common_block t name = Hashtbl.find_opt t.common_of name

let is_common t name = Hashtbl.mem t.common_of name

let commons t =
  Hashtbl.fold (fun name block acc -> (name, block) :: acc) t.common_of []
  |> List.sort compare

let rank t name =
  match find t name with
  | Some (Array { dims; _ }) -> List.length dims
  | Some (Decomposition dims) -> List.length dims
  | _ -> 0
