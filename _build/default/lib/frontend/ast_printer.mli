(** Pretty-printer producing parseable mini-Fortran-D source.  The
    lexer/parser/printer triple round-trips (property-tested). *)

val dtype_name : Ast.dtype -> string
val binop_name : Ast.binop -> string
val dist_name : Ast.dist_kind -> string

val pp_expr : Format.formatter -> Ast.expr -> unit
(** Minimal parenthesization by operator precedence. *)

val pp_dim : Format.formatter -> Ast.dim -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit

val pp_stmt : int -> Format.formatter -> Ast.stmt -> unit
(** [pp_stmt indent ppf s] prints with the given left margin. *)

val pp_punit : Format.formatter -> Ast.punit -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
