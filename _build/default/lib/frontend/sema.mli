(** Semantic analysis: builds per-unit symbol tables, resolves
    [ident(args)] into array references vs. intrinsic applications, folds
    PARAMETER constants, and type/shape-checks the whole program.

    All checks raise {!Fd_support.Diag.Compile_error} with a source
    location on failure. *)

val intrinsics : string list
(** Names usable as intrinsic functions ([abs], [max], [min], [mod],
    [sqrt], [float], [int], [sign]). *)

val is_intrinsic : string -> bool

type checked_unit = { unit_ : Ast.punit; symtab : Symtab.t }

type checked_program = {
  units : checked_unit list;
  main : string;  (** name of the main program unit *)
}

val find_unit : checked_program -> string -> checked_unit option
val find_unit_exn : checked_program -> string -> checked_unit

val const_eval_int : Symtab.t -> Ast.expr -> int option
(** Evaluate a compile-time integer constant expression (PARAMETER names
    resolve through the symbol table). *)

val check_unit : Ast.punit list -> Ast.punit -> checked_unit
(** Check one unit in the context of the whole program (for CALL
    signature checking). *)

val check : Ast.program -> checked_program

val check_source : ?file:string -> string -> checked_program
(** Parse and check in one step. *)
