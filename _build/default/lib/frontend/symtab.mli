(** Per-procedure symbol tables, built by {!Sema}. *)

type array_info = {
  elt : Ast.dtype;
  dims : (int * int) list;  (** declared bounds, resolved to constants *)
}

type entry =
  | Scalar of Ast.dtype
  | Array of array_info
  | Param of int  (** named integer compile-time constant *)
  | Decomposition of (int * int) list

type t

val create : unit_name:string -> formal_order:string list -> t

val add : t -> string -> entry -> unit
(** @raise Fd_support.Diag.Compile_error on duplicate declarations. *)

val find : t -> string -> entry option
val find_exn : t -> string -> entry

val is_array : t -> string -> bool
val is_decomposition : t -> string -> bool
val array_info : t -> string -> array_info option
val param_value : t -> string -> int option
val is_formal : t -> string -> bool
val formals : t -> string list

val iter : t -> (string -> entry -> unit) -> unit
val fold : t -> (string -> entry -> 'a -> 'a) -> 'a -> 'a

val arrays : t -> (string * array_info) list
(** All declared arrays, sorted by name. *)

val set_common : t -> string -> string -> unit
(** Mark a declared name as a member of a COMMON block. *)

val common_block : t -> string -> string option
val is_common : t -> string -> bool

val commons : t -> (string * string) list
(** (member, block) pairs, sorted. *)

val rank : t -> string -> int
(** Rank of an array or decomposition; 0 for other entries. *)
