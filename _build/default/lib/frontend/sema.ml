(* Semantic analysis: builds per-unit symbol tables, resolves
   `ident(args)` into array references vs. intrinsic applications, folds
   PARAMETER constants, and type/shape-checks the whole program. *)

open Fd_support

let intrinsics = [ "abs"; "max"; "min"; "mod"; "sqrt"; "float"; "int"; "sign" ]

let is_intrinsic name = List.mem name intrinsics

type checked_unit = { unit_ : Ast.punit; symtab : Symtab.t }

type checked_program = {
  units : checked_unit list;
  main : string;  (* name of the main program unit *)
}

let find_unit cp name =
  List.find_opt (fun cu -> String.equal cu.unit_.Ast.uname name) cp.units

let find_unit_exn cp name =
  match find_unit cp name with
  | Some cu -> cu
  | None -> Diag.error "no program unit named %s" name

(* --- Constant folding over PARAMETER bindings ----------------------- *)

let rec const_eval_int symtab (e : Ast.expr) : int option =
  match e with
  | Ast.Int_const n -> Some n
  | Ast.Var v -> Symtab.param_value symtab v
  | Ast.Un (Ast.Neg, a) -> Option.map (fun n -> -n) (const_eval_int symtab a)
  | Ast.Bin (op, a, b) -> (
    match (const_eval_int symtab a, const_eval_int symtab b) with
    | Some x, Some y -> (
      match op with
      | Ast.Add -> Some (x + y)
      | Ast.Sub -> Some (x - y)
      | Ast.Mul -> Some (x * y)
      | Ast.Div -> if y = 0 then None else Some (x / y)
      | Ast.Pow ->
        if y < 0 then None
        else
          let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
          Some (pow 1 y)
      | _ -> None)
    | _ -> None)
  | Ast.Funcall ("max", args) | Ast.Ref ("max", args) ->
    let vals = List.map (const_eval_int symtab) args in
    if List.for_all Option.is_some vals then
      Some (List.fold_left max min_int (List.map Option.get vals))
    else None
  | Ast.Funcall ("min", args) | Ast.Ref ("min", args) ->
    let vals = List.map (const_eval_int symtab) args in
    if List.for_all Option.is_some vals then
      Some (List.fold_left min max_int (List.map Option.get vals))
    else None
  | _ -> None

let const_eval_int_exn symtab loc e =
  match const_eval_int symtab e with
  | Some n -> n
  | None ->
    Diag.error ~loc "expression must be a compile-time integer constant: %s"
      (Ast_printer.expr_to_string e)

(* --- Symbol table construction -------------------------------------- *)

let build_symtab (u : Ast.punit) : Symtab.t =
  let symtab = Symtab.create ~unit_name:u.uname ~formal_order:u.formals in
  List.iter
    (fun decl ->
      match decl with
      | Ast.Dcl_param bindings ->
        List.iter
          (fun (name, value) ->
            let v = const_eval_int_exn symtab u.uloc value in
            Symtab.add symtab name (Symtab.Param v))
          bindings
      | Ast.Dcl_type (ty, declarators) ->
        List.iter
          (fun (name, dims) ->
            match dims with
            | [] -> Symtab.add symtab name (Symtab.Scalar ty)
            | _ ->
              let dims =
                List.map
                  (fun { Ast.dlo; dhi } ->
                    ( const_eval_int_exn symtab u.uloc dlo,
                      const_eval_int_exn symtab u.uloc dhi ))
                  dims
              in
              Symtab.add symtab name (Symtab.Array { elt = ty; dims }))
          declarators
      | Ast.Dcl_decomposition declarators ->
        List.iter
          (fun (name, dims) ->
            let dims =
              List.map
                (fun { Ast.dlo; dhi } ->
                  ( const_eval_int_exn symtab u.uloc dlo,
                    const_eval_int_exn symtab u.uloc dhi ))
                dims
            in
            Symtab.add symtab name (Symtab.Decomposition dims))
          declarators
      | Ast.Dcl_common _ -> ())
    u.decls;
  (* second pass: COMMON membership (members may be typed before or after
     the COMMON statement in the source, but both are declarations) *)
  List.iter
    (fun decl ->
      match decl with
      | Ast.Dcl_common (block, names) ->
        List.iter
          (fun name ->
            (match Symtab.find symtab name with
            | Some (Symtab.Scalar _ | Symtab.Array _) -> ()
            | Some _ ->
              Diag.error ~loc:u.uloc "COMMON member %s of /%s/ must be a variable"
                name block
            | None ->
              Diag.error ~loc:u.uloc "COMMON member %s of /%s/ is not declared" name
                block);
            if List.mem name u.formals then
              Diag.error ~loc:u.uloc "formal %s cannot be in COMMON /%s/" name block;
            Symtab.set_common symtab name block)
          names
      | _ -> ())
    u.decls;
  symtab

(* --- Expression resolution and typing ------------------------------- *)

type ty = Tint | Treal | Tlogical

let dtype_ty = function Ast.Real -> Treal | Ast.Integer -> Tint | Ast.Logical -> Tlogical

let ty_name = function Tint -> "integer" | Treal -> "real" | Tlogical -> "logical"

(* Loop index variables are implicitly integer if not declared. *)
type env = { symtab : Symtab.t; mutable loop_vars : string list; loc : Loc.t }

let rec resolve_expr env (e : Ast.expr) : Ast.expr * ty =
  match e with
  | Ast.Int_const _ -> (e, Tint)
  | Ast.Real_const _ -> (e, Treal)
  | Ast.Logical_const _ -> (e, Tlogical)
  | Ast.Var v -> (
    if List.mem v env.loop_vars then (e, Tint)
    else
      match Symtab.find env.symtab v with
      | Some (Symtab.Scalar ty) -> (e, dtype_ty ty)
      | Some (Symtab.Param _) -> (e, Tint)
      | Some (Symtab.Array _) ->
        Diag.error ~loc:env.loc "whole-array reference %s not allowed here" v
      | Some (Symtab.Decomposition _) ->
        Diag.error ~loc:env.loc "decomposition %s used as a value" v
      | None ->
        (* implicit typing: integer i-n, real otherwise (Fortran default) *)
        if String.length v > 0 && v.[0] >= 'i' && v.[0] <= 'n' then (e, Tint)
        else (e, Treal))
  | Ast.Ref (name, args) | Ast.Funcall (name, args) -> (
    match Symtab.find env.symtab name with
    | Some (Symtab.Array { elt; dims }) ->
      if List.length args <> List.length dims then
        Diag.error ~loc:env.loc "array %s has rank %d, referenced with %d subscripts"
          name (List.length dims) (List.length args);
      let args =
        List.map
          (fun a ->
            let a', ty = resolve_expr env a in
            if ty <> Tint then
              Diag.error ~loc:env.loc "subscript of %s must be integer" name;
            a')
          args
      in
      (Ast.Ref (name, args), dtype_ty elt)
    | Some _ -> Diag.error ~loc:env.loc "%s is not an array or intrinsic" name
    | None ->
      if is_intrinsic name then resolve_intrinsic env name args
      else Diag.error ~loc:env.loc "unknown array or intrinsic %s" name)
  | Ast.Bin (op, a, b) -> (
    let a', ta = resolve_expr env a in
    let b', tb = resolve_expr env b in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow ->
      if ta = Tlogical || tb = Tlogical then
        Diag.error ~loc:env.loc "arithmetic on logical operands";
      (Ast.Bin (op, a', b'), if ta = Treal || tb = Treal then Treal else Tint)
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      if ta = Tlogical || tb = Tlogical then
        Diag.error ~loc:env.loc "comparison of logical operands";
      (Ast.Bin (op, a', b'), Tlogical)
    | Ast.And | Ast.Or ->
      if ta <> Tlogical || tb <> Tlogical then
        Diag.error ~loc:env.loc "logical operator on %s/%s operands" (ty_name ta)
          (ty_name tb);
      (Ast.Bin (op, a', b'), Tlogical))
  | Ast.Un (Ast.Neg, a) ->
    let a', ta = resolve_expr env a in
    if ta = Tlogical then Diag.error ~loc:env.loc "negation of logical operand";
    (Ast.Un (Ast.Neg, a'), ta)
  | Ast.Un (Ast.Not, a) ->
    let a', ta = resolve_expr env a in
    if ta <> Tlogical then Diag.error ~loc:env.loc ".not. on %s operand" (ty_name ta);
    (Ast.Un (Ast.Not, a'), Tlogical)

and resolve_intrinsic env name args =
  let args_typed = List.map (resolve_expr env) args in
  let args' = List.map fst args_typed in
  let tys = List.map snd args_typed in
  let arity n =
    if List.length args <> n then
      Diag.error ~loc:env.loc "intrinsic %s expects %d argument(s)" name n
  in
  let result_ty =
    match name with
    | "abs" ->
      arity 1;
      List.hd tys
    | "sqrt" ->
      arity 1;
      Treal
    | "mod" ->
      arity 2;
      if List.for_all (fun t -> t = Tint) tys then Tint else Treal
    | "max" | "min" ->
      if List.length args < 2 then
        Diag.error ~loc:env.loc "intrinsic %s expects >= 2 arguments" name;
      if List.exists (fun t -> t = Treal) tys then Treal else Tint
    | "float" ->
      arity 1;
      Treal
    | "int" ->
      arity 1;
      Tint
    | "sign" ->
      arity 2;
      List.hd tys
    | _ -> Diag.error ~loc:env.loc "unknown intrinsic %s" name
  in
  if List.exists (fun t -> t = Tlogical) tys then
    Diag.error ~loc:env.loc "intrinsic %s applied to logical argument" name;
  (Ast.Funcall (name, args'), result_ty)

(* --- Statement resolution -------------------------------------------- *)

let rec resolve_stmt all_units env (s : Ast.stmt) : Ast.stmt =
  let loc = s.loc in
  let env = { env with loc } in
  let kind =
    match s.kind with
    | Ast.Assign (lhs, rhs) -> (
      let rhs', rty = resolve_expr env rhs in
      match lhs with
      | Ast.Var v -> (
        if List.mem v env.loop_vars then
          Diag.error ~loc "cannot assign to active loop index %s" v;
        match Symtab.find env.symtab v with
        | Some (Symtab.Scalar ty) ->
          let lty = dtype_ty ty in
          if (lty = Tlogical) <> (rty = Tlogical) then
            Diag.error ~loc "type mismatch assigning %s to %s" (ty_name rty) v;
          Ast.Assign (lhs, rhs')
        | Some (Symtab.Param _) -> Diag.error ~loc "cannot assign to parameter %s" v
        | Some (Symtab.Array _) -> Diag.error ~loc "cannot assign to whole array %s" v
        | Some (Symtab.Decomposition _) ->
          Diag.error ~loc "cannot assign to decomposition %s" v
        | None ->
          (* implicitly typed scalar *)
          Ast.Assign (lhs, rhs'))
      | Ast.Ref _ | Ast.Funcall _ -> (
        let lhs', lty = resolve_expr env lhs in
        match lhs' with
        | Ast.Ref _ ->
          if (lty = Tlogical) <> (rty = Tlogical) then
            Diag.error ~loc "type mismatch in array assignment";
          Ast.Assign (lhs', rhs')
        | _ -> Diag.error ~loc "left-hand side must be a variable or array element")
      | _ -> Diag.error ~loc "left-hand side must be a variable or array element")
    | Ast.Do d ->
      let lo', tlo = resolve_expr env d.lo in
      let hi', thi = resolve_expr env d.hi in
      let step' =
        Option.map
          (fun e ->
            let e', t = resolve_expr env e in
            if t <> Tint then Diag.error ~loc "DO step must be integer";
            e')
          d.step
      in
      if tlo <> Tint || thi <> Tint then Diag.error ~loc "DO bounds must be integer";
      (match Symtab.find env.symtab d.var with
      | None | Some (Symtab.Scalar Ast.Integer) -> ()
      | Some _ -> Diag.error ~loc "DO index %s must be an integer scalar" d.var);
      if List.mem d.var env.loop_vars then
        Diag.error ~loc "loop index %s reused in nested loop" d.var;
      let saved = env.loop_vars in
      env.loop_vars <- d.var :: saved;
      let body = List.map (resolve_stmt all_units env) d.body in
      env.loop_vars <- saved;
      Ast.Do { d with lo = lo'; hi = hi'; step = step'; body }
    | Ast.If i ->
      let cond', tc = resolve_expr env i.cond in
      if tc <> Tlogical then Diag.error ~loc "IF condition must be logical";
      Ast.If
        { cond = cond';
          then_ = List.map (resolve_stmt all_units env) i.then_;
          else_ = List.map (resolve_stmt all_units env) i.else_ }
    | Ast.Call (name, args) -> (
      match List.find_opt (fun u -> String.equal u.Ast.uname name) all_units with
      | None -> Diag.error ~loc "call to unknown subroutine %s" name
      | Some callee ->
        if callee.Ast.ukind <> Ast.Subroutine then
          Diag.error ~loc "%s is not a subroutine" name;
        if List.length args <> List.length callee.Ast.formals then
          Diag.error ~loc "subroutine %s expects %d arguments, got %d" name
            (List.length callee.Ast.formals) (List.length args);
        let args' =
          List.map
            (fun a ->
              match a with
              | Ast.Var v when Symtab.is_array env.symtab v -> a (* whole array *)
              | _ -> fst (resolve_expr env a))
            args
        in
        Ast.Call (name, args'))
    | Ast.Align { array; target; subs } ->
      if not (Symtab.is_array env.symtab array) then
        Diag.error ~loc "ALIGN of non-array %s" array;
      if
        not
          (Symtab.is_decomposition env.symtab target
          || Symtab.is_array env.symtab target)
      then Diag.error ~loc "ALIGN target %s is not a decomposition or array" target;
      if List.length subs <> Symtab.rank env.symtab target then
        Diag.error ~loc "ALIGN target %s has rank %d" target
          (Symtab.rank env.symtab target);
      s.kind
    | Ast.Distribute { decomp; dists } ->
      if not (Symtab.is_decomposition env.symtab decomp || Symtab.is_array env.symtab decomp)
      then Diag.error ~loc "DISTRIBUTE of unknown decomposition or array %s" decomp;
      if List.length dists <> Symtab.rank env.symtab decomp then
        Diag.error ~loc "DISTRIBUTE %s has rank %d" decomp
          (Symtab.rank env.symtab decomp);
      s.kind
    | Ast.Return -> s.kind
    | Ast.Print args -> Ast.Print (List.map (fun a -> fst (resolve_expr env a)) args)
  in
  { s with kind }

let check_unit all_units (u : Ast.punit) : checked_unit =
  let symtab = build_symtab u in
  (* every formal must be declared *)
  List.iter
    (fun f ->
      match Symtab.find symtab f with
      | Some (Symtab.Scalar _ | Symtab.Array _) -> ()
      | Some _ -> Diag.error ~loc:u.uloc "formal %s of %s has a bad declaration" f u.uname
      | None -> Diag.error ~loc:u.uloc "formal %s of %s is not declared" f u.uname)
    u.formals;
  let env = { symtab; loop_vars = []; loc = u.uloc } in
  let body = List.map (resolve_stmt all_units env) u.body in
  { unit_ = { u with body }; symtab }

let check (p : Ast.program) : checked_program =
  let names = List.map (fun u -> u.Ast.uname) p in
  let dup = Listx.dedup ~equal:String.equal names in
  if List.length dup <> List.length names then
    Diag.error "duplicate program unit names";
  let mains = List.filter (fun u -> u.Ast.ukind = Ast.Main) p in
  let main =
    match mains with
    | [ m ] -> m.Ast.uname
    | [] -> Diag.error "program has no main unit"
    | _ -> Diag.error "program has multiple main units"
  in
  let units = List.map (check_unit p) p in
  (* COMMON blocks must be declared identically in every unit: identical
     member names, types and shapes.  This strict layout rule is what
     makes storage trivially shareable by name (see docs/LANGUAGE.md). *)
  let block_signature (cu : checked_unit) block =
    List.filter_map
      (fun (name, b) ->
        if String.equal b block then
          Some
            (match Symtab.find_exn cu.symtab name with
            | Symtab.Scalar ty -> Fmt.str "%s:%s" name (Ast_printer.dtype_name ty)
            | Symtab.Array { elt; dims } ->
              Fmt.str "%s:%s(%s)" name (Ast_printer.dtype_name elt)
                (String.concat ","
                   (List.map (fun (a, b) -> Fmt.str "%d..%d" a b) dims))
            | _ -> assert false)
        else None)
      (Symtab.commons cu.symtab)
    |> String.concat ";"
  in
  let all_blocks =
    List.concat_map (fun (cu : checked_unit) -> List.map snd (Symtab.commons cu.symtab)) units
    |> List.sort_uniq compare
  in
  List.iter
    (fun block ->
      let sigs =
        List.filter_map
          (fun (cu : checked_unit) ->
            match block_signature cu block with
            | "" -> None
            | s -> Some (cu.unit_.Ast.uname, s))
          units
      in
      match sigs with
      | [] -> ()
      | (u0, s0) :: rest ->
        List.iter
          (fun (u1, s1) ->
            if not (String.equal s0 s1) then
              Diag.error
                "COMMON /%s/ is declared differently in %s and %s (members must match exactly)"
                block u0 u1)
          rest;
        (* every unit that uses the block must declare it; and since the
           compiler propagates decompositions through declared commons
           only, require all units to declare it *)
        if List.length sigs <> List.length units then
          Diag.error
            "COMMON /%s/ must be declared in every program unit (declared in %d of %d)"
            block (List.length sigs) (List.length units))
    all_blocks;
  { units; main }

let check_source ?file src = check (Parser.parse ?file src)
