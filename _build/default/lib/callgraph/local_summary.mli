(** Edit-time local summaries (ParaScope phase 1, paper Section 4):
    everything interprocedurally relevant about one procedure, collected
    once after an edit, plus content digests for recompilation tests. *)

open Fd_frontend

module S = Side_effects.S

type t = {
  proc : string;
  formals : string list;
  array_decls : (string * (int * int) list) list;
  call_sigs : (string * int) list;  (** callee name and arity, in order *)
  local_mod : S.t;
  local_ref : S.t;
  decomp_stmts : int;   (** number of ALIGN/DISTRIBUTE statements *)
  loop_depth : int;     (** maximum loop nesting depth *)
  source_digest : string;
}

val of_unit : Sema.checked_unit -> t

val interface_digest : t -> string
(** Digest of the caller-visible interface (formals, shapes, call
    signatures, side effects, decomposition behaviour). *)

val equal_source : t -> t -> bool

val pp : Format.formatter -> t -> unit
