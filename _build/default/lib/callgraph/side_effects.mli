(** Interprocedural scalar/array side effects: Gmod(P) and Gref(P), the
    variables modified / referenced by P or its descendants, expressed in
    P's visible names.  Appear(P) = Gmod u Gref drives procedure cloning
    (paper Section 5.2, Figure 8). *)

open Fd_frontend

module S : Set.S with type elt = string

type summary = { gmod : S.t; gref : S.t }

type t = (string, summary) Hashtbl.t

val local_effects : Sema.checked_unit -> summary
(** Intra-procedural effects only (call sites contribute nothing). *)

val compute : Acg.t -> t
(** Bottom-up propagation over the call graph; callee effects translate
    through formal/actual bindings (callee locals drop). *)

val gmod : t -> string -> S.t
val gref : t -> string -> S.t
val appear : t -> string -> S.t
