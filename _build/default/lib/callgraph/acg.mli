(** The augmented call graph (ACG) of Hall-Kennedy: a call graph whose
    nodes also carry interprocedural loop context — every call site
    records the stack of enclosing loops (bounds, step, index variable)
    so analyses can reason about loops that enclose a procedure from
    outside (paper Section 5.1, Figure 5). *)

open Fd_frontend
open Fd_analysis

type call_site = {
  cs_sid : int;  (** statement id of the CALL in the caller *)
  caller : string;
  callee : string;
  actuals : Ast.expr list;
  cs_loops : Sections.loop_ctx list;  (** enclosing loops, outermost first *)
  cs_loc : Fd_support.Loc.t;
}

type proc = {
  pname : string;
  cu : Sema.checked_unit;
  calls : call_site list;  (** in textual order *)
}

type t = {
  procs : proc list;  (** in source order *)
  main : string;
  by_name : (string, proc) Hashtbl.t;
}

val build : Sema.checked_program -> t

val proc : t -> string -> proc
(** @raise Fd_support.Diag.Compile_error on unknown names. *)

val procs : t -> proc list
val callees_of : t -> string -> string list
val call_sites_from : t -> string -> call_site list
val call_sites_to : t -> string -> call_site list
val callers_of : t -> string -> string list

exception Recursive of string

val topo_order : t -> string list
(** Callers before callees (main first).
    @raise Recursive on recursive programs. *)

val reverse_topo_order : t -> string list
(** Callees before callers — the compilation order. *)

val is_recursive : t -> bool

val bindings : t -> call_site -> (string * Ast.expr) list
(** Formal/actual pairs of one call site. *)

val actual_array_of_formal : t -> call_site -> string -> string option
(** Caller-side array bound (whole) to a formal; [None] for scalars and
    expressions. *)

val formal_of_actual_array : t -> call_site -> string -> string option

val pp : Format.formatter -> t -> unit
