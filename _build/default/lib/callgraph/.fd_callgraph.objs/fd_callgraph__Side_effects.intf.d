lib/callgraph/side_effects.mli: Acg Fd_frontend Hashtbl Sema Set
