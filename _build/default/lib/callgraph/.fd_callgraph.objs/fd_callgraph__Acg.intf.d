lib/callgraph/acg.mli: Ast Fd_analysis Fd_frontend Fd_support Format Hashtbl Sections Sema
