lib/callgraph/acg.ml: Affine Ast Diag Fd_analysis Fd_frontend Fd_support Fmt Hashtbl List Listx Loc Option Sections Sema String Symtab
