lib/callgraph/local_summary.mli: Fd_frontend Format Sema Side_effects
