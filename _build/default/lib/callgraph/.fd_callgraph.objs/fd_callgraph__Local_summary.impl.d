lib/callgraph/local_summary.ml: Ast Ast_printer Digest Fd_frontend Fmt List Printf Sema Side_effects String Symtab
