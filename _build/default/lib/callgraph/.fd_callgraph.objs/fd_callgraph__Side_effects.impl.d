lib/callgraph/side_effects.ml: Acg Ast Fd_frontend Hashtbl List Option Sema Set String Symtab
