(* The augmented call graph (ACG) of Hall-Kennedy: a call graph whose
   nodes also carry interprocedural loop context — for every call site we
   record the stack of enclosing loops (bounds, step, index variable) so
   analyses can reason about loops that enclose a procedure from outside
   (paper Section 5.1, Figure 5). *)

open Fd_support
open Fd_frontend
open Fd_analysis

type call_site = {
  cs_sid : int;  (* statement id of the CALL in the caller *)
  caller : string;
  callee : string;
  actuals : Ast.expr list;
  cs_loops : Sections.loop_ctx list;  (* enclosing loops, outermost first *)
  cs_loc : Loc.t;
}

type proc = {
  pname : string;
  cu : Sema.checked_unit;
  calls : call_site list;  (* in textual order *)
}

type t = {
  procs : proc list;  (* in source order *)
  main : string;
  by_name : (string, proc) Hashtbl.t;
}

let collect_calls (cu : Sema.checked_unit) : call_site list =
  let u = cu.Sema.unit_ in
  let symtab = cu.Sema.symtab in
  let out = ref [] in
  let rec walk loops (s : Ast.stmt) =
    match s.Ast.kind with
    | Ast.Call (callee, actuals) ->
      out :=
        { cs_sid = s.Ast.sid;
          caller = u.Ast.uname;
          callee;
          actuals;
          cs_loops = List.rev loops;
          cs_loc = s.Ast.loc }
        :: !out
    | Ast.Do d ->
      let step =
        match d.step with
        | Some e -> (
          match Option.bind (Affine.of_expr symtab e) Affine.const_value with
          | Some k -> k
          | None -> 1)
        | None -> 1
      in
      let ctx =
        { Sections.lvar = d.var;
          llo = Affine.of_expr symtab d.lo;
          lhi = Affine.of_expr symtab d.hi;
          lstep = step;
          lsid = s.Ast.sid }
      in
      List.iter (walk (ctx :: loops)) d.body
    | Ast.If i ->
      List.iter (walk loops) i.then_;
      List.iter (walk loops) i.else_
    | Ast.Assign _ | Ast.Align _ | Ast.Distribute _ | Ast.Return | Ast.Print _ -> ()
  in
  List.iter (walk []) u.Ast.body;
  List.rev !out

let build (cp : Sema.checked_program) : t =
  let procs =
    List.map
      (fun cu -> { pname = cu.Sema.unit_.Ast.uname; cu; calls = collect_calls cu })
      cp.Sema.units
  in
  let by_name = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace by_name p.pname p) procs;
  { procs; main = cp.Sema.main; by_name }

let proc t name =
  match Hashtbl.find_opt t.by_name name with
  | Some p -> p
  | None -> Diag.error "no procedure named %s in call graph" name

let procs t = t.procs

let callees_of t name =
  (proc t name).calls |> List.map (fun cs -> cs.callee) |> Listx.dedup ~equal:String.equal

let call_sites_from t name = (proc t name).calls

let call_sites_to t name =
  List.concat_map (fun p -> List.filter (fun cs -> String.equal cs.callee name) p.calls) t.procs

let callers_of t name =
  call_sites_to t name |> List.map (fun cs -> cs.caller) |> Listx.dedup ~equal:String.equal

(* Topological order (callers before callees).  Raises on recursion: the
   paper's single-pass scheme applies to programs without recursion. *)
exception Recursive of string

let topo_order t : string list =
  let visited = Hashtbl.create 16 in (* name -> [`In_progress | `Done] *)
  let order = ref [] in
  let rec visit name =
    match Hashtbl.find_opt visited name with
    | Some `Done -> ()
    | Some `In_progress -> raise (Recursive name)
    | None ->
      Hashtbl.replace visited name `In_progress;
      List.iter visit (callees_of t name);
      Hashtbl.replace visited name `Done;
      order := name :: !order
  in
  (* Visit from main first, then any unreachable procedures.  DFS
     postorder prepends each procedure after its callees, so [!order]
     already lists callers before callees. *)
  visit t.main;
  List.iter (fun p -> visit p.pname) t.procs;
  !order

let reverse_topo_order t = List.rev (topo_order t)

let is_recursive t =
  match topo_order t with _ -> false | exception Recursive _ -> true

(* Formal/actual binding for a call site. *)
let bindings t (cs : call_site) : (string * Ast.expr) list =
  let callee = proc t cs.callee in
  let formals = callee.cu.Sema.unit_.Ast.formals in
  if List.length formals <> List.length cs.actuals then
    Diag.error ~loc:cs.cs_loc "arity mismatch calling %s" cs.callee;
  List.combine formals cs.actuals

(* For a whole-array actual, the caller-side array name bound to a formal
   array; [None] for scalar/expression actuals. *)
let actual_array_of_formal t (cs : call_site) (formal : string) : string option =
  match List.assoc_opt formal (bindings t cs) with
  | Some (Ast.Var v) ->
    let caller = proc t cs.caller in
    if Symtab.is_array caller.cu.Sema.symtab v then Some v else None
  | _ -> None

(* Reverse map: formal name bound to a given caller-side array. *)
let formal_of_actual_array t (cs : call_site) (array : string) : string option =
  List.find_map
    (fun (f, a) ->
      match a with Ast.Var v when String.equal v array -> Some f | _ -> None)
    (bindings t cs)

let pp ppf t =
  List.iter
    (fun p ->
      Fmt.pf ppf "%s:@." p.pname;
      List.iter
        (fun cs ->
          let loop_str =
            String.concat ">" (List.map (fun l -> l.Sections.lvar) cs.cs_loops)
          in
          Fmt.pf ppf "  s%d: call %s%s@." cs.cs_sid cs.callee
            (if loop_str = "" then "" else " [loops " ^ loop_str ^ "]"))
        p.calls)
    t.procs
