(* Edit-time local summaries (ParaScope phase 1, paper Section 4).

   After an "editing session" each procedure's interprocedurally relevant
   facts are summarized so whole-program compilation never has to re-read
   unchanged sources: call sites, formals, local mod/ref, the presence of
   dynamic decomposition statements, loop skeleton, and content digests
   used by recompilation analysis. *)

open Fd_frontend

module S = Side_effects.S

type t = {
  proc : string;
  formals : string list;
  array_decls : (string * (int * int) list) list;
  call_sigs : (string * int) list;  (* callee name, argument count, in order *)
  local_mod : S.t;
  local_ref : S.t;
  decomp_stmts : int;  (* number of ALIGN/DISTRIBUTE statements *)
  loop_depth : int;    (* maximum loop nesting depth *)
  source_digest : string;
}

let rec max_depth stmts =
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      match s.Ast.kind with
      | Ast.Do d -> max acc (1 + max_depth d.body)
      | Ast.If i -> max acc (max (max_depth i.then_) (max_depth i.else_))
      | _ -> acc)
    0 stmts

let of_unit (cu : Sema.checked_unit) : t =
  let u = cu.Sema.unit_ in
  let effects = Side_effects.local_effects cu in
  let calls = ref [] in
  let decomps = ref 0 in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Call (name, args) -> calls := (name, List.length args) :: !calls
      | Ast.Align _ | Ast.Distribute _ -> incr decomps
      | _ -> ())
    u.Ast.body;
  {
    proc = u.Ast.uname;
    formals = u.Ast.formals;
    array_decls =
      List.map (fun (n, info) -> (n, info.Symtab.dims)) (Symtab.arrays cu.Sema.symtab);
    call_sigs = List.rev !calls;
    local_mod = effects.Side_effects.gmod;
    local_ref = effects.Side_effects.gref;
    decomp_stmts = !decomps;
    loop_depth = max_depth u.Ast.body;
    source_digest = Digest.to_hex (Digest.string (Fmt.str "%a" Ast_printer.pp_punit u));
  }

(* The caller-visible interface: everything a *caller's* compilation can
   depend on through this procedure.  Used by recompilation tests. *)
let interface_digest (t : t) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [ t.proc;
            String.concat "," t.formals;
            String.concat ","
              (List.map
                 (fun (n, dims) ->
                   n ^ ":" ^ String.concat "x"
                     (List.map (fun (a, b) -> Printf.sprintf "%d..%d" a b) dims))
                 t.array_decls);
            String.concat "," (List.map (fun (c, n) -> Printf.sprintf "%s/%d" c n) t.call_sigs);
            String.concat "," (S.elements t.local_mod);
            String.concat "," (S.elements t.local_ref);
            string_of_int t.decomp_stmts ]))

let equal_source a b = String.equal a.source_digest b.source_digest

let pp ppf t =
  Fmt.pf ppf "@[<v>summary %s(%s)@ arrays: %s@ calls: %s@ mod: %s@ ref: %s@ decomp stmts: %d, loop depth: %d@]"
    t.proc
    (String.concat "," t.formals)
    (String.concat "," (List.map fst t.array_decls))
    (String.concat "," (List.map fst t.call_sigs))
    (String.concat "," (S.elements t.local_mod))
    (String.concat "," (S.elements t.local_ref))
    t.decomp_stmts t.loop_depth
