(* Interprocedural scalar/array side effects: Gmod(P) and Gref(P), the
   variables modified / referenced by P or its descendants, expressed in
   terms of P's visible names (formals and locals; the mini-language has
   no COMMON).  Appear(P) = Gmod(P) u Gref(P) drives cloning (paper
   Section 5.2, Figure 8). *)

open Fd_frontend

module S = Set.Make (String)

type summary = { gmod : S.t; gref : S.t }

type t = (string, summary) Hashtbl.t

let local_effects (cu : Sema.checked_unit) : summary =
  let gmod = ref S.empty and gref = ref S.empty in
  let read_expr e =
    Ast.iter_exprs_expr
      (fun e' ->
        match e' with
        | Ast.Var v -> gref := S.add v !gref
        | Ast.Ref (a, _) -> gref := S.add a !gref
        | _ -> ())
      e
  in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Assign (lhs, rhs) ->
        (match lhs with
        | Ast.Var v -> gmod := S.add v !gmod
        | Ast.Ref (a, subs) ->
          gmod := S.add a !gmod;
          List.iter read_expr subs
        | _ -> ());
        read_expr rhs
      | Ast.Do d ->
        gmod := S.add d.var !gmod;
        read_expr d.lo;
        read_expr d.hi;
        Option.iter read_expr d.step
      | Ast.If i -> read_expr i.cond
      | Ast.Call (_, args) ->
        (* Call effects are added during interprocedural propagation;
           subscripts of subscripted actuals are local reads. *)
        List.iter
          (fun a ->
            match a with
            | Ast.Var _ -> ()
            | Ast.Ref (_, subs) -> List.iter read_expr subs
            | e -> read_expr e)
          args
      | Ast.Print args -> List.iter read_expr args
      | Ast.Align _ | Ast.Distribute _ | Ast.Return -> ())
    cu.Sema.unit_.Ast.body;
  { gmod = !gmod; gref = !gref }

(* Translate a callee-side name set into the caller's names through the
   call-site bindings: formals map to lvalue actuals, COMMON members pass
   through by name, callee locals drop. *)
let translate_set acg (cs : Acg.call_site) (callee : Sema.checked_unit) (set : S.t) : S.t =
  let callee_formals = callee.Sema.unit_.Ast.formals in
  let through_formals =
    List.fold_left
      (fun acc (formal, actual) ->
        if S.mem formal set then
          match actual with
          | Ast.Var v -> S.add v acc
          | Ast.Ref (a, _) -> S.add a acc
          | _ -> acc
        else acc)
      S.empty
      (List.combine callee_formals
         (List.map snd (Acg.bindings acg cs)))
  in
  S.fold
    (fun name acc ->
      if Symtab.is_common callee.Sema.symtab name then S.add name acc else acc)
    set through_formals

let compute (acg : Acg.t) : t =
  let table : t = Hashtbl.create 16 in
  (* reverse topological order: callees before callers *)
  List.iter
    (fun name ->
      let p = Acg.proc acg name in
      let base = local_effects p.Acg.cu in
      let summary =
        List.fold_left
          (fun acc cs ->
            match Hashtbl.find_opt table cs.Acg.callee with
            | None -> acc  (* unreachable or recursive edge; conservative skip *)
            | Some callee_sum ->
              let callee = (Acg.proc acg cs.Acg.callee).Acg.cu in
              { gmod = S.union acc.gmod (translate_set acg cs callee callee_sum.gmod);
                gref = S.union acc.gref (translate_set acg cs callee callee_sum.gref) })
          base p.Acg.calls
      in
      Hashtbl.replace table name summary)
    (Acg.reverse_topo_order acg);
  table

let gmod (t : t) name =
  match Hashtbl.find_opt t name with Some s -> s.gmod | None -> S.empty

let gref (t : t) name =
  match Hashtbl.find_opt t name with Some s -> s.gref | None -> S.empty

let appear (t : t) name = S.union (gmod t name) (gref t name)
