(* Relaxation workloads: the data-parallel kernels the paper's
   introduction motivates, structured through procedures so that the
   interprocedural machinery is exercised (reaching decompositions into
   callees, exported shift communication, neighbor exchanges). *)

(* 1-D Jacobi: two block arrays, sweep and copy-back procedures called
   from a time loop. *)
let jacobi1d ?(n = 128) ?(t = 5) () =
  Fmt.str
    {|
program jacobi
  parameter (n = %d, t = %d)
  real u(%d), v(%d)
  integer i, it
  distribute u(block)
  distribute v(block)
  do i = 1, n
    u(i) = float(mod(i*3, 17))
    v(i) = 0.0
  enddo
  do it = 1, t
    call sweep(u, v)
    call copyb(v, u)
  enddo
  print *, u(1), u(n/2), u(n)
end

subroutine sweep(u, v)
  parameter (n = %d)
  real u(%d), v(%d)
  integer i
  do i = 2, n-1
    v(i) = 0.5 * (u(i-1) + u(i+1))
  enddo
  v(1) = u(1)
  v(n) = u(n)
end

subroutine copyb(v, u)
  parameter (n = %d)
  real u(%d), v(%d)
  integer i
  do i = 1, n
    u(i) = v(i)
  enddo
end
|}
    n t n n n n n n n n

(* 2-D Jacobi with row-block distribution: the distributed dimension
   needs neighbor exchange, the other dimension stays local. *)
let jacobi2d ?(n = 32) ?(t = 3) () =
  Fmt.str
    {|
program jacobi2
  parameter (n = %d, t = %d)
  real u(%d,%d), v(%d,%d)
  integer i, j, it
  decomposition d(%d,%d)
  align u(i,j) with d(i,j)
  align v(i,j) with d(i,j)
  distribute d(block,:)
  do i = 1, n
    do j = 1, n
      u(i,j) = float(mod(i*5 + j*3, 13))
      v(i,j) = 0.0
    enddo
  enddo
  do it = 1, t
    call sweep2(u, v)
    call copy2(v, u)
  enddo
  print *, u(2,2), u(n/2,n/2)
end

subroutine sweep2(u, v)
  parameter (n = %d)
  real u(%d,%d), v(%d,%d)
  integer i, j
  do i = 2, n-1
    do j = 2, n-1
      v(i,j) = 0.25 * (u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
    enddo
  enddo
end

subroutine copy2(v, u)
  parameter (n = %d)
  real u(%d,%d), v(%d,%d)
  integer i, j
  do i = 1, n
    do j = 1, n
      u(i,j) = v(i,j)
    enddo
  enddo
end
|}
    n t n n n n n n n n n n n n n n n n

(* Red-black Gauss-Seidel over a block array: strided partitioned loops. *)
let redblack ?(n = 128) ?(t = 4) () =
  Fmt.str
    {|
program redblack
  parameter (n = %d, t = %d)
  real u(%d)
  integer i, it
  distribute u(block)
  do i = 1, n
    u(i) = float(mod(i*11, 23))
  enddo
  do it = 1, t
    call relax_red(u)
    call relax_black(u)
  enddo
  print *, u(1), u(n/2), u(n)
end

subroutine relax_red(u)
  parameter (n = %d)
  real u(%d)
  integer i
  do i = 3, n-1, 2
    u(i) = 0.5 * (u(i-1) + u(i+1))
  enddo
end

subroutine relax_black(u)
  parameter (n = %d)
  real u(%d)
  integer i
  do i = 2, n-1, 2
    u(i) = 0.5 * (u(i-1) + u(i+1))
  enddo
end
|}
    n t n n n n n

(* Overlap-width family for the Section 5.6 overlap experiment: one
   procedure per shift width. *)
let shifts ?(n = 256) ~(widths : int list) () =
  let subs =
    List.mapi
      (fun idx w ->
        Fmt.str
          {|
subroutine shift%d(x, y)
  parameter (n = %d)
  real x(%d), y(%d)
  integer i
  do i = 1, n - %d
    y(i) = x(i+%d)
  enddo
end
|}
          idx n n n w w)
      widths
  in
  let calls =
    List.mapi (fun idx _ -> Fmt.str "  call shift%d(x, y)" idx) widths
  in
  Fmt.str
    {|
program shifts
  parameter (n = %d)
  real x(%d), y(%d)
  integer i
  distribute x(block)
  distribute y(block)
  do i = 1, n
    x(i) = float(i)
    y(i) = 0.0
  enddo
%s
  print *, y(1)
end
%s
|}
    n n n (String.concat "\n" calls) (String.concat "\n" subs)

(* Multi-array shift through one procedure: the reads of u, v and w are
   shifted the same way, so the interprocedural compiler can aggregate
   their boundary transfers into one message per neighbor pair (paper
   Fig. 11 "aggregate RSDs for messages to the same processor"). *)
let multi_array ?(n = 128) ?(t = 4) () =
  Fmt.str
    {|
program multi
  parameter (n = %d, t = %d)
  real u(%d), v(%d), w(%d), r(%d)
  integer i, it
  distribute u(block)
  distribute v(block)
  distribute w(block)
  distribute r(block)
  do i = 1, n
    u(i) = float(mod(i*3, 7))
    v(i) = float(mod(i*5, 11))
    w(i) = float(mod(i*7, 13))
    r(i) = 0.0
  enddo
  do it = 1, t
    call combine(u, v, w, r)
    call refresh(u, v, w, r)
  enddo
  print *, r(1), r(n/2)
end

subroutine combine(u, v, w, r)
  parameter (n = %d)
  real u(%d), v(%d), w(%d), r(%d)
  integer i
  do i = 1, n-1
    r(i) = u(i+1) + v(i+1) + w(i+1)
  enddo
end

subroutine refresh(u, v, w, r)
  parameter (n = %d)
  real u(%d), v(%d), w(%d), r(%d)
  integer i
  do i = 1, n
    u(i) = 0.9 * u(i) + 0.1 * r(i)
    v(i) = 0.9 * v(i) + 0.1 * r(i)
    w(i) = 0.9 * w(i) + 0.1 * r(i)
  enddo
end
|}
    n t n n n n n n n n n n n n n n
