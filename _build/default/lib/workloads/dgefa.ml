(* LINPACK dgefa (LU factorization with partial pivoting) in mini-Fortran
   D, with its BLAS-1 call structure intact: idamax / swaprow / getpiv /
   dscal / daxpy.  This is the paper's Section 9 case study: the BLAS
   calls inside the elimination loops are what make interprocedural
   analysis essential.  The matrix is column-cyclic distributed. *)

let source ?(n = 64) ?(dist = "cyclic") () =
  Fmt.str
    {|
program lu
  parameter (n = %d)
  real a(%d,%d)
  integer ipvt(%d)
  integer i, j, k
  distribute a(:,%s)
  do j = 1, n
    do i = 1, n
      a(i,j) = float(mod(i*7 + j*13, 10) + 1)
    enddo
  enddo
  do i = 1, n
    a(i,i) = a(i,i) + float(2*n)
  enddo
  call dgefa(a, ipvt)
  print *, a(1,1), a(n,n), ipvt(1)
end

subroutine dgefa(a, ipvt)
  parameter (n = %d)
  real a(%d,%d)
  integer ipvt(%d)
  integer k, j, l
  real t
  do k = 1, n-1
    call idamax(a, k, l)
    ipvt(k) = l
    call swaprow(a, k, l)
    call getpiv(a, k, t)
    if (t /= 0.0) then
      call dscal(a, k, t)
      do j = k+1, n
        call daxpy(a, k, j)
      enddo
    endif
  enddo
  ipvt(n) = n
end

subroutine idamax(a, k, l)
  parameter (n = %d)
  real a(%d,%d)
  integer k, l, i
  real amax
  l = k
  amax = abs(a(k,k))
  do i = k+1, n
    if (abs(a(i,k)) > amax) then
      amax = abs(a(i,k))
      l = i
    endif
  enddo
end

subroutine swaprow(a, k, l)
  parameter (n = %d)
  real a(%d,%d)
  integer k, l, j
  real t
  if (l /= k) then
    do j = 1, n
      t = a(l,j)
      a(l,j) = a(k,j)
      a(k,j) = t
    enddo
  endif
end

subroutine getpiv(a, k, t)
  parameter (n = %d)
  real a(%d,%d)
  integer k
  real t
  t = a(k,k)
end

subroutine dscal(a, k, t)
  parameter (n = %d)
  real a(%d,%d)
  integer k, i
  real t
  do i = k+1, n
    a(i,k) = -a(i,k) / t
  enddo
end

subroutine daxpy(a, k, j)
  parameter (n = %d)
  real a(%d,%d)
  integer k, j, i
  do i = k+1, n
    a(i,j) = a(i,j) + a(k,j) * a(i,k)
  enddo
end
|}
    n n n n dist n n n n n n n n n n n n n n n n n n n

(* Native OCaml reference LU with partial pivoting over the same initial
   matrix, for independent answer checking of the simulated runs. *)
let reference_lu n =
  let a = Array.make_matrix n n 0.0 in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      a.(i).(j) <- float_of_int ((((i + 1) * 7) + ((j + 1) * 13)) mod 10 + 1)
    done
  done;
  for i = 0 to n - 1 do
    a.(i).(i) <- a.(i).(i) +. float_of_int (2 * n)
  done;
  let ipvt = Array.init n (fun i -> i + 1) in
  for k = 0 to n - 2 do
    (* pivot *)
    let l = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs a.(i).(k) > Float.abs a.(!l).(k) then l := i
    done;
    ipvt.(k) <- !l + 1;
    if !l <> k then
      for j = 0 to n - 1 do
        let t = a.(!l).(j) in
        a.(!l).(j) <- a.(k).(j);
        a.(k).(j) <- t
      done;
    let t = a.(k).(k) in
    if t <> 0.0 then begin
      for i = k + 1 to n - 1 do
        a.(i).(k) <- -.a.(i).(k) /. t
      done;
      for j = k + 1 to n - 1 do
        for i = k + 1 to n - 1 do
          a.(i).(j) <- a.(i).(j) +. (a.(k).(j) *. a.(i).(k))
        done
      done
    end
  done;
  (a, ipvt)
