lib/workloads/figures.mli:
