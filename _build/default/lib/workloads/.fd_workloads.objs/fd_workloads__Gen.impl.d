lib/workloads/gen.ml: Fmt List Random String
