lib/workloads/dgefa.ml: Array Float Fmt
