lib/workloads/stencil.ml: Fmt List String
