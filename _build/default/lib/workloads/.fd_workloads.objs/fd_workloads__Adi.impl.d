lib/workloads/adi.ml: Fmt
