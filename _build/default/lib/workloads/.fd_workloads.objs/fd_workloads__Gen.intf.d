lib/workloads/gen.mli: Random
