lib/workloads/adi.mli:
