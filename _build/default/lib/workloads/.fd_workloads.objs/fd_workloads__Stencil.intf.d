lib/workloads/stencil.mli:
