lib/workloads/figures.ml: Fmt
