lib/workloads/dgefa.mli:
