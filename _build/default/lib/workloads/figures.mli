(** The paper's worked examples as parameterized mini-Fortran-D sources.
    Feed any of these to {!Fd_core.Driver.run_source}. *)

val fig1 : ?n:int -> ?shift:int -> unit -> string
(** Figure 1: the block-distributed shift kernel computed inside a called
    procedure (compiles to the paper's Figure 2 under [Interproc], to
    Figure 3 under [Runtime_resolution]). *)

val fig4 : ?n:int -> ?shift:int -> unit -> string
(** Figure 4: one procedure called with row- and column-distributed
    actuals — exercises cloning plus cross-procedure message
    vectorization (Figures 10 vs 12). *)

val fig15 : ?n:int -> ?t:int -> unit -> string
(** Figure 15: dynamic data decomposition with the full Figure-16
    optimization ladder (4T+2 / 2T+2 / 4 / 2+2 mark-only remaps). *)

val fig12 : ?n:int -> ?shift:int -> unit -> string
(** Alias of {!fig4}: compile it with {!Fd_core.Options.Immediate} to get
    the paper's Figure 12 behaviour. *)
