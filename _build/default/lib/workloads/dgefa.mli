(** LINPACK dgefa (LU factorization with partial pivoting) in
    mini-Fortran D, with its BLAS-1 call structure intact (idamax /
    swaprow / getpiv / dscal / daxpy) — the paper's Section 9 case
    study.  Column-cyclic by default. *)

val source : ?n:int -> ?dist:string -> unit -> string

val reference_lu : int -> float array array * int array
(** Native OCaml LU with partial pivoting over the same initial matrix:
    (factored matrix, pivot vector), for independent answer checking. *)
