(** Relaxation workloads structured through procedures, exercising
    inherited decompositions and exported shift communication. *)

val jacobi1d : ?n:int -> ?t:int -> unit -> string

val jacobi2d : ?n:int -> ?t:int -> unit -> string
(** Row-block 2-D Jacobi: neighbor exchange in the distributed dimension
    only. *)

val redblack : ?n:int -> ?t:int -> unit -> string
(** Strided (red/black) partitioned loops. *)

val shifts : ?n:int -> widths:int list -> unit -> string
(** One procedure per shift width; the overlap-analysis experiment
    family (E7). *)

val multi_array : ?n:int -> ?t:int -> unit -> string
(** Three same-direction shifted reads through one procedure: the
    message-aggregation demonstration (paper Fig. 11, experiment E10). *)
