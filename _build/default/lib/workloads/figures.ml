(* The paper's worked examples as parameterized mini-Fortran-D sources.
   Each generator returns source text; [Fd_core.Driver.run_source] turns
   it into a verified simulated execution. *)

(* Figure 1: the block-distributed shift kernel, computation inside a
   called procedure.  [n] elements, shift of [c]. *)
let fig1 ?(n = 100) ?(shift = 5) () =
  Fmt.str
    {|
program p1
  parameter (n = %d)
  real x(%d)
  integer i
  distribute x(block)
  do i = 1, n
    x(i) = float(i)
  enddo
  call f1(x)
  print *, x(1), x(n)
end

subroutine f1(x)
  parameter (n = %d)
  real x(%d)
  integer i
  do i = 1, n - %d
    x(i) = 2.0 * x(i+%d) + 1.0
  enddo
end
|}
    n n n n shift shift

(* Figure 4: a procedure called with row-distributed and column-distributed
   actuals; cloning plus cross-procedure message vectorization. *)
let fig4 ?(n = 100) ?(shift = 5) () =
  Fmt.str
    {|
program p1
  parameter (n = %d)
  real x(%d,%d), y(%d,%d)
  integer i, j
  decomposition d(%d,%d)
  align x(i,j) with d(i,j)
  align y(i,j) with d(j,i)
  distribute d(block,:)
  do j = 1, n
    do i = 1, n
      x(i,j) = float(i+j)
    enddo
  enddo
  do j = 1, n
    do i = 1, n
      y(i,j) = float(i-j)
    enddo
  enddo
  do i = 1, n
    call f1(x,i)
  enddo
  do j = 1, n
    call f1(y,j)
  enddo
  print *, x(1,1), y(1,1)
end

subroutine f1(z,i)
  parameter (n = %d)
  real z(%d,%d)
  integer i, k
  do k = 1, n - %d
    z(k,i) = z(k+%d,i) + 1.0
  enddo
end
|}
    n n n n n n n n n n shift shift

(* Figure 15: dynamic data decomposition.  X is block-distributed, F1
   redistributes it cyclically; two calls per iteration of a time loop,
   plus an unrelated procedure and an after-loop consumer, giving the
   full Figure-16 optimization ladder (4T / 2T / 2 / mark-only). *)
let fig15 ?(n = 64) ?(t = 10) () =
  Fmt.str
    {|
program p1
  parameter (n = %d, t = %d)
  real x(%d), y(%d)
  integer k, i
  distribute x(block)
  distribute y(block)
  do i = 1, n
    x(i) = float(i)
    y(i) = 0.0
  enddo
  do k = 1, t
    call f1(x)
    call f1(x)
    call f2(y)
  enddo
  call f3(x)
  print *, x(1), y(1)
end

subroutine f1(x)
  parameter (n = %d)
  real x(%d)
  integer i
  distribute x(cyclic)
  do i = 1, n
    x(i) = x(i) + 1.0
  enddo
end

subroutine f2(y)
  parameter (n = %d)
  real y(%d)
  integer i
  do i = 1, n
    y(i) = y(i) + 2.0
  enddo
end

subroutine f3(x)
  parameter (n = %d)
  real x(%d)
  integer i
  do i = 1, n
    x(i) = 2.0 * x(i)
  enddo
end
|}
    n t n n n n n n n n

(* Figure 12 discussion example: immediate instantiation of the Figure 4
   program is obtained by compiling [fig4] with [Options.Immediate]. *)
let fig12 = fig4
