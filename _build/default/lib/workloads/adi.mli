(** ADI-style alternating-direction sweeps: the paper's motivating use of
    dynamic data decomposition (Section 6). *)

val dynamic : ?n:int -> ?t:int -> unit -> string
(** Remaps (block,:) <-> (:,block) between the row and column phases, so
    both recurrences stay processor-local. *)

val static_ : ?n:int -> ?t:int -> unit -> string
(** Same computation, fixed row-block distribution: the column recurrence
    runs along the distributed dimension and compiles through the
    run-time-resolution fallback. *)
