(* ADI-style alternating-direction sweeps: the paper's motivating use of
   dynamic data decomposition ("phases of a computation may require
   different data decompositions to reduce data movement or load
   imbalance", Section 6).

   Each time step runs a recurrence along rows, then a recurrence along
   columns.  With a static (block,:) distribution the column phase
   recurs along the *distributed* dimension — the compiler's only sound
   option is per-element run-time resolution.  Remapping to (:,block)
   between phases keeps both recurrences local at the cost of two
   transposes per step. *)

let dynamic ?(n = 32) ?(t = 2) () =
  Fmt.str
    {|
program adi
  parameter (n = %d, t = %d)
  real u(%d,%d)
  integer i, j, it
  distribute u(block,:)
  do j = 1, n
    do i = 1, n
      u(i,j) = float(mod(i*3 + j*5, 11) + 1)
    enddo
  enddo
  do it = 1, t
    call rowsweep(u)
    distribute u(:,block)
    call colsweep(u)
    distribute u(block,:)
  enddo
  print *, u(1,1), u(n,n)
end

subroutine rowsweep(u)
  parameter (n = %d)
  real u(%d,%d)
  integer i, j
  do i = 1, n
    do j = 2, n
      u(i,j) = 0.5 * (u(i,j) + u(i,j-1))
    enddo
  enddo
end

subroutine colsweep(u)
  parameter (n = %d)
  real u(%d,%d)
  integer i, j
  do j = 1, n
    do i = 2, n
      u(i,j) = 0.5 * (u(i,j) + u(i-1,j))
    enddo
  enddo
end
|}
    n t n n n n n n n n

(* The same computation with a static row-block distribution: the column
   sweep's recurrence runs along the distributed dimension, forcing the
   run-time-resolution fallback for that statement. *)
let static_ ?(n = 32) ?(t = 2) () =
  Fmt.str
    {|
program adi
  parameter (n = %d, t = %d)
  real u(%d,%d)
  integer i, j, it
  distribute u(block,:)
  do j = 1, n
    do i = 1, n
      u(i,j) = float(mod(i*3 + j*5, 11) + 1)
    enddo
  enddo
  do it = 1, t
    call rowsweep(u)
    call colsweep(u)
  enddo
  print *, u(1,1), u(n,n)
end

subroutine rowsweep(u)
  parameter (n = %d)
  real u(%d,%d)
  integer i, j
  do i = 1, n
    do j = 2, n
      u(i,j) = 0.5 * (u(i,j) + u(i,j-1))
    enddo
  enddo
end

subroutine colsweep(u)
  parameter (n = %d)
  real u(%d,%d)
  integer i, j
  do j = 1, n
    do i = 2, n
      u(i,j) = 0.5 * (u(i,j) + u(i-1,j))
    enddo
  enddo
end
|}
    n t n n n n n n n n
