(** Affine forms over named integer variables: [sum_i c_i * v_i + k].

    The expression-to-affine conversion folds PARAMETER constants through
    the symbol table, so distribution math downstream sees concrete
    coefficients. *)

type t

val const : int -> t
val zero : t
val var : ?coeff:int -> string -> t

val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val scale : int -> t -> t

val is_const : t -> bool
val constant : t -> int
(** The constant term. *)

val const_value : t -> int option
(** [Some k] iff the form has no variables. *)

val coeff_of : string -> t -> int
val vars : t -> string list
(** Variables with nonzero coefficients, sorted. *)

val equal : t -> t -> bool

val drop_var : string -> t -> t
(** Remove one variable's term (the "residue" used by SIV testing). *)

val of_expr : Fd_frontend.Symtab.t -> Fd_frontend.Ast.expr -> t option
(** [None] when the expression is not affine. *)

val eval : (string -> int option) -> t -> int
(** @raise Invalid_argument on an unbound variable. *)

val to_expr : t -> Fd_frontend.Ast.expr
(** Reconstruct an AST expression (for code generation). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
