lib/analysis/cfg.ml: Array Ast Fd_frontend Fmt Hashtbl List
