lib/analysis/procset.ml: Array Fd_support Fmt Iset List
