lib/analysis/region.mli: Fd_support Format Triplet
