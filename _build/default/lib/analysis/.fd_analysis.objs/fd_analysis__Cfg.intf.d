lib/analysis/cfg.mli: Ast Fd_frontend Format
