lib/analysis/dependence.ml: Affine Array List Sections String
