lib/analysis/affine.ml: Ast Fd_frontend Fd_support Fmt List Listx Option String Symtab
