lib/analysis/dataflow.ml: Array Cfg Int List Queue Set
