lib/analysis/region.ml: Array Fd_support Fmt List Listx Triplet
