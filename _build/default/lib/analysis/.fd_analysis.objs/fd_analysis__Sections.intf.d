lib/analysis/sections.mli: Affine Ast Fd_frontend Region Symtab
