lib/analysis/dataflow.mli: Cfg Set
