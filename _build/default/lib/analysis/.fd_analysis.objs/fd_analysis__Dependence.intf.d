lib/analysis/dependence.mli: Sections
