lib/analysis/procset.mli: Fd_support Format Iset
