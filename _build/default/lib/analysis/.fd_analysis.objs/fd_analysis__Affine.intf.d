lib/analysis/affine.mli: Fd_frontend Format
