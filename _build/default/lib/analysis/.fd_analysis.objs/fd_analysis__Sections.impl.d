lib/analysis/sections.ml: Affine Ast Fd_frontend Fd_support Hashtbl List Option Region String Symtab Triplet
