(** Generic iterative dataflow over {!Cfg}, worklist-driven.

    Facts form a join-semilattice; [solve] computes the maximal fixed
    point of a forward or backward problem. *)

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Make (L : LATTICE) : sig
  type result = {
    input : L.t array;
        (** fact flowing into each node: at node entry for forward
            problems, at node exit for backward problems *)
    output : L.t array;
        (** [transfer] applied to [input] *)
  }

  val solve :
    direction:direction ->
    init:L.t ->
    transfer:(int -> Cfg.node -> L.t -> L.t) ->
    Cfg.t ->
    result
end

module Int_set : Set.S with type elt = int

module Bitset_lattice : LATTICE with type t = Int_set.t

(** Gen/kill problems over sets of integer ids (definitions, statements,
    variables...). *)
module Genkill : sig
  module Solver : sig
    type result = { input : Int_set.t array; output : Int_set.t array }

    val solve :
      direction:direction ->
      init:Int_set.t ->
      transfer:(int -> Cfg.node -> Int_set.t -> Int_set.t) ->
      Cfg.t ->
      result
  end

  type spec = {
    gen : int -> Cfg.node -> Int_set.t;
    kill : int -> Cfg.node -> Int_set.t;
  }

  val solve :
    direction:direction -> init:Int_set.t -> spec -> Cfg.t -> Solver.result
end
