(** Data-dependence testing over affine subscripts (ZIV and strong-SIV,
    conservative "star" directions elsewhere), specialized to what
    Fortran D communication analysis needs: the loop levels at which a
    *true* (flow) dependence from a write to a read may be carried.

    Levels are 1-based from the outermost common loop.  The deepest
    carried level is the message-vectorization level: communication for
    the read must stay inside that loop and may be hoisted out of all
    deeper loops. *)

type distance = Dist of int | Star | No_dep

type result = {
  carried : int list;       (** levels at which the dependence may be carried *)
  loop_independent : bool;
}

val no_dependence : result

val common_loops :
  Sections.loop_ctx list -> Sections.loop_ctx list -> Sections.loop_ctx list

val trip_count : Sections.loop_ctx -> int option

val true_dep : Sections.ref_info -> Sections.ref_info -> result
(** Flow dependence from a write to a read of the same array.  Exact
    distances are clipped by trip counts; unknown subscripts yield
    conservative (possible) dependences. *)

val deepest_true_dep_level :
  Sections.ref_info list -> Sections.ref_info -> int option
(** Deepest level at which any write in the list carries a true
    dependence onto [read]; [None] means communication for the read can
    be vectorized out of its whole loop nest. *)
