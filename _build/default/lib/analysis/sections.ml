(* Collection of array references with their loop context, and
   concretization into regular sections (regions).  This is the "local RSD
   analysis" feeding interprocedural side effects, dependence testing,
   communication analysis, and overlap estimation. *)

open Fd_support
open Fd_frontend

type loop_ctx = {
  lvar : string;
  llo : Affine.t option;
  lhi : Affine.t option;
  lstep : int;  (* constant step; non-constant steps are rejected upstream *)
  lsid : int;
}

type ref_info = {
  array : string;
  sid : int;            (* id of the enclosing statement *)
  is_write : bool;
  subs : Affine.t option list;  (* per dimension; None = non-affine *)
  loops : loop_ctx list;        (* enclosing loops, outermost first *)
}

let collect (symtab : Symtab.t) (body : Ast.stmt list) : ref_info list =
  let out = ref [] in
  let rec walk loops (s : Ast.stmt) =
    let record ~is_write e =
      match e with
      | Ast.Ref (array, subs) when Symtab.is_array symtab array ->
        out :=
          { array;
            sid = s.Ast.sid;
            is_write;
            subs = List.map (Affine.of_expr symtab) subs;
            loops = List.rev loops }
          :: !out
      | _ -> ()
    in
    let record_reads e = Ast.iter_exprs_expr (fun e' -> record ~is_write:false e') e in
    match s.Ast.kind with
    | Ast.Assign (lhs, rhs) ->
      record ~is_write:true lhs;
      (* subscripts of the lhs are themselves reads *)
      (match lhs with
      | Ast.Ref (_, subs) -> List.iter record_reads subs
      | _ -> ());
      record_reads rhs
    | Ast.Do d ->
      let step =
        match d.step with
        | None -> 1
        | Some e -> (
          match Affine.of_expr symtab e with
          | Some a -> ( match Affine.const_value a with Some k -> k | None -> 1)
          | None -> 1)
      in
      record_reads d.lo;
      record_reads d.hi;
      Option.iter record_reads d.step;
      let ctx =
        { lvar = d.var;
          llo = Affine.of_expr symtab d.lo;
          lhi = Affine.of_expr symtab d.hi;
          lstep = step;
          lsid = s.Ast.sid }
      in
      List.iter (walk (ctx :: loops)) d.body
    | Ast.If i ->
      record_reads i.cond;
      List.iter (walk loops) i.then_;
      List.iter (walk loops) i.else_
    | Ast.Call (_, args) ->
      (* whole-array actuals are handled interprocedurally; subscripted
         actuals are reads *)
      List.iter record_reads args
    | Ast.Print args -> List.iter record_reads args
    | Ast.Align _ | Ast.Distribute _ | Ast.Return -> ()
  in
  List.iter (walk []) body;
  List.rev !out

(* --- Interval evaluation of affine forms ----------------------------- *)

(* [affine_range env a] is the (min, max) of [a] when every variable's
   range is known from [env]; None otherwise. *)
let affine_range (env : string -> (int * int) option) (a : Affine.t) :
    (int * int) option =
  let rec loop lo hi = function
    | [] -> Some (lo, hi)
    | v :: rest -> (
      match env v with
      | None -> None
      | Some (vlo, vhi) ->
        let c = Affine.coeff_of v a in
        if c >= 0 then loop (lo + (c * vlo)) (hi + (c * vhi)) rest
        else loop (lo + (c * vhi)) (hi + (c * vlo)) rest)
  in
  let k = Affine.constant a in
  loop k k (Affine.vars a)

(* Range environment from a loop context list: each loop variable ranges
   over its (constant-bounds) extent, widened through outer loops. *)
let loop_ranges (loops : loop_ctx list) : string -> (int * int) option =
  let table = Hashtbl.create 8 in
  List.iter
    (fun ctx ->
      let env v = Hashtbl.find_opt table v in
      let lo = Option.bind ctx.llo (affine_range env) in
      let hi = Option.bind ctx.lhi (affine_range env) in
      match (lo, hi) with
      | Some (lo_min, _), Some (_, hi_max) when lo_min <= hi_max ->
        Hashtbl.replace table ctx.lvar (lo_min, hi_max)
      | _ -> ())
    loops;
  fun v -> Hashtbl.find_opt table v

(* Concretize one reference into a region over the declared bounds.
   Falls back to the whole declared extent per dimension when a subscript
   is non-affine or mentions a variable with unknown range; this keeps the
   result a sound over-approximation of the accessed section. *)
let region_of_ref ~(declared : (int * int) list) (r : ref_info) : Region.t =
  let env = loop_ranges r.loops in
  let dim_triplet (dlo, dhi) sub =
    let whole = Triplet.make ~lo:dlo ~hi:dhi ~step:1 in
    match sub with
    | None -> whole
    | Some a -> (
      (* Strided section when the subscript is affine in exactly one
         ranged variable; hull otherwise. *)
      match Affine.vars a with
      | [] -> (
        match Affine.const_value a with
        | Some k -> Triplet.singleton k
        | None -> whole)
      | [ v ] -> (
        match env v with
        | Some (vlo, vhi) ->
          let c = Affine.coeff_of v a in
          let at x = Affine.eval (fun u -> if String.equal u v then Some x else None) a in
          let x1 = at vlo and x2 = at vhi in
          let lo = min x1 x2 and hi = max x1 x2 in
          Triplet.make ~lo ~hi ~step:(max 1 (abs c))
        | None -> whole)
      | _ -> (
        match affine_range env a with
        | Some (lo, hi) -> Triplet.make ~lo ~hi ~step:1
        | None -> whole))
  in
  if List.length declared <> List.length r.subs then
    (* rank mismatch (reshaping): conservative whole-array *)
    Region.of_triplets (List.map (fun (lo, hi) -> Triplet.make ~lo ~hi ~step:1) declared)
  else Region.of_triplets (List.map2 dim_triplet declared r.subs)

(* Union of regions accessed by a predicate over refs. *)
let accessed_region ~declared refs ~pred =
  List.fold_left
    (fun acc r ->
      if pred r then Region.union acc (region_of_ref ~declared r) else acc)
    (Region.empty (List.length declared))
    refs

let written_region ~declared ~array refs =
  accessed_region ~declared refs ~pred:(fun r ->
      r.is_write && String.equal r.array array)

let read_region ~declared ~array refs =
  accessed_region ~declared refs ~pred:(fun r ->
      (not r.is_write) && String.equal r.array array)
