(** Collection of array references with their loop context, and
    concretization into regular sections — the "local RSD analysis"
    feeding interprocedural side effects, dependence testing,
    communication analysis, and overlap estimation. *)

open Fd_frontend

type loop_ctx = {
  lvar : string;
  llo : Affine.t option;
  lhi : Affine.t option;
  lstep : int;
  lsid : int;  (** statement id of the DO *)
}

type ref_info = {
  array : string;
  sid : int;            (** id of the enclosing statement *)
  is_write : bool;
  subs : Affine.t option list;  (** per dimension; None = non-affine *)
  loops : loop_ctx list;        (** enclosing loops, outermost first *)
}

val collect : Symtab.t -> Ast.stmt list -> ref_info list
(** Every array element reference in the statement list, in textual
    order (a store's own subscripts also appear as reads). *)

val affine_range :
  (string -> (int * int) option) -> Affine.t -> (int * int) option
(** Interval evaluation: min/max of the form when every variable's range
    is known. *)

val loop_ranges : loop_ctx list -> string -> (int * int) option
(** Range environment from a loop context (bounds widened through outer
    loops when triangular). *)

val region_of_ref : declared:(int * int) list -> ref_info -> Region.t
(** Concretize one reference over the declared bounds; a sound
    over-approximation (whole extents) where subscripts are non-affine or
    ranges unknown. *)

val accessed_region :
  declared:(int * int) list ->
  ref_info list ->
  pred:(ref_info -> bool) ->
  Region.t

val written_region :
  declared:(int * int) list -> array:string -> ref_info list -> Region.t

val read_region :
  declared:(int * int) list -> array:string -> ref_info list -> Region.t
