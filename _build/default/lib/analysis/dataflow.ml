(* Generic iterative dataflow over {!Cfg}, worklist-driven.

   Facts form a join-semilattice; [solve] computes the maximal fixed point
   for a forward or backward problem and returns per-node input and output
   facts (input = fact at node entry for forward problems, at node exit
   for backward problems). *)

type direction = Forward | Backward

module type LATTICE = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool
end

module Make (L : LATTICE) = struct
  type result = { input : L.t array; output : L.t array }

  let solve ~direction ~(init : L.t) ~(transfer : int -> Cfg.node -> L.t -> L.t)
      (cfg : Cfg.t) : result =
    let n = Cfg.length cfg in
    let input = Array.make n L.bottom in
    let output = Array.make n L.bottom in
    let flow_in, start_node =
      match direction with
      | Forward -> (Cfg.preds cfg, Cfg.entry)
      | Backward -> (Cfg.succs cfg, Cfg.exit_)
    in
    let flow_out =
      match direction with Forward -> Cfg.succs cfg | Backward -> Cfg.preds cfg
    in
    input.(start_node) <- init;
    output.(start_node) <- transfer start_node (Cfg.node cfg start_node) init;
    let worklist = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add i worklist
    done;
    while not (Queue.is_empty worklist) do
      let i = Queue.pop worklist in
      let in_fact =
        let base = if i = start_node then init else L.bottom in
        List.fold_left (fun acc p -> L.join acc output.(p)) base (flow_in i)
      in
      let out_fact = transfer i (Cfg.node cfg i) in_fact in
      input.(i) <- in_fact;
      if not (L.equal out_fact output.(i)) then begin
        output.(i) <- out_fact;
        List.iter (fun s -> Queue.add s worklist) (flow_out i)
      end
    done;
    { input; output }
end

(* Set-of-int lattice (union join), the workhorse for gen/kill problems
   where facts are sets of definition or statement ids. *)
module Int_set = Set.Make (Int)

module Bitset_lattice = struct
  type t = Int_set.t

  let bottom = Int_set.empty
  let join = Int_set.union
  let equal = Int_set.equal
end

module Genkill = struct
  module Solver = Make (Bitset_lattice)

  type spec = { gen : int -> Cfg.node -> Int_set.t; kill : int -> Cfg.node -> Int_set.t }

  let solve ~direction ~(init : Int_set.t) (spec : spec) (cfg : Cfg.t) =
    let transfer i node fact =
      Int_set.union (spec.gen i node) (Int_set.diff fact (spec.kill i node))
    in
    Solver.solve ~direction ~init ~transfer cfg
end
