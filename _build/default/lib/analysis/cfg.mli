(** Statement-level control-flow graph for one procedure.

    Nodes are [Entry], [Exit], and one node per statement.  A DO
    statement's node is its loop header: header -> first body node,
    header -> follow (zero-trip path), last body node -> header (back
    edge).  RETURN flows to [Exit]. *)

open Fd_frontend

type node = Entry | Exit | Stmt of Ast.stmt

type t

val entry : int
(** Index of the entry node (always 0). *)

val exit_ : int
(** Index of the exit node (always 1). *)

val build : Ast.stmt list -> t

val node : t -> int -> node
val succs : t -> int -> int list
val preds : t -> int -> int list
val length : t -> int

val node_of_sid : t -> int -> int option
(** Node index of the statement with the given id. *)

val stmt_opt : t -> int -> Ast.stmt option

val pp : Format.formatter -> t -> unit
