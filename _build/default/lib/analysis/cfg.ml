(* Statement-level control-flow graph for one procedure.

   Nodes are Entry, Exit, and one node per statement.  A DO statement's
   node is its loop header: header -> first body node, header -> follow
   (zero-trip), last body node -> header (back edge). *)

open Fd_frontend

type node = Entry | Exit | Stmt of Ast.stmt

type t = {
  nodes : node array;
  succs : int list array;
  preds : int list array;
  node_of_sid : (int, int) Hashtbl.t;
}

let entry = 0
let exit_ = 1

let node t i = t.nodes.(i)
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)
let length t = Array.length t.nodes
let node_of_sid t sid = Hashtbl.find_opt t.node_of_sid sid

let stmt_opt t i = match t.nodes.(i) with Stmt s -> Some s | Entry | Exit -> None

let build (body : Ast.stmt list) : t =
  let nodes = ref [ Exit; Entry ] in (* reversed; Entry=0, Exit=1 after rev *)
  let count = ref 2 in
  let edges = ref [] in
  let node_of_sid = Hashtbl.create 64 in
  let add_node n =
    let id = !count in
    nodes := n :: !nodes;
    incr count;
    (match n with Stmt s -> Hashtbl.replace node_of_sid s.Ast.sid id | _ -> ());
    id
  in
  let add_edge a b = edges := (a, b) :: !edges in
  (* [wire preds stmts] threads the statement list, returning the set of
     dangling exits (node ids whose successor is the follow point).
     [preds] are the dangling exits flowing into the head of [stmts]. *)
  let rec wire (preds : int list) (stmts : Ast.stmt list) : int list =
    match stmts with
    | [] -> preds
    | s :: rest ->
      let outs =
        match s.Ast.kind with
        | Ast.Assign _ | Ast.Call _ | Ast.Align _ | Ast.Distribute _ | Ast.Print _ ->
          let id = add_node (Stmt s) in
          List.iter (fun p -> add_edge p id) preds;
          [ id ]
        | Ast.Return ->
          let id = add_node (Stmt s) in
          List.iter (fun p -> add_edge p id) preds;
          add_edge id exit_;
          []
        | Ast.Do d ->
          let header = add_node (Stmt s) in
          List.iter (fun p -> add_edge p header) preds;
          let body_exits = wire [ header ] d.body in
          List.iter (fun e -> add_edge e header) body_exits;
          [ header ]
        | Ast.If i ->
          let cond = add_node (Stmt s) in
          List.iter (fun p -> add_edge p cond) preds;
          let then_exits = wire [ cond ] i.then_ in
          let else_exits = wire [ cond ] i.else_ in
          (* An empty branch contributes the cond node itself (returned by
             wire as its input preds). *)
          then_exits @ else_exits
      in
      wire outs rest
  in
  let final = wire [ entry ] body in
  List.iter (fun p -> add_edge p exit_) final;
  let n = !count in
  let nodes = Array.of_list (List.rev !nodes) in
  let succs = Array.make n [] and preds_a = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if not (List.mem b succs.(a)) then succs.(a) <- b :: succs.(a);
      if not (List.mem a preds_a.(b)) then preds_a.(b) <- a :: preds_a.(b))
    !edges;
  { nodes; succs; preds = preds_a; node_of_sid }

let pp ppf t =
  Array.iteri
    (fun i n ->
      let label =
        match n with
        | Entry -> "entry"
        | Exit -> "exit"
        | Stmt s -> (
          match s.Ast.kind with
          | Ast.Assign _ -> Fmt.str "s%d:assign" s.Ast.sid
          | Ast.Do d -> Fmt.str "s%d:do %s" s.Ast.sid d.var
          | Ast.If _ -> Fmt.str "s%d:if" s.Ast.sid
          | Ast.Call (f, _) -> Fmt.str "s%d:call %s" s.Ast.sid f
          | Ast.Align _ -> Fmt.str "s%d:align" s.Ast.sid
          | Ast.Distribute _ -> Fmt.str "s%d:distribute" s.Ast.sid
          | Ast.Return -> Fmt.str "s%d:return" s.Ast.sid
          | Ast.Print _ -> Fmt.str "s%d:print" s.Ast.sid)
      in
      Fmt.pf ppf "%d[%s] -> %a@." i label Fmt.(list ~sep:(any ",") int) t.succs.(i))
    t.nodes
