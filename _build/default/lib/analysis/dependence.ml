(* Data-dependence testing over affine subscripts (ZIV and strong-SIV
   tests, with conservative "star" directions elsewhere), specialized to
   what Fortran D communication analysis needs: the set of common loop
   levels at which a *true* (flow) dependence from a write to a read may
   be carried, plus loop-independent dependences.

   Levels are 1-based from the outermost common loop.  The deepest carried
   level is the message-vectorization level: communication for the read
   must stay inside that loop; it may be hoisted out of all deeper
   loops [Hiranandani-Kennedy-Tseng]. *)

type distance =
  | Dist of int  (* exact dependence distance for a common loop *)
  | Star         (* unknown / unconstrained *)
  | No_dep       (* proven independent in some dimension *)

type result = { carried : int list; loop_independent : bool }

let no_dependence = { carried = []; loop_independent = false }

let common_loops (w : Sections.loop_ctx list) (r : Sections.loop_ctx list) :
    Sections.loop_ctx list =
  let rec loop acc = function
    | wc :: wrest, rc :: rrest when wc.Sections.lsid = rc.Sections.lsid ->
      loop (wc :: acc) (wrest, rrest)
    | _ -> List.rev acc
  in
  loop [] (w, r)

(* Distance in loop variable [v] implied by one subscript dimension:
   subscript of the write evaluated at iteration [i_w] must equal the
   subscript of the read at [i_r]; distance = i_r - i_w. *)
let dim_distance v (sw : Affine.t option) (sr : Affine.t option) : distance =
  match (sw, sr) with
  | Some aw, Some ar -> (
    let cw = Affine.coeff_of v aw and cr = Affine.coeff_of v ar in
    if cw = 0 && cr = 0 then
      (* ZIV with respect to this loop; handled by the caller across all
         loops at once via the pure-constant case *)
      Star
    else if cw <> 0 && cw = cr then begin
      (* strong SIV: cw*i_w + rest_w = cr*i_r + rest_r.  If the residues
         (terms not in v) are equal as affine forms, distance is exact. *)
      let rw = Affine.drop_var v aw and rr = Affine.drop_var v ar in
      if Affine.equal rw rr then Dist 0
      else
        match (Affine.const_value (Affine.sub rw rr), cw) with
        | Some diff, c when diff mod c = 0 -> Dist (diff / c)
        | Some _, _ -> No_dep  (* non-integer distance *)
        | None, _ -> Star
    end
    else Star)
  | _ -> Star  (* non-affine subscript *)

(* ZIV test: a dimension where neither subscript mentions any common loop
   variable proves independence when both are distinct constants. *)
let ziv_independent (sw : Affine.t option) (sr : Affine.t option) =
  match (sw, sr) with
  | Some aw, Some ar -> (
    match (Affine.const_value aw, Affine.const_value ar) with
    | Some a, Some b -> a <> b
    | _ -> false)
  | _ -> false

let trip_count (ctx : Sections.loop_ctx) : int option =
  match (ctx.llo, ctx.lhi) with
  | Some lo, Some hi -> (
    match (Affine.const_value lo, Affine.const_value hi) with
    | Some l, Some h -> Some (max 0 (((h - l) / max 1 ctx.lstep) + 1))
    | _ -> None)
  | _ -> None

(* True-dependence levels from write [w] to read [r] on the same array.
   [w] and [r] must refer to the same array; statements are ordered by
   sid (textual order). *)
let true_dep (w : Sections.ref_info) (r : Sections.ref_info) : result =
  assert (String.equal w.Sections.array r.Sections.array);
  if List.length w.subs <> List.length r.subs then
    (* reshaping: assume dependence everywhere *)
    { carried = List.mapi (fun i _ -> i + 1) (common_loops w.loops r.loops);
      loop_independent = true }
  else begin
    let commons = common_loops w.loops r.loops in
    if List.exists2 (fun sw sr -> ziv_independent sw sr) w.subs r.subs then
      no_dependence
    else begin
      (* Per-common-loop distance: combine over dimensions; conflicting
         exact distances prove independence. *)
      let distances =
        List.map
          (fun ctx ->
            let v = ctx.Sections.lvar in
            List.fold_left2
              (fun acc sw sr ->
                match (acc, dim_distance v sw sr) with
                | No_dep, _ | _, No_dep -> No_dep
                | Star, d -> d
                | d, Star -> d
                | Dist a, Dist b -> if a = b then Dist a else No_dep)
              Star w.subs r.subs)
          commons
      in
      if List.mem No_dep distances then no_dependence
      else begin
        (* Clip exact distances by trip counts. *)
        let distances =
          List.map2
            (fun ctx d ->
              match d with
              | Dist k -> (
                match trip_count ctx with
                | Some n when abs k >= n -> No_dep
                | _ -> Dist k)
              | d -> d)
            commons distances
        in
        if List.mem No_dep distances then no_dependence
        else begin
          (* A flow dependence at level L needs distances 0 (or Star) at
             levels < L and a positive (or Star) distance at L. *)
          let n = List.length distances in
          let dist_arr = Array.of_list distances in
          let carried = ref [] in
          let prefix_can_be_zero upto =
            let ok = ref true in
            for i = 0 to upto - 1 do
              match dist_arr.(i) with Dist 0 | Star -> () | _ -> ok := false
            done;
            !ok
          in
          for level = 1 to n do
            let d = dist_arr.(level - 1) in
            let positive = match d with Dist k -> k > 0 | Star -> true | No_dep -> false in
            if positive && prefix_can_be_zero (level - 1) then
              carried := level :: !carried
          done;
          (* Loop-independent: all distances can be zero and the write
             precedes the read textually. *)
          let all_zero =
            Array.for_all (function Dist 0 | Star -> true | _ -> false) dist_arr
          in
          let loop_independent = all_zero && w.sid <= r.sid in
          { carried = List.rev !carried; loop_independent }
        end
      end
    end
  end

(* Deepest level at which any true dependence onto [read] is carried by a
   loop enclosing the read, considering all writes in [refs] to the same
   array.  [None] = no loop-carried true dependence: communication can be
   vectorized out of the read's whole loop nest. *)
let deepest_true_dep_level (refs : Sections.ref_info list)
    (read : Sections.ref_info) : int option =
  List.fold_left
    (fun acc w ->
      if w.Sections.is_write && String.equal w.Sections.array read.Sections.array
      then begin
        let { carried; _ } = true_dep w read in
        List.fold_left
          (fun acc l -> match acc with Some m when m >= l -> acc | _ -> Some l)
          acc carried
      end
      else acc)
    None refs
