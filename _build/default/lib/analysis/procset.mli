(** Per-processor integer sets: the concrete representation of data
    partitions (local index sets) and computation partitions (local
    iteration sets), indexed by logical processor number [0..P-1]. *)

open Fd_support

type t = Iset.t array

val make : int -> (int -> Iset.t) -> t
val nprocs : t -> int
val uniform : int -> Iset.t -> t
val empty : int -> t
val get : t -> int -> Iset.t

val map : (Iset.t -> Iset.t) -> t -> t
val map2 : (Iset.t -> Iset.t -> Iset.t) -> t -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val equal : t -> t -> bool
val is_empty : t -> bool
val total_count : t -> int
val shift : int -> t -> t

val owners : int -> t -> int list
(** Processors whose set contains the element. *)

val flatten : t -> Iset.t
(** Union over all processors. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
