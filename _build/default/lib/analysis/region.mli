(** Regular section descriptors.

    A [box] is one RSD in the paper's sense: a triplet per array
    dimension.  A region is a finite union of boxes of equal rank.
    Intersection and difference are exact (difference uses slab
    decomposition); [union] keeps boxes disjoint so that [count] is
    exact. *)

open Fd_support

type box = Triplet.t array

type t

val empty : int -> t
(** [empty rank] *)

val of_box : box -> t
val of_triplets : Triplet.t list -> t
val of_boxes : int -> box list -> t

val is_empty : t -> bool
val rank : t -> int
val boxes : t -> box list

val box_is_empty : box -> bool
val box_inter : box -> box -> box
val box_diff : box -> box -> box list
(** Exact slab decomposition of [a \ b]. *)

val mem : int array -> t -> bool
val count : t -> int

val inter : t -> t -> t
val diff : t -> t -> t
val union : t -> t -> t

val equal : t -> t -> bool
val subset : t -> t -> bool
val disjoint : t -> t -> bool

val simplify : t -> t
(** Merge boxes differing in one dimension when no precision is lost
    (the paper's RSD merging rule). *)

val hull : t -> box option
(** Smallest single box containing the region. *)

val map_dims : (box -> box) -> t -> t

val pp_box : Format.formatter -> box -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
