(* Differential oracle for the static communication-cost analyzer.

   For every fault-free example under every strategy and at P in
   {4, 64}, [Cost.analyze] must predict, without simulating, the same
   message/broadcast/remap counters a simulated run reports — exactly,
   counter for counter — and, whenever the prediction carries no
   cost-model assumption ([exact]), the same virtual-time makespan as a
   compute-free ([flop = mem_op = 0]) simulated run.  Under the full
   cost model the makespan must be a lower bound on the simulated
   elapsed time.  A seeded sweep over the Gen workload generator
   extends the same contract to random programs. *)

open Fd_core
open Fd_machine
open Fd_verify

let check = Alcotest.check

let examples_dir =
  if Sys.file_exists "../examples" then "../examples" else "examples"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let strategies =
  [
    ("interproc", Options.Interproc);
    ("immediate", Options.Immediate);
    ("runtime", Options.Runtime_resolution);
  ]

let good_examples =
  [
    "fig1.fd"; "fig4.fd"; "fig15.fd"; "jacobi1d.fd"; "jacobi2d.fd";
    "redblack.fd"; "multi_array.fd"; "dgefa.fd"; "adi_dynamic.fd";
    "adi_static.fd";
  ]

(* Predict and simulate the same compiled program under a compute-free
   cost model; also return the full-model simulated elapsed time. *)
let face_off ~nprocs ~strategy (cp : Fd_frontend.Sema.checked_program) :
    Cost.t * Stats.t * float =
  let opts = { Options.default with strategy; nprocs } in
  let compiled = Driver.compile ~opts cp in
  let profile = Cost.profile_of_seq cp in
  let config = Driver.machine_config opts in
  let zcfg = { config with Config.flop = 0.0; mem_op = 0.0 } in
  let c = Cost.analyze ~profile ~config:zcfg compiled.Codegen.program in
  let stats, _ = Scheduler.run zcfg compiled.Codegen.program in
  let full_stats, _ = Scheduler.run config compiled.Codegen.program in
  ignore (Fd_support.Diag.take_warnings ());
  (c, stats, Stats.elapsed full_stats)

let assert_counters ~what (c : Cost.t) (stats : Stats.t) =
  let eq name pred sim =
    check Alcotest.int (Fmt.str "%s: %s" what name) sim pred
  in
  eq "messages" c.Cost.messages stats.Stats.messages;
  eq "message_bytes" c.Cost.message_bytes stats.Stats.message_bytes;
  eq "bcasts" c.Cost.bcasts stats.Stats.bcasts;
  eq "bcast_bytes" c.Cost.bcast_bytes stats.Stats.bcast_bytes;
  eq "remaps" c.Cost.remaps stats.Stats.remaps;
  eq "remap_marks" c.Cost.remap_marks stats.Stats.remap_marks;
  eq "remap_bytes" c.Cost.remap_bytes stats.Stats.remap_bytes

let assert_makespan ~what (c : Cost.t) (stats : Stats.t) ~full_elapsed =
  let sim = Stats.elapsed stats in
  if c.Cost.exact then
    check Alcotest.bool
      (Fmt.str "%s: exact makespan %.9f = simulated %.9f" what c.Cost.makespan
         sim)
      true
      (Float.abs (c.Cost.makespan -. sim) <= 1e-9 *. Float.max 1.0 sim)
  else
    check Alcotest.bool
      (Fmt.str "%s: approximate makespan %.9f <= compute-free simulated %.9f"
         what c.Cost.makespan sim)
      true
      (c.Cost.makespan <= sim +. 1e-9);
  (* comm-only prediction never exceeds the full-model elapsed time *)
  check Alcotest.bool
    (Fmt.str "%s: makespan %.9f <= full-model elapsed %.9f" what
       c.Cost.makespan full_elapsed)
    true
    (c.Cost.makespan <= full_elapsed +. 1e-9)

let test_examples () =
  List.iter
    (fun file ->
      let path = Filename.concat examples_dir file in
      let cp = Driver.check_source ~file (read_file path) in
      List.iter
        (fun (sname, strategy) ->
          List.iter
            (fun nprocs ->
              let what = Fmt.str "%s [%s P=%d]" file sname nprocs in
              let c, stats, full_elapsed = face_off ~nprocs ~strategy cp in
              check Alcotest.bool (what ^ ": prediction is exact") true
                c.Cost.exact;
              assert_counters ~what c stats;
              assert_makespan ~what c stats ~full_elapsed)
            [ 4; 64 ])
        strategies)
    good_examples

(* The per-processor piecewise forms must agree with the simulator's
   per-processor view: summing the pieces reproduces the totals, and
   evaluating them at each pid is nonnegative. *)
let test_per_proc_pieces () =
  List.iter
    (fun file ->
      let path = Filename.concat examples_dir file in
      let cp = Driver.check_source ~file (read_file path) in
      List.iter
        (fun nprocs ->
          let what = Fmt.str "%s [P=%d]" file nprocs in
          let c, _, _ = face_off ~nprocs ~strategy:Options.Interproc cp in
          let sum_msgs =
            List.fold_left (fun a p -> a + Cost.isum_piece p) 0
              c.Cost.per_proc_messages
          in
          let sum_bytes =
            List.fold_left (fun a p -> a + Cost.isum_piece p) 0
              c.Cost.per_proc_bytes
          in
          check Alcotest.int (what ^ ": pieces sum to total messages")
            c.Cost.messages sum_msgs;
          check Alcotest.int (what ^ ": pieces sum to total bytes")
            c.Cost.message_bytes sum_bytes;
          let eval_sum =
            List.init nprocs (fun p -> Cost.messages_at c p)
            |> List.fold_left ( + ) 0
          in
          check Alcotest.int (what ^ ": pointwise evaluation sums to total")
            c.Cost.messages eval_sum;
          List.iter
            (fun p ->
              check Alcotest.bool (what ^ ": nonnegative per-proc values")
                true
                (Cost.messages_at c p >= 0 && Cost.bytes_at c p >= 0
                && Cost.wait_at c p >= -1e-12))
            (List.init nprocs Fun.id))
        [ 4; 64 ])
    [ "jacobi1d.fd"; "jacobi2d.fd"; "dgefa.fd"; "adi_static.fd" ]

(* Runtime resolution sends one element at a time from jacobi2d's
   column exchange; the analyzer must prove it and warn, while the
   vectorized interproc compilation must stay silent. *)
let test_unvectorized_warning () =
  let path = Filename.concat examples_dir "jacobi2d.fd" in
  let cp = Driver.check_source ~file:"jacobi2d.fd" (read_file path) in
  let has_warning strategy =
    let c, _, _ = face_off ~nprocs:4 ~strategy cp in
    List.exists
      (fun f ->
        f.Finding.severity = Finding.Warning
        && f.Finding.kind = "unvectorized-comm")
      c.Cost.findings
  in
  check Alcotest.bool "runtime strategy: per-element sends flagged" true
    (has_warning Options.Runtime_resolution);
  check Alcotest.bool "interproc strategy: vectorized, no warning" false
    (has_warning Options.Interproc)

(* dgefa's pivot-guard IF is data-dependent: without the sequential
   branch profile the analysis must degrade gracefully to an
   approximate result with Info findings, not wrong exact numbers. *)
let test_profile_degradation () =
  let path = Filename.concat examples_dir "dgefa.fd" in
  let cp = Driver.check_source ~file:"dgefa.fd" (read_file path) in
  let opts = { Options.default with nprocs = 4 } in
  let compiled = Driver.compile ~opts cp in
  let config = Driver.machine_config opts in
  let c = Cost.analyze ~config compiled.Codegen.program in
  check Alcotest.bool "no profile: not exact" false c.Cost.exact;
  check Alcotest.bool "no profile: assumptions recorded" true
    (c.Cost.assumptions <> []);
  check Alcotest.bool "no profile: Info finding per assumption" true
    (List.exists
       (fun f ->
         f.Finding.severity = Finding.Info
         && f.Finding.kind = "cost-assumption")
       c.Cost.findings);
  (* with the profile the same program is exact *)
  let profile = Cost.profile_of_seq cp in
  let c2 = Cost.analyze ~profile ~config compiled.Codegen.program in
  check Alcotest.bool "with profile: exact" true c2.Cost.exact

(* The metrics export must use the simulator's counter names so
   dashboards can overlay predicted against simulated. *)
let test_metrics_names () =
  let path = Filename.concat examples_dir "jacobi1d.fd" in
  let cp = Driver.check_source ~file:"jacobi1d.fd" (read_file path) in
  let c, stats, _ = face_off ~nprocs:4 ~strategy:Options.Interproc cp in
  let m = Cost.to_metrics c in
  List.iter
    (fun (name, expected) ->
      match Fd_trace.Metrics.find m name with
      | Some (Fd_trace.Metrics.Counter cr) ->
        check Alcotest.int (Fmt.str "metric %s" name) expected
          cr.Fd_trace.Metrics.c_value
      | _ -> Alcotest.failf "metric %s missing from the cost export" name)
    [
      ("messages", stats.Stats.messages);
      ("message_bytes", stats.Stats.message_bytes);
      ("bcasts", stats.Stats.bcasts);
      ("bcast_bytes", stats.Stats.bcast_bytes);
    ];
  match Fd_trace.Metrics.find m "elapsed_seconds" with
  | Some (Fd_trace.Metrics.Gauge g) ->
    check Alcotest.bool "gauge elapsed_seconds = makespan" true
      (Float.abs (g.Fd_trace.Metrics.g_value -. c.Cost.makespan) < 1e-12)
  | _ -> Alcotest.fail "gauge elapsed_seconds missing"

(* Gen sweep: the contract holds on random programs, not just the
   committed corpus.  Generated programs are branch-free, so every
   prediction should be exact; if one ever is not, the counters must
   still match (they exclude nothing unless a region was recorded). *)
let test_gen_property () =
  let st = Random.State.make [| 0xc057 |] in
  for _case = 1 to 25 do
    let src = Fd_workloads.Gen.random_source st in
    match Driver.check_source src with
    | cp ->
      List.iter
        (fun (sname, strategy) ->
          match face_off ~nprocs:5 ~strategy cp with
          | c, stats, full_elapsed ->
            let what = Fmt.str "gen [%s]:\n%s" sname src in
            if c.Cost.exact then begin
              assert_counters ~what c stats;
              assert_makespan ~what c stats ~full_elapsed
            end
          | exception Scheduler.Sim_error _ -> ()
          | exception Fd_support.Diag.Compile_error _ -> ())
        strategies
    | exception Fd_support.Diag.Compile_error _ -> ()
  done

let suite =
  [
    Alcotest.test_case "examples x strategies x P: counters and makespan"
      `Slow test_examples;
    Alcotest.test_case "per-processor piecewise forms" `Slow
      test_per_proc_pieces;
    Alcotest.test_case "unvectorized-send warning" `Quick
      test_unvectorized_warning;
    Alcotest.test_case "profile-free degradation" `Quick
      test_profile_degradation;
    Alcotest.test_case "metrics export names" `Quick test_metrics_names;
    Alcotest.test_case "gen sweep: random programs" `Slow test_gen_property;
  ]
