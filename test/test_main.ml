let () =
  Alcotest.run "fortran-d"
    [
      ("support", Test_support.suite);
      ("frontend", Test_frontend.suite);
      ("analysis", Test_analysis.suite);
      ("callgraph", Test_callgraph.suite);
      ("core", Test_core.suite);
      ("pipeline", Test_pipeline.suite);
      ("machine", Test_machine.suite);
      ("units2", Test_units2.suite);
      ("units3", Test_units3.suite);
      ("common", Test_common.suite);
      ("units4", Test_units4.suite);
      ("properties", Test_properties.suite);
      ("absdom", Test_absdom.suite);
      ("faults", Test_faults.suite);
      ("verify", Test_verify.suite);
      ("cost", Test_cost.suite);
      ("trace", Test_trace.suite);
      ("integration", Test_integration.suite);
      ("pdes", Test_pdes.suite);
      ("totality", Test_totality.suite);
    ]
