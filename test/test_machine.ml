(* Machine simulator tests: layouts, storage validity tracking, the
   effects-based scheduler (message ordering, broadcast, remap, deadlock
   detection), cost model, and the sequential reference interpreter. *)

open Fd_support
open Fd_frontend
open Fd_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let int_e n = Ast.Int_const n
let nloc = Fd_support.Loc.none

(* --- Layout ----------------------------------------------------------- *)

let l_block_owned () =
  let l = { Layout.bounds = [ (1, 100) ]; dist_dim = Some 0; dist = Layout.Block 25 } in
  let owned = Layout.owned l ~nprocs:4 in
  check "p0" true (Iset.equal owned.(0) (Iset.range 1 25));
  check "p3" true (Iset.equal owned.(3) (Iset.range 76 100));
  check_int "owner of 26" 1 (Layout.owner_of l ~nprocs:4 26);
  check_int "owner of 100" 3 (Layout.owner_of l ~nprocs:4 100)

let l_block_ragged () =
  (* N=10, P=4, b=3: blocks 3/3/3/1 *)
  let l = { Layout.bounds = [ (1, 10) ]; dist_dim = Some 0;
            dist = Layout.Block (Layout.block_size_for ~nprocs:4 (1, 10)) } in
  let owned = Layout.owned l ~nprocs:4 in
  check_int "p3 has one" 1 (Iset.count owned.(3));
  check_int "total covers" 10 (Array.fold_left (fun a s -> a + Iset.count s) 0 owned)

let l_cyclic_owned () =
  let l = { Layout.bounds = [ (1, 10) ]; dist_dim = Some 0; dist = Layout.Cyclic } in
  let owned = Layout.owned l ~nprocs:3 in
  check "p0 owns 1,4,7,10" true (Iset.equal owned.(0) (Iset.of_list [ 1; 4; 7; 10 ]));
  check_int "owner of 5" 1 (Layout.owner_of l ~nprocs:3 5)

let l_block_cyclic () =
  let l = { Layout.bounds = [ (1, 12) ]; dist_dim = Some 0; dist = Layout.Block_cyclic 2 } in
  let owned = Layout.owned l ~nprocs:3 in
  check "p0 owns {1,2,7,8}" true (Iset.equal owned.(0) (Iset.of_list [ 1; 2; 7; 8 ]));
  check_int "owner of 9" 1 (Layout.owner_of l ~nprocs:3 9)

let l_partition_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"layouts partition the extent"
       QCheck2.Gen.(
         let* n = int_range 1 60 in
         let* p = int_range 1 8 in
         let* kind = int_range 0 2 in
         return (n, p, kind))
       (fun (n, p, kind) ->
         let dist =
           match kind with
           | 0 -> Layout.Block (Layout.block_size_for ~nprocs:p (1, n))
           | 1 -> Layout.Cyclic
           | _ -> Layout.Block_cyclic 2
         in
         let l = { Layout.bounds = [ (1, n) ]; dist_dim = Some 0; dist } in
         let owned = Layout.owned l ~nprocs:p in
         (* disjoint and covering, and owner_of agrees with owned *)
         let total = Array.fold_left (fun a s -> a + Iset.count s) 0 owned in
         total = n
         && List.for_all
              (fun x ->
                let o = Layout.owner_of l ~nprocs:p x in
                o >= 0 && o < p && Iset.mem x owned.(o))
              (List.init n (fun i -> i + 1))))

(* --- Storage ------------------------------------------------------------ *)

let st_validity () =
  let l = { Layout.bounds = [ (1, 10) ]; dist_dim = Some 0; dist = Layout.Block 3 } in
  let obj = Storage.alloc ~proc:1 ~nprocs:4 "x" Ast.Real l in
  Storage.mark_initial_validity obj;
  (* p1 owns 4..6 *)
  check "owned readable" true
    (match Storage.read ~strict:true obj [| 5 |] with _ -> true);
  check "non-owned raises" true
    (match Storage.read ~strict:true obj [| 1 |] with
    | _ -> false
    | exception Storage.Invalid_read _ -> true);
  (* receive validates *)
  Storage.receive obj [| 1 |] (Value.Vreal 7.0);
  check "received readable" true
    (Value.to_float (Storage.read ~strict:true obj [| 1 |]) = 7.0)

let st_bounds_check () =
  let l = Layout.replicated [ (1, 4); (1, 4) ] in
  let obj = Storage.alloc ~proc:0 ~nprocs:1 "a" Ast.Integer l in
  Storage.mark_initial_validity obj;
  check "oob raises" true
    (match Storage.read ~strict:false obj [| 5; 1 |] with
    | _ -> false
    | exception Diag.Compile_error _ -> true)

let st_set_layout_resets () =
  let l1 = { Layout.bounds = [ (1, 8) ]; dist_dim = Some 0; dist = Layout.Block 2 } in
  let obj = Storage.alloc ~proc:0 ~nprocs:4 "x" Ast.Real l1 in
  Storage.mark_initial_validity obj;
  Storage.receive obj [| 5 |] (Value.Vreal 1.0);
  let l2 = { Layout.bounds = [ (1, 8) ]; dist_dim = Some 0; dist = Layout.Cyclic } in
  Storage.set_layout ~nprocs:4 obj l2;
  (* p0 now owns {1,5}: 5 valid again by ownership, old received 3 is not *)
  check "newly owned valid" true
    (match Storage.read ~strict:true obj [| 5 |] with _ -> true);
  check "stale receive invalidated" true
    (match Storage.read ~strict:true obj [| 3 |] with
    | _ -> false
    | exception Storage.Invalid_read _ -> true)

(* --- Scheduler ------------------------------------------------------------- *)

(* tiny node programs built by hand *)
let myp = Ast.Var "my$p"

let node_prog ?(nprocs = 2) ~arrays body =
  { Node.n_main = "m"; n_nprocs = nprocs;
    n_common_arrays = []; n_common_scalars = [];
    n_procs =
      [ { Node.np_name = "m"; np_formals = []; np_arrays = arrays;
          np_scalars = []; np_body = Node.N_assign (myp, Ast.Funcall ("myproc", [])) :: body } ] }

let run prog nprocs =
  Scheduler.run (Config.ipsc860 ~nprocs ()) prog

let sched_pingpong () =
  (* p0 sends x(1:4) to p1; p1 receives *)
  let l = { Layout.bounds = [ (1, 8) ]; dist_dim = Some 0; dist = Layout.Block 4 } in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
  let body =
    [ Node.N_if
        { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
          then_ =
            [ Node.N_do
                { var = "i"; lo = int_e 1; hi = int_e 4; step = None;
                  body = [ Node.N_assign (Ast.Ref ("x", [ Ast.Var "i" ]),
                                          Ast.Funcall ("float", [ Ast.Var "i" ])) ] };
              Node.N_send { dest = int_e 1;
                            parts = [ ("x", [ (int_e 1, int_e 4, int_e 1) ]) ];
                            tag = 1; loc = nloc } ];
          else_ = [ Node.N_recv { src = int_e 0; tag = 1; loc = nloc } ] ; loc = nloc } ]
  in
  let stats, frames = run (node_prog ~arrays body) 2 in
  check_int "one message" 1 stats.Stats.messages;
  check_int "32 bytes" 32 stats.Stats.message_bytes;
  (* p1 now holds valid copies *)
  (match Hashtbl.find frames.(1) "x" with
  | Interp.Barray obj ->
    check "value arrived" true
      (Value.to_float (Storage.read ~strict:true obj [| 3 |]) = 3.0)
  | _ -> Alcotest.fail "x missing");
  check "receiver waited" true (Stats.elapsed stats > 0.0)

let sched_recv_before_send () =
  (* p1 posts its receive before p0 ever sends: scheduler must park and
     resume it *)
  let l = { Layout.bounds = [ (1, 4) ]; dist_dim = Some 0; dist = Layout.Block 2 } in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
  let body =
    [ Node.N_if
        { cond = Ast.Bin (Ast.Eq, myp, int_e 1);
          then_ = [ Node.N_recv { src = int_e 0; tag = 9; loc = nloc } ];
          else_ = [] ; loc = nloc };
      Node.N_if
        { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
          then_ =
            [ Node.N_assign (Ast.Ref ("x", [ int_e 1 ]), Ast.Real_const 5.0);
              Node.N_send { dest = int_e 1;
                            parts = [ ("x", [ (int_e 1, int_e 1, int_e 1) ]) ];
                            tag = 9; loc = nloc } ];
          else_ = [] ; loc = nloc } ]
  in
  let stats, _ = run (node_prog ~arrays body) 2 in
  check_int "delivered" 1 stats.Stats.messages

let sched_deadlock () =
  let body = [ Node.N_recv { src = int_e 1; tag = 3; loc = nloc } ] in
  let l = Layout.replicated [ (1, 2) ] in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
  check "deadlock detected" true
    (match run (node_prog ~arrays body) 2 with
    | _ -> false
    | exception Scheduler.Sim_error (Scheduler.Deadlock _) -> true)

let sched_bcast () =
  let l = { Layout.bounds = [ (1, 8) ]; dist_dim = Some 0; dist = Layout.Block 2 } in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
  let body =
    [ Node.N_if
        { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
          then_ = [ Node.N_assign (Ast.Ref ("x", [ int_e 2 ]), Ast.Real_const 9.0) ];
          else_ = [] ; loc = nloc };
      Node.N_bcast
        { root = int_e 0; payload = Node.P_section ("x", [ (int_e 2, int_e 2, int_e 1) ]);
          site = 1; loc = nloc } ]
  in
  let stats, frames = run (node_prog ~nprocs:4 ~arrays body) 4 in
  check_int "one broadcast" 1 stats.Stats.bcasts;
  for p = 1 to 3 do
    match Hashtbl.find frames.(p) "x" with
    | Interp.Barray obj ->
      check "broadcast value" true
        (Value.to_float (Storage.read ~strict:true obj [| 2 |]) = 9.0)
    | _ -> Alcotest.fail "x missing"
  done

let sched_collective_site_mismatch () =
  (* processors disagree on which collective they reach -> deadlock *)
  let l = Layout.replicated [ (1, 2) ] in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
  let body =
    [ Node.N_if
        { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
          then_ = [ Node.N_bcast { root = int_e 0;
                                   payload = Node.P_scalar "s"; site = 1; loc = nloc } ];
          else_ = [ Node.N_bcast { root = int_e 0;
                                   payload = Node.P_scalar "s"; site = 2; loc = nloc } ] ; loc = nloc } ]
  in
  check "mismatched sites deadlock" true
    (match run (node_prog ~arrays body) 2 with
    | _ -> false
    | exception Scheduler.Sim_error (Scheduler.Deadlock _) -> true)

let sched_remap_moves_data () =
  let block = { Layout.bounds = [ (1, 8) ]; dist_dim = Some 0; dist = Layout.Block 2 } in
  let cyc = { Layout.bounds = [ (1, 8) ]; dist_dim = Some 0; dist = Layout.Cyclic } in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = block } ] in
  let body =
    [ (* every processor writes its own block: x(i) = i *)
      Node.N_do
        { var = "i";
          lo = Ast.Bin (Ast.Add, Ast.Bin (Ast.Mul, int_e 2, myp), int_e 1);
          hi = Ast.Bin (Ast.Add, Ast.Bin (Ast.Mul, int_e 2, myp), int_e 2);
          step = None;
          body = [ Node.N_assign (Ast.Ref ("x", [ Ast.Var "i" ]),
                                  Ast.Funcall ("float", [ Ast.Var "i" ])) ] };
      Node.N_remap { array = "x"; new_layout = cyc; move = true; site = 5; loc = nloc };
      (* after the remap every proc owns {p+1, p+5}; read them *)
      Node.N_assign (Ast.Var "v",
                     Ast.Ref ("x", [ Ast.Bin (Ast.Add, myp, int_e 1) ])) ]
  in
  let stats, frames = run (node_prog ~nprocs:4 ~arrays body) 4 in
  check_int "one physical remap" 1 stats.Stats.remaps;
  check "bytes moved" true (stats.Stats.remap_bytes > 0);
  (* check authoritative gather *)
  match Gather.gather_array ~nprocs:4 frames "x" with
  | Some g ->
    for i = 1 to 8 do
      check "gathered value" true
        (Value.to_float (Storage.get_raw g (Storage.flat_index g [| i |])) = float_of_int i)
    done
  | None -> Alcotest.fail "gather failed"

let sched_mark_only_remap_moves_nothing () =
  let block = { Layout.bounds = [ (1, 8) ]; dist_dim = Some 0; dist = Layout.Block 2 } in
  let cyc = { Layout.bounds = [ (1, 8) ]; dist_dim = Some 0; dist = Layout.Cyclic } in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = block } ] in
  let body = [ Node.N_remap { array = "x"; new_layout = cyc; move = false; site = 1; loc = nloc } ] in
  let stats, _ = run (node_prog ~nprocs:4 ~arrays body) 4 in
  check_int "mark only" 1 stats.Stats.remap_marks;
  check_int "no bytes" 0 stats.Stats.remap_bytes

let sched_determinism () =
  let src = Fd_workloads.Stencil.jacobi1d ~n:64 ~t:3 () in
  let r1 = Fd_core.Driver.run_source src in
  let r2 = Fd_core.Driver.run_source src in
  check "same elapsed" true
    (Stats.elapsed r1.Fd_core.Driver.stats = Stats.elapsed r2.Fd_core.Driver.stats);
  check_int "same messages" r1.Fd_core.Driver.stats.Stats.messages
    r2.Fd_core.Driver.stats.Stats.messages

(* --- Cost model ------------------------------------------------------------ *)

let cost_message () =
  let c = Config.ipsc860 ~nprocs:4 () in
  check "alpha dominates small messages" true
    (Config.message_cost c 8 < 2.0 *. c.Config.alpha);
  check "beta dominates large messages" true
    (Config.message_cost c 1_000_000 > 100.0 *. c.Config.alpha)

let cost_bcast_tree () =
  let c = Config.ipsc860 ~nprocs:8 () in
  let seq = { c with Config.tree_collectives = false } in
  check "tree cheaper than sequential" true
    (Config.bcast_cost c 1024 < Config.bcast_cost seq 1024)

(* --- Sequential interpreter -------------------------------------------------- *)

let seq_basic () =
  let cp =
    Sema.check_source
      "program p\n  real x(4)\n  integer i\n  do i = 1, 4\n    x(i) = float(i) * 2.0\n  enddo\n  print *, x(4)\nend\n"
  in
  let r = Seq_interp.run cp in
  check "output" true (r.Seq_interp.outputs = [ "8" ]);
  let x = List.assoc "x" r.Seq_interp.arrays in
  check "x(2)" true (Value.to_float (Storage.read ~strict:false x [| 2 |]) = 4.0)

let seq_call_by_reference () =
  let cp =
    Sema.check_source
      "program p\n  real x(2)\n  integer n\n  n = 1\n  call f(x, n)\n  print *, x(1), n\nend\nsubroutine f(y, m)\n  real y(2)\n  integer m\n  y(1) = 42.0\n  m = 7\nend\n"
  in
  let r = Seq_interp.run cp in
  check "by-reference effects" true (r.Seq_interp.outputs = [ "42 7" ])

let seq_expression_actual_by_value () =
  let cp =
    Sema.check_source
      "program p\n  integer n\n  n = 1\n  call f(n + 0)\n  print *, n\nend\nsubroutine f(m)\n  integer m\n  m = 9\nend\n"
  in
  let r = Seq_interp.run cp in
  check "expression actual copies" true (r.Seq_interp.outputs = [ "1" ])

let suite =
  [
    Alcotest.test_case "layout block" `Quick l_block_owned;
    Alcotest.test_case "layout ragged block" `Quick l_block_ragged;
    Alcotest.test_case "layout cyclic" `Quick l_cyclic_owned;
    Alcotest.test_case "layout block-cyclic" `Quick l_block_cyclic;
    l_partition_property;
    Alcotest.test_case "storage validity" `Quick st_validity;
    Alcotest.test_case "storage bounds check" `Quick st_bounds_check;
    Alcotest.test_case "storage layout reset" `Quick st_set_layout_resets;
    Alcotest.test_case "scheduler ping-pong" `Quick sched_pingpong;
    Alcotest.test_case "scheduler recv-before-send" `Quick sched_recv_before_send;
    Alcotest.test_case "scheduler deadlock" `Quick sched_deadlock;
    Alcotest.test_case "scheduler broadcast" `Quick sched_bcast;
    Alcotest.test_case "scheduler site mismatch" `Quick sched_collective_site_mismatch;
    Alcotest.test_case "scheduler remap moves data" `Quick sched_remap_moves_data;
    Alcotest.test_case "scheduler mark-only remap" `Quick sched_mark_only_remap_moves_nothing;
    Alcotest.test_case "scheduler determinism" `Quick sched_determinism;
    Alcotest.test_case "cost model messages" `Quick cost_message;
    Alcotest.test_case "cost model tree broadcast" `Quick cost_bcast_tree;
    Alcotest.test_case "seq interp basics" `Quick seq_basic;
    Alcotest.test_case "seq interp by-reference" `Quick seq_call_by_reference;
    Alcotest.test_case "seq interp by-value expr" `Quick seq_expression_actual_by_value;
  ]
