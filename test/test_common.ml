(* COMMON blocks: parsing, the strict layout rules, decomposition
   inheritance through globals (paper Section 5.2: "global variables
   retain their decomposition from the caller"), end-to-end execution
   under every strategy, aliasing restrictions, and fuzzing. *)

open Fd_support
open Fd_frontend
open Fd_core
open Fd_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let strategies = [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ]

let common_program = {|
program p
  parameter (n = 64)
  common /grid/ u, v, nsteps
  real u(64), v(64)
  integer nsteps
  integer i, it
  distribute u(block)
  distribute v(block)
  nsteps = 3
  do i = 1, n
    u(i) = float(i)
    v(i) = 0.0
  enddo
  do it = 1, nsteps
    call sweep()
    call copyback()
  enddo
  print *, u(1), u(n/2), nsteps
end

subroutine sweep()
  parameter (n = 64)
  common /grid/ u, v, nsteps
  real u(64), v(64)
  integer nsteps
  integer i
  do i = 1, n-1
    v(i) = 0.5 * (u(i) + u(i+1))
  enddo
  v(n) = u(n)
end

subroutine copyback()
  parameter (n = 64)
  common /grid/ u, v, nsteps
  real u(64), v(64)
  integer nsteps
  integer i
  do i = 1, n
    u(i) = v(i)
  enddo
end
|}

let rejects name src =
  Alcotest.test_case name `Quick (fun () ->
      match Sema.check_source src with
      | _ -> Alcotest.fail "expected a compile error"
      | exception (Diag.Compile_error _ | Diag.Compile_errors _) -> ())

let c_roundtrip () =
  let cp = Sema.check_source common_program in
  let printed =
    Ast_printer.program_to_string (List.map (fun cu -> cu.Sema.unit_) cp.Sema.units)
  in
  ignore (Sema.check_source printed);
  let st = (List.hd cp.Sema.units).Sema.symtab in
  check "u is common" true (Symtab.is_common st "u");
  check "block name" true (Symtab.common_block st "nsteps" = Some "grid");
  check "local not common" false (Symtab.is_common st "i")

let c_end_to_end () =
  List.iter
    (fun strategy ->
      let opts = { Options.default with Options.strategy } in
      let r = Driver.run_source ~opts common_program in
      check (Options.strategy_name strategy) true (Driver.verified r);
      check "output" true
        (Stats.outputs r.Driver.stats = [ "2.5 33.5 3" ]))
    strategies

let c_inherited_decomposition () =
  (* sweep inherits u's block distribution through the COMMON block and
     partitions its loop accordingly *)
  let compiled = Driver.compile_source common_program in
  let log = compiled.Codegen.state.Codegen.partition_log in
  check "sweep partitioned" true
    (List.exists
       (fun (p, l) ->
         String.equal p "sweep"
         &&
         let contains hay needle =
           let nl = String.length needle and hl = String.length hay in
           let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
           go 0
         in
         contains l "partitioned on")
       log);
  (* and its boundary shift communication is delayed to the caller *)
  let ex = Codegen.export_of compiled.Codegen.state "sweep" in
  check "shift pending on the common array" true
    (List.exists
       (function Exports.P_shift { ps_array = "u"; _ } -> true | _ -> false)
       ex.Exports.ex_comms)

let c_scalar_common_state () =
  (* a common scalar mutated in a callee is visible afterwards *)
  let src =
    "program p\n  common /c/ total\n  real total\n  total = 1.0\n  call bump()\n  call bump()\n  print *, total\nend\nsubroutine bump()\n  common /c/ total\n  real total\n  total = total + 2.0\nend\n"
  in
  List.iter
    (fun strategy ->
      let opts = { Options.default with Options.strategy } in
      let r = Driver.run_source ~opts src in
      check (Options.strategy_name strategy) true (Driver.verified r);
      check "value" true (Stats.outputs r.Driver.stats = [ "5" ]))
    strategies

let c_common_alias_rejected () =
  (* a common array passed as an argument to a procedure that
     redistributes it through the common: forbidden *)
  let src =
    "program p\n  common /c/ x\n  real x(8)\n  integer i\n  distribute x(block)\n  do i = 1, 8\n    x(i) = 1.0\n  enddo\n  call f(x)\nend\nsubroutine f(y)\n  common /c/ x\n  real x(8), y(8)\n  integer i\n  distribute x(cyclic)\n  do i = 1, 8\n    y(i) = x(i)\n  enddo\nend\n"
  in
  check "rejected" true
    (match Driver.compile_source src with
    | _ -> false
    | exception (Diag.Compile_error _ | Diag.Compile_errors _) -> true)

let c_fuzz () =
  let st = Random.State.make [| 0xc0; 0x44; 0x02 |] in
  for _case = 1 to 25 do
    let src = Fd_workloads.Gen.random_source ~commons:true st in
    List.iter
      (fun strategy ->
        let opts = { Options.default with Options.strategy } in
        match Driver.run_source ~opts src with
        | r ->
          if not (Driver.verified r) then
            Alcotest.failf "commons fuzz mismatch under %s:\n%s"
              (Options.strategy_name strategy) src
        | exception e ->
          Alcotest.failf "commons fuzz exception (%s) under %s:\n%s"
            (Printexc.to_string e)
            (Options.strategy_name strategy) src)
      strategies
  done

let suite =
  [
    Alcotest.test_case "common parse/roundtrip/symtab" `Quick c_roundtrip;
    Alcotest.test_case "common end to end" `Quick c_end_to_end;
    Alcotest.test_case "common inherits decomposition" `Quick c_inherited_decomposition;
    Alcotest.test_case "common scalar state" `Quick c_scalar_common_state;
    Alcotest.test_case "common alias + redistribute rejected" `Quick c_common_alias_rejected;
    Alcotest.test_case "fuzz: commons programs" `Slow c_fuzz;
    rejects "mismatched common layouts"
      "program p\n  common /c/ x\n  real x(8)\n  call f()\nend\nsubroutine f()\n  common /c/ x\n  real x(9)\nend\n";
    rejects "common member not declared"
      "program p\n  common /c/ nosuch\nend\n";
    rejects "formal in common"
      "program p\n  real z(4)\n  call f(z)\nend\nsubroutine f(z)\n  real z(4)\n  common /c/ z\nend\n";
    rejects "common not declared everywhere"
      "program p\n  common /c/ x\n  real x(8)\n  call f()\nend\nsubroutine f()\n  real y\n  y = 0.0\nend\n";
    rejects "member in two blocks"
      "program p\n  real x(4)\n  common /a/ x\n  common /b/ x\nend\n";
  ]
