(* Pass-manager tests: pass ordering, artifact dumps, invariant checkers
   over every workload program, deliberate corruption detection, and
   behavioral equivalence of the pipeline with the one-call compile. *)

open Fd_frontend
open Fd_core
open Fd_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let find_pass_exn name =
  match Pipeline.find_pass name with
  | Some p -> p
  | None -> Alcotest.fail ("no pass named " ^ name)

(* --- Pass ordering ------------------------------------------------------- *)

let ordering () =
  Alcotest.(check (list string))
    "pipeline order"
    [ "parse"; "sema"; "cloning"; "acg"; "reaching_decomps"; "side_effects";
      "local_summaries"; "codegen"; "verify"; "cost" ]
    Pipeline.pass_names;
  (* cloning must run before the ACG is built: the compile-time call
     graph is over the cloned program *)
  let pos name =
    let rec go i = function
      | [] -> -1
      | n :: _ when String.equal n name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 Pipeline.pass_names
  in
  check "cloning before acg" true (pos "cloning" < pos "acg");
  check "acg before reaching" true (pos "acg" < pos "reaching_decomps")

(* --- Dump rendering ------------------------------------------------------ *)

let dumps () =
  let ctx = Pipeline.of_source (Fd_workloads.Figures.fig4 ()) in
  let collected = Hashtbl.create 8 in
  let dump ~pass text = Hashtbl.replace collected pass text in
  let report =
    Pipeline.run ~dump_after:[ "acg"; "reaching_decomps"; "cloning"; "codegen" ]
      ~dump ctx
  in
  check_int "one entry per pass" (List.length Pipeline.passes) (List.length report);
  List.iter
    (fun pass ->
      match Hashtbl.find_opt collected pass with
      | Some text -> check (pass ^ " dump non-empty") true (String.length text > 0)
      | None -> Alcotest.fail ("no dump collected for " ^ pass))
    [ "acg"; "reaching_decomps"; "cloning"; "codegen" ];
  (* spot-check content: the ACG dump shows the call sites, the codegen
     dump is the SPMD program *)
  let acg_dump = Hashtbl.find collected "acg" in
  check "acg dump mentions topological order" true
    (contains acg_dump "topological order");
  let cg_dump = Hashtbl.find collected "codegen" in
  check "codegen dump mentions node program" true (String.length cg_dump > 100)

let unknown_dump_rejected () =
  let ctx = Pipeline.of_source (Fd_workloads.Figures.fig1 ()) in
  match Pipeline.run ~dump_after:[ "nosuch" ] ~dump:(fun ~pass:_ _ -> ()) ctx with
  | _ -> Alcotest.fail "unknown pass name accepted"
  | exception Fd_support.Diag.Compile_error _ -> ()

(* --- Invariants hold on every workload program --------------------------- *)

let workloads =
  [ ("fig1", Fd_workloads.Figures.fig1 ());
    ("fig4", Fd_workloads.Figures.fig4 ());
    ("fig15", Fd_workloads.Figures.fig15 ());
    ("jacobi1d", Fd_workloads.Stencil.jacobi1d ());
    ("jacobi2d", Fd_workloads.Stencil.jacobi2d ());
    ("redblack", Fd_workloads.Stencil.redblack ());
    ("multi_array", Fd_workloads.Stencil.multi_array ());
    ("dgefa", Fd_workloads.Dgefa.source ~n:8 ());
    ("adi_dynamic", Fd_workloads.Adi.dynamic ());
    ("adi_static", Fd_workloads.Adi.static_ ()) ]

let verify_workloads () =
  List.iter
    (fun (name, src) ->
      List.iter
        (fun strategy ->
          let opts = { Options.default with Options.strategy } in
          let ctx = Pipeline.of_source ~opts src in
          let report = Pipeline.run ~verify:true ctx in
          let viols = Pass.violations report in
          check
            (Fmt.str "%s/%s invariants (%s)" name
               (Options.strategy_name strategy)
               (String.concat "; " (List.map snd viols)))
            true (viols = []))
        [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ])
    workloads

(* --- Deliberate corruption is caught ------------------------------------- *)

let corrupt_codegen () =
  let ctx = Pipeline.of_source (Fd_workloads.Figures.fig1 ()) in
  ignore (Pipeline.run ctx);
  let compiled = Pass.get_compiled ctx in
  let prog = compiled.Codegen.program in
  (* splice a reference to an undeclared array into the main procedure *)
  let bad = Node.N_assign (Ast.Ref ("bogus$arr", [ Ast.Int_const 1 ]), Ast.Int_const 0) in
  let procs =
    List.map
      (fun (np : Node.nproc) ->
        if String.equal np.Node.np_name prog.Node.n_main then
          { np with Node.np_body = bad :: np.Node.np_body }
        else np)
      prog.Node.n_procs
  in
  ctx.Pass.compiled <-
    Some { compiled with Codegen.program = { prog with Node.n_procs = procs } };
  let p = find_pass_exn "codegen" in
  let viols = p.Pass.p_verify ctx in
  check "undeclared array caught" true
    (List.exists
       (fun m -> contains m "bogus$arr")
       viols)

let corrupt_cloning () =
  let ctx = Pipeline.of_source (Fd_workloads.Figures.fig4 ()) in
  ignore (Pipeline.run ctx);
  let r = Pass.get_clone_result ctx in
  let cp = r.Cloning.cp in
  (* duplicate the first unit's name: cloned procedure names must be unique *)
  let dup = List.hd cp.Sema.units in
  ctx.Pass.clone_result <-
    Some { r with Cloning.cp = { cp with Sema.units = dup :: cp.Sema.units } };
  let p = find_pass_exn "cloning" in
  check "duplicate clone name caught" true (p.Pass.p_verify ctx <> []);
  (* and an origin-map entry pointing at a procedure that is not in the
     cloned program *)
  let ctx2 = Pipeline.of_source (Fd_workloads.Figures.fig4 ()) in
  ignore (Pipeline.run ctx2);
  let r2 = Pass.get_clone_result ctx2 in
  ctx2.Pass.clone_result <-
    Some { r2 with Cloning.origin = Cloning.SM.add "ghost$1" "ghost" r2.Cloning.origin };
  check "dangling origin entry caught" true (p.Pass.p_verify ctx2 <> [])

(* --- Pipeline output equals the one-call compile ------------------------- *)

let equivalence () =
  List.iter
    (fun (name, src) ->
      let cp = Sema.check_source src in
      let direct = Codegen.compile Options.default cp in
      let via_driver = Driver.compile cp in
      check (name ^ " same SPMD program") true
        (String.equal
           (Node.program_to_string direct.Codegen.program)
           (Node.program_to_string via_driver.Codegen.program)))
    [ ("fig1", Fd_workloads.Figures.fig1 ());
      ("fig15", Fd_workloads.Figures.fig15 ());
      ("dgefa", Fd_workloads.Dgefa.source ~n:8 ()) ]

let report_in_run_result () =
  let r = Driver.run_source ~verify:true (Fd_workloads.Figures.fig1 ()) in
  check "run verified" true (Driver.verified r);
  check_int "report has all passes" (List.length Pipeline.passes)
    (List.length r.Driver.report);
  check "all pass invariants ok" true (Pass.report_ok r.Driver.report);
  List.iter
    (fun (e : Pass.entry) ->
      check (e.Pass.e_pass ^ " time non-negative") true (e.Pass.e_time >= 0.0))
    r.Driver.report

let json_report () =
  let ctx = Pipeline.of_source (Fd_workloads.Figures.fig1 ()) in
  let report = Pipeline.run ~verify:true ctx in
  let s = Fd_support.Json.to_string (Pipeline.report_to_json report) in
  check "json mentions every pass" true
    (List.for_all
       (fun n -> contains s (Fmt.str "\"name\":\"%s\"" n))
       Pipeline.pass_names);
  check "json ok flag" true (contains s "\"ok\":true")

let suite =
  [ Alcotest.test_case "pass ordering" `Quick ordering;
    Alcotest.test_case "dump-after rendering" `Quick dumps;
    Alcotest.test_case "unknown dump pass rejected" `Quick unknown_dump_rejected;
    Alcotest.test_case "invariants hold on all workloads" `Quick verify_workloads;
    Alcotest.test_case "corrupted codegen artifact caught" `Quick corrupt_codegen;
    Alcotest.test_case "corrupted cloning artifact caught" `Quick corrupt_cloning;
    Alcotest.test_case "pipeline equals one-call compile" `Quick equivalence;
    Alcotest.test_case "driver threads pass report" `Quick report_in_run_result;
    Alcotest.test_case "report JSON rendering" `Quick json_report ]
