(* Differential soundness oracle for the static SPMD verifier.

   For every committed example — good and bad — under every
   communication strategy, compile once, apply any [!break:] fault
   pragmas, then run BOTH the static verifier and the fault-free
   simulator on the SAME node program.  Soundness: whenever the
   simulator rejects (deadlock, invalid read, runtime fault), the
   verifier must have reported at least one Error finding.
   Precision: the good examples must verify with zero errors and zero
   warnings ([--strict]-clean), and the bad examples must carry the
   finding kinds listed in their [.expect] files. *)

open Fd_core
open Fd_machine
open Fd_verify

let check = Alcotest.check

(* [dune runtest] runs in _build/default/test; [dune exec] from the
   project root.  Both layouts carry the examples next to us. *)
let examples_dir =
  if Sys.file_exists "../examples" then "../examples" else "examples"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let strategies =
  [
    ("interproc", Options.Interproc);
    ("immediate", Options.Immediate);
    ("runtime", Options.Runtime_resolution);
  ]

let good_examples =
  [
    "fig1.fd"; "fig4.fd"; "fig15.fd"; "jacobi1d.fd"; "jacobi2d.fd";
    "redblack.fd"; "multi_array.fd"; "dgefa.fd"; "adi_dynamic.fd";
    "adi_static.fd";
  ]

let bad_examples =
  [
    "bad_tag.fd"; "bad_bounds.fd"; "bad_collective.fd"; "bad_deadsend.fd";
    "bad_undistributed.fd"; "bad_alignless.fd"; "bad_noopremap.fd";
  ]

type outcome = {
  findings : Finding.t list;
  dynamic_error : string option;  (* simulator rejection, if any *)
}

(* Compile [file] under [strategy], apply its fault pragmas, and face
   the verifier and the simulator with the identical program. *)
let face_off ?(nprocs = 4) ~file ~strategy () : outcome =
  let path = Filename.concat examples_dir file in
  let src = read_file path in
  let opts = { Options.default with strategy; nprocs } in
  let cp = Driver.check_source ~file src in
  let compiled = Driver.compile ~opts cp in
  let prog, failed = Break.apply compiled.Codegen.program (Break.scan src) in
  check (Alcotest.list Alcotest.string)
    (file ^ ": every !break: pragma applies")
    [] failed;
  let lint = Lint.run cp in
  let vr = Verify.check_node ~nprocs prog in
  let findings = Finding.sort (lint @ vr.Verify.findings) in
  let config = Driver.machine_config opts in
  let dynamic_error =
    match Scheduler.run config prog with
    | _ -> None
    | exception Scheduler.Sim_error e -> Some (Scheduler.error_to_string e)
    | exception Fd_support.Diag.Compile_error d ->
      Some (Fd_support.Diag.to_string d)
  in
  ignore (Fd_support.Diag.take_warnings ());
  { findings; dynamic_error }

let kinds sev findings =
  List.filter_map
    (fun f ->
      if f.Finding.severity = sev then Some f.Finding.kind else None)
    findings

(* The oracle proper: dynamic rejection implies a static Error. *)
let assert_sound ~file ~sname (o : outcome) =
  match o.dynamic_error with
  | None -> ()
  | Some err ->
    check Alcotest.bool
      (Fmt.str "%s [%s]: simulator rejected (%s) so the verifier must \
                report an error" file sname err)
      true
      (kinds Finding.Error o.findings <> [])

let test_good_sound () =
  List.iter
    (fun file ->
      List.iter
        (fun (sname, strategy) ->
          let o = face_off ~file ~strategy () in
          assert_sound ~file ~sname o;
          check (Alcotest.option Alcotest.string)
            (Fmt.str "%s [%s]: fault-free simulation is clean" file sname)
            None o.dynamic_error;
          check (Alcotest.list Alcotest.string)
            (Fmt.str "%s [%s]: no static errors" file sname)
            []
            (kinds Finding.Error o.findings);
          check (Alcotest.list Alcotest.string)
            (Fmt.str "%s [%s]: no static warnings (--strict clean)" file
               sname)
            []
            (kinds Finding.Warning o.findings))
        strategies)
    good_examples

let expected_kinds file =
  let base = Filename.remove_extension file ^ ".expect" in
  read_file (Filename.concat (Filename.concat examples_dir "bad") base)
  |> String.split_on_char '\n'
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if l = "" then None else Some l)

let test_bad_flagged () =
  List.iter
    (fun file ->
      let expected = expected_kinds file in
      List.iter
        (fun (sname, strategy) ->
          let o = face_off ~file:(Filename.concat "bad" file) ~strategy () in
          assert_sound ~file ~sname o;
          List.iter
            (fun kind ->
              check Alcotest.bool
                (Fmt.str "%s [%s]: finding %s reported" file sname kind)
                true
                (List.exists (fun f -> f.Finding.kind = kind) o.findings))
            expected)
        strategies)
    bad_examples

(* The sabotaged programs that are supposed to die dynamically really
   do: the [.expect] machinery must not pass vacuously. *)
let test_bad_dynamics () =
  let dies = [ "bad_tag.fd"; "bad_bounds.fd"; "bad_collective.fd" ] in
  let survives =
    [
      "bad_deadsend.fd"; "bad_undistributed.fd"; "bad_alignless.fd";
      "bad_noopremap.fd";
    ]
  in
  List.iter
    (fun file ->
      let o =
        face_off ~file:(Filename.concat "bad" file)
          ~strategy:Options.Interproc ()
      in
      check Alcotest.bool
        (Fmt.str "%s: simulator rejects the sabotaged program" file)
        true
        (o.dynamic_error <> None))
    dies;
  List.iter
    (fun file ->
      let o =
        face_off ~file:(Filename.concat "bad" file)
          ~strategy:Options.Interproc ()
      in
      check (Alcotest.option Alcotest.string)
        (Fmt.str "%s: program still runs clean (lint/dead-comm only)" file)
        None o.dynamic_error)
    survives

(* The compressed ensemble domain must not depend on P being small,
   even, or a power of two: re-run the oracle at sampled processor
   counts.  (Oddball P exercises run splits in the lane covers; P = 1
   exercises the all-uniform degenerate case.) *)
let sampled_nprocs = [ 1; 3; 5; 16 ]

let test_sampled_p () =
  List.iter
    (fun nprocs ->
      List.iter
        (fun file ->
          let o = face_off ~nprocs ~file ~strategy:Options.Interproc () in
          assert_sound ~file ~sname:(Fmt.str "interproc P=%d" nprocs) o;
          check (Alcotest.option Alcotest.string)
            (Fmt.str "%s [P=%d]: fault-free simulation is clean" file nprocs)
            None o.dynamic_error;
          check (Alcotest.list Alcotest.string)
            (Fmt.str "%s [P=%d]: no static errors" file nprocs)
            []
            (kinds Finding.Error o.findings))
        good_examples;
      (* at P = 1 the compiler elides communication entirely, so the
         sabotage pragmas have nothing to attach to *)
      if nprocs > 1 then
      List.iter
        (fun file ->
          let expected = expected_kinds file in
          let o =
            face_off ~nprocs
              ~file:(Filename.concat "bad" file)
              ~strategy:Options.Interproc ()
          in
          assert_sound ~file ~sname:(Fmt.str "interproc P=%d" nprocs) o;
          (* the committed expectations describe P = 4; at other P only
             P-independent findings are guaranteed, so just demand the
             oracle holds and deterministic kinds stay flagged *)
          if nprocs = 4 then
            List.iter
              (fun kind ->
                check Alcotest.bool
                  (Fmt.str "%s [P=%d]: finding %s reported" file nprocs kind)
                  true
                  (List.exists (fun f -> f.Finding.kind = kind) o.findings))
              expected)
        bad_examples)
    sampled_nprocs

(* Payload-size oracle: expanding the skeleton's affine send sections
   at each concrete sender pid must reproduce — as a multiset over
   (src, dest, tag) — the exact byte sizes the simulator puts on the
   wire.  A send the walker cannot size statically (wildcard
   destination, unevaluable section, excluded region) drops the file
   from the comparison; the regular stencil examples must never drop. *)
let test_payload_sizes () =
  let must_compare = [ "jacobi1d.fd"; "jacobi2d.fd"; "redblack.fd" ] in
  List.iter
    (fun nprocs ->
      let compared = ref [] in
      List.iter
        (fun file ->
          let path = Filename.concat examples_dir file in
          let src = read_file path in
          let opts =
            { Options.default with strategy = Options.Interproc; nprocs }
          in
          let cp = Driver.check_source ~file src in
          let compiled = Driver.compile ~opts cp in
          let prog = compiled.Codegen.program in
          let branch_oracle = Cost.(oracle (profile_of_seq cp)) in
          let r = Absint.walk ~branch_oracle ~nprocs prog in
          let word = (Driver.machine_config opts).Config.word_bytes in
          let static = ref [] and sizable = ref true in
          List.iter
            (fun (e : Skeleton.event) ->
              match e.Skeleton.e_kind with
              | Skeleton.Ev_send { dest; tag; parts } -> (
                match dest with
                | None -> sizable := false
                | Some d ->
                  for s = e.Skeleton.e_plo to e.Skeleton.e_phi do
                    let elems =
                      List.fold_left
                        (fun acc (p : Skeleton.part) ->
                          match (acc, p.Skeleton.p_triplets) with
                          | Some a, Some trs ->
                            Some
                              (a
                              + List.fold_left
                                  (fun m tr ->
                                    m
                                    * Fd_support.Triplet.count
                                        (Skeleton.triplet_at tr s))
                                  1 trs)
                          | _ -> None)
                        (Some 0) parts
                    in
                    match elems with
                    | Some n ->
                      static :=
                        (s, Skeleton.aff_at d s, tag, n * word) :: !static
                    | None -> sizable := false
                  done)
              | _ -> ())
            r.Absint.events;
          if r.Absint.complete && !sizable then begin
            compared := file :: !compared;
            let config =
              { (Driver.machine_config opts) with Config.record_trace = true }
            in
            let stats, _ = Scheduler.run config prog in
            let sim =
              List.filter_map
                (function
                  | Stats.Ev_send { src; dest; tag; bytes; at = _ } ->
                    Some (src, dest, tag, bytes)
                  | _ -> None)
                (Stats.trace stats)
            in
            let show l =
              List.sort compare l
              |> List.map (fun (s, d, t, b) ->
                     Fmt.str "%d->%d tag=%d bytes=%d" s d t b)
            in
            check (Alcotest.list Alcotest.string)
              (Fmt.str "%s [P=%d]: static payload sizes match the wire" file
                 nprocs)
              (show sim) (show !static)
          end;
          ignore (Fd_support.Diag.take_warnings ()))
        good_examples;
      List.iter
        (fun file ->
          check Alcotest.bool
            (Fmt.str "%s [P=%d]: statically sizable" file nprocs)
            true
            (List.mem file !compared))
        must_compare)
    sampled_nprocs

let suite =
  [
    Alcotest.test_case "good examples: sound and strict-clean" `Slow
      test_good_sound;
    Alcotest.test_case "bad examples: expected findings" `Slow
      test_bad_flagged;
    Alcotest.test_case "bad examples: dynamic ground truth" `Slow
      test_bad_dynamics;
    Alcotest.test_case "differential oracle at sampled P" `Slow
      test_sampled_p;
    Alcotest.test_case "payload sizes at sampled P" `Slow test_payload_sizes;
  ]
