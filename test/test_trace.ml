(* The ensemble tracing & metrics layer: ring-buffer semantics, the
   metrics registry, exporter shapes, and the cross-layer properties —
   trace totals agree with Stats, the dynamic trace refines the static
   verifier's skeleton, and fault-free traces are bit-identical across
   runs. *)

open Fd_core
open Fd_machine
module Tr = Fd_trace.Trace
module Metrics = Fd_trace.Metrics
module Export = Fd_trace.Export

let prop ?(count = 60) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- Ring buffer --------------------------------------------------------- *)

let ring_basics () =
  let t = Tr.create ~capacity:8 () in
  Alcotest.(check int) "capacity" 8 (Tr.capacity t);
  for i = 0 to 4 do
    Tr.emit t ~kind:Tr.Send ~at:(float_of_int i) ~proc:i ~peer:0 ~tag:1 ()
  done;
  Alcotest.(check int) "total" 5 (Tr.total t);
  Alcotest.(check int) "length" 5 (Tr.length t);
  Alcotest.(check int) "dropped" 0 (Tr.dropped t);
  let procs = List.map (fun e -> e.Tr.proc) (Tr.to_list t) in
  Alcotest.(check (list int)) "chronological" [ 0; 1; 2; 3; 4 ] procs;
  Tr.clear t;
  Alcotest.(check int) "cleared" 0 (Tr.total t)

let ring_wraps () =
  let t = Tr.create ~capacity:4 () in
  for i = 0 to 9 do
    Tr.emit t ~kind:Tr.Send ~at:(float_of_int i) ~proc:i ()
  done;
  Alcotest.(check int) "total counts all emissions" 10 (Tr.total t);
  Alcotest.(check int) "length capped" 4 (Tr.length t);
  Alcotest.(check int) "dropped = overwritten" 6 (Tr.dropped t);
  let procs = List.map (fun e -> e.Tr.proc) (Tr.to_list t) in
  Alcotest.(check (list int)) "retains the newest window" [ 6; 7; 8; 9 ] procs

let ring_count () =
  let t = Tr.create () in
  Tr.emit t ~kind:Tr.Send ~at:0.0 ~proc:0 ();
  Tr.emit t ~kind:Tr.Recv ~at:1.0 ~proc:1 ();
  Tr.emit t ~kind:Tr.Send ~at:2.0 ~proc:0 ();
  Alcotest.(check int) "count Send" 2 (Tr.count t ~kind:Tr.Send);
  Alcotest.(check int) "count Recv" 1 (Tr.count t ~kind:Tr.Recv);
  Alcotest.(check int) "count Span" 0 (Tr.count t ~kind:Tr.Span)

(* --- Metrics registry ----------------------------------------------------- *)

let metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "messages" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 c.Metrics.c_value;
  let c' = Metrics.counter m "messages" in
  Metrics.incr c';
  Alcotest.(check int) "find-or-register shares state" 6 c.Metrics.c_value;
  let g = Metrics.gauge m "elapsed" in
  Metrics.set g 2.5;
  let h = Metrics.histogram m "wait" ~bounds:[| 1.0; 10.0 |] in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 100.0; 2.0 ];
  Alcotest.(check int) "histogram count" 4 h.Metrics.h_count;
  Alcotest.(check (float 1e-9)) "histogram mean" 26.875 (Metrics.mean h);
  Alcotest.(check (list int))
    "bucket counts (le 1, le 10, inf)" [ 1; 2; 1 ]
    (Array.to_list h.Metrics.h_counts);
  (match Metrics.find m "nope" with
  | None -> ()
  | Some _ -> Alcotest.fail "found an unregistered metric");
  Alcotest.check_raises "kind clash" (Invalid_argument "Metrics: messages is not a gauge")
    (fun () -> ignore (Metrics.gauge m "messages"));
  let names = List.map fst (Metrics.items m) in
  Alcotest.(check (list string))
    "registration order" [ "messages"; "elapsed"; "wait" ] names;
  match Metrics.to_json m with
  | Fd_support.Json.Obj [ ("messages", Fd_support.Json.Int 6);
                          ("elapsed", Fd_support.Json.Float 2.5);
                          ("wait", Fd_support.Json.Obj _) ] -> ()
  | j -> Alcotest.failf "unexpected metrics json: %s" (Fd_support.Json.to_string j)

(* --- Traced runs ---------------------------------------------------------- *)

let run_traced ?(nprocs = 4) ?(domains = 1) ?(strategy = Options.Interproc) src =
  let tr = Tr.create () in
  let opts = { Options.default with Options.nprocs; strategy } in
  let machine = Config.make ~domains ~nprocs ~trace:tr () in
  let r = Driver.run_source ~opts ~machine src in
  (tr, r)

let pivot_src =
  (* one nearest-neighbour shift: every interior boundary sends *)
  "program t\n\
  \  parameter (n = 32)\n\
  \  real a(32), b(32)\n\
  \  integer i\n\
  \  distribute a(block)\n\
  \  distribute b(block)\n\
  \  do i = 1, n\n\
  \    a(i) = float(i)\n\
  \    b(i) = 0.0\n\
  \  enddo\n\
  \  do i = 1, n - 1\n\
  \    b(i) = a(i+1)\n\
  \  enddo\n\
  \  print *, b(1)\n\
  end\n"

let trace_agrees_with_stats_on_shift () =
  let tr, r = run_traced pivot_src in
  let stats = r.Driver.stats in
  Alcotest.(check bool) "verified" true (Driver.verified r);
  Alcotest.(check int) "sends = Stats.messages" stats.Stats.messages
    (Tr.count tr ~kind:Tr.Send);
  Alcotest.(check int) "recvs = Stats.messages" stats.Stats.messages
    (Tr.count tr ~kind:Tr.Recv);
  let sent_bytes = Tr.fold tr 0 (fun acc e ->
      if e.Tr.kind = Tr.Send then acc + e.Tr.bytes else acc)
  in
  Alcotest.(check int) "send bytes = Stats.message_bytes"
    stats.Stats.message_bytes sent_bytes

let chrome_export_shape () =
  let tr, _r = run_traced pivot_src in
  match Export.chrome ~nprocs:4 tr with
  | Fd_support.Json.Obj fields ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (Fd_support.Json.List evs) ->
      Alcotest.(check bool) "has events" true (List.length evs > 4);
      List.iter
        (fun ev ->
          match ev with
          | Fd_support.Json.Obj f ->
            let has k = List.mem_assoc k f in
            Alcotest.(check bool) "name/ph/pid/tid present" true
              (has "name" && has "ph" && has "pid" && has "tid")
          | _ -> Alcotest.fail "traceEvents entry is not an object")
        evs
    | _ -> Alcotest.fail "no traceEvents list")
  | j -> Alcotest.failf "chrome export not an object: %s" (Fd_support.Json.to_string j)

let matrix_symmetry () =
  let tr, r = run_traced pivot_src in
  let m = Export.matrix ~nprocs:4 tr in
  let total = Array.fold_left (fun a row -> Array.fold_left ( + ) a row) 0 m.Export.m_msgs in
  Alcotest.(check int) "matrix total = Stats.messages" r.Driver.stats.Stats.messages total;
  (* the shift communicates only between lattice neighbours *)
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun d n -> if n > 0 then Alcotest.(check int) "neighbour-only" 1 (abs (s - d)))
        row)
    m.Export.m_msgs

let summary_totals () =
  let tr, r = run_traced pivot_src in
  let stats = r.Driver.stats in
  let rows =
    Export.summary ~nprocs:4 ~busy:stats.Stats.busy
      ~elapsed:(Stats.elapsed stats) tr
  in
  let sends = List.fold_left (fun a s -> a + s.Export.s_sends) 0 rows in
  let bytes_out = List.fold_left (fun a s -> a + s.Export.s_bytes_out) 0 rows in
  let bytes_in = List.fold_left (fun a s -> a + s.Export.s_bytes_in) 0 rows in
  Alcotest.(check int) "summary sends" stats.Stats.messages sends;
  Alcotest.(check int) "bytes out = bytes in" bytes_out bytes_in

let stats_to_metrics () =
  let tr, r = run_traced pivot_src in
  let stats = r.Driver.stats in
  let m = Stats.to_metrics stats in
  Export.observe m tr;
  (match Metrics.find m "messages" with
  | Some (Metrics.Counter c) ->
    Alcotest.(check int) "messages counter" stats.Stats.messages c.Metrics.c_value
  | _ -> Alcotest.fail "no messages counter");
  (match Metrics.find m "recv_wait_seconds" with
  | Some (Metrics.Histogram h) ->
    Alcotest.(check int) "one wait sample per recv" stats.Stats.messages
      h.Metrics.h_count
  | _ -> Alcotest.fail "no recv_wait histogram");
  match Metrics.find m "message_size_bytes" with
  | Some (Metrics.Histogram h) ->
    Alcotest.(check (float 1e-9)) "byte histogram sums to Stats"
      (float_of_int stats.Stats.message_bytes)
      h.Metrics.h_sum
  | _ -> Alcotest.fail "no message_bytes histogram"

(* --- Properties over generated programs ----------------------------------- *)

let strategies =
  [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ]

let seed_gen = QCheck2.Gen.int_range 0 100_000

let src_of_seed ?(two_d = false) seed =
  let st = Random.State.make [| seed |] in
  if two_d then Fd_workloads.Gen.random_source2d st
  else Fd_workloads.Gen.random_source st

(* Send/recv multisets: on a reliable network every message is delivered
   exactly once, so the recv multiset keyed by (src, dest, tag, seq,
   bytes) must equal the send multiset, and both totals must equal
   Stats.messages. *)
let replay_matches_stats seed =
  let src = src_of_seed seed in
  List.for_all
    (fun strategy ->
      let tr, r = run_traced ~strategy src in
      let sends = Hashtbl.create 64 and recvs = Hashtbl.create 64 in
      let bump tbl key =
        Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
      in
      Tr.iter tr (fun e ->
          match e.Tr.kind with
          | Tr.Send -> bump sends (e.Tr.proc, e.Tr.peer, e.Tr.tag, e.Tr.seq, e.Tr.bytes)
          | Tr.Recv -> bump recvs (e.Tr.peer, e.Tr.proc, e.Tr.tag, e.Tr.seq, e.Tr.bytes)
          | _ -> ());
      let sorted tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
      Driver.verified r
      && Tr.count tr ~kind:Tr.Send = r.Driver.stats.Stats.messages
      && sorted sends = sorted recvs)
    strategies

(* The dynamic trace refines the static verifier's skeleton: every traced
   send's (proc, dest, tag) is present among the skeleton's send events
   (dest None and tags the walker marked fuzzy act as wildcards).  Only
   checked when the abstract walk covered the whole program. *)
let trace_within_skeleton seed =
  let src = src_of_seed seed in
  List.for_all
    (fun strategy ->
      let opts = { Options.default with Options.strategy } in
      let compiled = Driver.compile_source ~opts src in
      let w = Fd_verify.Absint.walk ~nprocs:4 compiled.Codegen.program in
      (not w.Fd_verify.Absint.complete)
      ||
      let skel_sends =
        List.filter_map
          (fun (e : Fd_verify.Skeleton.event) ->
            match e.Fd_verify.Skeleton.e_kind with
            | Fd_verify.Skeleton.Ev_send { dest; tag; _ } ->
              Some (e.Fd_verify.Skeleton.e_plo, e.Fd_verify.Skeleton.e_phi,
                    dest, tag)
            | _ -> None)
          w.Fd_verify.Absint.events
      in
      let fuzzy = w.Fd_verify.Absint.fuzzy_tags in
      let tr, r = run_traced ~strategy src in
      Driver.verified r
      && Tr.fold tr true (fun ok e ->
             ok
             &&
             match e.Tr.kind with
             | Tr.Send ->
               List.exists
                 (fun (plo, phi, dest, tag) ->
                   plo <= e.Tr.proc && e.Tr.proc <= phi
                   && (match dest with
                      | None -> true
                      | Some d ->
                        Fd_verify.Skeleton.aff_at d e.Tr.proc = e.Tr.peer)
                   && (tag = e.Tr.tag || Hashtbl.mem fuzzy tag))
                 skel_sends
             | _ -> true))
    strategies

(* Fault-free simulation is deterministic: two runs of the same program
   produce traces identical in every field — including across scheduler
   domain counts (the parallel scheduler claims bit-identity). *)
let domains_gen = QCheck2.Gen.(pair (int_range 0 100_000) (oneofl [ 1; 2; 4; 8 ]))

let deterministic_without_faults (seed, domains) =
  let src = src_of_seed seed in
  let tr1, r1 = run_traced src in
  let tr2, r2 = run_traced ~domains src in
  Driver.verified r1 && Driver.verified r2
  && Tr.total tr1 = Tr.total tr2
  && Tr.to_list tr1 = Tr.to_list tr2

let deterministic_2d (seed, domains) =
  let src = src_of_seed ~two_d:true seed in
  let tr1, r1 = run_traced src in
  let tr2, r2 = run_traced ~domains src in
  Driver.verified r1 && Driver.verified r2 && Tr.to_list tr1 = Tr.to_list tr2

(* Pipeline spans: one per pass, in pass order. *)
let pipeline_spans () =
  let tr = Tr.create () in
  let opts = Options.default in
  let ctx = Pipeline.of_source ~opts pivot_src in
  let _report = Pipeline.run ~tracer:tr ctx in
  let spans =
    List.filter_map
      (fun e -> if e.Tr.kind = Tr.Span then Some e.Tr.label else None)
      (Tr.to_list tr)
  in
  Alcotest.(check (list string)) "one span per pass, in order"
    Pipeline.pass_names spans

let suite =
  [
    Alcotest.test_case "ring: basics" `Quick ring_basics;
    Alcotest.test_case "ring: wrap-around retains newest" `Quick ring_wraps;
    Alcotest.test_case "ring: count by kind" `Quick ring_count;
    Alcotest.test_case "metrics: registry semantics" `Quick metrics_registry;
    Alcotest.test_case "trace totals agree with Stats" `Quick
      trace_agrees_with_stats_on_shift;
    Alcotest.test_case "chrome export shape" `Quick chrome_export_shape;
    Alcotest.test_case "communication matrix" `Quick matrix_symmetry;
    Alcotest.test_case "per-processor summary" `Quick summary_totals;
    Alcotest.test_case "Stats.to_metrics + trace histograms" `Quick
      stats_to_metrics;
    Alcotest.test_case "pipeline pass spans" `Quick pipeline_spans;
    prop ~count:25 "generated: send/recv multisets match Stats" seed_gen
      replay_matches_stats;
    prop ~count:15 "generated: trace within static skeleton" seed_gen
      trace_within_skeleton;
    prop ~count:20 "generated: fault-free traces bit-identical across domains"
      domains_gen deterministic_without_faults;
    prop ~count:10 "generated 2-D: traces bit-identical across domains"
      domains_gen deterministic_2d;
  ]
