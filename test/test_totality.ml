(* Totality of the pipeline: multi-error recovery, crash containment,
   resource budgets, the exit-code table, and the fuzz harness.

   The acceptance bar from the robustness issue, as unit tests:
   - a corpus file with several distinct frontend errors yields ALL of
     them from one check invocation;
   - an injected [failwith]-style site surfaces as a pass-attributed
     internal diagnostic (exit 4), never a bare backtrace;
   - exhausted budgets degrade to partial results, not aborts;
   - the CLI honours the documented exit-code table end to end;
   - a mini fuzz campaign runs with zero failures. *)

open Fd_support
open Fd_core
open Fd_machine

let check = Alcotest.check

let examples_dir =
  if Sys.file_exists "../examples" then "../examples" else "examples"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let bad file = Filename.concat (Filename.concat examples_dir "bad") file

(* --- multi-error recovery ----------------------------------------------- *)

(* All frontend errors of a file, batched by one check_source call.
   Without an explicit sink, parse and sema diagnostics accumulate and
   raise together as one [Compile_errors]. *)
let diags_of file =
  match Driver.check_source ~file (read_file file) with
  | _ -> Alcotest.failf "%s: expected compile errors" file
  | exception Diag.Compile_errors ds -> ds
  | exception Diag.Compile_error d -> [ d ]

let test_syntax_recovery () =
  let ds = diags_of (bad "bad_syntax.fd") in
  check Alcotest.bool "at least two syntax diagnostics" true
    (List.length ds >= 2);
  List.iter
    (fun (d : Diag.t) ->
      check Alcotest.bool "located" true (d.Diag.loc <> Loc.none))
    ds;
  let lines = List.map (fun (d : Diag.t) -> d.Diag.loc.Loc.line) ds in
  check Alcotest.bool "both error sites reported (lines 10 and 12)" true
    (List.mem 10 lines && List.mem 12 lines)

let test_sema_recovery () =
  let ds = diags_of (bad "bad_sema.fd") in
  check Alcotest.bool "at least three semantic diagnostics" true
    (List.length ds >= 3);
  let has needle =
    List.exists
      (fun (d : Diag.t) ->
        let msg = d.Diag.message in
        let len = String.length needle in
        let rec scan i =
          i + len <= String.length msg
          && (String.sub msg i len = needle || scan (i + 1))
        in
        scan 0)
      ds
  in
  check Alcotest.bool "rank mismatch reported" true (has "rank 2");
  check Alcotest.bool "undeclared array reported" true (has "unknown array");
  check Alcotest.bool "unknown subroutine reported" true
    (has "unknown subroutine")

(* --- crash containment --------------------------------------------------- *)

let test_protect_table () =
  (match Totality.protect (fun () -> 0) with
  | Totality.Exit 0 -> ()
  | o -> Alcotest.failf "expected Exit 0, got code %d" (Totality.code o));
  let d = Diag.make Diag.Error Loc.none "boom" in
  (match Totality.protect (fun () -> raise (Diag.Compile_error d)) with
  | Totality.Diagnostics [ _ ] as o ->
    check Alcotest.int "compile error -> exit 2" Totality.compile_failed
      (Totality.code o)
  | _ -> Alcotest.fail "expected Diagnostics");
  (match
     Totality.protect (fun () -> raise (Diag.Compile_errors [ d; d; d ]))
   with
  | Totality.Diagnostics ds ->
    check Alcotest.int "all batched diagnostics survive protect" 3
      (List.length ds)
  | _ -> Alcotest.fail "expected Diagnostics");
  match
    Totality.protect (fun () ->
        raise (Scheduler.Sim_error (Scheduler.Runtime_error "blew up")))
  with
  | Totality.Sim_failed _ as o ->
    check Alcotest.int "sim error -> exit 3" Totality.sim_failed
      (Totality.code o)
  | _ -> Alcotest.fail "expected Sim_failed"

(* The acceptance criterion: an injected internal failure (the converted
   failwith/assert-false idiom) is contained as a pass-attributed crash
   report with exit code 4. *)
let test_injected_internal () =
  (match
     Totality.protect (fun () -> Diag.internal ~pass:"codegen" "injected bug")
   with
  | Totality.Crash c as o ->
    check (Alcotest.option Alcotest.string) "attributed to its pass"
      (Some "codegen") c.Totality.c_pass;
    check Alcotest.bool "message survives" true
      (c.Totality.c_message = "injected bug");
    check Alcotest.int "crash -> exit 4" Totality.crashed (Totality.code o);
    (* the report must render without raising *)
    ignore (Fmt.str "%a" Totality.pp_crash c);
    ignore (Json.to_string (Totality.crash_to_json c))
  | _ -> Alcotest.fail "expected Crash");
  match Totality.protect (fun () -> failwith "residual raise") with
  | Totality.Crash c ->
    check (Alcotest.option Alcotest.string) "residual raise has no pass" None
      c.Totality.c_pass
  | _ -> Alcotest.fail "expected Crash"

(* --- resource budgets ---------------------------------------------------- *)

let test_budget_ticks () =
  let st = Budget.start (Budget.make ~steps:10 ()) in
  check Alcotest.bool "within budget" true (Budget.tick_step st 10);
  check Alcotest.bool "over budget" false (Budget.tick_step st 1);
  check Alcotest.bool "latched" false (Budget.ok st);
  (match Budget.exhausted st with
  | Some r ->
    check Alcotest.bool "reason names the cap" true
      (r = "step budget exhausted (10)")
  | None -> Alcotest.fail "expected an exhaustion reason");
  let ev = Budget.start (Budget.make ~events:2 ()) in
  check Alcotest.bool "events within" true (Budget.tick_event ev 2);
  check Alcotest.bool "events over" false (Budget.tick_event ev 1);
  check Alcotest.bool "unlimited is unlimited" true
    (Budget.is_unlimited Budget.unlimited);
  let free = Budget.start Budget.unlimited in
  check Alcotest.bool "unlimited never trips" true
    (Budget.tick_step free 1_000_000)

let jacobi = Filename.concat examples_dir "jacobi1d.fd"

let test_budget_partial_run () =
  let src = read_file jacobi in
  (* Tiny budget: the simulation must stop early with a partial result,
     not raise — and the full run must not be partial. *)
  let r =
    Driver.run_source ~budget:(Budget.make ~steps:50 ()) ~file:jacobi src
  in
  (match r.Driver.partial with
  | Some reason ->
    check Alcotest.bool "reason mentions the step cap" true
      (reason = "step budget exhausted (50)")
  | None -> Alcotest.fail "expected a partial result");
  check Alcotest.bool "partial run still counts as verified" true
    (Driver.verified r);
  let full = Driver.run_source ~file:jacobi src in
  check (Alcotest.option Alcotest.string) "unbudgeted run is complete" None
    full.Driver.partial

let test_budget_partial_check () =
  let src = read_file jacobi in
  let compiled = Driver.compile_source ~file:jacobi src in
  let vr =
    Fd_verify.Verify.check_node
      ~budget:(Budget.make ~steps:5 ())
      ~nprocs:4 compiled.Codegen.program
  in
  check Alcotest.bool "budget exhaustion yields an Info finding" true
    (List.exists
       (fun (f : Fd_verify.Finding.t) ->
         f.Fd_verify.Finding.kind = "budget-exhausted"
         && f.Fd_verify.Finding.severity = Fd_verify.Finding.Info)
       vr.Fd_verify.Verify.findings);
  let full =
    Fd_verify.Verify.check_node ~nprocs:4 compiled.Codegen.program
  in
  check Alcotest.bool "unbudgeted check has no exhaustion finding" true
    (not
       (List.exists
          (fun (f : Fd_verify.Finding.t) ->
            f.Fd_verify.Finding.kind = "budget-exhausted")
          full.Fd_verify.Verify.findings))

(* --- the exit-code table, end to end ------------------------------------- *)

(* The test rule depends on the built binary; under [dune runtest] the
   cwd is _build/default/test, under [dune exec] the project root. *)
let fdc_exe =
  if Sys.file_exists "../bin/fdc.exe" then "../bin/fdc.exe"
  else "_build/default/bin/fdc.exe"

let run_fdc args = Sys.command (Fmt.str "%s %s >/dev/null 2>&1" fdc_exe args)

let test_cli_exit_codes () =
  let ex name = Filename.concat examples_dir name in
  check Alcotest.int "check clean -> 0" 0 (run_fdc ("check " ^ ex "fig1.fd"));
  check Alcotest.int "spmd -> 0" 0 (run_fdc ("spmd " ^ ex "fig1.fd"));
  check Alcotest.int "run clean -> 0" 0 (run_fdc ("run " ^ ex "jacobi1d.fd"));
  check Alcotest.int "check finding -> 1" 1
    (run_fdc ("check --strict " ^ bad "bad_tag.fd"));
  check Alcotest.int "check syntax errors -> 2" 2
    (run_fdc ("check " ^ bad "bad_syntax.fd"));
  check Alcotest.int "check sema errors -> 2" 2
    (run_fdc ("check " ^ bad "bad_sema.fd"));
  check Alcotest.int "run on bad source -> 2" 2
    (run_fdc ("run " ^ bad "bad_sema.fd"));
  check Alcotest.int "simulation failure -> 3" 3
    (run_fdc ("run --drop 1.0 " ^ ex "fig1.fd"));
  check Alcotest.int "budgeted run stays 0 (partial, not abort)" 0
    (run_fdc ("run --budget-steps 50 " ^ ex "jacobi1d.fd"));
  check Alcotest.int "fuzz clean campaign -> 0" 0
    (run_fdc "fuzz --iters 3 --seed 1")

(* --- fuzz subsystem ------------------------------------------------------ *)

let test_mutate_deterministic () =
  let src = read_file jacobi in
  let m seed = Fd_fuzz.Mutate.mutate (Random.State.make [| seed |]) ~n:2 src in
  check Alcotest.string "same seed, same mutant" (m 42) (m 42);
  check Alcotest.bool "mutation changes the source" true (m 42 <> src);
  check Alcotest.bool "mutator catalogue is non-trivial" true
    (List.length Fd_fuzz.Mutate.mutator_names >= 8)

let test_shrink () =
  let src = String.concat "\n" [ "aaa"; "bbb"; "NEEDLE"; "ccc"; "ddd" ] in
  let keep s =
    List.exists (fun l -> l = "NEEDLE") (String.split_on_char '\n' s)
  in
  let out = Fd_fuzz.Shrink.shrink ~keep src in
  check Alcotest.bool "failure preserved" true (keep out);
  check Alcotest.int "shrunk to the single relevant line" 1
    (List.length
       (List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' out)))

let test_gen_case_deterministic () =
  let s1, g1 = Fd_fuzz.Harness.gen_case 7 in
  let s2, g2 = Fd_fuzz.Harness.gen_case 7 in
  check Alcotest.string "seed fully determines the program" s1 s2;
  check Alcotest.bool "seed fully determines the strategy" true (g1 = g2)

let test_mini_campaign () =
  let r = Fd_fuzz.Harness.campaign ~iters:25 ~seed:101 () in
  check Alcotest.int "all cases executed" 25 r.Fd_fuzz.Harness.iters;
  check Alcotest.int "classified exhaustively" 25
    (r.Fd_fuzz.Harness.accepted + r.Fd_fuzz.Harness.rejected);
  (match r.Fd_fuzz.Harness.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "seed %d: %s (%s)\n%s" f.Fd_fuzz.Harness.f_seed
      f.Fd_fuzz.Harness.f_kind f.Fd_fuzz.Harness.f_detail
      f.Fd_fuzz.Harness.f_src);
  check Alcotest.bool "throughput measured" true
    (r.Fd_fuzz.Harness.execs_per_sec > 0.0)

let suite =
  [
    Alcotest.test_case "syntax recovery: all errors in one run" `Quick
      test_syntax_recovery;
    Alcotest.test_case "sema recovery: all errors in one run" `Quick
      test_sema_recovery;
    Alcotest.test_case "protect classifies every escape" `Quick
      test_protect_table;
    Alcotest.test_case "injected internal error is contained" `Quick
      test_injected_internal;
    Alcotest.test_case "budget tick semantics" `Quick test_budget_ticks;
    Alcotest.test_case "budgeted simulation degrades to partial" `Quick
      test_budget_partial_run;
    Alcotest.test_case "budgeted verification degrades to Info" `Quick
      test_budget_partial_check;
    Alcotest.test_case "CLI exit-code table" `Slow test_cli_exit_codes;
    Alcotest.test_case "mutators are seed-deterministic" `Quick
      test_mutate_deterministic;
    Alcotest.test_case "shrinker minimizes while preserving failure" `Quick
      test_shrink;
    Alcotest.test_case "gen_case is seed-deterministic" `Quick
      test_gen_case_deterministic;
    Alcotest.test_case "mini fuzz campaign is clean" `Slow test_mini_campaign;
  ]
