(* Fault injection and resilient-protocol tests: deterministic fault
   plans, ack/retransmit recovery, sequence-number dedup, the
   differential oracle against sequential execution, structured failure
   diagnostics (wait-for graphs, strict-validity naming, watchdog), and
   the zero-overhead-when-disabled regression. *)

open Fd_support
open Fd_frontend
open Fd_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains s sub =
  try
    ignore (Str.search_forward (Str.regexp_string sub) s 0);
    true
  with Not_found -> false

let int_e n = Ast.Int_const n
let nloc = Fd_support.Loc.none
let myp = Ast.Var "my$p"

let node_prog ?(nprocs = 2) ~arrays body =
  { Node.n_main = "m"; n_nprocs = nprocs;
    n_common_arrays = []; n_common_scalars = [];
    n_procs =
      [ { Node.np_name = "m"; np_formals = []; np_arrays = arrays;
          np_scalars = [];
          np_body = Node.N_assign (myp, Ast.Funcall ("myproc", [])) :: body } ] }

(* p0 sends x(1:4) to p1 under tag 1; p1 receives *)
let pingpong_prog () =
  let l = { Layout.bounds = [ (1, 8) ]; dist_dim = Some 0; dist = Layout.Block 4 } in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
  node_prog ~arrays
    [ Node.N_if
        { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
          then_ =
            [ Node.N_do
                { var = "i"; lo = int_e 1; hi = int_e 4; step = None;
                  body = [ Node.N_assign (Ast.Ref ("x", [ Ast.Var "i" ]),
                                          Ast.Funcall ("float", [ Ast.Var "i" ])) ] };
              Node.N_send { dest = int_e 1;
                            parts = [ ("x", [ (int_e 1, int_e 4, int_e 1) ]) ];
                            tag = 1; loc = nloc } ];
          else_ = [ Node.N_recv { src = int_e 0; tag = 1; loc = nloc } ] ; loc = nloc } ]

let run_with ?faults prog nprocs =
  Scheduler.run (Config.make ~nprocs ?faults ()) prog

(* --- Fault plan primitives -------------------------------------------- *)

let fault_plan_deterministic () =
  let plan = Fault.make ~seed:3 ~drop:0.3 ~dup:0.2 ~delay:1e-4 ~reorder:0.1 () in
  for seq = 0 to 20 do
    let d1 = Fault.deliver plan ~msg_cost:1e-4 ~src:0 ~dest:1 ~tag:5 ~seq in
    let d2 = Fault.deliver plan ~msg_cost:1e-4 ~src:0 ~dest:1 ~tag:5 ~seq in
    check "same decision" true (d1 = d2)
  done;
  (* different seeds decide differently somewhere over a long stream *)
  let plan' = { plan with Fault.seed = 4 } in
  let differs = ref false in
  for seq = 0 to 200 do
    let d1 = Fault.deliver plan ~msg_cost:1e-4 ~src:0 ~dest:1 ~tag:5 ~seq in
    let d2 = Fault.deliver plan' ~msg_cost:1e-4 ~src:0 ~dest:1 ~tag:5 ~seq in
    if d1 <> d2 then differs := true
  done;
  check "seeds differ" true !differs

let fault_plan_selectors () =
  let plan = Fault.make ~seed:1 ~drop:1.0 ~max_retries:0 ~tags:[ 7 ] ()
  in
  let hit = Fault.deliver plan ~msg_cost:1e-4 ~src:0 ~dest:1 ~tag:7 ~seq:0 in
  let miss = Fault.deliver plan ~msg_cost:1e-4 ~src:0 ~dest:1 ~tag:8 ~seq:0 in
  check "selected tag faulted" true hit.Fault.lost;
  check "other tag clean" false miss.Fault.lost;
  check_int "clean delivery injects nothing" 0 miss.Fault.injected

let fault_backoff_grows () =
  (* with drop just under 1 the added delay is the sum of exponentially
     growing timeouts: retries must cost more than the first timeout *)
  let plan = Fault.make ~seed:9 ~drop:0.9 ~rto:1e-3 ~backoff:2.0 ~max_retries:12 () in
  let rec find seq =
    if seq > 500 then Alcotest.fail "no multi-retry delivery found"
    else
      let d = Fault.deliver plan ~msg_cost:0.0 ~src:0 ~dest:1 ~tag:1 ~seq in
      if (not d.Fault.lost) && d.Fault.attempts >= 3 then d else find (seq + 1)
  in
  let d = find 0 in
  (* attempts >= 3 means timeouts 1ms + 2ms (+...) elapsed *)
  check "backoff accumulates" true (d.Fault.added_delay >= 3e-3)

(* --- Protocol recovery under the scheduler ------------------------------ *)

let sched_recovers_from_drops () =
  let faults = Fault.make ~seed:5 ~drop:0.5 () in
  let stats, frames = run_with ~faults (pingpong_prog ()) 2 in
  (match Hashtbl.find frames.(1) "x" with
  | Interp.Barray obj ->
    check "value arrived despite drops" true
      (Value.to_float (Storage.read ~strict:true obj [| 3 |]) = 3.0)
  | _ -> Alcotest.fail "x missing");
  check_int "still one logical message" 1 stats.Stats.messages

let sched_dedups_duplicates () =
  let faults = Fault.make ~seed:5 ~dup:1.0 () in
  let stats, frames = run_with ~faults (pingpong_prog ()) 2 in
  check_int "duplicate copy dropped" 1 stats.Stats.duplicates_dropped;
  check "faults counted" true (stats.Stats.faults_injected >= 1);
  match Hashtbl.find frames.(1) "x" with
  | Interp.Barray obj ->
    check "payload correct" true
      (Value.to_float (Storage.read ~strict:true obj [| 2 |]) = 2.0)
  | _ -> Alcotest.fail "x missing"

let sched_retry_slows_clock () =
  (* recovery latency must be charged to virtual time: a lossy network
     is slower than a clean one and the delay is accounted in stats *)
  let clean, _ = run_with (pingpong_prog ()) 2 in
  let faults = Fault.make ~seed:2 ~drop:0.9 ~max_retries:20 () in
  let lossy, _ = run_with ~faults (pingpong_prog ()) 2 in
  check "some retransmits happened" true (lossy.Stats.retransmits > 0);
  check "delay accounted" true (lossy.Stats.fault_delay > 0.0);
  check "lossy run is slower" true
    (Stats.elapsed lossy > Stats.elapsed clean)

let sched_lost_message_is_structured () =
  (* drop everything, no retries left: the receiver starves and the run
     must end in a Deadlock carrying the lost message, not a hang *)
  let faults = Fault.make ~seed:1 ~drop:1.0 ~max_retries:2 () in
  match run_with ~faults (pingpong_prog ()) 2 with
  | _ -> Alcotest.fail "expected Sim_error"
  | exception Scheduler.Sim_error (Scheduler.Deadlock wf) ->
    check_int "one lost message" 1 (List.length wf.Scheduler.lost);
    let l = List.hd wf.Scheduler.lost in
    check_int "lost src" 0 l.Scheduler.l_src;
    check_int "lost dest" 1 l.Scheduler.l_dest;
    check_int "lost tag" 1 l.Scheduler.l_tag;
    check_int "attempts = 1 + max_retries" 3 l.Scheduler.l_attempts;
    check "receiver in wait-for graph" true
      (List.exists
         (fun w ->
           w.Scheduler.w_proc = 1
           && match w.Scheduler.w_on with
              | Scheduler.On_recv { src = 0; tag = 1; _ } -> true
              | _ -> false)
         wf.Scheduler.waiting);
    let s = Scheduler.error_to_string (Scheduler.Deadlock wf) in
    check "message names the loss" true
      (contains s "lost after 3 attempts")

let sched_watchdog_fires () =
  let faults = Fault.make ~seed:1 ~watchdog:1e-9 () in
  match run_with ~faults (pingpong_prog ()) 2 with
  | _ -> Alcotest.fail "expected watchdog"
  | exception Scheduler.Sim_error (Scheduler.Watchdog { limit; _ }) ->
    check "limit reported" true (limit = 1e-9)

let sched_slowdown_scales_time () =
  let base, _ = run_with (pingpong_prog ()) 2 in
  let faults = Fault.make ~seed:1 ~slowdown:[ (0, 50.0) ] () in
  let slow, _ = run_with ~faults (pingpong_prog ()) 2 in
  check "slow processor stretches the makespan" true
    (Stats.elapsed slow > Stats.elapsed base);
  check "busy time scales too" true (slow.Stats.busy.(0) > base.Stats.busy.(0))

(* --- Deadlock diagnostics ---------------------------------------------- *)

let deadlock_cycle_extracted () =
  (* p0 waits on p1 and p1 waits on p0: a 2-cycle *)
  let l = Layout.replicated [ (1, 2) ] in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
  let body =
    [ Node.N_if
        { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
          then_ = [ Node.N_recv { src = int_e 1; tag = 3; loc = nloc } ];
          else_ = [ Node.N_recv { src = int_e 0; tag = 3; loc = nloc } ] ; loc = nloc } ]
  in
  match run_with (node_prog ~arrays body) 2 with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Scheduler.Sim_error (Scheduler.Deadlock wf) ->
    check_int "both blocked" 2 (List.length wf.Scheduler.waiting);
    check "cycle found" true
      (List.sort compare wf.Scheduler.cycle = [ 0; 1 ]);
    let s = Scheduler.error_to_string (Scheduler.Deadlock wf) in
    check "cycle rendered" true (contains s "wait cycle")

let deadlock_names_collective_sites () =
  (* mismatched collective sites: both sites must be named in the error *)
  let l = Layout.replicated [ (1, 2) ] in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
  let body =
    [ Node.N_if
        { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
          then_ = [ Node.N_bcast { root = int_e 0;
                                   payload = Node.P_scalar "s"; site = 1; loc = nloc } ];
          else_ = [ Node.N_bcast { root = int_e 0;
                                   payload = Node.P_scalar "s"; site = 2; loc = nloc } ] ; loc = nloc } ]
  in
  match run_with (node_prog ~arrays body) 2 with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Scheduler.Sim_error (Scheduler.Deadlock wf) ->
    let sites =
      List.filter_map
        (fun w ->
          match w.Scheduler.w_on with
          | Scheduler.On_collective { site; _ } -> Some site
          | _ -> None)
        wf.Scheduler.waiting
    in
    check "both sites present" true (List.sort compare sites = [ 1; 2 ]);
    let s = Scheduler.error_to_string (Scheduler.Deadlock wf) in
    check "site 1 named" true (contains s "site 1");
    check "site 2 named" true (contains s "site 2");
    check "label named" true (contains s "broadcast s")

let deadlock_mixed_recv_and_collective () =
  (* satellite: one processor at a collective while the other is stuck
     on a receive must be a deadlock naming both blocked sites *)
  let l = Layout.replicated [ (1, 2) ] in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
  let body =
    [ Node.N_if
        { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
          then_ = [ Node.N_recv { src = int_e 1; tag = 4; loc = nloc } ];
          else_ = [ Node.N_bcast { root = int_e 1;
                                   payload = Node.P_scalar "s"; site = 9; loc = nloc } ] ; loc = nloc } ]
  in
  match run_with (node_prog ~arrays body) 2 with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Scheduler.Sim_error (Scheduler.Deadlock wf) ->
    check_int "both procs reported" 2 (List.length wf.Scheduler.waiting);
    let s = Scheduler.error_to_string (Scheduler.Deadlock wf) in
    check "recv site named" true
      (contains s "recv from p1 tag 4");
    check "collective site named" true
      (contains s "collective site 9")

(* --- Strict-validity diagnostics per distribution ----------------------- *)

let strict_validity_structured () =
  (* a deliberately communication-elided program: p1 reads x(1), which
     p0 owns and never sent.  The error must name the processor, the
     array, and the element, under every distribution strategy. *)
  List.iter
    (fun (name, dist) ->
      let l = { Layout.bounds = [ (1, 8) ]; dist_dim = Some 0; dist } in
      let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
      let body =
        [ Node.N_if
            { cond = Ast.Bin (Ast.Eq, myp, int_e 1);
              then_ = [ Node.N_assign (Ast.Var "v", Ast.Ref ("x", [ int_e 1 ])) ];
              else_ = [] ; loc = nloc } ]
      in
      match run_with (node_prog ~arrays body) 2 with
      | _ -> Alcotest.fail (name ^ ": expected strict-validity violation")
      | exception
          Scheduler.Sim_error
            (Scheduler.Invalid_read { proc; array; index; _ } as err) ->
        check (name ^ ": proc") true (proc = 1);
        check (name ^ ": array") true (array = "x");
        check (name ^ ": index") true (index = [| 1 |]);
        let s = Scheduler.error_to_string err in
        check (name ^ ": message") true
          (contains s "p1"
          && contains s "x(1)"))
    [ ("block", Layout.Block 4); ("cyclic", Layout.Cyclic);
      ("block-cyclic", Layout.Block_cyclic 2) ]

(* --- Zero-overhead default and determinism ------------------------------ *)

let no_faults_is_baseline () =
  (* regression: a zero-intensity plan must be indistinguishable from no
     plan at all — same schedule, same stats, zero fault counters *)
  let src = Fd_workloads.Stencil.jacobi1d ~n:64 ~t:3 () in
  let r0 = Fd_core.Driver.run_source src in
  let machine =
    Config.make ~nprocs:4 ~faults:(Fault.make ~seed:99 ()) ()
  in
  let r1 = Fd_core.Driver.run_source ~machine src in
  check "both verified" true (Fd_core.Driver.verified r0 && Fd_core.Driver.verified r1);
  check "identical stats JSON" true
    (Json.equal (Stats.to_json r0.Fd_core.Driver.stats)
       (Stats.to_json r1.Fd_core.Driver.stats));
  check_int "no faults injected" 0 r0.Fd_core.Driver.stats.Stats.faults_injected;
  check_int "no retransmits" 0 r0.Fd_core.Driver.stats.Stats.retransmits;
  check_int "no dedups" 0 r0.Fd_core.Driver.stats.Stats.duplicates_dropped;
  check "no watchdog" false r0.Fd_core.Driver.stats.Stats.watchdog_fired

let same_seed_same_stats () =
  let src = Fd_workloads.Stencil.jacobi1d ~n:64 ~t:3 () in
  let machine =
    Config.make ~nprocs:4
      ~faults:(Fault.make ~seed:13 ~drop:0.2 ~dup:0.1 ~delay:2e-4 ())
      ()
  in
  let r1 = Fd_core.Driver.run_source ~machine src in
  let r2 = Fd_core.Driver.run_source ~machine src in
  check "faults active" true (r1.Fd_core.Driver.stats.Stats.faults_injected > 0);
  check "identical stats across reruns" true
    (Json.equal (Stats.to_json r1.Fd_core.Driver.stats)
       (Stats.to_json r2.Fd_core.Driver.stats))

(* --- Differential oracle over the workloads ----------------------------- *)

let oracle_workloads () =
  let workloads =
    [ ("dgefa", Fd_workloads.Dgefa.source ~n:8 ());
      ("jacobi1d", Fd_workloads.Stencil.jacobi1d ~n:32 ~t:2 ());
      ("adi-dynamic", Fd_workloads.Adi.dynamic ~n:8 ~t:1 ()) ]
  in
  List.iter
    (fun (name, src) ->
      List.iter
        (fun seed ->
          let machine =
            Config.make ~nprocs:4
              ~faults:(Fault.make ~seed ~drop:0.25 ~dup:0.15 ~delay:5e-4 ())
              ()
          in
          let r = Fd_core.Driver.run_source ~machine src in
          check (Fmt.str "%s seed %d verified" name seed) true
            (Fd_core.Driver.verified r))
        [ 11; 42 ])
    workloads

let suite =
  [
    Alcotest.test_case "fault plan determinism" `Quick fault_plan_deterministic;
    Alcotest.test_case "fault plan selectors" `Quick fault_plan_selectors;
    Alcotest.test_case "fault backoff grows" `Quick fault_backoff_grows;
    Alcotest.test_case "scheduler recovers from drops" `Quick sched_recovers_from_drops;
    Alcotest.test_case "scheduler dedups duplicates" `Quick sched_dedups_duplicates;
    Alcotest.test_case "retry latency charged to clock" `Quick sched_retry_slows_clock;
    Alcotest.test_case "lost message is structured" `Quick sched_lost_message_is_structured;
    Alcotest.test_case "watchdog fires" `Quick sched_watchdog_fires;
    Alcotest.test_case "slowdown scales time" `Quick sched_slowdown_scales_time;
    Alcotest.test_case "deadlock cycle extracted" `Quick deadlock_cycle_extracted;
    Alcotest.test_case "deadlock names collective sites" `Quick deadlock_names_collective_sites;
    Alcotest.test_case "deadlock mixed recv+collective" `Quick deadlock_mixed_recv_and_collective;
    Alcotest.test_case "strict validity structured" `Quick strict_validity_structured;
    Alcotest.test_case "no faults = baseline" `Quick no_faults_is_baseline;
    Alcotest.test_case "same seed same stats" `Quick same_seed_same_stats;
    Alcotest.test_case "oracle over workloads" `Quick oracle_workloads;
  ]
