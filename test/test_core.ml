(* Core compiler tests: reaching decompositions (the paper's Figure 7
   worked example), procedure cloning (Figure 8), closed-form fitting,
   communication emission, dynamic-decomposition optimization passes,
   overlap analysis, and recompilation analysis. *)

open Fd_support
open Fd_frontend
open Fd_callgraph
open Fd_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- Reaching decompositions (paper Figure 7) ---------------------------- *)

let fig7_setup () =
  let cp = Sema.check_source (Fd_workloads.Figures.fig4 ()) in
  let acg = Acg.build cp in
  (acg, Reaching_decomps.compute acg)

let rd_fig7 () =
  let _acg, rd = fig7_setup () in
  (* Reaching(F1) must contain both the row and the column distribution
     for the formal z (the paper's { (block,:), (:,block) } for Z) *)
  let fact = Reaching_decomps.reaching_of rd "f1" in
  match Reaching_decomps.SM.find_opt "z" fact with
  | Some r ->
    check_int "two decompositions reach z" 2 (Decomp.Set.cardinal r.Decomp.decomps);
    let kinds =
      List.map Decomp.to_string (Decomp.Set.elements r.Decomp.decomps)
      |> List.sort compare
    in
    check_str "col" "((:,block))" (Fmt.str "(%s)" (List.nth kinds 0));
    check_str "row" "((block,:))" (Fmt.str "(%s)" (List.nth kinds 1))
  | None -> Alcotest.fail "no reaching info for z"

let rd_align_permutation () =
  (* ALIGN y(i,j) WITH d(j,i); DISTRIBUTE d(block,:) gives y (:,block) *)
  let cp =
    Sema.check_source
      "program p\n  real y(4,4)\n  integer i\n  decomposition d(4,4)\n  align y(i,j) with d(j,i)\n  distribute d(block,:)\n  do i = 1, 4\n    y(1,i) = 0.0\n  enddo\nend\n"
  in
  let acg = Acg.build cp in
  let rd = Reaching_decomps.compute acg in
  let u = (Acg.proc acg "p").Acg.cu.Sema.unit_ in
  (* find the assignment statement *)
  let sid = ref (-1) in
  Ast.iter_stmts
    (fun s -> match s.Ast.kind with Ast.Assign _ -> sid := s.Ast.sid | _ -> ())
    u.Ast.body;
  match Reaching_decomps.unique_at rd "p" !sid "y" with
  | Some d -> check_str "permuted distribution" "(:,block)" (Decomp.to_string d)
  | None -> Alcotest.fail "no decomposition for y"

let rd_dynamic_scoping () =
  (* a DISTRIBUTE inside a callee must not leak into the caller *)
  let src =
    "program p\n  real x(8)\n  integer i\n  distribute x(block)\n  call f(x)\n  do i = 1, 8\n    x(i) = 0.0\n  enddo\nend\nsubroutine f(x)\n  real x(8)\n  distribute x(cyclic)\nend\n"
  in
  let cp = Sema.check_source src in
  let acg = Acg.build cp in
  let rd = Reaching_decomps.compute acg in
  let u = (Acg.proc acg "p").Acg.cu.Sema.unit_ in
  let sid = ref (-1) in
  Ast.iter_stmts
    (fun s -> match s.Ast.kind with Ast.Assign _ -> sid := s.Ast.sid | _ -> ())
    u.Ast.body;
  match Reaching_decomps.unique_at rd "p" !sid "x" with
  | Some d -> check_str "callee change undone on return" "(block)" (Decomp.to_string d)
  | None -> Alcotest.fail "no decomposition for x"

(* --- Cloning (paper Figure 8) --------------------------------------------- *)

let cl_fig4 () =
  let cp = Sema.check_source (Fd_workloads.Figures.fig4 ()) in
  let r = Cloning.apply Options.default cp in
  check_int "one clone made" 1 r.Cloning.clones_made;
  check_int "three units now" 3 (List.length r.Cloning.cp.Sema.units);
  (* the clone's origin maps back to f1 *)
  let clone =
    List.find
      (fun cu -> String.length cu.Sema.unit_.Ast.uname > 2)
      r.Cloning.cp.Sema.units
  in
  check_str "origin" "f1" (Cloning.origin_of r clone.Sema.unit_.Ast.uname)

let cl_no_clone_when_uniform () =
  (* two calls with the same decomposition share one version *)
  let src =
    "program p\n  real x(8), y(8)\n  distribute x(block)\n  distribute y(block)\n  call f(x)\n  call f(y)\nend\nsubroutine f(z)\n  real z(8)\n  integer i\n  do i = 1, 8\n    z(i) = 0.0\n  enddo\nend\n"
  in
  let r = Cloning.apply Options.default (Sema.check_source src) in
  check_int "no clones" 0 r.Cloning.clones_made

let cl_filter_by_appear () =
  (* differing decompositions on an *unreferenced* formal must not clone *)
  let src =
    "program p\n  real x(8), y(8)\n  integer i\n  distribute x(block)\n  distribute y(cyclic)\n  call f(x, y)\n  call f(y, x)\nend\nsubroutine f(a, b)\n  real a(8), b(8)\n  integer i\n  do i = 1, 8\n    a(i) = 0.0\n  enddo\nend\n"
  in
  (* b unreferenced: call signatures differ on a (block vs cyclic), so we
     still get a clone for a, but not an extra one for b *)
  let r = Cloning.apply Options.default (Sema.check_source src) in
  check_int "one clone (for a only)" 1 r.Cloning.clones_made

let cl_disabled () =
  let cp = Sema.check_source (Fd_workloads.Figures.fig4 ()) in
  let r = Cloning.apply { Options.default with Options.enable_cloning = false } cp in
  check_int "cloning disabled" 0 r.Cloning.clones_made

(* --- Closed-form fitting ---------------------------------------------------- *)

let fit_linear_family () =
  let sets = Array.init 4 (fun p -> Iset.range ((25 * p) + 1) ((25 * p) + 25)) in
  match Fit.fit_procset_opt sets with
  | Some { Fit.f_lo; f_hi; f_guard = None; _ } ->
    check_str "lo" "25 * my$p + 1" (Ast_printer.expr_to_string f_lo);
    check_str "hi" "25 * my$p + 25" (Ast_printer.expr_to_string f_hi)
  | _ -> Alcotest.fail "expected guardless linear fit"

let fit_min_clip () =
  let sets = Array.init 4 (fun p -> Iset.range ((25 * p) + 1) (min 95 ((25 * p) + 25))) in
  match Fit.fit_procset_opt sets with
  | Some { Fit.f_hi; _ } ->
    check_str "hi clipped" "min(25 * my$p + 25, 95)" (Ast_printer.expr_to_string f_hi)
  | None -> Alcotest.fail "expected fit"

let fit_empty_guard () =
  (* only processors 1..3 have sets: fit must guard *)
  let sets =
    Array.init 4 (fun p -> if p = 0 then Iset.empty else Iset.range ((25 * p) + 1) ((25 * p) + 5))
  in
  match Fit.fit_procset_opt sets with
  | Some { Fit.f_guard = Some g; _ } ->
    check_str "guard" "my$p >= 1" (Ast_printer.expr_to_string g)
  | _ -> Alcotest.fail "expected a guard"

let fit_table_fallback () =
  let values = [| 3; 1; 4; 1 |] in
  let e = Fit.expr_of_values values in
  check_str "tab fallback" "tab$(my$p, 3, 1, 4, 1)" (Ast_printer.expr_to_string e)

let fit_guard_noncontiguous () =
  match Fit.guard_of_mask [| true; false; true; false |] with
  | Some g -> check_str "table guard" "tab$(my$p, 1, 0, 1, 0) == 1" (Ast_printer.expr_to_string g)
  | None -> Alcotest.fail "expected guard"

let fit_cyclic_family () =
  let sets =
    Array.init 4 (fun p -> Iset.of_triplet (Triplet.make ~lo:(p + 1) ~hi:16 ~step:4))
  in
  match Fit.fit_procset_opt sets with
  | Some { Fit.f_lo; f_step; _ } ->
    check_str "lo" "my$p + 1" (Ast_printer.expr_to_string f_lo);
    check_str "step" "4" (Ast_printer.expr_to_string f_step)
  | None -> Alcotest.fail "expected fit"

(* --- Communication emission -------------------------------------------------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let comm_shift_block () =
  let layout =
    { Fd_machine.Layout.bounds = [ (1, 100) ]; dist_dim = Some 0;
      dist = Fd_machine.Layout.Block 25 }
  in
  let owned = Fd_machine.Layout.owned layout ~nprocs:4 in
  (* every processor needs its block shifted by +5, clipped to the array *)
  let need = Array.map (fun s -> Iset.inter (Iset.shift 5 s) (Iset.range 1 100)) owned in
  let stmts =
    Comm.emit_section_comm ~nprocs:4 ~tag:7 ~array:"x" ~owned ~dim:0 ~rank:1 ~need
      ~other_dims:[] ()
  in
  (* one guarded send + one guarded recv *)
  check_int "two guarded statements" 2 (List.length stmts);
  let s = Fmt.str "%a" Fmt.(list ~sep:(any "") (Fd_machine.Node.pp_nstmt 0)) stmts in
  check "send to left neighbor" true (contains s "to my$p - 1");
  check "recv from right neighbor" true (contains s "from my$p + 1")

let comm_local_no_messages () =
  let layout =
    { Fd_machine.Layout.bounds = [ (1, 100) ]; dist_dim = Some 0;
      dist = Fd_machine.Layout.Block 25 }
  in
  let owned = Fd_machine.Layout.owned layout ~nprocs:4 in
  let stmts =
    Comm.emit_section_comm ~nprocs:4 ~tag:1 ~array:"x" ~owned ~dim:0 ~rank:1
      ~need:owned ~other_dims:[] ()
  in
  check_int "no communication when local" 0 (List.length stmts)

let comm_owner_exprs () =
  let block =
    { Fd_machine.Layout.bounds = [ (1, 100) ]; dist_dim = Some 0;
      dist = Fd_machine.Layout.Block 25 }
  in
  check_str "block owner" "min((k - 1) / 25, 3)"
    (Ast_printer.expr_to_string (Comm.owner_expr ~nprocs:4 block (Ast.Var "k")));
  let cyc =
    { Fd_machine.Layout.bounds = [ (1, 100) ]; dist_dim = Some 0;
      dist = Fd_machine.Layout.Cyclic }
  in
  check_str "cyclic owner" "mod(k - 1, 4)"
    (Ast_printer.expr_to_string (Comm.owner_expr ~nprocs:4 cyc (Ast.Var "k")))

(* --- Dynamic decomposition passes --------------------------------------------- *)

let remap_counts level =
  let opts = { Options.default with Options.remap_level = level } in
  let r = Driver.run_source ~opts (Fd_workloads.Figures.fig15 ~n:64 ~t:10 ()) in
  assert (Driver.verified r);
  ( r.Driver.stats.Fd_machine.Stats.remaps,
    r.Driver.stats.Fd_machine.Stats.remap_marks )

let dd_ladder () =
  let none_p, _ = remap_counts Options.Remap_none in
  let live_p, _ = remap_counts Options.Remap_live in
  let hoist_p, _ = remap_counts Options.Remap_hoist in
  let kill_p, kill_m = remap_counts Options.Remap_kill in
  (* 4T+2 / 2T+2 / 4 / 2+2 for T=10 *)
  check_int "none level: 4T+2" 42 none_p;
  check_int "live level: 2T+2" 22 live_p;
  check_int "hoist level: 4" 4 hoist_p;
  check_int "kill level physical" 2 kill_p;
  check_int "kill level mark-only" 2 kill_m

let dd_results_equal_across_levels () =
  let src = Fd_workloads.Figures.fig15 ~n:32 ~t:3 () in
  List.iter
    (fun level ->
      let opts = { Options.default with Options.remap_level = level } in
      let r = Driver.run_source ~opts src in
      check "verified at every level" true (Driver.verified r))
    [ Options.Remap_none; Options.Remap_live; Options.Remap_hoist; Options.Remap_kill ]

(* --- Overlap analysis ------------------------------------------------------------ *)

let ov_estimate_vs_actual () =
  let cp = Sema.check_source (Fd_workloads.Stencil.shifts ~n:64 ~widths:[ 2; 4 ] ()) in
  let rows = Overlap.analyze Options.default cp in
  let top = List.find (fun r -> r.Overlap.ov_proc = "shifts" && r.Overlap.ov_array = "x") rows in
  check_int "estimate pos" 4 top.Overlap.ov_estimated.Overlap.pos;
  check_int "actual pos" 4 top.Overlap.ov_actual.Overlap.pos;
  check_int "no negative overlap" 0 top.Overlap.ov_estimated.Overlap.neg

let ov_estimate_superset () =
  (* estimated >= actual everywhere (the paper's imprecision direction) *)
  let cp = Sema.check_source (Fd_workloads.Figures.fig4 ()) in
  let rows = Overlap.analyze Options.default cp in
  List.iter
    (fun r ->
      check "pos" true (r.Overlap.ov_estimated.Overlap.pos >= r.Overlap.ov_actual.Overlap.pos);
      check "neg" true (r.Overlap.ov_estimated.Overlap.neg >= r.Overlap.ov_actual.Overlap.neg))
    rows

(* --- Recompilation analysis ------------------------------------------------------ *)

let rc_noop () =
  let src = Fd_workloads.Dgefa.source ~n:8 () in
  let r, _total = Recompile.after_edit ~before:src ~after:src () in
  check_int "no-op edit recompiles nothing" 0 (List.length r)

let rc_body_edit_local () =
  let before = Fd_workloads.Dgefa.source ~n:8 () in
  let after =
    Str.global_replace
      (Str.regexp_string "a(i,j) = a(i,j) + a(k,j) * a(i,k)")
      "a(i,j) = a(i,j) + 2.0 * a(k,j) * a(i,k)" before
  in
  let r, _ = Recompile.after_edit ~before ~after () in
  check "only daxpy recompiles" true (r = [ "daxpy" ])

let rc_distribution_edit_global () =
  let before = Fd_workloads.Dgefa.source ~n:8 () in
  let after =
    Str.global_replace (Str.regexp_string "distribute a(:,cyclic)")
      "distribute a(:,block)" before
  in
  let r, total = Recompile.after_edit ~before ~after () in
  check_int "everything recompiles" total (List.length r)

let rc_export_change_propagates () =
  (* making dscal touch column k+1 as well changes its constraint, which
     must force the caller to recompile *)
  let before = Fd_workloads.Dgefa.source ~n:8 () in
  let after =
    Str.global_replace
      (Str.regexp_string "a(i,k) = -a(i,k) / t")
      "a(i,k) = -a(i,k) / t\n    a(i,k) = a(i,k) + 0.0" before
  in
  let r, _ = Recompile.after_edit ~before ~after () in
  check "dscal recompiles" true (List.mem "dscal" r)

let suite =
  [
    Alcotest.test_case "reaching decomps fig7" `Quick rd_fig7;
    Alcotest.test_case "reaching align permutation" `Quick rd_align_permutation;
    Alcotest.test_case "reaching dynamic scoping" `Quick rd_dynamic_scoping;
    Alcotest.test_case "cloning fig4" `Quick cl_fig4;
    Alcotest.test_case "no clone when uniform" `Quick cl_no_clone_when_uniform;
    Alcotest.test_case "clone filtered by Appear" `Quick cl_filter_by_appear;
    Alcotest.test_case "cloning disabled" `Quick cl_disabled;
    Alcotest.test_case "fit linear family" `Quick fit_linear_family;
    Alcotest.test_case "fit min clip" `Quick fit_min_clip;
    Alcotest.test_case "fit empty guard" `Quick fit_empty_guard;
    Alcotest.test_case "fit table fallback" `Quick fit_table_fallback;
    Alcotest.test_case "fit noncontiguous guard" `Quick fit_guard_noncontiguous;
    Alcotest.test_case "fit cyclic family" `Quick fit_cyclic_family;
    Alcotest.test_case "comm shift block" `Quick comm_shift_block;
    Alcotest.test_case "comm local needs no messages" `Quick comm_local_no_messages;
    Alcotest.test_case "comm owner expressions" `Quick comm_owner_exprs;
    Alcotest.test_case "dynamic decomp ladder" `Quick dd_ladder;
    Alcotest.test_case "dynamic decomp levels all verify" `Quick dd_results_equal_across_levels;
    Alcotest.test_case "overlap estimate vs actual" `Quick ov_estimate_vs_actual;
    Alcotest.test_case "overlap estimate is superset" `Quick ov_estimate_superset;
    Alcotest.test_case "recompile no-op" `Quick rc_noop;
    Alcotest.test_case "recompile body edit local" `Quick rc_body_edit_local;
    Alcotest.test_case "recompile distribution global" `Quick rc_distribution_edit_global;
    Alcotest.test_case "recompile export change" `Quick rc_export_change_propagates;
  ]

(* --- Aliasing (Section 6.4) -------------------------------------------------- *)

let alias_rejected () =
  (* x aliased through both formals of f, and f redistributes one of them *)
  let src =
    "program p\n  real x(8)\n  integer i\n  distribute x(block)\n  call f(x, x)\nend\nsubroutine f(a, b)\n  real a(8), b(8)\n  integer i\n  distribute a(cyclic)\n  do i = 1, 8\n    a(i) = b(i)\n  enddo\nend\n"
  in
  check "rejected" true
    (match Driver.compile_source src with
    | _ -> false
    | exception (Diag.Compile_error _ | Diag.Compile_errors _) -> true)

let alias_allowed_without_redistribution () =
  let src =
    "program p\n  real x(8)\n  integer i\n  distribute x(block)\n  do i = 1, 8\n    x(i) = float(i)\n  enddo\n  call f(x, x)\n  print *, x(1)\nend\nsubroutine f(a, b)\n  real a(8), b(8)\n  integer i\n  do i = 1, 8\n    a(i) = a(i) + 0.0 * b(i)\n  enddo\nend\n"
  in
  let r = Driver.run_source src in
  check "aliasing without redistribution still runs" true (Driver.verified r)

let alias_transitive_redistribution () =
  (* g forwards its formal to f which redistributes: still rejected *)
  let src =
    "program p\n  real x(8)\n  distribute x(block)\n  call g(x, x)\nend\nsubroutine g(a, b)\n  real a(8), b(8)\n  call f(a)\n  call f(b)\nend\nsubroutine f(c)\n  real c(8)\n  integer i\n  distribute c(cyclic)\n  do i = 1, 8\n    c(i) = 0.0\n  enddo\nend\n"
  in
  check "transitive redistribution rejected" true
    (match Driver.compile_source src with
    | _ -> false
    | exception (Diag.Compile_error _ | Diag.Compile_errors _) -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "aliasing + redistribution rejected" `Quick alias_rejected;
      Alcotest.test_case "aliasing without redistribution ok" `Quick
        alias_allowed_without_redistribution;
      Alcotest.test_case "aliasing transitive redistribution" `Quick
        alias_transitive_redistribution;
    ]
