(* Fourth battery: communication emission details, broadcast expansion,
   layout arithmetic, message-count formulas across processor counts,
   and runtime-resolution corner cases. *)

open Fd_support
open Fd_frontend
open Fd_core
open Fd_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let int_e n = Ast.Int_const n

(* --- assemble_section --------------------------------------------------- *)

let comm_assemble () =
  let sec =
    Comm.assemble_section ~rank:3 ~dim:1
      (int_e 4, int_e 8, int_e 1)
      [ Comm.Od_point (Ast.Var "i"); Comm.Od_full (1, 10) ]
  in
  check_int "rank" 3 (List.length sec);
  (match List.nth sec 1 with
  | Ast.Int_const 4, Ast.Int_const 8, _ -> ()
  | _ -> Alcotest.fail "dist dim misplaced");
  match (List.nth sec 0, List.nth sec 2) with
  | (Ast.Var "i", Ast.Var "i", _), (Ast.Int_const 1, Ast.Int_const 10, _) -> ()
  | _ -> Alcotest.fail "other dims misplaced"

(* --- multi-part aggregation at the emission level -------------------------- *)

let comm_multi_merges () =
  let layout =
    { Layout.bounds = [ (1, 40) ]; dist_dim = Some 0; dist = Layout.Block 10 }
  in
  let owned = Layout.owned layout ~nprocs:4 in
  let need = Array.map (fun s -> Iset.inter (Iset.shift 1 s) (Iset.range 1 40)) owned in
  let single =
    Comm.emit_section_comm ~nprocs:4 ~tag:1 ~array:"a" ~owned ~dim:0 ~rank:1 ~need
      ~other_dims:[] ()
  in
  let multi =
    Comm.emit_section_comm_multi ~nprocs:4 ~tag:1 ~owned ~dim:0 ~rank:1
      ~parts:[ ("a", need, []); ("b", need, []) ] ()
  in
  (* same number of statements: the second array rides along *)
  check_int "one send + one recv either way" (List.length single) (List.length multi);
  let count_parts = function
    | Node.N_if { then_ = [ Node.N_send { parts; _ } ]; _ } -> List.length parts
    | _ -> 0
  in
  check_int "merged parts" 2
    (List.fold_left (fun acc s -> max acc (count_parts s)) 0 multi)

(* --- broadcast expansion without collectives -------------------------------- *)

let bcast_expansion () =
  let src = Fd_workloads.Figures.fig1 ~n:64 ~shift:2 () in
  let opts = { Options.default with Options.use_collectives = false } in
  let compiled = Driver.compile_source ~opts src in
  let text = Node.program_to_string compiled.Codegen.program in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check "no broadcast statements" false (contains text "broadcast x(");
  check "expanded to a send loop" true (contains text "do p$ = 0, 3");
  let r = Driver.run_source ~opts src in
  check "verified" true (Driver.verified r);
  check_int "no collectives used" 0 r.Driver.stats.Stats.bcasts

(* --- layout arithmetic -------------------------------------------------------- *)

let layout_block_size () =
  check_int "even" 25 (Layout.block_size_for ~nprocs:4 (1, 100));
  check_int "ragged rounds up" 26 (Layout.block_size_for ~nprocs:4 (1, 101));
  check_int "tiny" 1 (Layout.block_size_for ~nprocs:8 (1, 3))

let layout_owner_bounds () =
  let l = { Layout.bounds = [ (0, 99) ]; dist_dim = Some 0; dist = Layout.Block 25 } in
  (* zero-based lower bound *)
  check_int "owner of 0" 0 (Layout.owner_of l ~nprocs:4 0);
  check_int "owner of 99" 3 (Layout.owner_of l ~nprocs:4 99)

(* --- message-count formula across P --------------------------------------------- *)

let msgs_scale_with_p () =
  (* the shift kernel needs exactly P-1 boundary messages *)
  List.iter
    (fun p ->
      let opts = { Options.default with Options.nprocs = p } in
      let r = Driver.run_source ~opts (Fd_workloads.Figures.fig1 ~n:128 ~shift:1 ()) in
      check (Fmt.str "P=%d" p) true (Driver.verified r);
      check_int (Fmt.str "P-1 messages at P=%d" p) (p - 1)
        r.Driver.stats.Stats.messages)
    [ 2; 4; 8 ]

(* --- runtime-res corner: distributed read in an IF condition --------------------- *)

let runtime_res_if_condition () =
  let src =
    "program p\n  parameter (n = 16)\n  real x(16)\n  integer i\n  distribute x(block)\n  do i = 1, n\n    x(i) = float(i)\n  enddo\n  if (x(3) > 2.0) then\n    x(1) = 99.0\n  endif\n  print *, x(1)\nend\n"
  in
  List.iter
    (fun strategy ->
      let opts = { Options.default with Options.strategy } in
      let r = Driver.run_source ~opts src in
      check (Options.strategy_name strategy) true (Driver.verified r);
      check "took the branch" true (Stats.outputs r.Driver.stats = [ "99" ]))
    [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ]

(* --- print of distributed elements from a callee ---------------------------------- *)

let print_in_callee () =
  let src =
    "program p\n  parameter (n = 16)\n  real x(16)\n  integer i\n  distribute x(block)\n  do i = 1, n\n    x(i) = float(i*2)\n  enddo\n  call report(x)\nend\nsubroutine report(x)\n  parameter (n = 16)\n  real x(16)\n  print *, x(1), x(n)\nend\n"
  in
  let r = Driver.run_source src in
  check "verified" true (Driver.verified r);
  check "prints owners' values" true (Stats.outputs r.Driver.stats = [ "2 32" ])

(* --- exports printing smoke --------------------------------------------------------- *)

let exports_pp_smoke () =
  let compiled = Driver.compile_source (Fd_workloads.Dgefa.source ~n:8 ()) in
  Hashtbl.iter
    (fun _ ex ->
      let s = Fmt.str "%a" Exports.pp ex in
      check "nonempty rendering" true (String.length s > 0))
    compiled.Codegen.state.Codegen.exports

(* --- iset shift/inter interplay (unit) ------------------------------------------------ *)

let iset_shift_inter () =
  let a = Iset.of_triplet (Triplet.make ~lo:2 ~hi:20 ~step:2) in
  let shifted = Iset.shift 1 a in
  check "shift preserves count" true (Iset.count shifted = Iset.count a);
  check "odd after shift" true (Iset.disjoint shifted a);
  check "round trip" true (Iset.equal (Iset.shift (-1) shifted) a)

let suite =
  [
    Alcotest.test_case "comm assemble_section" `Quick comm_assemble;
    Alcotest.test_case "comm multi-part merge" `Quick comm_multi_merges;
    Alcotest.test_case "broadcast expansion" `Quick bcast_expansion;
    Alcotest.test_case "layout block size" `Quick layout_block_size;
    Alcotest.test_case "layout zero-based bounds" `Quick layout_owner_bounds;
    Alcotest.test_case "messages scale with P" `Quick msgs_scale_with_p;
    Alcotest.test_case "runtime-res if condition" `Quick runtime_res_if_condition;
    Alcotest.test_case "print in callee" `Quick print_in_callee;
    Alcotest.test_case "exports pp smoke" `Quick exports_pp_smoke;
    Alcotest.test_case "iset shift interplay" `Quick iset_shift_inter;
  ]

(* --- negative-step loop over a distributed array ------------------------------------ *)

let negative_step_distributed () =
  let src =
    "program p\n  parameter (n = 32)\n  real x(32)\n  integer i\n  distribute x(block)\n  do i = n, 1, -1\n    x(i) = float(i)\n  enddo\n  print *, x(1), x(n)\nend\n"
  in
  List.iter
    (fun strategy ->
      let opts = { Options.default with Options.strategy } in
      let r = Driver.run_source ~opts src in
      check (Options.strategy_name strategy) true (Driver.verified r))
    [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ]

(* --- strided store over a cyclic array ----------------------------------------------- *)

let strided_store_cyclic () =
  let src =
    "program p\n  parameter (n = 30)\n  real x(30)\n  integer i\n  distribute x(cyclic)\n  do i = 1, n\n    x(i) = 0.0\n  enddo\n  do i = 1, n, 3\n    x(i) = float(i)\n  enddo\n  print *, x(1), x(4)\nend\n"
  in
  let r = Driver.run_source src in
  check "verified" true (Driver.verified r)

let suite =
  suite
  @ [
      Alcotest.test_case "negative-step distributed loop" `Quick negative_step_distributed;
      Alcotest.test_case "strided store over cyclic" `Quick strided_store_cyclic;
    ]

(* --- early RETURN restores inherited decomposition (Immediate) ------------------------ *)

let early_return_restores () =
  let src =
    "program p\n  parameter (n = 16)\n  real x(16)\n  integer i, k\n  distribute x(block)\n  do i = 1, n\n    x(i) = float(i)\n  enddo\n  k = 1\n  call f(x, k)\n  do i = 1, n\n    x(i) = x(i) + 1.0\n  enddo\n  print *, x(1), x(n)\nend\nsubroutine f(x, k)\n  parameter (n = 16)\n  real x(16)\n  integer i, k\n  distribute x(cyclic)\n  do i = 1, n\n    x(i) = x(i) * 2.0\n  enddo\n  if (k > 0) then\n    return\n  endif\n  do i = 1, n\n    x(i) = 0.0\n  enddo\nend\n"
  in
  List.iter
    (fun strategy ->
      let opts = { Options.default with Options.strategy } in
      let r = Driver.run_source ~opts src in
      check (Options.strategy_name strategy) true (Driver.verified r))
    [ Options.Interproc; Options.Immediate ]

let suite =
  suite
  @ [ Alcotest.test_case "early return restores decomposition" `Quick
        early_return_restores ]
