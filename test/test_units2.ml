(* Second battery of unit tests: values, diagnostics, list utilities,
   interpreter intrinsics, message ordering, gather mismatch detection,
   dynamic-decomposition passes in isolation, exports invariants, and
   cloning limits. *)

open Fd_support
open Fd_frontend
open Fd_core
open Fd_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- Value ---------------------------------------------------------------- *)

let v_coercions () =
  check "int+real widens" true (Value.add (Value.Vint 2) (Value.Vreal 0.5) = Value.Vreal 2.5);
  check "int/int truncates" true (Value.div (Value.Vint 7) (Value.Vint 2) = Value.Vint 3);
  check "int pow" true (Value.pow (Value.Vint 2) (Value.Vint 10) = Value.Vint 1024);
  check "neg int pow is real" true
    (match Value.pow (Value.Vint 2) (Value.Vint (-1)) with
    | Value.Vreal f -> f = 0.5
    | _ -> false);
  check "compare across kinds" true (Value.compare_num (Value.Vint 1) (Value.Vreal 1.5) < 0);
  check "div by zero raises" true
    (match Value.div (Value.Vint 1) (Value.Vint 0) with
    | _ -> false
    | exception Diag.Compile_error _ -> true)

let v_logical_misuse () =
  check "bool as number raises" true
    (match Value.to_float (Value.Vbool true) with
    | _ -> false
    | exception Diag.Compile_error _ -> true)

(* --- Diag ------------------------------------------------------------------ *)

let d_warnings_drain () =
  ignore (Diag.take_warnings ());
  Diag.warn "first %d" 1;
  Diag.warn "second";
  let ws = Diag.take_warnings () in
  check_int "two warnings" 2 (List.length ws);
  check "drained" true (Diag.take_warnings () = [])

let d_error_has_location () =
  let loc = Loc.make ~file:"f.fd" ~line:3 ~col:7 in
  match Diag.error ~loc "boom %s" "x" with
  | _ -> Alcotest.fail "should raise"
  | exception Diag.Compile_error d ->
    check_str "message" "f.fd:3:7: error: boom x" (Diag.to_string d)

(* --- Listx ------------------------------------------------------------------ *)

let lx_basics () =
  check_int "last" 3 (Listx.last [ 1; 2; 3 ]);
  check "dedup keeps order" true (Listx.dedup ~equal:( = ) [ 1; 2; 1; 3; 2 ] = [ 1; 2; 3 ]);
  check "group_by stable" true
    (Listx.group_by ~key:(fun x -> x mod 2) ~equal_key:( = ) [ 1; 2; 3; 4 ]
    = [ (1, [ 1; 3 ]); (0, [ 2; 4 ]) ]);
  check "take" true (Listx.take 2 [ 1; 2; 3 ] = [ 1; 2 ]);
  check "take past end" true (Listx.take 9 [ 1 ] = [ 1 ]);
  check "max_by" true (Listx.max_by ~compare [ 3; 1; 4; 1 ] = Some 4);
  check "init_opt" true (Listx.init_opt 4 (fun i -> if i mod 2 = 0 then Some i else None) = [ 0; 2 ])

(* --- Interpreter intrinsics through whole programs ---------------------------- *)

let run_outputs src =
  let r = Driver.run_source ~opts:{ Options.default with Options.nprocs = 2 } src in
  assert (Driver.verified r);
  Stats.outputs r.Driver.stats

let i_intrinsics () =
  let out =
    run_outputs
      "program p\n  real x\n  integer k\n  x = max(1.0, 2.0, 0.5) + min(4, 7) + abs(-3.0) + sqrt(16.0)\n  k = mod(-7, 3) + sign(2, -1)\n  print *, x, k\nend\n"
  in
  (* 2 + 4 + 3 + 4 = 13; mod(-7,3) = -1 (Fortran), sign(2,-1) = -2 *)
  check "intrinsic results" true (out = [ "13 -3" ])

let i_integer_division () =
  let out =
    run_outputs "program p\n  integer k\n  k = 7 / 2 + 10 / 3\n  print *, k\nend\n"
  in
  check "trunc division" true (out = [ "6" ])

let i_short_circuit () =
  (* division by zero on the right of .and. must not evaluate *)
  let out =
    run_outputs
      "program p\n  integer k\n  logical b\n  k = 0\n  b = k > 0 .and. 1 / k > 0\n  if (.not. b) then\n    k = 5\n  endif\n  print *, k\nend\n"
  in
  check "short circuit" true (out = [ "5" ])

(* --- Scheduler: channel FIFO ordering ------------------------------------------ *)

let sched_fifo () =
  let int_e n = Ast.Int_const n in
  let nloc = Fd_support.Loc.none in
  let myp = Ast.Var "my$p" in
  let l = { Layout.bounds = [ (1, 4) ]; dist_dim = Some 0; dist = Layout.Block 2 } in
  let arrays = [ { Node.ad_name = "x"; ad_elt = Ast.Real; ad_layout = l } ] in
  (* p0 sends x(1) then x(2) on the same tag; p1 receives twice: FIFO *)
  let body =
    [ Node.N_if
        { cond = Ast.Bin (Ast.Eq, myp, int_e 0);
          then_ =
            [ Node.N_assign (Ast.Ref ("x", [ int_e 1 ]), Ast.Real_const 1.0);
              Node.N_assign (Ast.Ref ("x", [ int_e 2 ]), Ast.Real_const 2.0);
              Node.N_send { dest = int_e 1; parts = [ ("x", [ (int_e 1, int_e 1, int_e 1) ]) ]; tag = 4; loc = nloc };
              Node.N_send { dest = int_e 1; parts = [ ("x", [ (int_e 2, int_e 2, int_e 1) ]) ]; tag = 4; loc = nloc } ];
          else_ =
            [ Node.N_recv { src = int_e 0; tag = 4; loc = nloc };
              Node.N_recv { src = int_e 0; tag = 4; loc = nloc } ] ; loc = nloc } ]
  in
  let prog =
    { Node.n_main = "m"; n_nprocs = 2;
      n_common_arrays = []; n_common_scalars = [];
      n_procs =
        [ { Node.np_name = "m"; np_formals = []; np_arrays = arrays; np_scalars = [];
            np_body = Node.N_assign (myp, Ast.Funcall ("myproc", [])) :: body } ] }
  in
  let stats, frames = Scheduler.run (Config.ipsc860 ~nprocs:2 ()) prog in
  check_int "two messages" 2 stats.Stats.messages;
  match Hashtbl.find frames.(1) "x" with
  | Interp.Barray obj ->
    check "both arrived" true
      (Value.to_float (Storage.read ~strict:true obj [| 1 |]) = 1.0
      && Value.to_float (Storage.read ~strict:true obj [| 2 |]) = 2.0)
  | _ -> Alcotest.fail "x missing"

(* --- Gather detects divergence -------------------------------------------------- *)

let gather_detects_mismatch () =
  let src = Fd_workloads.Figures.fig1 ~n:32 ~shift:2 () in
  let cp = Driver.check_source src in
  let compiled = Driver.compile cp in
  let config = Config.ipsc860 ~nprocs:4 () in
  let _, frames = Scheduler.run config compiled.Codegen.program in
  let seq = Seq_interp.run ~config cp in
  (* corrupt one owned element on its owner and expect a mismatch *)
  (match Hashtbl.find frames.(2) "x" with
  | Interp.Barray obj -> Storage.write obj [| 20 |] (Value.Vreal 9999.0)
  | _ -> Alcotest.fail "x missing");
  let mismatches = Gather.compare_results ~nprocs:4 seq frames in
  check_int "exactly one mismatch" 1 (List.length mismatches);
  match mismatches with
  | [ m ] ->
    check_str "array" "x" m.Gather.m_array;
    check "index" true (m.Gather.m_index = [| 20 |])
  | _ -> ()

(* --- Dynamic decomposition passes in isolation ----------------------------------- *)

let no_calls _callee _args = Dynamic_decomp.SS.empty

let remap name kind : Ast.stmt =
  Dynamic_decomp.remap_stmt
    { Dynamic_decomp.rm_array = name;
      rm_decomp = Decomp.of_kinds [ kind ];
      rm_move = true }

let use_stmt name : Ast.stmt =
  { Ast.sid = 999_000 + Hashtbl.hash name mod 1000;
    loc = Loc.none;
    kind = Ast.Assign (Ast.Ref (name, [ Ast.Int_const 1 ]), Ast.Real_const 0.0) }

let dd_dead_elim_unit () =
  (* remap; remap (no use between): first is dead *)
  let body = [ remap "x" Ast.Block; remap "x" Ast.Cyclic; use_stmt "x" ] in
  let body', removed = Dynamic_decomp.dead_remap_elim ~call_touches:no_calls body in
  check_int "one removed" 1 removed;
  check_int "two left" 2 (List.length body')

let dd_redundant_unit () =
  let initial = Dynamic_decomp.DM.singleton "x" (Decomp.of_kinds [ Ast.Block ]) in
  let body = [ remap "x" Ast.Block; use_stmt "x" ] in
  let body', removed = Dynamic_decomp.redundant_remap_elim ~initial body in
  check_int "redundant removed" 1 removed;
  check_int "one left" 1 (List.length body')

let dd_liveness_respects_branches () =
  (* the remap's target is used in one branch only: still live *)
  let branch_use =
    { Ast.sid = 999_900; loc = Loc.none;
      kind =
        Ast.If
          { cond = Ast.Logical_const true;
            then_ = [ use_stmt "x" ];
            else_ = [] } }
  in
  let body = [ remap "x" Ast.Cyclic; branch_use ] in
  let _, removed = Dynamic_decomp.dead_remap_elim ~call_touches:no_calls body in
  check_int "kept (used in a branch)" 0 removed

(* --- Exports invariants over dgefa ------------------------------------------------- *)

let exports_dgefa () =
  let compiled = Driver.compile_source (Fd_workloads.Dgefa.source ~n:8 ()) in
  let ex name = Codegen.export_of compiled.Codegen.state name in
  (match (ex "idamax").Exports.ex_constraint with
  | Exports.C_owner { co_array = "a"; co_dim = 1; _ } -> ()
  | _ -> Alcotest.fail "idamax should be owner-constrained on a dim 2");
  check "idamax broadcasts l" true
    (Exports.SS.mem "l" (ex "idamax").Exports.ex_mod_scalars);
  check "daxpy exports the pivot-column broadcast" true
    (List.exists
       (function Exports.P_invariant { pi_array = "a"; _ } -> true | _ -> false)
       (ex "daxpy").Exports.ex_comms);
  (match (ex "swaprow").Exports.ex_constraint with
  | Exports.C_none -> ()
  | _ -> Alcotest.fail "swaprow partitions internally");
  check "dgefa exports nothing upward" true ((ex "dgefa").Exports.ex_comms = [])

let exports_fig15 () =
  let compiled = Driver.compile_source (Fd_workloads.Figures.fig15 ~n:32 ~t:2 ()) in
  let ex name = Codegen.export_of compiled.Codegen.state name in
  check "f1 kills x" true (Exports.SS.mem "x" (ex "f1").Exports.ex_kill);
  check "f1 DecompBefore cyclic" true
    (List.exists
       (fun (v, d) -> v = "x" && Decomp.to_string d = "(cyclic)")
       (ex "f1").Exports.ex_before);
  check "f1 DecompAfter restores block" true
    (List.exists
       (fun (v, d) -> v = "x" && Decomp.to_string d = "(block)")
       (ex "f1").Exports.ex_after);
  check "f2 uses inherited decomposition" true
    (Exports.SS.mem "y" (ex "f2").Exports.ex_use);
  check "f2 value-kills nothing (it reads y)" true
    (not (Exports.SS.mem "y" (ex "f2").Exports.ex_value_kill))

(* --- Cloning limit ------------------------------------------------------------------ *)

let cloning_limit () =
  (* four call sites with four distinct distributions; limit 2 disables *)
  let src =
    "program p\n  real a(8), b(8), c(8), d(8)\n  integer i\n  distribute a(block)\n  distribute b(cyclic)\n  distribute c(block_cyclic(2))\n  distribute d(:)\n  call f(a)\n  call f(b)\n  call f(c)\n  call f(d)\nend\nsubroutine f(z)\n  real z(8)\n  integer i\n  do i = 1, 8\n    z(i) = 0.0\n  enddo\nend\n"
  in
  ignore (Diag.take_warnings ());
  let r =
    Cloning.apply
      { Options.default with Options.clone_limit = 2 }
      (Sema.check_source src)
  in
  check_int "cloning abandoned" 0 r.Cloning.clones_made;
  check "warned" true (Diag.take_warnings () <> []);
  let r' = Cloning.apply Options.default (Sema.check_source src) in
  check_int "full cloning makes 3" 3 r'.Cloning.clones_made

(* --- Driver speedup accessor ---------------------------------------------------------- *)

let driver_speedup () =
  let r = Driver.run_source (Fd_workloads.Figures.fig1 ~n:400 ()) in
  check "speedup positive" true (Driver.speedup r > 0.0)

(* --- Trace recording ------------------------------------------------------------------- *)

let trace_recording () =
  let machine = Config.make ~nprocs:4 ~record_trace:true () in
  let r = Driver.run_source ~machine (Fd_workloads.Figures.fig1 ~n:100 ()) in
  let tr = Stats.trace r.Driver.stats in
  check "trace nonempty" true (tr <> []);
  let sends = List.filter (function Stats.Ev_send _ -> true | _ -> false) tr in
  check_int "one event per message" r.Driver.stats.Stats.messages (List.length sends);
  (* timeline is per-event plausible: all timestamps nonnegative *)
  check "timestamps nonnegative" true
    (List.for_all
       (function
         | Stats.Ev_send { at; _ } | Stats.Ev_recv { at; _ }
         | Stats.Ev_bcast { at; _ } | Stats.Ev_remap { at; _ }
         | Stats.Ev_fault { at; _ } -> at >= 0.0)
       tr);
  (* no trace without the flag *)
  let r2 = Driver.run_source (Fd_workloads.Figures.fig1 ~n:100 ()) in
  check "no trace by default" true (Stats.trace r2.Driver.stats = [])

let suite =
  [
    Alcotest.test_case "value coercions" `Quick v_coercions;
    Alcotest.test_case "value logical misuse" `Quick v_logical_misuse;
    Alcotest.test_case "diag warnings drain" `Quick d_warnings_drain;
    Alcotest.test_case "diag error location" `Quick d_error_has_location;
    Alcotest.test_case "listx basics" `Quick lx_basics;
    Alcotest.test_case "interp intrinsics" `Quick i_intrinsics;
    Alcotest.test_case "interp integer division" `Quick i_integer_division;
    Alcotest.test_case "interp short circuit" `Quick i_short_circuit;
    Alcotest.test_case "scheduler channel fifo" `Quick sched_fifo;
    Alcotest.test_case "gather detects mismatch" `Quick gather_detects_mismatch;
    Alcotest.test_case "dead remap elim (unit)" `Quick dd_dead_elim_unit;
    Alcotest.test_case "redundant remap elim (unit)" `Quick dd_redundant_unit;
    Alcotest.test_case "remap liveness across branches" `Quick dd_liveness_respects_branches;
    Alcotest.test_case "exports: dgefa invariants" `Quick exports_dgefa;
    Alcotest.test_case "exports: fig15 before/after" `Quick exports_fig15;
    Alcotest.test_case "cloning limit" `Quick cloning_limit;
    Alcotest.test_case "driver speedup" `Quick driver_speedup;
    Alcotest.test_case "trace recording" `Quick trace_recording;
  ]
