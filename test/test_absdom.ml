(* Property tests for the compressed ensemble value domain: every
   segment-level fast path in Absdom must be equivalent, by
   concretization, to applying the pointwise semantics lane-by-lane.
   The pointwise reference is Absdom itself at n = 1 (a [Uni] value has
   no fast path to take), so the compressed algebra is tested against
   the same single source of truth the dense implementation used. *)

open Fd_support
open Fd_verify

let prop ?(count = 500) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* Structural equality with NaN-tolerant floats (compare, not =). *)
let pv_eq (a : Absdom.pv) (b : Absdom.pv) = compare a b = 0

let pp_pv = function
  | Absdom.Pint i -> Fmt.str "Pint %d" i
  | Absdom.Preal f -> Fmt.str "Preal %g" f
  | Absdom.Pbool b -> Fmt.str "Pbool %b" b
  | Absdom.Punk -> "Punk"

(* --- generators --------------------------------------------------------- *)

(* Dyadic reals keep float arithmetic exact enough to be deterministic;
   both sides run the identical operations anyway. *)
let pv_gen =
  QCheck2.Gen.(
    frequency
      [
        (4, map (fun i -> Absdom.Pint i) (int_range (-9) 9));
        (2, map (fun i -> Absdom.Preal (float_of_int i /. 2.)) (int_range (-8) 8));
        (2, map (fun b -> Absdom.Pbool b) bool);
        (2, return Absdom.Punk);
      ])

let n_gen = QCheck2.Gen.oneofl [ 1; 2; 3; 4; 5; 7; 8; 13; 16; 64; 97 ]

(* A lane vector with realistic structure: constant runs, affine
   stretches (my$p + b shapes), and pure noise. *)
let dense_gen n =
  QCheck2.Gen.(
    let run_gen =
      frequency
        [
          (3, map (fun v len -> List.init len (fun _ -> v)) pv_gen);
          ( 2,
            map2
              (fun a b len -> List.init len (fun k -> Absdom.Pint ((a * k) + b)))
              (int_range (-2) 2) (int_range (-5) 5) );
          (1, return (fun len -> List.init len (fun _ -> Absdom.Punk)));
        ]
    in
    let rec fill acc left =
      if left <= 0 then return (Array.of_list (List.concat (List.rev acc)))
      else
        let* len = int_range 1 (max 1 (left / 2 + 1)) in
        let len = min len left in
        let* mk = run_gen in
        fill (mk len :: acc) (left - len)
    in
    fill [] n)

let value_gen =
  QCheck2.Gen.(
    let* n = n_gen in
    let* d = dense_gen n in
    (* exercise both the generic constructor and the uniform case *)
    let* v =
      frequency
        [
          (6, return (Absdom.of_dense d));
          (1, map (fun pv -> Absdom.Uni pv) pv_gen);
          (1, return (Absdom.myproc ~n));
        ]
    in
    return (n, v))

let pair_gen =
  QCheck2.Gen.(
    let* n = n_gen in
    let* da = dense_gen n in
    let* db = dense_gen n in
    return (n, Absdom.of_dense da, Absdom.of_dense db))

let binops =
  Absdom.
    [
      (Add, "Add"); (Sub, "Sub"); (Mul, "Mul"); (Div, "Div"); (Pow, "Pow");
      (Mod, "Mod"); (Eq, "Eq"); (Ne, "Ne"); (Lt, "Lt"); (Le, "Le");
      (Gt, "Gt"); (Ge, "Ge"); (And, "And"); (Or, "Or"); (Max, "Max");
      (Min, "Min"); (Join, "Join");
    ]

let unops =
  Absdom.[ (Neg, "Neg"); (Not, "Not"); (Abs, "Abs"); (ToInt, "ToInt");
           (ToReal, "ToReal") ]

(* Pointwise reference: the n = 1 uniform path of the same module. *)
let ref2 op a b =
  Absdom.at (Absdom.app2 ~n:1 op (Absdom.Uni a) (Absdom.Uni b)) 0

let ref1 op a = Absdom.at (Absdom.app1 ~n:1 op (Absdom.Uni a)) 0

(* --- invariants of the representation ----------------------------------- *)

let well_formed ~n (v : Absdom.t) =
  match v with
  | Absdom.Uni _ -> true
  | Absdom.Runs segs ->
    (* sorted contiguous exact cover of [0, n-1] *)
    let rec cover expect = function
      | [] -> expect = n
      | (l, u, _) :: rest -> l = expect && u >= l && u < n && cover (u + 1) rest
    in
    cover 0 segs
    (* no full-range known constant hiding as Runs (it must be Uni);
       full-range Sconst Punk is legal: divergent-unknown *)
    && (match segs with
       | [ (0, u, Absdom.Sconst pv) ] when u = n - 1 -> pv = Absdom.Punk
       | _ -> true)

(* --- the properties ------------------------------------------------------ *)

let test_roundtrip =
  prop "of_dense/to_dense roundtrip + well-formed"
    QCheck2.Gen.(
      let* n = n_gen in
      let* d = dense_gen n in
      return (n, d))
    (fun (n, d) ->
      let v = Absdom.of_dense d in
      well_formed ~n v
      && Array.for_all2 (fun a b -> pv_eq a b) d (Absdom.to_dense ~n v))

let test_app2 =
  prop ~count:2000 "app2 == pointwise (all binops)"
    QCheck2.Gen.(
      let* n, a, b = pair_gen in
      let* i = int_range 0 (List.length binops - 1) in
      return (n, a, b, i))
    (fun (n, a, b, i) ->
      let op, opname = List.nth binops i in
      let r = Absdom.app2 ~n op a b in
      well_formed ~n r
      &&
      let da = Absdom.to_dense ~n a and db = Absdom.to_dense ~n b in
      let dr = Absdom.to_dense ~n r in
      Array.for_all
        (fun p ->
          let want = ref2 op da.(p) db.(p) in
          pv_eq dr.(p) want
          ||
          (QCheck2.Test.fail_reportf
             "%s lane %d/%d: compressed %s, pointwise %s" opname p n
             (pp_pv dr.(p)) (pp_pv want) [@warning "-20"]))
        (Array.init n Fun.id))

let test_app1 =
  prop ~count:1000 "app1 == pointwise (all unops)"
    QCheck2.Gen.(
      let* n, v = value_gen in
      let* i = int_range 0 (List.length unops - 1) in
      return (n, v, i))
    (fun (n, v, i) ->
      let op, opname = List.nth unops i in
      let r = Absdom.app1 ~n op v in
      well_formed ~n r
      &&
      let dv = Absdom.to_dense ~n v and dr = Absdom.to_dense ~n r in
      Array.for_all
        (fun p ->
          let want = ref1 op dv.(p) in
          pv_eq dr.(p) want
          ||
          (QCheck2.Test.fail_reportf "%s lane %d/%d: compressed %s, pointwise %s"
             opname p n (pp_pv dr.(p)) (pp_pv want) [@warning "-20"]))
        (Array.init n Fun.id))

let test_blend =
  prop "blend masks lanes exactly"
    QCheck2.Gen.(
      let* n, old_v, upd = pair_gen in
      let* mask = dense_gen n in
      (* active set with run structure: lanes where the mask lane is
         Pbool true, plus every third lane *)
      let act =
        Iset.of_intervals
          (List.concat
             (List.init n (fun p ->
                  match mask.(p) with
                  | Absdom.Pbool true -> [ (p, p) ]
                  | _ -> if p mod 3 = 0 then [ (p, p) ] else [])))
      in
      return (n, old_v, upd, act))
    (fun (n, old_v, upd, act) ->
      let r = Absdom.blend ~n ~act old_v upd in
      well_formed ~n r
      &&
      let d_old = Absdom.to_dense ~n old_v
      and d_upd = Absdom.to_dense ~n upd
      and dr = Absdom.to_dense ~n r in
      Array.for_all
        (fun p ->
          pv_eq dr.(p) (if Iset.mem p act then d_upd.(p) else d_old.(p)))
        (Array.init n Fun.id))

let test_select =
  prop "select == dense table walk"
    QCheck2.Gen.(
      let* n = n_gen in
      let* sel = dense_gen n in
      let* k = int_range 1 4 in
      let* tbl =
        flatten_l (List.init k (fun _ -> map Absdom.of_dense (dense_gen n)))
      in
      return (n, Absdom.of_dense sel, Array.of_list tbl))
    (fun (n, sel, vs) ->
      let r = Absdom.select ~n sel vs in
      well_formed ~n r
      &&
      let ds = Absdom.to_dense ~n sel and dr = Absdom.to_dense ~n r in
      Array.for_all
        (fun p ->
          let want =
            match ds.(p) with
            | Absdom.Pint i when i >= 0 && i < Array.length vs ->
              Absdom.at vs.(i) p
            | _ -> Absdom.Punk
          in
          pv_eq dr.(p) want)
        (Array.init n Fun.id))

let test_truth =
  prop "truth classification agrees with the lanes"
    QCheck2.Gen.(
      let* n, v = value_gen in
      let* lo = int_range 0 (n - 1) in
      let* hi = int_range lo (n - 1) in
      return (n, v, Iset.range lo hi))
    (fun (n, v, act) ->
      let d = Absdom.to_dense ~n v in
      let lane_true p = d.(p) = Absdom.Pbool true in
      let lane_false p = d.(p) = Absdom.Pbool false in
      let lane_bool p = lane_true p || lane_false p in
      let acts = Iset.to_list act in
      match Absdom.truth ~n ~act v with
      | Absdom.T_true ->
        (* whole-ensemble verdicts come from Uni values only *)
        List.for_all lane_true (List.init n Fun.id)
      | Absdom.T_false -> List.for_all lane_false (List.init n Fun.id)
      | Absdom.T_unknown_uniform -> Absdom.is_uniform v
      | Absdom.T_split (t, f) ->
        Iset.is_empty (Iset.inter t f)
        && List.for_all
             (fun p ->
               if lane_true p then Iset.mem p t && not (Iset.mem p f)
               else if lane_false p then Iset.mem p f && not (Iset.mem p t)
               else false)
             acts
      | Absdom.T_divergent ->
        (not (Absdom.is_uniform v)) && not (List.for_all lane_bool acts))

let test_restrict_pids =
  prop "restrict / known_pids / int_pids match the lanes"
    QCheck2.Gen.(
      let* n, v = value_gen in
      let* lo = int_range 0 (n - 1) in
      let* hi = int_range lo (n - 1) in
      return (n, v, lo, hi))
    (fun (n, v, lo, hi) ->
      let d = Absdom.to_dense ~n v in
      let segs = Absdom.restrict ~n v (lo, hi) in
      let covered = ref lo in
      List.for_all
        (fun (l, u, s) ->
          let ok =
            l = !covered && u <= hi
            && List.for_all
                 (fun p -> pv_eq (Absdom.seg_at s p) d.(p))
                 (List.init (u - l + 1) (fun k -> l + k))
          in
          covered := u + 1;
          ok)
        segs
      && !covered = hi + 1
      && Iset.to_list (Absdom.known_pids ~n v)
         = List.filter (fun p -> d.(p) <> Absdom.Punk) (List.init n Fun.id)
      && Iset.to_list (Absdom.int_pids ~n v)
         = List.filter
             (fun p -> match d.(p) with Absdom.Pint _ -> true | _ -> false)
             (List.init n Fun.id))

let test_align_many =
  prop "align_many chunks concretize to the inputs"
    QCheck2.Gen.(
      let* n = n_gen in
      let* k = int_range 1 4 in
      let* vs =
        flatten_l (List.init k (fun _ -> map Absdom.of_dense (dense_gen n)))
      in
      return (n, vs))
    (fun (n, vs) ->
      let chunks = Absdom.align_many ~n vs in
      let denses = List.map (Absdom.to_dense ~n) vs in
      let covered = ref 0 in
      List.for_all
        (fun (l, u, segs) ->
          let ok =
            l = !covered && u < n
            && List.length segs = List.length vs
            && List.for_all2
                 (fun s d ->
                   List.for_all
                     (fun p -> pv_eq (Absdom.seg_at s p) d.(p))
                     (List.init (u - l + 1) (fun j -> l + j)))
                 segs denses
          in
          covered := u + 1;
          ok)
        chunks
      && !covered = n)

(* Uniform-unknown and divergent-unknown must never be conflated: the
   collective-congruence analysis lives on this distinction. *)
let test_unknown_distinction () =
  let n = 8 in
  Alcotest.(check bool) "Uni Punk is uniform" true
    (Absdom.is_uniform Absdom.unknown);
  Alcotest.(check bool) "divergent_unknown is not uniform" false
    (Absdom.is_uniform (Absdom.divergent_unknown ~n));
  Alcotest.(check bool) "of_segs keeps full-range Punk divergent" false
    (Absdom.is_uniform
       (Absdom.of_segs ~n [ (0, n - 1, Absdom.Sconst Absdom.Punk) ]));
  (* ...but a full-range known constant normalizes to Uni *)
  Alcotest.(check bool) "of_segs promotes known constants" true
    (Absdom.is_uniform
       (Absdom.of_segs ~n [ (0, n - 1, Absdom.Sconst (Absdom.Pint 3)) ]));
  (* singleton affine runs fold to constants *)
  match Absdom.of_segs ~n:1 [ (0, 0, Absdom.Saff { a = 5; b = 2 }) ] with
  | Absdom.Uni (Absdom.Pint 2) -> ()
  | v -> Alcotest.failf "singleton affine not folded: %a" Absdom.pp v

let suite =
  [
    test_roundtrip;
    test_app2;
    test_app1;
    test_blend;
    test_select;
    test_truth;
    test_restrict_pids;
    test_align_many;
    Alcotest.test_case "uniform vs divergent unknown" `Quick
      test_unknown_distinction;
  ]
