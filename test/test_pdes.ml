(* Differential determinism oracle for the domains-parallel scheduler.

   The parallel scheduler (Pdes generation + sequential replay) claims
   bit-identity: for any program, strategy, processor count, fault plan,
   and budget, running on N domains produces byte-for-byte the same
   Stats.to_json, the same trace-ring contents in the same order (which
   subsumes the trace-event-multiset guarantee), the same normalized
   skeleton, and the same outputs as the sequential path.  This suite
   holds it to that claim:

   - every committed example x 3 strategies x P in {4, 64, 256}
     x domains in {2, 4, 8}, against the domains=1 baseline;
   - the same grid under the differential fault oracle's seed grid
     (seeds 11, 42 at the low and high intensities);
   - Gen-driven random programs (including 2-D) at random
     (P, domains, safe-window) triples, shrunk via {!Fd_fuzz.Shrink}
     with a repro line on failure;
   - budgeted runs: step/event budgets must produce bit-identical
     partial results; wall-clock budgets a consistent sequential prefix
     (see the budget cases below for the exact guarantee). *)

open Fd_core
open Fd_machine
module Tr = Fd_trace.Trace
module Export = Fd_trace.Export

let prop ?(count = 60) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let examples_dir =
  if Sys.file_exists "../examples" then "../examples" else "examples"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let strategies =
  [
    ("interproc", Options.Interproc);
    ("immediate", Options.Immediate);
    ("runtime", Options.Runtime_resolution);
  ]

let examples =
  [
    "fig1.fd"; "fig4.fd"; "fig15.fd"; "jacobi1d.fd"; "jacobi2d.fd";
    "redblack.fd"; "multi_array.fd"; "dgefa.fd"; "adi_dynamic.fd";
    "adi_static.fd";
  ]

let compile ~strategy ~nprocs src =
  let opts = { Options.default with Options.nprocs; strategy } in
  (Driver.compile_source ~opts src).Codegen.program

(* One simulation, returning every observable the bit-identity claim
   covers: the full Stats JSON (counters, clocks, busy, outputs, the
   recorded event log), the trace ring's events in emission order, the
   normalized golden skeleton, and the partial-result marker. *)
type obs = {
  o_stats : string;
  o_raw : Stats.t;
  o_events : Tr.ev list;
  o_skeleton : string list;
  o_partial : string option;
  o_completed : bool;
}

let sim ?budget ?faults ?safe_window ~nprocs ~domains prog =
  let tr = Tr.create () in
  let config =
    Config.make ~domains ?safe_window ~nprocs ~record_trace:true ?faults
      ~trace:tr ()
  in
  let r = Scheduler.run_partial ?budget config prog in
  {
    o_stats = Fd_support.Json.to_string (Stats.to_json r.Scheduler.p_stats);
    o_raw = r.Scheduler.p_stats;
    o_events = Tr.to_list tr;
    o_skeleton = Export.skeleton tr;
    o_partial = r.Scheduler.p_exhausted;
    o_completed = r.Scheduler.p_frames <> None;
  }

(* Run [sim] capturing a simulation error as part of the observable:
   error behaviour must be identical across domains too. *)
let sim_or_error ?budget ?faults ?safe_window ~nprocs ~domains prog =
  match sim ?budget ?faults ?safe_window ~nprocs ~domains prog with
  | o -> Ok o
  | exception Scheduler.Sim_error e -> Error (Scheduler.error_to_string e)

let check_obs label base o =
  Alcotest.(check string) (label ^ ": stats json") base.o_stats o.o_stats;
  Alcotest.(check bool) (label ^ ": trace events bit-identical") true
    (base.o_events = o.o_events);
  Alcotest.(check (list string)) (label ^ ": skeleton") base.o_skeleton
    o.o_skeleton;
  Alcotest.(check (option string)) (label ^ ": partial") base.o_partial
    o.o_partial;
  Alcotest.(check bool) (label ^ ": completed") base.o_completed o.o_completed

(* Sequential runs on a shared compiled program must already be
   reproducible; this canary isolates state-leak failures from genuine
   parallel-scheduler failures in the matrix below. *)
let sequential_rerun_canary () =
  let src = read_file (Filename.concat examples_dir "jacobi2d.fd") in
  let prog = compile ~strategy:Options.Interproc ~nprocs:8 src in
  let a = sim ~nprocs:8 ~domains:1 prog in
  let b = sim ~nprocs:8 ~domains:1 prog in
  check_obs "seq rerun" a b

(* The fault-free matrix: every example x strategy x P x domains.  At
   P=256 the runtime-resolution strategy generates millions of messages
   and a single cell runs for tens of seconds, so the default grid trims
   that band to the interproc/immediate strategies and domains {2, 8};
   set FDC_PDES_FULL=1 for the untrimmed grid. *)
let full_grid = Sys.getenv_opt "FDC_PDES_FULL" <> None

let example_matrix () =
  if not full_grid then
    print_endline
      "pdes: P=256 band trimmed to interproc/immediate x domains {2,8} \
       (set FDC_PDES_FULL=1 for the full grid)";
  let grid nprocs =
    if nprocs < 256 || full_grid then (strategies, [ 2; 4; 8 ])
    else
      ( List.filter (fun (n, _) -> n <> "runtime") strategies,
        [ 2; 8 ] )
  in
  List.iter
    (fun file ->
      let src = read_file (Filename.concat examples_dir file) in
      List.iter
        (fun nprocs ->
          let strats, domain_counts = grid nprocs in
          List.iter
            (fun (sname, strategy) ->
              let prog = compile ~strategy ~nprocs src in
              let base = sim ~nprocs ~domains:1 prog in
              List.iter
                (fun domains ->
                  let label =
                    Printf.sprintf "%s %s P=%d domains=%d" file sname nprocs
                      domains
                  in
                  check_obs label base (sim ~nprocs ~domains prog))
                domain_counts)
            strats)
        [ 4; 64; 256 ])
    examples

(* The same bit-identity under an adversarial network: the differential
   fault oracle's seed grid (low and high intensities).  Faults make the
   schedule-independence claim earn its keep: retransmit latencies,
   duplicates, and delays all key off per-channel sequence numbers that
   generation must reproduce exactly. *)
let fault_grid () =
  let intensities =
    [
      ("low", fun seed -> Fault.make ~seed ~drop:0.05 ~dup:0.05 ~delay:200e-6 ());
      ("high", fun seed -> Fault.make ~seed ~drop:0.3 ~dup:0.2 ~delay:1e-3 ());
    ]
  in
  List.iter
    (fun file ->
      let src = read_file (Filename.concat examples_dir file) in
      let prog = compile ~strategy:Options.Interproc ~nprocs:8 src in
      List.iter
        (fun seed ->
          List.iter
            (fun (iname, plan) ->
              let faults = plan seed in
              let base = sim_or_error ~faults ~nprocs:8 ~domains:1 prog in
              List.iter
                (fun domains ->
                  let label =
                    Printf.sprintf "%s seed=%d %s domains=%d" file seed iname
                      domains
                  in
                  match (base, sim_or_error ~faults ~nprocs:8 ~domains prog) with
                  | Ok b, Ok o -> check_obs label b o
                  | Error b, Error o ->
                    Alcotest.(check string) (label ^ ": error") b o
                  | Ok _, Error e ->
                    Alcotest.failf "%s: parallel errored (%s), sequential ran"
                      label e
                  | Error e, Ok _ ->
                    Alcotest.failf "%s: sequential errored (%s), parallel ran"
                      label e)
                [ 2; 4 ])
            intensities)
        [ 11; 42 ])
    examples

(* --- Budgets ------------------------------------------------------------- *)

(* Step and event budgets are charged action-by-action during the
   replay, and generation gives every processor a fresh budget at the
   full limits (one processor's usage is bounded by the ensemble total),
   so budgeted partial results are bit-identical, reason included. *)
let budget_steps_bit_identical () =
  let src = read_file (Filename.concat examples_dir "dgefa.fd") in
  let prog = compile ~strategy:Options.Interproc ~nprocs:8 src in
  List.iter
    (fun budget ->
      let base = sim ~budget ~nprocs:8 ~domains:1 prog in
      List.iter
        (fun domains ->
          let label =
            Printf.sprintf "steps=%s domains=%d"
              (match budget.Fd_support.Budget.steps with
              | Some n -> string_of_int n
              | None -> "-")
              domains
          in
          check_obs label base (sim ~budget ~nprocs:8 ~domains prog))
        [ 2; 4; 8 ])
    [
      { Fd_support.Budget.steps = Some 100; events = None; wall = None };
      { Fd_support.Budget.steps = Some 500; events = None; wall = None };
      { Fd_support.Budget.steps = None; events = Some 40; wall = None };
      { Fd_support.Budget.steps = None; events = Some 200; wall = None };
    ]

(* Wall-clock budgets depend on host time, so bit-identity is impossible
   even sequentially; the documented guarantee is weaker: the run either
   completes bit-identically or stops with a partial marker whose
   statistics are a prefix of some sequential execution — every monotone
   counter bounded by the completed run's value.  (Wall time is only
   sampled every 1024 budget ticks, so a run shorter than one stride
   legitimately completes; dgefa at P=64 is comfortably past it.) *)
let budget_wall_prefix () =
  let src = read_file (Filename.concat examples_dir "dgefa.fd") in
  let prog = compile ~strategy:Options.Interproc ~nprocs:64 src in
  let full = sim ~nprocs:64 ~domains:1 prog in
  let budget = { Fd_support.Budget.steps = None; events = None; wall = Some 0.0 } in
  let o = sim ~budget ~nprocs:64 ~domains:4 prog in
  Alcotest.(check bool) "stopped early" true (o.o_partial <> None);
  Alcotest.(check bool) "no final frames" false o.o_completed;
  let counters (s : Stats.t) =
    [
      ("messages", s.Stats.messages);
      ("message_bytes", s.Stats.message_bytes);
      ("bcasts", s.Stats.bcasts);
      ("bcast_bytes", s.Stats.bcast_bytes);
      ("remaps", s.Stats.remaps);
      ("remap_bytes", s.Stats.remap_bytes);
      ("flops", s.Stats.flops);
      ("mem_ops", s.Stats.mem_ops);
    ]
  in
  List.iter2
    (fun (k, vfull) (_, vpart) ->
      if vpart > vfull then
        Alcotest.failf "counter %s exceeds the completed run: %d > %d" k vpart
          vfull)
    (counters full.o_raw) (counters o.o_raw)

(* --- Properties over generated programs ---------------------------------- *)

let src_of_seed ?(two_d = false) seed =
  let st = Random.State.make [| seed |] in
  if two_d then Fd_workloads.Gen.random_source2d st
  else Fd_workloads.Gen.random_source st

let case_gen =
  QCheck2.Gen.(
    quad (int_range 0 100_000)
      (oneofl [ 3; 4; 7; 16 ])
      (oneofl [ 2; 3; 4; 8 ])
      (oneofl [ None; Some 0.0; Some 1e-6; Some 1e-3 ]))

let agrees ?safe_window ~nprocs ~domains src =
  let prog = compile ~strategy:Options.Interproc ~nprocs src in
  let base = sim ~nprocs ~domains:1 prog in
  let o = sim ?safe_window ~nprocs ~domains prog in
  base.o_stats = o.o_stats
  && base.o_events = o.o_events
  && base.o_skeleton = o.o_skeleton

(* On failure, shrink the source (keeping "still disagrees") and print a
   self-contained repro line. *)
let check_generated ?safe_window ~nprocs ~domains ~seed src =
  agrees ?safe_window ~nprocs ~domains src
  ||
  let keep s =
    try not (agrees ?safe_window ~nprocs ~domains s) with _ -> true
  in
  let small = Fd_fuzz.Shrink.shrink ~keep src in
  Printf.printf
    "repro: seed=%d nprocs=%d domains=%d safe-window=%s\n\
     --- shrunk reproducer ---\n%s\n--- end ---\n"
    seed nprocs domains
    (match safe_window with
    | None -> "default"
    | Some w -> string_of_float w)
    small;
  false

let random_parallel_agrees (seed, nprocs, domains, safe_window) =
  check_generated ?safe_window ~nprocs ~domains ~seed (src_of_seed seed)

let random_parallel_agrees_2d (seed, nprocs, domains, safe_window) =
  check_generated ?safe_window ~nprocs ~domains ~seed
    (src_of_seed ~two_d:true seed)

let suite =
  [
    Alcotest.test_case "sequential rerun canary" `Quick sequential_rerun_canary;
    Alcotest.test_case "examples x strategies x P x domains bit-identical"
      `Slow example_matrix;
    Alcotest.test_case "fault grid bit-identical" `Slow fault_grid;
    Alcotest.test_case "step/event budgets bit-identical" `Quick
      budget_steps_bit_identical;
    Alcotest.test_case "wall budget yields a sequential prefix" `Quick
      budget_wall_prefix;
    prop ~count:40 "generated: parallel agrees at random (P, domains, window)"
      case_gen random_parallel_agrees;
    prop ~count:15 "generated 2-D: parallel agrees" case_gen
      random_parallel_agrees_2d;
  ]
