(* Frontend tests: lexing, parsing, printing round trips, and semantic
   checking (both acceptance and rejection). *)

open Fd_support
open Fd_frontend

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let parse_ok src = Sema.check_source src

let rejects name src =
  Alcotest.test_case name `Quick (fun () ->
      match Sema.check_source src with
      | _ -> Alcotest.fail "expected a compile error"
      | exception (Diag.Compile_error _ | Diag.Compile_errors _) -> ())

(* --- Lexer ------------------------------------------------------------- *)

let lex_tokens src =
  List.map snd (Lexer.tokenize src)

let l_numbers () =
  (match lex_tokens "42 3.5 1e3 2.5e-2 1.d0" with
  | [ Token.INT 42; Token.REAL_LIT a; Token.REAL_LIT b; Token.REAL_LIT c;
      Token.REAL_LIT d; Token.EOF ] ->
    check "3.5" true (a = 3.5);
    check "1e3" true (b = 1000.0);
    check "2.5e-2" true (c = 0.025);
    check "1.d0" true (d = 1.0)
  | ts -> Alcotest.failf "unexpected tokens: %s"
            (String.concat " " (List.map Token.to_string ts)))

let l_dotted_ops () =
  match lex_tokens "a .eq. b .and. .not. c" with
  | [ Token.IDENT "a"; Token.EQEQ; Token.IDENT "b"; Token.AND; Token.NOT;
      Token.IDENT "c"; Token.EOF ] -> ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat " " (List.map Token.to_string ts))

let l_dot_vs_real () =
  (* x(1) followed by .eq. must not glue the dot to a number *)
  match lex_tokens "x(1) .eq. 2.0" with
  | [ Token.IDENT "x"; Token.LPAREN; Token.INT 1; Token.RPAREN; Token.EQEQ;
      Token.REAL_LIT _; Token.EOF ] -> ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat " " (List.map Token.to_string ts))

let l_continuation () =
  let toks = lex_tokens "x = 1 + &\n    2" in
  check "no NEWLINE inside continuation" false
    (List.exists (fun t -> t = Token.NEWLINE) (Listx.take 5 toks))

let l_comments () =
  match lex_tokens "x = 1 ! a comment\ny = 2" with
  | [ Token.IDENT "x"; Token.EQ; Token.INT 1; Token.NEWLINE; Token.IDENT "y";
      Token.EQ; Token.INT 2; Token.EOF ] -> ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat " " (List.map Token.to_string ts))

let l_case_insensitive () =
  match lex_tokens "DO I = 1, N" with
  | Token.KW "do" :: Token.IDENT "i" :: _ -> ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat " " (List.map Token.to_string ts))

let l_relational_forms () =
  match lex_tokens "a .lt. b <= c /= d <> e" with
  | [ Token.IDENT "a"; Token.LT; Token.IDENT "b"; Token.LE; Token.IDENT "c";
      Token.NE; Token.IDENT "d"; Token.NE; Token.IDENT "e"; Token.EOF ] -> ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat " " (List.map Token.to_string ts))

(* --- Parser ------------------------------------------------------------- *)

let simple_program =
  {|
program p
  parameter (n = 10)
  real x(10)
  integer i
  distribute x(block)
  do i = 1, n
    x(i) = float(i) ** 2 / 2.0
  enddo
  if (x(1) > 0.5) then
    x(1) = 0.0
  elseif (x(2) > 0.0) then
    x(2) = 0.0
  else
    x(3) = 0.0
  endif
end
|}

let p_simple () =
  let cp = parse_ok simple_program in
  check_int "one unit" 1 (List.length cp.Sema.units)

let p_precedence () =
  let cp = parse_ok "program p\n  real a\n  a = 1.0 + 2.0 * 3.0 ** 2.0\nend\n" in
  let u = (List.hd cp.Sema.units).Sema.unit_ in
  match (List.hd u.Ast.body).Ast.kind with
  | Ast.Assign (_, Ast.Bin (Ast.Add, Ast.Real_const 1.0,
                            Ast.Bin (Ast.Mul, Ast.Real_const 2.0,
                                     Ast.Bin (Ast.Pow, _, _)))) -> ()
  | _ -> Alcotest.fail "precedence mis-parsed"

let p_one_line_if () =
  let cp = parse_ok "program p\n  integer i\n  if (i > 0) i = 0\nend\n" in
  let u = (List.hd cp.Sema.units).Sema.unit_ in
  match (List.hd u.Ast.body).Ast.kind with
  | Ast.If { then_ = [ _ ]; else_ = []; _ } -> ()
  | _ -> Alcotest.fail "one-line IF mis-parsed"

let p_end_do_two_words () =
  ignore (parse_ok "program p\n  integer i\n  do i = 1, 3\n  end do\nend\n")

let p_do_step () =
  let cp = parse_ok "program p\n  integer i, s\n  do i = 10, 2, -2\n    s = s + i\n  enddo\nend\n" in
  let u = (List.hd cp.Sema.units).Sema.unit_ in
  match (List.hd u.Ast.body).Ast.kind with
  | Ast.Do { step = Some (Ast.Un (Ast.Neg, Ast.Int_const 2)); _ } -> ()
  | _ -> Alcotest.fail "DO step mis-parsed"

let p_align_subs () =
  let cp =
    parse_ok
      "program p\n  real y(4,4)\n  decomposition d(4,4)\n  align y(i,j) with d(j,i)\nend\n"
  in
  let u = (List.hd cp.Sema.units).Sema.unit_ in
  match (List.hd u.Ast.body).Ast.kind with
  | Ast.Align { subs = [ Ast.Align_dim (1, 0); Ast.Align_dim (0, 0) ]; _ } -> ()
  | _ -> Alcotest.fail "ALIGN permutation mis-parsed"

let p_align_offset () =
  let cp =
    parse_ok
      "program p\n  real y(4)\n  decomposition d(8)\n  align y(i) with d(i+2)\nend\n"
  in
  let u = (List.hd cp.Sema.units).Sema.unit_ in
  match (List.hd u.Ast.body).Ast.kind with
  | Ast.Align { subs = [ Ast.Align_dim (0, 2) ]; _ } -> ()
  | _ -> Alcotest.fail "ALIGN offset mis-parsed"

let p_distribute_specs () =
  let cp =
    parse_ok
      "program p\n  real a(4,8)\n  distribute a(:,block_cyclic(2))\nend\n"
  in
  let u = (List.hd cp.Sema.units).Sema.unit_ in
  match (List.hd u.Ast.body).Ast.kind with
  | Ast.Distribute { dists = [ Ast.Star; Ast.Block_cyclic 2 ]; _ } -> ()
  | _ -> Alcotest.fail "DISTRIBUTE specs mis-parsed"

(* --- Printer round trip -------------------------------------------------- *)

let roundtrip src () =
  let cp1 = parse_ok src in
  let printed =
    Ast_printer.program_to_string (List.map (fun cu -> cu.Sema.unit_) cp1.Sema.units)
  in
  let cp2 = parse_ok printed in
  let printed2 =
    Ast_printer.program_to_string (List.map (fun cu -> cu.Sema.unit_) cp2.Sema.units)
  in
  check_str "printer fixpoint" printed printed2

let roundtrip_cases =
  [
    ("roundtrip simple", simple_program);
    ("roundtrip fig1", Fd_workloads.Figures.fig1 ());
    ("roundtrip fig4", Fd_workloads.Figures.fig4 ());
    ("roundtrip fig15", Fd_workloads.Figures.fig15 ());
    ("roundtrip dgefa", Fd_workloads.Dgefa.source ~n:8 ());
    ("roundtrip jacobi2d", Fd_workloads.Stencil.jacobi2d ());
  ]

(* --- Sema acceptance / rejection ----------------------------------------- *)

let s_param_fold () =
  let cp = parse_ok "program p\n  parameter (n = 4, m = n * 2 + 1)\n  real x(m)\nend\n" in
  let st = (List.hd cp.Sema.units).Sema.symtab in
  (match Symtab.array_info st "x" with
  | Some { Symtab.dims = [ (1, 9) ]; _ } -> ()
  | _ -> Alcotest.fail "parameter-sized dimension not folded")

let s_intrinsic_resolution () =
  let cp = parse_ok "program p\n  real x\n  x = abs(-1.5) + max(1.0, 2.0, 3.0)\nend\n" in
  let u = (List.hd cp.Sema.units).Sema.unit_ in
  let saw_funcall = ref 0 in
  Ast.iter_stmts
    (fun s ->
      Ast.iter_exprs_stmt
        (fun e -> match e with Ast.Funcall _ -> incr saw_funcall | _ -> ())
        s)
    u.Ast.body;
  check_int "intrinsics resolved" 2 !saw_funcall

let rejections =
  [
    rejects "undeclared array" "program p\n  x(1) = 0.0\nend\n";
    rejects "rank mismatch" "program p\n  real x(4,4)\n  x(1) = 0.0\nend\n";
    rejects "assign to parameter" "program p\n  parameter (n = 3)\n  n = 4\nend\n";
    rejects "call unknown subroutine" "program p\n  call nosuch()\nend\n";
    rejects "call arity" "program p\n  call f(1)\nend\nsubroutine f(a, b)\n  real a, b\nend\n";
    rejects "logical arithmetic" "program p\n  real x\n  x = .true. + 1.0\nend\n";
    rejects "if on numeric" "program p\n  if (1) then\n  endif\nend\n";
    rejects "two mains" "program p\nend\nprogram q\nend\n";
    rejects "no main" "subroutine f()\nend\n";
    rejects "duplicate declaration" "program p\n  real x\n  integer x\nend\n";
    rejects "align non-array" "program p\n  real x\n  decomposition d(4)\n  align x(i) with d(i)\nend\n";
    rejects "distribute rank" "program p\n  real a(4,4)\n  distribute a(block)\nend\n";
    rejects "assign loop index" "program p\n  integer i\n  do i = 1, 3\n    i = 5\n  enddo\nend\n";
    rejects "nonaffine align sub" "program p\n  real y(4)\n  decomposition d(4)\n  align y(i) with d(i*i)\nend\n";
    rejects "whole array in expression" "program p\n  real x(4), s\n  s = x + 1.0\nend\n";
  ]

let suite =
  [
    Alcotest.test_case "lex numbers" `Quick l_numbers;
    Alcotest.test_case "lex dotted operators" `Quick l_dotted_ops;
    Alcotest.test_case "lex real vs .eq." `Quick l_dot_vs_real;
    Alcotest.test_case "lex continuation" `Quick l_continuation;
    Alcotest.test_case "lex comments" `Quick l_comments;
    Alcotest.test_case "lex case-insensitive keywords" `Quick l_case_insensitive;
    Alcotest.test_case "lex relational spellings" `Quick l_relational_forms;
    Alcotest.test_case "parse simple program" `Quick p_simple;
    Alcotest.test_case "parse precedence" `Quick p_precedence;
    Alcotest.test_case "parse one-line if" `Quick p_one_line_if;
    Alcotest.test_case "parse end do" `Quick p_end_do_two_words;
    Alcotest.test_case "parse do step" `Quick p_do_step;
    Alcotest.test_case "parse align permutation" `Quick p_align_subs;
    Alcotest.test_case "parse align offset" `Quick p_align_offset;
    Alcotest.test_case "parse distribute specs" `Quick p_distribute_specs;
    Alcotest.test_case "sema parameter folding" `Quick s_param_fold;
    Alcotest.test_case "sema intrinsic resolution" `Quick s_intrinsic_resolution;
  ]
  @ List.map (fun (name, src) -> Alcotest.test_case name `Quick (roundtrip src))
      roundtrip_cases
  @ rejections
