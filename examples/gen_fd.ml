(* Regenerate the committed .fd example programs from the workload
   generators:  dune exec examples/gen_fd.exe -- [dir]
   Keep the table here in sync with the (rule ...) stanzas in
   examples/dune. *)

let programs =
  [ ("fig1.fd", Fd_workloads.Figures.fig1 ());
    ("fig4.fd", Fd_workloads.Figures.fig4 ());
    ("fig15.fd", Fd_workloads.Figures.fig15 ());
    ("jacobi1d.fd", Fd_workloads.Stencil.jacobi1d ());
    ("jacobi2d.fd", Fd_workloads.Stencil.jacobi2d ());
    ("redblack.fd", Fd_workloads.Stencil.redblack ());
    ("multi_array.fd", Fd_workloads.Stencil.multi_array ());
    ("dgefa.fd", Fd_workloads.Dgefa.source ~n:8 ());
    ("adi_dynamic.fd", Fd_workloads.Adi.dynamic ());
    ("adi_static.fd", Fd_workloads.Adi.static_ ()) ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  List.iter
    (fun (name, src) ->
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc src;
      close_out oc;
      Printf.printf "wrote %s\n" path)
    programs
