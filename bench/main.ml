(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 5 for the experiment index and
   EXPERIMENTS.md for paper-vs-measured discussion).

     dune exec bench/main.exe            -- all experiment tables
     dune exec bench/main.exe -- quick   -- smaller sweeps
     dune exec bench/main.exe -- micro   -- also run Bechamel compile-time
                                            microbenchmarks (E8b)
*)

open Fd_core
open Fd_machine

let quick = Array.exists (String.equal "quick") Sys.argv
let micro = Array.exists (String.equal "micro") Sys.argv

let header title =
  Fmt.pr "@.=== %s ===@." title

let run ?(nprocs = 4) ?(strategy = Options.Interproc) ?(remap = Options.Remap_kill)
    ?(collectives = true) src =
  let opts =
    { Options.default with
      Options.nprocs; strategy; remap_level = remap; use_collectives = collectives }
  in
  let r = Driver.run_source ~opts src in
  if not (Driver.verified r) then
    failwith (Fmt.str "verification failed (%d mismatches)" (List.length r.Driver.mismatches));
  r

let ms r = Stats.elapsed r.Driver.stats *. 1e3
let msgs r = r.Driver.stats.Stats.messages
let bcasts r = r.Driver.stats.Stats.bcasts
let bytes r = r.Driver.stats.Stats.message_bytes + r.Driver.stats.Stats.bcast_bytes

(* --- E1: Figure 2 (compiled) vs Figure 3 (run-time resolution) ---------- *)

let e1 () =
  header "E1: Figure 2 vs Figure 3 - compiled vs run-time resolution (fig1 kernel, P=4)";
  Fmt.pr "%6s | %-10s | %8s | %9s | %12s | %8s@." "N" "strategy" "messages"
    "bytes" "elapsed (ms)" "ratio";
  Fmt.pr "-------+------------+----------+-----------+--------------+---------@.";
  List.iter
    (fun n ->
      let src = Fd_workloads.Figures.fig1 ~n ~shift:5 () in
      let ip = run ~strategy:Options.Interproc src in
      let rr = run ~strategy:Options.Runtime_resolution src in
      Fmt.pr "%6d | %-10s | %8d | %9d | %12.3f | %8s@." n "compiled" (msgs ip)
        (bytes ip) (ms ip) "1.0";
      Fmt.pr "%6d | %-10s | %8d | %9d | %12.3f | %8.1f@." n "runtime" (msgs rr)
        (bytes rr) (ms rr)
        (ms rr /. ms ip))
    (if quick then [ 100; 400 ] else [ 100; 400; 1600 ])

(* --- E2: Figure 10 vs Figure 12 - delayed vs immediate instantiation ----- *)

let e2 () =
  header "E2: Figure 10 vs Figure 12 - cross-procedure message vectorization (fig4, P=4)";
  Fmt.pr "%6s | %-10s | %8s | %9s | %12s@." "N" "strategy" "messages" "bytes"
    "elapsed (ms)";
  Fmt.pr "-------+------------+----------+-----------+--------------@.";
  List.iter
    (fun n ->
      let src = Fd_workloads.Figures.fig4 ~n ~shift:5 () in
      let ip = run ~strategy:Options.Interproc src in
      let im = run ~strategy:Options.Immediate src in
      Fmt.pr "%6d | %-10s | %8d | %9d | %12.3f@." n "interproc" (msgs ip) (bytes ip) (ms ip);
      Fmt.pr "%6d | %-10s | %8d | %9d | %12.3f@." n "immediate" (msgs im) (bytes im) (ms im))
    (if quick then [ 40 ] else [ 40; 100 ]);
  Fmt.pr "(the paper's example: 1 vectorized message per boundary vs one per iteration)@."

(* --- E3: Figure 16 - dynamic decomposition optimization ladder ------------ *)

let e3 () =
  let n = if quick then 256 else 1024 and t = if quick then 10 else 50 in
  header (Fmt.str "E3: Figure 16 - dynamic remapping optimization (fig15, N=%d, T=%d, P=4)" n t);
  Fmt.pr "%-6s | %8s | %9s | %12s | %12s@." "level" "physical" "mark-only"
    "bytes moved" "elapsed (ms)";
  Fmt.pr "-------+----------+-----------+--------------+-------------@.";
  List.iter
    (fun level ->
      let r = run ~remap:level (Fd_workloads.Figures.fig15 ~n ~t ()) in
      Fmt.pr "%-6s | %8d | %9d | %12d | %12.3f@."
        (Options.remap_level_name level)
        r.Driver.stats.Stats.remaps r.Driver.stats.Stats.remap_marks
        r.Driver.stats.Stats.remap_bytes (ms r))
    [ Options.Remap_none; Options.Remap_live; Options.Remap_hoist; Options.Remap_kill ];
  Fmt.pr "(expected shape: 4T+2 / 2T+2 / 4 / 2 physical + 2 mark-only)@."

(* --- E4: Section 9 - the dgefa case study --------------------------------- *)

let e4 () =
  header "E4: Section 9 - dgefa under the three strategies (P=4)";
  Fmt.pr "%5s | %-18s | %8s | %6s | %9s | %12s | %8s@." "n" "strategy" "messages"
    "bcasts" "bytes" "elapsed (ms)" "vs best";
  Fmt.pr "------+--------------------+----------+--------+-----------+--------------+---------@.";
  List.iter
    (fun n ->
      let src = Fd_workloads.Dgefa.source ~n () in
      let results =
        List.filter_map
          (fun strategy ->
            (* run-time resolution is quadratic in message count; keep it
               to the sizes the paper could also measure *)
            if strategy = Options.Runtime_resolution && n > 64 then None
            else Some (strategy, run ~strategy src))
          [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ]
      in
      let best = List.fold_left (fun acc (_, r) -> Float.min acc (ms r)) infinity results in
      List.iter
        (fun (strategy, r) ->
          Fmt.pr "%5d | %-18s | %8d | %6d | %9d | %12.3f | %8.1f@." n
            (Options.strategy_name strategy)
            (msgs r) (bcasts r) (bytes r) (ms r) (ms r /. best))
        results)
    (if quick then [ 16; 32 ] else [ 16; 32; 64 ])

(* --- E5: dgefa speedup vs processor count ---------------------------------- *)

let e5 () =
  let n = if quick then 32 else 64 in
  header (Fmt.str "E5: dgefa speedup vs processors (n=%d, interprocedural)" n);
  Fmt.pr
    "(simulated elapsed time; the per-element work w scales the@.\
    \ computation-to-communication ratio - small w is the raw i860 grain,@.\
    \ where a matrix this small is communication-bound, exactly as on the@.\
    \ real machine; larger w emulates the larger problems the paper ran)@.";
  let src = Fd_workloads.Dgefa.source ~n () in
  Fmt.pr "%12s | %6s | %12s | %10s | %10s@." "w (us/flop)" "P" "elapsed (ms)"
    "speedup" "efficiency";
  Fmt.pr "-------------+--------+--------------+------------+-----------@.";
  List.iter
    (fun grain ->
      let seq_time = ref 0.0 in
      List.iter
        (fun p ->
          let machine =
            Config.make ~nprocs:p ~flop:(grain *. 1e-6) ~mem_op:(grain *. 0.5e-6) ()
          in
          let opts = { Options.default with Options.nprocs = p } in
          let r = Driver.run_source ~opts ~machine src in
          if not (Driver.verified r) then failwith "E5 verification";
          let t = Stats.elapsed r.Driver.stats in
          if p = 1 then seq_time := t;
          let sp = !seq_time /. t in
          Fmt.pr "%12.2f | %6d | %12.3f | %10.2f | %10.2f@." grain p (t *. 1e3) sp
            (sp /. float_of_int p))
        [ 1; 2; 4; 8 ])
    (if quick then [ 0.05; 5.0 ] else [ 0.05; 1.0; 5.0 ])

(* --- E6: Section 8 - recompilation analysis --------------------------------- *)

let e6 () =
  header "E6: Section 8 - recompilation after edits (dgefa, 7 procedures)";
  let before = Fd_workloads.Dgefa.source ~n:16 () in
  let scenarios =
    [
      ("no-op edit", before);
      ( "daxpy body edit",
        Str.global_replace
          (Str.regexp_string "a(i,j) = a(i,j) + a(k,j) * a(i,k)")
          "a(i,j) = a(i,j) + 2.0 * a(k,j) * a(i,k)" before );
      ( "dscal touches extra data",
        Str.global_replace
          (Str.regexp_string "a(i,k) = -a(i,k) / t")
          "a(i,k) = -a(i,k) / t\n    a(i,k) = a(i,k) + 0.0" before );
      ( "distribution changed",
        Str.global_replace (Str.regexp_string "distribute a(:,cyclic)")
          "distribute a(:,block)" before );
    ]
  in
  Fmt.pr "%-26s | %11s | %s@." "edit" "recompiled" "procedures";
  Fmt.pr "---------------------------+-------------+---------------------------@.";
  List.iter
    (fun (name, after) ->
      let r, total = Recompile.after_edit ~before ~after () in
      Fmt.pr "%-26s | %5d of %2d | %s@." name (List.length r) total
        (String.concat "," r))
    scenarios

(* --- E7: Section 5.6 - overlap estimates vs actual --------------------------- *)

let e7 () =
  header "E7: Section 5.6 - overlap regions, estimated vs actual";
  let widths = [ 1; 2; 4; 8 ] in
  let cp =
    Fd_frontend.Sema.check_source (Fd_workloads.Stencil.shifts ~n:256 ~widths ())
  in
  let rows = Overlap.analyze Options.default cp in
  Fmt.pr "%-10s %-6s %-5s | %-16s | %-16s@." "procedure" "array" "dim"
    "estimated" "actual";
  Fmt.pr "--------------------------+------------------+-----------------@.";
  List.iter
    (fun r ->
      Fmt.pr "%-10s %-6s %-5d | [-%d,+%d]%10s | [-%d,+%d]@." r.Overlap.ov_proc
        r.Overlap.ov_array r.Overlap.ov_dim r.Overlap.ov_estimated.Overlap.neg
        r.Overlap.ov_estimated.Overlap.pos ""
        r.Overlap.ov_actual.Overlap.neg r.Overlap.ov_actual.Overlap.pos)
    rows

(* --- E8: Section 3/5 - compilation cost -------------------------------------- *)

let e8 () =
  header "E8: compilation cost (single pass per procedure)";
  let src = Fd_workloads.Dgefa.source ~n:32 () in
  let cp = Fd_frontend.Sema.check_source src in
  Fmt.pr "%-20s | %14s | %6s@." "strategy" "compile (ms)" "procs";
  Fmt.pr "---------------------+----------------+-------@.";
  List.iter
    (fun strategy ->
      let opts = { Options.default with Options.strategy } in
      let t0 = Sys.time () in
      let iters = 20 in
      let nprocs = ref 0 in
      for _ = 1 to iters do
        let c = Codegen.compile opts cp in
        nprocs := List.length c.Codegen.program.Node.n_procs
      done;
      let dt = (Sys.time () -. t0) /. float_of_int iters *. 1e3 in
      Fmt.pr "%-20s | %14.2f | %6d@." (Options.strategy_name strategy) dt !nprocs)
    [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ]

(* --- E8c: compile time per pipeline pass -------------------------------------- *)

let e8c () =
  header "E8c: compile time per pipeline pass (dgefa n=32, mean of 20 runs)";
  let src = Fd_workloads.Dgefa.source ~n:32 () in
  Fmt.pr "%-18s" "pass";
  List.iter
    (fun s -> Fmt.pr " | %13s" (Options.strategy_name s))
    [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ];
  Fmt.pr "@.-------------------+---------------+---------------+---------------@.";
  let iters = 20 in
  let mean_times strategy =
    (* mean wall-clock ms per pass over [iters] fresh pipeline runs *)
    let totals = Hashtbl.create 8 in
    for _ = 1 to iters do
      let opts = { Options.default with Options.strategy } in
      let report = Pipeline.run (Pipeline.of_source ~opts src) in
      List.iter
        (fun (e : Pass.entry) ->
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt totals e.Pass.e_pass) in
          Hashtbl.replace totals e.Pass.e_pass (prev +. e.Pass.e_time))
        report
    done;
    fun pass ->
      Option.value ~default:0.0 (Hashtbl.find_opt totals pass)
      /. float_of_int iters *. 1e3
  in
  let per_strategy =
    List.map mean_times
      [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ]
  in
  List.iter
    (fun pass ->
      Fmt.pr "%-18s" pass;
      List.iter (fun times -> Fmt.pr " | %10.3f ms" (times pass)) per_strategy;
      Fmt.pr "@.")
    Pipeline.pass_names

(* --- E8b: Bechamel microbenchmarks of the compiler phases --------------------- *)

let e8b () =
  header "E8b: Bechamel microbenchmarks (compiler phases on dgefa n=32)";
  let open Bechamel in
  let src = Fd_workloads.Dgefa.source ~n:32 () in
  let cp = Fd_frontend.Sema.check_source src in
  let acg = Fd_callgraph.Acg.build cp in
  let tests =
    [ Test.make ~name:"parse+check" (Staged.stage (fun () ->
          ignore (Fd_frontend.Sema.check_source src)));
      Test.make ~name:"acg+side-effects" (Staged.stage (fun () ->
          let acg = Fd_callgraph.Acg.build cp in
          ignore (Fd_callgraph.Side_effects.compute acg)));
      Test.make ~name:"reaching-decomps" (Staged.stage (fun () ->
          ignore (Reaching_decomps.compute acg)));
      Test.make ~name:"full-compile" (Staged.stage (fun () ->
          ignore (Codegen.compile Options.default cp)));
      Test.make ~name:"simulate" (Staged.stage (fun () ->
          let c = Codegen.compile Options.default cp in
          ignore (Scheduler.run (Config.ipsc860 ~nprocs:4 ()) c.Codegen.program)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                     ~predictors:[| Measure.run |]) instance raw
    in
    results
  in
  List.iter
    (fun t ->
      let results = benchmark (Test.make_grouped ~name:"g" [ t ]) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
            Fmt.pr "%-24s %12.1f ns/run@." name est
          | _ -> Fmt.pr "%-24s (no estimate)@." name)
        results)
    tests

(* --- E9: dynamic remapping vs static distribution for ADI ------------------ *)

let e9 () =
  let n = if quick then 24 else 48 and t = if quick then 2 else 4 in
  header
    (Fmt.str
       "E9: ADI alternating sweeps - dynamic remapping vs static distribution (n=%d, t=%d, P=4)"
       n t);
  Fmt.pr "%-22s | %8s | %6s | %7s | %12s | %12s@." "variant" "messages" "bcasts"
    "remaps" "bytes moved" "elapsed (ms)";
  Fmt.pr "-----------------------+----------+--------+---------+--------------+-------------@.";
  List.iter
    (fun (name, src) ->
      let r = run src in
      Fmt.pr "%-22s | %8d | %6d | %7d | %12d | %12.3f@." name (msgs r) (bcasts r)
        r.Driver.stats.Stats.remaps r.Driver.stats.Stats.remap_bytes (ms r))
    [ ("dynamic (transpose)", Fd_workloads.Adi.dynamic ~n ~t ());
      ("static (fallback)", Fd_workloads.Adi.static_ ~n ~t ()) ];
  Fmt.pr
    "(with a static distribution the column recurrence runs along the@.\
    \ distributed dimension: the compiler falls back to per-element@.\
    \ run-time resolution for it - correct but element messages; remapping@.\
    \ between phases keeps both sweeps local at two transposes per step)@."

(* --- E10: communication-optimization ablations ------------------------------ *)

let e10 () =
  header "E10: ablations - broadcast recognition and message aggregation";
  Fmt.pr "%-34s | %8s | %6s | %12s@." "configuration" "messages" "bcasts"
    "elapsed (ms)";
  Fmt.pr "-----------------------------------+----------+--------+--------------@.";
  let dg = Fd_workloads.Dgefa.source ~n:(if quick then 16 else 32) () in
  let multi = Fd_workloads.Stencil.multi_array ~n:128 ~t:4 () in
  let show name opts src =
    let r = Driver.run_source ~opts src in
    if not (Driver.verified r) then failwith "E10 verification";
    Fmt.pr "%-34s | %8d | %6d | %12.3f@." name (msgs r) (bcasts r) (ms r)
  in
  show "dgefa: tree broadcasts" Options.default dg;
  show "dgefa: broadcasts as sends"
    { Options.default with Options.use_collectives = false }
    dg;
  show "multi-array stencil: aggregated" Options.default multi;
  show "multi-array stencil: unaggregated"
    { Options.default with Options.aggregate_messages = false }
    multi;
  Fmt.pr
    "(scalar pivot results always use the collective layer; the ablation@.\
    \ expands section broadcasts only, trading fewer collectives for P-1@.\
    \ point-to-point messages each)@."

(* --- E11: stencil suite across strategies ----------------------------------- *)

let e11 () =
  header "E11: stencil suite across strategies (P=4)";
  Fmt.pr "%-12s | %-18s | %8s | %6s | %12s@." "workload" "strategy" "messages"
    "bcasts" "elapsed (ms)";
  Fmt.pr "-------------+--------------------+----------+--------+--------------@.";
  let wls =
    [ ("jacobi1d", Fd_workloads.Stencil.jacobi1d ~n:256 ~t:10 ());
      ("jacobi2d", Fd_workloads.Stencil.jacobi2d ~n:32 ~t:4 ());
      ("redblack", Fd_workloads.Stencil.redblack ~n:256 ~t:8 ());
      ("multiarray", Fd_workloads.Stencil.multi_array ~n:256 ~t:8 ()) ]
  in
  List.iter
    (fun (name, src) ->
      List.iter
        (fun strategy ->
          let r = run ~strategy src in
          Fmt.pr "%-12s | %-18s | %8d | %6d | %12.3f@." name
            (Options.strategy_name strategy)
            (msgs r) (bcasts r) (ms r))
        [ Options.Interproc; Options.Immediate; Options.Runtime_resolution ])
    wls

(* --- E12: resilient protocol - retry overhead vs drop rate ------------------- *)

let e12 () =
  let n = if quick then 16 else 32 in
  header
    (Fmt.str "E12: resilient protocol - retry overhead vs drop rate (dgefa n=%d, seed 11)"
       n);
  Fmt.pr "%4s | %6s | %8s | %11s | %6s | %12s | %9s@." "P" "drop" "retrans"
    "dup dropped" "faults" "elapsed (ms)" "overhead";
  Fmt.pr "-----+--------+----------+-------------+--------+--------------+----------@.";
  let src = Fd_workloads.Dgefa.source ~n () in
  List.iter
    (fun p ->
      let base = ref 0.0 in
      List.iter
        (fun drop ->
          let faults =
            if drop = 0.0 then None
            else Some (Fault.make ~seed:11 ~drop ~dup:(drop /. 2.) ~delay:2e-4 ())
          in
          let machine = Config.make ~nprocs:p ?faults () in
          (* expand section broadcasts into point-to-point sends so the
             pivot traffic actually crosses the faulty network (the
             collective layer is a synchronizing primitive and is not
             subject to message faults) *)
          let opts =
            { Options.default with Options.nprocs = p; use_collectives = false }
          in
          let r = Driver.run_source ~opts ~machine src in
          if not (Driver.verified r) then failwith "E12 verification";
          let t = ms r in
          if drop = 0.0 then base := t;
          Fmt.pr "%4d | %6.2f | %8d | %11d | %6d | %12.3f | %8.2fx@." p drop
            r.Driver.stats.Stats.retransmits
            r.Driver.stats.Stats.duplicates_dropped
            r.Driver.stats.Stats.faults_injected t (t /. !base))
        (if quick then [ 0.0; 0.1; 0.3 ] else [ 0.0; 0.05; 0.1; 0.2; 0.3 ]))
    [ 4; 16 ];
  Fmt.pr
    "(acks and retransmits are charged to the virtual clock; every run@.\
    \ remains bit-identical to sequential execution despite the faults)@."

(* --- E13: static verification vs full simulation ----------------------------- *)

let e13 () =
  let n = if quick then 16 else 64 in
  header
    (Fmt.str "E13: static verification (fdc check) vs full simulation (dgefa n=%d)" n);
  Fmt.pr "%6s | %10s | %7s | %7s | %8s | %12s | %8s@." "P" "check (ms)"
    "visits" "events" "findings" "simulate(ms)" "ratio";
  Fmt.pr "-------+------------+---------+---------+----------+--------------+---------@.";
  let src = Fd_workloads.Dgefa.source ~n () in
  let cp = Driver.check_source src in
  List.iter
    (fun p ->
      let opts = { Options.default with Options.nprocs = p } in
      let compiled = Driver.compile ~opts cp in
      let t0 = Unix.gettimeofday () in
      let vr = Fd_verify.Verify.check_node ~nprocs:p compiled.Codegen.program in
      let t_check = (Unix.gettimeofday () -. t0) *. 1e3 in
      let errors =
        List.length (Fd_verify.Finding.errors vr.Fd_verify.Verify.findings)
      in
      if errors > 0 then failwith "E13: static errors on a correct program";
      (* simulation cost is linear in P; past 64 procs on this kernel
         the row exists to show the check column staying flat *)
      if p <= 64 then begin
        let config = Driver.machine_config opts in
        let t1 = Unix.gettimeofday () in
        let _stats, _frames = Scheduler.run config compiled.Codegen.program in
        let t_sim = (Unix.gettimeofday () -. t1) *. 1e3 in
        Fmt.pr "%6d | %10.3f | %7d | %7d | %8d | %12.3f | %7.1fx@." p t_check
          vr.Fd_verify.Verify.visits vr.Fd_verify.Verify.events
          (List.length vr.Fd_verify.Verify.findings) t_sim
          (t_sim /. Float.max t_check 1e-6)
      end
      else
        Fmt.pr "%6d | %10.3f | %7d | %7d | %8d | %12s | %8s@." p t_check
          vr.Fd_verify.Verify.visits vr.Fd_verify.Verify.events
          (List.length vr.Fd_verify.Verify.findings) "-" "-")
    (if quick then [ 4; 64; 1024 ] else [ 4; 64; 1024; 65536 ]);
  Fmt.pr
    "(check walks all P processors abstractly over the compressed lane@.\
    \ domain and replays the interval skeleton; simulate is the@.\
    \ wall-clock cost of the full fault-free virtual-time simulation of@.\
    \ the same node program, omitted past P=64 where it is minutes)@."

(* --- E14: tracing overhead - ring buffer on vs off ---------------------------- *)

let e14 () =
  let n = if quick then 16 else 32 in
  let reps = if quick then 3 else 5 in
  header
    (Fmt.str "E14: tracing overhead - structured event ring on vs off (dgefa n=%d)" n);
  Fmt.pr "%4s | %12s | %12s | %8s | %10s@." "P" "off (ms)" "ring on (ms)"
    "overhead" "events";
  Fmt.pr "-----+--------------+--------------+----------+------------@.";
  let src = Fd_workloads.Dgefa.source ~n () in
  let cp = Driver.check_source src in
  List.iter
    (fun p ->
      let opts = { Options.default with Options.nprocs = p } in
      let compiled = Driver.compile ~opts cp in
      (* mean wall-clock over [reps] simulations, first rep as warmup *)
      let time config =
        let t = ref 0.0 in
        for rep = 0 to reps do
          let t0 = Unix.gettimeofday () in
          let _stats, _frames = Scheduler.run config compiled.Codegen.program in
          if rep > 0 then t := !t +. (Unix.gettimeofday () -. t0)
        done;
        !t /. float_of_int reps *. 1e3
      in
      let t_off = time (Config.make ~nprocs:p ()) in
      let tr = Fd_trace.Trace.create () in
      let t_on =
        let config = Config.make ~nprocs:p ~trace:tr () in
        let t = time config in
        t
      in
      let events = Fd_trace.Trace.total tr / (reps + 1) in
      Fmt.pr "%4d | %12.3f | %12.3f | %+7.1f%% | %10d@." p t_off t_on
        ((t_on -. t_off) /. t_off *. 100.0)
        events)
    (if quick then [ 4 ] else [ 4; 16 ]);
  Fmt.pr
    "(the ring preallocates its event records: emission mutates a slot in@.\
    \ place, so enabling the trace adds no per-event allocation; with the@.\
    \ trace off each emission site is one load and branch)@."

(* --- E16: static cost prediction vs measured simulation ----------------------- *)

let e16 () =
  let n = if quick then 16 else 64 in
  header
    (Fmt.str
       "E16: static cost prediction (fdc cost) vs measured simulation (dgefa \
        n=%d)"
       n);
  Fmt.pr "%6s | %9s | %12s | %12s | %5s | %12s@." "P" "cost (ms)"
    "makespan(us)" "simulate(ms)" "exact" "counters";
  Fmt.pr "-------+-----------+--------------+--------------+-------+-------------@.";
  let src = Fd_workloads.Dgefa.source ~n () in
  let cp = Driver.check_source src in
  let profile = Fd_verify.Cost.profile_of_seq cp in
  List.iter
    (fun p ->
      let opts = { Options.default with Options.nprocs = p } in
      let compiled = Driver.compile ~opts cp in
      let config =
        { (Driver.machine_config opts) with Config.flop = 0.0; mem_op = 0.0 }
      in
      let t0 = Unix.gettimeofday () in
      let c =
        Fd_verify.Cost.analyze ~profile ~config compiled.Codegen.program
      in
      let t_cost = (Unix.gettimeofday () -. t0) *. 1e3 in
      (* the differential leg is linear in P; past 64 procs the row
         exists to show the prediction column staying flat *)
      if p <= 64 then begin
        let t1 = Unix.gettimeofday () in
        let stats, _ = Scheduler.run config compiled.Codegen.program in
        let t_sim = (Unix.gettimeofday () -. t1) *. 1e3 in
        let counters_ok =
          c.Fd_verify.Cost.messages = stats.Stats.messages
          && c.Fd_verify.Cost.message_bytes = stats.Stats.message_bytes
          && c.Fd_verify.Cost.bcasts = stats.Stats.bcasts
          && c.Fd_verify.Cost.bcast_bytes = stats.Stats.bcast_bytes
          && c.Fd_verify.Cost.remaps = stats.Stats.remaps
          && c.Fd_verify.Cost.remap_bytes = stats.Stats.remap_bytes
        in
        let sim = Stats.elapsed stats in
        if not counters_ok then failwith "E16: predicted counters diverge";
        if
          c.Fd_verify.Cost.exact
          && Float.abs (c.Fd_verify.Cost.makespan -. sim)
             > 1e-9 *. Float.max 1.0 sim
        then failwith "E16: predicted makespan diverges";
        Fmt.pr "%6d | %9.3f | %12.1f | %12.3f | %5b | %12s@." p t_cost
          (c.Fd_verify.Cost.makespan *. 1e6)
          t_sim c.Fd_verify.Cost.exact "identical"
      end
      else
        Fmt.pr "%6d | %9.3f | %12.1f | %12s | %5b | %12s@." p t_cost
          (c.Fd_verify.Cost.makespan *. 1e6)
          "-" c.Fd_verify.Cost.exact "-")
    (if quick then [ 4; 64; 1024 ] else [ 4; 64; 1024; 65536 ]);
  Fmt.pr
    "(cost replays the interval skeleton with affine per-group clocks under@.\
    \ the machine model, so the prediction is flat in P; the differential@.\
    \ leg simulates compute-free and checks every counter bit-identical@.\
    \ and the makespan exact, omitted past P=64 where it is minutes)@."

(* --- E17: parallel deterministic simulation on OCaml 5 domains --------------- *)

(* Wall-clock of the domains-parallel scheduler against the sequential
   path, with bit-identity asserted on every row.  Speedup needs real
   cores: the generation phase shards the interpreters across domains,
   so on a single-core host (Domain.recommended_domain_count = 1) the
   parallel path can only add synchronization overhead — the table
   reports whatever the host gives, honestly. *)
let e17 () =
  let cores = Domain.recommended_domain_count () in
  header
    (Fmt.str "E17: domains-parallel scheduler - wall clock vs domains (host cores=%d)"
       cores);
  Fmt.pr "  program |    P | domains | wall (ms) | speedup | identical@.";
  let domain_counts =
    List.sort_uniq compare
      (1 :: List.filter (fun d -> d <= max 2 cores) [ 2; 4; 8; cores ])
  in
  let bench_one name src nprocs =
    let opts = { Options.default with Options.nprocs } in
    let prog = (Driver.compile_source ~opts src).Codegen.program in
    let baseline = ref "" and t_seq = ref 0.0 in
    List.iter
      (fun domains ->
        let config = Config.make ~domains ~nprocs () in
        let t0 = Unix.gettimeofday () in
        let r = Scheduler.run_partial config prog in
        let dt = Unix.gettimeofday () -. t0 in
        let js =
          Fd_support.Json.to_string (Stats.to_json r.Scheduler.p_stats)
        in
        if domains = 1 then begin
          baseline := js;
          t_seq := dt
        end;
        if js <> !baseline then failwith "E17: parallel run diverged";
        Fmt.pr "%9s | %4d | %7d | %9.2f | %7.2f | %9b@." name nprocs domains
          (dt *. 1e3) (!t_seq /. dt) (js = !baseline))
      domain_counts
  in
  List.iter
    (fun nprocs ->
      bench_one "dgefa" (Fd_workloads.Dgefa.source ~n:(if quick then 16 else 32) ()) nprocs;
      bench_one "jacobi2d"
        (Fd_workloads.Stencil.jacobi2d ~n:(if quick then 16 else 32)
           ~t:(if quick then 4 else 10) ())
        nprocs)
    (if quick then [ 64; 256 ] else [ 64; 256; 1024 ]);
  Fmt.pr
    "(every row's statistics are byte-compared against the domains=1 run;@.\
    \ speedup = sequential wall / parallel wall on this host)@."

let () =
  Fmt.pr "Fortran D interprocedural compilation - experiment tables@.";
  Fmt.pr "(machine model: %a)@." Config.pp (Config.ipsc860 ~nprocs:4 ());
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e8c ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  e13 ();
  e14 ();
  e16 ();
  e17 ();
  if micro then e8b ();
  Fmt.pr "@.all experiments verified against sequential execution.@."
