(* fdc: the Fortran D compiler driver.

   Subcommands:
     fdc ast <file>        - dump the parsed and checked program
     fdc acg <file>        - dump the augmented call graph
     fdc spmd <file>       - compile and print the SPMD node program
     fdc run <file>        - compile, simulate, verify, print statistics
     fdc check <file>      - static communication verification, no simulation
     fdc cost <file>       - static communication-cost & critical-path prediction
     fdc passes <file>     - run the pass pipeline, print per-pass timings
*)

open Cmdliner
module Diag = Fd_support.Diag
module Totality = Fd_core.Totality

(* Source registry: every file read through the CLI is remembered so a
   diagnostic citing it can render a caret/underline snippet. *)
let sources : (string, string) Hashtbl.t = Hashtbl.create 4

let read_file path =
  (* an unreadable input is the user's problem (exit 2), not a crash *)
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s ->
    Hashtbl.replace sources path s;
    s
  | exception Sys_error msg -> Diag.error "cannot read %s: %s" path msg

let pp_diag ppf d =
  Fmt.pf ppf "%s@." (Diag.to_string d);
  match Hashtbl.find_opt sources d.Diag.loc.Fd_support.Loc.file with
  | Some src -> Diag.pp_snippet ~src ppf d
  | None -> ()

let strategy_conv =
  Arg.enum
    [ ("interproc", Fd_core.Options.Interproc);
      ("immediate", Fd_core.Options.Immediate);
      ("runtime", Fd_core.Options.Runtime_resolution) ]

let remap_conv =
  Arg.enum
    [ ("none", Fd_core.Options.Remap_none); ("live", Fd_core.Options.Remap_live);
      ("hoist", Fd_core.Options.Remap_hoist); ("kill", Fd_core.Options.Remap_kill) ]

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let nprocs_arg =
  Arg.(value & opt int 4 & info [ "p"; "nprocs" ] ~doc:"Number of logical processors")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ]
           ~doc:"OCaml domains the simulator runs on.  Results (statistics, \
                 traces, outputs) are bit-identical for every value; 1 takes \
                 the sequential path")

let safe_window_arg =
  Arg.(value & opt (some float) None
       & info [ "safe-window" ] ~docv:"SECONDS"
           ~doc:"Lookahead window of the parallel simulator's conservative \
                 barrier (default: the machine's message startup cost alpha). \
                 A batching knob only; results do not depend on it")

let strategy_arg =
  Arg.(value & opt strategy_conv Fd_core.Options.Interproc
       & info [ "s"; "strategy" ] ~doc:"Compilation strategy")

let remap_arg =
  Arg.(value & opt remap_conv Fd_core.Options.Remap_kill
       & info [ "remap" ] ~doc:"Dynamic-decomposition optimization level")

let collectives_arg =
  Arg.(value & flag & info [ "no-collectives" ] ~doc:"Expand broadcasts to sends")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the communication-event timeline")

let no_agg_arg =
  Arg.(value & flag & info [ "no-aggregation" ] ~doc:"Disable message aggregation")

let opts_of ?(no_agg = false) nprocs strategy remap no_coll =
  { Fd_core.Options.default with
    Fd_core.Options.nprocs; strategy; remap_level = remap;
    use_collectives = not no_coll; aggregate_messages = not no_agg }

let strict_arg =
  Arg.(value & flag
       & info [ "strict" ]
           ~doc:"Treat warnings (compiler diagnostics, check findings) as \
                 failures: nonzero exit when any are produced")

(* Total-pipeline discipline: every subcommand body runs under
   [Totality.protect] with a fresh per-run diagnostic sink, then maps
   onto the documented exit-code table — 0 success, 1 check/verification
   failure, 2 compile diagnostics, 3 simulation error, 4 contained
   internal crash.  Nothing escapes as a bare OCaml backtrace.

   The fresh sink (plus discarding anything a previous invocation left
   in the legacy global sink) fixes cross-run warning leakage between
   consecutive [wrap_code] calls in one process, and is the shape a
   future [fdc serve] needs. *)
let wrap_code ?(strict = false) ?(json = false) f =
  Diag.clear Diag.global;
  let sink = Diag.sink () in
  let outcome = Totality.protect (fun () -> f sink) in
  let warnings = Diag.take_warnings_of sink @ Diag.take_warnings () in
  List.iter (fun w -> Fmt.epr "%a" pp_diag w) warnings;
  match outcome with
  | Totality.Exit code ->
    if code = 0 && strict && warnings <> [] then Totality.check_failed else code
  | Totality.Diagnostics ds ->
    let ds = Diag.sort ds in
    if json then
      Fmt.pr "%s@." (Fd_support.Json.to_string (Diag.report_json ds))
    else List.iter (fun d -> Fmt.epr "%a" pp_diag d) ds;
    Totality.compile_failed
  | Totality.Sim_failed msg ->
    Fmt.epr "simulation failed: %s@." msg;
    Totality.sim_failed
  | Totality.Crash c ->
    if json then
      Fmt.pr "%s@." (Fd_support.Json.to_string (Totality.crash_to_json c));
    Fmt.epr "%a" Totality.pp_crash c;
    Totality.crashed

let wrap f = wrap_code (fun sink -> f sink; 0)

(* --- resource budgets (fdc run / fdc check / fdc fuzz) ------------------ *)

let budget_steps_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-steps" ] ~docv:"N"
           ~doc:"Stop the simulation/analysis gracefully after N work steps \
                 and report the partial result")

let budget_events_arg =
  Arg.(value & opt (some int) None
       & info [ "budget-events" ] ~docv:"N"
           ~doc:"Stop gracefully after N communication events")

let budget_wall_arg =
  Arg.(value & opt (some float) None
       & info [ "budget-wall" ] ~docv:"SECONDS"
           ~doc:"Stop gracefully after this much wall-clock time")

let budget_of steps events wall =
  if steps = None && events = None && wall = None then None
  else Some (Fd_support.Budget.make ?steps ?events ?wall ())

let ast_cmd =
  let run file =
    wrap (fun _sink ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        List.iter
          (fun cu -> Fmt.pr "%a@." Fd_frontend.Ast_printer.pp_punit cu.Fd_frontend.Sema.unit_)
          cp.Fd_frontend.Sema.units)
  in
  Cmd.v (Cmd.info "ast" ~doc:"Parse, check and print the program")
    Term.(const run $ file_arg)

let acg_cmd =
  let run file =
    wrap (fun _sink ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        let acg = Fd_callgraph.Acg.build cp in
        Fmt.pr "%a@." Fd_callgraph.Acg.pp acg;
        Fmt.pr "topological order: %s@."
          (String.concat " -> " (Fd_callgraph.Acg.topo_order acg)))
  in
  Cmd.v (Cmd.info "acg" ~doc:"Print the augmented call graph")
    Term.(const run $ file_arg)

let spmd_cmd =
  let run file nprocs strategy remap no_coll =
    wrap (fun sink ->
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled =
          Fd_core.Driver.compile_source ~sink ~opts ~file (read_file file)
        in
        Fmt.pr "%a@." Fd_machine.Node.pp_program compiled.Fd_core.Codegen.program)
  in
  Cmd.v (Cmd.info "spmd" ~doc:"Compile and print the SPMD node program")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON")

(* --- fault-injection flags (fdc run / fdc oracle) ----------------------- *)

let fault_seed_arg =
  Arg.(value & opt (some int) None
       & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Enable deterministic fault injection with this seed")

let drop_arg =
  Arg.(value & opt float 0.0
       & info [ "drop" ] ~docv:"P" ~doc:"Per-transmission drop probability")

let dup_arg =
  Arg.(value & opt float 0.0
       & info [ "dup" ] ~docv:"P" ~doc:"Per-message duplication probability")

let delay_arg =
  Arg.(value & opt float 0.0
       & info [ "delay" ] ~docv:"US"
           ~doc:"Max extra delivery jitter in microseconds")

(* A fault plan if any knob was turned; intensities without a seed use
   seed 1 so `--drop 0.1` alone works. *)
let faults_of ?(seed = None) ~drop ~dup ~delay () =
  if seed = None && drop = 0.0 && dup = 0.0 && delay = 0.0 then None
  else
    Some
      (Fd_machine.Fault.make
         ~seed:(Option.value ~default:1 seed)
         ~drop ~dup ~delay:(delay *. 1e-6) ())

(* Serialize a structured trace as Chrome trace_event JSON. *)
let write_chrome_trace ~nprocs tr path =
  let oc = open_out path in
  output_string oc
    (Fd_support.Json.to_string (Fd_trace.Export.chrome ~nprocs tr));
  output_char oc '\n';
  close_out oc;
  Fmt.pr "trace: %d events (%d dropped) -> %s@." (Fd_trace.Trace.total tr)
    (Fd_trace.Trace.dropped tr) path

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Record a structured event trace and write it as Chrome \
                 trace_event JSON (load in Perfetto)")

let run_cmd =
  let run file nprocs domains safe_window strategy remap no_coll trace no_agg
      json trace_out fault_seed drop dup delay bsteps bevents bwall strict =
    wrap_code ~strict ~json (fun sink ->
        let opts = opts_of ~no_agg nprocs strategy remap no_coll in
        let tr =
          match trace_out with
          | Some _ -> Some (Fd_trace.Trace.create ())
          | None -> None
        in
        let machine =
          Fd_machine.Config.make ~domains ?safe_window ~nprocs
            ~record_trace:trace
            ?faults:(faults_of ~seed:fault_seed ~drop ~dup ~delay ())
            ?trace:tr ()
        in
        let r =
          Fd_core.Driver.run_source ~sink ~opts ~machine ?tracer:tr
            ?budget:(budget_of bsteps bevents bwall) ~file (read_file file)
        in
        (match (trace_out, tr) with
        | Some path, Some tr -> write_chrome_trace ~nprocs tr path
        | _ -> ());
        if json then begin
          let stats_fields =
            match Fd_machine.Stats.to_json r.Fd_core.Driver.stats with
            | Fd_support.Json.Obj fields -> fields
            | other -> [ ("stats", other) ]
          in
          let j =
            Fd_support.Json.Obj
              (stats_fields
              @ [ ("verified", Fd_support.Json.Bool (Fd_core.Driver.verified r));
                  ( "mismatches",
                    Fd_support.Json.Int (List.length r.Fd_core.Driver.mismatches) );
                  ( "partial",
                    match r.Fd_core.Driver.partial with
                    | Some reason -> Fd_support.Json.Str reason
                    | None -> Fd_support.Json.Null );
                  ("speedup", Fd_support.Json.Float (Fd_core.Driver.speedup r)) ])
          in
          Fmt.pr "%s@." (Fd_support.Json.to_string j)
        end
        else begin
          if trace then
            List.iter
              (fun ev -> Fmt.pr "%a@." Fd_machine.Stats.pp_event ev)
              (Fd_machine.Stats.trace r.Fd_core.Driver.stats);
          Fmt.pr "%a@." Fd_machine.Stats.pp r.Fd_core.Driver.stats;
          List.iter (Fmt.pr "output: %s@.")
            (Fd_machine.Stats.outputs r.Fd_core.Driver.stats);
          match r.Fd_core.Driver.partial with
          | Some reason ->
            Fmt.pr
              "simulation stopped early: %s; the statistics above are a \
               prefix and verification was skipped@."
              reason
          | None ->
          if Fd_core.Driver.verified r then Fmt.pr "verification: OK@."
          else begin
            Fmt.pr "verification FAILED (%d mismatches):@."
              (List.length r.Fd_core.Driver.mismatches);
            List.iteri
              (fun i m ->
                if i < 10 then Fmt.pr "  %a@." Fd_machine.Gather.pp_mismatch m)
              r.Fd_core.Driver.mismatches
          end
        end;
        if Fd_core.Driver.verified r then 0 else 1)
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile, simulate and verify")
    Term.(const run $ file_arg $ nprocs_arg $ domains_arg $ safe_window_arg
          $ strategy_arg $ remap_arg $ collectives_arg
          $ trace_arg $ no_agg_arg $ json_arg $ trace_out_arg $ fault_seed_arg
          $ drop_arg $ dup_arg $ delay_arg $ budget_steps_arg $ budget_events_arg
          $ budget_wall_arg $ strict_arg)

(* --- fdc trace: ensemble tracing & metrics ------------------------------ *)

let trace_cmd =
  let run file nprocs domains safe_window strategy remap no_coll cap out matrix
      summary skeleton metrics strict =
    wrap_code ~strict (fun sink ->
        let opts = opts_of nprocs strategy remap no_coll in
        let tr = Fd_trace.Trace.create ~capacity:cap () in
        let machine =
          Fd_machine.Config.make ~domains ?safe_window ~nprocs ~trace:tr ()
        in
        let r =
          Fd_core.Driver.run_source ~sink ~opts ~machine ~tracer:tr ~file
            (read_file file)
        in
        let stats = r.Fd_core.Driver.stats in
        let default =
          out = None && not matrix && not summary && not skeleton && not metrics
        in
        (match out with
        | Some path -> write_chrome_trace ~nprocs tr path
        | None -> ());
        if skeleton then begin
          Fmt.pr "# %s strategy=%s P=%d@." (Filename.basename file)
            (Fd_core.Options.strategy_name strategy)
            nprocs;
          List.iter (Fmt.pr "%s@.") (Fd_trace.Export.skeleton tr)
        end;
        if default then Fmt.pr "%a" Fd_trace.Trace.pp tr;
        if matrix then
          Fmt.pr "%a" Fd_trace.Export.pp_matrix (Fd_trace.Export.matrix ~nprocs tr);
        if summary then
          Fmt.pr "%a" Fd_trace.Export.pp_summary
            (Fd_trace.Export.summary ~nprocs ~busy:stats.Fd_machine.Stats.busy
               ~elapsed:(Fd_machine.Stats.elapsed stats) tr);
        if metrics then begin
          let m = Fd_machine.Stats.to_metrics stats in
          Fd_trace.Export.observe m tr;
          Fmt.pr "%s@." (Fd_support.Json.to_string (Fd_trace.Metrics.to_json m))
        end;
        if Fd_core.Driver.verified r then 0 else 1)
  in
  let cap_arg =
    Arg.(value & opt int Fd_trace.Trace.default_capacity
         & info [ "cap" ] ~docv:"N"
             ~doc:"Trace ring capacity in events; the oldest events are \
                   overwritten beyond it")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the trace as Chrome trace_event JSON (load in \
                   Perfetto or chrome://tracing)")
  in
  let matrix_arg =
    Arg.(value & flag
         & info [ "matrix" ] ~doc:"Print the per-(src,dest) communication matrix")
  in
  let summary_arg =
    Arg.(value & flag
         & info [ "summary" ]
             ~doc:"Print per-processor sends/recvs/bytes/blocked-time/utilization")
  in
  let skeleton_arg =
    Arg.(value & flag
         & info [ "skeleton" ]
             ~doc:"Print the normalized communication skeleton (timestamps \
                   stripped) used by the golden-trace tests")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the unified metrics registry (simulator counters plus \
                   trace-derived histograms) as JSON")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Compile, simulate and export a structured event trace: Chrome \
             trace_event JSON, communication matrix, per-processor summary, \
             normalized skeleton, or the event timeline (default)")
    Term.(const run $ file_arg $ nprocs_arg $ domains_arg $ safe_window_arg
          $ strategy_arg $ remap_arg
          $ collectives_arg $ cap_arg $ out_arg $ matrix_arg $ summary_arg
          $ skeleton_arg $ metrics_arg $ strict_arg)

(* --- fdc oracle: the differential fault oracle -------------------------- *)

(* Every program must produce final arrays and PRINT output identical to
   the sequential reference under an adversarial network, and the same
   seed must reproduce identical statistics. *)
let oracle_cmd =
  let intensities =
    [ ("low", Fd_machine.Fault.make ~seed:0 ~drop:0.05 ~dup:0.05 ~delay:200e-6 ());
      ("high", Fd_machine.Fault.make ~seed:0 ~drop:0.3 ~dup:0.2 ~delay:1e-3 ()) ]
  in
  let run files nprocs seeds =
    wrap_code (fun sink ->
        let failures = ref 0 in
        let opts = { Fd_core.Options.default with Fd_core.Options.nprocs } in
        List.iter
          (fun file ->
            let src = read_file file in
            let cp = Fd_core.Driver.check_source ~file src in
            List.iter
              (fun seed ->
                List.iter
                  (fun (level, plan) ->
                    let faults = { plan with Fd_machine.Fault.seed } in
                    let machine = Fd_machine.Config.make ~nprocs ~faults () in
                    let outcome =
                      match Fd_core.Driver.run ~sink ~opts ~machine cp with
                      | r ->
                        let j1 = Fd_machine.Stats.to_json r.Fd_core.Driver.stats in
                        let r2 = Fd_core.Driver.run ~sink ~opts ~machine cp in
                        let j2 = Fd_machine.Stats.to_json r2.Fd_core.Driver.stats in
                        if not (Fd_core.Driver.verified r) then
                          Error
                            (Fmt.str "MISMATCH (%d array diffs)"
                               (List.length r.Fd_core.Driver.mismatches))
                        else if not (Fd_support.Json.equal j1 j2) then
                          Error "NONDETERMINISTIC (stats differ across reruns)"
                        else
                          Ok
                            (Fmt.str
                               "ok  %4d faults %4d retransmits %4d dups dropped"
                               r.Fd_core.Driver.stats.Fd_machine.Stats.faults_injected
                               r.Fd_core.Driver.stats.Fd_machine.Stats.retransmits
                               r.Fd_core.Driver.stats
                                 .Fd_machine.Stats.duplicates_dropped)
                      | exception Fd_machine.Scheduler.Sim_error e ->
                        Error (Fd_machine.Scheduler.error_to_string e)
                    in
                    match outcome with
                    | Ok line ->
                      Fmt.pr "%-24s seed %-3d %-4s %s@." (Filename.basename file)
                        seed level line
                    | Error msg ->
                      incr failures;
                      Fmt.pr "%-24s seed %-3d %-4s FAIL: %s@."
                        (Filename.basename file) seed level msg)
                  intensities)
              seeds)
          files;
        Fmt.pr "oracle: %d programs x %d seeds x %d intensities, %d failures@."
          (List.length files) (List.length seeds) (List.length intensities)
          !failures;
        if !failures > 0 then 1 else 0)
  in
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")
  in
  let seeds_arg =
    Arg.(value & opt (list int) [ 11; 42 ]
         & info [ "seeds" ] ~docv:"S1,S2" ~doc:"Fault seeds to test")
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:"Differential fault oracle: simulate each program under injected \
             drop/dup/delay faults and verify results against sequential \
             execution and seed-reproducibility of statistics")
    Term.(const run $ files_arg $ nprocs_arg $ seeds_arg)

(* --- fdc check: the static SPMD communication verifier ------------------ *)

(* Back the source lint's "reaching decomposition" query with the
   interprocedural reaching-decompositions analysis. *)
let reaching_hook cp =
  match
    let acg = Fd_callgraph.Acg.build cp in
    Fd_core.Reaching_decomps.compute acg
  with
  | rd ->
    Some
      (fun ~uname ~sid array ->
        match Fd_core.Reaching_decomps.local_of rd uname with
        | lr ->
          let fact = Fd_core.Reaching_decomps.fact_before lr sid in
          let r = Fd_core.Reaching_decomps.get_reaching fact array in
          not
            (Fd_core.Decomp.reaching_equal r Fd_core.Decomp.reaching_bottom)
        | exception _ -> true)
  | exception _ -> None

(* One JSON envelope for the static-analysis subcommands ([fdc check
   --json], [fdc cost --json]): run identity, then the
   subcommand-specific statistics, the [partial] flag (the analysis did
   not cover the whole program exactly), and the findings report
   ([ok]/counts/[findings]). *)
let analysis_envelope ~file ~strategy ~nprocs ~stats ~partial findings =
  match Fd_verify.Finding.report_json findings with
  | Fd_support.Json.Obj fields ->
    Fd_support.Json.Obj
      (("file", Fd_support.Json.Str file)
       :: ( "strategy",
            Fd_support.Json.Str (Fd_core.Options.strategy_name strategy) )
       :: ("nprocs", Fd_support.Json.Int nprocs)
       :: ("partial", Fd_support.Json.Bool partial)
       :: (stats @ fields))
  | other -> other

let check_cmd =
  let run file nprocs strategy remap no_coll json bsteps bevents bwall strict =
    wrap_code ~strict ~json (fun sink ->
        let src = read_file file in
        let cp = Fd_core.Driver.check_source ~file src in
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled = Fd_core.Driver.compile ~sink ~opts cp in
        let prog, unapplied =
          Fd_verify.Break.apply compiled.Fd_core.Codegen.program
            (Fd_verify.Break.scan src)
        in
        List.iter
          (Fmt.epr "fdc check: !break directive %S did not apply@.")
          unapplied;
        let lint = Fd_verify.Lint.run ?reaching:(reaching_hook cp) cp in
        let vr =
          Fd_verify.Verify.check_node
            ?budget:(budget_of bsteps bevents bwall) ~nprocs prog
        in
        let findings =
          Fd_verify.Finding.sort (lint @ vr.Fd_verify.Verify.findings)
        in
        if json then
          Fmt.pr "%s@."
            (Fd_support.Json.to_string
               (analysis_envelope ~file ~strategy ~nprocs
                  ~stats:
                    [ ("visits", Fd_support.Json.Int vr.Fd_verify.Verify.visits);
                      ("events", Fd_support.Json.Int vr.Fd_verify.Verify.events) ]
                  ~partial:(not vr.Fd_verify.Verify.complete)
                  findings))
        else begin
          List.iter (fun f -> Fmt.pr "%a@." Fd_verify.Finding.pp f) findings;
          let e, w, i = Fd_verify.Finding.counts findings in
          Fmt.pr "check %s [%s, P=%d]: %d error(s), %d warning(s), %d info@."
            (Filename.basename file)
            (Fd_core.Options.strategy_name strategy)
            nprocs e w i
        end;
        Fd_verify.Verify.exit_code ~strict findings)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically verify the compiled SPMD communication (send/recv \
             matching, collective congruence, payload bounds) and lint the \
             Fortran D source, without running the simulator. The ensemble \
             is analyzed symbolically per interval of processors, so large \
             -p (65536 and beyond) costs the same as -p 4")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg
          $ collectives_arg $ json_arg $ budget_steps_arg $ budget_events_arg
          $ budget_wall_arg $ strict_arg)

(* --- fdc cost: the static communication-cost analyzer ------------------- *)

let cost_cmd =
  let run file nprocs strategy remap no_coll json by_loop critical_path
      no_profile oracle strict =
    wrap_code ~strict ~json (fun sink ->
        let src = read_file file in
        let cp = Fd_core.Driver.check_source ~file src in
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled = Fd_core.Driver.compile ~sink ~opts cp in
        let profile =
          if no_profile then None else Some (Fd_verify.Cost.profile_of_seq cp)
        in
        let config = Fd_core.Driver.machine_config opts in
        let c =
          Fd_verify.Cost.analyze ?profile ~config
            compiled.Fd_core.Codegen.program
        in
        let oracle_failures =
          if not oracle then []
          else begin
            (* differential self-check: a compute-free simulated run must
               report the same counters, and the same makespan when the
               prediction is exact *)
            let zcfg =
              { config with Fd_machine.Config.flop = 0.0; mem_op = 0.0 }
            in
            let stats, _ =
              Fd_machine.Scheduler.run zcfg compiled.Fd_core.Codegen.program
            in
            let cmp what pred sim =
              if pred = sim then []
              else [ Fmt.str "%s: predicted %d, simulated %d" what pred sim ]
            in
            let mk = Fd_machine.Stats.elapsed stats in
            cmp "messages" c.Fd_verify.Cost.messages stats.Fd_machine.Stats.messages
            @ cmp "message_bytes" c.Fd_verify.Cost.message_bytes
                stats.Fd_machine.Stats.message_bytes
            @ cmp "bcasts" c.Fd_verify.Cost.bcasts stats.Fd_machine.Stats.bcasts
            @ cmp "bcast_bytes" c.Fd_verify.Cost.bcast_bytes
                stats.Fd_machine.Stats.bcast_bytes
            @ cmp "remaps" c.Fd_verify.Cost.remaps stats.Fd_machine.Stats.remaps
            @ cmp "remap_marks" c.Fd_verify.Cost.remap_marks
                stats.Fd_machine.Stats.remap_marks
            @ cmp "remap_bytes" c.Fd_verify.Cost.remap_bytes
                stats.Fd_machine.Stats.remap_bytes
            @
            if
              c.Fd_verify.Cost.exact
              && Float.abs (c.Fd_verify.Cost.makespan -. mk)
                 > 1e-9 *. Float.max 1.0 mk
            then
              [ Fmt.str "makespan: predicted %.9fs, simulated %.9fs"
                  c.Fd_verify.Cost.makespan mk ]
            else []
          end
        in
        if json then
          Fmt.pr "%s@."
            (Fd_support.Json.to_string
               (analysis_envelope ~file ~strategy ~nprocs
                  ~stats:
                    (match Fd_verify.Cost.to_json c with
                    | Fd_support.Json.Obj fields ->
                      (* nprocs already in the envelope *)
                      List.filter (fun (k, _) -> k <> "nprocs") fields
                    | other -> [ ("cost", other) ])
                  ~partial:(not c.Fd_verify.Cost.exact)
                  c.Fd_verify.Cost.findings))
        else begin
          Fmt.pr "@[<v>%a@]@?" Fd_verify.Cost.pp c;
          if critical_path then
            Fmt.pr "@[<v>%a@]@?" Fd_verify.Cost.pp_critical_path c;
          if by_loop then Fmt.pr "@[<v>%a@]@?" Fd_verify.Cost.pp_sites c;
          List.iter
            (fun f -> Fmt.pr "%a@." Fd_verify.Finding.pp f)
            c.Fd_verify.Cost.findings
        end;
        List.iter (Fmt.epr "cost oracle FAILED %s@.") oracle_failures;
        if oracle_failures <> [] then 1
        else Fd_verify.Verify.exit_code ~strict c.Fd_verify.Cost.findings)
  in
  let by_loop_arg =
    Arg.(value & flag
         & info [ "by-loop" ]
             ~doc:"Print per-source-statement cost attribution, most \
                   expensive first")
  in
  let critical_path_arg =
    Arg.(value & flag
         & info [ "critical-path" ]
             ~doc:"Print the chain of communication events that determines \
                   the predicted makespan")
  in
  let no_profile_arg =
    Arg.(value & flag
         & info [ "no-profile" ]
             ~doc:"Skip the sequential branch profile; data-dependent IF \
                   branches stay unresolved regions")
  in
  let oracle_arg =
    Arg.(value & flag
         & info [ "oracle" ]
             ~doc:"Also simulate under a compute-free cost model and fail \
                   (exit 1) unless the predicted counters match exactly")
  in
  Cmd.v
    (Cmd.info "cost"
       ~doc:"Statically predict the communication cost of the compiled SPMD \
             program: per-processor and total message counts and byte \
             volumes, broadcast/remap traffic, and the virtual-time makespan \
             with its critical path, without running the simulator. \
             Processors are analyzed symbolically per pid interval, so \
             large -p costs the same as -p 4")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg
          $ collectives_arg $ json_arg $ by_loop_arg $ critical_path_arg
          $ no_profile_arg $ oracle_arg $ strict_arg)

let passes_cmd =
  let run file nprocs strategy remap no_coll dump_after verify json strict =
    wrap_code ~strict ~json (fun sink ->
        let opts = opts_of nprocs strategy remap no_coll in
        let ctx =
          Fd_core.Pipeline.of_source ~sink ~opts ~file (read_file file)
        in
        let report = Fd_core.Pipeline.run ~verify ~dump_after ctx in
        if json then
          Fmt.pr "%s@."
            (Fd_support.Json.to_string (Fd_core.Pipeline.report_to_json report))
        else Fmt.pr "%a" Fd_core.Pipeline.pp_report report;
        if Fd_core.Pass.report_ok report then 0 else 1)
  in
  let dump_after_arg =
    Arg.(value & opt_all string []
         & info [ "dump-after" ] ~docv:"PASS"
             ~doc:"Print the named pass's artifact after it runs (repeatable)")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify-passes" ]
             ~doc:"Check every pass's invariants; non-zero exit on violation")
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"Run the compilation pipeline, printing per-pass timings and artifact sizes")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg
          $ dump_after_arg $ verify_arg $ json_arg $ strict_arg)

let exports_cmd =
  let run file nprocs strategy remap no_coll =
    wrap (fun sink ->
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled =
          Fd_core.Driver.compile_source ~sink ~opts ~file (read_file file)
        in
        let st = compiled.Fd_core.Codegen.state in
        Hashtbl.iter
          (fun _name ex -> Fmt.pr "%a@.@." Fd_core.Exports.pp ex)
          st.Fd_core.Codegen.exports)
  in
  Cmd.v
    (Cmd.info "exports"
       ~doc:"Print each procedure's export record (constraints, delayed communication, remaps)")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg)

let overlap_cmd =
  let run file nprocs =
    wrap (fun _sink ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        let opts = { Fd_core.Options.default with Fd_core.Options.nprocs } in
        let rows = Fd_core.Overlap.analyze opts cp in
        List.iter (fun r -> Fmt.pr "%a@." Fd_core.Overlap.pp_row r) rows)
  in
  Cmd.v (Cmd.info "overlap" ~doc:"Overlap regions: estimated vs actual")
    Term.(const run $ file_arg $ nprocs_arg)

let recompile_cmd =
  let run before after =
    wrap (fun _sink ->
        let procs, total =
          Fd_core.Recompile.after_edit ~before:(read_file before)
            ~after:(read_file after) ()
        in
        Fmt.pr "recompile %d of %d procedure(s)%s@." (List.length procs) total
          (if procs = [] then "" else ": " ^ String.concat ", " procs))
  in
  let after_arg = Arg.(required & pos 1 (some file) None & info [] ~docv:"AFTER") in
  Cmd.v
    (Cmd.info "recompile"
       ~doc:"Which procedures must recompile going from BEFORE to AFTER")
    Term.(const run $ file_arg $ after_arg)

let seq_cmd =
  let run file =
    wrap (fun _sink ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        let r = Fd_machine.Seq_interp.run cp in
        List.iter (Fmt.pr "output: %s@.") r.Fd_machine.Seq_interp.outputs;
        Fmt.pr "flops: %d, memory ops: %d, est. sequential time %.3f ms@."
          r.Fd_machine.Seq_interp.flops r.Fd_machine.Seq_interp.mem_ops
          (r.Fd_machine.Seq_interp.seq_time *. 1e3))
  in
  Cmd.v (Cmd.info "seq" ~doc:"Run the program sequentially (reference interpreter)")
    Term.(const run $ file_arg)

let partition_cmd =
  let run file nprocs strategy remap no_coll =
    wrap (fun sink ->
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled =
          Fd_core.Driver.compile_source ~sink ~opts ~file (read_file file)
        in
        List.iter
          (fun (proc, line) -> Fmt.pr "%-12s %s@." proc line)
          compiled.Fd_core.Codegen.state.Fd_core.Codegen.partition_log)
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Print each loop's computation-partition decision (per-processor iteration sets)")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg)

let fuzz_cmd =
  let pp_verdict ppf = function
    | Fd_fuzz.Harness.Accepted -> Fmt.pf ppf "accepted (compiled and verified)"
    | Fd_fuzz.Harness.Rejected -> Fmt.pf ppf "rejected (located diagnostics)"
    | Fd_fuzz.Harness.Failed k ->
      Fmt.pf ppf "FAILED: %s (%s)"
        (Fd_fuzz.Harness.kind_name k)
        (Fd_fuzz.Harness.kind_detail k)
  in
  let run iters seed repro nprocs bsteps bevents bwall =
    wrap_code (fun _sink ->
        (* --budget-steps/--budget-events tighten the per-case budget;
           --budget-wall bounds the whole campaign (per-case wall stays
           at the default 2s) *)
        let budget =
          match (bsteps, bevents) with
          | None, None -> None
          | _ -> Some (Fd_support.Budget.make ?steps:bsteps ?events:bevents ~wall:2.0 ())
        in
        match repro with
        | Some case_seed ->
          let r = Fd_fuzz.Harness.repro ?budget ~nprocs case_seed in
          Fmt.pr "seed %d [%s]:@.%s@.@.%a@." case_seed
            (Fd_core.Options.strategy_name r.Fd_fuzz.Harness.r_strategy)
            r.Fd_fuzz.Harness.r_src pp_verdict r.Fd_fuzz.Harness.r_verdict;
          (match r.Fd_fuzz.Harness.r_shrunk with
          | Some shrunk -> Fmt.pr "shrunk reproducer:@.%s@." shrunk
          | None -> ());
          (match r.Fd_fuzz.Harness.r_verdict with
          | Fd_fuzz.Harness.Failed _ -> 1
          | _ -> 0)
        | None ->
          let rep =
            Fd_fuzz.Harness.campaign ?budget ?wall:bwall ~nprocs
              ~log:(Fmt.epr "fuzz: %s@.") ~iters ~seed ()
          in
          List.iter
            (fun (fl : Fd_fuzz.Harness.failure) ->
              Fmt.pr
                "FAIL seed %d: %s (%s); replay with `fdc fuzz --repro %d`; \
                 shrunk reproducer:@.%s@."
                fl.Fd_fuzz.Harness.f_seed fl.Fd_fuzz.Harness.f_kind
                fl.Fd_fuzz.Harness.f_detail fl.Fd_fuzz.Harness.f_seed
                fl.Fd_fuzz.Harness.f_src)
            rep.Fd_fuzz.Harness.failures;
          Fmt.pr
            "fuzz: %d cases in %.1fs (%.0f execs/sec), %d accepted, %d \
             rejected, %d failures@."
            rep.Fd_fuzz.Harness.iters rep.Fd_fuzz.Harness.elapsed
            rep.Fd_fuzz.Harness.execs_per_sec rep.Fd_fuzz.Harness.accepted
            rep.Fd_fuzz.Harness.rejected
            (List.length rep.Fd_fuzz.Harness.failures);
          if rep.Fd_fuzz.Harness.failures <> [] then 1 else 0)
  in
  let iters_arg =
    Arg.(value & opt int 100
         & info [ "iters" ] ~docv:"N" ~doc:"Number of fuzz cases to run")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign base seed")
  in
  let repro_arg =
    Arg.(value & opt (some int) None
         & info [ "repro" ] ~docv:"SEED"
             ~doc:"Replay one case by its seed (printed by a failing \
                   campaign) instead of running a campaign")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing of the total pipeline: seeded random \
             programs, token- and AST-level mutations producing ill-formed \
             variants, each case compiled and simulated under a resource \
             budget. No case may escape as an uncaught exception; rejections \
             must carry located diagnostics; accepted programs must verify \
             against sequential execution or be flagged by the static \
             checker. Failing cases are shrunk and replayable by seed")
    Term.(const run $ iters_arg $ seed_arg $ repro_arg $ nprocs_arg
          $ budget_steps_arg $ budget_events_arg $ budget_wall_arg)

let () =
  let doc = "mini-Fortran D interprocedural compiler and MIMD simulator" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "fdc" ~doc)
          [ ast_cmd; acg_cmd; spmd_cmd; run_cmd; trace_cmd; check_cmd; cost_cmd;
            passes_cmd; exports_cmd; overlap_cmd; recompile_cmd; seq_cmd;
            partition_cmd; fuzz_cmd; oracle_cmd ]))
