(* fdc: the Fortran D compiler driver.

   Subcommands:
     fdc ast <file>        - dump the parsed and checked program
     fdc acg <file>        - dump the augmented call graph
     fdc spmd <file>       - compile and print the SPMD node program
     fdc run <file>        - compile, simulate, verify, print statistics
     fdc passes <file>     - run the pass pipeline, print per-pass timings
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let strategy_conv =
  Arg.enum
    [ ("interproc", Fd_core.Options.Interproc);
      ("immediate", Fd_core.Options.Immediate);
      ("runtime", Fd_core.Options.Runtime_resolution) ]

let remap_conv =
  Arg.enum
    [ ("none", Fd_core.Options.Remap_none); ("live", Fd_core.Options.Remap_live);
      ("hoist", Fd_core.Options.Remap_hoist); ("kill", Fd_core.Options.Remap_kill) ]

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let nprocs_arg =
  Arg.(value & opt int 4 & info [ "p"; "nprocs" ] ~doc:"Number of logical processors")

let strategy_arg =
  Arg.(value & opt strategy_conv Fd_core.Options.Interproc
       & info [ "s"; "strategy" ] ~doc:"Compilation strategy")

let remap_arg =
  Arg.(value & opt remap_conv Fd_core.Options.Remap_kill
       & info [ "remap" ] ~doc:"Dynamic-decomposition optimization level")

let collectives_arg =
  Arg.(value & flag & info [ "no-collectives" ] ~doc:"Expand broadcasts to sends")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the communication-event timeline")

let no_agg_arg =
  Arg.(value & flag & info [ "no-aggregation" ] ~doc:"Disable message aggregation")

let opts_of ?(no_agg = false) nprocs strategy remap no_coll =
  { Fd_core.Options.default with
    Fd_core.Options.nprocs; strategy; remap_level = remap;
    use_collectives = not no_coll; aggregate_messages = not no_agg }

let wrap_code f =
  try f ()
  with
  | Fd_support.Diag.Compile_error d ->
    Fmt.epr "%s@." (Fd_support.Diag.to_string d);
    1
  | Fd_machine.Scheduler.Sim_error e ->
    Fmt.epr "simulation failed: %s@." (Fd_machine.Scheduler.error_to_string e);
    1

let wrap f = wrap_code (fun () -> f (); 0)

let ast_cmd =
  let run file =
    wrap (fun () ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        List.iter
          (fun cu -> Fmt.pr "%a@." Fd_frontend.Ast_printer.pp_punit cu.Fd_frontend.Sema.unit_)
          cp.Fd_frontend.Sema.units)
  in
  Cmd.v (Cmd.info "ast" ~doc:"Parse, check and print the program")
    Term.(const run $ file_arg)

let acg_cmd =
  let run file =
    wrap (fun () ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        let acg = Fd_callgraph.Acg.build cp in
        Fmt.pr "%a@." Fd_callgraph.Acg.pp acg;
        Fmt.pr "topological order: %s@."
          (String.concat " -> " (Fd_callgraph.Acg.topo_order acg)))
  in
  Cmd.v (Cmd.info "acg" ~doc:"Print the augmented call graph")
    Term.(const run $ file_arg)

let spmd_cmd =
  let run file nprocs strategy remap no_coll =
    wrap (fun () ->
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled = Fd_core.Driver.compile_source ~opts ~file (read_file file) in
        Fmt.pr "%a@." Fd_machine.Node.pp_program compiled.Fd_core.Codegen.program)
  in
  Cmd.v (Cmd.info "spmd" ~doc:"Compile and print the SPMD node program")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON")

(* --- fault-injection flags (fdc run / fdc oracle) ----------------------- *)

let fault_seed_arg =
  Arg.(value & opt (some int) None
       & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Enable deterministic fault injection with this seed")

let drop_arg =
  Arg.(value & opt float 0.0
       & info [ "drop" ] ~docv:"P" ~doc:"Per-transmission drop probability")

let dup_arg =
  Arg.(value & opt float 0.0
       & info [ "dup" ] ~docv:"P" ~doc:"Per-message duplication probability")

let delay_arg =
  Arg.(value & opt float 0.0
       & info [ "delay" ] ~docv:"US"
           ~doc:"Max extra delivery jitter in microseconds")

(* A fault plan if any knob was turned; intensities without a seed use
   seed 1 so `--drop 0.1` alone works. *)
let faults_of ?(seed = None) ~drop ~dup ~delay () =
  if seed = None && drop = 0.0 && dup = 0.0 && delay = 0.0 then None
  else
    Some
      (Fd_machine.Fault.make
         ~seed:(Option.value ~default:1 seed)
         ~drop ~dup ~delay:(delay *. 1e-6) ())

let run_cmd =
  let run file nprocs strategy remap no_coll trace no_agg json fault_seed drop
      dup delay =
    wrap_code (fun () ->
        let opts = opts_of ~no_agg nprocs strategy remap no_coll in
        let machine =
          Fd_machine.Config.make ~nprocs ~record_trace:trace
            ?faults:(faults_of ~seed:fault_seed ~drop ~dup ~delay ())
            ()
        in
        let r = Fd_core.Driver.run_source ~opts ~machine ~file (read_file file) in
        if json then begin
          let stats_fields =
            match Fd_machine.Stats.to_json r.Fd_core.Driver.stats with
            | Fd_support.Json.Obj fields -> fields
            | other -> [ ("stats", other) ]
          in
          let j =
            Fd_support.Json.Obj
              (stats_fields
              @ [ ("verified", Fd_support.Json.Bool (Fd_core.Driver.verified r));
                  ( "mismatches",
                    Fd_support.Json.Int (List.length r.Fd_core.Driver.mismatches) );
                  ("speedup", Fd_support.Json.Float (Fd_core.Driver.speedup r)) ])
          in
          Fmt.pr "%s@." (Fd_support.Json.to_string j)
        end
        else begin
          if trace then
            List.iter
              (fun ev -> Fmt.pr "%a@." Fd_machine.Stats.pp_event ev)
              (Fd_machine.Stats.trace r.Fd_core.Driver.stats);
          Fmt.pr "%a@." Fd_machine.Stats.pp r.Fd_core.Driver.stats;
          List.iter (Fmt.pr "output: %s@.")
            (Fd_machine.Stats.outputs r.Fd_core.Driver.stats);
          if Fd_core.Driver.verified r then Fmt.pr "verification: OK@."
          else begin
            Fmt.pr "verification FAILED (%d mismatches):@."
              (List.length r.Fd_core.Driver.mismatches);
            List.iteri
              (fun i m ->
                if i < 10 then Fmt.pr "  %a@." Fd_machine.Gather.pp_mismatch m)
              r.Fd_core.Driver.mismatches
          end
        end;
        if Fd_core.Driver.verified r then 0 else 1)
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile, simulate and verify")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg
          $ trace_arg $ no_agg_arg $ json_arg $ fault_seed_arg $ drop_arg $ dup_arg
          $ delay_arg)

(* --- fdc oracle: the differential fault oracle -------------------------- *)

(* Every program must produce final arrays and PRINT output identical to
   the sequential reference under an adversarial network, and the same
   seed must reproduce identical statistics. *)
let oracle_cmd =
  let intensities =
    [ ("low", Fd_machine.Fault.make ~seed:0 ~drop:0.05 ~dup:0.05 ~delay:200e-6 ());
      ("high", Fd_machine.Fault.make ~seed:0 ~drop:0.3 ~dup:0.2 ~delay:1e-3 ()) ]
  in
  let run files nprocs seeds =
    wrap_code (fun () ->
        let failures = ref 0 in
        let opts = { Fd_core.Options.default with Fd_core.Options.nprocs } in
        List.iter
          (fun file ->
            let src = read_file file in
            let cp = Fd_core.Driver.check_source ~file src in
            List.iter
              (fun seed ->
                List.iter
                  (fun (level, plan) ->
                    let faults = { plan with Fd_machine.Fault.seed } in
                    let machine = Fd_machine.Config.make ~nprocs ~faults () in
                    let outcome =
                      match Fd_core.Driver.run ~opts ~machine cp with
                      | r ->
                        let j1 = Fd_machine.Stats.to_json r.Fd_core.Driver.stats in
                        let r2 = Fd_core.Driver.run ~opts ~machine cp in
                        let j2 = Fd_machine.Stats.to_json r2.Fd_core.Driver.stats in
                        if not (Fd_core.Driver.verified r) then
                          Error
                            (Fmt.str "MISMATCH (%d array diffs)"
                               (List.length r.Fd_core.Driver.mismatches))
                        else if not (Fd_support.Json.equal j1 j2) then
                          Error "NONDETERMINISTIC (stats differ across reruns)"
                        else
                          Ok
                            (Fmt.str
                               "ok  %4d faults %4d retransmits %4d dups dropped"
                               r.Fd_core.Driver.stats.Fd_machine.Stats.faults_injected
                               r.Fd_core.Driver.stats.Fd_machine.Stats.retransmits
                               r.Fd_core.Driver.stats
                                 .Fd_machine.Stats.duplicates_dropped)
                      | exception Fd_machine.Scheduler.Sim_error e ->
                        Error (Fd_machine.Scheduler.error_to_string e)
                    in
                    match outcome with
                    | Ok line ->
                      Fmt.pr "%-24s seed %-3d %-4s %s@." (Filename.basename file)
                        seed level line
                    | Error msg ->
                      incr failures;
                      Fmt.pr "%-24s seed %-3d %-4s FAIL: %s@."
                        (Filename.basename file) seed level msg)
                  intensities)
              seeds)
          files;
        Fmt.pr "oracle: %d programs x %d seeds x %d intensities, %d failures@."
          (List.length files) (List.length seeds) (List.length intensities)
          !failures;
        if !failures > 0 then 1 else 0)
  in
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")
  in
  let seeds_arg =
    Arg.(value & opt (list int) [ 11; 42 ]
         & info [ "seeds" ] ~docv:"S1,S2" ~doc:"Fault seeds to test")
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:"Differential fault oracle: simulate each program under injected \
             drop/dup/delay faults and verify results against sequential \
             execution and seed-reproducibility of statistics")
    Term.(const run $ files_arg $ nprocs_arg $ seeds_arg)

let passes_cmd =
  let run file nprocs strategy remap no_coll dump_after verify json =
    wrap_code (fun () ->
        let opts = opts_of nprocs strategy remap no_coll in
        let ctx = Fd_core.Pipeline.of_source ~opts ~file (read_file file) in
        let report = Fd_core.Pipeline.run ~verify ~dump_after ctx in
        if json then
          Fmt.pr "%s@."
            (Fd_support.Json.to_string (Fd_core.Pipeline.report_to_json report))
        else Fmt.pr "%a" Fd_core.Pipeline.pp_report report;
        if Fd_core.Pass.report_ok report then 0 else 1)
  in
  let dump_after_arg =
    Arg.(value & opt_all string []
         & info [ "dump-after" ] ~docv:"PASS"
             ~doc:"Print the named pass's artifact after it runs (repeatable)")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify-passes" ]
             ~doc:"Check every pass's invariants; non-zero exit on violation")
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"Run the compilation pipeline, printing per-pass timings and artifact sizes")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg
          $ dump_after_arg $ verify_arg $ json_arg)

let exports_cmd =
  let run file nprocs strategy remap no_coll =
    wrap (fun () ->
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled = Fd_core.Driver.compile_source ~opts ~file (read_file file) in
        let st = compiled.Fd_core.Codegen.state in
        Hashtbl.iter
          (fun _name ex -> Fmt.pr "%a@.@." Fd_core.Exports.pp ex)
          st.Fd_core.Codegen.exports)
  in
  Cmd.v
    (Cmd.info "exports"
       ~doc:"Print each procedure's export record (constraints, delayed communication, remaps)")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg)

let overlap_cmd =
  let run file nprocs =
    wrap (fun () ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        let opts = { Fd_core.Options.default with Fd_core.Options.nprocs } in
        let rows = Fd_core.Overlap.analyze opts cp in
        List.iter (fun r -> Fmt.pr "%a@." Fd_core.Overlap.pp_row r) rows)
  in
  Cmd.v (Cmd.info "overlap" ~doc:"Overlap regions: estimated vs actual")
    Term.(const run $ file_arg $ nprocs_arg)

let recompile_cmd =
  let run before after =
    wrap (fun () ->
        let procs, total =
          Fd_core.Recompile.after_edit ~before:(read_file before)
            ~after:(read_file after) ()
        in
        Fmt.pr "recompile %d of %d procedure(s)%s@." (List.length procs) total
          (if procs = [] then "" else ": " ^ String.concat ", " procs))
  in
  let after_arg = Arg.(required & pos 1 (some file) None & info [] ~docv:"AFTER") in
  Cmd.v
    (Cmd.info "recompile"
       ~doc:"Which procedures must recompile going from BEFORE to AFTER")
    Term.(const run $ file_arg $ after_arg)

let seq_cmd =
  let run file =
    wrap (fun () ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        let r = Fd_machine.Seq_interp.run cp in
        List.iter (Fmt.pr "output: %s@.") r.Fd_machine.Seq_interp.outputs;
        Fmt.pr "flops: %d, memory ops: %d, est. sequential time %.3f ms@."
          r.Fd_machine.Seq_interp.flops r.Fd_machine.Seq_interp.mem_ops
          (r.Fd_machine.Seq_interp.seq_time *. 1e3))
  in
  Cmd.v (Cmd.info "seq" ~doc:"Run the program sequentially (reference interpreter)")
    Term.(const run $ file_arg)

let partition_cmd =
  let run file nprocs strategy remap no_coll =
    wrap (fun () ->
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled = Fd_core.Driver.compile_source ~opts ~file (read_file file) in
        List.iter
          (fun (proc, line) -> Fmt.pr "%-12s %s@." proc line)
          compiled.Fd_core.Codegen.state.Fd_core.Codegen.partition_log)
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Print each loop's computation-partition decision (per-processor iteration sets)")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg)

let fuzz_cmd =
  let run cases seed two_d =
    wrap (fun () ->
        let st = Random.State.make [| seed |] in
        let failures = ref 0 in
        for case = 1 to cases do
          let src =
            if two_d then Fd_workloads.Gen.random_source2d st
            else Fd_workloads.Gen.random_source st
          in
          List.iter
            (fun strategy ->
              let opts = { Fd_core.Options.default with Fd_core.Options.strategy } in
              match Fd_core.Driver.run_source ~opts src with
              | r ->
                if not (Fd_core.Driver.verified r) then begin
                  incr failures;
                  Fmt.pr "case %d MISMATCH under %s:@.%s@." case
                    (Fd_core.Options.strategy_name strategy)
                    src
                end
              | exception e ->
                incr failures;
                Fmt.pr "case %d EXCEPTION (%s) under %s:@.%s@." case
                  (Printexc.to_string e)
                  (Fd_core.Options.strategy_name strategy)
                  src)
            [ Fd_core.Options.Interproc; Fd_core.Options.Immediate;
              Fd_core.Options.Runtime_resolution ]
        done;
        Fmt.pr "fuzz: %d cases x 3 strategies, %d failures@." cases !failures;
        if !failures > 0 then exit 1)
  in
  let cases_arg =
    Arg.(value & opt int 50 & info [ "cases" ] ~doc:"Number of generated programs")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed") in
  let two_d_arg = Arg.(value & flag & info [ "2d" ] ~doc:"Generate 2-D programs") in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random programs, every strategy, verified against sequential execution")
    Term.(const run $ cases_arg $ seed_arg $ two_d_arg)

let () =
  let doc = "mini-Fortran D interprocedural compiler and MIMD simulator" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "fdc" ~doc)
          [ ast_cmd; acg_cmd; spmd_cmd; run_cmd; passes_cmd; exports_cmd;
            overlap_cmd; recompile_cmd; seq_cmd; partition_cmd; fuzz_cmd;
            oracle_cmd ]))
