(* fdc: the Fortran D compiler driver.

   Subcommands:
     fdc ast <file>        - dump the parsed and checked program
     fdc acg <file>        - dump the augmented call graph
     fdc spmd <file>       - compile and print the SPMD node program
     fdc run <file>        - compile, simulate, verify, print statistics
     fdc passes <file>     - run the pass pipeline, print per-pass timings
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let strategy_conv =
  Arg.enum
    [ ("interproc", Fd_core.Options.Interproc);
      ("immediate", Fd_core.Options.Immediate);
      ("runtime", Fd_core.Options.Runtime_resolution) ]

let remap_conv =
  Arg.enum
    [ ("none", Fd_core.Options.Remap_none); ("live", Fd_core.Options.Remap_live);
      ("hoist", Fd_core.Options.Remap_hoist); ("kill", Fd_core.Options.Remap_kill) ]

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let nprocs_arg =
  Arg.(value & opt int 4 & info [ "p"; "nprocs" ] ~doc:"Number of logical processors")

let strategy_arg =
  Arg.(value & opt strategy_conv Fd_core.Options.Interproc
       & info [ "s"; "strategy" ] ~doc:"Compilation strategy")

let remap_arg =
  Arg.(value & opt remap_conv Fd_core.Options.Remap_kill
       & info [ "remap" ] ~doc:"Dynamic-decomposition optimization level")

let collectives_arg =
  Arg.(value & flag & info [ "no-collectives" ] ~doc:"Expand broadcasts to sends")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the communication-event timeline")

let no_agg_arg =
  Arg.(value & flag & info [ "no-aggregation" ] ~doc:"Disable message aggregation")

let opts_of ?(no_agg = false) nprocs strategy remap no_coll =
  { Fd_core.Options.default with
    Fd_core.Options.nprocs; strategy; remap_level = remap;
    use_collectives = not no_coll; aggregate_messages = not no_agg }

let strict_arg =
  Arg.(value & flag
       & info [ "strict" ]
           ~doc:"Treat warnings (compiler diagnostics, check findings) as \
                 failures: nonzero exit when any are produced")

(* Uniform exit-code discipline: every subcommand drains the warning
   sink, reports it, and under --strict a clean run with warnings exits
   nonzero.  An already-failing exit code is never masked. *)
let drain_warnings ~strict =
  let ws = Fd_support.Diag.take_warnings () in
  List.iter (fun w -> Fmt.epr "%s@." (Fd_support.Diag.to_string w)) ws;
  if strict && ws <> [] then 1 else 0

let wrap_code ?(strict = false) f =
  match f () with
  | code ->
    let wcode = drain_warnings ~strict in
    if code <> 0 then code else wcode
  | exception Fd_support.Diag.Compile_error d ->
    ignore (drain_warnings ~strict);
    Fmt.epr "%s@." (Fd_support.Diag.to_string d);
    1
  | exception Fd_machine.Scheduler.Sim_error e ->
    ignore (drain_warnings ~strict);
    Fmt.epr "simulation failed: %s@." (Fd_machine.Scheduler.error_to_string e);
    1

let wrap f = wrap_code (fun () -> f (); 0)

let ast_cmd =
  let run file =
    wrap (fun () ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        List.iter
          (fun cu -> Fmt.pr "%a@." Fd_frontend.Ast_printer.pp_punit cu.Fd_frontend.Sema.unit_)
          cp.Fd_frontend.Sema.units)
  in
  Cmd.v (Cmd.info "ast" ~doc:"Parse, check and print the program")
    Term.(const run $ file_arg)

let acg_cmd =
  let run file =
    wrap (fun () ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        let acg = Fd_callgraph.Acg.build cp in
        Fmt.pr "%a@." Fd_callgraph.Acg.pp acg;
        Fmt.pr "topological order: %s@."
          (String.concat " -> " (Fd_callgraph.Acg.topo_order acg)))
  in
  Cmd.v (Cmd.info "acg" ~doc:"Print the augmented call graph")
    Term.(const run $ file_arg)

let spmd_cmd =
  let run file nprocs strategy remap no_coll =
    wrap (fun () ->
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled = Fd_core.Driver.compile_source ~opts ~file (read_file file) in
        Fmt.pr "%a@." Fd_machine.Node.pp_program compiled.Fd_core.Codegen.program)
  in
  Cmd.v (Cmd.info "spmd" ~doc:"Compile and print the SPMD node program")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON")

(* --- fault-injection flags (fdc run / fdc oracle) ----------------------- *)

let fault_seed_arg =
  Arg.(value & opt (some int) None
       & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Enable deterministic fault injection with this seed")

let drop_arg =
  Arg.(value & opt float 0.0
       & info [ "drop" ] ~docv:"P" ~doc:"Per-transmission drop probability")

let dup_arg =
  Arg.(value & opt float 0.0
       & info [ "dup" ] ~docv:"P" ~doc:"Per-message duplication probability")

let delay_arg =
  Arg.(value & opt float 0.0
       & info [ "delay" ] ~docv:"US"
           ~doc:"Max extra delivery jitter in microseconds")

(* A fault plan if any knob was turned; intensities without a seed use
   seed 1 so `--drop 0.1` alone works. *)
let faults_of ?(seed = None) ~drop ~dup ~delay () =
  if seed = None && drop = 0.0 && dup = 0.0 && delay = 0.0 then None
  else
    Some
      (Fd_machine.Fault.make
         ~seed:(Option.value ~default:1 seed)
         ~drop ~dup ~delay:(delay *. 1e-6) ())

(* Serialize a structured trace as Chrome trace_event JSON. *)
let write_chrome_trace ~nprocs tr path =
  let oc = open_out path in
  output_string oc
    (Fd_support.Json.to_string (Fd_trace.Export.chrome ~nprocs tr));
  output_char oc '\n';
  close_out oc;
  Fmt.pr "trace: %d events (%d dropped) -> %s@." (Fd_trace.Trace.total tr)
    (Fd_trace.Trace.dropped tr) path

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Record a structured event trace and write it as Chrome \
                 trace_event JSON (load in Perfetto)")

let run_cmd =
  let run file nprocs strategy remap no_coll trace no_agg json trace_out
      fault_seed drop dup delay strict =
    wrap_code ~strict (fun () ->
        let opts = opts_of ~no_agg nprocs strategy remap no_coll in
        let tr =
          match trace_out with
          | Some _ -> Some (Fd_trace.Trace.create ())
          | None -> None
        in
        let machine =
          Fd_machine.Config.make ~nprocs ~record_trace:trace
            ?faults:(faults_of ~seed:fault_seed ~drop ~dup ~delay ())
            ?trace:tr ()
        in
        let r =
          Fd_core.Driver.run_source ~opts ~machine ?tracer:tr ~file
            (read_file file)
        in
        (match (trace_out, tr) with
        | Some path, Some tr -> write_chrome_trace ~nprocs tr path
        | _ -> ());
        if json then begin
          let stats_fields =
            match Fd_machine.Stats.to_json r.Fd_core.Driver.stats with
            | Fd_support.Json.Obj fields -> fields
            | other -> [ ("stats", other) ]
          in
          let j =
            Fd_support.Json.Obj
              (stats_fields
              @ [ ("verified", Fd_support.Json.Bool (Fd_core.Driver.verified r));
                  ( "mismatches",
                    Fd_support.Json.Int (List.length r.Fd_core.Driver.mismatches) );
                  ("speedup", Fd_support.Json.Float (Fd_core.Driver.speedup r)) ])
          in
          Fmt.pr "%s@." (Fd_support.Json.to_string j)
        end
        else begin
          if trace then
            List.iter
              (fun ev -> Fmt.pr "%a@." Fd_machine.Stats.pp_event ev)
              (Fd_machine.Stats.trace r.Fd_core.Driver.stats);
          Fmt.pr "%a@." Fd_machine.Stats.pp r.Fd_core.Driver.stats;
          List.iter (Fmt.pr "output: %s@.")
            (Fd_machine.Stats.outputs r.Fd_core.Driver.stats);
          if Fd_core.Driver.verified r then Fmt.pr "verification: OK@."
          else begin
            Fmt.pr "verification FAILED (%d mismatches):@."
              (List.length r.Fd_core.Driver.mismatches);
            List.iteri
              (fun i m ->
                if i < 10 then Fmt.pr "  %a@." Fd_machine.Gather.pp_mismatch m)
              r.Fd_core.Driver.mismatches
          end
        end;
        if Fd_core.Driver.verified r then 0 else 1)
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile, simulate and verify")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg
          $ trace_arg $ no_agg_arg $ json_arg $ trace_out_arg $ fault_seed_arg
          $ drop_arg $ dup_arg $ delay_arg $ strict_arg)

(* --- fdc trace: ensemble tracing & metrics ------------------------------ *)

let trace_cmd =
  let run file nprocs strategy remap no_coll cap out matrix summary skeleton
      metrics strict =
    wrap_code ~strict (fun () ->
        let opts = opts_of nprocs strategy remap no_coll in
        let tr = Fd_trace.Trace.create ~capacity:cap () in
        let machine = Fd_machine.Config.make ~nprocs ~trace:tr () in
        let r =
          Fd_core.Driver.run_source ~opts ~machine ~tracer:tr ~file
            (read_file file)
        in
        let stats = r.Fd_core.Driver.stats in
        let default =
          out = None && not matrix && not summary && not skeleton && not metrics
        in
        (match out with
        | Some path -> write_chrome_trace ~nprocs tr path
        | None -> ());
        if skeleton then begin
          Fmt.pr "# %s strategy=%s P=%d@." (Filename.basename file)
            (Fd_core.Options.strategy_name strategy)
            nprocs;
          List.iter (Fmt.pr "%s@.") (Fd_trace.Export.skeleton tr)
        end;
        if default then Fmt.pr "%a" Fd_trace.Trace.pp tr;
        if matrix then
          Fmt.pr "%a" Fd_trace.Export.pp_matrix (Fd_trace.Export.matrix ~nprocs tr);
        if summary then
          Fmt.pr "%a" Fd_trace.Export.pp_summary
            (Fd_trace.Export.summary ~nprocs ~busy:stats.Fd_machine.Stats.busy
               ~elapsed:(Fd_machine.Stats.elapsed stats) tr);
        if metrics then begin
          let m = Fd_machine.Stats.to_metrics stats in
          Fd_trace.Export.observe m tr;
          Fmt.pr "%s@." (Fd_support.Json.to_string (Fd_trace.Metrics.to_json m))
        end;
        if Fd_core.Driver.verified r then 0 else 1)
  in
  let cap_arg =
    Arg.(value & opt int Fd_trace.Trace.default_capacity
         & info [ "cap" ] ~docv:"N"
             ~doc:"Trace ring capacity in events; the oldest events are \
                   overwritten beyond it")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the trace as Chrome trace_event JSON (load in \
                   Perfetto or chrome://tracing)")
  in
  let matrix_arg =
    Arg.(value & flag
         & info [ "matrix" ] ~doc:"Print the per-(src,dest) communication matrix")
  in
  let summary_arg =
    Arg.(value & flag
         & info [ "summary" ]
             ~doc:"Print per-processor sends/recvs/bytes/blocked-time/utilization")
  in
  let skeleton_arg =
    Arg.(value & flag
         & info [ "skeleton" ]
             ~doc:"Print the normalized communication skeleton (timestamps \
                   stripped) used by the golden-trace tests")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the unified metrics registry (simulator counters plus \
                   trace-derived histograms) as JSON")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Compile, simulate and export a structured event trace: Chrome \
             trace_event JSON, communication matrix, per-processor summary, \
             normalized skeleton, or the event timeline (default)")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg
          $ collectives_arg $ cap_arg $ out_arg $ matrix_arg $ summary_arg
          $ skeleton_arg $ metrics_arg $ strict_arg)

(* --- fdc oracle: the differential fault oracle -------------------------- *)

(* Every program must produce final arrays and PRINT output identical to
   the sequential reference under an adversarial network, and the same
   seed must reproduce identical statistics. *)
let oracle_cmd =
  let intensities =
    [ ("low", Fd_machine.Fault.make ~seed:0 ~drop:0.05 ~dup:0.05 ~delay:200e-6 ());
      ("high", Fd_machine.Fault.make ~seed:0 ~drop:0.3 ~dup:0.2 ~delay:1e-3 ()) ]
  in
  let run files nprocs seeds =
    wrap_code (fun () ->
        let failures = ref 0 in
        let opts = { Fd_core.Options.default with Fd_core.Options.nprocs } in
        List.iter
          (fun file ->
            let src = read_file file in
            let cp = Fd_core.Driver.check_source ~file src in
            List.iter
              (fun seed ->
                List.iter
                  (fun (level, plan) ->
                    let faults = { plan with Fd_machine.Fault.seed } in
                    let machine = Fd_machine.Config.make ~nprocs ~faults () in
                    let outcome =
                      match Fd_core.Driver.run ~opts ~machine cp with
                      | r ->
                        let j1 = Fd_machine.Stats.to_json r.Fd_core.Driver.stats in
                        let r2 = Fd_core.Driver.run ~opts ~machine cp in
                        let j2 = Fd_machine.Stats.to_json r2.Fd_core.Driver.stats in
                        if not (Fd_core.Driver.verified r) then
                          Error
                            (Fmt.str "MISMATCH (%d array diffs)"
                               (List.length r.Fd_core.Driver.mismatches))
                        else if not (Fd_support.Json.equal j1 j2) then
                          Error "NONDETERMINISTIC (stats differ across reruns)"
                        else
                          Ok
                            (Fmt.str
                               "ok  %4d faults %4d retransmits %4d dups dropped"
                               r.Fd_core.Driver.stats.Fd_machine.Stats.faults_injected
                               r.Fd_core.Driver.stats.Fd_machine.Stats.retransmits
                               r.Fd_core.Driver.stats
                                 .Fd_machine.Stats.duplicates_dropped)
                      | exception Fd_machine.Scheduler.Sim_error e ->
                        Error (Fd_machine.Scheduler.error_to_string e)
                    in
                    match outcome with
                    | Ok line ->
                      Fmt.pr "%-24s seed %-3d %-4s %s@." (Filename.basename file)
                        seed level line
                    | Error msg ->
                      incr failures;
                      Fmt.pr "%-24s seed %-3d %-4s FAIL: %s@."
                        (Filename.basename file) seed level msg)
                  intensities)
              seeds)
          files;
        Fmt.pr "oracle: %d programs x %d seeds x %d intensities, %d failures@."
          (List.length files) (List.length seeds) (List.length intensities)
          !failures;
        if !failures > 0 then 1 else 0)
  in
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE")
  in
  let seeds_arg =
    Arg.(value & opt (list int) [ 11; 42 ]
         & info [ "seeds" ] ~docv:"S1,S2" ~doc:"Fault seeds to test")
  in
  Cmd.v
    (Cmd.info "oracle"
       ~doc:"Differential fault oracle: simulate each program under injected \
             drop/dup/delay faults and verify results against sequential \
             execution and seed-reproducibility of statistics")
    Term.(const run $ files_arg $ nprocs_arg $ seeds_arg)

(* --- fdc check: the static SPMD communication verifier ------------------ *)

(* Back the source lint's "reaching decomposition" query with the
   interprocedural reaching-decompositions analysis. *)
let reaching_hook cp =
  match
    let acg = Fd_callgraph.Acg.build cp in
    Fd_core.Reaching_decomps.compute acg
  with
  | rd ->
    Some
      (fun ~uname ~sid array ->
        match Fd_core.Reaching_decomps.local_of rd uname with
        | lr ->
          let fact = Fd_core.Reaching_decomps.fact_before lr sid in
          let r = Fd_core.Reaching_decomps.get_reaching fact array in
          not
            (Fd_core.Decomp.reaching_equal r Fd_core.Decomp.reaching_bottom)
        | exception _ -> true)
  | exception _ -> None

let check_cmd =
  let run file nprocs strategy remap no_coll json strict =
    wrap_code ~strict (fun () ->
        let src = read_file file in
        let cp = Fd_core.Driver.check_source ~file src in
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled = Fd_core.Driver.compile ~opts cp in
        let prog, unapplied =
          Fd_verify.Break.apply compiled.Fd_core.Codegen.program
            (Fd_verify.Break.scan src)
        in
        List.iter
          (Fmt.epr "fdc check: !break directive %S did not apply@.")
          unapplied;
        let lint = Fd_verify.Lint.run ?reaching:(reaching_hook cp) cp in
        let vr = Fd_verify.Verify.check_node ~nprocs prog in
        let findings =
          Fd_verify.Finding.sort (lint @ vr.Fd_verify.Verify.findings)
        in
        if json then begin
          let j =
            match Fd_verify.Finding.report_json findings with
            | Fd_support.Json.Obj fields ->
              Fd_support.Json.Obj
                (("file", Fd_support.Json.Str file)
                 :: ( "strategy",
                      Fd_support.Json.Str (Fd_core.Options.strategy_name strategy) )
                 :: ("nprocs", Fd_support.Json.Int nprocs)
                 :: ("visits", Fd_support.Json.Int vr.Fd_verify.Verify.visits)
                 :: ("events", Fd_support.Json.Int vr.Fd_verify.Verify.events)
                 :: fields)
            | other -> other
          in
          Fmt.pr "%s@." (Fd_support.Json.to_string j)
        end
        else begin
          List.iter (fun f -> Fmt.pr "%a@." Fd_verify.Finding.pp f) findings;
          let e, w, i = Fd_verify.Finding.counts findings in
          Fmt.pr "check %s [%s, P=%d]: %d error(s), %d warning(s), %d info@."
            (Filename.basename file)
            (Fd_core.Options.strategy_name strategy)
            nprocs e w i
        end;
        Fd_verify.Verify.exit_code ~strict findings)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically verify the compiled SPMD communication (send/recv \
             matching, collective congruence, payload bounds) and lint the \
             Fortran D source, without running the simulator. The ensemble \
             is analyzed symbolically per interval of processors, so large \
             -p (65536 and beyond) costs the same as -p 4")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg
          $ collectives_arg $ json_arg $ strict_arg)

let passes_cmd =
  let run file nprocs strategy remap no_coll dump_after verify json strict =
    wrap_code ~strict (fun () ->
        let opts = opts_of nprocs strategy remap no_coll in
        let ctx = Fd_core.Pipeline.of_source ~opts ~file (read_file file) in
        let report = Fd_core.Pipeline.run ~verify ~dump_after ctx in
        if json then
          Fmt.pr "%s@."
            (Fd_support.Json.to_string (Fd_core.Pipeline.report_to_json report))
        else Fmt.pr "%a" Fd_core.Pipeline.pp_report report;
        if Fd_core.Pass.report_ok report then 0 else 1)
  in
  let dump_after_arg =
    Arg.(value & opt_all string []
         & info [ "dump-after" ] ~docv:"PASS"
             ~doc:"Print the named pass's artifact after it runs (repeatable)")
  in
  let verify_arg =
    Arg.(value & flag
         & info [ "verify-passes" ]
             ~doc:"Check every pass's invariants; non-zero exit on violation")
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"Run the compilation pipeline, printing per-pass timings and artifact sizes")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg
          $ dump_after_arg $ verify_arg $ json_arg $ strict_arg)

let exports_cmd =
  let run file nprocs strategy remap no_coll =
    wrap (fun () ->
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled = Fd_core.Driver.compile_source ~opts ~file (read_file file) in
        let st = compiled.Fd_core.Codegen.state in
        Hashtbl.iter
          (fun _name ex -> Fmt.pr "%a@.@." Fd_core.Exports.pp ex)
          st.Fd_core.Codegen.exports)
  in
  Cmd.v
    (Cmd.info "exports"
       ~doc:"Print each procedure's export record (constraints, delayed communication, remaps)")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg)

let overlap_cmd =
  let run file nprocs =
    wrap (fun () ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        let opts = { Fd_core.Options.default with Fd_core.Options.nprocs } in
        let rows = Fd_core.Overlap.analyze opts cp in
        List.iter (fun r -> Fmt.pr "%a@." Fd_core.Overlap.pp_row r) rows)
  in
  Cmd.v (Cmd.info "overlap" ~doc:"Overlap regions: estimated vs actual")
    Term.(const run $ file_arg $ nprocs_arg)

let recompile_cmd =
  let run before after =
    wrap (fun () ->
        let procs, total =
          Fd_core.Recompile.after_edit ~before:(read_file before)
            ~after:(read_file after) ()
        in
        Fmt.pr "recompile %d of %d procedure(s)%s@." (List.length procs) total
          (if procs = [] then "" else ": " ^ String.concat ", " procs))
  in
  let after_arg = Arg.(required & pos 1 (some file) None & info [] ~docv:"AFTER") in
  Cmd.v
    (Cmd.info "recompile"
       ~doc:"Which procedures must recompile going from BEFORE to AFTER")
    Term.(const run $ file_arg $ after_arg)

let seq_cmd =
  let run file =
    wrap (fun () ->
        let cp = Fd_core.Driver.check_source ~file (read_file file) in
        let r = Fd_machine.Seq_interp.run cp in
        List.iter (Fmt.pr "output: %s@.") r.Fd_machine.Seq_interp.outputs;
        Fmt.pr "flops: %d, memory ops: %d, est. sequential time %.3f ms@."
          r.Fd_machine.Seq_interp.flops r.Fd_machine.Seq_interp.mem_ops
          (r.Fd_machine.Seq_interp.seq_time *. 1e3))
  in
  Cmd.v (Cmd.info "seq" ~doc:"Run the program sequentially (reference interpreter)")
    Term.(const run $ file_arg)

let partition_cmd =
  let run file nprocs strategy remap no_coll =
    wrap (fun () ->
        let opts = opts_of nprocs strategy remap no_coll in
        let compiled = Fd_core.Driver.compile_source ~opts ~file (read_file file) in
        List.iter
          (fun (proc, line) -> Fmt.pr "%-12s %s@." proc line)
          compiled.Fd_core.Codegen.state.Fd_core.Codegen.partition_log)
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Print each loop's computation-partition decision (per-processor iteration sets)")
    Term.(const run $ file_arg $ nprocs_arg $ strategy_arg $ remap_arg $ collectives_arg)

let fuzz_cmd =
  let run cases seed two_d =
    wrap (fun () ->
        let st = Random.State.make [| seed |] in
        let failures = ref 0 in
        for case = 1 to cases do
          let src =
            if two_d then Fd_workloads.Gen.random_source2d st
            else Fd_workloads.Gen.random_source st
          in
          List.iter
            (fun strategy ->
              let opts = { Fd_core.Options.default with Fd_core.Options.strategy } in
              match Fd_core.Driver.run_source ~opts src with
              | r ->
                if not (Fd_core.Driver.verified r) then begin
                  incr failures;
                  Fmt.pr "case %d MISMATCH under %s:@.%s@." case
                    (Fd_core.Options.strategy_name strategy)
                    src
                end
              | exception e ->
                incr failures;
                Fmt.pr "case %d EXCEPTION (%s) under %s:@.%s@." case
                  (Printexc.to_string e)
                  (Fd_core.Options.strategy_name strategy)
                  src)
            [ Fd_core.Options.Interproc; Fd_core.Options.Immediate;
              Fd_core.Options.Runtime_resolution ]
        done;
        Fmt.pr "fuzz: %d cases x 3 strategies, %d failures@." cases !failures;
        if !failures > 0 then exit 1)
  in
  let cases_arg =
    Arg.(value & opt int 50 & info [ "cases" ] ~doc:"Number of generated programs")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed") in
  let two_d_arg = Arg.(value & flag & info [ "2d" ] ~doc:"Generate 2-D programs") in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: random programs, every strategy, verified against sequential execution")
    Term.(const run $ cases_arg $ seed_arg $ two_d_arg)

let () =
  let doc = "mini-Fortran D interprocedural compiler and MIMD simulator" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "fdc" ~doc)
          [ ast_cmd; acg_cmd; spmd_cmd; run_cmd; trace_cmd; check_cmd; passes_cmd;
            exports_cmd; overlap_cmd; recompile_cmd; seq_cmd; partition_cmd;
            fuzz_cmd; oracle_cmd ]))
