(* Regular section descriptors.

   A [box] is one RSD in the paper's sense: a triplet per array dimension.
   A [t] (region) is a finite union of boxes of equal rank.  Intersection
   and difference are exact (difference uses the standard slab
   decomposition); union is represented structurally, with overlapping
   boxes tolerated (operations account for multiplicity-free semantics
   through [normalize] where it matters). *)

open Fd_support

type box = Triplet.t array

type t = { rank : int; boxes : box list }

let box_is_empty b = Array.exists Triplet.is_empty b

let empty rank = { rank; boxes = [] }

let of_box b =
  if box_is_empty b then { rank = Array.length b; boxes = [] }
  else { rank = Array.length b; boxes = [ b ] }

let of_triplets ts = of_box (Array.of_list ts)

let of_boxes rank boxes =
  { rank; boxes = List.filter (fun b -> not (box_is_empty b)) boxes }

let is_empty r = r.boxes = []

let rank r = r.rank

let boxes r = r.boxes

let check_rank a b =
  if a.rank <> b.rank then Diag.internal ~pass:"analysis" "region rank mismatch"

let box_inter (a : box) (b : box) : box =
  Array.init (Array.length a) (fun i -> Triplet.inter a.(i) b.(i))

let box_count (b : box) =
  Array.fold_left (fun acc t -> acc * Triplet.count t) 1 b

let box_mem idx (b : box) =
  Array.length idx = Array.length b
  && Array.for_all2 (fun x t -> Triplet.mem x t) idx b

let mem idx r = List.exists (box_mem idx) r.boxes

(* Exact box difference by slab decomposition.  Relies on Triplet.diff
   being exact (sound over-approximation otherwise, which is safe for the
   "communicate everything we might not own" direction). *)
let box_diff (a : box) (b : box) : box list =
  let core = box_inter a b in
  if box_is_empty core then [ a ]
  else begin
    let result = ref [] in
    let current = Array.copy a in
    Array.iteri
      (fun d _ ->
        let outside = Triplet.diff current.(d) b.(d) in
        List.iter
          (fun t ->
            let slab = Array.copy current in
            slab.(d) <- t;
            if not (box_is_empty slab) then result := slab :: !result)
          outside;
        current.(d) <- Triplet.inter current.(d) b.(d))
      a;
    List.rev !result
  end

let inter a b =
  check_rank a b;
  of_boxes a.rank
    (List.concat_map (fun ba -> List.map (box_inter ba) b.boxes) a.boxes)

let diff a b =
  check_rank a b;
  let remove_box boxes bb = List.concat_map (fun ba -> box_diff ba bb) boxes in
  of_boxes a.rank (List.fold_left remove_box a.boxes b.boxes)

let union a b =
  check_rank a b;
  (* keep disjointness so that [count] is exact: add b's boxes minus a *)
  let extra = (diff b a).boxes in
  { rank = a.rank; boxes = a.boxes @ extra }

let count r = Listx.sum (List.map box_count r.boxes)

let equal a b = is_empty (diff a b) && is_empty (diff b a)

let subset a b = is_empty (diff a b)

let disjoint a b = is_empty (inter a b)

(* Merge boxes that are identical in all dimensions but one, where the
   remaining triplets are adjacent or overlapping with equal step: this is
   the paper's "merge RSDs if no precision is lost". *)
let simplify r =
  let try_merge (a : box) (b : box) : box option =
    let n = Array.length a in
    let differing = ref [] in
    for d = 0 to n - 1 do
      if not (Triplet.equal a.(d) b.(d)) then differing := d :: !differing
    done;
    match !differing with
    | [] -> Some a
    | [ d ] ->
      let ta = a.(d) and tb = b.(d) in
      if Triplet.is_empty ta then Some b
      else if Triplet.is_empty tb then Some a
      else if
        Triplet.step ta = Triplet.step tb
        && Triplet.step ta = 1
        && Triplet.lo tb <= Triplet.hi ta + 1
        && Triplet.lo ta <= Triplet.hi tb + 1
      then begin
        let merged = Array.copy a in
        merged.(d) <-
          Triplet.make
            ~lo:(min (Triplet.lo ta) (Triplet.lo tb))
            ~hi:(max (Triplet.hi ta) (Triplet.hi tb))
            ~step:1;
        Some merged
      end
      else None
    | _ -> None
  in
  let rec pass boxes =
    let rec insert b = function
      | [] -> ([ b ], false)
      | b' :: rest -> (
        match try_merge b b' with
        | Some m -> (m :: rest, true)
        | None ->
          let rest', changed = insert b rest in
          (b' :: rest', changed))
    in
    match boxes with
    | [] -> []
    | b :: rest ->
      let rest', changed = insert b rest in
      if changed then pass rest' else b :: pass rest
  in
  { r with boxes = pass r.boxes }

let hull r =
  match r.boxes with
  | [] -> None
  | b0 :: rest ->
    Some
      (List.fold_left
         (fun acc b ->
           Array.mapi
             (fun d t ->
               Triplet.make
                 ~lo:(min (Triplet.lo acc.(d)) (Triplet.lo t))
                 ~hi:(max (Triplet.hi acc.(d)) (Triplet.hi t))
                 ~step:1)
             b)
         (Array.map (fun t -> Triplet.make ~lo:(Triplet.lo t) ~hi:(Triplet.hi t) ~step:1) b0)
         rest)

let map_dims f r = { r with boxes = List.map f r.boxes }

let pp_box ppf (b : box) =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ",") Triplet.pp) b

let pp ppf r =
  if is_empty r then Fmt.string ppf "{}"
  else Fmt.pf ppf "%a" Fmt.(list ~sep:(any " u ") pp_box) r.boxes

let to_string r = Fmt.str "%a" pp r
