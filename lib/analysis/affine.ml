(* Affine forms over named integer variables: [sum_i c_i * v_i + k].
   The normalizer folds PARAMETER constants through the symbol table, so
   distribution math downstream sees concrete coefficients. *)

open Fd_support
open Fd_frontend

type t = { coeffs : (string * int) list; const : int }
(* coeffs sorted by name, no zero coefficients *)

let const k = { coeffs = []; const = k }
let zero = const 0

let var ?(coeff = 1) v =
  if coeff = 0 then zero else { coeffs = [ (v, coeff) ]; const = 0 }

let normalize coeffs =
  coeffs
  |> List.filter (fun (_, c) -> c <> 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let add a b =
  let merged =
    List.fold_left
      (fun acc (v, c) ->
        Listx.assoc_update ~equal:String.equal v
          (function None -> c | Some c' -> c + c')
          acc)
      a.coeffs b.coeffs
  in
  { coeffs = normalize merged; const = a.const + b.const }

let neg a =
  { coeffs = List.map (fun (v, c) -> (v, -c)) a.coeffs; const = -a.const }

let sub a b = add a (neg b)

let scale k a =
  if k = 0 then zero
  else { coeffs = List.map (fun (v, c) -> (v, k * c)) a.coeffs; const = k * a.const }

let is_const a = a.coeffs = []

let constant a = a.const

let const_value a = if is_const a then Some a.const else None

let coeff_of v a =
  match List.assoc_opt v a.coeffs with Some c -> c | None -> 0

let vars a = List.map fst a.coeffs

let equal a b = a.const = b.const && a.coeffs = b.coeffs

let drop_var v a =
  { a with coeffs = List.filter (fun (v', _) -> not (String.equal v v')) a.coeffs }

(* Convert an expression; [None] when non-affine.  [symtab] resolves
   PARAMETER names to constants. *)
let rec of_expr symtab (e : Ast.expr) : t option =
  match e with
  | Ast.Int_const n -> Some (const n)
  | Ast.Var v -> (
    match Symtab.param_value symtab v with
    | Some n -> Some (const n)
    | None -> Some (var v))
  | Ast.Un (Ast.Neg, a) -> Option.map neg (of_expr symtab a)
  | Ast.Bin (Ast.Add, a, b) -> (
    match (of_expr symtab a, of_expr symtab b) with
    | Some x, Some y -> Some (add x y)
    | _ -> None)
  | Ast.Bin (Ast.Sub, a, b) -> (
    match (of_expr symtab a, of_expr symtab b) with
    | Some x, Some y -> Some (sub x y)
    | _ -> None)
  | Ast.Bin (Ast.Mul, a, b) -> (
    match (of_expr symtab a, of_expr symtab b) with
    | Some x, Some y -> (
      match (const_value x, const_value y) with
      | Some k, _ -> Some (scale k y)
      | _, Some k -> Some (scale k x)
      | None, None -> None)
    | _ -> None)
  | Ast.Bin (Ast.Div, a, b) -> (
    match (of_expr symtab a, of_expr symtab b) with
    | Some x, Some y -> (
      match (const_value x, const_value y) with
      | Some kx, Some ky when ky <> 0 -> Some (const (kx / ky))
      | _ -> None)
    | _ -> None)
  | _ -> None

let eval env a =
  List.fold_left
    (fun acc (v, c) ->
      match env v with
      | Some x -> acc + (c * x)
      | None -> Diag.internal ~pass:"analysis" "Affine.eval: unbound variable %s" v)
    a.const a.coeffs

(* Reconstruct an AST expression (for code generation). *)
let to_expr a : Ast.expr =
  let term (v, c) : Ast.expr =
    if c = 1 then Ast.Var v
    else if c = -1 then Ast.Un (Ast.Neg, Ast.Var v)
    else Ast.Bin (Ast.Mul, Ast.Int_const c, Ast.Var v)
  in
  match a.coeffs with
  | [] -> Ast.Int_const a.const
  | t0 :: rest ->
    let base = List.fold_left (fun acc t -> Ast.Bin (Ast.Add, acc, term t)) (term t0) rest in
    if a.const = 0 then base
    else if a.const > 0 then Ast.Bin (Ast.Add, base, Ast.Int_const a.const)
    else Ast.Bin (Ast.Sub, base, Ast.Int_const (-a.const))

let pp ppf a =
  if is_const a then Fmt.int ppf a.const
  else begin
    let first = ref true in
    List.iter
      (fun (v, c) ->
        if !first then begin
          first := false;
          if c = 1 then Fmt.string ppf v
          else if c = -1 then Fmt.pf ppf "-%s" v
          else Fmt.pf ppf "%d%s" c v
        end
        else if c >= 0 then
          if c = 1 then Fmt.pf ppf "+%s" v else Fmt.pf ppf "+%d%s" c v
        else if c = -1 then Fmt.pf ppf "-%s" v
        else Fmt.pf ppf "%d%s" c v)
      a.coeffs;
    if a.const > 0 then Fmt.pf ppf "+%d" a.const
    else if a.const < 0 then Fmt.pf ppf "%d" a.const
  end

let to_string a = Fmt.str "%a" pp a
