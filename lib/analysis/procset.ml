(* Per-processor integer sets: the concrete representation of data
   partitions (local index sets) and computation partitions (local
   iteration sets), indexed by logical processor number 0..P-1. *)

open Fd_support

type t = Iset.t array

let make p f : t = Array.init p f

let nprocs (t : t) = Array.length t

let uniform p s : t = Array.make p s

let empty p : t = Array.make p Iset.empty

let get (t : t) p = t.(p)

let map f (t : t) : t = Array.map f t

let map2 f (a : t) (b : t) : t =
  if Array.length a <> Array.length b then
    Diag.internal ~pass:"analysis" "Procset.map2: length mismatch";
  Array.init (Array.length a) (fun p -> f a.(p) b.(p))

let union = map2 Iset.union
let inter = map2 Iset.inter
let diff = map2 Iset.diff

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 Iset.equal a b

let is_empty (t : t) = Array.for_all Iset.is_empty t

let total_count (t : t) = Array.fold_left (fun acc s -> acc + Iset.count s) 0 t

let shift d = map (Iset.shift d)

(* All processors owning element [x]. *)
let owners x (t : t) =
  let acc = ref [] in
  Array.iteri (fun p s -> if Iset.mem x s then acc := p :: !acc) t;
  List.rev !acc

(* The union over processors (e.g. the global index set). *)
let flatten (t : t) = Array.fold_left Iset.union Iset.empty t

let pp ppf (t : t) =
  Array.iteri (fun p s -> Fmt.pf ppf "p%d:%a " p Iset.pp s) t

let to_string t = Fmt.str "%a" pp t
