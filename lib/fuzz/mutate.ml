(* Mutators over mini-Fortran-D source text.

   Two granularities:
   - token-level: edits inside one line — delete/duplicate/swap a token,
     corrupt an identifier or operator, unbalance parentheses — which
     mostly produce lexically/syntactically ill-formed programs;
   - statement-level: whole-line edits exploiting the language's
     one-statement-per-line surface — delete/duplicate/swap statements,
     rename one identifier occurrence (undeclared-variable errors), add
     a subscript (rank errors), truncate the program mid-unit.

   Every choice draws from the caller's [Random.State.t], so a campaign
   seed reproduces byte-identical mutants. *)

let is_word c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '$' || c = '.'

(* Crude token split: word runs and single non-blank characters.  Good
   enough for mutation — the real lexer decides what the mutant means. *)
let split_tokens line =
  let toks = ref [] and n = String.length line in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if is_word c then begin
      let j = ref !i in
      while !j < n && is_word line.[!j] do incr j done;
      toks := String.sub line !i (!j - !i) :: !toks;
      i := !j
    end
    else begin
      toks := String.make 1 c :: !toks;
      incr i
    end
  done;
  List.rev !toks

let join_tokens toks = String.concat " " toks

let pick st xs =
  match xs with [] -> None | _ -> Some (List.nth xs (Random.State.int st (List.length xs)))

(* Lines that are real statements (nonempty, not pure comment). *)
let stmt_indices lines =
  List.filter_map
    (fun (i, t) -> if t <> "" && t.[0] <> '!' then Some i else None)
    (List.mapi (fun i l -> (i, String.trim l)) lines)

let nth_stmt st lines =
  match stmt_indices lines with
  | [] -> None
  | idxs -> pick st idxs

(* --- token-level -------------------------------------------------------- *)

let on_line f st lines =
  match nth_stmt st lines with
  | None -> None
  | Some i -> (
    let line = List.nth lines i in
    match f st line with
    | None -> None
    | Some line' -> Some (List.mapi (fun j l -> if j = i then line' else l) lines))

let tok_delete st line =
  match split_tokens line with
  | [] | [ _ ] -> None
  | toks ->
    let k = Random.State.int st (List.length toks) in
    Some (join_tokens (List.filteri (fun i _ -> i <> k) toks))

let tok_dup st line =
  match split_tokens line with
  | [] -> None
  | toks ->
    let k = Random.State.int st (List.length toks) in
    Some
      (join_tokens
         (List.concat (List.mapi (fun i t -> if i = k then [ t; t ] else [ t ]) toks)))

let tok_swap st line =
  match split_tokens line with
  | [] | [ _ ] -> None
  | toks ->
    let n = List.length toks in
    let k = Random.State.int st (n - 1) in
    let arr = Array.of_list toks in
    let t = arr.(k) in
    arr.(k) <- arr.(k + 1);
    arr.(k + 1) <- t;
    Some (join_tokens (Array.to_list arr))

let tok_corrupt st line =
  let toks = split_tokens line in
  let words = List.filter (fun t -> String.length t > 1) toks in
  match pick st words with
  | None -> None
  | Some w ->
    let junk = [ "?"; "@"; "%"; "0x"; "(" ] in
    let j = Option.get (pick st junk) in
    Some
      (join_tokens
         (List.map (fun t -> if t == w then j else t) toks))

let tok_unbalance st line =
  if String.contains line '(' then
    let i = String.index line '(' in
    Some (String.sub line 0 i ^ String.sub line (i + 1) (String.length line - i - 1))
  else if Random.State.bool st then Some (line ^ " (")
  else Some (line ^ " )")

(* --- statement-level ---------------------------------------------------- *)

let stmt_delete st lines =
  match nth_stmt st lines with
  | None -> None
  | Some i -> Some (List.filteri (fun j _ -> j <> i) lines)

let stmt_dup st lines =
  match nth_stmt st lines with
  | None -> None
  | Some i ->
    Some
      (List.concat
         (List.mapi (fun j l -> if j = i then [ l; l ] else [ l ]) lines))

let stmt_swap st lines =
  match stmt_indices lines with
  | [] | [ _ ] -> None
  | idxs ->
    let a = Option.get (pick st idxs) and b = Option.get (pick st idxs) in
    if a = b then None
    else
      let la = List.nth lines a and lb = List.nth lines b in
      Some
        (List.mapi (fun j l -> if j = a then lb else if j = b then la else l) lines)

let stmt_truncate st lines =
  let n = List.length lines in
  if n < 4 then None
  else
    let keep = 1 + Random.State.int st (n - 2) in
    Some (List.filteri (fun j _ -> j < keep) lines)

(* Rename one identifier occurrence: an undeclared-variable or
   unknown-procedure semantic error with the rest of the program
   intact. *)
let stmt_rename_one st lines =
  on_line
    (fun st line ->
      let toks = split_tokens line in
      let words =
        List.filter
          (fun t ->
            String.length t > 1
            && (t.[0] >= 'a' && t.[0] <= 'z')
            && not (List.mem t [ "program"; "subroutine"; "end"; "call"; "do";
                                 "enddo"; "if"; "then"; "else"; "endif"; "real";
                                 "integer"; "print"; "common"; "parameter" ]))
          toks
      in
      match pick st words with
      | None -> None
      | Some w ->
        Some
          (join_tokens (List.map (fun t -> if t == w then "zz$9" else t) toks)))
    st lines

(* Add a subscript to the first parenthesized reference on a line: a
   rank-mismatch semantic error. *)
let stmt_add_subscript st lines =
  on_line
    (fun _st line ->
      match String.index_opt line '(' with
      | None -> None
      | Some i ->
        Some
          (String.sub line 0 (i + 1)
          ^ "1, "
          ^ String.sub line (i + 1) (String.length line - i - 1)))
    st lines

let mutators =
  [ ("tok-delete", on_line tok_delete);
    ("tok-dup", on_line tok_dup);
    ("tok-swap", on_line tok_swap);
    ("tok-corrupt", on_line tok_corrupt);
    ("tok-unbalance", on_line tok_unbalance);
    ("stmt-delete", stmt_delete);
    ("stmt-dup", stmt_dup);
    ("stmt-swap", stmt_swap);
    ("stmt-truncate", stmt_truncate);
    ("stmt-rename", stmt_rename_one);
    ("stmt-subscript", stmt_add_subscript) ]

let mutator_names = List.map fst mutators

let split_lines src = String.split_on_char '\n' src

let mutate st ?(n = 1) src =
  let lines = ref (split_lines src) in
  let applied = ref 0 and tries = ref 0 in
  while !applied < n && !tries < n * 8 do
    incr tries;
    let _, m = List.nth mutators (Random.State.int st (List.length mutators)) in
    match m st !lines with
    | Some lines' ->
      lines := lines';
      incr applied
    | None -> ()
  done;
  String.concat "\n" !lines
