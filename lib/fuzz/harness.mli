(** The differential fuzzing harness behind [fdc fuzz].

    Each case derives entirely from its integer seed: a base program
    from {!Fd_workloads.Gen}, usually mutated by {!Mutate} into a
    possibly ill-formed variant, compiled and simulated under a
    per-case resource budget with one randomly chosen strategy.

    The property under test is totality with honest answers: no
    uncaught exceptions ever; frontend rejections carry a source
    location; accepted programs verify against the sequential
    reference, or fail simulation only when the static verifier also
    flags the program. *)

open Fd_support
open Fd_core

type failure_kind =
  | Crash of string
      (** [Internal_error] or a residual uncaught exception *)
  | Unsound of string
      (** simulation failed but the static check saw nothing *)
  | Mismatch
      (** accepted and ran, but differs from the sequential reference *)
  | Unlocated_reject
      (** the frontend rejected without a source location *)

type verdict =
  | Accepted  (** compiled and verified (or budget-partial) *)
  | Rejected  (** located diagnostics, or a backend fail-fast error *)
  | Failed of failure_kind

val kind_name : failure_kind -> string
val kind_detail : failure_kind -> string

val default_case_budget : Budget.t
(** 500k steps / 200k events / 2s wall per case. *)

val run_case :
  ?budget:Budget.t -> nprocs:int -> strategy:Options.strategy -> string ->
  verdict
(** Classify one source text.  Never raises. *)

val gen_case : int -> string * Options.strategy
(** The deterministic seed -> (source, strategy) map shared by
    campaigns and [--repro]. *)

type failure = {
  f_seed : int;  (** replay with [fdc fuzz --repro] *)
  f_kind : string;
  f_detail : string;
  f_src : string;  (** shrunk reproducer *)
}

type report = {
  iters : int;  (** cases actually executed (wall budget may stop early) *)
  accepted : int;
  rejected : int;
  failures : failure list;
  elapsed : float;
  execs_per_sec : float;
}

val campaign :
  ?budget:Budget.t -> ?wall:float -> ?nprocs:int -> ?log:(string -> unit) ->
  iters:int -> seed:int -> unit -> report
(** Run [iters] cases with seeds [seed], [seed+1], ….  [?wall] bounds
    the whole campaign (graceful early stop); [?budget] overrides the
    per-case budget.  Failing cases are shrunk while the same failure
    kind reproduces. *)

type repro = {
  r_src : string;
  r_strategy : Options.strategy;
  r_verdict : verdict;
  r_shrunk : string option;  (** present when the case fails *)
}

val repro : ?budget:Budget.t -> ?nprocs:int -> int -> repro
(** Replay one case by seed — the verbose path behind [--repro]. *)
