(* The differential fuzzing harness: generate (possibly mutated, often
   ill-formed) programs, push each through the full pipeline under a
   per-case resource budget, and classify the outcome.

   The invariant under test is *totality with honest answers*:
   - no case may escape as an uncaught exception (Internal_error and
     any residual raise are failures);
   - a rejected program must carry a located diagnostic when the
     frontend rejected it;
   - an accepted program must either verify against the sequential
     reference, or fail simulation only when the static verifier also
     flags the program (soundness of `fdc check` vs. the simulator).

   Failing cases are shrunk line-by-line while the same failure kind
   reproduces, and each failure prints its case seed for `--repro`. *)

open Fd_support
open Fd_core
open Fd_machine

type failure_kind =
  | Crash of string  (* Internal_error or a residual uncaught exception *)
  | Unsound of string  (* simulation failed, static check saw nothing *)
  | Mismatch  (* accepted, ran, differs from the sequential reference *)
  | Unlocated_reject  (* frontend rejection without a source location *)

type verdict =
  | Accepted  (* compiled and verified (or stopped on budget, partial) *)
  | Rejected  (* located diagnostics, or a backend fail-fast error *)
  | Failed of failure_kind

let kind_name = function
  | Crash _ -> "crash"
  | Unsound _ -> "unsound"
  | Mismatch -> "mismatch"
  | Unlocated_reject -> "unlocated-reject"

let kind_detail = function
  | Crash m | Unsound m -> m
  | Mismatch -> "parallel result differs from the sequential reference"
  | Unlocated_reject -> "rejected without a source location"

let same_kind a b =
  match (a, b) with
  | Crash _, Crash _ | Unsound _, Unsound _ | Mismatch, Mismatch
  | Unlocated_reject, Unlocated_reject -> true
  | _ -> false

(* Every case runs under this budget unless the caller overrides it: a
   mutant that livelocks the simulator degrades to a partial result
   instead of hanging the campaign. *)
let default_case_budget =
  Budget.make ~steps:500_000 ~events:200_000 ~wall:2.0 ()

let strategies =
  [| Options.Interproc; Options.Immediate; Options.Runtime_resolution |]

(* Does the static verifier flag anything (Error, or an Info coverage
   note) that makes a dynamic failure unsurprising? *)
let statically_flagged ~opts cp =
  let compiled = Driver.compile ~opts cp in
  let vr =
    Fd_verify.Verify.check_node ~nprocs:opts.Options.nprocs
      compiled.Codegen.program
  in
  let lint = Fd_verify.Lint.run cp in
  List.exists
    (fun (f : Fd_verify.Finding.t) ->
      match f.Fd_verify.Finding.severity with
      | Fd_verify.Finding.Error | Fd_verify.Finding.Info -> true
      | Fd_verify.Finding.Warning -> false)
    (lint @ vr.Fd_verify.Verify.findings)

let run_case ?(budget = default_case_budget) ~nprocs ~strategy src : verdict =
  let opts = { Options.default with Options.nprocs; strategy } in
  match Driver.check_source ~file:"<fuzz>" src with
  | exception Diag.Compile_errors ds ->
    if List.exists (fun (d : Diag.t) -> d.Diag.loc <> Loc.none) ds then Rejected
    else Failed Unlocated_reject
  | exception Diag.Compile_error d ->
    if d.Diag.loc <> Loc.none then Rejected else Failed Unlocated_reject
  | exception Diag.Internal_error d -> Failed (Crash (Diag.to_string d))
  | exception exn -> Failed (Crash (Printexc.to_string exn))
  | cp -> (
    match Driver.run ~opts ~budget cp with
    | r -> if Driver.verified r then Accepted else Failed Mismatch
    | exception Diag.Compile_error _ ->
      (* backend fail-fast (recursion, forbidden aliasing, ...): a
         clean rejection, located or not *)
      Rejected
    | exception Diag.Compile_errors _ -> Rejected
    | exception Diag.Internal_error d -> Failed (Crash (Diag.to_string d))
    | exception Scheduler.Sim_error e -> (
      let msg = Scheduler.error_to_string e in
      match statically_flagged ~opts cp with
      | true -> Rejected  (* the static check predicted dynamic trouble *)
      | false -> Failed (Unsound msg)
      | exception _ -> Failed (Crash ("static check crashed after: " ^ msg)))
    | exception exn -> Failed (Crash (Printexc.to_string exn)))

(* --- case generation ---------------------------------------------------- *)

(* Everything about a case derives from its seed alone, so a printed
   seed replays byte-identically via [--repro]. *)
let case_rng case_seed = Random.State.make [| case_seed; 0x9e3779b9 |]

let gen_case case_seed : string * Options.strategy =
  let st = case_rng case_seed in
  let base =
    if Random.State.int st 4 = 0 then Fd_workloads.Gen.random_source2d st
    else Fd_workloads.Gen.random_source st
  in
  let src =
    if Random.State.float st 1.0 < 0.7 then
      Mutate.mutate st ~n:(1 + Random.State.int st 3) base
    else base
  in
  let strategy = strategies.(Random.State.int st (Array.length strategies)) in
  (src, strategy)

(* --- campaign ----------------------------------------------------------- *)

type failure = {
  f_seed : int;
  f_kind : string;
  f_detail : string;
  f_src : string;  (* shrunk reproducer *)
}

type report = {
  iters : int;  (* cases actually executed *)
  accepted : int;
  rejected : int;
  failures : failure list;
  elapsed : float;
  execs_per_sec : float;
}

let exec_case ?budget ~nprocs case_seed =
  let src, strategy = gen_case case_seed in
  (run_case ?budget ~nprocs ~strategy src, src, strategy)

let shrink_failure ?budget ~nprocs ~strategy kind src =
  Shrink.shrink
    ~keep:(fun s ->
      match run_case ?budget ~nprocs ~strategy s with
      | Failed k -> same_kind k kind
      | Accepted | Rejected -> false)
    src

let campaign ?budget ?wall ?(nprocs = 4) ?(log = fun _ -> ()) ~iters ~seed () :
    report =
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun w -> t0 +. w) wall in
  let accepted = ref 0 and rejected = ref 0 and failures = ref [] in
  let ran = ref 0 in
  let within_wall () =
    match deadline with Some d -> Unix.gettimeofday () < d | None -> true
  in
  let i = ref 0 in
  while !i < iters && within_wall () do
    let case_seed = seed + !i in
    (match exec_case ?budget ~nprocs case_seed with
    | Accepted, _, _ -> incr accepted
    | Rejected, _, _ -> incr rejected
    | Failed kind, src, strategy ->
      log
        (Fmt.str "seed %d: %s (%s); shrinking..." case_seed (kind_name kind)
           (kind_detail kind));
      let shrunk = shrink_failure ?budget ~nprocs ~strategy kind src in
      failures :=
        { f_seed = case_seed; f_kind = kind_name kind;
          f_detail = kind_detail kind; f_src = shrunk }
        :: !failures);
    incr ran;
    if !ran mod 100 = 0 then
      log
        (Fmt.str "%d/%d cases, %d accepted, %d rejected, %d failures" !ran
           iters !accepted !rejected
           (List.length !failures));
    incr i
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  { iters = !ran;
    accepted = !accepted;
    rejected = !rejected;
    failures = List.rev !failures;
    elapsed;
    execs_per_sec = (if elapsed > 0.0 then float_of_int !ran /. elapsed else 0.0) }

(* Replay one case by seed: the verbose single-case path behind
   `fdc fuzz --repro`. *)
type repro = {
  r_src : string;
  r_strategy : Options.strategy;
  r_verdict : verdict;
  r_shrunk : string option;  (* present when the case fails *)
}

let repro ?budget ?(nprocs = 4) seed : repro =
  let src, strategy = gen_case seed in
  let verdict = run_case ?budget ~nprocs ~strategy src in
  let shrunk =
    match verdict with
    | Failed kind -> Some (shrink_failure ?budget ~nprocs ~strategy kind src)
    | Accepted | Rejected -> None
  in
  { r_src = src; r_strategy = strategy; r_verdict = verdict; r_shrunk = shrunk }
