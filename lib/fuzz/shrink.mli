(** Line-based shrinking of failing fuzz cases (greedy delta
    debugging). *)

val max_attempts : int
(** Total predicate-evaluation budget per shrink. *)

val shrink : keep:(string -> bool) -> string -> string
(** [shrink ~keep src] deletes chunks of lines, halving chunk sizes
    down to single lines, while [keep] (the "same failure still
    reproduces" predicate) holds; returns the smallest kept variant.
    Evaluates [keep] at most {!max_attempts} times. *)
