(* Line-based shrinking of failing fuzz cases: greedy delta debugging.

   Starting from the whole program, repeatedly try to delete chunks of
   lines (halving chunk sizes down to single lines) while the caller's
   [keep] predicate — "the same failure still reproduces" — holds.
   Bounded by a total attempt budget so a flaky predicate cannot spin. *)

let max_attempts = 150

let shrink ~(keep : string -> bool) (src : string) : string =
  let attempts = ref 0 in
  let try_keep lines =
    incr attempts;
    keep (String.concat "\n" lines)
  in
  let rec pass chunk lines =
    if chunk < 1 || !attempts >= max_attempts then lines
    else begin
      let n = List.length lines in
      let changed = ref false in
      let lines = ref lines in
      let start = ref 0 in
      while !start < List.length !lines && !attempts < max_attempts do
        let candidate =
          List.filteri (fun i _ -> i < !start || i >= !start + chunk) !lines
        in
        if List.length candidate < List.length !lines && candidate <> []
           && try_keep candidate
        then begin
          lines := candidate;
          changed := true
          (* keep [start]: the next chunk slides into this position *)
        end
        else start := !start + chunk
      done;
      if !changed && List.length !lines < n then pass chunk !lines
      else pass (chunk / 2) !lines
    end
  in
  let lines = String.split_on_char '\n' src in
  let shrunk = pass (List.length lines / 2) lines in
  String.concat "\n" shrunk
