(** Token- and statement-level mutators over mini-Fortran-D source.

    Token-level mutations edit inside one line (delete/duplicate/swap a
    token, corrupt an identifier, unbalance parentheses) and mostly
    produce lexically or syntactically ill-formed programs; the
    statement-level tier edits whole lines (delete/duplicate/swap/
    truncate, rename one identifier occurrence, add a subscript) and
    reaches semantic errors — or stays well-formed, which is the point:
    the differential harness must be total either way.

    All randomness comes from the caller's [Random.State.t], so one seed
    reproduces byte-identical mutants. *)

val mutator_names : string list

val mutate : Random.State.t -> ?n:int -> string -> string
(** Apply [n] (default 1) randomly chosen mutations.  Inapplicable
    picks are retried a bounded number of times; the result may carry
    fewer than [n] mutations on tiny inputs. *)
