(** Trace exporters: Chrome trace_event JSON, communication matrix,
    per-processor summary, normalized golden skeleton, and trace-derived
    {!Metrics} distributions. *)

val chrome : ?nprocs:int -> Trace.t -> Fd_support.Json.t
(** Chrome trace_event JSON ({["traceEvents"]} object form), loadable in
    Perfetto or [chrome://tracing].  Machine events live on process 0
    with one thread per logical processor (virtual-time timestamps);
    compiler pass spans live on process 1 (wall-clock timestamps).
    [nprocs] fixes the thread-name metadata; inferred from the events
    when omitted. *)

type matrix = {
  m_nprocs : int;
  m_msgs : int array array;   (** [src].(dest) point-to-point messages *)
  m_bytes : int array array;  (** [src].(dest) bytes, incl. remap traffic *)
}

val matrix : nprocs:int -> Trace.t -> matrix

val pp_matrix : Format.formatter -> matrix -> unit

val matrix_to_json : matrix -> Fd_support.Json.t

type proc_summary = {
  s_proc : int;
  s_sends : int;
  s_recvs : int;
  s_bytes_out : int;
  s_bytes_in : int;
  s_blocked : float;  (** receive waits + collective waits, seconds *)
  s_busy : float;     (** compute time from the [busy] array, seconds *)
  s_util : float;     (** [busy / elapsed]; 0 when either is unknown *)
}

val summary :
  nprocs:int -> ?busy:float array -> ?elapsed:float -> Trace.t ->
  proc_summary list

val pp_summary : Format.formatter -> proc_summary list -> unit

val summary_to_json : proc_summary list -> Fd_support.Json.t

val skeleton : Trace.t -> string list
(** Normalized communication skeleton: one line per send / recv /
    collective-enter / remap event, timestamps and payload sizes
    stripped.  This is the golden-trace format diffed by the test
    suite. *)

val observe : Metrics.t -> Trace.t -> unit
(** Fold trace-derived distributions into a registry: receive-wait and
    collective-wait histograms, message-size histogram, dropped-event
    counter. *)
