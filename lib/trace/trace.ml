(* Structured event tracing for the ensemble simulator and the compiler
   pipeline.

   The design goal is zero cost when tracing is off and no per-event
   allocation when it is on: a trace is a preallocated ring of mutable
   event records; [emit] overwrites the oldest slot in place once the
   ring is full.  Producers (scheduler, interpreter, pipeline) hold a
   [t option] and emit through one option match.

   Timestamps are the simulator's virtual clock (seconds) for machine
   events and wall-clock seconds for compiler [Span] events; consumers
   that mix both (the Chrome exporter) place them on separate process
   tracks. *)

type kind =
  | Send        (* proc=src, peer=dest, tag, seq, bytes; at = network hand-off *)
  | Recv        (* proc=receiver, peer=src, tag; dur = blocked wait *)
  | Block       (* proc parks on (peer, tag); at = park time *)
  | Wake        (* a parked proc is released by an arrival *)
  | Retransmit  (* recovery retransmission on (proc=src -> peer) *)
  | Dedup       (* duplicate copy dropped at proc=receiver *)
  | Delay       (* injected delivery jitter on (proc=src -> peer) *)
  | Lost        (* message declared undeliverable *)
  | Coll_enter  (* proc arrives at collective site=tag; dur = wait to release *)
  | Coll_exit   (* proc released from collective site=tag; bytes = payload share *)
  | Guard_skip  (* an owner guard evaluated false on proc; body skipped *)
  | Remap       (* remap traffic proc=sender -> peer, bytes; label = array *)
  | Span        (* compiler pass span: label = pass, at/dur wall-clock *)

let kind_name = function
  | Send -> "send"
  | Recv -> "recv"
  | Block -> "block"
  | Wake -> "wake"
  | Retransmit -> "retransmit"
  | Dedup -> "dedup"
  | Delay -> "delay"
  | Lost -> "lost"
  | Coll_enter -> "coll-enter"
  | Coll_exit -> "coll-exit"
  | Guard_skip -> "guard-skip"
  | Remap -> "remap"
  | Span -> "span"

type ev = {
  mutable at : float;     (* seconds *)
  mutable kind : kind;
  mutable proc : int;     (* acting processor; -1 = the compiler *)
  mutable peer : int;     (* partner processor; -1 = none *)
  mutable tag : int;      (* message tag or collective site; -1 = none *)
  mutable seq : int;      (* channel sequence number; -1 = none *)
  mutable bytes : int;
  mutable dur : float;    (* span / wait length, seconds *)
  mutable label : string; (* array, collective or pass name; "" = none *)
}

type t = {
  cap : int;
  buf : ev array;
  mutable total : int;  (* events ever emitted; ring slot = total mod cap *)
  sink : (ev -> unit) option;
      (* lossless side-channel: called with a private copy of every
         emitted event, even ones the ring later overwrites *)
}

let default_capacity = 1 lsl 16

let fresh_ev () =
  { at = 0.0; kind = Send; proc = -1; peer = -1; tag = -1; seq = -1; bytes = 0;
    dur = 0.0; label = "" }

let create ?(capacity = default_capacity) ?sink () =
  let cap = max 1 capacity in
  { cap; buf = Array.init cap (fun _ -> fresh_ev ()); total = 0; sink }

let capacity t = t.cap
let total t = t.total
let length t = min t.total t.cap
let dropped t = max 0 (t.total - t.cap)
let clear t = t.total <- 0

let copy_ev e =
  { at = e.at; kind = e.kind; proc = e.proc; peer = e.peer; tag = e.tag;
    seq = e.seq; bytes = e.bytes; dur = e.dur; label = e.label }

let emit t ~kind ~at ~proc ?(peer = -1) ?(tag = -1) ?(seq = -1) ?(bytes = 0)
    ?(dur = 0.0) ?(label = "") () =
  let e = t.buf.(t.total mod t.cap) in
  e.at <- at;
  e.kind <- kind;
  e.proc <- proc;
  e.peer <- peer;
  e.tag <- tag;
  e.seq <- seq;
  e.bytes <- bytes;
  e.dur <- dur;
  e.label <- label;
  t.total <- t.total + 1;
  match t.sink with Some f -> f (copy_ev e) | None -> ()

(* Re-emit a captured event verbatim (parallel-replay path). *)
let emit_ev t ev =
  emit t ~kind:ev.kind ~at:ev.at ~proc:ev.proc ~peer:ev.peer ~tag:ev.tag
    ~seq:ev.seq ~bytes:ev.bytes ~dur:ev.dur ~label:ev.label ()

(* Chronological iteration over the retained window.  The record handed
   to [f] is the ring's own slot: read it, do not retain it. *)
let iter t f =
  let start = max 0 (t.total - t.cap) in
  for k = start to t.total - 1 do
    f t.buf.(k mod t.cap)
  done

let to_list t =
  let out = ref [] in
  iter t (fun e -> out := copy_ev e :: !out);
  List.rev !out

let fold t init f =
  let acc = ref init in
  iter t (fun e -> acc := f !acc e);
  !acc

let count t ~kind = fold t 0 (fun n e -> if e.kind = kind then n + 1 else n)

let pp_ev ppf e =
  let us = e.at *. 1e6 in
  match e.kind with
  | Send ->
    Fmt.pf ppf "%10.1f us  send        p%d -> p%d  tag %d seq %d  %d bytes" us
      e.proc e.peer e.tag e.seq e.bytes
  | Recv ->
    Fmt.pf ppf "%10.1f us  recv        p%d <- p%d  tag %d  (waited %.1f us)" us
      e.proc e.peer e.tag (e.dur *. 1e6)
  | Block ->
    Fmt.pf ppf "%10.1f us  block       p%d on p%d tag %d" us e.proc e.peer e.tag
  | Wake -> Fmt.pf ppf "%10.1f us  wake        p%d by p%d tag %d" us e.proc e.peer e.tag
  | Retransmit ->
    Fmt.pf ppf "%10.1f us  retransmit  p%d -> p%d  tag %d seq %d" us e.proc e.peer
      e.tag e.seq
  | Dedup ->
    Fmt.pf ppf "%10.1f us  dedup       p%d <- p%d  tag %d seq %d" us e.proc e.peer
      e.tag e.seq
  | Delay ->
    Fmt.pf ppf "%10.1f us  delay       p%d -> p%d  tag %d seq %d" us e.proc e.peer
      e.tag e.seq
  | Lost ->
    Fmt.pf ppf "%10.1f us  lost        p%d -> p%d  tag %d seq %d" us e.proc e.peer
      e.tag e.seq
  | Coll_enter ->
    Fmt.pf ppf "%10.1f us  coll-enter  p%d site %d (%s)  waits %.1f us" us e.proc
      e.tag e.label (e.dur *. 1e6)
  | Coll_exit ->
    Fmt.pf ppf "%10.1f us  coll-exit   p%d site %d (%s)  %d bytes" us e.proc e.tag
      e.label e.bytes
  | Guard_skip -> Fmt.pf ppf "%10.1f us  guard-skip  p%d" us e.proc
  | Remap ->
    Fmt.pf ppf "%10.1f us  remap       %s  p%d -> p%d  %d bytes" us e.label e.proc
      e.peer e.bytes
  | Span ->
    Fmt.pf ppf "%10.3f ms  span        %s  %.3f ms" (e.at *. 1e3) e.label
      (e.dur *. 1e3)

let pp ppf t = iter t (fun e -> Fmt.pf ppf "%a@." pp_ev e)
