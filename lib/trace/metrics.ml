(* A small metrics registry: named integer counters, float gauges, and
   fixed-bucket histograms, serialized through Fd_support.Json.  One
   registry describes one run; Fd_machine.Stats converts itself into a
   registry so simulator statistics, trace-derived distributions, and
   ad-hoc tool counters share one serialization. *)

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : float array;   (* upper bucket bounds, ascending; last = +inf *)
  h_counts : int array;     (* length = Array.length h_bounds + 1 *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_min : float;
  mutable h_max : float;
}

type item = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, item) Hashtbl.t;
  mutable order : string list;  (* registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let register t name item =
  if Hashtbl.mem t.tbl name then
    invalid_arg (Fmt.str "Metrics: %s registered twice" name);
  Hashtbl.replace t.tbl name item;
  t.order <- name :: t.order

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Fmt.str "Metrics: %s is not a counter" name)
  | None ->
    let c = { c_name = name; c_value = 0 } in
    register t name (Counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Fmt.str "Metrics: %s is not a gauge" name)
  | None ->
    let g = { g_name = name; g_value = 0.0 } in
    register t name (Gauge g);
    g

let histogram t name ~bounds =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (Fmt.str "Metrics: %s is not a histogram" name)
  | None ->
    let bounds = Array.copy bounds in
    Array.sort compare bounds;
    let h =
      { h_name = name; h_bounds = bounds;
        h_counts = Array.make (Array.length bounds + 1) 0; h_sum = 0.0;
        h_count = 0; h_min = infinity; h_max = neg_infinity }
    in
    register t name (Histogram h);
    h

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let set_counter c v = c.c_value <- v
let set g v = g.g_value <- v

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
  let b = bucket 0 in
  h.h_counts.(b) <- h.h_counts.(b) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

let items t =
  List.rev_map (fun name -> (name, Hashtbl.find t.tbl name)) t.order

let find t name = Hashtbl.find_opt t.tbl name

let histogram_json h : Fd_support.Json.t =
  let open Fd_support.Json in
  Obj
    [ ("type", Str "histogram");
      ("count", Int h.h_count);
      ("sum", Float h.h_sum);
      ("mean", Float (mean h));
      ("min", Float (if h.h_count = 0 then 0.0 else h.h_min));
      ("max", Float (if h.h_count = 0 then 0.0 else h.h_max));
      ( "buckets",
        List
          (Array.to_list
             (Array.mapi
                (fun i n ->
                  let le =
                    if i < Array.length h.h_bounds then Float h.h_bounds.(i)
                    else Str "inf"
                  in
                  Obj [ ("le", le); ("count", Int n) ])
                h.h_counts)) ) ]

let to_json t : Fd_support.Json.t =
  let open Fd_support.Json in
  Obj
    (List.map
       (fun (name, item) ->
         ( name,
           match item with
           | Counter c -> Int c.c_value
           | Gauge g -> Float g.g_value
           | Histogram h -> histogram_json h ))
       (items t))

let pp ppf t =
  List.iter
    (fun (name, item) ->
      match item with
      | Counter c -> Fmt.pf ppf "%-28s %12d@." name c.c_value
      | Gauge g -> Fmt.pf ppf "%-28s %12.6g@." name g.g_value
      | Histogram h ->
        Fmt.pf ppf "%-28s n=%d mean=%.3g min=%.3g max=%.3g@." name h.h_count
          (mean h)
          (if h.h_count = 0 then 0.0 else h.h_min)
          (if h.h_count = 0 then 0.0 else h.h_max))
    (items t)
