(** Structured event tracing: a preallocated ring buffer of typed events
    with virtual (machine) or wall-clock (compiler span) timestamps.

    Zero cost when off: producers hold a [t option] and emit through one
    option match.  Zero allocation when on: [emit] mutates the oldest
    ring slot in place; once the ring is full the earliest events are
    overwritten and counted in {!dropped}. *)

type kind =
  | Send        (** proc=src, peer=dest, tag, seq, bytes *)
  | Recv        (** proc=receiver, peer=src, tag; [dur] = blocked wait *)
  | Block       (** proc parks on (peer, tag) *)
  | Wake        (** a parked proc is released by an arrival *)
  | Retransmit  (** recovery retransmission on (proc=src -> peer) *)
  | Dedup       (** duplicate copy dropped at proc=receiver *)
  | Delay       (** injected delivery jitter on (proc=src -> peer) *)
  | Lost        (** message declared undeliverable *)
  | Coll_enter  (** proc arrives at collective site=[tag]; [dur] = wait *)
  | Coll_exit   (** proc released from site=[tag]; [bytes] = payload share *)
  | Guard_skip  (** an owner guard evaluated false; body skipped *)
  | Remap       (** remap traffic proc -> peer; [label] = array *)
  | Span        (** compiler pass span: [label] = pass, wall-clock times *)

val kind_name : kind -> string

type ev = {
  mutable at : float;
  mutable kind : kind;
  mutable proc : int;
  mutable peer : int;
  mutable tag : int;
  mutable seq : int;
  mutable bytes : int;
  mutable dur : float;
  mutable label : string;
}

type t

val default_capacity : int

val create : ?capacity:int -> ?sink:(ev -> unit) -> unit -> t
(** [sink] is a lossless side-channel: it receives a private copy of
    every emitted event, including ones the ring later overwrites.  The
    parallel scheduler uses sinks to capture interpreter-level events
    for deterministic replay. *)

val capacity : t -> int

val total : t -> int
(** Events ever emitted, including overwritten ones. *)

val length : t -> int
(** Events currently retained ([min total capacity]). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val clear : t -> unit

val emit :
  t -> kind:kind -> at:float -> proc:int -> ?peer:int -> ?tag:int -> ?seq:int ->
  ?bytes:int -> ?dur:float -> ?label:string -> unit -> unit

val emit_ev : t -> ev -> unit
(** Re-emit a captured event verbatim (all fields copied). *)

val copy_ev : ev -> ev
(** A private copy, safe to retain across later emissions. *)

val iter : t -> (ev -> unit) -> unit
(** Chronological iteration over the retained window.  The record handed
    to the callback is the ring's own mutable slot: read, don't retain. *)

val to_list : t -> ev list
(** Chronological copies of the retained events. *)

val fold : t -> 'a -> ('a -> ev -> 'a) -> 'a

val count : t -> kind:kind -> int

val pp_ev : Format.formatter -> ev -> unit

val pp : Format.formatter -> t -> unit
