(* Trace exporters.

   - [chrome]: Chrome trace_event JSON (the "JSON Array Format" inside a
     {"traceEvents": [...]} object), loadable in Perfetto / chrome://tracing.
     Machine events go on process 0 (one thread per logical processor,
     virtual-time timestamps); compiler pass spans go on process 1
     (wall-clock timestamps) — the two tracks use different timebases,
     which Perfetto renders fine since they are separate processes.
   - [matrix]: the per-(src, dest) communication matrix (messages, bytes;
     remap traffic counts toward bytes).
   - [summary]: per-processor utilization / blocked-time table.
   - [skeleton]: the normalized event skeleton (kind/src/dest/tag only,
     timestamps stripped) used by the golden-trace test suite.
   - [observe]: fold trace-derived distributions (receive waits, message
     sizes) into a {!Metrics} registry. *)

open Fd_support

(* --- Chrome trace_event ------------------------------------------------- *)

let us at = Json.Float (at *. 1e6)

let base ~name ~cat ~ph ~pid ~tid ~ts rest : Json.t =
  Json.Obj
    ([ ("name", Json.Str name); ("cat", Json.Str cat); ("ph", Json.Str ph);
       ("pid", Json.Int pid); ("tid", Json.Int tid); ("ts", ts) ]
    @ rest)

let instant ~name ~cat ~tid ~ts args =
  base ~name ~cat ~ph:"i" ~pid:0 ~tid ~ts
    (("s", Json.Str "t") :: if args = [] then [] else [ ("args", Json.Obj args) ])

let complete ~name ~cat ~pid ~tid ~ts ~dur args =
  base ~name ~cat ~ph:"X" ~pid ~tid ~ts
    (("dur", dur) :: if args = [] then [] else [ ("args", Json.Obj args) ])

let metadata ~name ~pid ~tid value =
  Json.Obj
    [ ("name", Json.Str name); ("ph", Json.Str "M"); ("pid", Json.Int pid);
      ("tid", Json.Int tid); ("args", Json.Obj [ ("name", Json.Str value) ]) ]

let chrome_event (e : Trace.ev) : Json.t option =
  match e.Trace.kind with
  | Trace.Send ->
    Some
      (instant
         ~name:(Fmt.str "send -> p%d tag %d" e.Trace.peer e.Trace.tag)
         ~cat:"comm" ~tid:e.Trace.proc ~ts:(us e.Trace.at)
         [ ("dest", Json.Int e.Trace.peer); ("tag", Json.Int e.Trace.tag);
           ("seq", Json.Int e.Trace.seq); ("bytes", Json.Int e.Trace.bytes) ])
  | Trace.Recv ->
    if e.Trace.dur > 0.0 then
      Some
        (complete
           ~name:(Fmt.str "wait p%d tag %d" e.Trace.peer e.Trace.tag)
           ~cat:"comm" ~pid:0 ~tid:e.Trace.proc
           ~ts:(us (e.Trace.at -. e.Trace.dur))
           ~dur:(us e.Trace.dur)
           [ ("src", Json.Int e.Trace.peer); ("tag", Json.Int e.Trace.tag) ])
    else
      Some
        (instant
           ~name:(Fmt.str "recv <- p%d tag %d" e.Trace.peer e.Trace.tag)
           ~cat:"comm" ~tid:e.Trace.proc ~ts:(us e.Trace.at)
           [ ("src", Json.Int e.Trace.peer); ("tag", Json.Int e.Trace.tag) ])
  | Trace.Block ->
    Some
      (instant ~name:"block" ~cat:"sched" ~tid:e.Trace.proc ~ts:(us e.Trace.at)
         [ ("on", Json.Int e.Trace.peer); ("tag", Json.Int e.Trace.tag) ])
  | Trace.Wake ->
    Some
      (instant ~name:"wake" ~cat:"sched" ~tid:e.Trace.proc ~ts:(us e.Trace.at)
         [ ("by", Json.Int e.Trace.peer); ("tag", Json.Int e.Trace.tag) ])
  | Trace.Retransmit | Trace.Dedup | Trace.Delay | Trace.Lost ->
    Some
      (instant
         ~name:(Trace.kind_name e.Trace.kind)
         ~cat:"fault" ~tid:e.Trace.proc ~ts:(us e.Trace.at)
         [ ("peer", Json.Int e.Trace.peer); ("tag", Json.Int e.Trace.tag);
           ("seq", Json.Int e.Trace.seq) ])
  | Trace.Coll_enter ->
    Some
      (complete
         ~name:(Fmt.str "coll %s" e.Trace.label)
         ~cat:"coll" ~pid:0 ~tid:e.Trace.proc ~ts:(us e.Trace.at)
         ~dur:(us e.Trace.dur)
         [ ("site", Json.Int e.Trace.tag) ])
  | Trace.Coll_exit ->
    Some
      (instant
         ~name:(Fmt.str "coll-exit %s" e.Trace.label)
         ~cat:"coll" ~tid:e.Trace.proc ~ts:(us e.Trace.at)
         [ ("site", Json.Int e.Trace.tag); ("bytes", Json.Int e.Trace.bytes) ])
  | Trace.Guard_skip ->
    Some
      (instant ~name:"guard-skip" ~cat:"compute" ~tid:e.Trace.proc
         ~ts:(us e.Trace.at) [])
  | Trace.Remap ->
    Some
      (instant
         ~name:(Fmt.str "remap %s -> p%d" e.Trace.label e.Trace.peer)
         ~cat:"comm" ~tid:e.Trace.proc ~ts:(us e.Trace.at)
         [ ("dest", Json.Int e.Trace.peer); ("bytes", Json.Int e.Trace.bytes) ])
  | Trace.Span ->
    Some
      (complete ~name:e.Trace.label ~cat:"compile" ~pid:1 ~tid:0
         ~ts:(us e.Trace.at) ~dur:(us e.Trace.dur) [])

let chrome ?nprocs (t : Trace.t) : Json.t =
  let nprocs =
    match nprocs with
    | Some n -> n
    | None ->
      (* infer the thread set from the events themselves *)
      Trace.fold t 0 (fun acc e -> max acc (max e.Trace.proc e.Trace.peer + 1))
  in
  let has_spans = Trace.count t ~kind:Trace.Span > 0 in
  let meta =
    metadata ~name:"process_name" ~pid:0 ~tid:0 "ensemble"
    :: List.init nprocs (fun p ->
           metadata ~name:"thread_name" ~pid:0 ~tid:p (Fmt.str "p%d" p))
    @
    if has_spans then
      [ metadata ~name:"process_name" ~pid:1 ~tid:0 "compiler";
        metadata ~name:"thread_name" ~pid:1 ~tid:0 "pipeline" ]
    else []
  in
  let evs = ref [] in
  Trace.iter t (fun e ->
      match chrome_event e with Some j -> evs := j :: !evs | None -> ());
  Json.Obj
    [ ("traceEvents", Json.List (meta @ List.rev !evs));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData",
       Json.Obj
         [ ("total_events", Json.Int (Trace.total t));
           ("dropped_events", Json.Int (Trace.dropped t)) ]) ]

(* --- Communication matrix ----------------------------------------------- *)

type matrix = {
  m_nprocs : int;
  m_msgs : int array array;   (* [src].(dest) point-to-point messages *)
  m_bytes : int array array;  (* [src].(dest) bytes incl. remap traffic *)
}

let matrix ~nprocs (t : Trace.t) : matrix =
  let m =
    { m_nprocs = nprocs;
      m_msgs = Array.make_matrix nprocs nprocs 0;
      m_bytes = Array.make_matrix nprocs nprocs 0 }
  in
  Trace.iter t (fun e ->
      match e.Trace.kind with
      | Trace.Send when e.Trace.proc >= 0 && e.Trace.peer >= 0 ->
        m.m_msgs.(e.Trace.proc).(e.Trace.peer) <-
          m.m_msgs.(e.Trace.proc).(e.Trace.peer) + 1;
        m.m_bytes.(e.Trace.proc).(e.Trace.peer) <-
          m.m_bytes.(e.Trace.proc).(e.Trace.peer) + e.Trace.bytes
      | Trace.Remap when e.Trace.proc >= 0 && e.Trace.peer >= 0 ->
        m.m_bytes.(e.Trace.proc).(e.Trace.peer) <-
          m.m_bytes.(e.Trace.proc).(e.Trace.peer) + e.Trace.bytes
      | _ -> ());
  m

let pp_matrix ppf (m : matrix) =
  Fmt.pf ppf "messages (row = src, col = dest):@.";
  Fmt.pf ppf "%6s" "";
  for d = 0 to m.m_nprocs - 1 do Fmt.pf ppf " %8s" (Fmt.str "p%d" d) done;
  Fmt.pf ppf "@.";
  for s = 0 to m.m_nprocs - 1 do
    Fmt.pf ppf "%6s" (Fmt.str "p%d" s);
    for d = 0 to m.m_nprocs - 1 do Fmt.pf ppf " %8d" m.m_msgs.(s).(d) done;
    Fmt.pf ppf "@."
  done;
  Fmt.pf ppf "bytes (incl. remap traffic):@.";
  Fmt.pf ppf "%6s" "";
  for d = 0 to m.m_nprocs - 1 do Fmt.pf ppf " %8s" (Fmt.str "p%d" d) done;
  Fmt.pf ppf "@.";
  for s = 0 to m.m_nprocs - 1 do
    Fmt.pf ppf "%6s" (Fmt.str "p%d" s);
    for d = 0 to m.m_nprocs - 1 do Fmt.pf ppf " %8d" m.m_bytes.(s).(d) done;
    Fmt.pf ppf "@."
  done

let matrix_to_json (m : matrix) : Json.t =
  let arr2 a =
    Json.List
      (Array.to_list
         (Array.map
            (fun row ->
              Json.List (Array.to_list (Array.map (fun v -> Json.Int v) row)))
            a))
  in
  Json.Obj
    [ ("nprocs", Json.Int m.m_nprocs); ("messages", arr2 m.m_msgs);
      ("bytes", arr2 m.m_bytes) ]

(* --- Per-processor summary ---------------------------------------------- *)

type proc_summary = {
  s_proc : int;
  s_sends : int;
  s_recvs : int;
  s_bytes_out : int;
  s_bytes_in : int;
  s_blocked : float;   (* receive waits + collective waits, seconds *)
  s_busy : float;      (* compute time, if supplied *)
  s_util : float;      (* busy / elapsed; 0 when unknown *)
}

let summary ~nprocs ?busy ?(elapsed = 0.0) (t : Trace.t) : proc_summary list =
  let sends = Array.make nprocs 0 and recvs = Array.make nprocs 0 in
  let bout = Array.make nprocs 0 and bin = Array.make nprocs 0 in
  let blocked = Array.make nprocs 0.0 in
  Trace.iter t (fun e ->
      let p = e.Trace.proc in
      if p >= 0 && p < nprocs then
        match e.Trace.kind with
        | Trace.Send ->
          sends.(p) <- sends.(p) + 1;
          bout.(p) <- bout.(p) + e.Trace.bytes;
          if e.Trace.peer >= 0 && e.Trace.peer < nprocs then
            bin.(e.Trace.peer) <- bin.(e.Trace.peer) + e.Trace.bytes
        | Trace.Recv ->
          recvs.(p) <- recvs.(p) + 1;
          blocked.(p) <- blocked.(p) +. e.Trace.dur
        | Trace.Coll_enter -> blocked.(p) <- blocked.(p) +. e.Trace.dur
        | Trace.Remap ->
          bout.(p) <- bout.(p) + e.Trace.bytes;
          if e.Trace.peer >= 0 && e.Trace.peer < nprocs then
            bin.(e.Trace.peer) <- bin.(e.Trace.peer) + e.Trace.bytes
        | _ -> ());
  List.init nprocs (fun p ->
      let b = match busy with Some a when p < Array.length a -> a.(p) | _ -> 0.0 in
      { s_proc = p; s_sends = sends.(p); s_recvs = recvs.(p);
        s_bytes_out = bout.(p); s_bytes_in = bin.(p); s_blocked = blocked.(p);
        s_busy = b; s_util = (if elapsed > 0.0 then b /. elapsed else 0.0) })

let pp_summary ppf (rows : proc_summary list) =
  Fmt.pf ppf "%5s | %6s | %6s | %10s | %10s | %12s | %12s | %5s@." "proc" "sends"
    "recvs" "bytes out" "bytes in" "blocked (us)" "busy (us)" "util";
  Fmt.pf ppf
    "------+--------+--------+------------+------------+--------------+--------------+------@.";
  List.iter
    (fun s ->
      Fmt.pf ppf "%5s | %6d | %6d | %10d | %10d | %12.1f | %12.1f | %4.0f%%@."
        (Fmt.str "p%d" s.s_proc) s.s_sends s.s_recvs s.s_bytes_out s.s_bytes_in
        (s.s_blocked *. 1e6) (s.s_busy *. 1e6) (s.s_util *. 100.0))
    rows

let summary_to_json (rows : proc_summary list) : Json.t =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [ ("proc", Json.Int s.s_proc); ("sends", Json.Int s.s_sends);
             ("recvs", Json.Int s.s_recvs); ("bytes_out", Json.Int s.s_bytes_out);
             ("bytes_in", Json.Int s.s_bytes_in); ("blocked", Json.Float s.s_blocked);
             ("busy", Json.Float s.s_busy); ("utilization", Json.Float s.s_util) ])
       rows)

(* --- Normalized skeleton (golden-trace format) --------------------------- *)

(* Communication-shaped events only, timestamps and payload sizes
   stripped: the stable fingerprint of where messages happen.  Scheduler
   bookkeeping (block/wake), fault recovery and guard skips are excluded
   so goldens stay readable and survive cost-model changes. *)
let skeleton (t : Trace.t) : string list =
  let out = ref [] in
  Trace.iter t (fun e ->
      let line =
        match e.Trace.kind with
        | Trace.Send ->
          Some (Fmt.str "send p%d->p%d tag %d" e.Trace.proc e.Trace.peer e.Trace.tag)
        | Trace.Recv ->
          Some (Fmt.str "recv p%d<-p%d tag %d" e.Trace.proc e.Trace.peer e.Trace.tag)
        | Trace.Coll_enter ->
          Some (Fmt.str "coll p%d site %d %s" e.Trace.proc e.Trace.tag e.Trace.label)
        | Trace.Remap ->
          Some (Fmt.str "remap %s p%d->p%d" e.Trace.label e.Trace.proc e.Trace.peer)
        | _ -> None
      in
      match line with Some l -> out := l :: !out | None -> ());
  List.rev !out

(* --- Metrics from a trace ------------------------------------------------ *)

(* Bucket bounds in microseconds-scale seconds for waits; powers of two
   of the word size for message bytes. *)
let wait_bounds =
  [| 1e-6; 1e-5; 1e-4; 5e-4; 1e-3; 5e-3; 1e-2; 5e-2; 1e-1 |]

let bytes_bounds = [| 8.; 64.; 256.; 1024.; 4096.; 16384.; 65536. |]

let observe (m : Metrics.t) (t : Trace.t) : unit =
  let waits = Metrics.histogram m "recv_wait_seconds" ~bounds:wait_bounds in
  (* "message_size_bytes", not "message_bytes": the latter is already a
     counter when the registry comes from Stats.to_metrics *)
  let sizes = Metrics.histogram m "message_size_bytes" ~bounds:bytes_bounds in
  let coll = Metrics.histogram m "collective_wait_seconds" ~bounds:wait_bounds in
  let dropped = Metrics.counter m "trace_dropped_events" in
  Metrics.set_counter dropped (Trace.dropped t);
  Trace.iter t (fun e ->
      match e.Trace.kind with
      | Trace.Recv -> Metrics.observe waits e.Trace.dur
      | Trace.Send -> Metrics.observe sizes (float_of_int e.Trace.bytes)
      | Trace.Coll_enter -> Metrics.observe coll e.Trace.dur
      | _ -> ())
