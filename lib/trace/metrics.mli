(** Named counters, gauges and fixed-bucket histograms with a single
    JSON serialization ({!Fd_support.Json}).  One registry describes one
    run; {!Fd_machine.Stats.to_metrics} converts simulator statistics
    into this form so every tool serializes metrics the same way. *)

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : float array;
  h_counts : int array;
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_min : float;
  mutable h_max : float;
}

type item = Counter of counter | Gauge of gauge | Histogram of histogram

type t

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-register.  @raise Invalid_argument if the name is already
    registered as a different item kind. *)

val gauge : t -> string -> gauge

val histogram : t -> string -> bounds:float array -> histogram
(** [bounds] are upper bucket bounds (sorted internally); one overflow
    bucket is appended. *)

val incr : ?by:int -> counter -> unit
val set_counter : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit
val mean : histogram -> float

val items : t -> (string * item) list
(** In registration order. *)

val find : t -> string -> item option

val to_json : t -> Fd_support.Json.t
(** Counters as ints, gauges as floats, histograms as
    [{"type","count","sum","mean","min","max","buckets"}]. *)

val pp : Format.formatter -> t -> unit
