(* Resource budgets with graceful degradation.

   A budget caps abstract work (steps), communication events, and wall
   time for one run of the simulator or verifier.  Consumers call the
   [tick_*] functions from their hot loops; when a limit trips, the
   budget latches an exhaustion reason and the consumer degrades to a
   *partial* result (stats so far, an Info "unverified" finding) rather
   than aborting.

   Wall time is only sampled every [wall_stride] steps/events so a
   budgeted hot loop stays a couple of integer ops in the common
   case. *)

type t = {
  steps : int option;  (* abstract work units (sim ticks / absint ops) *)
  events : int option;  (* communication events (messages / emissions) *)
  wall : float option;  (* seconds of real time *)
}

let unlimited = { steps = None; events = None; wall = None }

let make ?steps ?events ?wall () = { steps; events; wall }

let is_unlimited b = b.steps = None && b.events = None && b.wall = None

type state = {
  limits : t;
  mutable steps_used : int;
  mutable events_used : int;
  mutable deadline : float option;  (* absolute, from Unix.gettimeofday *)
  mutable spent : string option;  (* latched exhaustion reason *)
  mutable wall_countdown : int;
}

let wall_stride = 1024

let start limits =
  {
    limits;
    steps_used = 0;
    events_used = 0;
    deadline =
      (match limits.wall with
      | Some s -> Some (Unix.gettimeofday () +. s)
      | None -> None);
    spent = None;
    wall_countdown = wall_stride;
  }

let exhausted st = st.spent

let trip st reason = if st.spent = None then st.spent <- Some reason

let check_wall st =
  match st.deadline with
  | Some d when Unix.gettimeofday () > d ->
    trip st
      (Fmt.str "wall budget exhausted (%.3gs)"
         (Option.value ~default:0. st.limits.wall))
  | _ -> ()

let maybe_check_wall st =
  if st.deadline <> None then begin
    st.wall_countdown <- st.wall_countdown - 1;
    if st.wall_countdown <= 0 then begin
      st.wall_countdown <- wall_stride;
      check_wall st
    end
  end

(* [tick_step st n]: charge [n] abstract work units; returns [true]
   while the budget still has headroom. *)
let tick_step st n =
  st.steps_used <- st.steps_used + n;
  (match st.limits.steps with
  | Some cap when st.steps_used > cap ->
    trip st (Fmt.str "step budget exhausted (%d)" cap)
  | _ -> ());
  maybe_check_wall st;
  st.spent = None

let tick_event st n =
  st.events_used <- st.events_used + n;
  (match st.limits.events with
  | Some cap when st.events_used > cap ->
    trip st (Fmt.str "event budget exhausted (%d)" cap)
  | _ -> ());
  maybe_check_wall st;
  st.spent = None

let ok st =
  if st.spent = None then maybe_check_wall st;
  st.spent = None
