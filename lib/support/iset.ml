(* Finite integer sets, canonically represented as a sorted list of
   disjoint maximal triplets.  Sets in this compiler are index and
   iteration sets bounded by array extents — plus, since the compressed
   verifier domain, processor-id sets bounded by P.  Contiguous ("flat",
   all step-1) sets are the overwhelmingly common case and all core
   operations take an interval-sweep fast path on them that never
   materializes elements, so a mask like {0..65535} costs O(#intervals),
   not O(P).  Strided triplets fall back to exact element-level
   canonicalization, which stays affordable because strided sets only
   arise from array extents (cyclic layouts), never from masks. *)

module IS = Set.Make (Int)

type t = Triplet.t list

let empty = []

let is_empty = List.for_all Triplet.is_empty

let to_intset t =
  List.fold_left
    (fun acc tr -> List.fold_left (fun a x -> IS.add x a) acc (Triplet.to_list tr))
    IS.empty t

let of_intset s = Triplet.of_sorted_list (IS.elements s)

let canonicalize t = of_intset (to_intset t)

let of_triplet tr = if Triplet.is_empty tr then [] else [ tr ]

let of_triplets ts =
  match List.filter (fun tr -> not (Triplet.is_empty tr)) ts with
  | [] -> []
  | [ tr ] -> [ tr ]
  | ts -> canonicalize ts

let of_list xs = of_intset (IS.of_list xs)

let singleton x = [ Triplet.singleton x ]

let range lo hi = of_triplet (Triplet.make ~lo ~hi ~step:1)

let mem x t = List.exists (Triplet.mem x) t

let count t = List.fold_left (fun acc tr -> acc + Triplet.count tr) 0 t

let to_list t = List.concat_map Triplet.to_list t

(* --- interval (step-1) machinery -------------------------------------- *)

(* A triplet is interval-like when its members are contiguous. *)
let tr_flat tr =
  Triplet.is_empty tr || Triplet.step tr = 1 || Triplet.count tr = 1

let flat t = List.for_all tr_flat t

(* Sorted disjoint maximal (lo, hi) intervals of the set.  Strided
   triplets are expanded (they are small by construction). *)
let intervals t : (int * int) list =
  let raw =
    List.concat_map
      (fun tr ->
        if Triplet.is_empty tr then []
        else if tr_flat tr then [ (Triplet.lo tr, Triplet.hi tr) ]
        else List.map (fun x -> (x, x)) (Triplet.to_list tr))
      t
  in
  let sorted = List.sort compare raw in
  let rec coalesce = function
    | (a, b) :: (c, d) :: rest when c <= b + 1 ->
      coalesce ((a, max b d) :: rest)
    | iv :: rest -> iv :: coalesce rest
    | [] -> []
  in
  coalesce sorted

(* Rebuild a canonical set from (possibly unsorted, overlapping)
   intervals.  Small results are re-canonicalized through the exact
   element path so strided merges ({2,4,6} -> 2:6:2) print identically
   to the historical representation; large results stay flat. *)
let of_intervals ivs : t =
  let ivs = List.filter (fun (a, b) -> a <= b) ivs in
  let sorted = List.sort compare ivs in
  let rec coalesce = function
    | (a, b) :: (c, d) :: rest when c <= b + 1 ->
      coalesce ((a, max b d) :: rest)
    | iv :: rest -> iv :: coalesce rest
    | [] -> []
  in
  let merged = coalesce sorted in
  let t = List.map (fun (a, b) -> Triplet.make ~lo:a ~hi:b ~step:1) merged in
  let n = List.fold_left (fun acc (a, b) -> acc + (b - a + 1)) 0 merged in
  if n > 0 && n <= 256 then canonicalize t else t

let ivs_inter a b =
  let rec go a b =
    match (a, b) with
    | [], _ | _, [] -> []
    | (a1, a2) :: ra, (b1, b2) :: rb ->
      let lo = max a1 b1 and hi = min a2 b2 in
      let rest = if a2 < b2 then go ra b else go a rb in
      if lo <= hi then (lo, hi) :: rest else rest
  in
  go a b

let ivs_diff a b =
  let rec go a b =
    match (a, b) with
    | [], _ -> []
    | a, [] -> a
    | (a1, a2) :: ra, (b1, b2) :: rb ->
      if b2 < a1 then go a rb
      else if a2 < b1 then (a1, a2) :: go ra b
      else
        let left = if a1 < b1 then [ (a1, b1 - 1) ] else [] in
        if a2 > b2 then left @ go ((b2 + 1, a2) :: ra) rb else left @ go ra b
  in
  go a b

let ivs_subset a b =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _ :: _, [] -> false
    | (a1, a2) :: ra, (b1, b2) :: rb ->
      if b2 < a1 then go a rb
      else if b1 <= a1 && a2 <= b2 then go ra b
      else false
  in
  go a b

(* --- set algebra ------------------------------------------------------- *)

let union a b =
  match (a, b) with
  | [], t | t, [] -> t
  | _ ->
    if flat a && flat b then of_intervals (intervals a @ intervals b)
    else of_intset (IS.union (to_intset a) (to_intset b))

let inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | [ x ], [ y ] -> of_triplet (Triplet.inter x y)
  | _ ->
    if flat a && flat b then of_intervals (ivs_inter (intervals a) (intervals b))
    else
      (* Distribute: (U ai) n (U bj) = U (ai n bj), each exact.  Never
         materializes the operands, only the (smaller) result. *)
      of_triplets
        (List.concat_map (fun x -> List.map (Triplet.inter x) b) a)

let diff a b =
  match (a, b) with
  | [], _ -> []
  | t, [] -> t
  | _ ->
    if flat a && flat b then of_intervals (ivs_diff (intervals a) (intervals b))
    else (
      match (a, b) with
      | [ x ], [ y ] when Triplet.step y = 1 -> of_triplets (Triplet.diff x y)
      | _ -> of_intset (IS.diff (to_intset a) (to_intset b)))

let equal a b =
  if flat a && flat b then intervals a = intervals b
  else IS.equal (to_intset a) (to_intset b)

let subset a b =
  if is_empty a then true
  else if is_empty b then false
  else if flat a && flat b then ivs_subset (intervals a) (intervals b)
  else IS.subset (to_intset a) (to_intset b)

let disjoint a b = is_empty (inter a b)

(* [complement ~lo ~hi t]: the members of [lo, hi] not in [t]. *)
let complement ~lo ~hi t =
  if lo > hi then []
  else of_intervals (ivs_diff [ (lo, hi) ] (intervals t))

let shift d t = List.map (Triplet.shift d) t

let triplets t = t

let fold_intervals f acc t =
  List.fold_left (fun acc (lo, hi) -> f acc lo hi) acc (intervals t)

let min_elt t =
  List.fold_left
    (fun acc tr -> if Triplet.is_empty tr then acc
      else match acc with None -> Some (Triplet.lo tr) | Some m -> Some (min m (Triplet.lo tr)))
    None t

let max_elt t =
  List.fold_left
    (fun acc tr -> if Triplet.is_empty tr then acc
      else match acc with None -> Some (Triplet.hi tr) | Some m -> Some (max m (Triplet.hi tr)))
    None t

let hull t =
  match (min_elt t, max_elt t) with
  | Some lo, Some hi -> Triplet.make ~lo ~hi ~step:1
  | _ -> Triplet.empty

let pp ppf t =
  if is_empty t then Fmt.string ppf "{}"
  else Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") Triplet.pp) t

let to_string t = Fmt.str "%a" pp t
