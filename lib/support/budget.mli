(** Resource budgets with graceful degradation.

    A {!t} declares optional caps on abstract work ([steps]),
    communication [events], and [wall] seconds; {!start} turns it into
    mutable per-run {!state}. Hot loops charge work via {!tick_step} /
    {!tick_event}; once any cap trips, the state latches a
    human-readable exhaustion reason ({!exhausted}) and the consumer is
    expected to stop and return a {e partial} result, not abort.

    Wall time is sampled only every ~1024 ticks, so budget checks cost
    a couple of integer operations in the common case. *)

type t = { steps : int option; events : int option; wall : float option }

val unlimited : t
val make : ?steps:int -> ?events:int -> ?wall:float -> unit -> t
val is_unlimited : t -> bool

type state

val start : t -> state
(** Begin a run: snapshots the wall-clock deadline. *)

val tick_step : state -> int -> bool
(** Charge [n] work units; [false] once the budget is exhausted. *)

val tick_event : state -> int -> bool
(** Charge [n] communication events; [false] once exhausted. *)

val ok : state -> bool
(** Poll (also samples wall time): [true] while headroom remains. *)

val exhausted : state -> string option
(** The latched exhaustion reason, e.g. ["step budget exhausted (500000)"]. *)
