(** Finite integer sets as canonical sorted lists of disjoint triplets.

    All operations are exact.  Sets are index/iteration sets bounded by
    array extents and — since the compressed verifier domain — processor
    masks bounded by P.  Contiguous (all step-1) operands take an
    interval-sweep fast path that never materializes elements, so
    {0..65535} costs O(#intervals); strided operands fall back to exact
    element-level canonicalization, affordable because strided sets only
    arise from array extents. *)

type t = Triplet.t list

val empty : t
val is_empty : t -> bool
val of_triplet : Triplet.t -> t
val of_triplets : Triplet.t list -> t
val of_list : int list -> t
val singleton : int -> t
val range : int -> int -> t
val mem : int -> t -> bool
val count : t -> int
val to_list : t -> int list
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val subset : t -> t -> bool
val disjoint : t -> t -> bool
val shift : int -> t -> t

val complement : lo:int -> hi:int -> t -> t
(** [complement ~lo ~hi t] is the members of [lo, hi] not in [t]. *)

val triplets : t -> Triplet.t list
(** The canonical triplet decomposition. *)

val intervals : t -> (int * int) list
(** Sorted disjoint maximal [(lo, hi)] intervals covering the set
    (strided triplets are expanded). *)

val of_intervals : (int * int) list -> t
(** Build a set from (possibly unsorted, overlapping) inclusive
    intervals; pairs with [lo > hi] are ignored. *)

val fold_intervals : ('a -> int -> int -> 'a) -> 'a -> t -> 'a
(** Fold over {!intervals} without building the intermediate list. *)

val min_elt : t -> int option
val max_elt : t -> int option

val hull : t -> Triplet.t
(** Smallest contiguous triplet containing the set ({!Triplet.empty} for
    the empty set). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
