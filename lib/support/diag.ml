(* Compiler diagnostics.

   Three severities and three delivery disciplines:

   - [Error]: the input program is wrong.  The frontend *recovers* and
     accumulates errors in a per-run {!sink} (parser statement/unit
     synchronization, sema fallback typing), so one run reports every
     diagnosable error; backend passes still fail fast via {!error}
     ({!Compile_error}).  A sink with errors is converted into one
     {!Compile_errors} carrying the whole ordered batch.
   - [Warning]: recorded in a sink and never fatal (outside --strict).
   - [Internal]: a contained compiler crash — a would-be [failwith] or
     [assert false], attributed to the pass that hit it.  Raised as
     {!Internal_error} and rendered by the driver as a structured crash
     report, never a bare backtrace.

   The per-run sink is explicit state threaded through Pipeline/Driver
   (preparation for a concurrent `fdc serve`: no cross-request
   bleeding).  The historical process-global warning sink survives as a
   deprecated shim over {!global}. *)

type severity = Warning | Error | Internal

type t = {
  severity : severity;
  loc : Loc.t;
  end_ : Loc.t option;  (* end of the offending span (exclusive column) *)
  pass : string option;  (* attributed pass/subsystem, for Internal *)
  message : string;
}

exception Compile_error of t
exception Compile_errors of t list
exception Internal_error of t

let make ?end_ ?pass severity loc message =
  { severity; loc; end_; pass; message }

let error ?(loc = Loc.none) fmt =
  Format.kasprintf
    (fun message -> raise (Compile_error (make Error loc message)))
    fmt

let internal ?(loc = Loc.none) ~pass fmt =
  Format.kasprintf
    (fun message -> raise (Internal_error (make ~pass Internal loc message)))
    fmt

let pp_severity ppf = function
  | Warning -> Fmt.string ppf "warning"
  | Error -> Fmt.string ppf "error"
  | Internal -> Fmt.string ppf "internal error"

let pp ppf { severity; loc; message; pass; _ } =
  Fmt.pf ppf "%a: %a" Loc.pp loc pp_severity severity;
  (match pass with Some p -> Fmt.pf ppf " [pass %s]" p | None -> ());
  Fmt.pf ppf ": %s" message

let to_string t = Fmt.str "%a" pp t

(* Caret/underline snippet: the cited source line with the diagnosed
   span marked.  [src] is the full text of [t.loc.file]. *)
let pp_snippet ~src ppf t =
  let line_no = t.loc.Loc.line in
  if line_no >= 1 then begin
    let lines = String.split_on_char '\n' src in
    match List.nth_opt lines (line_no - 1) with
    | None -> ()
    | Some text ->
      let width = String.length text in
      let start_col = max 1 (min t.loc.Loc.col (width + 1)) in
      let end_col =
        match t.end_ with
        | Some e when e.Loc.line = line_no && e.Loc.col > start_col ->
          min e.Loc.col (width + 2)
        | _ -> start_col + 1
      in
      Fmt.pf ppf "  %4d | %s@." line_no text;
      Fmt.pf ppf "       | %s%s@."
        (String.make (start_col - 1) ' ')
        (String.make (max 1 (end_col - start_col)) '^')
  end

let severity_rank = function Error -> 0 | Internal -> 0 | Warning -> 1

(* Presentation order: by source position, errors before warnings at
   the same statement, unlocated diagnostics last. *)
let compare_diag a b =
  let located l = l <> Loc.none in
  let c = compare (not (located a.loc)) (not (located b.loc)) in
  if c <> 0 then c
  else
    let c = compare a.loc.Loc.file b.loc.Loc.file in
    if c <> 0 then c
    else
      let c = compare (a.loc.Loc.line, a.loc.Loc.col) (b.loc.Loc.line, b.loc.Loc.col) in
      if c <> 0 then c
      else
        let c = compare (severity_rank a.severity) (severity_rank b.severity) in
        if c <> 0 then c else compare a.message b.message

let sort ds = List.sort_uniq compare_diag ds

let to_json t =
  Json.Obj
    (("severity",
      Json.Str
        (match t.severity with
        | Warning -> "warning"
        | Error -> "error"
        | Internal -> "internal"))
     :: ("message", Json.Str t.message)
     ::
     (if t.loc <> Loc.none then
        [ ("file", Json.Str t.loc.Loc.file);
          ("line", Json.Int t.loc.Loc.line);
          ("col", Json.Int t.loc.Loc.col) ]
      else [])
    @ (match t.end_ with
      | Some e -> [ ("end_line", Json.Int e.Loc.line); ("end_col", Json.Int e.Loc.col) ]
      | None -> [])
    @ (match t.pass with Some p -> [ ("pass", Json.Str p) ] | None -> []))

let report_json ds =
  let errors =
    List.length (List.filter (fun d -> d.severity <> Warning) ds)
  in
  Json.Obj
    [ ("ok", Json.Bool (errors = 0));
      ("errors", Json.Int errors);
      ("warnings", Json.Int (List.length ds - errors));
      ("diagnostics", Json.List (List.map to_json ds)) ]

(* --- Per-run accumulating sink ---------------------------------------- *)

type sink = { mutable items : t list (* reversed *); mutable nerrors : int }

let sink () = { items = []; nerrors = 0 }

let report s d =
  s.items <- d :: s.items;
  if d.severity <> Warning then s.nerrors <- s.nerrors + 1

let error_to s ?(loc = Loc.none) ?end_ fmt =
  Format.kasprintf (fun message -> report s (make ?end_ Error loc message)) fmt

let warn_to s ?(loc = Loc.none) fmt =
  Format.kasprintf (fun message -> report s (make Warning loc message)) fmt

let diags s = List.rev s.items

let error_count s = s.nerrors

let warnings_of s =
  List.filter (fun d -> d.severity = Warning) (diags s)

let take_warnings_of s =
  let ws = warnings_of s in
  s.items <- List.filter (fun d -> d.severity <> Warning) s.items;
  ws

let clear s =
  s.items <- [];
  s.nerrors <- 0

(* Raise the accumulated batch (errors and warnings, in source order)
   as one [Compile_errors] if any error was recorded. *)
let raise_if_errors s =
  if s.nerrors > 0 then begin
    let ds = sort (diags s) in
    clear s;
    raise (Compile_errors ds)
  end

(* --- Deprecated process-global shim ----------------------------------- *)

(* The pre-sink API wrote warnings to one global list; it survives for
   callers not yet threaded with an explicit sink.  New code should
   accept a [sink] and use {!warn_to}. *)
let global = sink ()

let warn ?(loc = Loc.none) fmt = warn_to global ~loc fmt

let take_warnings () = take_warnings_of global
