(** Minimal JSON document model and printer (no parsing).  Used for the
    machine-readable outputs of [fdc run --json], [fdc passes --json] and
    {!Fd_machine.Stats.to_json}: one canonical serialization path, no
    external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace beyond single spaces).
    Non-finite floats render as [null] — JSON has no representation for
    them. *)

val equal : t -> t -> bool
(** Structural equality (object fields compared in order).  Used by the
    fault oracle and tests to assert that two runs produced identical
    statistics. *)

val pp : Format.formatter -> t -> unit
