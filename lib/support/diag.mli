(** Compiler diagnostics: recoverable errors, warnings, and contained
    internal crashes, accumulated in explicit per-run sinks.

    Delivery disciplines:
    - the frontend (lexer/parser/sema) {e recovers}: it records every
      diagnosable error into a {!sink} and raises one {!Compile_errors}
      batch at the end, so a single run reports all errors;
    - backend passes fail fast via {!error} ({!Compile_error});
    - would-be [failwith]/[assert false] sites raise {!Internal_error}
      via {!internal}, attributed to the pass that hit them, and the
      driver renders a structured crash report — never a bare
      backtrace. *)

type severity = Warning | Error | Internal

type t = {
  severity : severity;
  loc : Loc.t;  (** start of the offending span; {!Loc.none} if unlocated *)
  end_ : Loc.t option;  (** end of the span (exclusive column), when known *)
  pass : string option;  (** attributed pass/subsystem (internal errors) *)
  message : string;
}

exception Compile_error of t
(** A single fatal diagnostic (backend fail-fast path). *)

exception Compile_errors of t list
(** The accumulated diagnostics of one frontend run, in source order;
    contains at least one [Error]. *)

exception Internal_error of t
(** A contained compiler crash ([severity = Internal]). *)

val make : ?end_:Loc.t -> ?pass:string -> severity -> Loc.t -> string -> t

val error : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Compile_error} with a formatted message. *)

val internal : ?loc:Loc.t -> pass:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Internal_error} attributed to [pass] — the total-pipeline
    replacement for [failwith]/[assert false] in library code. *)

val sort : t list -> t list
(** Sort (and dedup) into presentation order: by file/line/col, errors
    before warnings at the same position, unlocated diagnostics last. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val pp_snippet : src:string -> Format.formatter -> t -> unit
(** Render the cited source line with a caret/underline marking the
    diagnosed span. [src] is the full text of [t.loc.file]; prints
    nothing if the location is out of range. *)

val to_json : t -> Json.t

val report_json : t list -> Json.t
(** [{ok; errors; warnings; diagnostics}] summary of a diagnostic batch. *)

(** {2 Per-run accumulating sinks} *)

type sink
(** Mutable per-run diagnostic accumulator. Explicit state — create one
    per compile request and thread it through the pipeline; nothing is
    shared between runs. *)

val sink : unit -> sink

val report : sink -> t -> unit

val error_to :
  sink -> ?loc:Loc.t -> ?end_:Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Record an [Error] and return (recovery path — does not raise). *)

val warn_to : sink -> ?loc:Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val diags : sink -> t list
(** All recorded diagnostics, oldest first. *)

val error_count : sink -> int
(** Number of recorded [Error]/[Internal] diagnostics. *)

val warnings_of : sink -> t list

val take_warnings_of : sink -> t list
(** Drain only the warnings, leaving errors in place. *)

val clear : sink -> unit

val raise_if_errors : sink -> unit
(** If the sink holds any error, raise the whole sorted batch (errors
    and warnings) as {!Compile_errors}, clearing the sink. *)

(** {2 Deprecated process-global shim}

    The pre-sink API kept one global warning list. It remains for
    callers not yet threaded with an explicit sink; new code should
    take a [sink] and use {!warn_to}. *)

val global : sink
(** The process-global fallback sink behind {!warn}/{!take_warnings}. *)

val warn : ?loc:Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** @deprecated Record a warning in the global sink; use {!warn_to}. *)

val take_warnings : unit -> t list
(** @deprecated Drain the global sink's warnings, oldest first. *)
