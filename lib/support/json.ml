(* Minimal JSON document model and printer. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str f =
  if Float.is_finite f then
    (* shortest round-trippable decimal that is still valid JSON: %.17g
       can emit "1e+16" style exponents, which JSON accepts *)
    let s = Fmt.str "%.12g" f in
    (* "1." is not valid JSON; neither is a bare "nan" (handled above) *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then s
    else s ^ ".0"
  else "null"

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_str f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        write b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  write b t;
  Buffer.contents b

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y  (* NaN-safe, unlike (=) intent *)
  | Str x, Str y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && equal v v') xs ys
  | _ -> false

let pp ppf t = Fmt.string ppf (to_string t)
