(* The verifier's value domain: one abstract value summarizing what a
   scalar holds on ALL processors of the ensemble at once.

   Node programs are compiled for a concrete P (Node.n_nprocs bakes it
   in, and tab$ tables are P-specific), so instead of a symbolic my$p
   the domain tracks a vector of per-processor values:

   - [Uni v]: every processor holds [v] (possibly the unknown [Punk] —
     "same on all processors, value unknown").  This distinction is what
     lets the analysis prove collective congruence through
     data-dependent but processor-uniform branches.
   - [Div vs]: processors disagree; [vs.(p)] is processor p's value.

   Array element reads abstract to [Uni Punk]: distributed data is
   assumed processor-consistent (the "uniform data" assumption, see
   DESIGN.md 6c), which is what makes branches like dgefa's pivot test
   uniform rather than spuriously divergent. *)

type pv = Pint of int | Preal of float | Pbool of bool | Punk

type t = Uni of pv | Div of pv array

let unknown = Uni Punk

(* Provable equality: two unknowns are NOT equal — [Div] of [Punk]s must
   stay divergent ("each processor holds its own unknown"), which is
   exactly the distinction the congruence analysis lives on.  [Uni Punk]
   can only be produced by operations whose inputs were all uniform. *)
let pv_equal a b =
  match (a, b) with
  | Pint x, Pint y -> x = y
  | Preal x, Preal y -> x = y
  | Pbool x, Pbool y -> x = y
  | _ -> false

(* Collapse an all-equal vector back to Uni so uniformity survives
   pointwise operations on divergent inputs (e.g. my$p - my$p). *)
let normalize (vs : pv array) : t =
  let v0 = vs.(0) in
  if Array.for_all (fun v -> pv_equal v v0) vs then Uni v0 else Div vs

let spread n = function Uni v -> Array.make n v | Div vs -> vs

let at v p = match v with Uni x -> x | Div vs -> vs.(p)

let map1 n f = function
  | Uni v -> Uni (f v)
  | Div vs -> normalize (Array.init n (fun p -> f vs.(p)))

let map2 n f a b =
  match (a, b) with
  | Uni x, Uni y -> Uni (f x y)
  | _ ->
    let xs = spread n a and ys = spread n b in
    normalize (Array.init n (fun p -> f xs.(p) ys.(p)))

(* Per-processor known integer, None where unknown. *)
let int_at v p =
  match at v p with Pint i -> Some i | _ -> None

let uniform_int = function Uni (Pint i) -> Some i | _ -> None

let is_uniform = function Uni _ -> true | Div _ -> false

(* --- pointwise arithmetic, mirroring Value.ml ------------------------- *)

let to_f = function
  | Pint i -> Some (float_of_int i)
  | Preal f -> Some f
  | _ -> None

let num2 fi fr a b =
  match (a, b) with
  | Pint x, Pint y -> fi x y
  | _ -> (
    match (to_f a, to_f b) with
    | Some x, Some y -> fr x y
    | _ -> Punk)

let add = num2 (fun x y -> Pint (x + y)) (fun x y -> Preal (x +. y))
let sub = num2 (fun x y -> Pint (x - y)) (fun x y -> Preal (x -. y))
let mul = num2 (fun x y -> Pint (x * y)) (fun x y -> Preal (x *. y))

let div =
  num2
    (fun x y -> if y = 0 then Punk else Pint (x / y))
    (fun x y -> Preal (x /. y))

let pow =
  num2
    (fun x y -> if y < 0 then Punk else Pint (int_of_float (float_of_int x ** float_of_int y)))
    (fun x y -> Preal (x ** y))

let cmp_to op a b =
  match (a, b) with
  | Pint x, Pint y -> Pbool (op (compare x y) 0)
  | _ -> (
    match (to_f a, to_f b) with
    | Some x, Some y -> Pbool (op (compare x y) 0)
    | _ -> Punk)

let eq a b =
  match (a, b) with
  | Pbool x, Pbool y -> Pbool (x = y)
  | Punk, _ | _, Punk -> Punk
  | _ -> cmp_to ( = ) a b

(* Kleene three-valued logic: unknown only where the outcome genuinely
   depends on the unknown operand. *)
let and_ a b =
  match (a, b) with
  | Pbool false, _ | _, Pbool false -> Pbool false
  | Pbool true, Pbool true -> Pbool true
  | _ -> Punk

let or_ a b =
  match (a, b) with
  | Pbool true, _ | _, Pbool true -> Pbool true
  | Pbool false, Pbool false -> Pbool false
  | _ -> Punk

let not_ = function Pbool b -> Pbool (not b) | _ -> Punk

let neg = function
  | Pint i -> Pint (-i)
  | Preal f -> Preal (-.f)
  | _ -> Punk

let modulo =
  num2
    (fun x y -> if y = 0 then Punk else Pint (x mod y))
    (fun x y -> Preal (Float.rem x y))

let abs_ = function
  | Pint i -> Pint (abs i)
  | Preal f -> Preal (Float.abs f)
  | _ -> Punk

let to_int_pv = function
  | Pint i -> Pint i
  | Preal f -> Pint (int_of_float f)
  | _ -> Punk

let to_real_pv = function
  | Pint i -> Preal (float_of_int i)
  | Preal f -> Preal f
  | _ -> Punk

let max2 a b = match cmp_to ( >= ) a b with Pbool true -> a | Pbool false -> b | _ -> Punk
let min2 a b = match cmp_to ( <= ) a b with Pbool true -> a | Pbool false -> b | _ -> Punk

(* Join of two control-flow branches: keep only what both agree on. *)
let pv_join a b = if pv_equal a b then a else Punk

let join n a b = map2 n pv_join a b

(* [blend n ~act old upd]: processors in [act] take [upd], the rest keep
   [old] — the masked assignment under a partial active set. *)
let blend n ~(act : bool array) old upd =
  match (old, upd) with
  | _ when Array.for_all Fun.id act -> upd
  | Uni x, Uni y when pv_equal x y -> old
  | _ ->
    let os = spread n old and us = spread n upd in
    normalize (Array.init n (fun p -> if act.(p) then us.(p) else os.(p)))

let pp_pv ppf = function
  | Pint i -> Fmt.int ppf i
  | Preal f -> Fmt.float ppf f
  | Pbool b -> Fmt.bool ppf b
  | Punk -> Fmt.string ppf "?"

let pp ppf = function
  | Uni v -> pp_pv ppf v
  | Div vs -> Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any " ") pp_pv) vs
