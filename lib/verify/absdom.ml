(* The verifier's value domain: one abstract value summarizing what a
   scalar holds on ALL processors of the ensemble at once.

   Node programs are compiled for a concrete P (Node.n_nprocs bakes it
   in, and tab$ tables are P-specific), so instead of a symbolic my$p
   the domain tracks the full lane vector — but COMPRESSED.  The dense
   per-P array of the original implementation made every operation O(P)
   and put `fdc check -p 65536` hours away; in real node programs lanes
   diverge in only three shapes, which the representation captures
   directly:

   - [Uni v]: every processor holds [v] (possibly the unknown [Punk] —
     "same on all processors, value unknown").  This distinction is what
     lets the analysis prove collective congruence through
     data-dependent but processor-uniform branches.
   - [Runs segs]: processors disagree; [segs] is a sorted contiguous
     run-length cover of pid space [0, n-1], each run carrying either a
     per-run constant ([Sconst]) or an affine function of the pid
     ([Saff], value a*pid + b) — the shape of my$p itself, of owner
     guards (my$p <= 2), and of neighbor indices (my$p + 1).

   True divergence degrades to one run per pid — the dense
   representation as the worst case rather than the only case.

   Every operation has a single source of truth: the pointwise [pv2] /
   [pv1] semantics carried over unchanged from the dense domain.  The
   segment-level fast paths (exact affine algebra, threshold splits for
   comparisons, truncated-division run enumeration) are each equivalent
   to pointwise application by concretization — property-tested in
   test_absdom.ml.

   Array element reads abstract to [Uni Punk]: distributed data is
   assumed processor-consistent (the "uniform data" assumption, see
   DESIGN.md 6c), which is what makes branches like dgefa's pivot test
   uniform rather than spuriously divergent. *)

open Fd_support

type pv = Pint of int | Preal of float | Pbool of bool | Punk

(* One run of lanes.  Invariant: [Saff] never has [a = 0] and never
   spans a single pid (both collapse to [Sconst]). *)
type seg = Sconst of pv | Saff of { a : int; b : int }

(* Invariants (established by [norm], assumed everywhere):
   - [Runs segs]: segs are sorted, contiguous, and cover [0, n-1];
   - adjacent runs are not mergeable (equal constants, two unknowns, or
     identical affine coefficients);
   - a full-range [Sconst v] with [v <> Punk] is represented as [Uni v]
     — so [Runs] always means "not provably uniform".  A full-range
     [Sconst Punk] run stays [Runs]: it is the divergent-unknown ("each
     processor holds its own unknown"), distinct from [Uni Punk]. *)
type t = Uni of pv | Runs of (int * int * seg) list

let unknown = Uni Punk

(* Provable equality: two unknowns are NOT equal — divergent unknowns
   must stay divergent, which is exactly the distinction the congruence
   analysis lives on.  [Uni Punk] can only be produced by operations
   whose inputs were all uniform. *)
let pv_equal a b =
  match (a, b) with
  | Pint x, Pint y -> x = y
  | Preal x, Preal y -> x = y
  | Pbool x, Pbool y -> x = y
  | _ -> false

(* --- pointwise reference semantics, mirroring Value.ml ----------------- *)

let to_f = function
  | Pint i -> Some (float_of_int i)
  | Preal f -> Some f
  | _ -> None

let num2 fi fr a b =
  match (a, b) with
  | Pint x, Pint y -> fi x y
  | _ -> (
    match (to_f a, to_f b) with
    | Some x, Some y -> fr x y
    | _ -> Punk)

let add = num2 (fun x y -> Pint (x + y)) (fun x y -> Preal (x +. y))
let sub = num2 (fun x y -> Pint (x - y)) (fun x y -> Preal (x -. y))
let mul = num2 (fun x y -> Pint (x * y)) (fun x y -> Preal (x *. y))

let div =
  num2
    (fun x y -> if y = 0 then Punk else Pint (x / y))
    (fun x y -> Preal (x /. y))

let pow =
  num2
    (fun x y -> if y < 0 then Punk else Pint (int_of_float (float_of_int x ** float_of_int y)))
    (fun x y -> Preal (x ** y))

let cmp_to op a b =
  match (a, b) with
  | Pint x, Pint y -> Pbool (op (compare x y) 0)
  | _ -> (
    match (to_f a, to_f b) with
    | Some x, Some y -> Pbool (op (compare x y) 0)
    | _ -> Punk)

let eq a b =
  match (a, b) with
  | Pbool x, Pbool y -> Pbool (x = y)
  | Punk, _ | _, Punk -> Punk
  | _ -> cmp_to ( = ) a b

(* Kleene three-valued logic: unknown only where the outcome genuinely
   depends on the unknown operand. *)
let and_ a b =
  match (a, b) with
  | Pbool false, _ | _, Pbool false -> Pbool false
  | Pbool true, Pbool true -> Pbool true
  | _ -> Punk

let or_ a b =
  match (a, b) with
  | Pbool true, _ | _, Pbool true -> Pbool true
  | Pbool false, Pbool false -> Pbool false
  | _ -> Punk

let not_ = function Pbool b -> Pbool (not b) | _ -> Punk

let neg = function
  | Pint i -> Pint (-i)
  | Preal f -> Preal (-.f)
  | _ -> Punk

let modulo =
  num2
    (fun x y -> if y = 0 then Punk else Pint (x mod y))
    (fun x y -> Preal (Float.rem x y))

let abs_ = function
  | Pint i -> Pint (abs i)
  | Preal f -> Preal (Float.abs f)
  | _ -> Punk

let to_int_pv = function
  | Pint i -> Pint i
  | Preal f -> Pint (int_of_float f)
  | _ -> Punk

let to_real_pv = function
  | Pint i -> Preal (float_of_int i)
  | Preal f -> Preal f
  | _ -> Punk

let max2 a b = match cmp_to ( >= ) a b with Pbool true -> a | Pbool false -> b | _ -> Punk
let min2 a b = match cmp_to ( <= ) a b with Pbool true -> a | Pbool false -> b | _ -> Punk

(* Join of two control-flow branches: keep only what both agree on. *)
let pv_join a b = if pv_equal a b then a else Punk

type binop =
  | Add | Sub | Mul | Div | Pow | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or | Max | Min | Join

type unop = Neg | Not | Abs | ToInt | ToReal

(* The pointwise meaning of each operator — the single source of truth
   the segment fast paths must agree with (by concretization). *)
let pv2 = function
  | Add -> add
  | Sub -> sub
  | Mul -> mul
  | Div -> div
  | Pow -> pow
  | Mod -> modulo
  | Eq -> eq
  | Ne -> fun a b -> not_ (eq a b)
  | Lt -> cmp_to ( < )
  | Le -> cmp_to ( <= )
  | Gt -> cmp_to ( > )
  | Ge -> cmp_to ( >= )
  | And -> and_
  | Or -> or_
  | Max -> max2
  | Min -> min2
  | Join -> pv_join

let pv1 = function
  | Neg -> neg
  | Not -> not_
  | Abs -> abs_
  | ToInt -> to_int_pv
  | ToReal -> to_real_pv

(* --- representation plumbing ------------------------------------------ *)

(* Smart constructor: zero slope is a constant; used everywhere so the
   [Saff] a<>0 invariant holds by construction. *)
let saff a b = if a = 0 then Sconst (Pint b) else Saff { a; b }

let seg_at s p = match s with Sconst v -> v | Saff { a; b } -> Pint ((a * p) + b)

(* Int-affine view: a constant int is slope 0. *)
let lin_of = function
  | Sconst (Pint c) -> Some (0, c)
  | Saff { a; b } -> Some (a, b)
  | Sconst _ -> None

let segs_of ~n = function
  | Uni v -> [ (0, n - 1, Sconst v) ]
  | Runs rs -> rs

let mergeable s1 s2 =
  match (s1, s2) with
  | Sconst x, Sconst y -> pv_equal x y || (x = Punk && y = Punk)
  | Saff x, Saff y -> x.a = y.a && x.b = y.b
  | _ -> false

(* Canonicalize a sorted contiguous cover of [0, n-1]:
   singleton affine runs become constants, mergeable neighbors merge,
   and a uniform known cover collapses to [Uni]. *)
let norm ~n segs =
  let segs =
    List.filter_map
      (fun (l, u, s) ->
        if l > u then None
        else
          match s with
          | Saff { a; b } when l = u -> Some (l, u, Sconst (Pint ((a * l) + b)))
          | s -> Some (l, u, s))
      segs
  in
  let rec merge = function
    | (l1, _, s1) :: (_, u2, s2) :: rest when mergeable s1 s2 ->
      merge ((l1, u2, s1) :: rest)
    | sg :: rest -> sg :: merge rest
    | [] -> []
  in
  match merge segs with
  | [ (0, u, Sconst v) ] when u = n - 1 && v <> Punk -> Uni v
  | segs -> Runs segs

(* Public constructor from a sorted contiguous cover of [0, n-1]. *)
let of_segs ~n segs = norm ~n segs

let of_dense (vs : pv array) : t =
  let n = Array.length vs in
  norm ~n (List.init n (fun p -> (p, p, Sconst vs.(p))))

let at v p = match v with
  | Uni x -> x
  | Runs segs ->
    let rec find = function
      | (l, u, s) :: rest -> if p <= u then (assert (p >= l); seg_at s p) else find rest
      | [] -> Diag.internal ~pass:"verify" "Absdom.at: pid out of range"
    in
    find segs

let to_dense ~n v = Array.init n (at v)

let int_at v p = match at v p with Pint i -> Some i | _ -> None

let uniform_int = function Uni (Pint i) -> Some i | _ -> None

let is_uniform = function Uni _ -> true | Runs _ -> false

let myproc ~n = if n = 1 then Uni (Pint 0) else Runs [ (0, n - 1, saff 1 0) ]

(* "Each processor holds its own unknown" — never collapses to Uni. *)
let divergent_unknown ~n = Runs [ (0, n - 1, Sconst Punk) ]

let has_punk ~n v =
  match segs_of ~n v with
  | segs -> List.exists (fun (_, _, s) -> s = Sconst Punk) segs

(* Pids whose lane is a known value (not Punk). *)
let known_pids ~n v =
  Iset.of_intervals
    (List.filter_map
       (fun (l, u, s) -> if s = Sconst Punk then None else Some (l, u))
       (segs_of ~n v))

(* Pids whose lane is a known integer. *)
let int_pids ~n v =
  Iset.of_intervals
    (List.filter_map
       (fun (l, u, s) ->
         match s with
         | Saff _ | Sconst (Pint _) -> Some (l, u)
         | Sconst _ -> None)
       (segs_of ~n v))

(* --- alignment --------------------------------------------------------- *)

(* Common refinement of two covers: chunks on which both operands are a
   single segment. *)
let align ~n a b =
  let rec go sa sb acc =
    match (sa, sb) with
    | [], [] -> List.rev acc
    | (l1, u1, s1) :: ra, (l2, u2, s2) :: rb ->
      assert (l1 = l2);
      let u = min u1 u2 in
      let acc = (l1, u, s1, s2) :: acc in
      let ra = if u1 > u then (u + 1, u1, s1) :: ra else ra in
      let rb = if u2 > u then (u + 1, u2, s2) :: rb else rb in
      go ra rb acc
    | _ -> Diag.internal ~pass:"verify" "lane covers misaligned in refinement"
  in
  go (segs_of ~n a) (segs_of ~n b) []

(* Common refinement of any number of covers, as (lo, hi, one segment
   per operand in order).  Used by the emitter to chunk message
   endpoints and section bounds together. *)
let align_many ~n (vs : t list) : (int * int * seg list) list =
  let all = List.map (segs_of ~n) vs in
  let rec go covers acc =
    match covers with
    | [] :: _ -> List.rev acc
    | _ ->
      let l =
        match List.hd covers with
        | (l, _, _) :: _ -> l
        | [] -> Diag.internal ~pass:"verify" "empty cover in refinement"
      in
      let u =
        List.fold_left
          (fun u c -> match c with (_, u1, _) :: _ -> min u u1 | [] -> u)
          max_int covers
      in
      let here =
        List.map
          (fun c ->
            match c with
            | (_, _, s) :: _ -> s
            | [] -> Diag.internal ~pass:"verify" "empty cover in refinement")
          covers
      in
      let rest =
        List.map
          (fun c ->
            match c with
            | (_, u1, s) :: r -> if u1 > u then (u + 1, u1, s) :: r else r
            | [] -> Diag.internal ~pass:"verify" "empty cover in refinement")
          covers
      in
      go rest ((l, u, here) :: acc)
  in
  match vs with [] -> [] | _ -> go all []

(* Segments of [v] clipped to [lo, hi]. *)
let restrict ~n v (lo, hi) =
  List.filter_map
    (fun (l, u, s) ->
      let l = max l lo and u = min u hi in
      if l > u then None else Some (l, u, s))
    (segs_of ~n v)

(* tab$-style lookup: lane p of the result is lane p of [vs.(i)] when
   [sel]'s lane p is [Pint i] in range, else Punk.  Mirrors the dense
   per-lane table walk; an all-miss result stays divergent-unknown. *)
let select ~n sel (vs : t array) : t =
  let punk l u = (l, u, Sconst Punk) in
  norm ~n
    (List.concat_map
       (fun (l, u, s) ->
         match s with
         | Sconst (Pint i) ->
           if i >= 0 && i < Array.length vs then restrict ~n vs.(i) (l, u)
           else [ punk l u ]
         | Sconst _ -> [ punk l u ]
         | Saff _ ->
           List.init (u - l + 1) (fun k ->
               let p = l + k in
               match seg_at s p with
               | Pint i when i >= 0 && i < Array.length vs ->
                 (p, p, Sconst (at vs.(i) p))
               | _ -> (p, p, Sconst Punk)))
       (segs_of ~n sel))

(* --- affine machinery -------------------------------------------------- *)

(* Floor division (toward minus infinity); y > 0. *)
let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y)

(* The pids where a*p + b REL 0, as a half-line; requires a <> 0. *)
let rec rel_halfline a b rel =
  if a > 0 then
    match rel with
    | `Lt -> `Le (fdiv (-b - 1) a)
    | `Le -> `Le (fdiv (-b) a)
    | `Gt -> `Ge (fdiv (-b) a + 1)
    | `Ge -> `Ge (fdiv (-b - 1) a + 1)
  else
    let mirror = function `Lt -> `Gt | `Le -> `Ge | `Gt -> `Lt | `Ge -> `Le in
    rel_halfline (-a) (-b) (mirror rel)

(* Split [l, u] into a true part and a false part along a half-line,
   emitting segments holding the given values. *)
let halfline_split l u hl ~t ~f =
  let tl, tu = match hl with `Le c -> (l, min u c) | `Ge c -> (max l c, u) in
  if tu < tl then [ (l, u, f) ]
  else
    List.filter (fun (a, b, _) -> a <= b)
      [ (l, tl - 1, f); (tl, tu, t); (tu + 1, u, f) ]

(* Truncated division of an affine run by a constant: enumerate the
   (contiguous, by monotonicity of x |-> x/c) level runs of the
   quotient, then re-coalesce pid-by-pid quotient staircases back into
   affine runs — (32p + 32)/32 must come back as p + 1, not 65536
   singletons. *)
let div_runs l u (a, b) c =
  let q p = ((a * p) + b) / c in
  let runs = ref [] in
  let p = ref l in
  while !p <= u do
    let q0 = q !p in
    let lo = ref !p and hi = ref u in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if q mid = q0 then lo := mid else hi := mid - 1
    done;
    runs := (!p, !lo, q0) :: !runs;
    p := !lo + 1
  done;
  List.rev !runs

(* Coalesce consecutive singleton constant-int runs in arithmetic
   progression into one affine segment. *)
let coalesce_affine (runs : (int * int * int) list) : (int * int * seg) list =
  let rec go = function
    | (l1, u1, q1) :: ((l2, u2, q2) :: _ as rest)
      when l1 = u1 && l2 = u2 && q2 <> q1 ->
      let d = q2 - q1 in
      let rec extend last lastq = function
        | (l, u, q) :: rest when l = u && q - lastq = d -> extend l q rest
        | rest -> (last, lastq, rest)
      in
      let last, _, rest = extend l1 q1 rest in
      if last > l1 then (l1, last, saff d (q1 - (d * l1))) :: go rest
      else (l1, u1, Sconst (Pint q1)) :: go rest
    | (l, u, q) :: rest -> (l, u, Sconst (Pint q)) :: go rest
    | [] -> []
  in
  go runs

let expand2 op l u s1 s2 =
  List.init (u - l + 1) (fun i ->
      let p = l + i in
      (p, p, Sconst (pv2 op (seg_at s1 p) (seg_at s2 p))))

(* Truth segments for (a*p + b) = 0 over [l, u]; requires a <> 0. *)
let eq_point_split l u a b ~t ~f =
  let star = if (-b) mod a = 0 then Some (-b / a) else None in
  match star with
  | Some p when l <= p && p <= u ->
    List.filter (fun (x, y, _) -> x <= y) [ (l, p - 1, f); (p, p, t); (p + 1, u, f) ]
  | _ -> [ (l, u, f) ]

(* Both operands int-affine on the chunk: exact class-preserving rules.
   Returns None to fall back to pointwise expansion. *)
let lin2 op l u (a1, b1) (a2, b2) =
  let const v = Some [ (l, u, Sconst v) ] in
  match op with
  | Add -> Some [ (l, u, saff (a1 + a2) (b1 + b2)) ]
  | Sub -> Some [ (l, u, saff (a1 - a2) (b1 - b2)) ]
  | Mul ->
    if a1 = 0 then Some [ (l, u, saff (b1 * a2) (b1 * b2)) ]
    else if a2 = 0 then Some [ (l, u, saff (a1 * b2) (b1 * b2)) ]
    else None
  | Div ->
    if a2 <> 0 then None
    else if b2 = 0 then const Punk
    else if a1 = 0 then const (Pint (b1 / b2))
    else Some (coalesce_affine (div_runs l u (a1, b1) b2))
  | Mod ->
    if a2 <> 0 then None
    else if b2 = 0 then const Punk
    else if a1 = 0 then const (Pint (b1 mod b2))
    else
      (* x mod c = x - c*(x/c) exactly (both truncate toward zero), so
         on each quotient level run the remainder is affine in p. *)
      Some
        (List.map
           (fun (rl, ru, q) ->
             if rl = ru then (rl, ru, Sconst (Pint ((a1 * rl) + b1 - (b2 * q))))
             else (rl, ru, saff a1 (b1 - (b2 * q))))
           (div_runs l u (a1, b1) b2))
  | Eq | Ne ->
    let t, f =
      if op = Eq then (Sconst (Pbool true), Sconst (Pbool false))
      else (Sconst (Pbool false), Sconst (Pbool true))
    in
    let da = a1 - a2 and db = b1 - b2 in
    if da = 0 then Some [ (l, u, if db = 0 then t else f) ]
    else Some (eq_point_split l u da db ~t ~f)
  | Lt | Le | Gt | Ge ->
    let rel = match op with Lt -> `Lt | Le -> `Le | Gt -> `Gt | _ -> `Ge in
    let da = a1 - a2 and db = b1 - b2 in
    if da = 0 then
      const (pv2 op (Pint b1) (Pint b2))
    else
      Some
        (halfline_split l u (rel_halfline da db rel)
           ~t:(Sconst (Pbool true)) ~f:(Sconst (Pbool false)))
  | Max | Min ->
    let da = a1 - a2 and db = b1 - b2 in
    let s1 = saff a1 b1 and s2 = saff a2 b2 in
    if da = 0 then
      (* dense max2 keeps the FIRST operand on ties (>=/<=) *)
      let keep1 = if op = Max then db >= 0 else db <= 0 in
      Some [ (l, u, if keep1 then s1 else s2) ]
    else
      let rel = if op = Max then `Ge else `Le in
      Some (halfline_split l u (rel_halfline da db rel) ~t:s1 ~f:s2)
  | And | Or ->
    (* int .and. int is Punk regardless of the values *)
    const Punk
  | Join ->
    if a1 = a2 && b1 = b2 then Some [ (l, u, saff a1 b1) ]
    else
      let da = a1 - a2 and db = b1 - b2 in
      if da = 0 then const Punk
      else
        Some
          (List.map
             (fun (x, y, s) ->
               match s with
               | Sconst (Pbool true) -> (x, y, Sconst (Pint ((a1 * x) + b1)))
               | _ -> (x, y, Sconst Punk))
             (eq_point_split l u da db ~t:(Sconst (Pbool true))
                ~f:(Sconst (Pbool false))))
  | Pow -> None

(* Is [pv2 op] with this constant on one side independent of the other
   (integer) operand's value?  True for Punk and booleans against ints:
   every operator's result is then the same constant for any int lane,
   so a whole affine run collapses in O(1). *)
let absorbing = function Punk | Pbool _ -> true | Pint _ | Preal _ -> false

let seg2 op l u s1 s2 =
  match (s1, s2) with
  | Sconst x, Sconst y -> [ (l, u, Sconst (pv2 op x y)) ]
  | _ -> (
    match (lin_of s1, lin_of s2) with
    | Some c1, Some c2 -> (
      match lin2 op l u c1 c2 with
      | Some segs -> segs
      | None -> expand2 op l u s1 s2)
    | _ -> (
      (* exactly one side is a non-int constant, the other affine *)
      match (s1, s2) with
      | Sconst v, _ when absorbing v -> [ (l, u, Sconst (pv2 op v (Pint 0))) ]
      | _, Sconst v when absorbing v -> [ (l, u, Sconst (pv2 op (Pint 0) v)) ]
      | _ -> expand2 op l u s1 s2))

let app2 ~n op a b =
  match (a, b) with
  | Uni x, Uni y -> Uni (pv2 op x y)
  | _ ->
    norm ~n
      (List.concat_map
         (fun (l, u, s1, s2) -> seg2 op l u s1 s2)
         (align ~n a b))

let seg1 op l u s =
  match s with
  | Sconst v -> [ (l, u, Sconst (pv1 op v)) ]
  | Saff { a; b } -> (
    match op with
    | Neg -> [ (l, u, saff (-a) (-b)) ]
    | ToInt -> [ (l, u, s) ]
    | Not -> [ (l, u, Sconst Punk) ]
    | Abs ->
      (* split at the sign change: |a*p + b| is -(a*p+b) where negative *)
      halfline_split l u (rel_halfline a b `Lt) ~t:(saff (-a) (-b)) ~f:s
    | ToReal ->
      List.init (u - l + 1) (fun i ->
          let p = l + i in
          (p, p, Sconst (pv1 op (seg_at s p)))))

let app1 ~n op v =
  match v with
  | Uni x -> Uni (pv1 op x)
  | Runs segs ->
    norm ~n (List.concat_map (fun (l, u, s) -> seg1 op l u s) segs)

(* Escape hatch for rare intrinsics (sign, sqrt, tab$ selection...):
   pointwise application with run expansion — the dense cost, but only
   where the program actually does something exotic.  [Uni]/[Sconst]
   stay O(1). *)
let app2_pv ~n f a b =
  match (a, b) with
  | Uni x, Uni y -> Uni (f x y)
  | _ ->
    norm ~n
      (List.concat_map
         (fun (l, u, s1, s2) ->
           match (s1, s2) with
           | Sconst x, Sconst y -> [ (l, u, Sconst (f x y)) ]
           | _ ->
             List.init (u - l + 1) (fun i ->
                 let p = l + i in
                 (p, p, Sconst (f (seg_at s1 p) (seg_at s2 p)))))
         (align ~n a b))

let app1_pv ~n f v =
  match v with
  | Uni x -> Uni (f x)
  | Runs segs ->
    norm ~n
      (List.concat_map
         (fun (l, u, s) ->
           match s with
           | Sconst x -> [ (l, u, Sconst (f x)) ]
           | _ ->
             List.init (u - l + 1) (fun i ->
                 let p = l + i in
                 (p, p, Sconst (f (seg_at s p)))))
         segs)

let join ~n a b = app2 ~n Join a b

(* [blend ~n ~act old upd]: processors in [act] take [upd], the rest
   keep [old] — the masked assignment under a partial active set. *)
let blend ~n ~(act : Iset.t) old upd =
  let ivs = Iset.intervals act in
  match ivs with
  | [ (0, u) ] when u = n - 1 -> upd
  | [] -> old
  | _ -> (
    match (old, upd) with
    | Uni x, Uni y when pv_equal x y -> old
    | _ ->
      let rec stitch pos ivs acc =
        if pos > n - 1 then List.rev acc
        else
          match ivs with
          | (l, u) :: rest ->
            if pos < l then
              stitch l ivs (List.rev_append (restrict ~n old (pos, l - 1)) acc)
            else
              stitch (u + 1) rest (List.rev_append (restrict ~n upd (l, u)) acc)
          | [] -> List.rev_append acc (restrict ~n old (pos, n - 1))
      in
      norm ~n (stitch 0 ivs []))

(* --- branch-condition classification ----------------------------------- *)

type truth =
  | T_true
  | T_false
  | T_unknown_uniform  (* same unknown on every processor *)
  | T_split of Iset.t * Iset.t  (* decided lane-by-lane on the active set *)
  | T_divergent  (* some active lane's truth is unknown *)

let truth ~n:_ ~act v =
  match v with
  | Uni (Pbool true) -> T_true
  | Uni (Pbool false) -> T_false
  | Uni _ -> T_unknown_uniform
  | Runs segs ->
    let classify (ts, fs, us) (l, u, s) =
      match s with
      | Sconst (Pbool true) -> ((l, u) :: ts, fs, us)
      | Sconst (Pbool false) -> (ts, (l, u) :: fs, us)
      | _ -> (ts, fs, (l, u) :: us)
    in
    let ts, fs, us = List.fold_left classify ([], [], []) segs in
    if Iset.disjoint act (Iset.of_intervals us) then
      T_split
        (Iset.inter act (Iset.of_intervals ts), Iset.inter act (Iset.of_intervals fs))
    else T_divergent

let pp_pv ppf = function
  | Pint i -> Fmt.int ppf i
  | Preal f -> Fmt.float ppf f
  | Pbool b -> Fmt.bool ppf b
  | Punk -> Fmt.string ppf "?"

let pp_seg ppf = function
  | Sconst v -> pp_pv ppf v
  | Saff { a; b } ->
    if a = 1 then Fmt.pf ppf "p%+d" b
    else Fmt.pf ppf "%d*p%+d" a b

let pp ppf = function
  | Uni v -> pp_pv ppf v
  | Runs segs ->
    Fmt.pf ppf "[%a]"
      Fmt.(
        list ~sep:(any " ") (fun ppf (l, u, s) ->
            if l = u then Fmt.pf ppf "%d:%a" l pp_seg s
            else Fmt.pf ppf "%d-%d:%a" l u pp_seg s))
      segs
