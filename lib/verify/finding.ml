(* Structured findings produced by the static SPMD verifier.

   A finding is one diagnosed property of the program, graded by how
   certain and how damning it is:

   - [Error]: the analysis proved the program fails dynamically (static
     deadlock, divergent collective, send of unowned data, out-of-bounds
     section, ...).  [fdc check] exits nonzero.
   - [Warning]: a lint — the program may run, but something is dead,
     redundant, or suspicious (empty sends, recv of already-owned data,
     undistributed decompositions).  Nonzero exit only under [--strict].
   - [Info]: coverage notes — a region the analysis could not verify
     (data-dependent control flow, unknown message endpoints) or an
     analysis budget cutoff.  Never affects the exit code. *)

open Fd_support

type severity = Error | Warning | Info

type t = {
  severity : severity;
  kind : string;  (* stable kebab-case identifier, e.g. "static-deadlock" *)
  message : string;
  loc : Loc.t;  (* source statement the finding cites; Loc.none if unknown *)
  proc : int option;  (* processor exhibiting the problem, when specific *)
  tag : int option;  (* message tag, for point-to-point findings *)
  site : int option;  (* collective site, for congruence findings *)
}

let make ?(loc = Loc.none) ?proc ?tag ?site severity kind message =
  { severity; kind; message; loc; proc; tag; site }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Stable presentation order: errors first, then by source position. *)
let compare a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = compare a.loc.Loc.line b.loc.Loc.line in
    if c <> 0 then c else compare (a.kind, a.message) (b.kind, b.message)

let sort fs = List.sort_uniq compare fs

let errors fs = List.filter (fun f -> f.severity = Error) fs
let warnings fs = List.filter (fun f -> f.severity = Warning) fs

let counts fs =
  List.fold_left
    (fun (e, w, i) f ->
      match f.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) fs

let pp ppf f =
  Fmt.pf ppf "%s[%s]" (severity_name f.severity) f.kind;
  if f.loc <> Loc.none then Fmt.pf ppf " %a" Loc.pp f.loc;
  Fmt.pf ppf ": %s" f.message

let to_json f =
  let opt name v rest =
    match v with Some x -> (name, Json.Int x) :: rest | None -> rest
  in
  Json.Obj
    (("severity", Json.Str (severity_name f.severity))
     :: ("kind", Json.Str f.kind)
     :: ("message", Json.Str f.message)
     ::
     (if f.loc <> Loc.none then
        [
          ("file", Json.Str f.loc.Loc.file);
          ("line", Json.Int f.loc.Loc.line);
          ("col", Json.Int f.loc.Loc.col);
        ]
      else [])
    @ opt "proc" f.proc (opt "tag" f.tag (opt "site" f.site [])))

let report_json fs =
  let e, w, i = counts fs in
  Json.Obj
    [
      ("ok", Json.Bool (e = 0));
      ("errors", Json.Int e);
      ("warnings", Json.Int w);
      ("infos", Json.Int i);
      ("findings", Json.List (List.map to_json fs));
    ]
