(** Interval skeleton replay: the communication-matching half of
    [fdc check].

    The abstract walk ({!module:Absint}) emits a program skeleton — a
    list of communication {!event}s.  Where the dense implementation
    emitted one event per processor, an event now covers a pid
    {e interval} [\[e_plo, e_phi\]] whose lanes differ only affinely in
    the pid ({!aff} forms for destinations, sources, and section
    bounds).  Replay then advances {e groups} (disjoint pid intervals,
    initially the single group [\[0, P-1\]]) through the event list in
    rounds, splitting a group only when its lanes genuinely diverge
    (wildcard matches, partial event overlap, per-pid receive
    decisions).  For the regular patterns of real node programs —
    shifts, reflections, broadcasts from a uniform root — no split ever
    happens and replay is O(events), independent of P.

    Matching honours the dense engine's round order (pids ascend within
    a round, each advancing until blocked): a message pushed in the
    current round is visible to a receiver only from senders at or
    below it, so finding attribution (which pid's text reaches the
    report first) is byte-identical to the dense verifier.

    Checks preserved from the dense engine: deadlock / quiescence
    cycles, collective congruence (all pids at the same collective,
    same site, agreeing root), payload validity (section bounds, rank,
    step), wildcard degradation, redundant receives. *)

open Fd_support
open Fd_machine

(** Affine pid form: [fun pid -> a*pid + b]. *)
type aff = { a : int; b : int }

val aff_at : aff -> int -> int
val aff_const : int -> aff

(** One array section of a send payload. *)
type part = {
  p_array : string;
  p_triplets : (aff * aff * aff) list option;
      (** per-dim (lo, hi, step) of the sent section, affine in the
          SENDER pid; [None]: section not evaluable *)
  p_dist_dim : int option;
  p_layout : Layout.t;  (** sender's layout at emission *)
}

type recv_array = {
  ra_name : string;
  ra_dist_dim : int option;
  ra_layout : Layout.t;  (** receiver's layout at emission *)
}

type coll_payload =
  | Cp_scalar of string
  | Cp_section of {
      cs_array : string;
      cs_triplets : Triplet.t list option;  (** evaluated at the root *)
      cs_dist_dim : int option;
      cs_owned_root : Iset.t;
    }
  | Cp_remap of {
      cr_array : string;
      cr_old : Layout.t;  (** reaching layout before the remap *)
      cr_new : Layout.t;  (** target layout *)
      cr_move : bool;  (** physical move vs. mark-only (array-kill opt) *)
    }

type kind =
  | Ev_send of { dest : aff option; tag : int; parts : part list }
  | Ev_recv of { src : aff option; tag : int; arrays : recv_array list }
  | Ev_coll of {
      id : int;
      site : int;
      label : string;
      root : int option;
      payload : coll_payload;
    }
  | Ev_assume of { array : string; elems : Iset.t }
      (** data conservatively assumed delivered by communication inside
          a region the walker could not verify *)

(** An event executed identically (up to the affine forms) by every pid
    in [\[e_plo, e_phi\]]. *)
type event = { e_plo : int; e_phi : int; e_kind : kind; e_loc : Loc.t }

(** Evaluate an affine section triplet at a concrete (sender) pid. *)
val triplet_at : aff * aff * aff -> int -> Triplet.t

(** Replay the skeleton for [nprocs] processors and report findings.
    [degrade] marks the stream as partial (deadlock verdicts soften to
    quiescence info); [fuzzy_tags] are tags whose matching the walker
    could not verify. *)
val run :
  nprocs:int ->
  ?degrade:bool ->
  ?fuzzy_tags:(int, unit) Hashtbl.t ->
  event list ->
  Finding.t list
