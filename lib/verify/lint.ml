(* Source-level Fortran D placement lints, run on the checked AST.

   Sema already rejects malformed ALIGN/DISTRIBUTE (unknown targets,
   rank mismatches); this pass looks for placements that are
   *well-formed but inert or suspicious*:

   - a DECOMPOSITION that is declared but never DISTRIBUTEd — every
     array aligned to it silently stays replicated;
   - a DISTRIBUTE of a decomposition to which no array is ever aligned
     (directly or through an alignment chain) — the distribution
     affects nothing;
   - an array reference at a point no decomposition reaches, for an
     array that IS aligned later in the unit ("use before placement") —
     detected through the [reaching] callback, which the driver backs
     with the interprocedural reaching-decompositions analysis;
   - a REALIGN/REDISTRIBUTE provably identical to the placement already
     reaching it ("no-op remap") — the executable statement triggers a
     barrier and a remap event at run time but moves no data.  Found by
     a small intra-unit dataflow walk over placement statements; joins
     (IF branches, DO back edges) forget any placement the paths
     disagree on, so the lint never flags a remap that could be live on
     some path, and a unit entry is always unknown (caller-dependent),
     so fig15-style cross-procedure redistributes are never flagged. *)

open Fd_frontend

(* [reaching ~uname ~sid array] answers whether any decomposition
   reaches [array] at the program point before statement [sid] of unit
   [uname]; absent callback = analysis unavailable, lint skipped. *)
type reaching_hook = uname:string -> sid:int -> string -> bool

let unit_findings ?reaching (cu : Sema.checked_unit) : Finding.t list =
  let u = cu.Sema.unit_ in
  let findings = ref [] in
  let add ?loc ?proc sev kind msg =
    findings := Finding.make ?loc ?proc sev kind msg :: !findings
  in
  (* declared decompositions *)
  let decomps = Hashtbl.create 4 in
  List.iter
    (function
      | Ast.Dcl_decomposition ds ->
        List.iter (fun (name, _) -> Hashtbl.replace decomps name ()) ds
      | _ -> ())
    u.Ast.decls;
  (* executable placements *)
  let aligns = ref [] (* (array, target, loc) *)
  and distributed = Hashtbl.create 4 (* name -> loc *) in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.kind with
      | Ast.Align { array; target; subs = _ } ->
        aligns := (array, target, s.Ast.loc) :: !aligns
      | Ast.Distribute { decomp; dists = _ } ->
        if not (Hashtbl.mem distributed decomp) then
          Hashtbl.replace distributed decomp s.Ast.loc
      | _ -> ())
    u.Ast.body;
  let aligns = List.rev !aligns in
  (* transitive set of names whose placement chains end at [target] *)
  let rec chains_to target name seen =
    (not (List.mem name seen))
    && List.exists
         (fun (a, t, _) ->
           a = name && (t = target || chains_to target t (name :: seen)))
         aligns
  in
  (* 1. declared but never distributed *)
  Hashtbl.iter
    (fun d () ->
      if not (Hashtbl.mem distributed d) then begin
        let first_align =
          List.find_opt (fun (_, t, _) -> t = d) aligns
        in
        let loc =
          match first_align with Some (_, _, l) -> l | None -> u.Ast.uloc
        in
        let aligned =
          List.filter_map
            (fun (a, t, _) -> if t = d then Some a else None)
            aligns
        in
        add ~loc Finding.Warning "undistributed-decomposition"
          (Fmt.str
             "decomposition %s in %s is declared but never distributed%s"
             d u.Ast.uname
             (match aligned with
             | [] -> ""
             | l ->
               Fmt.str " — %s stay%s replicated" (String.concat ", " l)
                 (match l with [ _ ] -> "s" | _ -> "")))
      end)
    decomps;
  (* 2. distributed but nothing aligned to it *)
  Hashtbl.iter
    (fun d loc ->
      if Hashtbl.mem decomps d
         && not (List.exists (fun (a, _, _) -> chains_to d a []) aligns)
      then
        add ~loc Finding.Warning "distribute-without-align"
          (Fmt.str
             "DISTRIBUTE %s in %s affects no arrays — nothing is aligned \
              to it"
             d u.Ast.uname))
    distributed;
  (* 4. REALIGN/REDISTRIBUTE identical to the reaching placement.
     Forward walk with two environments — decomposition/array name ->
     reaching DISTRIBUTE spec, and array name -> reaching ALIGN spec.
     Absence from a map means "unknown"; a join keeps a binding only
     when both sides agree, and a DO body is iterated to a fixpoint
     before warnings are emitted so a placement changed later in the
     loop body invalidates the loop-entry view. *)
  let module M = Map.Make (String) in
  let pp_dist = function
    | Ast.Block -> "block"
    | Ast.Cyclic -> "cyclic"
    | Ast.Block_cyclic k -> Fmt.str "cyclic(%d)" k
    | Ast.Star -> ":"
  in
  let merge a b =
    M.merge
      (fun _ x y ->
        match (x, y) with Some v, Some w when v = w -> Some v | _ -> None)
      a b
  in
  let merge2 (d1, a1) (d2, a2) = (merge d1 d2, merge a1 a2) in
  let equal2 (d1, a1) (d2, a2) = M.equal ( = ) d1 d2 && M.equal ( = ) a1 a2 in
  let rec walk_stmts ~emit st stmts =
    List.fold_left (walk ~emit) st stmts
  and walk ~emit ((denv, aenv) as st) s =
    match s.Ast.kind with
    | Ast.Distribute { decomp; dists } ->
      (match M.find_opt decomp denv with
      | Some prev when prev = dists && emit ->
        add ~loc:s.Ast.loc Finding.Warning "noop-remap"
          (Fmt.str
             "DISTRIBUTE %s(%s) in %s matches the distribution already \
              reaching it — the remap moves no data"
             decomp
             (String.concat ", " (List.map pp_dist dists))
             u.Ast.uname)
      | _ -> ());
      (M.add decomp dists denv, aenv)
    | Ast.Align { array; target; subs } ->
      (match M.find_opt array aenv with
      | Some prev when prev = (target, subs) && emit ->
        add ~loc:s.Ast.loc Finding.Warning "noop-remap"
          (Fmt.str
             "ALIGN %s with %s in %s matches the alignment already \
              reaching it — the remap moves no data"
             array target u.Ast.uname)
      | _ -> ());
      (denv, M.add array (target, subs) aenv)
    | Ast.Do { body; _ } ->
      let rec fix entry =
        let entry' = merge2 entry (walk_stmts ~emit:false entry body) in
        if equal2 entry' entry then entry else fix entry'
      in
      let entry = fix st in
      merge2 entry (walk_stmts ~emit entry body)
    | Ast.If { then_; else_; _ } ->
      merge2 (walk_stmts ~emit st then_) (walk_stmts ~emit st else_)
    | Ast.Assign _ | Ast.Call _ | Ast.Return | Ast.Print _ -> st
  in
  ignore (walk_stmts ~emit:true (M.empty, M.empty) u.Ast.body);
  (* 3. use before placement (needs the reaching-decompositions hook) *)
  (match reaching with
  | None -> ()
  | Some hook ->
    let aligned_arrays =
      List.sort_uniq compare (List.map (fun (a, _, _) -> a) aligns)
    in
    if aligned_arrays <> [] then begin
      let reported = Hashtbl.create 4 in
      Ast.iter_stmts
        (fun s ->
          Ast.iter_exprs_stmt
            (fun e ->
              match e with
              | Ast.Ref (name, _)
                when List.mem name aligned_arrays
                     && Symtab.is_array cu.Sema.symtab name
                     && not (Hashtbl.mem reported name)
                     && not (hook ~uname:u.Ast.uname ~sid:s.Ast.sid name) ->
                Hashtbl.replace reported name ();
                add ~loc:s.Ast.loc Finding.Warning "use-before-placement"
                  (Fmt.str
                     "array %s is referenced before any decomposition \
                      reaches it (it is aligned later in %s)"
                     name u.Ast.uname)
              | _ -> ())
            s)
        u.Ast.body
    end);
  List.rev !findings

let run ?reaching (cp : Sema.checked_program) : Finding.t list =
  Finding.sort (List.concat_map (unit_findings ?reaching) cp.Sema.units)
