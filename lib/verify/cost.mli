(** Static communication-cost and critical-path analyzer.

    Computes, without simulation, what a simulated run would report:
    per-processor and aggregate message counts and byte volumes,
    broadcast/remap traffic, and the virtual-time makespan of the
    communication DAG with its critical path — symbolically over pid
    intervals, so the analysis cost is flat in P.

    Counters mirror the simulator's {!Fd_machine.Stats} exactly on every
    fault-free program (differentially tested in [test/test_cost.ml]);
    the makespan equals a compute-free ([flop = mem_op = 0]) simulated
    run when [exact], and is a lower bound under the full cost model
    (compute time is not modelled). *)

open Fd_support
open Fd_machine

(** {1 Sequential branch profile}

    Statically-unresolved but processor-uniform IF conditions are
    resolved by observing one sequential reference execution.  Sites
    whose profile is uniform (always taken or never taken) are walked as
    decided; mixed or unprofiled sites stay excluded regions and flag
    the result approximate. *)

type profile
(** Per-source-IF decision counts from a sequential run. *)

val profile_of_seq : Fd_frontend.Sema.checked_program -> profile
(** Run the sequential reference interpreter once, recording each IF
    decision.  A sequential runtime failure yields a partial profile
    (the analysis then degrades to regions, it does not raise). *)

val oracle : profile -> Loc.t -> bool option
(** [Some taken] iff the profile for that statement is uniform. *)

(** {1 Per-processor piecewise-affine quantities}

    A value over pid space as disjoint affine pieces
    [value(p) = a*p + b] on [lo, hi] — flat in P for the regular
    patterns the compiler emits. *)

type ipiece = { ip_lo : int; ip_hi : int; ip_a : int; ip_b : int }
type fpiece = { fp_lo : int; fp_hi : int; fp_a : float; fp_b : float }

val isum_piece : ipiece -> int
(** Closed-form sum of the piece over its pid range. *)

val fsum_piece : fpiece -> float

(** {1 Results} *)

type step = {
  st_what : string;  (** "send", "recv", "bcast <label>", "remap <array>" *)
  st_loc : Loc.t;
  st_plo : int;
  st_phi : int;
  st_time : float;  (** completion time (virtual seconds) *)
}
(** One located event on the critical path, in time order. *)

type site_cost = {
  site_loc : Loc.t;
  site_what : string;  (** "send" | "bcast" | "remap" *)
  site_messages : int;
  site_bytes : int;
  site_bcasts : int;
  site_remaps : int;
  site_seconds : float;  (** startup + transfer time charged to the site *)
}
(** Per-source-statement attribution ([fdc cost --by-loop]). *)

type t = {
  nprocs : int;
  messages : int;  (** point-to-point sends, mirroring [Stats.messages] *)
  message_bytes : int;
  bcasts : int;
  bcast_bytes : int;
  remaps : int;  (** physical remaps (data moved) *)
  remap_marks : int;  (** mark-only remaps *)
  remap_bytes : int;
  makespan : float;  (** predicted elapsed virtual time, seconds *)
  exact : bool;
      (** no cost-model assumption was needed: counters are exact and
          the makespan matches a compute-free simulated run *)
  assumptions : string list;  (** why not [exact], in discovery order *)
  per_proc_messages : ipiece list;
  per_proc_bytes : ipiece list;
  send_seconds : fpiece list;  (** startup (alpha) time per sender *)
  wait_seconds : fpiece list;  (** receive-blocked time per processor *)
  coll_seconds : fpiece list;  (** collective barrier + transfer time *)
  critical_path : step list;
  sites : site_cost list;  (** most expensive first *)
  findings : Finding.t list;
      (** Warning "unvectorized-comm" on provably per-element send
          statements; Info "cost-assumption" per assumption *)
  events : int;  (** skeleton events priced *)
  regions_excluded : int;  (** unresolved regions containing communication *)
  profile_used : bool;
}

val analyze : ?profile:profile -> config:Config.t -> Node.program -> t
(** Walk the program for [config.nprocs] processors (resolving uniform
    branches through [?profile]) and price the resulting skeleton under
    [config]'s cost model.  Total: never raises on checked programs. *)

val comm_ops : t -> int

(** {1 Per-processor queries} (evaluate the piecewise forms) *)

val messages_at : t -> int -> int
val bytes_at : t -> int -> int
val wait_at : t -> int -> float
(** Blocked seconds: receive waits plus collective waits. *)

val send_time_at : t -> int -> float

(** {1 Export} *)

val to_json : t -> Json.t

val to_metrics : t -> Fd_trace.Metrics.t
(** Counter/gauge names match [Stats.to_metrics] where the quantities
    coincide ([messages], [message_bytes], ..., gauge
    [elapsed_seconds]), so dashboards can overlay predicted against
    simulated. *)

val pp : Format.formatter -> t -> unit
val pp_critical_path : Format.formatter -> t -> unit
val pp_sites : Format.formatter -> t -> unit
