(** Abstract interpretation of a node program over the whole processor
    ensemble at once.

    The walker executes the program once for all P processors,
    tracking:

    - scalar values as compressed lane vectors ({!Absdom.t}) — uniform,
      affine-in-pid, or run-length covers of pid space;
    - the {e active set} as a pid interval set ([Iset.t]) instead of a
      per-P boolean mask, so owner guards ([my$p <= k]) and
      neighbor-relative control flow stay O(runs), not O(P);
    - DO loops in lockstep over the active set, unrolling while any
      active pid's (possibly pid-dependent) bounds keep it live;
    - array layouts ({!Layout.t}), consulted on demand per pid interval
      — no per-processor ownership arrays are materialized.

    Output is a stream of {!Skeleton.event}s whose pid intervals cover
    every emitting processor (one event per interval of lanes that
    agree up to an affine form), plus walk-time findings (out-of-bounds
    sections, divergent broadcast roots, dead sends...).  Where lanes
    resist the affine forms the emitter falls back to per-pid events
    for exactly the divergent interval, reproducing the dense verifier
    event-for-event and finding-for-finding (differentially tested at
    sampled P in [test/test_verify.ml]). *)

open Fd_machine

exception Truncated
exception Stuck of string

type result = {
  events : Skeleton.event list;
  findings : Finding.t list;
  fuzzy_tags : (int, unit) Hashtbl.t;
  complete : bool;
      (** the event stream covers the whole program, so the skeleton
          replay's deadlock verdicts are meaningful *)
  visits : int;  (** statements visited, for the bench *)
}

(** Walk the program's main entry for [nprocs] processors.  Under a
    [?budget], exhaustion stops the walk gracefully with an Info
    ["budget-exhausted"] finding and [complete = false] — the analysed
    prefix is still reported. *)
val walk :
  ?budget:Fd_support.Budget.t -> nprocs:int -> Node.program -> result
