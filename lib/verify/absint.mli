(** Abstract interpretation of a node program over the whole processor
    ensemble at once.

    The walker executes the program once for all P processors,
    tracking:

    - scalar values as compressed lane vectors ({!Absdom.t}) — uniform,
      affine-in-pid, or run-length covers of pid space;
    - the {e active set} as a pid interval set ([Iset.t]) instead of a
      per-P boolean mask, so owner guards ([my$p <= k]) and
      neighbor-relative control flow stay O(runs), not O(P);
    - DO loops in lockstep over the active set, unrolling while any
      active pid's (possibly pid-dependent) bounds keep it live;
    - array layouts ({!Layout.t}), consulted on demand per pid interval
      — no per-processor ownership arrays are materialized.

    Output is a stream of {!Skeleton.event}s whose pid intervals cover
    every emitting processor (one event per interval of lanes that
    agree up to an affine form), plus walk-time findings (out-of-bounds
    sections, divergent broadcast roots, dead sends...).  Where lanes
    resist the affine forms the emitter falls back to per-pid events
    for exactly the divergent interval, reproducing the dense verifier
    event-for-event and finding-for-finding (differentially tested at
    sampled P in [test/test_verify.ml]). *)

open Fd_machine

exception Truncated
exception Stuck of string

(** One unverifiable-control-flow region instance, in walk order.  Its
    buffered branch events never reach the main event stream (only
    [Ev_assume] does); {!module:Cost} counts regions that contain
    communication to flag its prediction approximate, after first
    resolving what it can through [?branch_oracle]. *)
type region = {
  rg_if_loc : Fd_support.Loc.t;
      (** source IF statement; [Loc.none] for symbolic loop regions *)
  rg_pos : int;  (** main-stream events emitted before this region *)
  rg_then : Skeleton.event list;
  rg_else : Skeleton.event list;
  rg_divergent : bool;
  rg_nested : bool;  (** recorded inside an enclosing region *)
}

type result = {
  events : Skeleton.event list;
  findings : Finding.t list;
  fuzzy_tags : (int, unit) Hashtbl.t;
  complete : bool;
      (** the event stream covers the whole program, so the skeleton
          replay's deadlock verdicts are meaningful *)
  visits : int;  (** statements visited, for the bench *)
  regions : region list;  (** unverified regions, in walk order *)
}

(** Walk the program's main entry for [nprocs] processors.  Under a
    [?budget], exhaustion stops the walk gracefully with an Info
    ["budget-exhausted"] finding and [complete = false] — the analysed
    prefix is still reported.

    [?branch_oracle] resolves processor-uniform but statically-unknown
    IF conditions (keyed by the source statement's location): [Some
    taken] walks that branch in the main stream with full precision
    instead of buffering both branches as a region.  The cost analyzer
    supplies a sequential branch profile here; verification never does
    (its verdicts must not depend on one input's control flow). *)
val walk :
  ?budget:Fd_support.Budget.t ->
  ?branch_oracle:(Fd_support.Loc.t -> bool option) ->
  nprocs:int ->
  Node.program ->
  result
