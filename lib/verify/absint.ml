(* Abstract interpreter over SPMD node programs: a single vectorized
   walk simulates all P processors at once over one shared environment
   (one compressed Absdom.t per scalar cell — uniform, affine-in-pid or
   run-length segments, never a dense P-vector), erasing computation
   and keeping communication.

   The walk produces:
   - a stream of Skeleton.events (sends, recvs, collectives), each
     covering a contiguous *interval* of processors whose communication
     differs only affinely in the pid, replayed by Skeleton.run;
   - walk-time findings: collectives reached by only part of the
     ensemble (the static form of the scheduler's collective-mismatch
     deadlock), out-of-bounds or malformed sections, empty sends;
   - the active-processor mask threading: masks are Iset.t pid sets, a
     decidable branch on my$p splits the mask, RETURN clears it,
     collectives check it.

   Control flow the domain cannot decide is walked once as an
   *unverifiable region*: scalar updates become weak (joins), the
   region's communication is matched in isolation (degraded to Info)
   and its tags are excluded from hard deadlock verdicts.  A branch
   that is unknown-but-uniform stays congruence-safe; only
   processor-divergent unknowns demote collective verification.

   Emission discipline: per-processor quantities at a communication
   statement (message endpoint, section bounds) are chunked together by
   Absdom.align_many; a chunk where everything is affine in the pid
   becomes ONE event spanning the chunk.  Chunks with exotic shapes
   (processor-dependent section steps) fall back to per-pid emission,
   which reproduces the dense walk exactly. *)

open Fd_support
open Fd_frontend
open Fd_machine

exception Truncated
exception Stuck of string

(* Raised when the caller's resource budget trips mid-walk; rendered as
   an Info "budget-exhausted" finding, mirroring [Truncated]. *)
exception Budget_out of string

type aobj = {
  a_name : string;
  a_bounds : (int * int) list;
  mutable a_layout : Layout.t;
}

type binding = Bscalar of Absdom.t ref | Barray of aobj

type frame = (string, binding) Hashtbl.t

(* One unverifiable-control-flow region instance, in walk order.  The
   buffered branch events never reach the main stream (only Ev_assume
   does); the cost analyzer splices them back in at [rg_pos] with a
   multiplicity decided by a sequential branch profile. *)
type region = {
  rg_if_loc : Loc.t;
      (* source IF statement; Loc.none for symbolic loop regions *)
  rg_pos : int;  (* main-stream events emitted before this region *)
  rg_then : Skeleton.event list;
  rg_else : Skeleton.event list;
  rg_divergent : bool;
  rg_nested : bool;  (* recorded inside an enclosing region *)
}

type w = {
  n : int;
  prog : Node.program;
  oracle : (Loc.t -> bool option) option;
      (* branch profile consulted before falling back to regions *)
  budget : Budget.state option;
  globals : frame;
  mutable frames : frame list;
  mutable fuel : int;
  mutable uncertain : int;  (* depth of unverifiable regions *)
  mutable buf : Skeleton.event list ref;  (* current emission buffer *)
  mutable next_id : int;  (* collective emission ids *)
  mutable findings : Finding.t list;
  fuzzy : (int, unit) Hashtbl.t;  (* tags whose matching is unverifiable *)
  send_stats : (Loc.t * int, int ref * int ref) Hashtbl.t;
      (* per (site, tag): nonempty, empty *)
  comm_memo : (string, bool) Hashtbl.t;
  finding_seen : (string, unit) Hashtbl.t;
  mutable regions : region list;  (* reversed; see [region] *)
}

type result = {
  events : Skeleton.event list;
  findings : Finding.t list;
  fuzzy_tags : (int, unit) Hashtbl.t;
  complete : bool;
      (* the event stream covers the whole program, so the skeleton
         replay's deadlock verdicts are meaningful *)
  visits : int;  (* statements visited, for the bench *)
  regions : region list;  (* unverified regions, in walk order *)
}

(* One finding per (kind, site) — the walk revisits statements (loop
   unrolling), the report should not. *)
let addf w ?(loc = Loc.none) ?proc ?tag ?site sev kind msg =
  let key = Fmt.str "%s|%s|%d|%d" kind loc.Loc.file loc.Loc.line
      (match site with Some s -> s | None -> -1)
  in
  if not (Hashtbl.mem w.finding_seen key) then begin
    Hashtbl.replace w.finding_seen key ();
    w.findings <-
      Finding.make ~loc ?proc ?tag ?site sev kind msg :: w.findings
  end

let charge w tick =
  match w.budget with
  | Some b when not (tick b 1) ->
    raise
      (Budget_out (Option.value ~default:"budget exhausted" (Budget.exhausted b)))
  | _ -> ()

let emit w ev =
  charge w Budget.tick_event;
  w.buf := ev :: !(w.buf)

let burn w =
  w.fuel <- w.fuel - 1;
  if w.fuel <= 0 then raise Truncated;
  charge w Budget.tick_step

(* --- environment (mirrors Interp's frames) --------------------------- *)

let current_frame w =
  match w.frames with
  | f :: _ -> f
  | [] -> raise (Stuck "no active frame")

let implicit_zero name =
  if String.length name > 0 && name.[0] >= 'i' && name.[0] <= 'n' then
    Absdom.Uni (Absdom.Pint 0)
  else Absdom.Uni (Absdom.Preal 0.0)

let zero_of = function
  | Ast.Integer -> Absdom.Uni (Absdom.Pint 0)
  | Ast.Real -> Absdom.Uni (Absdom.Preal 0.0)
  | Ast.Logical -> Absdom.Uni (Absdom.Pbool false)

let lookup w name : binding =
  let frame = current_frame w in
  match Hashtbl.find_opt frame name with
  | Some b -> b
  | None -> (
    match Hashtbl.find_opt w.globals name with
    | Some b -> b
    | None ->
      let b = Bscalar (ref (implicit_zero name)) in
      Hashtbl.replace frame name b;
      b)

let scalar_cell w name =
  match lookup w name with
  | Bscalar r -> r
  | Barray _ -> raise (Stuck (Fmt.str "array %s used as a scalar" name))

let array_obj w name =
  match lookup w name with
  | Barray o -> o
  | Bscalar _ -> raise (Stuck (Fmt.str "scalar %s used as an array" name))

let alloc_aobj (ad : Node.array_decl) =
  {
    a_name = ad.Node.ad_name;
    a_bounds = ad.Node.ad_layout.Layout.bounds;
    a_layout = ad.Node.ad_layout;
  }

(* --- expressions ------------------------------------------------------ *)

let binop_of : Ast.binop -> Absdom.binop = function
  | Ast.Add -> Absdom.Add
  | Ast.Sub -> Absdom.Sub
  | Ast.Mul -> Absdom.Mul
  | Ast.Div -> Absdom.Div
  | Ast.Pow -> Absdom.Pow
  | Ast.Eq -> Absdom.Eq
  | Ast.Ne -> Absdom.Ne
  | Ast.Lt -> Absdom.Lt
  | Ast.Le -> Absdom.Le
  | Ast.Gt -> Absdom.Gt
  | Ast.Ge -> Absdom.Ge
  | Ast.And -> Absdom.And
  | Ast.Or -> Absdom.Or

let rec eval w (e : Ast.expr) : Absdom.t =
  let n = w.n in
  match e with
  | Ast.Int_const i -> Absdom.Uni (Absdom.Pint i)
  | Ast.Real_const f -> Absdom.Uni (Absdom.Preal f)
  | Ast.Logical_const b -> Absdom.Uni (Absdom.Pbool b)
  | Ast.Var v -> (
    match lookup w v with
    | Bscalar r -> !r
    | Barray _ -> raise (Stuck (Fmt.str "whole array %s used as a value" v)))
  | Ast.Ref (name, _) ->
    (* the uniform-data assumption: distributed values are unknown but
       processor-consistent (DESIGN.md 6c) *)
    ignore (array_obj w name);
    Absdom.unknown
  | Ast.Bin (op, a, b) ->
    Absdom.app2 ~n (binop_of op) (eval w a) (eval w b)
  | Ast.Un (Ast.Neg, a) -> Absdom.app1 ~n Absdom.Neg (eval w a)
  | Ast.Un (Ast.Not, a) -> Absdom.app1 ~n Absdom.Not (eval w a)
  | Ast.Funcall (name, args) -> intrinsic w name args

and intrinsic w name args : Absdom.t =
  let n = w.n in
  match (name, args) with
  | "myproc", [] -> Absdom.myproc ~n
  | "nprocs", [] -> Absdom.Uni (Absdom.Pint n)
  | "tab$", sel :: consts ->
    Absdom.select ~n (eval w sel)
      (Array.of_list (List.map (eval w) consts))
  | "owner$", Ast.Var arr :: subs -> (
    let obj = array_obj w arr in
    match obj.a_layout.Layout.dist_dim with
    | None -> Absdom.myproc ~n
    | Some d ->
      let idx = eval w (List.nth subs d) in
      let owner i =
        try Absdom.Pint (Layout.owner_of obj.a_layout ~nprocs:n i)
        with _ -> Absdom.Punk
      in
      Absdom.of_segs ~n
        (List.concat_map
           (fun (l, u, s) ->
             match s with
             | Absdom.Sconst (Absdom.Pint i) ->
               [ (l, u, Absdom.Sconst (owner i)) ]
             | Absdom.Sconst _ -> [ (l, u, Absdom.Sconst Absdom.Punk) ]
             | Absdom.Saff _ ->
               List.init (u - l + 1) (fun k ->
                   let p = l + k in
                   let v =
                     match Absdom.seg_at s p with
                     | Absdom.Pint i -> owner i
                     | _ -> Absdom.Punk
                   in
                   (p, p, Absdom.Sconst v)))
           (Absdom.segs_of ~n idx)))
  | "abs", [ a ] -> Absdom.app1 ~n Absdom.Abs (eval w a)
  | "sqrt", [ a ] ->
    Absdom.app1_pv ~n
      (fun v ->
        match Absdom.to_f v with
        | Some f -> Absdom.Preal (sqrt f)
        | None -> Absdom.Punk)
      (eval w a)
  | "mod", [ a; b ] -> Absdom.app2 ~n Absdom.Mod (eval w a) (eval w b)
  | "max", _ :: _ :: _ -> (
    match List.map (eval w) args with
    | v :: rest -> List.fold_left (Absdom.app2 ~n Absdom.Max) v rest
    | [] -> Diag.internal ~pass:"verify" "intrinsic %s with no arguments" name)
  | "min", _ :: _ :: _ -> (
    match List.map (eval w) args with
    | v :: rest -> List.fold_left (Absdom.app2 ~n Absdom.Min) v rest
    | [] -> Diag.internal ~pass:"verify" "intrinsic %s with no arguments" name)
  | "float", [ a ] -> Absdom.app1 ~n Absdom.ToReal (eval w a)
  | "int", [ a ] -> Absdom.app1 ~n Absdom.ToInt (eval w a)
  | "sign", [ a; b ] ->
    Absdom.app2_pv ~n
      (fun m s ->
        match (Absdom.to_f m, Absdom.to_f s) with
        | Some m', Some s' ->
          let r = if s' >= 0.0 then Float.abs m' else -.Float.abs m' in
          (match m with
          | Absdom.Pint _ -> Absdom.Pint (int_of_float r)
          | _ -> Absdom.Preal r)
        | _ -> Absdom.Punk)
      (eval w a) (eval w b)
  | _ -> Absdom.unknown

(* --- syntactic helpers ------------------------------------------------ *)

let rec stmts_have_comm w stmts = List.exists (stmt_has_comm w) stmts

and stmt_has_comm w = function
  | Node.N_send _ | Node.N_recv _ | Node.N_bcast _ | Node.N_remap _ -> true
  | Node.N_do { body; _ } -> stmts_have_comm w body
  | Node.N_if { then_; else_; _ } ->
    stmts_have_comm w then_ || stmts_have_comm w else_
  | Node.N_call (name, _) -> (
    match Hashtbl.find_opt w.comm_memo name with
    | Some b -> b
    | None ->
      Hashtbl.replace w.comm_memo name false;
      (* recursion guard *)
      let b =
        match Node.find_proc w.prog name with
        | Some np -> stmts_have_comm w np.Node.np_body
        | None -> false
      in
      Hashtbl.replace w.comm_memo name b;
      b)
  | Node.N_assign _ | Node.N_print _ | Node.N_return -> false

(* Scalars a skipped statement list might write: assignment targets, DO
   variables, Var actuals of calls (byref), and COMMON scalars once any
   call is involved. *)
let assigned_scalars w stmts =
  let acc = ref [] in
  let commons () =
    List.iter (fun (v, _) -> acc := v :: !acc) w.prog.Node.n_common_scalars
  in
  let rec go s =
    match s with
    | Node.N_assign (Ast.Var v, _) -> acc := v :: !acc
    | Node.N_assign _ -> ()
    | Node.N_do { var; body; _ } ->
      acc := var :: !acc;
      List.iter go body
    | Node.N_if { then_; else_; _ } ->
      List.iter go then_;
      List.iter go else_
    | Node.N_call (_, args) ->
      List.iter
        (function Ast.Var v -> acc := v :: !acc | _ -> ())
        args;
      commons ()
    | _ -> ()
  in
  List.iter go stmts;
  List.sort_uniq compare !acc

let rec expr_divergent e =
  match e with
  | Ast.Var "my$p" -> true
  | Ast.Funcall (("myproc" | "owner$"), _) -> true
  | Ast.Var _ | Ast.Int_const _ | Ast.Real_const _ | Ast.Logical_const _ ->
    false
  | Ast.Ref (_, subs) -> List.exists expr_divergent subs
  | Ast.Bin (_, a, b) -> expr_divergent a || expr_divergent b
  | Ast.Un (_, a) -> expr_divergent a
  | Ast.Funcall (_, args) -> List.exists expr_divergent args

let rec stmts_mention_divergence stmts =
  List.exists
    (fun s ->
      match s with
      | Node.N_assign (a, b) -> expr_divergent a || expr_divergent b
      | Node.N_do { lo; hi; step; body; _ } ->
        expr_divergent lo || expr_divergent hi
        || (match step with Some e -> expr_divergent e | None -> false)
        || stmts_mention_divergence body
      | Node.N_if { cond; then_; else_; _ } ->
        expr_divergent cond
        || stmts_mention_divergence then_
        || stmts_mention_divergence else_
      | Node.N_call (_, args) -> List.exists expr_divergent args
      | _ -> false)
    stmts

(* --- active masks (pid sets) ------------------------------------------ *)

let all_active w act = Iset.count act = w.n
let any_active act = not (Iset.is_empty act)
let active_count act = Iset.count act
let missing_procs w act = Iset.to_list (Iset.complement ~lo:0 ~hi:(w.n - 1) act)

(* Pids in [act] where the (boolean) condition is true; the caller
   guarantees every active lane is decided. *)
let true_pids w ~act v =
  match Absdom.truth ~n:w.n ~act v with
  | Absdom.T_true -> act
  | Absdom.T_false -> Iset.empty
  | Absdom.T_split (t, _) -> t
  | Absdom.T_unknown_uniform | Absdom.T_divergent -> Iset.empty

(* --- assignment ------------------------------------------------------- *)

let do_assign w act lhs rhs =
  match lhs with
  | Ast.Var name ->
    let v = eval w rhs in
    let cell = scalar_cell w name in
    let blended = Absdom.blend ~n:w.n ~act !cell v in
    cell :=
      (if w.uncertain > 0 then Absdom.join ~n:w.n !cell blended else blended)
  | Ast.Ref _ -> ()  (* array stores carry no abstract information *)
  | _ -> raise (Stuck "bad assignment target in node program")

let havoc_scalars w act ~divergent names =
  let upd =
    if divergent then Absdom.divergent_unknown ~n:w.n else Absdom.unknown
  in
  List.iter
    (fun name ->
      match lookup w name with
      | Bscalar cell ->
        cell := Absdom.join ~n:w.n !cell (Absdom.blend ~n:w.n ~act !cell upd)
      | Barray _ -> ())
    names

(* --- communication emission ------------------------------------------ *)

(* Sections are evaluated once into compressed per-processor values,
   then chunked into affine pid-intervals. *)
let eval_section_vv w (section : Node.section) =
  List.map (fun (lo, hi, st) -> (eval w lo, eval w hi, eval w st)) section

(* Instantiate one part's section at a single processor [p]; walk-time
   findings for malformed sections mirror the dynamic Diag errors.
   Used at concrete pids (broadcast roots, per-pid fallback chunks). *)
let section_at w ~loc ~what p (obj : aobj)
    (vsec : (Absdom.t * Absdom.t * Absdom.t) list) : Triplet.t list option =
  if List.length vsec <> List.length obj.a_bounds then begin
    addf w ~loc ~proc:p Finding.Error "section-rank"
      (Fmt.str "%s section of %s has %d dimensions, array has %d" what
         obj.a_name (List.length vsec) (List.length obj.a_bounds));
    None
  end
  else
    let dims =
      List.map2
        (fun (vlo, vhi, vst) (blo, bhi) ->
          match
            (Absdom.int_at vlo p, Absdom.int_at vhi p, Absdom.int_at vst p)
          with
          | Some l, Some h, Some s ->
            if s < 1 then begin
              addf w ~loc ~proc:p Finding.Error "bad-section-step"
                (Fmt.str "%s section of %s has step %d (must be positive)"
                   what obj.a_name s);
              None
            end
            else begin
              let t = Triplet.make ~lo:l ~hi:h ~step:s in
              if (not (Triplet.is_empty t))
                 && (Triplet.lo t < blo || Triplet.hi t > bhi)
              then
                addf w ~loc ~proc:p Finding.Error
                  (what ^ "-out-of-bounds")
                  (Fmt.str
                     "p%d %ss %s(%s) outside the declared bounds %d:%d" p
                     what obj.a_name (Triplet.to_string t) blo bhi);
              Some t
            end
          | _ -> None)
        vsec obj.a_bounds
    in
    if List.for_all Option.is_some dims then
      Some (List.map Option.get dims)
    else None

let owned_at w obj p =
  match obj.a_layout.Layout.dist_dim with
  | Some _ -> Layout.owned_one obj.a_layout ~nprocs:w.n p
  | None -> Iset.empty

(* Floor division (toward minus infinity); y > 0. *)
let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y)
let cdiv x y = -fdiv (-x) y

(* Solutions in [l, u] of k*p + c <= 0, as an interval. *)
let halfline_le l u k c : (int * int) option =
  if k = 0 then (if c <= 0 then Some (l, u) else None)
  else if k > 0 then
    let b = fdiv (-c) k in
    if b < l then None else Some (l, min u b)
  else
    let b = cdiv c (-k) in
    if b > u then None else Some (max l b, u)

(* First pid in [cl, cu] whose instantiated triplet is non-empty and
   escapes the declared bounds, with that triplet.  The affine path
   covers step 1 and equal-slope endpoints (where the normalized upper
   bound stays affine); other shapes scan. *)
let oob_first cl cu (la, lb) (ha, hb) sb (blo, bhi) : (int * Triplet.t) option
    =
  let mk p = Triplet.make ~lo:((la * p) + lb) ~hi:((ha * p) + hb) ~step:sb in
  if sb = 1 || la = ha then begin
    if la = ha && hb < lb then None  (* empty on every pid *)
    else
      let ha', hb' =
        if sb = 1 then (ha, hb)
        else (la, lb + ((hb - lb) / sb * sb))
      in
      match halfline_le cl cu (la - ha) (lb - hb) with
      | None -> None  (* empty on every pid *)
      | Some (nl, nu) ->
        let lo_v = halfline_le nl nu la (lb - blo + 1) in
        let hi_v = halfline_le nl nu (-ha') (bhi + 1 - hb') in
        let cand =
          match (lo_v, hi_v) with
          | Some (a, _), Some (b, _) -> Some (min a b)
          | Some (a, _), None | None, Some (a, _) -> Some a
          | None, None -> None
        in
        Option.map (fun p -> (p, mk p)) cand
  end
  else begin
    let r = ref None in
    let p = ref cl in
    while !r = None && !p <= cu do
      let t = mk !p in
      if
        (not (Triplet.is_empty t))
        && (Triplet.lo t < blo || Triplet.hi t > bhi)
      then r := Some (!p, t);
      incr p
    done;
    !r
  end

let aff_of (a, b) = { Skeleton.a; b }

let emit_send w act ~loc dest parts tag =
  let n = w.n in
  let what = "send" in
  let vdest = eval w dest in
  let vparts =
    List.map
      (fun (array, section) ->
        (array_obj w array, array, eval_section_vv w section))
      parts
  in
  let nonempty, empty =
    match Hashtbl.find_opt w.send_stats (loc, tag) with
    | Some c -> c
    | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace w.send_stats (loc, tag) c;
      c
  in
  (* per-pid fallback: the dense walk's body, verbatim *)
  let emit_pid p =
    let d = Absdom.int_at vdest p in
    if d = None then Hashtbl.replace w.fuzzy tag ();
    let sparts =
      List.map
        (fun (obj, array, vsec) ->
          let triplets = section_at w ~loc ~what p obj vsec in
          {
            Skeleton.p_array = array;
            p_triplets =
              Option.map
                (List.map (fun t ->
                     ( Skeleton.aff_const (Triplet.lo t),
                       Skeleton.aff_const (Triplet.hi t),
                       Skeleton.aff_const (Triplet.step t) )))
                triplets;
            p_dist_dim = obj.a_layout.Layout.dist_dim;
            p_layout = obj.a_layout;
          })
        vparts
    in
    let provably_empty =
      sparts <> []
      && List.for_all
           (fun sp ->
             match sp.Skeleton.p_triplets with
             | Some tl ->
               List.exists
                 (fun (lo_a, hi_a, _) -> hi_a.Skeleton.b < lo_a.Skeleton.b)
                 tl
             | None -> false)
           sparts
    in
    if provably_empty then incr empty else incr nonempty;
    emit w
      {
        Skeleton.e_plo = p;
        e_phi = p;
        e_loc = loc;
        e_kind =
          Skeleton.Ev_send
            { dest = Option.map Skeleton.aff_const d; tag; parts = sparts };
      }
  in
  (* chunked emission over [cl, cu]: every quantity is one segment *)
  let do_chunk cl cu (segs : Absdom.seg list) =
    let dest_seg, rest =
      match segs with
      | d :: r -> (d, r)
      | [] ->
        Diag.internal ~pass:"verify" "chunked emission with no destination segment"
    in
    (* slice the flattened segment list back into per-part dim triples *)
    let rec split3 vsec segs =
      match vsec with
      | [] -> ([], segs)
      | _ :: tl -> (
        match segs with
        | a :: b :: c :: r ->
          let dims, rest = split3 tl r in
          ((a, b, c) :: dims, rest)
        | _ ->
          Diag.internal ~pass:"verify" "segment list misaligned in chunked emission")
    in
    let pdims, remaining =
      List.fold_left
        (fun (acc, segs) (obj, array, vsec) ->
          let dims, rest = split3 vsec segs in
          ((obj, array, vsec, dims) :: acc, rest))
        ([], rest) vparts
    in
    assert (remaining = []);
    let pdims = List.rev pdims in
    let exotic =
      List.exists
        (fun (_, _, _, dims) ->
          List.exists
            (fun (_, _, sst) ->
              match Absdom.lin_of sst with
              | Some (sa, _) -> sa <> 0
              | None -> false)
            dims)
        pdims
    in
    if exotic then
      for p = cl to cu do
        emit_pid p
      done
    else begin
      let cands = ref [] in
      let dest_a =
        match Absdom.lin_of dest_seg with
        | Some ab -> Some (aff_of ab)
        | None ->
          Hashtbl.replace w.fuzzy tag ();
          None
      in
      let parts_out =
        List.mapi
          (fun pi (obj, array, vsec, dims) ->
            let triplets =
              if List.length vsec <> List.length obj.a_bounds then begin
                cands :=
                  ( cl, pi, -1, "section-rank",
                    Fmt.str "%s section of %s has %d dimensions, array has %d"
                      what obj.a_name (List.length vsec)
                      (List.length obj.a_bounds) )
                  :: !cands;
                None
              end
              else begin
                let dim_res =
                  List.mapi
                    (fun di ((slo, shi, sst), (blo, bhi)) ->
                      match
                        ( Absdom.lin_of slo,
                          Absdom.lin_of shi,
                          Absdom.lin_of sst )
                      with
                      | Some (la, lb), Some (ha, hb), Some (0, sb) ->
                        if sb < 1 then begin
                          cands :=
                            ( cl, pi, di, "bad-section-step",
                              Fmt.str
                                "%s section of %s has step %d (must be \
                                 positive)"
                                what obj.a_name sb )
                            :: !cands;
                          None
                        end
                        else begin
                          (match
                             oob_first cl cu (la, lb) (ha, hb) sb (blo, bhi)
                           with
                          | Some (p, t) ->
                            cands :=
                              ( p, pi, di, what ^ "-out-of-bounds",
                                Fmt.str
                                  "p%d %ss %s(%s) outside the declared \
                                   bounds %d:%d"
                                  p what obj.a_name (Triplet.to_string t) blo
                                  bhi )
                              :: !cands
                          | None -> ());
                          Some (aff_of (la, lb), aff_of (ha, hb), aff_of (0, sb))
                        end
                      | _ -> None)
                    (List.combine dims obj.a_bounds)
                in
                if List.for_all Option.is_some dim_res then
                  Some (List.map Option.get dim_res)
                else None
              end
            in
            {
              Skeleton.p_array = array;
              p_triplets = triplets;
              p_dist_dim = obj.a_layout.Layout.dist_dim;
              p_layout = obj.a_layout;
            })
          pdims
      in
      List.iter
        (fun (p, _, _, kind, msg) -> addf w ~loc ~proc:p Finding.Error kind msg)
        (List.sort compare (List.rev !cands));
      (* dead-send accounting: provably-empty vs anything else *)
      let width = cu - cl + 1 in
      let pe =
        match parts_out with
        | [] -> Iset.empty
        | _ ->
          List.fold_left
            (fun acc sp ->
              let es =
                match sp.Skeleton.p_triplets with
                | None -> Iset.empty
                | Some tl ->
                  List.fold_left
                    (fun acc (lo_a, hi_a, _) ->
                      match
                        halfline_le cl cu
                          (hi_a.Skeleton.a - lo_a.Skeleton.a)
                          (hi_a.Skeleton.b - lo_a.Skeleton.b + 1)
                      with
                      | Some (a, b) -> Iset.union acc (Iset.range a b)
                      | None -> acc)
                    Iset.empty tl
              in
              Iset.inter acc es)
            (Iset.range cl cu) parts_out
      in
      let pec = Iset.count pe in
      empty := !empty + pec;
      nonempty := !nonempty + (width - pec);
      emit w
        {
          Skeleton.e_plo = cl;
          e_phi = cu;
          e_loc = loc;
          e_kind = Skeleton.Ev_send { dest = dest_a; tag; parts = parts_out };
        }
    end
  in
  let vals =
    vdest
    :: List.concat_map
         (fun (_, _, vsec) ->
           List.concat_map (fun (a, b, c) -> [ a; b; c ]) vsec)
         vparts
  in
  let chunks = Absdom.align_many ~n vals in
  Iset.fold_intervals
    (fun () alo ahi ->
      List.iter
        (fun (cl, cu, segs) ->
          let l = max cl alo and u = min cu ahi in
          if l <= u then do_chunk l u segs)
        chunks)
    () act

(* Arrays in scope at a statement, under their LOCAL names (a formal
   aliases the caller's array but messages refer to the formal). *)
let visible_arrays w =
  let acc = Hashtbl.create 8 in
  Hashtbl.iter
    (fun name b -> match b with Barray o -> Hashtbl.replace acc name o | _ -> ())
    w.globals;
  Hashtbl.iter
    (fun name b -> match b with Barray o -> Hashtbl.replace acc name o | _ -> ())
    (current_frame w);
  Hashtbl.fold (fun name o l -> (name, o) :: l) acc []

let emit_recv w act ~loc src tag =
  let n = w.n in
  let vsrc = eval w src in
  let snaps =
    List.map
      (fun (name, obj) ->
        {
          Skeleton.ra_name = name;
          ra_dist_dim = obj.a_layout.Layout.dist_dim;
          ra_layout = obj.a_layout;
        })
      (visible_arrays w)
  in
  Iset.fold_intervals
    (fun () alo ahi ->
      List.iter
        (fun (cl, cu, s) ->
          let src_a =
            match Absdom.lin_of s with
            | Some ab -> Some (aff_of ab)
            | None ->
              Hashtbl.replace w.fuzzy tag ();
              None
          in
          emit w
            {
              Skeleton.e_plo = cl;
              e_phi = cu;
              e_loc = loc;
              e_kind = Skeleton.Ev_recv { src = src_a; tag; arrays = snaps };
            })
        (Absdom.restrict ~n vsrc (alo, ahi)))
    () act

(* A collective reached by only part of the ensemble: the rest of the
   processors never join, which is the scheduler's deadlock-at-site.
   The event is NOT emitted (the skeleton would only cascade). *)
let collective_act_ok w act ~loc ~site ~label =
  if all_active w act then true
  else begin
    let sev = if w.uncertain > 0 then Finding.Warning else Finding.Error in
    let qualifier =
      if w.uncertain > 0 then
        " (under control flow the analysis could not fully resolve)"
      else ""
    in
    addf w ~loc ~site sev "collective-divergence"
      (Fmt.str
         "collective site %d (%s) is reached by only %d of %d processors \
          (missing: %s)%s — the ensemble deadlocks at this site"
         site label (active_count act) w.n
         (String.concat ", "
            (List.map (fun p -> Fmt.str "p%d" p) (missing_procs w act)))
         qualifier);
    false
  end

(* One event spanning the whole ensemble — collectives only reach the
   emitter when every processor participates. *)
let emit_coll w ~loc ~site ~label ~root payload =
  let id = w.next_id in
  w.next_id <- w.next_id + 1;
  emit w
    {
      Skeleton.e_plo = 0;
      e_phi = w.n - 1;
      e_loc = loc;
      e_kind = Skeleton.Ev_coll { id; site; label; root; payload };
    }

let do_bcast w act ~loc root payload site =
  let vroot = eval w root in
  let root_id = Absdom.uniform_int vroot in
  (match root_id with
  | Some _ -> ()
  | None ->
    if
      (not (Absdom.is_uniform vroot)) && not (Absdom.has_punk ~n:w.n vroot)
    then
      addf w ~loc ~site Finding.Error "bcast-root-divergence"
        "processors disagree on the broadcast root"
    else
      addf w ~loc ~site Finding.Info "unverified-collective"
        (Fmt.str "broadcast root at site %d could not be resolved statically"
           site));
  match payload with
  | Node.P_scalar name ->
    let cell = scalar_cell w name in
    (* after the broadcast every processor holds the root's value *)
    let v =
      match root_id with
      | Some r -> Absdom.Uni (Absdom.at !cell r)
      | None -> (
        match !cell with
        | Absdom.Uni _ as u -> u
        | Absdom.Runs _ -> Absdom.unknown)
    in
    cell := (if w.uncertain > 0 then Absdom.join ~n:w.n !cell v else v);
    if collective_act_ok w act ~loc ~site ~label:name then
      emit_coll w ~loc ~site ~label:name ~root:root_id (Skeleton.Cp_scalar name)
  | Node.P_section (array, section) ->
    let obj = array_obj w array in
    let triplets =
      match root_id with
      | Some r ->
        section_at w ~loc ~what:"broadcast" r obj (eval_section_vv w section)
      | None -> None
    in
    if triplets = None && root_id <> None then
      addf w ~loc ~site Finding.Info "unverified-collective"
        (Fmt.str "broadcast payload %s at site %d could not be resolved \
                  statically" array site);
    if collective_act_ok w act ~loc ~site ~label:array then
      emit_coll w ~loc ~site ~label:array ~root:root_id
        (Skeleton.Cp_section
           {
             cs_array = array;
             cs_triplets = triplets;
             cs_dist_dim = obj.a_layout.Layout.dist_dim;
             cs_owned_root =
               (match root_id with
               | Some r -> owned_at w obj r
               | None -> Iset.empty);
           })

let do_remap w act ~loc array new_layout move site =
  let obj = array_obj w array in
  let old_layout = obj.a_layout in
  (* well-formedness of the target layout *)
  let ok = ref true in
  if new_layout.Layout.bounds <> obj.a_bounds then begin
    ok := false;
    addf w ~loc ~site Finding.Error "remap-malformed"
      (Fmt.str "remap of %s changes the declared bounds" array)
  end;
  (match new_layout.Layout.dist_dim with
  | Some d when d < 0 || d >= List.length obj.a_bounds ->
    ok := false;
    addf w ~loc ~site Finding.Error "remap-malformed"
      (Fmt.str "remap of %s distributes dimension %d of a rank-%d array"
         array d (List.length obj.a_bounds))
  | _ -> ());
  (match new_layout.Layout.dist with
  | Layout.Block b when b < 1 ->
    ok := false;
    addf w ~loc ~site Finding.Error "remap-malformed"
      (Fmt.str "remap of %s uses block size %d" array b)
  | Layout.Block_cyclic b when b < 1 ->
    ok := false;
    addf w ~loc ~site Finding.Error "remap-malformed"
      (Fmt.str "remap of %s uses block-cyclic size %d" array b)
  | _ -> ());
  if !ok then obj.a_layout <- new_layout;
  if collective_act_ok w act ~loc ~site ~label:array then
    emit_coll w ~loc ~site ~label:array ~root:None
      (Skeleton.Cp_remap
         { cr_array = array; cr_old = old_layout; cr_new = obj.a_layout;
           cr_move = move })

(* --- statements ------------------------------------------------------- *)

(* [walk_seq w act stmts] returns the mask of processors still live
   (act minus those that executed RETURN). *)
let rec walk_seq w (act : Iset.t) stmts : Iset.t =
  let live = ref act in
  List.iter
    (fun s -> if any_active !live then live := walk_stmt w !live s)
    stmts;
  !live

and walk_stmt w (act : Iset.t) (s : Node.nstmt) : Iset.t =
  burn w;
  match s with
  | Node.N_assign (lhs, rhs) ->
    do_assign w act lhs rhs;
    act
  | Node.N_print _ -> act
  | Node.N_return -> Iset.empty
  | Node.N_send { dest; parts; tag; loc } ->
    emit_send w act ~loc dest parts tag;
    act
  | Node.N_recv { src; tag; loc } ->
    emit_recv w act ~loc src tag;
    act
  | Node.N_bcast { root; payload; site; loc } ->
    do_bcast w act ~loc root payload site;
    act
  | Node.N_remap { array; new_layout; move; site; loc } ->
    do_remap w act ~loc array new_layout move site;
    act
  | Node.N_call (name, args) ->
    walk_call w act name args;
    act
  | Node.N_if { cond; then_; else_; loc } -> walk_if w act ~loc cond then_ else_
  | Node.N_do { var; lo; hi; step; body } ->
    walk_do w act var lo hi step body

and walk_call w act name args =
  let np =
    match Node.find_proc w.prog name with
    | Some np -> np
    | None -> raise (Stuck (Fmt.str "call to unknown node procedure %s" name))
  in
  if List.length args <> List.length np.Node.np_formals then
    raise (Stuck (Fmt.str "node procedure %s arity mismatch" name));
  let frame : frame = Hashtbl.create 16 in
  List.iter2
    (fun formal actual ->
      let binding =
        match actual with
        | Ast.Var v -> lookup w v
        | e -> Bscalar (ref (eval w e))
      in
      Hashtbl.replace frame formal binding)
    np.Node.np_formals args;
  let is_common nm = Hashtbl.mem w.globals nm in
  List.iter
    (fun (ad : Node.array_decl) ->
      if (not (List.mem ad.Node.ad_name np.Node.np_formals))
         && not (is_common ad.Node.ad_name)
      then Hashtbl.replace frame ad.Node.ad_name (Barray (alloc_aobj ad)))
    np.Node.np_arrays;
  List.iter
    (fun (v, ty) ->
      if (not (List.mem v np.Node.np_formals))
         && (not (Hashtbl.mem frame v))
         && not (is_common v)
      then Hashtbl.replace frame v (Bscalar (ref (zero_of ty))))
    np.Node.np_scalars;
  w.frames <- frame :: w.frames;
  let _live = walk_seq w act np.Node.np_body in
  w.frames <- List.tl w.frames

and walk_if w act ~loc cond then_ else_ : Iset.t =
  let vc = eval w cond in
  match Absdom.truth ~n:w.n ~act vc with
  | Absdom.T_true -> walk_seq w act then_
  | Absdom.T_false -> walk_seq w act else_
  | Absdom.T_unknown_uniform -> (
    (* unknown but processor-uniform: both branches possible, all
       processors take the same one — collectives inside stay congruent.
       A branch oracle (sequential profile, cost analysis) can decide
       the instance; without one both branches become a region. *)
    match Option.bind w.oracle (fun f -> f loc) with
    | Some true -> walk_seq w act then_
    | Some false -> walk_seq w act else_
    | None ->
      walk_branches_as_regions w act ~loc ~divergent:false then_ else_;
      act)
  | Absdom.T_split (act_t, act_e) ->
    let live_t = if any_active act_t then walk_seq w act_t then_ else act_t in
    let live_e = if any_active act_e then walk_seq w act_e else_ else act_e in
    Iset.union live_t live_e
  | Absdom.T_divergent ->
    (* processors genuinely disagree and we cannot tell which way:
       collective congruence inside is unverifiable *)
    walk_branches_as_regions w act ~loc ~divergent:true then_ else_;
    act

and walk_branches_as_regions w act ~loc ~divergent then_ else_ =
  let evs_t = walk_region w act then_ in
  let evs_e = walk_region w act else_ in
  record_region w ~if_loc:loc ~divergent ~then_:evs_t ~else_:evs_e;
  finish_regions w ~divergent [ evs_t; evs_e ]

(* Every region instance is recorded, even when both branches are
   comm-free, so per-IF-site profile decisions stay aligned with the
   walk order. *)
and record_region w ~if_loc ~divergent ~then_ ~else_ =
  w.regions <-
    {
      rg_if_loc = if_loc;
      rg_pos = List.length !(w.buf);
      rg_then = then_;
      rg_else = else_;
      rg_divergent = divergent;
      rg_nested = w.uncertain > 0;
    }
    :: w.regions

(* Walk [stmts] once with weak scalar updates, capturing its events. *)
and walk_region w act stmts : Skeleton.event list =
  let saved = w.buf in
  let buf = ref [] in
  w.buf <- buf;
  w.uncertain <- w.uncertain + 1;
  Fun.protect
    ~finally:(fun () ->
      w.uncertain <- w.uncertain - 1;
      w.buf <- saved)
    (fun () -> ignore (walk_seq w act stmts));
  List.rev !buf

(* Post-process regions: their p2p tags become unverifiable (excluded
   from hard deadlock verdicts), each region is matched in isolation at
   Info severity, a divergent region containing collectives is the
   "divergent-branch collective" warning, and any data the region may
   have delivered is assumed received so later sends are not falsely
   flagged. *)
and finish_regions w ~divergent (regions : Skeleton.event list list) =
  let all = List.concat regions in
  if all <> [] then begin
    let p2p = ref false in
    List.iter
      (fun (ev : Skeleton.event) ->
        match ev.Skeleton.e_kind with
        | Skeleton.Ev_send { tag; _ } | Skeleton.Ev_recv { tag; _ } ->
          p2p := true;
          Hashtbl.replace w.fuzzy tag ()
        | _ -> ())
      all;
    (* divergent-branch collectives: report every site, with both
       branches' locations *)
    if divergent then begin
      let sites = Hashtbl.create 4 in
      List.iter
        (fun (ev : Skeleton.event) ->
          match ev.Skeleton.e_kind with
          | Skeleton.Ev_coll { site; label; _ } ->
            if not (Hashtbl.mem sites site) then
              Hashtbl.replace sites site (label, ev.Skeleton.e_loc)
          | _ -> ())
        all;
      let listed =
        Hashtbl.fold
          (fun site (label, loc) acc ->
            Fmt.str "site %d (%s)%s" site label
              (if loc <> Loc.none then Fmt.str " [%a]" Loc.pp loc else "")
            :: acc)
          sites []
      in
      if listed <> [] then
        let loc =
          List.find_map
            (fun (ev : Skeleton.event) ->
              match ev.Skeleton.e_kind with
              | Skeleton.Ev_coll _ when ev.Skeleton.e_loc <> Loc.none ->
                Some ev.Skeleton.e_loc
              | _ -> None)
            all
        in
        addf w ?loc ?site:None Finding.Warning "collective-divergence"
          (Fmt.str
             "collective(s) under processor-divergent control flow: %s — \
              congruence cannot be verified"
             (String.concat ", " (List.sort compare listed)))
    end;
    (* self-check each branch in isolation, degraded to Info *)
    List.iter
      (fun evs ->
        if evs <> [] && !p2p then
          w.findings <-
            Skeleton.run ~nprocs:w.n ~degrade:true evs @ w.findings)
      regions;
    (* assume the region's deliveries happened: the union of the
       distributed-dimension elements over the event's pid interval
       (exact up to 4096 senders, a contiguous hull beyond — the
       assume only ever *suppresses* later warnings) *)
    let span_elems ((lo_a, hi_a, st_a) as tr) ~plo ~phi =
      if
        lo_a.Skeleton.a = 0 && hi_a.Skeleton.a = 0 && st_a.Skeleton.a = 0
      then Iset.of_triplet (Skeleton.triplet_at tr plo)
      else if phi - plo < 4096 then
        List.fold_left
          (fun acc p -> Iset.union acc (Iset.of_triplet (Skeleton.triplet_at tr p)))
          Iset.empty
          (List.init (phi - plo + 1) (fun i -> plo + i))
      else
        let lo1 = Skeleton.aff_at lo_a plo and lo2 = Skeleton.aff_at lo_a phi in
        let hi1 = Skeleton.aff_at hi_a plo and hi2 = Skeleton.aff_at hi_a phi in
        let l = min lo1 lo2 and h = max hi1 hi2 in
        if l > h then Iset.empty else Iset.range l h
    in
    List.iter
      (fun (ev : Skeleton.event) ->
        let assume array elems =
          if not (Iset.is_empty elems) then
            emit w
              {
                Skeleton.e_plo = 0;
                e_phi = 0;
                e_loc = ev.Skeleton.e_loc;
                e_kind = Skeleton.Ev_assume { array; elems };
              }
        in
        match ev.Skeleton.e_kind with
        | Skeleton.Ev_send { parts; _ } ->
          List.iter
            (fun (sp : Skeleton.part) ->
              match (sp.Skeleton.p_triplets, sp.Skeleton.p_dist_dim) with
              | Some tl, Some d when List.length tl > d ->
                assume sp.Skeleton.p_array
                  (span_elems (List.nth tl d) ~plo:ev.Skeleton.e_plo
                     ~phi:ev.Skeleton.e_phi)
              | _ -> ())
            parts
        | Skeleton.Ev_coll
            { payload =
                Skeleton.Cp_section
                  { cs_array; cs_triplets = Some tl; cs_dist_dim = Some d; _ };
              _;
            }
          when List.length tl > d ->
          assume cs_array (Iset.of_triplet (List.nth tl d))
        | _ -> ())
      all;
    let loc =
      List.find_map
        (fun (ev : Skeleton.event) ->
          if ev.Skeleton.e_loc <> Loc.none then Some ev.Skeleton.e_loc
          else None)
        all
    in
    addf w ?loc Finding.Info "unverified-region"
      "communication under statically-unresolved control flow was matched \
       in isolation only"
  end

and walk_do w act var lo hi step body : Iset.t =
  let n = w.n in
  let has_comm = stmts_have_comm w body in
  let vlo = eval w lo and vhi = eval w hi in
  let vst =
    match step with None -> Absdom.Uni (Absdom.Pint 1) | Some e -> eval w e
  in
  let divergent_bounds =
    not
      (Absdom.is_uniform vlo && Absdom.is_uniform vhi
     && Absdom.is_uniform vst)
  in
  if not has_comm then begin
    (* communication-free loops are skipped entirely — the analysis only
       cares about the communication skeleton.  Scalars the body could
       write are forgotten; they diverge if the body mentions my$p, the
       bounds differ across processors, or the mask is partial. *)
    let divergent =
      divergent_bounds
      || stmts_mention_divergence body
      || not (all_active w act)
    in
    havoc_scalars w act ~divergent (var :: assigned_scalars w body);
    act
  end
  else begin
    let known =
      Iset.inter
        (Absdom.int_pids ~n vlo)
        (Iset.inter (Absdom.int_pids ~n vhi) (Absdom.int_pids ~n vst))
    in
    if Iset.subset act known then begin
      let zero_pids =
        Iset.of_intervals
          (List.filter_map
             (fun (l, u, s) ->
               match s with
               | Absdom.Sconst (Absdom.Pint 0) -> Some (l, u)
               | Absdom.Sconst _ -> None
               | Absdom.Saff { a; b } ->
                 if b mod a = 0 then
                   let p = -b / a in
                   if p >= l && p <= u then Some (p, p) else None
                 else None)
             (Absdom.segs_of ~n vst))
      in
      if not (Iset.disjoint act zero_pids) then begin
        addf w Finding.Error "zero-do-step"
          (Fmt.str "DO %s has a zero step" var);
        act
      end
      else begin
        (* ordinal-lockstep unrolling: iteration k runs simultaneously on
           every processor still in range — the SPMD execution model.
           Membership tests are interval-set algebra, O(#segments). *)
        let cell = scalar_cell w var in
        let zero = Absdom.Uni (Absdom.Pint 0) in
        let pos = true_pids w ~act (Absdom.app2 ~n Absdom.Gt vst zero) in
        let vk k =
          Absdom.app2 ~n Absdom.Add vlo
            (Absdom.app2 ~n Absdom.Mul (Absdom.Uni (Absdom.Pint k)) vst)
        in
        let in_range live v =
          let le = true_pids w ~act:live (Absdom.app2 ~n Absdom.Le v vhi) in
          let ge = true_pids w ~act:live (Absdom.app2 ~n Absdom.Ge v vhi) in
          Iset.union (Iset.inter pos le) (Iset.inter (Iset.diff live pos) ge)
        in
        let live = ref act in
        let k = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let v = vk !k in
          let act_k = in_range !live v in
          if Iset.is_empty act_k then continue_ := false
          else begin
            burn w;
            cell := Absdom.blend ~n ~act:act_k !cell v;
            let live_k = walk_seq w act_k body in
            (* processors that RETURNed during this iteration stay out *)
            live := Iset.union (Iset.diff !live act_k) live_k;
            incr k
          end
        done;
        !live
      end
    end
    else begin
      (* comm under statically-unknown trip counts: walk one symbolic
         iteration as a region *)
      havoc_scalars w act ~divergent:divergent_bounds [ var ];
      let evs = walk_region w act body in
      record_region w ~if_loc:Loc.none ~divergent:divergent_bounds ~then_:evs
        ~else_:[];
      finish_regions w ~divergent:divergent_bounds [ evs ];
      act
    end
  end

(* --- entry ------------------------------------------------------------ *)

let fuel_budget = 1_000_000

let no_program msg =
  {
    events = [];
    findings =
      [
        Finding.make Finding.Error "invalid-node-program"
          ("the node program is not executable: " ^ msg);
      ];
    fuzzy_tags = Hashtbl.create 1;
    complete = false;
    visits = 0;
    regions = [];
  }

let walk_main ?budget ?branch_oracle ~nprocs (prog : Node.program)
    (main : Node.nproc) : result =
  let buf = ref [] in
  let w =
    {
      n = nprocs;
      prog;
      oracle = branch_oracle;
      budget = Option.map Budget.start budget;
      globals = Hashtbl.create 8;
      frames = [];
      fuel = fuel_budget;
      uncertain = 0;
      buf;
      next_id = 0;
      findings = [];
      fuzzy = Hashtbl.create 8;
      send_stats = Hashtbl.create 16;
      comm_memo = Hashtbl.create 8;
      finding_seen = Hashtbl.create 16;
      regions = [];
    }
  in
  let frame : frame = Hashtbl.create 16 in
  List.iter
    (fun (ad : Node.array_decl) ->
      Hashtbl.replace w.globals ad.Node.ad_name (Barray (alloc_aobj ad)))
    prog.Node.n_common_arrays;
  List.iter
    (fun (v, ty) -> Hashtbl.replace w.globals v (Bscalar (ref (zero_of ty))))
    prog.Node.n_common_scalars;
  List.iter
    (fun (ad : Node.array_decl) ->
      if not (Hashtbl.mem w.globals ad.Node.ad_name) then
        Hashtbl.replace frame ad.Node.ad_name (Barray (alloc_aobj ad)))
    main.Node.np_arrays;
  List.iter
    (fun (v, ty) ->
      if not (Hashtbl.mem w.globals v) then
        Hashtbl.replace frame v (Bscalar (ref (zero_of ty))))
    main.Node.np_scalars;
  w.frames <- [ frame ];
  let act = Iset.range 0 (nprocs - 1) in
  let complete =
    try
      ignore (walk_seq w act main.Node.np_body);
      true
    with
    | Truncated ->
      w.findings <-
        Finding.make Finding.Info "analysis-truncated"
          (Fmt.str
             "static analysis budget (%d statement visits) exhausted; \
              communication matching was skipped"
             fuel_budget)
        :: w.findings;
      false
    | Stuck msg ->
      w.findings <-
        Finding.make Finding.Error "invalid-node-program"
          ("the node program is not executable: " ^ msg)
        :: w.findings;
      false
    | Budget_out reason ->
      w.findings <-
        Finding.make Finding.Info "budget-exhausted"
          (reason ^ "; the remaining region is unverified")
        :: w.findings;
      false
  in
  (* dead-send lint: a send statement that never carries an element for
     any processor on any visit *)
  Hashtbl.iter
    (fun (loc, tag) (nonempty, empty) ->
      if !empty > 0 && !nonempty = 0 then
        addf w ~loc ~tag Finding.Warning "empty-send"
          (Fmt.str
             "send {tag %d} carries no elements for any processor (dead \
              communication)" tag))
    w.send_stats;
  {
    events = List.rev !(w.buf);
    findings = w.findings;
    fuzzy_tags = w.fuzzy;
    complete;
    visits = fuel_budget - w.fuel;
    regions = List.rev w.regions;
  }

let walk ?budget ?branch_oracle ~nprocs (prog : Node.program) : result =
  match Node.find_proc prog prog.Node.n_main with
  | None -> no_program (Fmt.str "no main node program %s" prog.Node.n_main)
  | Some main -> (
    try walk_main ?budget ?branch_oracle ~nprocs prog main
    with Stuck msg -> no_program msg)
