(* Deterministic fault pragmas for negative examples.

   A Fortran D source may carry [!break: <directive>] comment lines
   (inert to the parser).  After code generation the driver applies the
   directives as node-program mutations, so the static verifier and the
   simulator both see the SAME broken program — which is what makes the
   differential soundness oracle (test_verify) directly testable.

   Directives:
   - [divergent-collective]: guard the first collective with
     [if (my$p /= 0)] — part of the ensemble never reaches the site;
   - [mismatch-tag]: bump the first recv's tag so no send matches;
   - [oob-send]: stretch the first send section past the declared
     bounds;
   - [empty-send]: clone the first send/recv exchange on a fresh tag
     with the payload section emptied to 2:1 — a well-paired message
     that provably carries nothing (dead communication, but the
     program still runs clean). *)

open Fd_frontend
open Fd_machine

let scan (source : string) : string list =
  let prefix = "!break:" in
  String.split_on_char '\n' source
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if String.length line > String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
         then
           Some
             (String.trim
                (String.sub line (String.length prefix)
                   (String.length line - String.length prefix)))
         else None)

(* Splice a replacement sequence in place of the first statement
   (preorder, procedures in program order) for which [f] returns one. *)
let rewrite_first_seq (f : Node.nstmt -> Node.nstmt list option)
    (prog : Node.program) : Node.program option =
  let hit = ref false in
  let rec stmt s =
    if !hit then [ s ]
    else
      match f s with
      | Some ss ->
        hit := true;
        ss
      | None -> (
        match s with
        | Node.N_do d ->
          [ Node.N_do { d with body = List.concat_map stmt d.body } ]
        | Node.N_if { cond; then_; else_; loc } ->
          let then_ = List.concat_map stmt then_ in
          let else_ = List.concat_map stmt else_ in
          [ Node.N_if { cond; then_; else_; loc } ]
        | s -> [ s ])
  in
  let procs =
    List.map
      (fun np ->
        { np with Node.np_body = List.concat_map stmt np.Node.np_body })
      prog.Node.n_procs
  in
  if !hit then Some { prog with Node.n_procs = procs } else None

let rewrite_first (f : Node.nstmt -> Node.nstmt option) prog =
  rewrite_first_seq (fun s -> Option.map (fun s' -> [ s' ]) (f s)) prog

let guard_not_root s =
  Node.N_if
    {
      cond = Ast.Bin (Ast.Ne, Ast.Var "my$p", Ast.Int_const 0);
      then_ = [ s ];
      else_ = [];
      loc = Fd_support.Loc.none;
    }

let apply_one prog = function
  | "divergent-collective" ->
    rewrite_first
      (function
        | (Node.N_bcast _ | Node.N_remap _) as s -> Some (guard_not_root s)
        | _ -> None)
      prog
  | "mismatch-tag" ->
    rewrite_first
      (function
        | Node.N_recv { src; tag; loc } ->
          Some (Node.N_recv { src; tag = tag + 1_000_000; loc })
        | _ -> None)
      prog
  | "oob-send" ->
    rewrite_first
      (function
        | Node.N_send { dest; parts = (a, (lo, hi, st) :: dims) :: rest; tag; loc } ->
          let hi = Ast.Bin (Ast.Add, hi, Ast.Int_const 1000) in
          Some
            (Node.N_send
               { dest; parts = (a, (lo, hi, st) :: dims) :: rest; tag; loc })
        | _ -> None)
      prog
  | "empty-send" ->
    (* Clone the first exchange onto a fresh tag with an empty payload.
       The clones sit right after the originals, under the same owner
       guards, so the dead message still pairs up and the program runs
       clean — it just ships nothing. *)
    let bump = 500_000 in
    let sent_tag = ref None in
    Option.bind
      (rewrite_first_seq
         (function
           | Node.N_send { dest; parts = (a, _ :: dims) :: rest; tag; loc }
             as s ->
             sent_tag := Some tag;
             let dim = (Ast.Int_const 2, Ast.Int_const 1, Ast.Int_const 1) in
             Some
               [
                 s;
                 Node.N_send
                   { dest; parts = (a, dim :: dims) :: rest;
                     tag = tag + bump; loc };
               ]
           | _ -> None)
         prog)
      (rewrite_first_seq (function
        | Node.N_recv { src; tag; loc } as s when Some tag = !sent_tag ->
          Some [ s; Node.N_recv { src; tag = tag + bump; loc } ]
        | _ -> None))
  | _ -> None

(* Apply every directive; returns the mutated program and the
   directives that failed to apply (unknown name or no matching
   statement), so tests can fail loudly instead of silently passing. *)
let apply (prog : Node.program) (directives : string list) :
    Node.program * string list =
  List.fold_left
    (fun (prog, failed) d ->
      match apply_one prog d with
      | Some prog' -> (prog', failed)
      | None -> (prog, d :: failed))
    (prog, []) directives
