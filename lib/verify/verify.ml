(* Entry points of the static SPMD communication verifier.

   [check_node] = abstract walk (Absint) + skeleton replay (Skeleton):
   the static counterpart of actually running the program under the
   simulator.  [Lint.run] covers the source level; the driver combines
   both for [fdc check]. *)

open Fd_machine

type result = {
  findings : Finding.t list;
  visits : int;  (* statements the abstract walk visited (bench E13) *)
  events : int;  (* skeleton events replayed *)
  complete : bool;
      (* the walk covered the whole program (no budget cutoff), so the
         replay verdicts are meaningful; surfaces as the JSON envelope's
         "partial" flag *)
}

let check_node ?budget ~nprocs (prog : Node.program) : result =
  let r = Absint.walk ?budget ~nprocs prog in
  let skel_findings =
    if r.Absint.complete then
      Skeleton.run ~nprocs ~fuzzy_tags:r.Absint.fuzzy_tags r.Absint.events
    else []
  in
  {
    findings = Finding.sort (skel_findings @ r.Absint.findings);
    visits = r.Absint.visits;
    events = List.length r.Absint.events;
    complete = r.Absint.complete;
  }

(* Exit-code discipline shared with fdc: errors always fail; [--strict]
   also fails on warnings.  Info findings never affect the exit code. *)
let exit_code ~strict findings =
  let e, w, _ = Finding.counts findings in
  if e > 0 then 1 else if strict && w > 0 then 1 else 0
