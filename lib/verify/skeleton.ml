(* The communication skeleton: the residue of a node program after the
   abstract interpreter (Absint) strips away computation, leaving one
   event list per processor.  This module replays that skeleton with an
   abstract scheduler that mirrors Fd_machine.Scheduler:

   - point-to-point sends queue on (src, dest, tag) channels; a recv
     blocks until a matching message is queued;
   - collectives barrier on their emission id (the walker emits one id
     per dynamic collective instance, covering the full ensemble);
   - when no processor can make progress and some are unfinished, that
     is a static deadlock — reported with the same wait-for graph and
     cycle extraction as the dynamic scheduler's Deadlock error.

   Payload validity is checked in causal order, mirroring the storage
   model: an element may be sent only if the sender owns it or has
   received it earlier (Storage.Invalid_read otherwise), and a remap
   invalidates everything previously received for that array. *)

open Fd_support

type part = {
  p_array : string;
  p_triplets : Triplet.t list option;  (* None: section not evaluable *)
  p_dist_dim : int option;
  p_owned : Iset.t;  (* sender's owned set (dist dim) at emission *)
}

type recv_array = {
  ra_name : string;
  ra_dist_dim : int option;
  ra_owned : Iset.t;  (* receiver's owned set (dist dim) at emission *)
}

type coll_payload =
  | Cp_scalar of string
  | Cp_section of {
      cs_array : string;
      cs_triplets : Triplet.t list option;  (* evaluated at the root *)
      cs_dist_dim : int option;
      cs_owned_root : Iset.t;
    }
  | Cp_remap of string

type kind =
  | Ev_send of { dest : int option; tag : int; parts : part list }
  | Ev_recv of { src : int option; tag : int; arrays : recv_array list }
  | Ev_coll of { id : int; site : int; label : string; root : int option;
                 payload : coll_payload }
  | Ev_assume of { array : string; elems : Iset.t }
      (* data conservatively assumed delivered by communication inside a
         region the walker could not verify: grows every processor's
         received set so later sends are not falsely flagged *)

type event = { e_proc : int; e_kind : kind; e_loc : Loc.t }

(* ---------------------------------------------------------------------- *)

type chan_msg = { m_src : int; m_parts : part list; m_loc : Loc.t }

type st = {
  n : int;
  degrade : bool;  (* region self-check: cap every severity at Info *)
  fuzzy : (int, unit) Hashtbl.t;  (* tags with unverifiable endpoints *)
  received : (int * string, Iset.t ref) Hashtbl.t;
  chans : (int * int * int, chan_msg Queue.t) Hashtbl.t;  (* src,dest,tag *)
  wild : (int, chan_msg Queue.t) Hashtbl.t;  (* unknown-dest sends, by tag *)
  mutable findings : Finding.t list;
  redundant_seen : (Loc.t, unit) Hashtbl.t;
}

let add st ?loc ?proc ?tag ?site sev kind msg =
  let sev = if st.degrade then Finding.Info else sev in
  st.findings <- Finding.make ?loc ?proc ?tag ?site sev kind msg :: st.findings

let received st p array =
  match Hashtbl.find_opt st.received (p, array) with
  | Some r -> r
  | None ->
    let r = ref Iset.empty in
    Hashtbl.replace st.received (p, array) r;
    r

let chan st key =
  match Hashtbl.find_opt st.chans key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace st.chans key q;
    q

let wild_chan st tag =
  match Hashtbl.find_opt st.wild tag with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace st.wild tag q;
    q

let dist_elems part =
  match (part.p_triplets, part.p_dist_dim) with
  | Some tl, Some d when List.length tl > d ->
    Some (Iset.of_triplet (List.nth tl d))
  | _ -> None

let process_send st p loc (dest : int option) tag parts =
  List.iter
    (fun part ->
      if part.p_triplets = None then Hashtbl.replace st.fuzzy tag ();
      match dist_elems part with
      | Some elems ->
        let valid = Iset.union part.p_owned !(received st p part.p_array) in
        if not (Iset.subset elems valid) then
          add st ~loc ~proc:p ~tag Finding.Error "send-unowned-data"
            (Fmt.str
               "p%d sends %s elements %s in the distributed dimension that it \
                neither owns nor has received"
               p part.p_array
               (Iset.to_string (Iset.diff elems valid)))
      | None -> ())
    parts;
  let msg = { m_src = p; m_parts = parts; m_loc = loc } in
  match dest with
  | Some d -> Queue.add msg (chan st (p, d, tag))
  | None ->
    Hashtbl.replace st.fuzzy tag ();
    Queue.add msg (wild_chan st tag)

(* Find a queued message for a recv at processor [p]. *)
let match_recv st p (src : int option) tag : chan_msg option =
  let take q = if Queue.is_empty q then None else Some (Queue.pop q) in
  let from_wild () =
    match Hashtbl.find_opt st.wild tag with
    | Some q -> take q
    | None -> None
  in
  match src with
  | Some s -> (
    match Hashtbl.find_opt st.chans (s, p, tag) with
    | Some q when not (Queue.is_empty q) -> take q
    | _ -> from_wild ())
  | None -> (
    Hashtbl.replace st.fuzzy tag ();
    let found = ref None in
    Hashtbl.iter
      (fun (_, d, t) q ->
        if !found = None && d = p && t = tag && not (Queue.is_empty q) then
          found := take q)
      st.chans;
    match !found with Some _ as m -> m | None -> from_wild ())

let apply_recv st p recv_loc (arrays : recv_array list) (msg : chan_msg) tag =
  let all_known = ref true and all_owned = ref true and has_dist = ref false in
  List.iter
    (fun part ->
      match dist_elems part with
      | Some elems -> (
        has_dist := true;
        match List.find_opt (fun ra -> ra.ra_name = part.p_array) arrays with
        | None ->
          all_owned := false;
          add st ~loc:msg.m_loc ~proc:p ~tag Finding.Error "recv-unknown-array"
            (Fmt.str "message stores into %s, which is not visible at the \
                      receiving processor p%d" part.p_array p)
        | Some ra ->
          if not (Iset.subset elems ra.ra_owned) then all_owned := false;
          let r = received st p part.p_array in
          r := Iset.union !r elems)
      | None -> all_known := false)
    msg.m_parts;
  if !all_known && !has_dist && !all_owned
     && not (Hashtbl.mem st.redundant_seen recv_loc)
  then begin
    Hashtbl.replace st.redundant_seen recv_loc ();
    add st ~loc:recv_loc ~proc:p ~tag Finding.Warning "redundant-recv"
      (Fmt.str "p%d receives only elements it already owns (message from p%d)"
         p msg.m_src)
  end

let apply_coll st (evs : event array) =
  (* All processors are parked at the same emission; the walker
     guarantees structural agreement, so consult processor 0's copy. *)
  match evs.(0).e_kind with
  | Ev_coll { root; payload; site; _ } -> (
    let loc = evs.(0).e_loc in
    match payload with
    | Cp_scalar _ -> ()
    | Cp_remap array ->
      for p = 0 to st.n - 1 do
        received st p array := Iset.empty
      done
    | Cp_section { cs_array; cs_triplets; cs_dist_dim; cs_owned_root } -> (
      match (cs_triplets, cs_dist_dim, root) with
      | Some tl, Some d, Some r when List.length tl > d ->
        let elems = Iset.of_triplet (List.nth tl d) in
        let valid = Iset.union cs_owned_root !(received st r cs_array) in
        if not (Iset.subset elems valid) then
          add st ~loc ~proc:r ~site Finding.Error "bcast-unowned-data"
            (Fmt.str
               "broadcast root p%d sends %s elements %s it neither owns nor \
                has received"
               r cs_array
               (Iset.to_string (Iset.diff elems valid)));
        for p = 0 to st.n - 1 do
          let rc = received st p cs_array in
          rc := Iset.union !rc elems
        done
      | _ -> ()))
  | _ -> assert false

(* --- deadlock reporting (mirrors Scheduler.wait_for_graph) ------------ *)

let find_cycle edges n =
  (* DFS cycle extraction, as in the dynamic scheduler. *)
  let state = Array.make n 0 in
  (* 0 white, 1 gray, 2 black *)
  let cycle = ref None in
  let rec dfs path p =
    if !cycle = None then
      match state.(p) with
      | 1 ->
        let rec upto acc = function
          | [] -> acc
          | q :: _ when q = p -> q :: acc
          | q :: rest -> upto (q :: acc) rest
        in
        cycle := Some (upto [] path)
      | 2 -> ()
      | _ ->
        state.(p) <- 1;
        List.iter (dfs (p :: path)) edges.(p);
        state.(p) <- 2
  in
  for p = 0 to n - 1 do
    if !cycle = None then dfs [] p
  done;
  !cycle

let report_quiescence st (blocked : (int * event) list) =
  let n = st.n in
  let blocked_tbl = Hashtbl.create 8 in
  List.iter (fun (p, ev) -> Hashtbl.replace blocked_tbl p ev) blocked;
  let describe (p, ev) =
    match ev.e_kind with
    | Ev_recv { src; tag; _ } ->
      Fmt.str "p%d waits on recv%s {tag %d}%s" p
        (match src with Some s -> Fmt.str " from p%d" s | None -> "")
        tag
        (if ev.e_loc <> Loc.none then Fmt.str " [%a]" Loc.pp ev.e_loc else "")
    | Ev_coll { site; label; _ } ->
      Fmt.str "p%d waits at collective site %d (%s)%s" p site label
        (if ev.e_loc <> Loc.none then Fmt.str " [%a]" Loc.pp ev.e_loc else "")
    | _ -> Fmt.str "p%d blocked" p
  in
  let edges = Array.make n [] in
  List.iter
    (fun (p, ev) ->
      edges.(p) <-
        (match ev.e_kind with
        | Ev_recv { src = Some s; _ } -> [ s ]
        | Ev_recv { src = None; _ } ->
          List.filter (fun q -> q <> p) (List.init n Fun.id)
        | Ev_coll { id; _ } ->
          (* waits on every processor not parked at the same emission *)
          List.filter
            (fun q ->
              q <> p
              &&
              match Hashtbl.find_opt blocked_tbl q with
              | Some { e_kind = Ev_coll { id = id'; _ }; _ } -> id' <> id
              | _ -> true)
            (List.init n Fun.id)
        | _ -> []))
    blocked;
  let cycle_txt =
    match find_cycle edges n with
    | Some c ->
      Fmt.str "; wait cycle: %s"
        (String.concat " -> " (List.map (fun p -> Fmt.str "p%d" p) c))
    | None -> ""
  in
  let all_fuzzy =
    blocked <> []
    && List.for_all
         (fun (_, ev) ->
           match ev.e_kind with
           | Ev_recv { tag; _ } -> Hashtbl.mem st.fuzzy tag
           | _ -> false)
         blocked
  in
  let loc =
    match blocked with (_, ev) :: _ -> ev.e_loc | [] -> Loc.none
  in
  let msg =
    Fmt.str "ensemble reaches quiescence with blocked processors: %s%s"
      (String.concat "; " (List.map describe blocked))
      cycle_txt
  in
  if all_fuzzy then
    add st ~loc Finding.Info "unverified-comm"
      (msg ^ " (all waits involve tags the analysis could not resolve)")
  else add st ~loc Finding.Error "static-deadlock" msg

(* ---------------------------------------------------------------------- *)

let run ~nprocs ?(degrade = false) ?fuzzy_tags (events : event list) :
    Finding.t list =
  let st =
    {
      n = nprocs;
      degrade;
      fuzzy =
        (match fuzzy_tags with
        | Some t -> Hashtbl.copy t
        | None -> Hashtbl.create 8);
      received = Hashtbl.create 16;
      chans = Hashtbl.create 16;
      wild = Hashtbl.create 4;
      findings = [];
      redundant_seen = Hashtbl.create 8;
    }
  in
  (* Assumed deliveries apply up front: they only weaken later validity
     checks, which is the sound direction for an unverified region. *)
  let events =
    List.filter
      (fun ev ->
        match ev.e_kind with
        | Ev_assume { array; elems } ->
          for p = 0 to nprocs - 1 do
            let r = received st p array in
            r := Iset.union !r elems
          done;
          false
        | _ -> true)
      events
  in
  let queues = Array.make nprocs [] in
  List.iter (fun ev -> queues.(ev.e_proc) <- ev :: queues.(ev.e_proc)) events;
  let queues = Array.map (fun l -> Array.of_list (List.rev l)) queues in
  let cur = Array.make nprocs 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    for p = 0 to nprocs - 1 do
      let continue_ = ref true in
      while !continue_ do
        if cur.(p) >= Array.length queues.(p) then continue_ := false
        else
          let ev = queues.(p).(cur.(p)) in
          match ev.e_kind with
          | Ev_send { dest; tag; parts } ->
            process_send st p ev.e_loc dest tag parts;
            cur.(p) <- cur.(p) + 1;
            progress := true
          | Ev_recv { src; tag; arrays } -> (
            match match_recv st p src tag with
            | Some msg ->
              apply_recv st p ev.e_loc arrays msg tag;
              cur.(p) <- cur.(p) + 1;
              progress := true
            | None -> continue_ := false)
          | Ev_coll _ -> continue_ := false
          | Ev_assume _ ->
            cur.(p) <- cur.(p) + 1;
            progress := true
      done
    done;
    (* collective barrier: fire when the whole ensemble is parked at the
       same emission *)
    let at_coll p =
      if cur.(p) >= Array.length queues.(p) then None
      else
        match queues.(p).(cur.(p)).e_kind with
        | Ev_coll { id; _ } -> Some id
        | _ -> None
    in
    let ready =
      match at_coll 0 with
      | Some id0 ->
        let ok = ref true in
        for p = 1 to nprocs - 1 do
          if at_coll p <> Some id0 then ok := false
        done;
        !ok
      | None -> false
    in
    if ready then begin
      apply_coll st (Array.init nprocs (fun p -> queues.(p).(cur.(p))));
      for p = 0 to nprocs - 1 do
        cur.(p) <- cur.(p) + 1
      done;
      progress := true
    end
  done;
  let blocked = ref [] in
  for p = nprocs - 1 downto 0 do
    if cur.(p) < Array.length queues.(p) then
      blocked := (p, queues.(p).(cur.(p))) :: !blocked
  done;
  let deadlocked = !blocked <> [] in
  if deadlocked then report_quiescence st !blocked;
  (* Undelivered messages: pure lint unless a deadlock already explains
     them (then they are consequences, not causes). *)
  if not deadlocked then begin
    let leftover = Hashtbl.create 8 in
    let note tag (msg : chan_msg) =
      if not (Hashtbl.mem st.fuzzy tag) then
        if not (Hashtbl.mem leftover (tag, msg.m_loc)) then begin
          Hashtbl.replace leftover (tag, msg.m_loc) ();
          add st ~loc:msg.m_loc ~proc:msg.m_src ~tag Finding.Warning
            "unmatched-send"
            (Fmt.str "message sent by p%d {tag %d} is never received" msg.m_src
               tag)
        end
    in
    Hashtbl.iter (fun (_, _, tag) q -> Queue.iter (note tag) q) st.chans;
    Hashtbl.iter (fun tag q -> Queue.iter (note tag) q) st.wild
  end;
  st.findings
