(* The communication skeleton: the residue of a node program after the
   abstract interpreter (Absint) strips away computation.  Since the
   compressed-ensemble refactor an event no longer belongs to a single
   processor: it covers a pid interval [e_plo, e_phi] and its endpoints
   (send destination, recv source) are affine forms a*pid + b, so one
   event stands for up to P per-processor events.  This module replays
   that skeleton with an abstract scheduler that mirrors
   Fd_machine.Scheduler:

   - point-to-point sends queue one message per sender pid; a recv
     blocks until a matching message is queued.  A whole interval of
     receivers advances in one step when its source form composes with
     a queued message's destination form to the identity (send from
     [l, u] with dest pid+1 matches recv on [l+1, u+1] from pid-1);
     anything irregular falls back to pid-at-a-time matching in the
     exact order the dense replay used, so findings are unchanged;
   - collectives barrier on their emission id (the walker emits one
     interval event per dynamic collective instance, covering the full
     ensemble);
   - when no processor can make progress and some are unfinished, that
     is a static deadlock — reported with the same wait-for graph and
     cycle extraction as the dynamic scheduler's Deadlock error.

   Payload validity is checked in causal order, mirroring the storage
   model: an element may be sent only if the sender owns it or has
   received it earlier (Storage.Invalid_read otherwise), and a remap
   invalidates everything previously received for that array.  Received
   sets are parametric in the pid — {slope*pid + e | e in base} over a
   pid set — so a broadcast grows all P received sets in O(1). *)

open Fd_support
open Fd_machine

(* --- affine pid forms -------------------------------------------------- *)

type aff = { a : int; b : int }  (* fun pid -> a*pid + b *)

let aff_at f p = (f.a * p) + f.b
let aff_const c = { a = 0; b = c }

let pp_aff ppf f =
  if f.a = 0 then Fmt.pf ppf "%d" f.b
  else if f.a = 1 then
    if f.b = 0 then Fmt.string ppf "p" else Fmt.pf ppf "p%+d" f.b
  else if f.a = -1 then
    if f.b = 0 then Fmt.string ppf "-p" else Fmt.pf ppf "-p%+d" f.b
  else Fmt.pf ppf "%d*p%+d" f.a f.b

(* --- events ------------------------------------------------------------ *)

type part = {
  p_array : string;
  p_triplets : (aff * aff * aff) list option;
      (* per-dim (lo, hi, step) of the sent section, affine in the
         SENDER pid; None: section not evaluable *)
  p_dist_dim : int option;
  p_layout : Layout.t;  (* sender's layout at emission *)
}

type recv_array = {
  ra_name : string;
  ra_dist_dim : int option;
  ra_layout : Layout.t;  (* receiver's layout at emission *)
}

type coll_payload =
  | Cp_scalar of string
  | Cp_section of {
      cs_array : string;
      cs_triplets : Triplet.t list option;  (* evaluated at the root *)
      cs_dist_dim : int option;
      cs_owned_root : Iset.t;
    }
  | Cp_remap of {
      cr_array : string;
      cr_old : Layout.t;  (* reaching layout before the remap *)
      cr_new : Layout.t;  (* target layout *)
      cr_move : bool;  (* physical move vs. mark-only (array-kill opt) *)
    }

type kind =
  | Ev_send of { dest : aff option; tag : int; parts : part list }
  | Ev_recv of { src : aff option; tag : int; arrays : recv_array list }
  | Ev_coll of { id : int; site : int; label : string; root : int option;
                 payload : coll_payload }
  | Ev_assume of { array : string; elems : Iset.t }
      (* data conservatively assumed delivered by communication inside a
         region the walker could not verify: grows every processor's
         received set so later sends are not falsely flagged *)

type event = { e_plo : int; e_phi : int; e_kind : kind; e_loc : Loc.t }

(* Evaluate an affine section triplet at a concrete (sender) pid.  The
   walker only emits steps it proved positive; guard anyway. *)
let triplet_at (lo, hi, st) p =
  let s = aff_at st p in
  if s < 1 then Triplet.empty
  else Triplet.make ~lo:(aff_at lo p) ~hi:(aff_at hi p) ~step:s

let dist_elems_at part p =
  match (part.p_triplets, part.p_dist_dim) with
  | Some tl, Some d when List.length tl > d ->
    Some (Iset.of_triplet (triplet_at (List.nth tl d) p))
  | _ -> None

let part_has_dist part =
  match (part.p_triplets, part.p_dist_dim) with
  | Some tl, Some d -> List.length tl > d
  | _ -> false

(* Owned set in the distributed dimension, on demand (no O(P) array). *)
let owned_at (lay : Layout.t) ~n p =
  match lay.Layout.dist_dim with
  | None -> Iset.empty
  | Some _ -> Layout.owned_one lay ~nprocs:n p

(* ---------------------------------------------------------------------- *)

(* Parametric received sets: for pid p in [en_pids], the elements
   {en_slope * p + e | e in en_base} have been received.  Slope-0
   entries are collective deliveries (same elements everywhere); the
   merge rules keep one entry per communication pattern so a loop of 63
   broadcasts costs one entry, not 63 * P sets. *)
type rentry = { en_pids : Iset.t; en_slope : int; en_base : Iset.t }

type imsg = {
  im_seq : int;
  im_tag : int;
  im_dest : aff option;         (* None: destination unknown (wild) *)
  mutable im_senders : Iset.t;  (* senders whose copy is not yet consumed *)
  im_parts : part list;
  im_loc : Loc.t;
  im_round : int;               (* scheduler round that pushed it *)
}

(* A maximal pid interval whose processors sit at the same position in
   the global event array.  Groups always partition [0, n-1]. *)
type group = {
  mutable g_lo : int;
  mutable g_hi : int;
  mutable g_cur : int;
  mutable g_seen : bool;  (* advanced-until-blocked this round *)
}

type st = {
  n : int;
  degrade : bool;  (* region self-check: cap every severity at Info *)
  fuzzy : (int, unit) Hashtbl.t;  (* tags with unverifiable endpoints *)
  received : (string, rentry list ref) Hashtbl.t;
  mutable msgs : imsg list;  (* newest first; scan via msgs_fwd *)
  mutable next_seq : int;
  mutable groups : group list;
  mutable progress : bool;
  mutable round : int;
  mutable findings : Finding.t list;
  redundant_seen : (Loc.t, unit) Hashtbl.t;
}

(* Dense-order visibility: the replay processes pids in ascending order
   within a round, so a message pushed THIS round is only visible to a
   receiver once its sender's turn has passed — sender <= receiver.
   Messages from earlier rounds are visible to everyone. *)
let sender_visible st m ~sender ~receiver =
  m.im_round < st.round || sender <= receiver

let add st ?loc ?proc ?tag ?site sev kind msg =
  let sev = if st.degrade then Finding.Info else sev in
  st.findings <- Finding.make ?loc ?proc ?tag ?site sev kind msg :: st.findings

let rentries st array =
  match Hashtbl.find_opt st.received array with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace st.received array r;
    r

let add_received st array ~pids ~slope ~base =
  if not (Iset.is_empty pids || Iset.is_empty base) then begin
    let r = rentries st array in
    let rec ins = function
      | [] -> [ { en_pids = pids; en_slope = slope; en_base = base } ]
      | e :: rest when e.en_slope = slope && Iset.equal e.en_base base ->
        { e with en_pids = Iset.union e.en_pids pids } :: rest
      | e :: rest when e.en_slope = slope && Iset.equal e.en_pids pids ->
        { e with en_base = Iset.union e.en_base base } :: rest
      | e :: rest -> e :: ins rest
    in
    r := ins !r
  end

let received_at st array p =
  match Hashtbl.find_opt st.received array with
  | None -> Iset.empty
  | Some r ->
    List.fold_left
      (fun acc e ->
        if Iset.mem p e.en_pids then
          Iset.union acc (Iset.shift (e.en_slope * p) e.en_base)
        else acc)
      Iset.empty !r

let push_msg st ~tag ~dest ~senders ~parts ~loc =
  let m =
    { im_seq = st.next_seq; im_tag = tag; im_dest = dest;
      im_senders = senders; im_parts = parts; im_loc = loc;
      im_round = st.round }
  in
  st.next_seq <- st.next_seq + 1;
  st.msgs <- m :: st.msgs

let msgs_fwd st = List.rev st.msgs

(* --- sends ------------------------------------------------------------- *)

(* Provable whole-interval validity: every pid sends a slice of its own
   Block(b) — elems(p) = [b*p + lo0 : b*p + hi0] against owned(p) =
   [L + b*p : min(H, L + b*p + b - 1)].  When this holds no per-pid
   check can fire, so the O(width) loop is skipped. *)
let send_valid_parametric part ~plo ~phi =
  match (part.p_triplets, part.p_dist_dim) with
  | Some tl, Some d when List.length tl > d -> (
    let lay = part.p_layout in
    match (lay.Layout.dist_dim, lay.Layout.dist) with
    | Some ld, Layout.Block b when ld = d && b >= 1 -> (
      match List.nth_opt lay.Layout.bounds d with
      | None -> false
      | Some (bl, bh) ->
        let lo_a, hi_a, st_a = List.nth tl d in
        st_a.a = 0 && st_a.b >= 1 && lo_a.a = b && hi_a.a = b
        && (lo_a.b > hi_a.b  (* empty for every pid *)
           || (lo_a.b >= bl && hi_a.b <= bl + b - 1
              && (b * phi) + hi_a.b <= bh && (b * plo) + lo_a.b >= bl)))
    | _ -> false)
  | _ -> false

let send_checks st ~plo ~phi loc tag parts =
  List.iter
    (fun part ->
      if part.p_triplets = None then Hashtbl.replace st.fuzzy tag ();
      if part_has_dist part
         && not (phi - plo > 32 && send_valid_parametric part ~plo ~phi)
      then
        for p = plo to phi do
          match dist_elems_at part p with
          | Some elems ->
            let valid =
              Iset.union
                (owned_at part.p_layout ~n:st.n p)
                (received_at st part.p_array p)
            in
            if not (Iset.subset elems valid) then
              add st ~loc ~proc:p ~tag Finding.Error "send-unowned-data"
                (Fmt.str
                   "p%d sends %s elements %s in the distributed dimension \
                    that it neither owns nor has received"
                   p part.p_array
                   (Iset.to_string (Iset.diff elems valid)))
          | None -> ()
        done)
    parts

(* --- receive matching -------------------------------------------------- *)

let reflect c s =  (* { c - x | x in s } *)
  Iset.of_intervals (List.map (fun (a, b) -> (c - b, c - a)) (Iset.intervals s))

(* Floor/ceiling division (y > 0). *)
let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y)
let cdiv x y = -fdiv (-x) y

type mset = Known of Iset.t | Unknown

(* The pids in [lo, hi] whose recv (source form [s]) message [m]
   satisfies: sender s(p) is still pending in [m], m's destination form
   maps s(p) back to p, and the sender is visible (its turn this round
   has passed, or the message is from an earlier round). *)
let matched_set st m ~lo ~hi (s : aff) : mset =
  let vis ms =
    if m.im_round < st.round then ms
    else
      (* same round: keep receivers p with s(p) <= p, i.e.
         (s.a - 1)*p + s.b <= 0 *)
      let k = s.a - 1 and c = s.b in
      let ok =
        if k = 0 then (if c <= 0 then Iset.range lo hi else Iset.empty)
        else if k > 0 then
          let b = fdiv (-c) k in
          if b < lo then Iset.empty else Iset.range lo (min hi b)
        else
          let b = cdiv c (-k) in
          if b > hi then Iset.empty else Iset.range (max lo b) hi
      in
      Iset.inter ms ok
  in
  match m.im_dest with
  | None -> if Iset.is_empty m.im_senders then Known Iset.empty else Unknown
  | Some d ->
    let coeff = (d.a * s.a) - 1 and c0 = (d.a * s.b) + d.b in
    if coeff <> 0 then
      if c0 mod coeff = 0 then begin
        let p = -(c0 / coeff) in
        if p >= lo && p <= hi && Iset.mem (aff_at s p) m.im_senders then
          Known (vis (Iset.singleton p))
        else Known Iset.empty
      end
      else Known Iset.empty
    else if c0 <> 0 then Known Iset.empty
    else if s.a = 1 then
      Known
        (vis (Iset.inter (Iset.range lo hi) (Iset.shift (-s.b) m.im_senders)))
    else if s.a = -1 then
      Known (vis (Iset.inter (Iset.range lo hi) (reflect s.b m.im_senders)))
    else Unknown

(* One message is the provable first match for the whole interval, or we
   must fall back to pid-at-a-time matching (dense order), or nobody in
   the interval can match anything yet. *)
let match_group st ~lo ~hi (s : aff) tag : [ `All of imsg | `Split | `None ] =
  let full = Iset.range lo hi in
  let rec scan = function
    | [] -> `None
    | m :: rest when m.im_tag <> tag -> scan rest
    | m :: rest -> (
      match matched_set st m ~lo ~hi s with
      | Unknown -> `Split
      | Known ms ->
        if Iset.is_empty ms then scan rest
        else if Iset.equal ms full then `All m
        else `Split)
  in
  scan (msgs_fwd st)

let image_of_interval (s : aff) ~lo ~hi =
  if s.a = 0 then Iset.singleton s.b
  else if s.a = 1 then Iset.range (lo + s.b) (hi + s.b)
  else if s.a = -1 then Iset.range (s.b - hi) (s.b - lo)
  else Iset.of_list (List.init (hi - lo + 1) (fun i -> aff_at s (lo + i)))

(* Dense-order match for a single pid: direct (known-destination)
   messages first, earliest emission wins, then the wild queue. *)
let match_one st p (src : int option) tag : (imsg * int) option =
  let fwd = msgs_fwd st in
  let from_wild () =
    match
      List.find_opt
        (fun m ->
          m.im_tag = tag && m.im_dest = None
          &&
          match Iset.min_elt m.im_senders with
          | Some s -> sender_visible st m ~sender:s ~receiver:p
          | None -> false)
        fwd
    with
    | Some m -> (
      match Iset.min_elt m.im_senders with
      | Some sdr -> Some (m, sdr)
      | None -> None)
    | None -> None
  in
  match src with
  | Some sp -> (
    let direct =
      List.find_opt
        (fun m ->
          m.im_tag = tag
          &&
          match m.im_dest with
          | Some d ->
            Iset.mem sp m.im_senders && aff_at d sp = p
            && sender_visible st m ~sender:sp ~receiver:p
          | None -> false)
        fwd
    in
    match direct with Some m -> Some (m, sp) | None -> from_wild ())
  | None -> (
    Hashtbl.replace st.fuzzy tag ();
    let sender_for m =
      match m.im_dest with
      | Some d ->
        if d.a = 0 then
          if d.b = p then Iset.min_elt m.im_senders else None
        else if (p - d.b) mod d.a = 0 then begin
          let sdr = (p - d.b) / d.a in
          if Iset.mem sdr m.im_senders then Some sdr else None
        end
        else None
      | None -> None
    in
    let rec scan = function
      | [] -> None
      | m :: rest when m.im_tag <> tag -> scan rest
      | m :: rest -> (
        match sender_for m with
        | Some sdr when sender_visible st m ~sender:sdr ~receiver:p ->
          Some (m, sdr)
        | _ -> scan rest)
    in
    match scan fwd with Some r -> Some r | None -> from_wild ())

let consume m sdrs = m.im_senders <- Iset.diff m.im_senders sdrs

(* --- receive application ----------------------------------------------- *)

let apply_recv_one st p recv_loc (arrays : recv_array list) (m : imsg) sdr tag
    ~update =
  let all_known = ref true and all_owned = ref true and has_dist = ref false in
  List.iter
    (fun part ->
      match dist_elems_at part sdr with
      | Some elems -> (
        has_dist := true;
        match List.find_opt (fun ra -> ra.ra_name = part.p_array) arrays with
        | None ->
          all_owned := false;
          add st ~loc:m.im_loc ~proc:p ~tag Finding.Error "recv-unknown-array"
            (Fmt.str "message stores into %s, which is not visible at the \
                      receiving processor p%d" part.p_array p)
        | Some ra ->
          if not (Iset.subset elems (owned_at ra.ra_layout ~n:st.n p)) then
            all_owned := false;
          if update then
            add_received st part.p_array ~pids:(Iset.singleton p) ~slope:0
              ~base:elems)
      | None -> all_known := false)
    m.im_parts;
  if !all_known && !has_dist && !all_owned
     && not (Hashtbl.mem st.redundant_seen recv_loc)
  then begin
    Hashtbl.replace st.redundant_seen recv_loc ();
    add st ~loc:recv_loc ~proc:p ~tag Finding.Warning "redundant-recv"
      (Fmt.str "p%d receives only elements it already owns (message from p%d)"
         p sdr)
  end

(* Whole-interval receive: the received-set update is parametric when
   the sent section is affine with one slope (the overwhelmingly common
   case: each pid passes along a slice of its own block); the finding
   checks still walk the pids so diagnostics match the dense replay. *)
let apply_recv_group st ~lo ~hi recv_loc (arrays : recv_array list) (m : imsg)
    (s : aff) tag =
  List.iter
    (fun part ->
      match (part.p_triplets, part.p_dist_dim) with
      | Some tl, Some d when List.length tl > d -> (
        match List.find_opt (fun ra -> ra.ra_name = part.p_array) arrays with
        | None -> ()  (* flagged per pid below *)
        | Some _ ->
          let lo_a, hi_a, st_a = List.nth tl d in
          if lo_a.a = hi_a.a && st_a.a = 0 then begin
            (* elems(sender) = shift (k*sender) base and sender = s(p),
               so the delivery has slope k*s.a and base shifted k*s.b *)
            let k = lo_a.a in
            let base =
              triplet_at (aff_const lo_a.b, aff_const hi_a.b, st_a) 0
            in
            add_received st part.p_array ~pids:(Iset.range lo hi)
              ~slope:(k * s.a)
              ~base:(Iset.shift (k * s.b) (Iset.of_triplet base))
          end
          else
            for p = lo to hi do
              match dist_elems_at part (aff_at s p) with
              | Some elems ->
                add_received st part.p_array ~pids:(Iset.singleton p) ~slope:0
                  ~base:elems
              | None -> ()
            done)
      | _ -> ())
    m.im_parts;
  if List.exists part_has_dist m.im_parts then
    for p = lo to hi do
      apply_recv_one st p recv_loc arrays m (aff_at s p) tag ~update:false
    done

(* --- collectives -------------------------------------------------------- *)

let apply_coll st (ev : event) =
  match ev.e_kind with
  | Ev_coll { root; payload; site; _ } -> (
    let loc = ev.e_loc in
    match payload with
    | Cp_scalar _ -> ()
    | Cp_remap { cr_array; _ } -> Hashtbl.remove st.received cr_array
    | Cp_section { cs_array; cs_triplets; cs_dist_dim; cs_owned_root } -> (
      match (cs_triplets, cs_dist_dim, root) with
      | Some tl, Some d, Some r when List.length tl > d ->
        let elems = Iset.of_triplet (List.nth tl d) in
        let valid = Iset.union cs_owned_root (received_at st cs_array r) in
        if not (Iset.subset elems valid) then
          add st ~loc ~proc:r ~site Finding.Error "bcast-unowned-data"
            (Fmt.str
               "broadcast root p%d sends %s elements %s it neither owns nor \
                has received"
               r cs_array
               (Iset.to_string (Iset.diff elems valid)));
        add_received st cs_array ~pids:(Iset.range 0 (st.n - 1)) ~slope:0
          ~base:elems
      | _ -> ()))
  | _ -> Diag.internal ~pass:"verify" "skeleton replay: unexpected event form"

(* --- group engine ------------------------------------------------------- *)

let sort_groups st =
  st.groups <- List.sort (fun a b -> compare a.g_lo b.g_lo) st.groups

let normalize st =
  sort_groups st;
  let rec merge = function
    | a :: b :: rest when a.g_cur = b.g_cur && b.g_lo = a.g_hi + 1 ->
      a.g_hi <- b.g_hi;
      merge (a :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  st.groups <- merge st.groups

(* Carve the lowest pid off so it acts first, as in the dense
   pid-ascending round. *)
let split_singleton st g =
  let s = { g_lo = g.g_lo; g_hi = g.g_lo; g_cur = g.g_cur; g_seen = false } in
  g.g_lo <- g.g_lo + 1;
  st.groups <- s :: st.groups

(* The event covers only part of the group: split at its boundaries. *)
let split_at_event st g (ev : event) =
  let cuts =
    List.sort_uniq compare
      (List.filter
         (fun c -> c > g.g_lo && c <= g.g_hi)
         [ ev.e_plo; ev.e_phi + 1 ])
  in
  List.iter
    (fun c ->
      let upper =
        { g_lo = c; g_hi = g.g_hi; g_cur = g.g_cur; g_seen = false }
      in
      g.g_hi <- c - 1;
      st.groups <- upper :: st.groups)
    (List.rev cuts)

let advance st (evs : event array) g =
  let len = Array.length evs in
  let continue_ = ref true in
  while !continue_ do
    if g.g_cur >= len then begin
      g.g_seen <- true;
      continue_ := false
    end
    else begin
      let ev = evs.(g.g_cur) in
      if ev.e_phi < g.g_lo || ev.e_plo > g.g_hi then g.g_cur <- g.g_cur + 1
      else if ev.e_plo > g.g_lo || ev.e_phi < g.g_hi then begin
        split_at_event st g ev;
        continue_ := false  (* the pump re-picks the lowest unseen piece *)
      end
      else
        match ev.e_kind with
        | Ev_assume _ -> g.g_cur <- g.g_cur + 1  (* applied up front *)
        | Ev_coll _ ->
          g.g_seen <- true;
          continue_ := false
        | Ev_send { dest = None; tag; parts } ->
          if g.g_lo < g.g_hi then begin
            (* wild sends queue in pid order; keep dense FIFO *)
            split_singleton st g;
            continue_ := false
          end
          else begin
            Hashtbl.replace st.fuzzy tag ();
            send_checks st ~plo:g.g_lo ~phi:g.g_hi ev.e_loc tag parts;
            push_msg st ~tag ~dest:None ~senders:(Iset.singleton g.g_lo)
              ~parts ~loc:ev.e_loc;
            g.g_cur <- g.g_cur + 1;
            st.progress <- true
          end
        | Ev_send { dest = Some d; tag; parts } ->
          send_checks st ~plo:g.g_lo ~phi:g.g_hi ev.e_loc tag parts;
          push_msg st ~tag ~dest:(Some d)
            ~senders:(Iset.range g.g_lo g.g_hi) ~parts ~loc:ev.e_loc;
          g.g_cur <- g.g_cur + 1;
          st.progress <- true
        | Ev_recv { src; tag; arrays } ->
          if g.g_lo = g.g_hi then begin
            let p = g.g_lo in
            let src_c = Option.map (fun s -> aff_at s p) src in
            match match_one st p src_c tag with
            | Some (m, sdr) ->
              consume m (Iset.singleton sdr);
              apply_recv_one st p ev.e_loc arrays m sdr tag ~update:true;
              g.g_cur <- g.g_cur + 1;
              st.progress <- true
            | None ->
              g.g_seen <- true;
              continue_ := false
          end
          else (
            match src with
            | Some s -> (
              match match_group st ~lo:g.g_lo ~hi:g.g_hi s tag with
              | `All m ->
                consume m (image_of_interval s ~lo:g.g_lo ~hi:g.g_hi);
                apply_recv_group st ~lo:g.g_lo ~hi:g.g_hi ev.e_loc arrays m
                  s tag;
                g.g_cur <- g.g_cur + 1;
                st.progress <- true
              | `Split ->
                split_singleton st g;
                continue_ := false
              | `None ->
                g.g_seen <- true;
                continue_ := false)
            | None ->
              split_singleton st g;
              continue_ := false)
    end
  done

let rec pump st evs =
  sort_groups st;
  match List.find_opt (fun g -> not g.g_seen) st.groups with
  | None -> ()
  | Some g ->
    advance st evs g;
    pump st evs

(* --- deadlock reporting (mirrors Scheduler.wait_for_graph) ------------ *)

let find_cycle edges n =
  (* DFS cycle extraction, as in the dynamic scheduler. *)
  let state = Array.make n 0 in
  (* 0 white, 1 gray, 2 black *)
  let cycle = ref None in
  let rec dfs path p =
    if !cycle = None then
      match state.(p) with
      | 1 ->
        let rec upto acc = function
          | [] -> acc
          | q :: _ when q = p -> q :: acc
          | q :: rest -> upto (q :: acc) rest
        in
        cycle := Some (upto [] path)
      | 2 -> ()
      | _ ->
        state.(p) <- 1;
        List.iter (dfs (p :: path)) edges.(p);
        state.(p) <- 2
  in
  for p = 0 to n - 1 do
    if !cycle = None then dfs [] p
  done;
  !cycle

(* Expanding the wait-for graph per pid is how the dense replay reported
   deadlocks; keep that (texts included) up to 2048 processors and fall
   back to an interval description at ensemble scales. *)
let expand_limit = 2048

let report_quiescence st (evs : event array) (blocked_groups : group list) =
  let n = st.n in
  let all_fuzzy =
    blocked_groups <> []
    && List.for_all
         (fun g ->
           match evs.(g.g_cur).e_kind with
           | Ev_recv { tag; _ } -> Hashtbl.mem st.fuzzy tag
           | _ -> false)
         blocked_groups
  in
  let loc =
    match blocked_groups with
    | g :: _ -> evs.(g.g_cur).e_loc
    | [] -> Loc.none
  in
  let msg =
    if n <= expand_limit then begin
      let blocked =
        List.concat_map
          (fun g ->
            List.init (g.g_hi - g.g_lo + 1) (fun i -> (g.g_lo + i, g)))
          blocked_groups
      in
      let describe (p, g) =
        let ev = evs.(g.g_cur) in
        match ev.e_kind with
        | Ev_recv { src; tag; _ } ->
          Fmt.str "p%d waits on recv%s {tag %d}%s" p
            (match src with
            | Some s -> Fmt.str " from p%d" (aff_at s p)
            | None -> "")
            tag
            (if ev.e_loc <> Loc.none then Fmt.str " [%a]" Loc.pp ev.e_loc
             else "")
        | Ev_coll { site; label; _ } ->
          Fmt.str "p%d waits at collective site %d (%s)%s" p site label
            (if ev.e_loc <> Loc.none then Fmt.str " [%a]" Loc.pp ev.e_loc
             else "")
        | _ -> Fmt.str "p%d blocked" p
      in
      let blocked_tbl = Hashtbl.create 8 in
      List.iter (fun (p, g) -> Hashtbl.replace blocked_tbl p g) blocked;
      let edges = Array.make n [] in
      List.iter
        (fun (p, g) ->
          edges.(p) <-
            (match evs.(g.g_cur).e_kind with
            | Ev_recv { src = Some s; _ } ->
              let q = aff_at s p in
              if q >= 0 && q < n then [ q ] else []
            | Ev_recv { src = None; _ } ->
              List.filter (fun q -> q <> p) (List.init n Fun.id)
            | Ev_coll { id; _ } ->
              (* waits on every processor not parked at the same emission *)
              List.filter
                (fun q ->
                  q <> p
                  &&
                  match Hashtbl.find_opt blocked_tbl q with
                  | Some g' -> (
                    match evs.(g'.g_cur).e_kind with
                    | Ev_coll { id = id'; _ } -> id' <> id
                    | _ -> true)
                  | None -> true)
                (List.init n Fun.id)
            | _ -> []))
        blocked;
      let cycle_txt =
        match find_cycle edges n with
        | Some c ->
          Fmt.str "; wait cycle: %s"
            (String.concat " -> " (List.map (fun p -> Fmt.str "p%d" p) c))
        | None -> ""
      in
      Fmt.str "ensemble reaches quiescence with blocked processors: %s%s"
        (String.concat "; " (List.map describe blocked))
        cycle_txt
    end
    else begin
      let describe g =
        let span =
          if g.g_lo = g.g_hi then Fmt.str "p%d" g.g_lo
          else Fmt.str "p%d..p%d" g.g_lo g.g_hi
        in
        let ev = evs.(g.g_cur) in
        match ev.e_kind with
        | Ev_recv { src; tag; _ } ->
          Fmt.str "%s wait on recv%s {tag %d}%s" span
            (match src with
            | Some s -> Fmt.str " from %a" pp_aff s
            | None -> "")
            tag
            (if ev.e_loc <> Loc.none then Fmt.str " [%a]" Loc.pp ev.e_loc
             else "")
        | Ev_coll { site; label; _ } ->
          Fmt.str "%s wait at collective site %d (%s)" span site label
        | _ -> Fmt.str "%s blocked" span
      in
      Fmt.str "ensemble reaches quiescence with blocked processors: %s"
        (String.concat "; " (List.map describe blocked_groups))
    end
  in
  if all_fuzzy then
    add st ~loc Finding.Info "unverified-comm"
      (msg ^ " (all waits involve tags the analysis could not resolve)")
  else add st ~loc Finding.Error "static-deadlock" msg

(* ---------------------------------------------------------------------- *)

let run ~nprocs ?(degrade = false) ?fuzzy_tags (events : event list) :
    Finding.t list =
  let st =
    {
      n = nprocs;
      degrade;
      fuzzy =
        (match fuzzy_tags with
        | Some t -> Hashtbl.copy t
        | None -> Hashtbl.create 8);
      received = Hashtbl.create 16;
      msgs = [];
      next_seq = 0;
      groups =
        [ { g_lo = 0; g_hi = nprocs - 1; g_cur = 0; g_seen = false } ];
      progress = false;
      round = 0;
      findings = [];
      redundant_seen = Hashtbl.create 8;
    }
  in
  (* Assumed deliveries apply up front: they only weaken later validity
     checks, which is the sound direction for an unverified region. *)
  let events =
    List.filter
      (fun ev ->
        match ev.e_kind with
        | Ev_assume { array; elems } ->
          add_received st array ~pids:(Iset.range 0 (nprocs - 1)) ~slope:0
            ~base:elems;
          false
        | _ -> true)
      events
  in
  let evs = Array.of_list events in
  let len = Array.length evs in
  let continue_rounds = ref true in
  while !continue_rounds do
    st.progress <- false;
    st.round <- st.round + 1;
    List.iter (fun g -> g.g_seen <- false) st.groups;
    normalize st;
    pump st evs;
    (* collective barrier: fire when the whole ensemble is parked at the
       same emission *)
    let at_coll g =
      if g.g_cur >= len then None
      else
        match evs.(g.g_cur).e_kind with
        | Ev_coll _ -> Some g.g_cur
        | _ -> None
    in
    sort_groups st;
    let ready =
      match st.groups with
      | [] -> false
      | g0 :: rest -> (
        match at_coll g0 with
        | Some c0 -> List.for_all (fun g -> at_coll g = Some c0) rest
        | None -> false)
    in
    if ready then begin
      (match st.groups with
      | g0 :: _ -> apply_coll st evs.(g0.g_cur)
      | [] -> ());
      List.iter (fun g -> g.g_cur <- g.g_cur + 1) st.groups;
      st.progress <- true
    end;
    continue_rounds := st.progress
  done;
  sort_groups st;
  let blocked = List.filter (fun g -> g.g_cur < len) st.groups in
  let deadlocked = blocked <> [] in
  if deadlocked then report_quiescence st evs blocked;
  (* Undelivered messages: pure lint unless a deadlock already explains
     them (then they are consequences, not causes). *)
  if not deadlocked then begin
    let leftover = Hashtbl.create 8 in
    List.iter
      (fun m ->
        if (not (Iset.is_empty m.im_senders))
           && not (Hashtbl.mem st.fuzzy m.im_tag)
           && not (Hashtbl.mem leftover (m.im_tag, m.im_loc))
        then begin
          Hashtbl.replace leftover (m.im_tag, m.im_loc) ();
          let src = Option.value ~default:0 (Iset.min_elt m.im_senders) in
          add st ~loc:m.im_loc ~proc:src ~tag:m.im_tag Finding.Warning
            "unmatched-send"
            (Fmt.str "message sent by p%d {tag %d} is never received" src
               m.im_tag)
        end)
      (msgs_fwd st)
  end;
  st.findings
