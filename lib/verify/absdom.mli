(** Compressed ensemble value domain for the static verifier.

    One value of type {!t} summarizes what a scalar holds on ALL [n]
    processors at once.  Instead of the dense per-P array of the
    original implementation (every operation O(P), making
    [fdc check -p 65536] intractable), lanes are stored by shape class:

    - [Uni v] — every processor holds [v].  [Uni Punk] means "same on
      all processors, value unknown": still uniform, which is what lets
      the analysis prove collective congruence through data-dependent
      but processor-uniform branches.
    - [Runs segs] — processors disagree; [segs] is a run-length cover
      of pid space, each run a per-run constant ([Sconst]) or an affine
      function of the pid ([Saff], lane value [a*pid + b]) — the shape
      of [my$p], of owner guards, and of neighbor indices.

    {b Invariants} (established by {!of_segs} and preserved by every
    operation):

    - the runs of a [Runs] cover exactly [\[0, n-1\]], sorted,
      contiguous, non-overlapping;
    - adjacent runs are not mergeable (different constants, or affine
      forms that do not continue each other);
    - a singleton affine run is folded to its constant;
    - a full-range run of a {e known} constant is promoted to [Uni] —
      but a full-range [Sconst Punk] stays [Runs]: divergent-unknown is
      deliberately distinct from uniform-unknown ([Uni Punk]), and only
      uniform inputs may produce the latter.

    Semantics are defined pointwise (the [pv2]/[pv1] tables carried
    over from the dense domain); the compressed fast paths are
    equivalent by concretization — property-tested in
    [test/test_absdom.ml] against {!to_dense}/{!of_dense}. *)

open Fd_support

(** A single lane's value: known scalar or unknown. *)
type pv = Pint of int | Preal of float | Pbool of bool | Punk

(** One run of lanes: a constant, or [a*pid + b] per lane. *)
type seg = Sconst of pv | Saff of { a : int; b : int }

type t = Uni of pv | Runs of (int * int * seg) list

(** Provable equality on lane values: [Punk = Punk] is [false]. *)
val pv_equal : pv -> pv -> bool

val to_f : pv -> float option

(** Uniform-unknown: same (unknown) value on every processor. *)
val unknown : t

(** Divergent-unknown: each processor may hold a different value. *)
val divergent_unknown : n:int -> t

(** The pid vector itself: lane p holds [Pint p]. *)
val myproc : n:int -> t

(** Build from a sorted contiguous cover of [\[0, n-1\]]; normalizes to
    the invariants above. *)
val of_segs : n:int -> (int * int * seg) list -> t

val of_dense : pv array -> t
val to_dense : n:int -> t -> pv array

val seg_at : seg -> int -> pv

(** [lin_of s] is [Some (a, b)] when every lane of [s] is the integer
    [a*pid + b] ([Sconst (Pint c)] gives [(0, c)]). *)
val lin_of : seg -> (int * int) option

(** The run cover, materializing [Uni] as one full-range run. *)
val segs_of : n:int -> t -> (int * int * seg) list

(** Lane read. *)
val at : t -> int -> pv

val int_at : t -> int -> int option

(** [Some i] iff the value is [Uni (Pint i)]. *)
val uniform_int : t -> int option

val is_uniform : t -> bool

(** Some lane is unknown. *)
val has_punk : n:int -> t -> bool

(** Pids whose lane is a known value / a known integer. *)
val known_pids : n:int -> t -> Iset.t

val int_pids : n:int -> t -> Iset.t

(** Clip the run cover to [\[lo, hi\]] (result covers only the clip). *)
val restrict : n:int -> t -> int * int -> (int * int * seg) list

(** Common refinement of several values: chunks of pid space on which
    each input is a single segment (in input order). *)
val align_many : n:int -> t list -> (int * int * seg list) list

(** tab$-style lookup: lane p of the result is lane p of [vs.(i)] when
    the selector's lane p is [Pint i] in range, else [Punk]. *)
val select : n:int -> t -> t array -> t

type binop =
  | Add | Sub | Mul | Div | Pow | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or | Max | Min | Join

type unop = Neg | Not | Abs | ToInt | ToReal

(** Pointwise binary operator, with exact segment-level fast paths for
    affine runs (affine +/-/scale, threshold splits for comparisons,
    run enumeration for integer division). *)
val app2 : n:int -> binop -> t -> t -> t

val app1 : n:int -> unop -> t -> t

(** Escape hatches: apply an arbitrary pointwise function (expands
    affine runs lane-by-lane where needed). *)
val app2_pv : n:int -> (pv -> pv -> pv) -> t -> t -> t

val app1_pv : n:int -> (pv -> pv) -> t -> t

(** Lattice join ([pv_join] pointwise). *)
val join : n:int -> t -> t -> t

(** Masked update: lanes in [act] take the new value, others keep the
    old one. *)
val blend : n:int -> act:Iset.t -> t -> t -> t

(** Classification of a branch condition over the active set. *)
type truth =
  | T_true
  | T_false
  | T_unknown_uniform  (** same unknown on every processor *)
  | T_split of Iset.t * Iset.t
      (** decided lane-by-lane on the active set *)
  | T_divergent  (** some active lane's truth is unknown *)

val truth : n:int -> act:Iset.t -> t -> truth
val pp : Format.formatter -> t -> unit
