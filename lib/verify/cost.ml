(* Static communication-cost and critical-path analyzer (fdc cost).

   Input: the interval communication skeleton emitted by the abstract
   walk (Absint) plus the machine cost model (Config).  Output: the
   communication statistics a simulated run would report — per-processor
   and aggregate message counts and byte volumes, broadcast/remap
   traffic, and the virtual-time makespan of the communication DAG —
   computed without running the program, symbolically over pid
   intervals, so the analysis cost is flat in P.

   Fidelity contract (the differential oracle in test/test_cost.ml):

   - message/byte counters equal the simulator's Stats field-for-field
     on every fault-free example, because the counting mirrors the
     interpreter exactly: one message per executed N_send with bytes =
     (product of section triplet counts) * word_bytes; one bcast per
     collective with the root's full section; remap traffic from the
     same owner arithmetic the scheduler uses;
   - the predicted makespan equals the simulator's elapsed time under a
     compute-free cost model (flop = mem_op = 0), because the timed
     replay applies the scheduler's exact rules: a send advances the
     sender by alpha and arrives at sender_clock + beta*bytes; a receive
     advances to max(own, arrival) with per-(src, dest, tag) FIFO
     matching; a broadcast releases everyone at ensemble-max +
     bcast_cost; a remap releases each p at ensemble-max + its pairwise
     traffic cost.  Under the full cost model the prediction is a lower
     bound (compute time is not modelled).

   Statically-unresolved control flow (Absint regions) is resolved by a
   sequential branch profile: Seq_interp runs the source program once
   (P-independent) recording each source IF decision; sites whose
   profile is uniform are walked as decided.  Mixed or unprofiled sites
   stay regions, their communication is excluded from the totals, and
   the result is flagged approximate with an Info finding per
   assumption.

   The timed replay advances pid-interval groups carrying affine clocks
   clock(p) = ca*p + cb through the event stream, splitting a group
   only where lanes genuinely diverge (a max(own, arrival) crossing, an
   irregular match); broadcasts re-merge the ensemble into one group,
   so the regular patterns stay O(events), independent of P. *)

open Fd_support
open Fd_machine

(* --- sequential branch profile ---------------------------------------- *)

type profile = (Loc.t, (int * int) ref) Hashtbl.t

let profile_of_seq (cp : Fd_frontend.Sema.checked_program) : profile =
  let tbl : profile = Hashtbl.create 16 in
  let on_branch loc taken =
    if loc <> Loc.none then begin
      let r =
        match Hashtbl.find_opt tbl loc with
        | Some r -> r
        | None ->
          let r = ref (0, 0) in
          Hashtbl.replace tbl loc r;
          r
      in
      let t, f = !r in
      r := if taken then (t + 1, f) else (t, f + 1)
    end
  in
  (* A sequential failure (runtime error in the reference interpreter)
     just yields a partial profile; the analysis degrades to regions. *)
  (try ignore (Seq_interp.run ~on_branch cp) with _ -> ());
  tbl

let oracle (p : profile) (loc : Loc.t) : bool option =
  if loc = Loc.none then None
  else
    match Hashtbl.find_opt p loc with
    | Some { contents = t, 0 } when t > 0 -> Some true
    | Some { contents = 0, f } when f > 0 -> Some false
    | _ -> None

let mixed_sites (p : profile) : (Loc.t * int * int) list =
  Hashtbl.fold
    (fun loc { contents = t, f } acc ->
      if t > 0 && f > 0 then (loc, t, f) :: acc else acc)
    p []
  |> List.sort compare

(* --- piecewise-affine per-processor accumulators ------------------------ *)

(* value(p) = a*p + b on [lo, hi]; pieces in an accumulator may overlap
   (contributions), the sweep canonicalizes them into disjoint runs. *)
type ipiece = { ip_lo : int; ip_hi : int; ip_a : int; ip_b : int }
type fpiece = { fp_lo : int; fp_hi : int; fp_a : float; fp_b : float }

let isum_piece { ip_lo = l; ip_hi = h; ip_a = a; ip_b = b } =
  (* sum_{p=l..h} (a*p + b); the triangular term in halves to dodge
     overflow on odd spans *)
  let n = h - l + 1 in
  let tri = if (l + h) mod 2 = 0 then (l + h) / 2 * n else n / 2 * (l + h) in
  (a * tri) + (b * n)

let fsum_piece { fp_lo = l; fp_hi = h; fp_a = a; fp_b = b } =
  let n = float_of_int (h - l + 1) in
  (a *. float_of_int (l + h) *. n /. 2.0) +. (b *. n)

(* Delta sweep: O(k log k) in the number of contributions, flat in P. *)
let sweep_int (contribs : ipiece list) : ipiece list =
  let deltas = Hashtbl.create 64 in
  let bump pos da db =
    let a, b = Option.value ~default:(0, 0) (Hashtbl.find_opt deltas pos) in
    Hashtbl.replace deltas pos (a + da, b + db)
  in
  List.iter
    (fun c ->
      bump c.ip_lo c.ip_a c.ip_b;
      bump (c.ip_hi + 1) (-c.ip_a) (-c.ip_b))
    contribs;
  let cuts = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) deltas []) in
  let rec go a b = function
    | [] | [ _ ] -> []
    | x :: (y :: _ as rest) ->
      let da, db = Hashtbl.find deltas x in
      let a = a + da and b = b + db in
      if a = 0 && b = 0 then go a b rest
      else { ip_lo = x; ip_hi = y - 1; ip_a = a; ip_b = b } :: go a b rest
  in
  go 0 0 cuts

let sweep_float (contribs : fpiece list) : fpiece list =
  let deltas = Hashtbl.create 64 in
  let bump pos da db =
    let a, b = Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt deltas pos) in
    Hashtbl.replace deltas pos (a +. da, b +. db)
  in
  List.iter
    (fun c ->
      bump c.fp_lo c.fp_a c.fp_b;
      bump (c.fp_hi + 1) (-.c.fp_a) (-.c.fp_b))
    contribs;
  let cuts = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) deltas []) in
  let rec go a b = function
    | [] | [ _ ] -> []
    | x :: (y :: _ as rest) ->
      let da, db = Hashtbl.find deltas x in
      let a = a +. da and b = b +. db in
      if a = 0.0 && b = 0.0 then go a b rest
      else { fp_lo = x; fp_hi = y - 1; fp_a = a; fp_b = b } :: go a b rest
  in
  go 0.0 0.0 cuts

let ipieces_at (ps : ipiece list) p =
  List.fold_left
    (fun acc c -> if p >= c.ip_lo && p <= c.ip_hi then acc + (c.ip_a * p) + c.ip_b else acc)
    0 ps

let fpieces_at (ps : fpiece list) p =
  List.fold_left
    (fun acc c ->
      if p >= c.fp_lo && p <= c.fp_hi then acc +. (c.fp_a *. float_of_int p) +. c.fp_b
      else acc)
    0.0 ps

(* Floor/ceiling division (y > 0). *)
let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y)
let cdiv x y = -fdiv (-x) y

(* --- symbolic message sizes -------------------------------------------- *)

(* Bytes per sender over [lo, hi] as disjoint affine pieces.  Exact:
   mirrors Interp's element gathering (product of triplet counts over
   ALL dimensions, summed over parts, times word_bytes).  Sections the
   affine forms cannot express (pid-dependent strides, two varying
   dimensions) fall back to per-pid evaluation coalesced into affine
   runs — still exact, O(interval width) only for the exotic event. *)

let part_elems_at (part : Skeleton.part) s =
  match part.Skeleton.p_triplets with
  | None -> None
  | Some tl ->
    Some
      (List.fold_left
         (fun acc tr -> acc * Triplet.count (Skeleton.triplet_at tr s))
         1 tl)

(* One part as [`Const of int | `Affine of int * int (* max(0, a*p+b) *)
   | `Opaque]. *)
let classify_part (part : Skeleton.part) =
  match part.Skeleton.p_triplets with
  | None -> `Unknown
  | Some tl ->
    let rec go const_prod affine tl =
      match tl with
      | [] -> (
        match affine with
        | None -> `Const const_prod
        | Some (a, b) -> `Affine (a * const_prod, b * const_prod))
      | (lo_a, hi_a, st_a) :: rest ->
        if st_a.Skeleton.a <> 0 || st_a.Skeleton.b < 1 then `Opaque
        else
          let s = st_a.Skeleton.b in
          let wa = hi_a.Skeleton.a - lo_a.Skeleton.a
          and wb = hi_a.Skeleton.b - lo_a.Skeleton.b in
          if wa = 0 then
            let cnt = if wb < 0 then 0 else (wb / s) + 1 in
            go (const_prod * cnt) affine rest
          else if s = 1 && affine = None then
            (* count(p) = max(0, wa*p + wb + 1) *)
            go const_prod (Some (wa, wb + 1)) rest
          else `Opaque
    in
    go 1 None tl

let coalesce_values ~lo values =
  (* values.(i) is the value at pid lo+i; produce maximal affine runs *)
  let n = Array.length values in
  let pieces = ref [] in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    if !i = n - 1 then incr i
    else begin
      let d = values.(!i + 1) - values.(!i) in
      incr i;
      while !i < n - 1 && values.(!i + 1) - values.(!i) = d do
        incr i
      done;
      incr i
    end;
    let l = lo + start and h = lo + !i - 1 in
    let a = if h > l then (values.(!i - 1) - values.(start)) / (h - l) else 0 in
    let b = values.(start) - (a * l) in
    pieces := { ip_lo = l; ip_hi = h; ip_a = a; ip_b = b } :: !pieces
  done;
  List.rev !pieces

let bytes_pieces ~word ~lo ~hi (parts : Skeleton.part list) :
    ipiece list * bool =
  let unknown = ref false in
  let symbolic =
    List.map
      (fun part ->
        match classify_part part with
        | `Unknown ->
          unknown := true;
          Some (`Const 0)
        | `Const c -> Some (`Const c)
        | `Affine (a, b) -> Some (`Affine (a, b))
        | `Opaque -> None)
      parts
  in
  let pieces =
    if List.for_all Option.is_some symbolic then begin
      (* cut points: each affine part clamps to 0 where a*p + b <= 0 *)
      let cuts = ref [ lo; hi + 1 ] in
      List.iter
        (function
          | Some (`Affine (a, b)) when a <> 0 ->
            (* a*p + b = 0 at p = -b/a; the max(0, .) clamp flips in
               [floor(-b/a), floor(-b/a) + 1] *)
            let c1 = if a > 0 then fdiv (-b) a else fdiv b (-a) in
            List.iter
              (fun c -> if c > lo && c <= hi then cuts := c :: !cuts)
              [ c1; c1 + 1 ]
          | _ -> ())
        symbolic;
      let cuts = List.sort_uniq compare !cuts in
      let rec segs = function
        | [] | [ _ ] -> []
        | x :: (y :: _ as rest) -> (x, y - 1) :: segs rest
      in
      List.map
        (fun (l, h) ->
          (* within a segment every affine part keeps its clamp sign *)
          let a, b =
            List.fold_left
              (fun (a, b) part ->
                match part with
                | Some (`Const c) -> (a, b + c)
                | Some (`Affine (pa, pb)) ->
                  if (pa * l) + pb <= 0 && (pa * h) + pb <= 0 then (a, b)
                  else (a + pa, b + pb)
                | None -> (a, b))
              (0, 0) symbolic
          in
          { ip_lo = l; ip_hi = h; ip_a = a * word; ip_b = b * word })
        (segs cuts)
    end
    else begin
      (* exotic section: evaluate per pid, coalesce into affine runs *)
      let values =
        Array.init (hi - lo + 1) (fun i ->
            let s = lo + i in
            List.fold_left
              (fun acc part ->
                match part_elems_at part s with
                | Some e -> acc + (e * word)
                | None ->
                  unknown := true;
                  acc)
              0 parts)
      in
      coalesce_values ~lo values
    end
  in
  (pieces, !unknown)

(* --- receive matching (mirrors Skeleton's algebra) ---------------------- *)

let reflect c s =
  Iset.of_intervals (List.map (fun (a, b) -> (c - b, c - a)) (Iset.intervals s))

let image_of_interval (s : Skeleton.aff) ~lo ~hi =
  if s.Skeleton.a = 0 then Iset.singleton s.Skeleton.b
  else if s.Skeleton.a = 1 then Iset.range (lo + s.Skeleton.b) (hi + s.Skeleton.b)
  else if s.Skeleton.a = -1 then
    Iset.range (s.Skeleton.b - hi) (s.Skeleton.b - lo)
  else Iset.of_list (List.init (hi - lo + 1) (fun i -> Skeleton.aff_at s (lo + i)))

(* --- critical-path nodes ------------------------------------------------ *)

type step = {
  st_what : string;
  st_loc : Loc.t;
  st_plo : int;
  st_phi : int;
  st_time : float;  (* completion time (seconds, virtual) *)
}

type node = {
  nd_what : string;
  nd_loc : Loc.t;
  nd_plo : int;
  nd_phi : int;
  nd_time : float;
  nd_pred : node option;
}

(* --- the timed replay --------------------------------------------------- *)

type batch = {
  bt_tag : int;
  bt_dest : Skeleton.aff option;
  mutable bt_senders : Iset.t;  (* unconsumed *)
  bt_aff : (float * float) option;  (* arrival(s) = a*s + b when affine *)
  bt_arr_of : int -> float;
  bt_round : int;
  bt_node : node option;
}

type group = {
  mutable g_lo : int;
  mutable g_hi : int;
  mutable g_cur : int;
  mutable g_seen : bool;
  mutable g_ca : float;  (* clock(p) = g_ca*p + g_cb *)
  mutable g_cb : float;
  mutable g_last : node option;
}

type site_acc = {
  mutable sa_messages : int;
  mutable sa_bytes : int;
  mutable sa_bcasts : int;
  mutable sa_remaps : int;
  mutable sa_seconds : float;
  sa_insts : (int, unit) Hashtbl.t;  (* distinct event indexes *)
  mutable sa_max_msg : int;  (* largest single message, bytes *)
}

type st = {
  n : int;
  cfg : Config.t;
  mutable batches : batch list;  (* newest first; scan via batches_fwd *)
  mutable groups : group list;
  mutable round : int;
  mutable progress : bool;
  (* totals, mirroring Stats *)
  mutable messages : int;
  mutable message_bytes : int;
  mutable bcasts : int;
  mutable bcast_bytes : int;
  mutable remaps : int;
  mutable remap_marks : int;
  mutable remap_bytes : int;
  (* per-processor contributions *)
  mutable c_msgs : ipiece list;
  mutable c_bytes : ipiece list;
  mutable c_send : fpiece list;  (* alpha startup charged to senders *)
  mutable c_wait : fpiece list;  (* receive waits *)
  mutable c_coll : fpiece list;  (* collective barrier + transfer waits *)
  sites : (Loc.t * string, site_acc) Hashtbl.t;
  mutable notes : string list;  (* cost-model assumptions, deduped *)
  counted_colls : (int, unit) Hashtbl.t;
}

let clock_at g p = (g.g_ca *. float_of_int p) +. g.g_cb

let group_max_clock g = Float.max (clock_at g g.g_lo) (clock_at g g.g_hi)

let note st msg = if not (List.mem msg st.notes) then st.notes <- msg :: st.notes

let site st loc what =
  match Hashtbl.find_opt st.sites (loc, what) with
  | Some s -> s
  | None ->
    let s =
      { sa_messages = 0; sa_bytes = 0; sa_bcasts = 0; sa_remaps = 0;
        sa_seconds = 0.0; sa_insts = Hashtbl.create 4; sa_max_msg = 0 }
    in
    Hashtbl.replace st.sites (loc, what) s;
    s

let batches_fwd st = List.rev st.batches

let sender_visible st (b : batch) ~sender ~receiver =
  b.bt_round < st.round || sender <= receiver

type mset = Known of Iset.t | Unknown

let matched_set st (b : batch) ~lo ~hi (s : Skeleton.aff) : mset =
  let vis ms =
    if b.bt_round < st.round then ms
    else
      let k = s.Skeleton.a - 1 and c = s.Skeleton.b in
      let ok =
        if k = 0 then if c <= 0 then Iset.range lo hi else Iset.empty
        else if k > 0 then begin
          let bd = fdiv (-c) k in
          if bd < lo then Iset.empty else Iset.range lo (min hi bd)
        end
        else begin
          let bd = cdiv c (-k) in
          if bd > hi then Iset.empty else Iset.range (max lo bd) hi
        end
      in
      Iset.inter ms ok
  in
  match b.bt_dest with
  | None -> if Iset.is_empty b.bt_senders then Known Iset.empty else Unknown
  | Some d ->
    let coeff = (d.Skeleton.a * s.Skeleton.a) - 1
    and c0 = (d.Skeleton.a * s.Skeleton.b) + d.Skeleton.b in
    if coeff <> 0 then
      if c0 mod coeff = 0 then begin
        let p = -(c0 / coeff) in
        if p >= lo && p <= hi && Iset.mem (Skeleton.aff_at s p) b.bt_senders
        then Known (vis (Iset.singleton p))
        else Known Iset.empty
      end
      else Known Iset.empty
    else if c0 <> 0 then Known Iset.empty
    else if s.Skeleton.a = 1 then
      Known
        (vis
           (Iset.inter (Iset.range lo hi)
              (Iset.shift (-s.Skeleton.b) b.bt_senders)))
    else if s.Skeleton.a = -1 then
      Known (vis (Iset.inter (Iset.range lo hi) (reflect s.Skeleton.b b.bt_senders)))
    else Unknown

let match_group st ~lo ~hi (s : Skeleton.aff) tag :
    [ `All of batch | `Split | `None ] =
  let full = Iset.range lo hi in
  let rec scan = function
    | [] -> `None
    | b :: rest when b.bt_tag <> tag -> scan rest
    | b :: rest -> (
      match matched_set st b ~lo ~hi s with
      | Unknown -> `Split
      | Known ms ->
        if Iset.is_empty ms then scan rest
        else if Iset.equal ms full then `All b
        else `Split)
  in
  scan (batches_fwd st)

let match_one st p (src : int option) tag : (batch * int) option =
  let fwd = batches_fwd st in
  let from_wild () =
    match
      List.find_opt
        (fun b ->
          b.bt_tag = tag && b.bt_dest = None
          &&
          match Iset.min_elt b.bt_senders with
          | Some s -> sender_visible st b ~sender:s ~receiver:p
          | None -> false)
        fwd
    with
    | Some b -> (
      match Iset.min_elt b.bt_senders with
      | Some sdr -> Some (b, sdr)
      | None -> None)
    | None -> None
  in
  match src with
  | Some sp -> (
    let direct =
      List.find_opt
        (fun b ->
          b.bt_tag = tag
          &&
          match b.bt_dest with
          | Some d ->
            Iset.mem sp b.bt_senders
            && Skeleton.aff_at d sp = p
            && sender_visible st b ~sender:sp ~receiver:p
          | None -> false)
        fwd
    in
    match direct with Some b -> Some (b, sp) | None -> from_wild ())
  | None -> (
    let sender_for b =
      match b.bt_dest with
      | Some d ->
        if d.Skeleton.a = 0 then
          if d.Skeleton.b = p then Iset.min_elt b.bt_senders else None
        else if (p - d.Skeleton.b) mod d.Skeleton.a = 0 then begin
          let sdr = (p - d.Skeleton.b) / d.Skeleton.a in
          if Iset.mem sdr b.bt_senders then Some sdr else None
        end
        else None
      | None -> None
    in
    let rec scan = function
      | [] -> None
      | b :: rest when b.bt_tag <> tag -> scan rest
      | b :: rest -> (
        match sender_for b with
        | Some sdr when sender_visible st b ~sender:sdr ~receiver:p ->
          Some (b, sdr)
        | _ -> scan rest)
    in
    match scan fwd with Some r -> Some r | None -> from_wild ())

let consume (b : batch) sdrs = b.bt_senders <- Iset.diff b.bt_senders sdrs

(* --- group plumbing ----------------------------------------------------- *)

let sort_groups st =
  st.groups <- List.sort (fun a b -> compare a.g_lo b.g_lo) st.groups

let normalize st =
  sort_groups st;
  let rec merge = function
    | a :: b :: rest
      when a.g_cur = b.g_cur && b.g_lo = a.g_hi + 1 && a.g_ca = b.g_ca
           && a.g_cb = b.g_cb ->
      a.g_hi <- b.g_hi;
      merge (a :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  st.groups <- merge st.groups

let split_singleton st g =
  let s =
    { g_lo = g.g_lo; g_hi = g.g_lo; g_cur = g.g_cur; g_seen = false;
      g_ca = g.g_ca; g_cb = g.g_cb; g_last = g.g_last }
  in
  g.g_lo <- g.g_lo + 1;
  st.groups <- s :: st.groups

let split_at st g cuts =
  (* cuts: positions c with g_lo < c <= g_hi; upper pieces peel off *)
  List.iter
    (fun c ->
      let upper =
        { g_lo = c; g_hi = g.g_hi; g_cur = g.g_cur; g_seen = false;
          g_ca = g.g_ca; g_cb = g.g_cb; g_last = g.g_last }
      in
      g.g_hi <- c - 1;
      st.groups <- upper :: st.groups)
    (List.rev (List.sort_uniq compare cuts))

let split_at_event st g (ev : Skeleton.event) =
  split_at st g
    (List.filter
       (fun c -> c > g.g_lo && c <= g.g_hi)
       [ ev.Skeleton.e_plo; ev.Skeleton.e_phi + 1 ])

(* --- event processing --------------------------------------------------- *)

let process_send st g ~idx ~loc (dest : Skeleton.aff option) tag parts =
  let alpha = st.cfg.Config.alpha and beta = st.cfg.Config.beta in
  let lo = g.g_lo and hi = g.g_hi in
  g.g_cb <- g.g_cb +. alpha;
  let n = hi - lo + 1 in
  st.messages <- st.messages + n;
  st.c_msgs <- { ip_lo = lo; ip_hi = hi; ip_a = 0; ip_b = 1 } :: st.c_msgs;
  st.c_send <-
    { fp_lo = lo; fp_hi = hi; fp_a = 0.0; fp_b = alpha } :: st.c_send;
  let pieces, unknown =
    bytes_pieces ~word:st.cfg.Config.word_bytes ~lo ~hi parts
  in
  if unknown then
    note st
      (Fmt.str
         "send%s: payload size not statically evaluable; counted as 0 bytes"
         (if loc <> Loc.none then Fmt.str " at %a" Loc.pp loc else ""));
  if dest = None then
    note st
      (Fmt.str
         "send%s: destination not statically evaluable; matched first-fit"
         (if loc <> Loc.none then Fmt.str " at %a" Loc.pp loc else ""));
  let sa = site st loc "send" in
  Hashtbl.replace sa.sa_insts idx ();
  sa.sa_messages <- sa.sa_messages + n;
  List.iter
    (fun piece ->
      let l = piece.ip_lo and h = piece.ip_hi in
      let total = isum_piece piece in
      st.message_bytes <- st.message_bytes + total;
      st.c_bytes <- piece :: st.c_bytes;
      sa.sa_bytes <- sa.sa_bytes + total;
      sa.sa_seconds <-
        sa.sa_seconds
        +. (float_of_int (h - l + 1) *. alpha)
        +. (beta *. float_of_int total);
      sa.sa_max_msg <-
        max sa.sa_max_msg
          (max
             ((piece.ip_a * l) + piece.ip_b)
             ((piece.ip_a * h) + piece.ip_b));
      let aa = g.g_ca +. (beta *. float_of_int piece.ip_a)
      and ab = g.g_cb +. (beta *. float_of_int piece.ip_b) in
      let nd =
        { nd_what = "send"; nd_loc = loc; nd_plo = l; nd_phi = h;
          nd_time =
            Float.max
              ((g.g_ca *. float_of_int l) +. g.g_cb)
              ((g.g_ca *. float_of_int h) +. g.g_cb);
          nd_pred = g.g_last }
      in
      st.batches <-
        { bt_tag = tag; bt_dest = dest; bt_senders = Iset.range l h;
          bt_aff = Some (aa, ab);
          bt_arr_of = (fun s -> (aa *. float_of_int s) +. ab);
          bt_round = st.round; bt_node = Some nd }
        :: st.batches;
      g.g_last <- Some nd)
    pieces

(* Returns [true] when the group advanced past the recv. *)
let process_recv_singleton st g ~loc (src : Skeleton.aff option) tag =
  let p = g.g_lo in
  let src_c = Option.map (fun s -> Skeleton.aff_at s p) src in
  if src = None then
    note st
      (Fmt.str
         "recv%s: source not statically evaluable; matched first-fit"
         (if loc <> Loc.none then Fmt.str " at %a" Loc.pp loc else ""));
  match match_one st p src_c tag with
  | Some (b, sdr) ->
    consume b (Iset.singleton sdr);
    let own = clock_at g p in
    let arr = b.bt_arr_of sdr in
    if arr > own then begin
      st.c_wait <-
        { fp_lo = p; fp_hi = p; fp_a = 0.0; fp_b = arr -. own } :: st.c_wait;
      g.g_ca <- 0.0;
      g.g_cb <- arr;
      g.g_last <-
        Some
          { nd_what = "recv"; nd_loc = loc; nd_plo = p; nd_phi = p;
            nd_time = arr; nd_pred = b.bt_node }
    end;
    true
  | None -> false

(* Binary search: the affine sign function d(r) = da*r + db changes sign
   at most once on [lo, hi]; return the first r whose sign differs from
   d(lo)'s.  Assumes d(lo) and d(hi) disagree. *)
let crossing ~lo ~hi da db =
  let pos r = (da *. float_of_int r) +. db > 0.0 in
  let s0 = pos lo in
  let a = ref lo and b = ref hi in
  while !b - !a > 1 do
    let m = !a + ((!b - !a) / 2) in
    if pos m = s0 then a := m else b := m
  done;
  !b

type recv_outcome = Advanced | Blocked | Resplit

let process_recv_group st g ~loc (s : Skeleton.aff) tag : recv_outcome =
  let lo = g.g_lo and hi = g.g_hi in
  match match_group st ~lo ~hi s tag with
  | `None -> Blocked
  | `Split ->
    split_singleton st g;
    Resplit
  | `All b -> (
    match b.bt_aff with
    | None ->
      split_singleton st g;
      Resplit
    | Some (aa, ab) ->
      (* arrival(r) = aa*(s.a*r + s.b) + ab *)
      let arr_a = aa *. float_of_int s.Skeleton.a
      and arr_b = (aa *. float_of_int s.Skeleton.b) +. ab in
      let da = arr_a -. g.g_ca and db = arr_b -. g.g_cb in
      let d r = (da *. float_of_int r) +. db in
      let dlo = d lo and dhi = d hi in
      if dlo > 0.0 <> (dhi > 0.0) then begin
        (* max(own, arrival) crosses inside the interval: split first,
           each piece re-matches uniformly *)
        split_at st g [ crossing ~lo ~hi da db ];
        Resplit
      end
      else begin
        consume b (image_of_interval s ~lo ~hi);
        if dlo > 0.0 || dhi > 0.0 then begin
          (* arrival wins (ties included where one endpoint is 0) *)
          st.c_wait <-
            { fp_lo = lo; fp_hi = hi; fp_a = da; fp_b = db } :: st.c_wait;
          g.g_ca <- arr_a;
          g.g_cb <- arr_b;
          g.g_last <-
            Some
              { nd_what = "recv"; nd_loc = loc; nd_plo = lo; nd_phi = hi;
                nd_time =
                  Float.max
                    ((arr_a *. float_of_int lo) +. arr_b)
                    ((arr_a *. float_of_int hi) +. arr_b);
                nd_pred = b.bt_node }
        end;
        Advanced
      end)

(* --- collectives -------------------------------------------------------- *)

let payload_bytes st (payload : Skeleton.coll_payload) : int option =
  match payload with
  | Skeleton.Cp_scalar _ -> Some st.cfg.Config.word_bytes
  | Skeleton.Cp_section { cs_triplets = Some tl; _ } ->
    Some
      (List.fold_left (fun acc tr -> acc * Triplet.count tr) 1 tl
      * st.cfg.Config.word_bytes)
  | Skeleton.Cp_section { cs_triplets = None; _ } -> None
  | Skeleton.Cp_remap _ -> None

(* Remap traffic from the same ownership arithmetic the scheduler uses,
   without the per-element-per-processor loop: O(dist extents + P). *)
let remap_traffic ~nprocs ~word (old_l : Layout.t) (new_l : Layout.t) =
  let sent = Array.make nprocs 0
  and received = Array.make nprocs 0
  and npairs = Array.make nprocs 0 in
  let bounds = old_l.Layout.bounds in
  let total_elems =
    List.fold_left (fun acc be -> acc * Layout.extent be) 1 bounds
  in
  (match (old_l.Layout.dist_dim, new_l.Layout.dist_dim) with
  | None, _ -> ()  (* everything was replicated: every p already had it *)
  | Some d_old, None ->
    (* to replicated: every p needs every element; had only its own *)
    let blo, bhi = List.nth bounds d_old in
    let row = total_elems / (bhi - blo + 1) in
    let owned_elems = Array.make nprocs 0 in
    for i = blo to bhi do
      let q = Layout.owner_of old_l ~nprocs i in
      owned_elems.(q) <- owned_elems.(q) + row
    done;
    let owners = ref 0 in
    Array.iter (fun c -> if c > 0 then incr owners) owned_elems;
    for p = 0 to nprocs - 1 do
      if owned_elems.(p) > 0 then begin
        sent.(p) <- owned_elems.(p) * (nprocs - 1) * word;
        npairs.(p) <- npairs.(p) + (nprocs - 1)
      end;
      received.(p) <- (total_elems - owned_elems.(p)) * word;
      npairs.(p) <-
        npairs.(p) + !owners - (if owned_elems.(p) > 0 then 1 else 0)
    done
  | Some d_old, Some d_new when d_old = d_new ->
    let blo, bhi = List.nth bounds d_old in
    let row = total_elems / (bhi - blo + 1) in
    let partners = Hashtbl.create 16 in
    for i = blo to bhi do
      let q = Layout.owner_of old_l ~nprocs i in
      let r = Layout.owner_of new_l ~nprocs i in
      if q <> r then begin
        sent.(q) <- sent.(q) + (row * word);
        received.(r) <- received.(r) + (row * word);
        Hashtbl.replace partners (q, r) ()
      end
    done;
    Hashtbl.iter
      (fun (q, r) () ->
        npairs.(q) <- npairs.(q) + 1;
        npairs.(r) <- npairs.(r) + 1)
      partners
  | Some d_old, Some d_new ->
    let olo, ohi = List.nth bounds d_old in
    let nlo, nhi = List.nth bounds d_new in
    let row = total_elems / ((ohi - olo + 1) * (nhi - nlo + 1)) in
    let partners = Hashtbl.create 16 in
    for i = olo to ohi do
      let q = Layout.owner_of old_l ~nprocs i in
      for j = nlo to nhi do
        let r = Layout.owner_of new_l ~nprocs j in
        if q <> r then begin
          sent.(q) <- sent.(q) + (row * word);
          received.(r) <- received.(r) + (row * word);
          Hashtbl.replace partners (q, r) ()
        end
      done
    done;
    Hashtbl.iter
      (fun (q, r) () ->
        npairs.(q) <- npairs.(q) + 1;
        npairs.(r) <- npairs.(r) + 1)
      partners);
  (sent, received, npairs, Array.fold_left ( + ) 0 sent)

let apply_timed_coll st (ev : Skeleton.event) =
  match ev.Skeleton.e_kind with
  | Skeleton.Ev_coll { id; site = _; label; root = _; payload } -> (
    let loc = ev.Skeleton.e_loc in
    let counted = Hashtbl.mem st.counted_colls id in
    Hashtbl.replace st.counted_colls id ();
    let tmax =
      List.fold_left (fun acc g -> Float.max acc (group_max_clock g)) 0.0
        st.groups
    in
    let arg =
      List.find_opt (fun g -> group_max_clock g = tmax) st.groups
    in
    let pred = Option.bind arg (fun g -> g.g_last) in
    match payload with
    | Skeleton.Cp_scalar _ | Skeleton.Cp_section _ ->
      let bytes =
        match payload_bytes st payload with
        | Some b -> b
        | None ->
          note st
            (Fmt.str
               "broadcast %s%s: payload size not statically evaluable; \
                counted as 0 bytes"
               label
               (if loc <> Loc.none then Fmt.str " at %a" Loc.pp loc else ""));
          0
      in
      if not counted then begin
        st.bcasts <- st.bcasts + 1;
        st.bcast_bytes <- st.bcast_bytes + bytes
      end;
      let cost = Config.bcast_cost st.cfg bytes in
      let release = tmax +. cost in
      let nd =
        { nd_what = "bcast " ^ label; nd_loc = loc; nd_plo = 0;
          nd_phi = st.n - 1; nd_time = release; nd_pred = pred }
      in
      List.iter
        (fun g ->
          st.c_coll <-
            { fp_lo = g.g_lo; fp_hi = g.g_hi; fp_a = -.g.g_ca;
              fp_b = release -. g.g_cb }
            :: st.c_coll;
          g.g_ca <- 0.0;
          g.g_cb <- release;
          g.g_last <- Some nd;
          g.g_cur <- g.g_cur + 1)
        st.groups;
      let sa = site st loc "bcast" in
      sa.sa_bcasts <- sa.sa_bcasts + 1;
      sa.sa_bytes <- sa.sa_bytes + bytes;
      sa.sa_seconds <- sa.sa_seconds +. cost
    | Skeleton.Cp_remap { cr_array; cr_old; cr_new; cr_move } ->
      if not cr_move then begin
        if not counted then st.remap_marks <- st.remap_marks + 1;
        let nd =
          { nd_what = "remap (mark) " ^ cr_array; nd_loc = loc; nd_plo = 0;
            nd_phi = st.n - 1; nd_time = tmax; nd_pred = pred }
        in
        List.iter
          (fun g ->
            st.c_coll <-
              { fp_lo = g.g_lo; fp_hi = g.g_hi; fp_a = -.g.g_ca;
                fp_b = tmax -. g.g_cb }
              :: st.c_coll;
            g.g_ca <- 0.0;
            g.g_cb <- tmax;
            g.g_last <- Some nd;
            g.g_cur <- g.g_cur + 1)
          st.groups
      end
      else begin
        let sent, received, npairs, total =
          remap_traffic ~nprocs:st.n ~word:st.cfg.Config.word_bytes cr_old
            cr_new
        in
        if not counted then begin
          st.remaps <- st.remaps + 1;
          st.remap_bytes <- st.remap_bytes + total
        end;
        let cost p =
          (float_of_int npairs.(p) *. st.cfg.Config.alpha)
          +. (st.cfg.Config.beta *. float_of_int (sent.(p) + received.(p)))
        in
        let maxrel = ref tmax in
        for p = 0 to st.n - 1 do
          maxrel := Float.max !maxrel (tmax +. cost p)
        done;
        let nd =
          { nd_what = "remap " ^ cr_array; nd_loc = loc; nd_plo = 0;
            nd_phi = st.n - 1; nd_time = !maxrel; nd_pred = pred }
        in
        (* collective wait per p = release(p) - clock(p) *)
        List.iter
          (fun g ->
            for p = g.g_lo to g.g_hi do
              st.c_coll <-
                { fp_lo = p; fp_hi = p; fp_a = 0.0;
                  fp_b = tmax +. cost p -. clock_at g p }
                :: st.c_coll
            done)
          st.groups;
        let cur = (List.hd st.groups).g_cur + 1 in
        (* rebuild groups as runs of equal post-remap release *)
        let groups = ref [] in
        let p = ref 0 in
        while !p < st.n do
          let c = cost !p in
          let q = ref !p in
          while !q + 1 < st.n && cost (!q + 1) = c do
            incr q
          done;
          groups :=
            { g_lo = !p; g_hi = !q; g_cur = cur; g_seen = false; g_ca = 0.0;
              g_cb = tmax +. c; g_last = Some nd }
            :: !groups;
          p := !q + 1
        done;
        st.groups <- List.rev !groups;
        let sa = site st loc "remap" in
        sa.sa_remaps <- sa.sa_remaps + 1;
        sa.sa_bytes <- sa.sa_bytes + total;
        sa.sa_seconds <- sa.sa_seconds +. (!maxrel -. tmax)
      end;
      st.progress <- true)
  | _ -> Diag.internal ~pass:"cost" "timed collective on a non-collective event"

(* --- the group pump ----------------------------------------------------- *)

let advance st (evs : Skeleton.event array) g =
  let len = Array.length evs in
  let continue_ = ref true in
  while !continue_ do
    if g.g_cur >= len then begin
      g.g_seen <- true;
      continue_ := false
    end
    else begin
      let ev = evs.(g.g_cur) in
      if ev.Skeleton.e_phi < g.g_lo || ev.Skeleton.e_plo > g.g_hi then
        g.g_cur <- g.g_cur + 1
      else if ev.Skeleton.e_plo > g.g_lo || ev.Skeleton.e_phi < g.g_hi then begin
        split_at_event st g ev;
        continue_ := false
      end
      else
        match ev.Skeleton.e_kind with
        | Skeleton.Ev_assume _ -> g.g_cur <- g.g_cur + 1
        | Skeleton.Ev_coll _ ->
          g.g_seen <- true;
          continue_ := false
        | Skeleton.Ev_send { dest; tag; parts } ->
          if dest = None && g.g_lo < g.g_hi then begin
            split_singleton st g;
            continue_ := false
          end
          else begin
            process_send st g ~idx:g.g_cur ~loc:ev.Skeleton.e_loc dest tag
              parts;
            g.g_cur <- g.g_cur + 1;
            st.progress <- true
          end
        | Skeleton.Ev_recv { src; tag; arrays = _ } ->
          if g.g_lo = g.g_hi then begin
            if process_recv_singleton st g ~loc:ev.Skeleton.e_loc src tag
            then begin
              g.g_cur <- g.g_cur + 1;
              st.progress <- true
            end
            else begin
              g.g_seen <- true;
              continue_ := false
            end
          end
          else (
            match src with
            | None ->
              split_singleton st g;
              continue_ := false
            | Some s -> (
              match process_recv_group st g ~loc:ev.Skeleton.e_loc s tag with
              | Advanced ->
                g.g_cur <- g.g_cur + 1;
                st.progress <- true
              | Blocked ->
                g.g_seen <- true;
                continue_ := false
              | Resplit -> continue_ := false))
    end
  done

let rec pump st evs =
  sort_groups st;
  match List.find_opt (fun g -> not g.g_seen) st.groups with
  | None -> ()
  | Some g ->
    advance st evs g;
    pump st evs

let replay st (events : Skeleton.event list) =
  let evs = Array.of_list events in
  let len = Array.length evs in
  let continue_rounds = ref true in
  while !continue_rounds do
    st.progress <- false;
    st.round <- st.round + 1;
    List.iter (fun g -> g.g_seen <- false) st.groups;
    normalize st;
    pump st evs;
    (* collective barrier: fires when the whole ensemble is parked at
       the same emission *)
    let at_coll g =
      if g.g_cur >= len then None
      else
        match evs.(g.g_cur).Skeleton.e_kind with
        | Skeleton.Ev_coll _ -> Some g.g_cur
        | _ -> None
    in
    sort_groups st;
    let ready =
      match st.groups with
      | [] -> false
      | g0 :: rest -> (
        match at_coll g0 with
        | Some c0 -> List.for_all (fun g -> at_coll g = Some c0) rest
        | None -> false)
    in
    if ready then begin
      (match st.groups with
      | g0 :: _ -> apply_timed_coll st evs.(g0.g_cur)
      | [] -> ());
      st.progress <- true
    end;
    if not st.progress then begin
      (* quiescence with unfinished processors: the program would
         deadlock dynamically.  Force past the blockage so the totals
         still cover every event, and flag the prediction. *)
      let blocked = List.filter (fun g -> g.g_cur < len) st.groups in
      if blocked <> [] then begin
        note st
          "replay reached quiescence before all events completed \
           (blocked receive or incomplete collective); remaining events \
           priced without waits";
        List.iter
          (fun g ->
            (match evs.(g.g_cur).Skeleton.e_kind with
            | Skeleton.Ev_coll { id; payload; _ } ->
              if not (Hashtbl.mem st.counted_colls id) then begin
                Hashtbl.replace st.counted_colls id ();
                match payload with
                | Skeleton.Cp_scalar _ | Skeleton.Cp_section _ ->
                  st.bcasts <- st.bcasts + 1;
                  st.bcast_bytes <-
                    st.bcast_bytes
                    + Option.value ~default:0 (payload_bytes st payload)
                | Skeleton.Cp_remap { cr_move; _ } ->
                  if cr_move then st.remaps <- st.remaps + 1
                  else st.remap_marks <- st.remap_marks + 1
              end
            | _ -> ());
            g.g_cur <- g.g_cur + 1)
          blocked;
        st.progress <- true
      end
    end;
    continue_rounds := st.progress
  done

(* --- results ------------------------------------------------------------ *)

type site_cost = {
  site_loc : Loc.t;
  site_what : string;  (* "send" | "bcast" | "remap" *)
  site_messages : int;
  site_bytes : int;
  site_bcasts : int;
  site_remaps : int;
  site_seconds : float;
}

type t = {
  nprocs : int;
  messages : int;
  message_bytes : int;
  bcasts : int;
  bcast_bytes : int;
  remaps : int;
  remap_marks : int;
  remap_bytes : int;
  makespan : float;
  exact : bool;
  assumptions : string list;
  per_proc_messages : ipiece list;
  per_proc_bytes : ipiece list;
  send_seconds : fpiece list;
  wait_seconds : fpiece list;
  coll_seconds : fpiece list;
  critical_path : step list;
  sites : site_cost list;
  findings : Finding.t list;
  events : int;
  regions_excluded : int;
  profile_used : bool;
}

let comm_ops t = t.messages + t.bcasts + t.remaps + t.remap_marks

let region_has_comm (rg : Absint.region) =
  List.exists
    (fun (ev : Skeleton.event) ->
      match ev.Skeleton.e_kind with
      | Skeleton.Ev_send _ | Skeleton.Ev_recv _ | Skeleton.Ev_coll _ -> true
      | Skeleton.Ev_assume _ -> false)
    (rg.Absint.rg_then @ rg.Absint.rg_else)

let analyze ?profile:prof ~(config : Config.t) (prog : Node.program) : t =
  let nprocs = config.Config.nprocs in
  let branch_oracle = Option.map oracle prof in
  let r = Absint.walk ?branch_oracle ~nprocs prog in
  let st =
    { n = nprocs; cfg = config; batches = []; groups =
        [ { g_lo = 0; g_hi = nprocs - 1; g_cur = 0; g_seen = false;
            g_ca = 0.0; g_cb = 0.0; g_last = None } ];
      round = 0; progress = false; messages = 0; message_bytes = 0;
      bcasts = 0; bcast_bytes = 0; remaps = 0; remap_marks = 0;
      remap_bytes = 0; c_msgs = []; c_bytes = []; c_send = []; c_wait = [];
      c_coll = []; sites = Hashtbl.create 16; notes = [];
      counted_colls = Hashtbl.create 16 }
  in
  if not r.Absint.complete then
    note st
      "the abstract walk did not cover the whole program (budget or \
       invalid node program); totals cover the analysed prefix only";
  let comm_regions =
    List.filter region_has_comm r.Absint.regions |> List.length
  in
  if comm_regions > 0 then
    note st
      (Fmt.str
         "communication inside %d statically-unresolved region%s is \
          excluded from the totals"
         comm_regions
         (if comm_regions = 1 then "" else "s"));
  (match prof with
  | Some p ->
    let comm_locs =
      List.filter_map
        (fun rg ->
          if region_has_comm rg then Some rg.Absint.rg_if_loc else None)
        r.Absint.regions
    in
    List.iter
      (fun (loc, tcnt, fcnt) ->
        if List.mem loc comm_locs then
          note st
            (Fmt.str
               "IF at %a took both branches sequentially (%d true, %d \
                false); its communication is excluded"
               Loc.pp loc tcnt fcnt))
      (mixed_sites p)
  | None -> ());
  replay st r.Absint.events;
  let makespan =
    List.fold_left (fun acc g -> Float.max acc (group_max_clock g)) 0.0
      st.groups
  in
  (* critical path: predecessor chain from a processor achieving the
     makespan *)
  let critical_path =
    let last =
      List.find_opt (fun g -> group_max_clock g = makespan) st.groups
      |> Fun.flip Option.bind (fun g -> g.g_last)
    in
    let rec chain acc = function
      | None -> acc
      | Some nd ->
        chain
          ({ st_what = nd.nd_what; st_loc = nd.nd_loc; st_plo = nd.nd_plo;
             st_phi = nd.nd_phi; st_time = nd.nd_time }
          :: acc)
          nd.nd_pred
    in
    chain [] last
  in
  let sites =
    Hashtbl.fold
      (fun (loc, what) sa acc ->
        { site_loc = loc; site_what = what; site_messages = sa.sa_messages;
          site_bytes = sa.sa_bytes; site_bcasts = sa.sa_bcasts;
          site_remaps = sa.sa_remaps; site_seconds = sa.sa_seconds }
        :: acc)
      st.sites []
    |> List.sort (fun a b -> compare b.site_seconds a.site_seconds)
  in
  (* findings: provably-unvectorized per-element sends, plus one Info
     per cost-model assumption *)
  let findings = ref [] in
  Hashtbl.iter
    (fun (loc, what) sa ->
      if
        what = "send"
        && Hashtbl.length sa.sa_insts >= 4
        && sa.sa_max_msg <= config.Config.word_bytes
        && sa.sa_messages > 0
      then
        findings :=
          Finding.make ~loc Finding.Warning "unvectorized-comm"
            (Fmt.str
               "%d per-element messages (each <= 1 element) sent from this \
                statement: message vectorization did not apply"
               (Hashtbl.length sa.sa_insts))
          :: !findings)
    st.sites;
  List.iter
    (fun msg ->
      findings :=
        Finding.make Finding.Info "cost-assumption" msg :: !findings)
    st.notes;
  {
    nprocs;
    messages = st.messages;
    message_bytes = st.message_bytes;
    bcasts = st.bcasts;
    bcast_bytes = st.bcast_bytes;
    remaps = st.remaps;
    remap_marks = st.remap_marks;
    remap_bytes = st.remap_bytes;
    makespan;
    exact = (st.notes = []);
    assumptions = List.rev st.notes;
    per_proc_messages = sweep_int st.c_msgs;
    per_proc_bytes = sweep_int st.c_bytes;
    send_seconds = sweep_float st.c_send;
    wait_seconds = sweep_float st.c_wait;
    coll_seconds = sweep_float st.c_coll;
    critical_path;
    sites;
    findings = Finding.sort !findings;
    events = List.length r.Absint.events;
    regions_excluded = comm_regions;
    profile_used = prof <> None;
  }

(* --- per-processor queries ---------------------------------------------- *)

let messages_at t p = ipieces_at t.per_proc_messages p
let bytes_at t p = ipieces_at t.per_proc_bytes p
let wait_at t p = fpieces_at t.wait_seconds p +. fpieces_at t.coll_seconds p
let send_time_at t p = fpieces_at t.send_seconds p

(* --- serialization ------------------------------------------------------ *)

let ipieces_json ps =
  Json.List
    (List.map
       (fun c ->
         Json.Obj
           [ ("lo", Json.Int c.ip_lo); ("hi", Json.Int c.ip_hi);
             ("a", Json.Int c.ip_a); ("b", Json.Int c.ip_b) ])
       ps)

let fpieces_json ps =
  Json.List
    (List.map
       (fun c ->
         Json.Obj
           [ ("lo", Json.Int c.fp_lo); ("hi", Json.Int c.fp_hi);
             ("a", Json.Float c.fp_a); ("b", Json.Float c.fp_b) ])
       ps)

let loc_json (loc : Loc.t) =
  if loc = Loc.none then Json.Null
  else
    Json.Obj
      [ ("file", Json.Str loc.Loc.file); ("line", Json.Int loc.Loc.line);
        ("col", Json.Int loc.Loc.col) ]

let to_json t =
  Json.Obj
    [
      ("nprocs", Json.Int t.nprocs);
      ("messages", Json.Int t.messages);
      ("message_bytes", Json.Int t.message_bytes);
      ("bcasts", Json.Int t.bcasts);
      ("bcast_bytes", Json.Int t.bcast_bytes);
      ("remaps", Json.Int t.remaps);
      ("remap_marks", Json.Int t.remap_marks);
      ("remap_bytes", Json.Int t.remap_bytes);
      ("comm_ops", Json.Int (comm_ops t));
      ("predicted_elapsed_seconds", Json.Float t.makespan);
      ("exact", Json.Bool t.exact);
      ("assumptions", Json.List (List.map (fun s -> Json.Str s) t.assumptions));
      ("per_proc_messages", ipieces_json t.per_proc_messages);
      ("per_proc_bytes", ipieces_json t.per_proc_bytes);
      ("send_seconds", fpieces_json t.send_seconds);
      ("wait_seconds", fpieces_json t.wait_seconds);
      ("coll_seconds", fpieces_json t.coll_seconds);
      ( "critical_path",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [ ("what", Json.Str s.st_what); ("loc", loc_json s.st_loc);
                   ("plo", Json.Int s.st_plo); ("phi", Json.Int s.st_phi);
                   ("seconds", Json.Float s.st_time) ])
             t.critical_path) );
      ( "sites",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [ ("loc", loc_json s.site_loc);
                   ("what", Json.Str s.site_what);
                   ("messages", Json.Int s.site_messages);
                   ("bytes", Json.Int s.site_bytes);
                   ("bcasts", Json.Int s.site_bcasts);
                   ("remaps", Json.Int s.site_remaps);
                   ("seconds", Json.Float s.site_seconds) ])
             t.sites) );
      ("events", Json.Int t.events);
      ("regions_excluded", Json.Int t.regions_excluded);
      ("profile_used", Json.Bool t.profile_used);
    ]

let to_metrics t : Fd_trace.Metrics.t =
  let m = Fd_trace.Metrics.create () in
  let c name v =
    Fd_trace.Metrics.set_counter (Fd_trace.Metrics.counter m name) v
  in
  let g name v = Fd_trace.Metrics.set (Fd_trace.Metrics.gauge m name) v in
  c "nprocs" t.nprocs;
  c "messages" t.messages;
  c "message_bytes" t.message_bytes;
  c "bcasts" t.bcasts;
  c "bcast_bytes" t.bcast_bytes;
  c "remaps" t.remaps;
  c "remap_marks" t.remap_marks;
  c "remap_bytes" t.remap_bytes;
  c "comm_ops" (comm_ops t);
  c "cost_exact" (if t.exact then 1 else 0);
  c "cost_regions_excluded" t.regions_excluded;
  g "elapsed_seconds" t.makespan;
  m

let us s = s *. 1e6

let pp_pieces_int ppf ps =
  let pp_one ppf c =
    if c.ip_lo = c.ip_hi then
      Fmt.pf ppf "p%d: %d" c.ip_lo ((c.ip_a * c.ip_lo) + c.ip_b)
    else if c.ip_a = 0 then
      Fmt.pf ppf "p%d..p%d: %d" c.ip_lo c.ip_hi c.ip_b
    else
      Fmt.pf ppf "p%d..p%d: %d*p%+d" c.ip_lo c.ip_hi c.ip_a c.ip_b
  in
  Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any ", ") pp_one) ps

let pp ppf t =
  Fmt.pf ppf "predicted communication cost for P=%d:@," t.nprocs;
  Fmt.pf ppf "  messages      %d (%d bytes)@," t.messages t.message_bytes;
  Fmt.pf ppf "  bcasts        %d (%d bytes)@," t.bcasts t.bcast_bytes;
  Fmt.pf ppf "  remaps        %d physical (%d bytes), %d mark-only@,"
    t.remaps t.remap_bytes t.remap_marks;
  Fmt.pf ppf "  makespan      %.1fus%s@," (us t.makespan)
    (if t.exact then "" else " (approximate)");
  if t.per_proc_messages <> [] then
    Fmt.pf ppf "  msgs/proc     %a@," pp_pieces_int t.per_proc_messages;
  if t.per_proc_bytes <> [] then
    Fmt.pf ppf "  bytes/proc    %a@," pp_pieces_int t.per_proc_bytes;
  List.iter (fun a -> Fmt.pf ppf "  assumption    %s@," a) t.assumptions

let pp_critical_path ppf t =
  if t.critical_path = [] then
    Fmt.pf ppf "critical path: empty (no timed communication)@,"
  else begin
    Fmt.pf ppf "critical path (%d events to t=%.1fus):@,"
      (List.length t.critical_path) (us t.makespan);
    List.iter
      (fun s ->
        Fmt.pf ppf "  %8.1fus  %s %s%s@," (us s.st_time)
          (if s.st_plo = s.st_phi then Fmt.str "p%d" s.st_plo
           else Fmt.str "p%d..p%d" s.st_plo s.st_phi)
          s.st_what
          (if s.st_loc <> Loc.none then Fmt.str "  [%a]" Loc.pp s.st_loc
           else ""))
      t.critical_path
  end

let pp_sites ppf t =
  if t.sites = [] then Fmt.pf ppf "no communication sites@,"
  else begin
    Fmt.pf ppf "per-site communication cost (most expensive first):@,";
    List.iter
      (fun s ->
        Fmt.pf ppf "  %8.1fus  %-5s %6d msgs %8d bytes  %s@,"
          (us s.site_seconds) s.site_what
          (s.site_messages + s.site_bcasts + s.site_remaps)
          s.site_bytes
          (if s.site_loc <> Loc.none then Fmt.str "%a" Loc.pp s.site_loc
           else "<generated>"))
      t.sites
  end
