(** Hand-written lexer for mini-Fortran D.

    Free-form source: case-insensitive keywords and identifiers, [!]
    comments to end of line, [&] at end of line continues the statement,
    [;] acts as a statement separator.  Identifiers may contain [$]
    (compiler-generated names like [my$p] are legal source).  Dotted
    operators ([.eq.], [.and.], [.true.], ...) and symbolic spellings
    ([==], [<=], [/=], [<>]) are both accepted.

    Error handling: without a sink, malformed input raises
    {!Fd_support.Diag.Compile_error} at the first error.  With
    [?sink], lexical errors are {e recorded} (at most one per source
    line, to damp cascades) and the lexer resynchronizes and keeps
    producing tokens — the stream is always [EOF]-terminated. *)

type t

val make : ?file:string -> ?sink:Fd_support.Diag.sink -> string -> t

val next : t -> Fd_support.Loc.t * Token.t
(** Next token; returns [EOF] at end of input.
    @raise Fd_support.Diag.Compile_error on malformed input when the
    lexer has no sink. *)

val next_sp : t -> Fd_support.Loc.t * Fd_support.Loc.t * Token.t
(** Like {!next} but also returns the token's end location
    (exclusive column), for caret/underline diagnostics. *)

val tokenize : ?file:string -> string -> (Fd_support.Loc.t * Token.t) list
(** The whole token stream, ending with [EOF]. *)

val tokenize_sp :
  ?file:string ->
  ?sink:Fd_support.Diag.sink ->
  string ->
  (Fd_support.Loc.t * Fd_support.Loc.t * Token.t) list
(** Spanned token stream.  With [?sink], recovers from lexical errors
    (recording them) instead of raising. *)
