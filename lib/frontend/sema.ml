(* Semantic analysis: builds per-unit symbol tables, resolves
   `ident(args)` into array references vs. intrinsic applications, folds
   PARAMETER constants, and type/shape-checks the whole program.

   Error recovery: every check records its diagnostic into a per-run
   {!Diag.sink} and continues with a benign fallback (a plausible type,
   rank-1 bounds, the unresolved expression), so one pass over the
   program reports every semantic error.  [check]/[check_source]
   without an explicit sink raise the accumulated batch as
   {!Diag.Compile_errors} at the end — callers never receive an
   ill-typed [checked_program]. *)

open Fd_support

let intrinsics = [ "abs"; "max"; "min"; "mod"; "sqrt"; "float"; "int"; "sign" ]

let is_intrinsic name = List.mem name intrinsics

type checked_unit = { unit_ : Ast.punit; symtab : Symtab.t }

type checked_program = {
  units : checked_unit list;
  main : string;  (* name of the main program unit *)
}

let find_unit cp name =
  List.find_opt (fun cu -> String.equal cu.unit_.Ast.uname name) cp.units

let find_unit_exn cp name =
  match find_unit cp name with
  | Some cu -> cu
  | None -> Diag.error "no program unit named %s" name

(* --- Constant folding over PARAMETER bindings ----------------------- *)

let rec const_eval_int symtab (e : Ast.expr) : int option =
  match e with
  | Ast.Int_const n -> Some n
  | Ast.Var v -> Symtab.param_value symtab v
  | Ast.Un (Ast.Neg, a) -> Option.map (fun n -> -n) (const_eval_int symtab a)
  | Ast.Bin (op, a, b) -> (
    match (const_eval_int symtab a, const_eval_int symtab b) with
    | Some x, Some y -> (
      match op with
      | Ast.Add -> Some (x + y)
      | Ast.Sub -> Some (x - y)
      | Ast.Mul -> Some (x * y)
      | Ast.Div -> if y = 0 then None else Some (x / y)
      | Ast.Pow ->
        if y < 0 then None
        else
          let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
          Some (pow 1 y)
      | _ -> None)
    | _ -> None)
  | Ast.Funcall ("max", args) | Ast.Ref ("max", args) ->
    let vals = List.map (const_eval_int symtab) args in
    if List.for_all Option.is_some vals then
      Some (List.fold_left max min_int (List.map Option.get vals))
    else None
  | Ast.Funcall ("min", args) | Ast.Ref ("min", args) ->
    let vals = List.map (const_eval_int symtab) args in
    if List.for_all Option.is_some vals then
      Some (List.fold_left min max_int (List.map Option.get vals))
    else None
  | _ -> None

(* Fallback 1 keeps declared shapes legal (lo=1, hi=1) after an error. *)
let const_eval_int_rec sink symtab loc e =
  match const_eval_int symtab e with
  | Some n -> n
  | None ->
    Diag.error_to sink ~loc "expression must be a compile-time integer constant: %s"
      (Ast_printer.expr_to_string e);
    1

(* --- Symbol table construction -------------------------------------- *)

(* [Symtab.add]/[Symtab.set_common] fail fast on duplicates; in the
   recovering pass we record their diagnostic (attaching the unit
   location) and keep the first declaration. *)
let add_sym sink loc symtab name entry =
  try Symtab.add symtab name entry
  with Diag.Compile_error d -> Diag.report sink { d with loc }

let build_symtab sink (u : Ast.punit) : Symtab.t =
  let symtab = Symtab.create ~unit_name:u.uname ~formal_order:u.formals in
  let const_eval = const_eval_int_rec sink symtab u.uloc in
  List.iter
    (fun decl ->
      match decl with
      | Ast.Dcl_param bindings ->
        List.iter
          (fun (name, value) ->
            let v = const_eval value in
            add_sym sink u.uloc symtab name (Symtab.Param v))
          bindings
      | Ast.Dcl_type (ty, declarators) ->
        List.iter
          (fun (name, dims) ->
            match dims with
            | [] -> add_sym sink u.uloc symtab name (Symtab.Scalar ty)
            | _ ->
              let dims =
                List.map
                  (fun { Ast.dlo; dhi } -> (const_eval dlo, const_eval dhi))
                  dims
              in
              add_sym sink u.uloc symtab name (Symtab.Array { elt = ty; dims }))
          declarators
      | Ast.Dcl_decomposition declarators ->
        List.iter
          (fun (name, dims) ->
            let dims =
              List.map
                (fun { Ast.dlo; dhi } -> (const_eval dlo, const_eval dhi))
                dims
            in
            add_sym sink u.uloc symtab name (Symtab.Decomposition dims))
          declarators
      | Ast.Dcl_common _ -> ())
    u.decls;
  (* second pass: COMMON membership (members may be typed before or after
     the COMMON statement in the source, but both are declarations) *)
  List.iter
    (fun decl ->
      match decl with
      | Ast.Dcl_common (block, names) ->
        List.iter
          (fun name ->
            let ok =
              match Symtab.find symtab name with
              | Some (Symtab.Scalar _ | Symtab.Array _) -> true
              | Some _ ->
                Diag.error_to sink ~loc:u.uloc
                  "COMMON member %s of /%s/ must be a variable" name block;
                false
              | None ->
                Diag.error_to sink ~loc:u.uloc
                  "COMMON member %s of /%s/ is not declared" name block;
                false
            in
            if List.mem name u.formals then
              Diag.error_to sink ~loc:u.uloc "formal %s cannot be in COMMON /%s/"
                name block;
            if ok then
              try Symtab.set_common symtab name block
              with Diag.Compile_error d -> Diag.report sink { d with loc = u.uloc })
          names
      | _ -> ())
    u.decls;
  symtab

(* --- Expression resolution and typing ------------------------------- *)

type ty = Tint | Treal | Tlogical

let dtype_ty = function Ast.Real -> Treal | Ast.Integer -> Tint | Ast.Logical -> Tlogical

let ty_name = function Tint -> "integer" | Treal -> "real" | Tlogical -> "logical"

(* Loop index variables are implicitly integer if not declared. *)
type env = {
  symtab : Symtab.t;
  mutable loop_vars : string list;
  loc : Loc.t;
  sink : Diag.sink;
}

let err env fmt = Diag.error_to env.sink ~loc:env.loc fmt

let rec resolve_expr env (e : Ast.expr) : Ast.expr * ty =
  match e with
  | Ast.Int_const _ -> (e, Tint)
  | Ast.Real_const _ -> (e, Treal)
  | Ast.Logical_const _ -> (e, Tlogical)
  | Ast.Var v -> (
    if List.mem v env.loop_vars then (e, Tint)
    else
      match Symtab.find env.symtab v with
      | Some (Symtab.Scalar ty) -> (e, dtype_ty ty)
      | Some (Symtab.Param _) -> (e, Tint)
      | Some (Symtab.Array _) ->
        err env "whole-array reference %s not allowed here" v;
        (e, Treal)
      | Some (Symtab.Decomposition _) ->
        err env "decomposition %s used as a value" v;
        (e, Tint)
      | None ->
        (* implicit typing: integer i-n, real otherwise (Fortran default) *)
        if String.length v > 0 && v.[0] >= 'i' && v.[0] <= 'n' then (e, Tint)
        else (e, Treal))
  | Ast.Ref (name, args) | Ast.Funcall (name, args) -> (
    match Symtab.find env.symtab name with
    | Some (Symtab.Array { elt; dims }) ->
      if List.length args <> List.length dims then
        err env "array %s has rank %d, referenced with %d subscripts" name
          (List.length dims) (List.length args);
      let args =
        List.map
          (fun a ->
            let a', ty = resolve_expr env a in
            if ty <> Tint then err env "subscript of %s must be integer" name;
            a')
          args
      in
      (Ast.Ref (name, args), dtype_ty elt)
    | Some _ ->
      err env "%s is not an array or intrinsic" name;
      (e, Treal)
    | None ->
      if is_intrinsic name then resolve_intrinsic env name args
      else begin
        err env "unknown array or intrinsic %s" name;
        (e, Treal)
      end)
  | Ast.Bin (op, a, b) -> (
    let a', ta = resolve_expr env a in
    let b', tb = resolve_expr env b in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow ->
      if ta = Tlogical || tb = Tlogical then
        err env "arithmetic on logical operands";
      (Ast.Bin (op, a', b'), if ta = Treal || tb = Treal then Treal else Tint)
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      if ta = Tlogical || tb = Tlogical then
        err env "comparison of logical operands";
      (Ast.Bin (op, a', b'), Tlogical)
    | Ast.And | Ast.Or ->
      if ta <> Tlogical || tb <> Tlogical then
        err env "logical operator on %s/%s operands" (ty_name ta) (ty_name tb);
      (Ast.Bin (op, a', b'), Tlogical))
  | Ast.Un (Ast.Neg, a) ->
    let a', ta = resolve_expr env a in
    if ta = Tlogical then err env "negation of logical operand";
    (Ast.Un (Ast.Neg, a'), ta)
  | Ast.Un (Ast.Not, a) ->
    let a', ta = resolve_expr env a in
    if ta <> Tlogical then err env ".not. on %s operand" (ty_name ta);
    (Ast.Un (Ast.Not, a'), Tlogical)

and resolve_intrinsic env name args =
  let args_typed = List.map (resolve_expr env) args in
  let args' = List.map fst args_typed in
  let tys = List.map snd args_typed in
  let arity n =
    if List.length args <> n then
      err env "intrinsic %s expects %d argument(s)" name n
  in
  let hd_ty = function t :: _ -> t | [] -> Treal in
  let result_ty =
    match name with
    | "abs" ->
      arity 1;
      hd_ty tys
    | "sqrt" ->
      arity 1;
      Treal
    | "mod" ->
      arity 2;
      if tys <> [] && List.for_all (fun t -> t = Tint) tys then Tint else Treal
    | "max" | "min" ->
      if List.length args < 2 then
        err env "intrinsic %s expects >= 2 arguments" name;
      if List.exists (fun t -> t = Treal) tys then Treal else Tint
    | "float" ->
      arity 1;
      Treal
    | "int" ->
      arity 1;
      Tint
    | "sign" ->
      arity 2;
      hd_ty tys
    | _ ->
      err env "unknown intrinsic %s" name;
      Treal
  in
  if List.exists (fun t -> t = Tlogical) tys then
    err env "intrinsic %s applied to logical argument" name;
  (Ast.Funcall (name, args'), result_ty)

(* --- Statement resolution -------------------------------------------- *)

let rec resolve_stmt all_units env (s : Ast.stmt) : Ast.stmt =
  let loc = s.loc in
  let env = { env with loc } in
  let kind =
    match s.kind with
    | Ast.Assign (lhs, rhs) -> (
      let rhs', rty = resolve_expr env rhs in
      match lhs with
      | Ast.Var v -> (
        if List.mem v env.loop_vars then
          err env "cannot assign to active loop index %s" v;
        match Symtab.find env.symtab v with
        | Some (Symtab.Scalar ty) ->
          let lty = dtype_ty ty in
          if (lty = Tlogical) <> (rty = Tlogical) then
            err env "type mismatch assigning %s to %s" (ty_name rty) v;
          Ast.Assign (lhs, rhs')
        | Some (Symtab.Param _) ->
          err env "cannot assign to parameter %s" v;
          Ast.Assign (lhs, rhs')
        | Some (Symtab.Array _) ->
          err env "cannot assign to whole array %s" v;
          Ast.Assign (lhs, rhs')
        | Some (Symtab.Decomposition _) ->
          err env "cannot assign to decomposition %s" v;
          Ast.Assign (lhs, rhs')
        | None ->
          (* implicitly typed scalar *)
          Ast.Assign (lhs, rhs'))
      | Ast.Ref _ | Ast.Funcall _ -> (
        let lhs', lty = resolve_expr env lhs in
        match lhs' with
        | Ast.Ref _ ->
          if (lty = Tlogical) <> (rty = Tlogical) then
            err env "type mismatch in array assignment";
          Ast.Assign (lhs', rhs')
        | _ ->
          err env "left-hand side must be a variable or array element";
          Ast.Assign (lhs', rhs'))
      | _ ->
        err env "left-hand side must be a variable or array element";
        Ast.Assign (lhs, rhs'))
    | Ast.Do d ->
      let lo', tlo = resolve_expr env d.lo in
      let hi', thi = resolve_expr env d.hi in
      let step' =
        Option.map
          (fun e ->
            let e', t = resolve_expr env e in
            if t <> Tint then err env "DO step must be integer";
            e')
          d.step
      in
      if tlo <> Tint || thi <> Tint then err env "DO bounds must be integer";
      (match Symtab.find env.symtab d.var with
      | None | Some (Symtab.Scalar Ast.Integer) -> ()
      | Some _ -> err env "DO index %s must be an integer scalar" d.var);
      if List.mem d.var env.loop_vars then
        err env "loop index %s reused in nested loop" d.var;
      let saved = env.loop_vars in
      env.loop_vars <- d.var :: saved;
      let body = List.map (resolve_stmt all_units env) d.body in
      env.loop_vars <- saved;
      Ast.Do { d with lo = lo'; hi = hi'; step = step'; body }
    | Ast.If i ->
      let cond', tc = resolve_expr env i.cond in
      if tc <> Tlogical then err env "IF condition must be logical";
      Ast.If
        { cond = cond';
          then_ = List.map (resolve_stmt all_units env) i.then_;
          else_ = List.map (resolve_stmt all_units env) i.else_ }
    | Ast.Call (name, args) -> (
      match List.find_opt (fun u -> String.equal u.Ast.uname name) all_units with
      | None ->
        err env "call to unknown subroutine %s" name;
        Ast.Call (name, List.map (fun a -> fst (resolve_expr env a)) args)
      | Some callee ->
        if callee.Ast.ukind <> Ast.Subroutine then
          err env "%s is not a subroutine" name;
        if List.length args <> List.length callee.Ast.formals then
          err env "subroutine %s expects %d arguments, got %d" name
            (List.length callee.Ast.formals) (List.length args);
        let args' =
          List.map
            (fun a ->
              match a with
              | Ast.Var v when Symtab.is_array env.symtab v -> a (* whole array *)
              | _ -> fst (resolve_expr env a))
            args
        in
        Ast.Call (name, args'))
    | Ast.Align { array; target; subs } ->
      if not (Symtab.is_array env.symtab array) then
        err env "ALIGN of non-array %s" array;
      if
        not
          (Symtab.is_decomposition env.symtab target
          || Symtab.is_array env.symtab target)
      then err env "ALIGN target %s is not a decomposition or array" target
      else if List.length subs <> Symtab.rank env.symtab target then
        err env "ALIGN target %s has rank %d" target
          (Symtab.rank env.symtab target);
      s.kind
    | Ast.Distribute { decomp; dists } ->
      if not (Symtab.is_decomposition env.symtab decomp || Symtab.is_array env.symtab decomp)
      then err env "DISTRIBUTE of unknown decomposition or array %s" decomp
      else if List.length dists <> Symtab.rank env.symtab decomp then
        err env "DISTRIBUTE %s has rank %d" decomp
          (Symtab.rank env.symtab decomp);
      s.kind
    | Ast.Return -> s.kind
    | Ast.Print args -> Ast.Print (List.map (fun a -> fst (resolve_expr env a)) args)
  in
  { s with kind }

(* --- Dangling loop indices ------------------------------------------- *)

(* After a DO loop the index variable holds its exit value; under SPMD
   partitioning each processor's localized loop exits at its own local
   bound, so that value is processor-dependent.  Reading a loop index
   after its loop (before reassigning it) is therefore forbidden: the
   sequential reference and the node programs would legitimately
   disagree.  The walk is structural (the language has no GOTO): the set
   of dangling indices flows along each statement list, grown at every
   loop exit and cleared by assignment.  Loop bodies get one silent
   pre-pass so indices left dangling by a previous iteration (an inner
   loop's exit value read at the top of the next outer iteration) are
   caught too. *)

module Sset = Set.Make (String)

let rec expr_reads acc (e : Ast.expr) =
  match e with
  | Ast.Var v -> Sset.add v acc
  | Ast.Int_const _ | Ast.Real_const _ | Ast.Logical_const _ -> acc
  | Ast.Ref (_, args) | Ast.Funcall (_, args) ->
    List.fold_left expr_reads acc args
  | Ast.Bin (_, a, b) -> expr_reads (expr_reads acc a) b
  | Ast.Un (_, a) -> expr_reads acc a

let check_dangling sink (body : Ast.stmt list) =
  let reported = ref Sset.empty in
  (* one diagnostic per index: the first bad read is the actionable one *)
  let use ~report loc dangling e =
    if report then
      Sset.iter
        (fun v ->
          if not (Sset.mem v !reported) then begin
            reported := Sset.add v !reported;
            Diag.error_to sink ~loc
              "loop index %s is processor-dependent after its loop ends; \
               assign it before reading it"
              v
          end)
        (Sset.inter (expr_reads Sset.empty e) dangling)
  in
  let rec walk ~report dangling stmts =
    List.fold_left (stmt ~report) dangling stmts
  and stmt ~report dangling (s : Ast.stmt) =
    match s.Ast.kind with
    | Ast.Assign (lhs, rhs) ->
      (match lhs with
      | Ast.Ref (_, subs) -> List.iter (use ~report s.Ast.loc dangling) subs
      | _ -> ());
      use ~report s.Ast.loc dangling rhs;
      (match lhs with
      | Ast.Var v -> Sset.remove v dangling
      | _ -> dangling)
    | Ast.Do d ->
      use ~report s.Ast.loc dangling d.Ast.lo;
      use ~report s.Ast.loc dangling d.Ast.hi;
      Option.iter (use ~report s.Ast.loc dangling) d.Ast.step;
      let inside = Sset.remove d.Ast.var dangling in
      let carried = walk ~report:false inside d.Ast.body in
      let out =
        walk ~report
          (Sset.remove d.Ast.var (Sset.union inside carried))
          d.Ast.body
      in
      Sset.add d.Ast.var out
    | Ast.If i ->
      use ~report s.Ast.loc dangling i.Ast.cond;
      let t = walk ~report dangling i.Ast.then_ in
      let e = walk ~report dangling i.Ast.else_ in
      Sset.union t e
    | Ast.Call (_, args) ->
      List.iter (use ~report s.Ast.loc dangling) args;
      (* scalar actuals are passed by reference: the callee may redefine
         them, so a call also clears *)
      List.fold_left
        (fun acc a ->
          match a with Ast.Var v -> Sset.remove v acc | _ -> acc)
        dangling args
    | Ast.Print args ->
      List.iter (use ~report s.Ast.loc dangling) args;
      dangling
    | Ast.Align _ | Ast.Distribute _ | Ast.Return -> dangling
  in
  ignore (walk ~report:true Sset.empty body)

let check_unit sink all_units (u : Ast.punit) : checked_unit =
  let symtab = build_symtab sink u in
  (* every formal must be declared *)
  List.iter
    (fun f ->
      match Symtab.find symtab f with
      | Some (Symtab.Scalar _ | Symtab.Array _) -> ()
      | Some _ ->
        Diag.error_to sink ~loc:u.uloc "formal %s of %s has a bad declaration" f
          u.uname
      | None ->
        Diag.error_to sink ~loc:u.uloc "formal %s of %s is not declared" f u.uname)
    u.formals;
  let env = { symtab; loop_vars = []; loc = u.uloc; sink } in
  check_dangling sink u.body;
  let body = List.map (resolve_stmt all_units env) u.body in
  { unit_ = { u with body }; symtab }

let check_all ?file sink (p : Ast.program) : checked_program =
  (* whole-program diagnostics still carry a location (the first unit,
     or line 1 of the input) so every rejection is attributable *)
  let ploc =
    match p with
    | u :: _ -> u.Ast.uloc
    | [] ->
      { Loc.file = Option.value ~default:"<input>" file; line = 1; col = 1 }
  in
  let names = List.map (fun u -> u.Ast.uname) p in
  let dup = Listx.dedup ~equal:String.equal names in
  if List.length dup <> List.length names then
    Diag.error_to sink ~loc:ploc "duplicate program unit names";
  let mains = List.filter (fun u -> u.Ast.ukind = Ast.Main) p in
  let main =
    match mains with
    | [ m ] -> m.Ast.uname
    | [] ->
      Diag.error_to sink ~loc:ploc "program has no main unit";
      (match p with u :: _ -> u.Ast.uname | [] -> "")
    | m :: _ ->
      Diag.error_to sink ~loc:m.Ast.uloc "program has multiple main units";
      m.Ast.uname
  in
  let units = List.map (check_unit sink p) p in
  (* COMMON blocks must be declared identically in every unit: identical
     member names, types and shapes.  This strict layout rule is what
     makes storage trivially shareable by name (see docs/LANGUAGE.md). *)
  let block_signature (cu : checked_unit) block =
    List.filter_map
      (fun (name, b) ->
        if String.equal b block then
          Some
            (match Symtab.find_exn cu.symtab name with
            | Symtab.Scalar ty -> Fmt.str "%s:%s" name (Ast_printer.dtype_name ty)
            | Symtab.Array { elt; dims } ->
              Fmt.str "%s:%s(%s)" name (Ast_printer.dtype_name elt)
                (String.concat ","
                   (List.map (fun (a, b) -> Fmt.str "%d..%d" a b) dims))
            | _ ->
              Diag.internal ~pass:"sema"
                "COMMON member %s of /%s/ is neither scalar nor array" name block)
        else None)
      (Symtab.commons cu.symtab)
    |> String.concat ";"
  in
  let all_blocks =
    List.concat_map (fun (cu : checked_unit) -> List.map snd (Symtab.commons cu.symtab)) units
    |> List.sort_uniq compare
  in
  List.iter
    (fun block ->
      let sigs =
        List.filter_map
          (fun (cu : checked_unit) ->
            match block_signature cu block with
            | "" -> None
            | s -> Some (cu.unit_.Ast.uname, s))
          units
      in
      match sigs with
      | [] -> ()
      | (u0, s0) :: rest ->
        List.iter
          (fun (u1, s1) ->
            if not (String.equal s0 s1) then
              Diag.error_to sink ~loc:ploc
                "COMMON /%s/ is declared differently in %s and %s (members must match exactly)"
                block u0 u1)
          rest;
        (* every unit that uses the block must declare it; and since the
           compiler propagates decompositions through declared commons
           only, require all units to declare it *)
        if List.length sigs <> List.length units then
          Diag.error_to sink ~loc:ploc
            "COMMON /%s/ must be declared in every program unit (declared in %d of %d)"
            block (List.length sigs) (List.length units))
    all_blocks;
  { units; main }

let check ?file ?sink (p : Ast.program) : checked_program =
  match sink with
  | Some sink -> check_all ?file sink p
  | None ->
    let sink = Diag.sink () in
    let cp = check_all ?file sink p in
    Diag.raise_if_errors sink;
    cp

let check_source ?file ?sink src =
  match sink with
  | Some sink -> check ?file ~sink (Parser.parse ?file ~sink src)
  | None ->
    (* Accumulate parse and sema diagnostics into one batch so a single
       invocation reports every frontend error. *)
    let sink = Diag.sink () in
    let p = Parser.parse ?file ~sink src in
    let cp = check ?file ~sink p in
    Diag.raise_if_errors sink;
    cp
