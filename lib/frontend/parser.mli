(** Recursive-descent parser for mini-Fortran D.

    One statement per logical line; [ident(args)] parses as {!Ast.Ref}
    and {!Sema} later rewrites intrinsic applications to {!Ast.Funcall};
    [elseif] chains desugar to nested IFs.  Statement ids are assigned in
    textual order (outer statements before their bodies).

    The parser {e recovers} from syntax errors: a failed statement is
    skipped to the next line, a failed unit header to the next
    PROGRAM/SUBROUTINE, so one parse reports every reachable error with
    a precise span. *)

val parse : ?file:string -> ?sink:Fd_support.Diag.sink -> string -> Ast.program
(** Parse a whole source file (one or more program units), recovering
    at statement/unit boundaries.

    With [?sink], syntax (and lexical) errors are recorded there and
    the best-effort AST of the error-free parts is returned; the caller
    decides when to fail (e.g. {!Fd_support.Diag.raise_if_errors}).
    Without a sink, any errors are raised at the end of the parse as a
    single {!Fd_support.Diag.Compile_errors} batch. *)

val parse_unit : ?file:string -> string -> Ast.punit
(** Parse exactly one program unit. *)
