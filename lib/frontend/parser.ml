(* Recursive-descent parser for mini-Fortran D.

   Grammar notes:
   - one statement per logical line (NEWLINE-separated; `&` continues);
   - `ident(args)` parses as [Ast.Ref]; {!Sema} rewrites intrinsic
     applications to [Ast.Funcall];
   - `elseif` chains desugar to nested IFs;
   - `end do` / `end if` two-word forms are accepted.

   Error recovery: when the state carries a {!Diag.sink}, a syntax
   error records a spanned diagnostic and raises the local {!Recover},
   which is caught at the nearest synchronization point — statement
   level ([block]/[decls] skip to just past the next NEWLINE) or unit
   level ([program] skips to the next PROGRAM/SUBROUTINE header) — so
   one parse reports every syntax error it can reach.  Without a sink
   the first error raises {!Diag.Compile_error} as before. *)

open Fd_support

type state = {
  toks : (Loc.t * Loc.t * Token.t) array;
  mutable pos : int;
  mutable next_sid : int;
  sink : Diag.sink option;
}

let make_state ?sink toks =
  { toks = Array.of_list toks; pos = 0; next_sid = 0; sink }

let fresh_sid st =
  let id = st.next_sid in
  st.next_sid <- id + 1;
  id

let cur st =
  let _, _, t = st.toks.(st.pos) in
  t

let cur_loc st =
  let l, _, _ = st.toks.(st.pos) in
  l

let cur_end st =
  let _, e, _ = st.toks.(st.pos) in
  e

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

(* Raised after a recorded syntax error when a sink is present; caught
   at statement/unit synchronization points. *)
exception Recover

let error st fmt =
  Format.kasprintf
    (fun msg ->
      let msg = Fmt.str "%s (found %s)" msg (Token.to_string (cur st)) in
      let d = Diag.make ~end_:(cur_end st) Diag.Error (cur_loc st) msg in
      match st.sink with
      | None -> raise (Diag.Compile_error d)
      | Some sink ->
        Diag.report sink d;
        raise Recover)
    fmt

let eat st tok =
  if cur st = tok then advance st
  else error st "expected %s" (Token.to_string tok)

let eat_kw st kw = eat st (Token.KW kw)

let skip_newlines st =
  while cur st = Token.NEWLINE do
    advance st
  done

(* Statement-level resynchronization: skip to just past the next
   NEWLINE (or stop at EOF).  Always makes progress because [error] is
   never raised while sitting on a NEWLINE that was already consumed. *)
let rec sync_stmt st =
  match cur st with
  | Token.EOF -> ()
  | Token.NEWLINE -> advance st
  | _ ->
    advance st;
    sync_stmt st

(* Unit-level resynchronization: skip to the next PROGRAM/SUBROUTINE
   header that starts a statement (i.e. follows a NEWLINE), or EOF. *)
let rec sync_unit st =
  match cur st with
  | Token.EOF -> ()
  | Token.NEWLINE -> (
    advance st;
    skip_newlines st;
    match cur st with
    | Token.KW ("program" | "subroutine") | Token.EOF -> ()
    | _ -> sync_unit st)
  | _ ->
    advance st;
    sync_unit st

let end_of_stmt st =
  match cur st with
  | Token.NEWLINE ->
    advance st;
    skip_newlines st
  | Token.EOF -> ()
  | _ -> error st "expected end of statement"

let ident st =
  match cur st with
  | Token.IDENT s ->
    advance st;
    s
  | _ -> error st "expected identifier"

(* --- Expressions --------------------------------------------------- *)

let rec expr st = expr_or st

and expr_or st =
  let lhs = expr_and st in
  if cur st = Token.OR then (
    advance st;
    Ast.Bin (Ast.Or, lhs, expr_or st))
  else lhs

and expr_and st =
  let lhs = expr_not st in
  if cur st = Token.AND then (
    advance st;
    Ast.Bin (Ast.And, lhs, expr_and st))
  else lhs

and expr_not st =
  if cur st = Token.NOT then (
    advance st;
    Ast.Un (Ast.Not, expr_not st))
  else expr_cmp st

and expr_cmp st =
  let lhs = expr_add st in
  let op =
    match cur st with
    | Token.EQEQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Bin (op, lhs, expr_add st)

and expr_add st =
  let rec loop lhs =
    match cur st with
    | Token.PLUS ->
      advance st;
      loop (Ast.Bin (Ast.Add, lhs, expr_mul st))
    | Token.MINUS ->
      advance st;
      loop (Ast.Bin (Ast.Sub, lhs, expr_mul st))
    | _ -> lhs
  in
  loop (expr_mul st)

and expr_mul st =
  let rec loop lhs =
    match cur st with
    | Token.STAR ->
      advance st;
      loop (Ast.Bin (Ast.Mul, lhs, expr_unary st))
    | Token.SLASH ->
      advance st;
      loop (Ast.Bin (Ast.Div, lhs, expr_unary st))
    | _ -> lhs
  in
  loop (expr_unary st)

and expr_unary st =
  match cur st with
  | Token.MINUS ->
    advance st;
    Ast.Un (Ast.Neg, expr_unary st)
  | Token.PLUS ->
    advance st;
    expr_unary st
  | _ -> expr_pow st

and expr_pow st =
  let base = expr_primary st in
  if cur st = Token.POW then (
    advance st;
    Ast.Bin (Ast.Pow, base, expr_unary st))
  else base

and expr_primary st =
  match cur st with
  | Token.INT n ->
    advance st;
    Ast.Int_const n
  | Token.REAL_LIT f ->
    advance st;
    Ast.Real_const f
  | Token.TRUE ->
    advance st;
    Ast.Logical_const true
  | Token.FALSE ->
    advance st;
    Ast.Logical_const false
  | Token.LPAREN ->
    advance st;
    let e = expr st in
    eat st Token.RPAREN;
    e
  | Token.IDENT name ->
    advance st;
    if cur st = Token.LPAREN then (
      advance st;
      let args = expr_list st in
      eat st Token.RPAREN;
      Ast.Ref (name, args))
    else Ast.Var name
  | _ -> error st "expected expression"

and expr_list st =
  let e = expr st in
  if cur st = Token.COMMA then (
    advance st;
    e :: expr_list st)
  else [ e ]

(* --- Declarations --------------------------------------------------- *)

let dim st =
  let lo_or_hi = expr st in
  if cur st = Token.COLON then (
    advance st;
    let hi = expr st in
    { Ast.dlo = lo_or_hi; dhi = hi })
  else { Ast.dlo = Ast.Int_const 1; dhi = lo_or_hi }

let dims st =
  (* parses "( dim, dim, ... )" if present *)
  if cur st = Token.LPAREN then (
    advance st;
    let rec loop () =
      let d = dim st in
      if cur st = Token.COMMA then (
        advance st;
        d :: loop ())
      else [ d ]
    in
    let ds = loop () in
    eat st Token.RPAREN;
    ds)
  else []

let declarator st =
  let name = ident st in
  (name, dims st)

let declarator_list st =
  let rec loop () =
    let d = declarator st in
    if cur st = Token.COMMA then (
      advance st;
      d :: loop ())
    else [ d ]
  in
  loop ()

let decl st : Ast.decl option =
  match cur st with
  | Token.KW (("real" | "integer" | "logical") as ty) ->
    advance st;
    let dtype =
      match ty with
      | "real" -> Ast.Real
      | "integer" -> Ast.Integer
      | _ -> Ast.Logical
    in
    let ds = declarator_list st in
    end_of_stmt st;
    Some (Ast.Dcl_type (dtype, ds))
  | Token.KW "parameter" ->
    advance st;
    eat st Token.LPAREN;
    let rec loop () =
      let name = ident st in
      eat st Token.EQ;
      let value = expr st in
      if cur st = Token.COMMA then (
        advance st;
        (name, value) :: loop ())
      else [ (name, value) ]
    in
    let bindings = loop () in
    eat st Token.RPAREN;
    end_of_stmt st;
    Some (Ast.Dcl_param bindings)
  | Token.KW "decomposition" ->
    advance st;
    let ds = declarator_list st in
    end_of_stmt st;
    Some (Ast.Dcl_decomposition ds)
  | Token.KW "common" ->
    advance st;
    eat st Token.SLASH;
    let block = ident st in
    eat st Token.SLASH;
    let rec names () =
      let n = ident st in
      if cur st = Token.COMMA then (
        advance st;
        n :: names ())
      else [ n ]
    in
    let ns = names () in
    end_of_stmt st;
    Some (Ast.Dcl_common (block, ns))
  | _ -> None

(* --- Statements ----------------------------------------------------- *)

let dist_spec st : Ast.dist_kind =
  match cur st with
  | Token.KW "block" ->
    advance st;
    Ast.Block
  | Token.KW "cyclic" ->
    advance st;
    Ast.Cyclic
  | Token.KW "block_cyclic" ->
    advance st;
    eat st Token.LPAREN;
    let k = match cur st with
      | Token.INT n ->
        advance st;
        n
      | _ -> error st "expected block size"
    in
    eat st Token.RPAREN;
    Ast.Block_cyclic k
  | Token.COLON ->
    advance st;
    Ast.Star
  | _ -> error st "expected distribution specifier"

(* Convert an ALIGN subscript expression over placeholder names into an
   [Ast.align_sub], given the placeholder list of the source side. *)
let align_sub_of_expr st placeholders e =
  let index_of p =
    let rec find i = function
      | [] -> error st "unknown alignment placeholder %s" p
      | q :: _ when String.equal p q -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 placeholders
  in
  match e with
  | Ast.Int_const c -> Ast.Align_const c
  | Ast.Var p -> Ast.Align_dim (index_of p, 0)
  | Ast.Bin (Ast.Add, Ast.Var p, Ast.Int_const c) -> Ast.Align_dim (index_of p, c)
  | Ast.Bin (Ast.Sub, Ast.Var p, Ast.Int_const c) -> Ast.Align_dim (index_of p, -c)
  | Ast.Bin (Ast.Add, Ast.Int_const c, Ast.Var p) -> Ast.Align_dim (index_of p, c)
  | _ -> error st "unsupported ALIGN subscript (must be placeholder +/- constant)"

let rec statement st : Ast.stmt =
  let loc = cur_loc st in
  let sid = fresh_sid st in
  let kind = statement_kind st in
  { Ast.sid; loc; kind }

and statement_kind st : Ast.stmt_kind =
  match cur st with
  | Token.KW "do" ->
    advance st;
    let var = ident st in
    eat st Token.EQ;
    let lo = expr st in
    eat st Token.COMMA;
    let hi = expr st in
    let step =
      if cur st = Token.COMMA then (
        advance st;
        Some (expr st))
      else None
    in
    end_of_stmt st;
    let body = block st in
    (match cur st with
    | Token.KW "enddo" ->
      advance st;
      end_of_stmt st
    | Token.KW "end" -> (
      advance st;
      match cur st with
      | Token.KW "do" ->
        advance st;
        end_of_stmt st
      | _ -> error st "expected DO to close loop")
    | _ -> error st "expected ENDDO");
    Ast.Do { var; lo; hi; step; body }
  | Token.KW "if" ->
    advance st;
    eat st Token.LPAREN;
    let cond = expr st in
    eat st Token.RPAREN;
    if cur st = Token.KW "then" then (
      advance st;
      end_of_stmt st;
      let then_ = block st in
      let else_ = if_tail st in
      Ast.If { cond; then_; else_ })
    else
      (* one-line IF *)
      let s = statement st in
      Ast.If { cond; then_ = [ s ]; else_ = [] }
  | Token.KW "call" ->
    advance st;
    let name = ident st in
    let args =
      if cur st = Token.LPAREN then (
        advance st;
        if cur st = Token.RPAREN then (
          advance st;
          [])
        else
          let args = expr_list st in
          eat st Token.RPAREN;
          args)
      else []
    in
    end_of_stmt st;
    Ast.Call (name, args)
  | Token.KW "return" ->
    advance st;
    end_of_stmt st;
    Ast.Return
  | Token.KW "align" ->
    advance st;
    let array = ident st in
    eat st Token.LPAREN;
    let rec placeholder_list () =
      let p = ident st in
      if cur st = Token.COMMA then (
        advance st;
        p :: placeholder_list ())
      else [ p ]
    in
    let placeholders = placeholder_list () in
    eat st Token.RPAREN;
    eat_kw st "with";
    let target = ident st in
    eat st Token.LPAREN;
    let subs_exprs = expr_list st in
    eat st Token.RPAREN;
    end_of_stmt st;
    let subs = List.map (align_sub_of_expr st placeholders) subs_exprs in
    Ast.Align { array; target; subs }
  | Token.KW "distribute" ->
    advance st;
    let decomp = ident st in
    eat st Token.LPAREN;
    let rec specs () =
      let d = dist_spec st in
      if cur st = Token.COMMA then (
        advance st;
        d :: specs ())
      else [ d ]
    in
    let dists = specs () in
    eat st Token.RPAREN;
    end_of_stmt st;
    Ast.Distribute { decomp; dists }
  | Token.KW "print" ->
    advance st;
    (* accept `print *, args` and `print args` *)
    if cur st = Token.STAR then (
      advance st;
      eat st Token.COMMA);
    let args =
      match cur st with
      | Token.NEWLINE | Token.EOF -> []
      | _ -> expr_list st
    in
    end_of_stmt st;
    Ast.Print args
  | Token.IDENT _ ->
    let lhs = expr_primary st in
    (match lhs with
    | Ast.Var _ | Ast.Ref _ ->
      eat st Token.EQ;
      let rhs = expr st in
      end_of_stmt st;
      Ast.Assign (lhs, rhs)
    | _ -> error st "expected assignment")
  | _ -> error st "expected statement"

and if_tail st : Ast.stmt list =
  (* at ELSE / ELSEIF / ENDIF after a THEN-block *)
  match cur st with
  | Token.KW "endif" ->
    advance st;
    end_of_stmt st;
    []
  | Token.KW "elseif" ->
    let loc = cur_loc st in
    let sid = fresh_sid st in
    advance st;
    eat st Token.LPAREN;
    let cond = expr st in
    eat st Token.RPAREN;
    eat_kw st "then";
    end_of_stmt st;
    let then_ = block st in
    let else_ = if_tail st in
    [ { Ast.sid; loc; kind = Ast.If { cond; then_; else_ } } ]
  | Token.KW "else" ->
    advance st;
    (* allow `else if (...) then` *)
    if cur st = Token.KW "if" then (
      let loc = cur_loc st in
      let sid = fresh_sid st in
      advance st;
      eat st Token.LPAREN;
      let cond = expr st in
      eat st Token.RPAREN;
      eat_kw st "then";
      end_of_stmt st;
      let then_ = block st in
      let else_ = if_tail st in
      [ { Ast.sid; loc; kind = Ast.If { cond; then_; else_ } } ])
    else (
      end_of_stmt st;
      let else_ = block st in
      (match cur st with
      | Token.KW "endif" ->
        advance st;
        end_of_stmt st
      | Token.KW "end" -> (
        advance st;
        match cur st with
        | Token.KW "if" ->
          advance st;
          end_of_stmt st
        | _ -> error st "expected IF to close block")
      | _ -> error st "expected ENDIF");
      else_)
  | Token.KW "end" -> (
    advance st;
    match cur st with
    | Token.KW "if" ->
      advance st;
      end_of_stmt st;
      []
    | _ -> error st "expected IF to close block")
  | _ -> error st "expected ELSE or ENDIF"

and block st : Ast.stmt list =
  skip_newlines st;
  match cur st with
  | Token.KW ("enddo" | "endif" | "else" | "elseif" | "end") | Token.EOF -> []
  | _ -> (
    match statement st with
    | s -> s :: block st
    | exception Recover ->
      sync_stmt st;
      block st)

(* --- Program units -------------------------------------------------- *)

let formals st =
  if cur st = Token.LPAREN then (
    advance st;
    if cur st = Token.RPAREN then (
      advance st;
      [])
    else
      let rec loop () =
        let f = ident st in
        if cur st = Token.COMMA then (
          advance st;
          f :: loop ())
        else [ f ]
      in
      let fs = loop () in
      eat st Token.RPAREN;
      fs)
  else []

let decls st =
  let rec loop acc =
    skip_newlines st;
    match decl st with
    | Some d -> loop (d :: acc)
    | None -> List.rev acc
    | exception Recover ->
      (* a malformed declaration: resynchronize past its line and keep
         scanning for further declarations *)
      sync_stmt st;
      loop acc
  in
  loop []

let punit st : Ast.punit =
  skip_newlines st;
  let uloc = cur_loc st in
  let ukind, uname, fs =
    match cur st with
    | Token.KW "program" ->
      advance st;
      let name = ident st in
      (Ast.Main, name, [])
    | Token.KW "subroutine" ->
      advance st;
      let name = ident st in
      let fs = formals st in
      (Ast.Subroutine, name, fs)
    | _ -> error st "expected PROGRAM or SUBROUTINE"
  in
  end_of_stmt st;
  let ds = decls st in
  let body = block st in
  (match cur st with
  | Token.KW "end" ->
    advance st;
    (* optional `end program foo` / `end subroutine foo` *)
    (match cur st with
    | Token.KW ("program" | "subroutine") ->
      advance st;
      (match cur st with Token.IDENT _ -> advance st | _ -> ())
    | _ -> ());
    (match cur st with Token.NEWLINE -> end_of_stmt st | _ -> ())
  | _ -> error st "expected END");
  { Ast.uname; ukind; formals = fs; decls = ds; body; uloc }

let program st : Ast.program =
  let rec loop acc =
    skip_newlines st;
    if cur st = Token.EOF then List.rev acc
    else
      match punit st with
      | u -> loop (u :: acc)
      | exception Recover ->
        sync_unit st;
        loop acc
  in
  loop []

let parse ?file ?sink src =
  match sink with
  | Some sink ->
    let toks = Lexer.tokenize_sp ?file ~sink src in
    program (make_state ~sink toks)
  | None ->
    (* No caller sink: still parse with recovery so one invocation
       reports every reachable error, then raise the whole batch. *)
    let sink = Diag.sink () in
    let toks = Lexer.tokenize_sp ?file ~sink src in
    let p = program (make_state ~sink toks) in
    Diag.raise_if_errors sink;
    p

let parse_unit ?file src =
  match parse ?file src with
  | [ u ] -> u
  | us -> Diag.error "expected a single program unit, got %d" (List.length us)
