(** Semantic analysis: builds per-unit symbol tables, resolves
    [ident(args)] into array references vs. intrinsic applications, folds
    PARAMETER constants, and type/shape-checks the whole program.

    All checks {e recover}: each diagnostic is recorded into a per-run
    {!Fd_support.Diag.sink} and analysis continues with a benign
    fallback, so one pass reports every semantic error.  Without an
    explicit sink, [check]/[check_source] raise the accumulated batch
    as {!Fd_support.Diag.Compile_errors} — callers never receive an
    ill-typed program. *)

val intrinsics : string list
(** Names usable as intrinsic functions ([abs], [max], [min], [mod],
    [sqrt], [float], [int], [sign]). *)

val is_intrinsic : string -> bool

type checked_unit = { unit_ : Ast.punit; symtab : Symtab.t }

type checked_program = {
  units : checked_unit list;
  main : string;  (** name of the main program unit *)
}

val find_unit : checked_program -> string -> checked_unit option
val find_unit_exn : checked_program -> string -> checked_unit

val const_eval_int : Symtab.t -> Ast.expr -> int option
(** Evaluate a compile-time integer constant expression (PARAMETER names
    resolve through the symbol table). *)

val check_unit : Fd_support.Diag.sink -> Ast.punit list -> Ast.punit -> checked_unit
(** Check one unit in the context of the whole program (for CALL
    signature checking), recording diagnostics into the sink. *)

val check :
  ?file:string -> ?sink:Fd_support.Diag.sink -> Ast.program -> checked_program
(** With [?sink], record diagnostics and return the best-effort result
    (the caller decides when to fail); without, raise
    {!Fd_support.Diag.Compile_errors} if any error was found. *)

val check_source : ?file:string -> ?sink:Fd_support.Diag.sink -> string -> checked_program
(** Parse and check in one step, accumulating parse {e and} sema
    diagnostics into one batch. *)
