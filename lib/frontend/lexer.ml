(* Hand-written lexer for mini-Fortran D.

   Free-form source: case-insensitive keywords and identifiers, `!`
   comments to end of line, `&` at end of line continues the statement,
   `;` acts as a statement separator (lexed as NEWLINE).  Identifiers may
   contain `$` (compiler-generated names like my$p are legal source). *)

open Fd_support

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
  sink : Diag.sink option; (* when set: record lexical errors and recover *)
  mutable err_line : int; (* last line already diagnosed (cascade damping) *)
}

let make ?(file = "<string>") ?sink src =
  { src; file; pos = 0; line = 1; bol = 0; sink; err_line = 0 }

let loc lx = Loc.make ~file:lx.file ~line:lx.line ~col:(lx.pos - lx.bol + 1)

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek_char2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '_' || c = '$'

let is_digit c = c >= '0' && c <= '9'

(* Raised after a recorded lexical error when a sink is present; [next]
   resynchronizes and keeps lexing. *)
exception Reject

let error lx fmt =
  match lx.sink with
  | None -> Diag.error ~loc:(loc lx) fmt
  | Some sink ->
    Format.kasprintf
      (fun message ->
        (* at most one lexical diagnostic per source line, else a run of
           garbage characters produces an error cascade *)
        if lx.line <> lx.err_line then begin
          lx.err_line <- lx.line;
          let start = loc lx in
          let end_ = { start with Loc.col = start.Loc.col + 1 } in
          Diag.report sink (Diag.make ~end_ Diag.Error start message)
        end;
        raise Reject)
      fmt

let rec skip_blanks_and_comments lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r') ->
    advance lx;
    skip_blanks_and_comments lx
  | Some '!' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance lx
    done;
    skip_blanks_and_comments lx
  | Some '&' ->
    (* continuation: swallow the '&', any trailing blanks/comment, and the
       newline, then keep lexing the logical line *)
    advance lx;
    let rec to_eol () =
      match peek_char lx with
      | Some (' ' | '\t' | '\r') ->
        advance lx;
        to_eol ()
      | Some '!' ->
        while peek_char lx <> None && peek_char lx <> Some '\n' do
          advance lx
        done;
        to_eol ()
      | Some '\n' ->
        advance lx;
        skip_blanks_and_comments lx
      | _ -> error lx "expected end of line after continuation '&'"
    in
    to_eol ()
  | _ -> ()

let lex_number lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let is_real = ref false in
  (* Fractional part: a '.' followed by a digit (to avoid eating `.and.`) *)
  (match (peek_char lx, peek_char2 lx) with
  | Some '.', Some c when is_digit c ->
    is_real := true;
    advance lx;
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance lx
    done
  | Some '.', (Some ('e' | 'E' | 'd' | 'D') | None) ->
    (* "1." or "1.e5": treat as real unless it starts a dotted operator *)
    let save = lx.pos in
    advance lx;
    (match peek_char lx with
    | Some c when is_ident_start c ->
      (* could be `.eq.` etc: only consume if it's an exponent *)
      let rest = String.sub lx.src lx.pos (min 4 (String.length lx.src - lx.pos)) in
      let lower = String.lowercase_ascii rest in
      if String.length lower >= 2 && (lower.[0] = 'e' || lower.[0] = 'd')
         && (is_digit lower.[1] || lower.[1] = '+' || lower.[1] = '-')
      then is_real := true
      else lx.pos <- save
    | _ -> is_real := true)
  | Some '.', _ ->
    is_real := true;
    advance lx
  | _ -> ());
  (* Exponent *)
  (match peek_char lx with
  | Some ('e' | 'E' | 'd' | 'D')
    when match peek_char2 lx with
      | Some c -> is_digit c || c = '+' || c = '-'
      | None -> false ->
    is_real := true;
    advance lx;
    (match peek_char lx with Some ('+' | '-') -> advance lx | _ -> ());
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance lx
    done
  | _ -> ());
  let text = String.sub lx.src start (lx.pos - start) in
  if !is_real then
    let text = String.map (function 'd' | 'D' -> 'e' | c -> c) text in
    Token.REAL_LIT (float_of_string text)
  else Token.INT (int_of_string text)

let lex_dotted lx =
  (* `.eq.` `.and.` `.true.` etc. Position is at the leading '.'. *)
  let start = lx.pos in
  advance lx;
  let word_start = lx.pos in
  while (match peek_char lx with Some c -> is_ident_start c | None -> false) do
    advance lx
  done;
  let word = String.lowercase_ascii (String.sub lx.src word_start (lx.pos - word_start)) in
  (match peek_char lx with
  | Some '.' -> advance lx
  | _ ->
    lx.pos <- start;
    error lx "malformed dotted operator");
  match word with
  | "eq" -> Token.EQEQ
  | "ne" -> Token.NE
  | "lt" -> Token.LT
  | "le" -> Token.LE
  | "gt" -> Token.GT
  | "ge" -> Token.GE
  | "and" -> Token.AND
  | "or" -> Token.OR
  | "not" -> Token.NOT
  | "true" -> Token.TRUE
  | "false" -> Token.FALSE
  | w -> error lx "unknown dotted operator .%s." w

let rec next lx : Loc.t * Token.t =
  let pos0 = lx.pos in
  match next_raw lx with
  | tok -> tok
  | exception Reject ->
    (* resynchronize: guarantee progress, then retry.  If the failed
       attempt consumed input (dotted-operator backtrack, continuation
       junk) we retry in place; otherwise skip the offending char. *)
    if lx.pos = pos0 && peek_char lx <> None then advance lx;
    next lx

and next_raw lx : Loc.t * Token.t =
  skip_blanks_and_comments lx;
  let l = loc lx in
  match peek_char lx with
  | None -> (l, Token.EOF)
  | Some '\n' | Some ';' ->
    (* collapse consecutive newlines/semicolons into one NEWLINE *)
    let rec swallow () =
      skip_blanks_and_comments lx;
      match peek_char lx with
      | Some '\n' | Some ';' ->
        advance lx;
        swallow ()
      | _ -> ()
    in
    swallow ();
    (l, Token.NEWLINE)
  | Some c when is_digit c -> (l, lex_number lx)
  | Some '.' -> (
    match peek_char2 lx with
    | Some c when is_digit c -> (l, lex_number lx)
    | _ -> (l, lex_dotted lx))
  | Some c when is_ident_start c ->
    let start = lx.pos in
    while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
      advance lx
    done;
    let word = String.lowercase_ascii (String.sub lx.src start (lx.pos - start)) in
    if Token.is_keyword word then (l, Token.KW word) else (l, Token.IDENT word)
  | Some '+' ->
    advance lx;
    (l, Token.PLUS)
  | Some '-' ->
    advance lx;
    (l, Token.MINUS)
  | Some '*' ->
    advance lx;
    if peek_char lx = Some '*' then (
      advance lx;
      (l, Token.POW))
    else (l, Token.STAR)
  | Some '/' ->
    advance lx;
    if peek_char lx = Some '=' then (
      advance lx;
      (l, Token.NE))
    else (l, Token.SLASH)
  | Some '=' ->
    advance lx;
    if peek_char lx = Some '=' then (
      advance lx;
      (l, Token.EQEQ))
    else (l, Token.EQ)
  | Some '<' ->
    advance lx;
    if peek_char lx = Some '=' then (
      advance lx;
      (l, Token.LE))
    else if peek_char lx = Some '>' then (
      advance lx;
      (l, Token.NE))
    else (l, Token.LT)
  | Some '>' ->
    advance lx;
    if peek_char lx = Some '=' then (
      advance lx;
      (l, Token.GE))
    else (l, Token.GT)
  | Some '(' ->
    advance lx;
    (l, Token.LPAREN)
  | Some ')' ->
    advance lx;
    (l, Token.RPAREN)
  | Some ',' ->
    advance lx;
    (l, Token.COMMA)
  | Some ':' ->
    advance lx;
    (l, Token.COLON)
  | Some c -> error lx "unexpected character %C" c

(* Token with its source span: start location and (exclusive-column)
   end location.  NEWLINE/EOF get a synthetic one-column span so a
   diagnostic at end-of-statement underlines a single position instead
   of spilling onto the next line. *)
let next_sp lx : Loc.t * Loc.t * Token.t =
  let l, t = next lx in
  let e =
    match t with
    | Token.NEWLINE | Token.EOF -> { l with Loc.col = l.Loc.col + 1 }
    | _ -> loc lx
  in
  (l, e, t)

let tokenize ?file src =
  let lx = make ?file src in
  let rec loop acc =
    let l, t = next lx in
    match t with Token.EOF -> List.rev ((l, t) :: acc) | _ -> loop ((l, t) :: acc)
  in
  loop []

let tokenize_sp ?file ?sink src =
  let lx = make ?file ?sink src in
  let rec loop acc =
    let ((_, _, t) as tok) = next_sp lx in
    match t with Token.EOF -> List.rev (tok :: acc) | _ -> loop (tok :: acc)
  in
  loop []
