(** Seeded random mini-Fortran-D program generator for differential
    testing: generated programs stay within the documented language but
    mix distributions, shift widths, procedure boundaries, guards, and
    dynamic redistribution.  Compiled executions verify element-by-element
    against sequential interpretation. *)

type spec = {
  g_n : int;
  g_dist : string;
  g_ops : op list;
  g_in_subroutines : bool;
  g_redistribute : bool;
}

and op =
  | Op_shift of int
  | Op_axpy of int
  | Op_scale
  | Op_guarded of int
  | Op_multi of int
      (** [c(i) = a(i+s) + b(i); a(i) = 0.5*c(i)]: three arrays in one
          statement chain *)

val random_spec : ?max_ops:int -> Random.State.t -> spec

val to_source : ?commons:bool -> spec -> string
(** With [commons], the arrays live in a COMMON block and the operation
    procedures take no arguments. *)

val random_source : ?max_ops:int -> ?commons:bool -> Random.State.t -> string

type spec2d = {
  g2_n : int;
  g2_dist : string;
  g2_shifts : (int * int) list;
  g2_in_subroutines : bool;
  g2_multi : bool;
      (** add a third aligned array and a three-array sweep to the body *)
}

val random_spec2d : Random.State.t -> spec2d
val to_source2d : spec2d -> string
val random_source2d : Random.State.t -> string
