(* Random mini-Fortran-D program generator for differential testing: each
   generated program stays within the compiler's documented language
   (affine subscripts, structured control flow) but freely mixes
   distributions, shift widths, procedure boundaries, guards, and dynamic
   redistribution.  Compiled executions are verified element-by-element
   against sequential interpretation, so every generated program is a
   whole-pipeline test case. *)

type spec = {
  g_n : int;                  (* array extent *)
  g_dist : string;            (* "block" or "cyclic" *)
  g_ops : op list;
  g_in_subroutines : bool;    (* operations through procedure boundaries *)
  g_redistribute : bool;      (* a callee that dynamically remaps *)
}

and op =
  | Op_shift of int           (* b(i) = a(i+c); a = b *)
  | Op_axpy of int            (* a(i) = a(i) + k * b(i) *)
  | Op_scale                  (* a(i) = 0.5 * a(i) *)
  | Op_guarded of int         (* if (a(i) > thr) a(i) = a(i) - 1.0 *)
  | Op_multi of int           (* c(i) = a(i+s) + b(i); a(i) = c(i): three arrays
                                 in one statement chain *)

let random_spec ?(max_ops = 4) (st : Random.State.t) : spec =
  let n = 16 + Random.State.int st 48 in
  let dist = if Random.State.bool st then "block" else "cyclic" in
  let nops = 1 + Random.State.int st max_ops in
  let ops =
    List.init nops (fun _ ->
        match Random.State.int st 5 with
        | 0 -> Op_shift (Random.State.int st 4)
        | 1 -> Op_axpy (1 + Random.State.int st 3)
        | 2 -> Op_scale
        | 3 -> Op_multi (Random.State.int st 3)
        | _ -> Op_guarded (Random.State.int st 5))
  in
  { g_n = n;
    g_dist = dist;
    g_ops = ops;
    g_in_subroutines = Random.State.bool st;
    g_redistribute = Random.State.bool st && dist = "block" }

let op_body ~n = function
  | Op_shift c ->
    Fmt.str
      "  do i = 1, %d - %d\n    b(i) = a(i+%d) + 0.25\n  enddo\n  do i = 1, %d\n    a(i) = b(i)\n  enddo"
      n c c n
  | Op_axpy k ->
    Fmt.str "  do i = 1, %d\n    a(i) = a(i) + %d.0 * b(i)\n  enddo" n k
  | Op_scale -> Fmt.str "  do i = 1, %d\n    a(i) = 0.5 * a(i)\n  enddo" n
  | Op_guarded thr ->
    Fmt.str
      "  do i = 1, %d\n    if (a(i) > %d.0) then\n      a(i) = a(i) - 1.0\n    endif\n  enddo"
      n thr
  | Op_multi s ->
    Fmt.str
      "  do i = 1, %d - %d\n    c(i) = a(i+%d) + b(i)\n  enddo\n  do i = 1, %d\n    a(i) = 0.5 * c(i)\n  enddo"
      n s s n

let to_source ?(commons = false) (s : spec) : string =
  let n = s.g_n in
  let decls =
    if commons then
      Fmt.str
        "  parameter (n = %d)\n  common /shared/ a, b, c\n  real a(%d), b(%d), c(%d)\n  integer i"
        n n n n
    else
      Fmt.str "  parameter (n = %d)\n  real a(%d), b(%d), c(%d)\n  integer i" n n
        n n
  in
  let sub idx op =
    if commons then
      Fmt.str "subroutine op%d()\n%s\n%s\nend\n" idx decls (op_body ~n op)
    else
      Fmt.str "subroutine op%d(a, b, c)\n%s\n%s\nend\n" idx decls (op_body ~n op)
  in
  let redist_sub =
    Fmt.str
      "subroutine rphase(a, b)\n%s\n  distribute a(cyclic)\n  distribute b(cyclic)\n  do i = 1, n\n    a(i) = a(i) + b(i)\n  enddo\nend\n"
      decls
  in
  let body_ops =
    if s.g_in_subroutines then
      List.mapi
        (fun idx _ ->
          if commons then Fmt.str "  call op%d()" idx
          else Fmt.str "  call op%d(a, b, c)" idx)
        s.g_ops
    else List.map (op_body ~n) s.g_ops
  in
  let body_ops =
    if s.g_redistribute && not commons then body_ops @ [ "  call rphase(a, b)" ]
    else body_ops
  in
  let subs =
    (if s.g_in_subroutines then List.mapi sub s.g_ops else [])
    @ (if s.g_redistribute && not commons then [ redist_sub ] else [])
  in
  Fmt.str
    "program r\n%s\n  distribute a(%s)\n  distribute b(%s)\n  distribute c(%s)\n  do i = 1, n\n    a(i) = float(mod(i*7, 13))\n    b(i) = float(mod(i*5, 9))\n    c(i) = 0.0\n  enddo\n%s\n  print *, a(1), a(%d)\nend\n%s"
    decls s.g_dist s.g_dist s.g_dist
    (String.concat "\n" body_ops)
    n
    (String.concat "" subs)

let random_source ?max_ops ?commons (st : Random.State.t) : string =
  to_source ?commons (random_spec ?max_ops st)

(* --- 2-D variants -------------------------------------------------------- *)

type spec2d = {
  g2_n : int;
  g2_dist : string;     (* "(block,:)" row-block or "(:,block)" column-block *)
  g2_shifts : (int * int) list;  (* (row shift, col shift) sweeps *)
  g2_in_subroutines : bool;
  g2_multi : bool;      (* a third aligned array and a three-array sweep *)
}

let random_spec2d (st : Random.State.t) : spec2d =
  let n = 8 + Random.State.int st 20 in
  let dist = if Random.State.bool st then "block,:" else ":,block" in
  let nops = 1 + Random.State.int st 3 in
  let shifts =
    List.init nops (fun _ -> (Random.State.int st 3, Random.State.int st 3))
  in
  { g2_n = n; g2_dist = dist; g2_shifts = shifts;
    g2_in_subroutines = Random.State.bool st;
    g2_multi = Random.State.bool st }

let to_source2d (s : spec2d) : string =
  let n = s.g2_n in
  let decls =
    if s.g2_multi then
      Fmt.str
        "  parameter (n = %d)\n  real a(%d,%d), b(%d,%d), c(%d,%d)\n  integer i, j"
        n n n n n n n
    else
      Fmt.str "  parameter (n = %d)\n  real a(%d,%d), b(%d,%d)\n  integer i, j" n
        n n n n
  in
  let op_body (ci, cj) =
    Fmt.str
      "  do i = 1, n - %d\n    do j = 1, n - %d\n      b(i,j) = a(i+%d,j+%d) + 0.25\n    enddo\n  enddo\n  do i = 1, n\n    do j = 1, n\n      a(i,j) = b(i,j)\n    enddo\n  enddo"
      ci cj ci cj
  in
  (* a statement chain over three aligned arrays: exercises multi-array
     dependence and owner-computes partitioning in one loop nest *)
  let multi_body =
    "  do i = 1, n\n    do j = 1, n\n      c(i,j) = a(i,j) + 2.0 * b(i,j)\n      a(i,j) = 0.5 * c(i,j)\n    enddo\n  enddo"
  in
  let body_ops =
    if s.g2_in_subroutines then
      List.mapi (fun idx _ -> Fmt.str "  call op%d(a, b)" idx) s.g2_shifts
    else List.map op_body s.g2_shifts
  in
  let body_ops = if s.g2_multi then body_ops @ [ multi_body ] else body_ops in
  let subs =
    if s.g2_in_subroutines then
      List.mapi
        (fun idx c ->
          Fmt.str "subroutine op%d(a, b)\n%s\n%s\nend\n" idx decls (op_body c))
        s.g2_shifts
    else []
  in
  let align_c =
    if s.g2_multi then "  align c(i,j) with d(i,j)\n" else ""
  in
  let init_c = if s.g2_multi then "      c(i,j) = 0.0\n" else "" in
  Fmt.str
    "program r2\n%s\n  decomposition d(%d,%d)\n  align a(i,j) with d(i,j)\n  align b(i,j) with d(i,j)\n%s  distribute d(%s)\n  do i = 1, n\n    do j = 1, n\n      a(i,j) = float(mod(i*3 + j*7, 13))\n      b(i,j) = 0.0\n%s    enddo\n  enddo\n%s\n  print *, a(1,1)\nend\n%s"
    decls n n align_c s.g2_dist init_c
    (String.concat "\n" body_ops)
    (String.concat "" subs)

let random_source2d (st : Random.State.t) : string = to_source2d (random_spec2d st)
