(** The compiler as an explicit, ordered pass pipeline.

    The whole compile is modeled as the pass list

    {v parse -> sema -> cloning -> acg -> reaching_decomps
       -> side_effects -> local_summaries -> codegen v}

    over a shared {!Pass.ctx}.  Each pass is named, timed, can render
    its artifact ([--dump-after]) and can check invariants over the
    context ([--verify-passes]).  {!Driver} and {!Recompile} are built
    on this runner; {!Codegen.compile} remains as the equivalent
    one-call entry point.

    Note on ordering: the paper presents the phases as ACG -> reaching
    decompositions -> cloning, but operationally cloning rewrites the
    program source-to-source and the ACG used for compilation is built
    from the {e cloned} program (cloning iterates its own internal
    ACGs), so the pipeline orders [cloning] before [acg]. *)

val passes : Pass.t list
(** The standard pipeline, in execution order. *)

val pass_names : string list

val find_pass : string -> Pass.t option

val of_source :
  ?sink:Fd_support.Diag.sink -> ?opts:Options.t -> ?file:string -> string ->
  Pass.ctx
(** A fresh context that will run every pass, starting from source
    text.  [?sink] is the per-run diagnostic sink (default: the legacy
    {!Fd_support.Diag.global} sink); the [sema] pass raises everything
    accumulated by parse + sema as one
    {!Fd_support.Diag.Compile_errors} batch. *)

val of_checked :
  ?sink:Fd_support.Diag.sink -> ?opts:Options.t ->
  Fd_frontend.Sema.checked_program -> Pass.ctx
(** A context seeded with an already-checked program: the [parse] and
    [sema] passes become no-ops. *)

val run :
  ?verify:bool ->
  ?tracer:Fd_trace.Trace.t ->
  ?dump_after:string list ->
  ?dump:(pass:string -> string -> unit) ->
  Pass.ctx ->
  Pass.report
(** Run every pass in order over the context.  [verify] runs each
    pass's invariant checker and records the result in the report
    (default: off — checkers cost time).  After a pass named in
    [dump_after] completes, its rendered artifact is handed to [dump]
    (default: print to stdout).  Unknown names in [dump_after] raise
    {!Fd_support.Diag.Compile_error}.  A [tracer] receives one
    {!Fd_trace.Trace.Span} event per pass (wall-clock, relative to the
    pipeline start), reusing the timings already taken for the report.
    @raise Fd_support.Diag.Compile_error as the underlying phases do. *)

val run_pass :
  ?verify:bool -> ?tracer:Fd_trace.Trace.t -> ?epoch:float -> Pass.t ->
  Pass.ctx -> Pass.entry
(** Run (and optionally verify) a single pass — the building block of
    {!run}, exposed for tests and tools that drive passes manually.
    Span timestamps are relative to [epoch] (default: the pass's own
    start, i.e. [at = 0]). *)

val report_to_json : Pass.report -> Fd_support.Json.t
(** [{"passes": [{"name", "ms", "size", "invariants", "violations"}, ...],
     "total_ms", "ok"}] *)

val pp_report : Format.formatter -> Pass.report -> unit
(** The [fdc passes] table: one line per pass plus a total. *)
