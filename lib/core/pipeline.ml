(* The compiler as an explicit ordered pass list over Pass.ctx.  Each
   pass is idempotent over the context (skips when its artifact is
   already present), carries a pretty-printer for --dump-after and an
   invariant checker for --verify-passes. *)

open Fd_support
open Fd_frontend
open Fd_callgraph
open Fd_machine
open Pass

(* --- Shared helpers ---------------------------------------------------- *)

(* Program units, whether the context started from source or was seeded
   with a checked program. *)
let units_of (c : ctx) : Ast.punit list =
  match (c.parsed, c.checked) with
  | Some prog, _ -> prog
  | None, Some cp -> List.map (fun cu -> cu.Sema.unit_ ) cp.Sema.units
  | None, None -> []

let dup_names names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then true
      else begin
        Hashtbl.replace seen n ();
        false
      end)
    names
  |> List.sort_uniq compare

let iter_exprs_arrays f e =
  Ast.iter_exprs_expr
    (fun e' -> match e' with Ast.Ref (a, _) -> f a | _ -> ())
    e

(* Every array name a node statement references: expression references,
   message payload sections, broadcast sections and remap targets. *)
let rec iter_nstmt_arrays f (s : Node.nstmt) =
  let fe = iter_exprs_arrays f in
  let fsec = List.iter (fun (lo, hi, st) -> fe lo; fe hi; fe st) in
  match s with
  | Node.N_assign (a, b) -> fe a; fe b
  | Node.N_do { lo; hi; step; body; _ } ->
    fe lo; fe hi; Option.iter fe step;
    List.iter (iter_nstmt_arrays f) body
  | Node.N_if { cond; then_; else_; _ } ->
    fe cond;
    List.iter (iter_nstmt_arrays f) then_;
    List.iter (iter_nstmt_arrays f) else_
  | Node.N_call (_, args) -> List.iter fe args
  | Node.N_send { dest; parts; _ } ->
    fe dest;
    List.iter (fun (a, sec) -> f a; fsec sec) parts
  | Node.N_recv _ -> ()
  | Node.N_bcast { root; payload; _ } -> (
    fe root;
    match payload with
    | Node.P_section (a, sec) -> f a; fsec sec
    | Node.P_scalar _ -> ())
  | Node.N_remap { array; _ } -> f array
  | Node.N_print args -> List.iter fe args
  | Node.N_return -> ()

let rec count_nstmts (stmts : Node.nstmt list) : int =
  List.fold_left
    (fun acc (s : Node.nstmt) ->
      acc + 1
      +
      match s with
      | Node.N_do { body; _ } -> count_nstmts body
      | Node.N_if { then_; else_; _ } -> count_nstmts then_ + count_nstmts else_
      | _ -> 0)
    0 stmts

let stmt_count units =
  let n = ref 0 in
  List.iter (fun (u : Ast.punit) -> Ast.iter_stmts (fun _ -> incr n) u.Ast.body) units;
  !n

(* --- parse -------------------------------------------------------------- *)

let parse_pass =
  { p_name = "parse";
    p_doc = "lex and parse the source into program units";
    p_run =
      (fun c ->
        match (c.parsed, c.checked) with
        | Some _, _ | _, Some _ -> ()  (* seeded *)
        | None, None -> (
          match c.source with
          | Some src -> c.parsed <- Some (Parser.parse ?file:c.file ~sink:c.sink src)
          | None -> Diag.error "pipeline: no source text to parse"));
    p_dump =
      (fun c ->
        match units_of c with
        | [] -> None
        | units ->
          Some
            (String.concat "\n"
               (List.map (fun u -> Fmt.str "%a" Ast_printer.pp_punit u) units)));
    p_verify =
      (fun c ->
        let units = units_of c in
        let dup_units =
          dup_names (List.map (fun (u : Ast.punit) -> u.Ast.uname) units)
        in
        let sids = ref [] in
        List.iter
          (fun (u : Ast.punit) ->
            Ast.iter_stmts (fun s -> sids := s.Ast.sid :: !sids) u.Ast.body)
          units;
        let dup_sids = dup_names (List.map string_of_int !sids) in
        (if units = [] then [ "program has no units" ] else [])
        @ List.map (Fmt.str "duplicate unit name %s") dup_units
        @ List.map (Fmt.str "duplicate statement id %s") dup_sids
        @
        match
          List.filter (fun (u : Ast.punit) -> u.Ast.ukind = Ast.Main) units
        with
        | [ _ ] -> []
        | [] -> [ "no main program unit" ]
        | us -> [ Fmt.str "%d main program units" (List.length us) ]);
    p_size = (fun c -> stmt_count (units_of c)) }

(* --- sema --------------------------------------------------------------- *)

let sema_pass =
  { p_name = "sema";
    p_doc = "symbol tables, type/shape checking, intrinsic resolution";
    p_run =
      (fun c ->
        match c.checked with
        | Some _ -> ()
        | None ->
          (* parse + sema diagnostics batch: everything recorded so far
             (recovered syntax errors included) is raised here, sorted,
             as one [Compile_errors] *)
          let checked = Sema.check ?file:c.file ~sink:c.sink (get_parsed c) in
          Diag.raise_if_errors c.sink;
          c.checked <- Some checked);
    p_dump =
      (fun c ->
        match c.checked with
        | None -> None
        | Some cp ->
          Some
            (String.concat "\n"
               (List.map
                  (fun (cu : Sema.checked_unit) ->
                    let u = cu.Sema.unit_ in
                    let arrays =
                      List.map
                        (fun (name, (info : Symtab.array_info)) ->
                          Fmt.str "%s(%s)" name
                            (String.concat ","
                               (List.map
                                  (fun (lo, hi) -> Fmt.str "%d:%d" lo hi)
                                  info.Symtab.dims)))
                        (Symtab.arrays cu.Sema.symtab)
                    in
                    Fmt.str "%s %s(%s): arrays [%s], commons [%s]"
                      (match u.Ast.ukind with
                      | Ast.Main -> "program"
                      | Ast.Subroutine -> "subroutine")
                      u.Ast.uname
                      (String.concat "," u.Ast.formals)
                      (String.concat "; " arrays)
                      (String.concat ","
                         (List.map fst (Symtab.commons cu.Sema.symtab))))
                  cp.Sema.units)));
    p_verify =
      (fun c ->
        match c.checked with
        | None -> [ "no checked program" ]
        | Some cp ->
          (match Sema.find_unit cp cp.Sema.main with
          | Some _ -> []
          | None -> [ Fmt.str "main unit %s is not in the program" cp.Sema.main ])
          @ List.concat_map
              (fun (cu : Sema.checked_unit) ->
                List.filter_map
                  (fun f ->
                    match Symtab.find cu.Sema.symtab f with
                    | Some _ -> None
                    | None ->
                      Some
                        (Fmt.str "formal %s of %s missing from its symbol table" f
                           cu.Sema.unit_.Ast.uname))
                  cu.Sema.unit_.Ast.formals)
              cp.Sema.units);
    p_size =
      (fun c -> match c.checked with Some cp -> List.length cp.Sema.units | None -> 0) }

(* --- cloning ------------------------------------------------------------ *)

let cloning_pass =
  { p_name = "cloning";
    p_doc = "procedure cloning for unique reaching decompositions";
    p_run =
      (fun c ->
        match c.clone_result with
        | Some _ -> ()
        | None ->
          c.clone_result <- Some (Codegen.clone ~sink:c.sink c.opts (get_checked c)));
    p_dump =
      (fun c ->
        match c.clone_result with
        | None -> None
        | Some r ->
          let origins =
            Cloning.SM.bindings r.Cloning.origin
            |> List.map (fun (clone, orig) -> Fmt.str "  %s <- %s" clone orig)
          in
          Some
            (Fmt.str "clones made: %d\nprocedures: %s%s" r.Cloning.clones_made
               (String.concat ", "
                  (List.map
                     (fun (cu : Sema.checked_unit) -> cu.Sema.unit_.Ast.uname)
                     r.Cloning.cp.Sema.units))
               (if origins = [] then ""
                else "\n" ^ String.concat "\n" origins)));
    p_verify =
      (fun c ->
        match c.clone_result with
        | None -> [ "no cloning result" ]
        | Some r ->
          let names =
            List.map
              (fun (cu : Sema.checked_unit) -> cu.Sema.unit_.Ast.uname)
              r.Cloning.cp.Sema.units
          in
          List.map (Fmt.str "cloned procedure name %s is not unique") (dup_names names)
          @ Cloning.SM.fold
              (fun clone _orig acc ->
                if List.mem clone names then acc
                else Fmt.str "clone %s missing from the cloned program" clone :: acc)
              r.Cloning.origin []);
    p_size =
      (fun c ->
        match c.clone_result with
        | Some r -> List.length r.Cloning.cp.Sema.units
        | None -> 0) }

(* --- acg ---------------------------------------------------------------- *)

let acg_pass =
  { p_name = "acg";
    p_doc = "augmented call graph with interprocedural loop context";
    p_run =
      (fun c ->
        match c.acg with
        | Some _ -> ()
        | None ->
          c.acg <- Some (Codegen.build_acg (get_clone_result c).Cloning.cp));
    p_dump =
      (fun c ->
        match c.acg with
        | None -> None
        | Some acg ->
          Some
            (Fmt.str "%a\ntopological order: %s" Acg.pp acg
               (String.concat " -> " (Acg.topo_order acg))));
    p_verify =
      (fun c ->
        match c.acg with
        | None -> [ "no call graph" ]
        | Some acg ->
          (if Acg.is_recursive acg then [ "call graph has a cycle over call edges" ]
           else [])
          @ (match Acg.proc acg acg.Acg.main with
            | _ -> []
            | exception _ -> [ Fmt.str "main %s is not a node" acg.Acg.main ])
          @ List.concat_map
              (fun (p : Acg.proc) ->
                List.filter_map
                  (fun (cs : Acg.call_site) ->
                    match Acg.proc acg cs.Acg.callee with
                    | _ -> None
                    | exception _ ->
                      Some
                        (Fmt.str "call site %s -> %s has no callee node"
                           cs.Acg.caller cs.Acg.callee))
                  p.Acg.calls)
              (Acg.procs acg));
    p_size =
      (fun c ->
        match c.acg with
        | Some acg ->
          List.fold_left
            (fun acc (p : Acg.proc) -> acc + 1 + List.length p.Acg.calls)
            0 (Acg.procs acg)
        | None -> 0) }

(* --- reaching_decomps --------------------------------------------------- *)

let reaching_pass =
  { p_name = "reaching_decomps";
    p_doc = "interprocedural reaching decompositions";
    p_run =
      (fun c ->
        match c.rd with
        | Some _ -> ()
        | None -> c.rd <- Some (Reaching_decomps.compute ~sink:c.sink (get_acg c)));
    p_dump =
      (fun c ->
        match (c.rd, c.acg) with
        | Some rd, Some acg ->
          Some
            (String.concat "\n"
               (List.map
                  (fun (p : Acg.proc) ->
                    Fmt.str "%a" Reaching_decomps.pp_proc_reaching (rd, p.Acg.pname))
                  (Acg.procs acg)))
        | _ -> None);
    p_verify =
      (fun c ->
        match (c.rd, c.acg) with
        | Some rd, Some acg ->
          List.concat_map
            (fun (p : Acg.proc) ->
              (* every procedure must have a local solution... *)
              (match Reaching_decomps.local_of rd p.Acg.pname with
              | _ -> []
              | exception Diag.Compile_error _ ->
                [ Fmt.str "no local reaching-decomposition solution for %s"
                    p.Acg.pname ])
              (* ... and every whole-array actual must have pushed a
                 reaching entry onto the callee's formal *)
              @ List.concat_map
                  (fun (cs : Acg.call_site) ->
                    let callee_fact = Reaching_decomps.reaching_of rd cs.Acg.callee in
                    List.filter_map
                      (fun (formal, actual) ->
                        match actual with
                        | Ast.Var v
                          when Symtab.is_array p.Acg.cu.Sema.symtab v ->
                          if Reaching_decomps.SM.mem formal callee_fact then None
                          else
                            Some
                              (Fmt.str
                                 "formal %s of %s has no reaching entry for call from %s"
                                 formal cs.Acg.callee cs.Acg.caller)
                        | _ -> None)
                      (Acg.bindings acg cs))
                  p.Acg.calls)
            (Acg.procs acg)
        | _ -> [ "no reaching decompositions" ]);
    p_size =
      (fun c ->
        match (c.rd, c.acg) with
        | Some rd, Some acg ->
          List.fold_left
            (fun acc (p : Acg.proc) ->
              acc + Reaching_decomps.SM.cardinal (Reaching_decomps.reaching_of rd p.Acg.pname))
            0 (Acg.procs acg)
        | _ -> 0) }

(* --- side_effects ------------------------------------------------------- *)

let side_effects_pass =
  { p_name = "side_effects";
    p_doc = "interprocedural Gmod/Gref summaries";
    p_run =
      (fun c ->
        match c.effects with
        | Some _ -> ()
        | None -> c.effects <- Some (Side_effects.compute (get_acg c)));
    p_dump =
      (fun c ->
        match (c.effects, c.acg) with
        | Some eff, Some acg ->
          Some
            (String.concat "\n"
               (List.map
                  (fun (p : Acg.proc) ->
                    Fmt.str "%s: gmod {%s} gref {%s}" p.Acg.pname
                      (String.concat ","
                         (Side_effects.S.elements (Side_effects.gmod eff p.Acg.pname)))
                      (String.concat ","
                         (Side_effects.S.elements (Side_effects.gref eff p.Acg.pname))))
                  (Acg.procs acg)))
        | _ -> None);
    p_verify =
      (fun c ->
        match (c.effects, c.acg) with
        | Some eff, Some acg ->
          List.concat_map
            (fun (p : Acg.proc) ->
              if not (Hashtbl.mem eff p.Acg.pname) then
                [ Fmt.str "no side-effect summary for %s" p.Acg.pname ]
              else
                (* summaries are expressed in P's visible names *)
                Side_effects.S.fold
                  (fun n acc ->
                    match Symtab.find p.Acg.cu.Sema.symtab n with
                    | Some _ -> acc
                    | None ->
                      Fmt.str "side effect of %s names %s, invisible there"
                        p.Acg.pname n
                      :: acc)
                  (Side_effects.appear eff p.Acg.pname)
                  [])
            (Acg.procs acg)
        | _ -> [ "no side-effect summaries" ]);
    p_size =
      (fun c ->
        match (c.effects, c.acg) with
        | Some eff, Some acg ->
          List.fold_left
            (fun acc (p : Acg.proc) ->
              acc + Side_effects.S.cardinal (Side_effects.appear eff p.Acg.pname))
            0 (Acg.procs acg)
        | _ -> 0) }

(* --- local_summaries ---------------------------------------------------- *)

let local_summaries_pass =
  { p_name = "local_summaries";
    p_doc = "edit-time local summaries and interface digests";
    p_run =
      (fun c ->
        match c.summaries with
        | Some _ -> ()
        | None ->
          c.summaries <-
            Some
              (List.map
                 (fun (p : Acg.proc) -> (p.Acg.pname, Local_summary.of_unit p.Acg.cu))
                 (Acg.procs (get_acg c))));
    p_dump =
      (fun c ->
        match c.summaries with
        | None -> None
        | Some ss ->
          Some
            (String.concat "\n"
               (List.map (fun (_, s) -> Fmt.str "%a" Local_summary.pp s) ss)));
    p_verify =
      (fun c ->
        match (c.summaries, c.acg) with
        | Some ss, Some acg ->
          List.concat_map
            (fun (p : Acg.proc) ->
              match List.assoc_opt p.Acg.pname ss with
              | None -> [ Fmt.str "no local summary for %s" p.Acg.pname ]
              | Some s ->
                (if String.equal s.Local_summary.proc p.Acg.pname then []
                 else [ Fmt.str "summary of %s names %s" p.Acg.pname s.Local_summary.proc ])
                @
                if s.Local_summary.formals = p.Acg.cu.Sema.unit_.Ast.formals then []
                else [ Fmt.str "summary formals of %s disagree with the unit" p.Acg.pname ])
            (Acg.procs acg)
        | _ -> [ "no local summaries" ]);
    p_size =
      (fun c -> match c.summaries with Some ss -> List.length ss | None -> 0) }

(* --- codegen ------------------------------------------------------------ *)

let codegen_pass =
  { p_name = "codegen";
    p_doc = "per-procedure SPMD code generation with delayed instantiation";
    p_run =
      (fun c ->
        match c.compiled with
        | Some _ -> ()
        | None ->
          c.compiled <-
            Some
              (Codegen.compile_analyzed ~sink:c.sink c.opts
                 ~clone_result:(get_clone_result c)
                 ~acg:(get_acg c) ~rd:(get_rd c) ~effects:(get_effects c)));
    p_dump =
      (fun c ->
        match c.compiled with
        | None -> None
        | Some compiled ->
          Some (Fmt.str "%a" Node.pp_program compiled.Codegen.program));
    p_verify =
      (fun c ->
        match c.compiled with
        | None -> [ "no compiled program" ]
        | Some compiled ->
          let prog = compiled.Codegen.program in
          let common =
            List.map (fun (a : Node.array_decl) -> a.Node.ad_name) prog.Node.n_common_arrays
          in
          let dup_procs =
            dup_names (List.map (fun (np : Node.nproc) -> np.Node.np_name) prog.Node.n_procs)
          in
          (match Node.find_proc prog prog.Node.n_main with
          | Some _ -> []
          | None -> [ Fmt.str "main procedure %s missing from the program" prog.Node.n_main ])
          @ List.map (Fmt.str "compiled procedure name %s is not unique") dup_procs
          @ List.concat_map
              (fun (np : Node.nproc) ->
                let declared =
                  List.map (fun (a : Node.array_decl) -> a.Node.ad_name) np.Node.np_arrays
                  @ common
                in
                let bad = ref [] in
                List.iter
                  (iter_nstmt_arrays (fun a ->
                       if not (List.mem a declared) && not (List.mem a !bad) then
                         bad := a :: !bad))
                  np.Node.np_body;
                List.rev_map
                  (fun a ->
                    Fmt.str "procedure %s references undeclared array %s"
                      np.Node.np_name a)
                  !bad)
              prog.Node.n_procs);
    p_size =
      (fun c ->
        match c.compiled with
        | Some compiled ->
          List.fold_left
            (fun acc (np : Node.nproc) -> acc + count_nstmts np.Node.np_body)
            0 compiled.Codegen.program.Node.n_procs
        | None -> 0) }

(* --- verify: the static SPMD communication verifier --------------------- *)

(* Findings over the compiled node program plus the source-level lint,
   computed on demand and cached in the context: the ordinary compile
   stays cheap, while [--verify-passes] and [--dump-after verify] force
   the analysis. *)
let verify_findings (c : ctx) : Fd_verify.Finding.t list =
  match c.findings with
  | Some f -> f
  | None ->
    let f =
      match c.compiled with
      | None -> []
      | Some compiled ->
        let lint =
          match c.checked with
          | None -> []
          | Some cp ->
            let reaching =
              Option.map
                (fun rd ~uname ~sid array ->
                  match Reaching_decomps.local_of rd uname with
                  | lr ->
                    let fact = Reaching_decomps.fact_before lr sid in
                    let r = Reaching_decomps.get_reaching fact array in
                    not (Decomp.reaching_equal r Decomp.reaching_bottom)
                  | exception _ -> true)
                c.rd
            in
            Fd_verify.Lint.run ?reaching cp
        in
        let vr =
          Fd_verify.Verify.check_node ~nprocs:c.opts.Options.nprocs
            compiled.Codegen.program
        in
        Fd_verify.Finding.sort (lint @ vr.Fd_verify.Verify.findings)
    in
    c.findings <- Some f;
    f

let verify_pass =
  { p_name = "verify";
    p_doc = "static send/recv matching, collective congruence and lint";
    p_run = (fun _ -> ());
    p_dump =
      (fun c ->
        match c.compiled with
        | None -> None
        | Some _ ->
          Some
            (Fd_support.Json.to_string
               (Fd_verify.Finding.report_json (verify_findings c))));
    p_verify =
      (fun c ->
        match c.compiled with
        | None -> [ "no compiled program" ]
        | Some _ ->
          verify_findings c
          |> List.filter (fun f ->
                 f.Fd_verify.Finding.severity = Fd_verify.Finding.Error)
          |> List.map (Fmt.str "%a" Fd_verify.Finding.pp));
    p_size =
      (fun c ->
        match c.findings with Some f -> List.length f | None -> 0) }

(* --- cost: the static communication-cost analyzer ----------------------- *)

(* Like [verify], lazy and cached: predicting message counts, byte
   volumes and the virtual-time makespan forces an extra abstract walk
   (with the sequential branch profile) plus the timed replay, so the
   ordinary compile skips it and [--dump-after cost] or the driver's
   [fdc cost] forces it. *)
let cost_of (c : ctx) : Fd_verify.Cost.t option =
  match c.cost with
  | Some _ as r -> r
  | None -> (
    match c.compiled with
    | None -> None
    | Some compiled ->
      let profile = Option.map Fd_verify.Cost.profile_of_seq c.checked in
      let config = Fd_machine.Config.ipsc860 ~nprocs:c.opts.Options.nprocs () in
      let r =
        Fd_verify.Cost.analyze ?profile ~config compiled.Codegen.program
      in
      c.cost <- Some r;
      Some r)

let cost_pass =
  { p_name = "cost";
    p_doc = "static communication-cost and critical-path prediction";
    p_run = (fun _ -> ());
    p_dump =
      (fun c ->
        Option.map
          (fun r -> Fd_support.Json.to_string (Fd_verify.Cost.to_json r))
          (cost_of c));
    p_verify =
      (fun c ->
        match cost_of c with
        | None -> [ "no compiled program" ]
        | Some r ->
          (* invariant: a complete, assumption-free analysis prices
             every skeleton event and a nonnegative makespan *)
          if r.Fd_verify.Cost.exact && r.Fd_verify.Cost.makespan < 0.0 then
            [ "negative predicted makespan" ]
          else []);
    p_size =
      (fun c ->
        match c.cost with Some r -> r.Fd_verify.Cost.events | None -> 0) }

(* --- The pipeline ------------------------------------------------------- *)

let passes =
  [ parse_pass; sema_pass; cloning_pass; acg_pass; reaching_pass;
    side_effects_pass; local_summaries_pass; codegen_pass; verify_pass;
    cost_pass ]

let pass_names = List.map (fun p -> p.p_name) passes

let find_pass name = List.find_opt (fun p -> String.equal p.p_name name) passes

let empty_ctx ?(sink = Diag.global) opts file source =
  { opts; sink; file; source; parsed = None; checked = None; clone_result = None;
    acg = None; rd = None; effects = None; summaries = None; compiled = None;
    findings = None; cost = None }

let of_source ?sink ?(opts = Options.default) ?file src =
  empty_ctx ?sink opts file (Some src)

let of_checked ?sink ?(opts = Options.default) (cp : Sema.checked_program) =
  let c = empty_ctx ?sink opts None None in
  c.checked <- Some cp;
  c

let run_pass ?(verify = false) ?tracer ?epoch (p : Pass.t) (c : ctx) : entry =
  let t0 = Unix.gettimeofday () in
  p.p_run c;
  let dt = Unix.gettimeofday () -. t0 in
  (* Pass spans reuse the timing already taken for the report; [at] is
     wall-clock relative to [epoch] (the pipeline start) so compiler
     spans start near zero like the machine's virtual clock does. *)
  (match tracer with
  | Some tr ->
    let base = match epoch with Some e -> e | None -> t0 in
    Fd_trace.Trace.emit tr ~kind:Fd_trace.Trace.Span ~at:(t0 -. base) ~proc:(-1)
      ~dur:dt ~label:p.p_name ()
  | None -> ());
  let status =
    if not verify then I_not_checked
    else match p.p_verify c with [] -> I_ok | msgs -> I_violated msgs
  in
  { e_pass = p.p_name; e_time = dt; e_size = p.p_size c; e_status = status }

let run ?(verify = false) ?tracer ?(dump_after = [])
    ?(dump = fun ~pass text -> Fmt.pr "=== after %s ===@.%s@." pass text)
    (c : ctx) : report =
  List.iter
    (fun name ->
      if find_pass name = None then
        Diag.error "pipeline: unknown pass %s (have: %s)" name
          (String.concat ", " pass_names))
    dump_after;
  let epoch = Unix.gettimeofday () in
  List.map
    (fun p ->
      let entry = run_pass ~verify ?tracer ~epoch p c in
      if List.mem p.p_name dump_after then
        (match p.p_dump c with
        | Some text -> dump ~pass:p.p_name text
        | None -> ());
      entry)
    passes

let report_to_json (r : report) : Json.t =
  let entry (e : entry) =
    Json.Obj
      [ ("name", Json.Str e.e_pass);
        ("ms", Json.Float (e.e_time *. 1e3));
        ("size", Json.Int e.e_size);
        ( "invariants",
          Json.Str
            (match e.e_status with
            | I_not_checked -> "not-checked"
            | I_ok -> "ok"
            | I_violated _ -> "violated") );
        ( "violations",
          Json.List
            (match e.e_status with
            | I_violated msgs -> List.map (fun m -> Json.Str m) msgs
            | _ -> []) ) ]
  in
  Json.Obj
    [ ("passes", Json.List (List.map entry r));
      ("total_ms", Json.Float (List.fold_left (fun acc e -> acc +. e.e_time) 0.0 r *. 1e3));
      ("ok", Json.Bool (report_ok r)) ]

let pp_report ppf (r : report) =
  List.iter
    (fun e ->
      Fmt.pf ppf "%a@." Pass.pp_entry e;
      match e.e_status with
      | I_violated msgs -> List.iter (fun m -> Fmt.pf ppf "    %s@." m) msgs
      | _ -> ())
    r;
  Fmt.pf ppf "%-18s %9.3f ms@." "total"
    (List.fold_left (fun acc e -> acc +. e.e_time) 0.0 r *. 1e3)
